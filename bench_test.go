// Package irred's top-level benchmarks regenerate the paper's exhibits:
// one benchmark per figure/table (Fig 4, 5, 6, 7 and the text tables
// T1-T3), each reporting the simulated execution time per timestep and the
// speedup over the sequential baseline as custom metrics, plus
// micro-benchmarks for the substrates (LightInspector, the native engine,
// the cache model, the event engine).
//
// The full paper-scale tables are produced by cmd/irredbench; these
// benchmarks run the same code paths at benchmark-friendly durations.
package irred

import (
	"fmt"
	"sync"
	"testing"

	"irred/internal/bench"
	"irred/internal/earth"
	"irred/internal/inspector"
	"irred/internal/kernels"
	"irred/internal/machine"
	"irred/internal/mesh"
	"irred/internal/moldyn"
	"irred/internal/rts"
	"irred/internal/service"
	"irred/internal/sim"
	"irred/internal/sparse"
)

// Dataset caches: benchmarks must not regenerate large inputs per run.
var (
	onceW, onceA, onceB    sync.Once
	classW, classA, classB *sparse.CSR
	onceE2K, onceE10K      sync.Once
	euler2K, euler10K      *kernels.Euler
	onceM2K, onceM10K      sync.Once
	moldyn2K, moldyn10K    *kernels.Moldyn
)

func getClassW() *sparse.CSR {
	onceW.Do(func() { classW = sparse.Generate(sparse.ClassW, 1) })
	return classW
}
func getClassA() *sparse.CSR {
	onceA.Do(func() { classA = sparse.Generate(sparse.ClassA, 1) })
	return classA
}
func getClassB() *sparse.CSR {
	onceB.Do(func() { classB = sparse.Generate(sparse.ClassB, 1) })
	return classB
}
func getEuler2K() *kernels.Euler {
	onceE2K.Do(func() {
		n, e := mesh.Paper2K()
		euler2K = kernels.NewEuler(mesh.Generate(n, e, 1), 1)
	})
	return euler2K
}
func getEuler10K() *kernels.Euler {
	onceE10K.Do(func() {
		n, e := mesh.Paper10K()
		euler10K = kernels.NewEuler(mesh.Generate(n, e, 1), 1)
	})
	return euler10K
}
func getMoldyn2K() *kernels.Moldyn {
	onceM2K.Do(func() { moldyn2K = kernels.NewMoldyn(moldyn.Paper2K(1)) })
	return moldyn2K
}
func getMoldyn10K() *kernels.Moldyn {
	onceM10K.Do(func() { moldyn10K = kernels.NewMoldyn(moldyn.Paper10K(1)) })
	return moldyn10K
}

// simFigure benchmarks one (loop, steps) configuration on the simulated
// machine and reports the paper-facing metrics.
func simFigure(b *testing.B, mk func(p, k int, d inspector.Dist) *rts.Loop, p, k int, d inspector.Dist, steps int) {
	b.Helper()
	cm := machine.MANNA()
	var lastSpeedup, lastPerStep float64
	for i := 0; i < b.N; i++ {
		l := mk(p, k, d)
		seq, _ := rts.RunSequentialSim(l, rts.SimOptions{Steps: steps})
		res, err := rts.RunSim(l, rts.SimOptions{Steps: steps})
		if err != nil {
			b.Fatal(err)
		}
		lastSpeedup = float64(seq) / float64(res.Cycles)
		lastPerStep = cm.Seconds(res.PerStep)
	}
	b.ReportMetric(lastSpeedup, "speedup")
	b.ReportMetric(lastPerStep*1e3, "simms/step")
}

// --- Figure 4: mvm classes W and A, k in {1,2,4} ---

func BenchmarkFig4ClassW(b *testing.B) {
	mv := kernels.NewMVM(getClassW())
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("k=%d/P=32", k), func(b *testing.B) {
			simFigure(b, mv.Loop, 32, k, inspector.Block, 10)
		})
	}
}

func BenchmarkFig4ClassA(b *testing.B) {
	mv := kernels.NewMVM(getClassA())
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("k=%d/P=32", k), func(b *testing.B) {
			simFigure(b, mv.Loop, 32, k, inspector.Block, 10)
		})
	}
}

// --- Figure 5: mvm class B (n=75,000, nnz=13.7M) on 64 processors ---

func BenchmarkFig5ClassB(b *testing.B) {
	if testing.Short() {
		b.Skip("class B is the paper's large dataset; skipped with -short")
	}
	mv := kernels.NewMVM(getClassB())
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("k=%d/P=64", k), func(b *testing.B) {
			simFigure(b, mv.Loop, 64, k, inspector.Block, 5)
		})
	}
}

// --- Figures 6 and 7: euler and moldyn under 1c/2c/4c/2b ---

func eulerStrats() []bench.StrategyDef { return bench.EulerStrategies() }

func BenchmarkFig6Euler2K(b *testing.B) {
	eu := getEuler2K()
	for _, s := range eulerStrats() {
		b.Run(s.Name+"/P=32", func(b *testing.B) {
			simFigure(b, eu.Loop, 32, s.K, s.Dist, 20)
		})
	}
}

func BenchmarkFig6Euler10K(b *testing.B) {
	eu := getEuler10K()
	for _, s := range eulerStrats() {
		b.Run(s.Name+"/P=32", func(b *testing.B) {
			simFigure(b, eu.Loop, 32, s.K, s.Dist, 20)
		})
	}
}

func BenchmarkFig7Moldyn2K(b *testing.B) {
	md := getMoldyn2K()
	for _, s := range eulerStrats() {
		b.Run(s.Name+"/P=32", func(b *testing.B) {
			simFigure(b, md.Loop, 32, s.K, s.Dist, 20)
		})
	}
}

func BenchmarkFig7Moldyn10K(b *testing.B) {
	md := getMoldyn10K()
	for _, s := range eulerStrats() {
		b.Run(s.Name+"/P=32", func(b *testing.B) {
			simFigure(b, md.Loop, 32, s.K, s.Dist, 20)
		})
	}
}

// --- T1-T3: the 2-processor overhead points from the Section 5 text ---

func BenchmarkT2Euler2Proc(b *testing.B) {
	eu := getEuler2K()
	simFigure(b, eu.Loop, 2, 2, inspector.Cyclic, 20)
}

func BenchmarkT3Moldyn2Proc(b *testing.B) {
	md := getMoldyn10K()
	simFigure(b, md.Loop, 2, 2, inspector.Cyclic, 10)
}

func BenchmarkT1MVM2Proc(b *testing.B) {
	mv := kernels.NewMVM(getClassW())
	simFigure(b, mv.Loop, 2, 2, inspector.Block, 10)
}

// --- Ablations ---

func BenchmarkAblationK(b *testing.B) {
	eu := getEuler2K()
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("k=%d/P=32", k), func(b *testing.B) {
			simFigure(b, eu.Loop, 32, k, inspector.Cyclic, 20)
		})
	}
}

func BenchmarkAblationAdaptive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.AblationAdaptive(bench.Options{Steps: 10, Seed: 1}, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate micro-benchmarks ---

// BenchmarkLightInspector measures the runtime preprocessing itself: the
// paper's point is that it is a cheap, local pass.
func BenchmarkLightInspector(b *testing.B) {
	eu := getEuler2K()
	l := eu.Loop(16, 2, inspector.Cyclic)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inspector.Light(l.Cfg, i%16, l.Ind...); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(l.Cfg.NumIters), "iters")
}

func BenchmarkClassicInspector(b *testing.B) {
	eu := getEuler2K()
	l := eu.Loop(16, 2, inspector.Cyclic)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inspector.ClassicInspect(l.Cfg, l.Ind...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNativeEuler measures real goroutine execution of one timestep.
func BenchmarkNativeEuler(b *testing.B) {
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			eu := getEuler2K()
			nat, _, err := eu.NewNative(p, 2, inspector.Cyclic)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := nat.Run(1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkNativeMoldyn(b *testing.B) {
	for _, p := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			md := getMoldyn2K()
			nat, _, _, err := md.NewNative(p, 2, inspector.Cyclic)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := nat.Run(1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScheduleCache measures what the irredd schedule cache buys: a
// cold miss pays the full P-processor LightInspector pass, a warm hit is a
// hash of the indirection arrays plus a map lookup. The gap is the
// amortization the serving layer extends across requests and restarts.
func BenchmarkScheduleCache(b *testing.B) {
	eu := getEuler10K()
	l := eu.Loop(16, 2, inspector.Cyclic)
	key := inspector.ScheduleKey(l.Cfg, l.Ind...)

	b.Run("miss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := l.Schedules(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(l.Cfg.NumIters), "iters")
	})
	b.Run("hit", func(b *testing.B) {
		cache, err := service.NewCache(8, "")
		if err != nil {
			b.Fatal(err)
		}
		scheds, err := l.Schedules()
		if err != nil {
			b.Fatal(err)
		}
		if err := cache.Put(key, scheds); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A hit still pays the content hash: that is the real serving
			// cost, so it stays inside the measured region.
			k := inspector.ScheduleKey(l.Cfg, l.Ind...)
			if _, ok := cache.Get(k); !ok {
				b.Fatal("warm cache missed")
			}
		}
		b.ReportMetric(float64(l.Cfg.NumIters), "iters")
	})
}

func BenchmarkCacheModel(b *testing.B) {
	c := machine.NewCache(16<<10, 32, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i*56) & 0xfffff)
	}
}

func BenchmarkEventEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		for j := 0; j < 100; j++ {
			e.Schedule(sim.Time(j), func() {})
		}
		e.Run()
	}
}

func BenchmarkEarthFiberChain(b *testing.B) {
	// A chain of 1000 dependent fibers: measures the machine model's
	// dispatch overhead.
	for i := 0; i < b.N; i++ {
		m := earth.New(1, machine.MANNA(), machine.MANNANet())
		n := m.Node(0)
		fibers := make([]*earth.Fiber, 1000)
		slots := make([]*earth.Slot, 1000)
		for j := 999; j >= 0; j-- {
			j := j
			fibers[j] = n.NewFiber(10, func(ctx *earth.Ctx) {
				if j+1 < 1000 {
					ctx.Sync(slots[j+1])
				}
			})
			slots[j] = n.NewSlot(1, fibers[j])
		}
		m.Eng.Schedule(0, func() {})
		// Kick off the chain.
		kick := n.NewFiber(0, func(ctx *earth.Ctx) { ctx.Sync(slots[0]) })
		n.NewSlot(0, kick)
		m.Run()
	}
}
