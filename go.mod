module irred

go 1.22
