package transform

import (
	"fmt"
	"sort"

	"irred/internal/lang"
)

// CSE performs common-subexpression elimination on a loop body: repeated
// non-trivial right-hand-side subexpressions are hoisted into scalar
// temporaries computed once per iteration. The paper's compiler heritage
// (the EARTH-C project) lists CSE among its standard optimizations; for
// irregular loops it typically pays off on repeated indirect reads like
// the two occurrences of `c[ia[i, 0]]` in Figure 1.
//
// Safety: only expressions that reference no scalar temporary and no array
// written anywhere in the loop are hoisted, so evaluation order cannot
// change observable results. Returns the transformed loop (the input loop
// is not modified) and the number of expressions hoisted.
func CSE(l *lang.Loop) (*lang.Loop, int) {
	written := map[string]bool{}
	scalars := map[string]bool{}
	for _, st := range l.Body {
		if st.Scalar != "" {
			scalars[st.Scalar] = true
		} else if st.Target != nil {
			written[st.Target.Array] = true
		}
	}

	out := &lang.Loop{Var: l.Var, Lo: l.Lo, Hi: l.Hi, Pos: l.Pos}
	out.Body = append([]*lang.Assign(nil), l.Body...)
	hoisted := 0

	// Iterate until no candidate remains; each round hoists the largest
	// eligible repeated subexpression, which may subsume smaller ones.
	for round := 0; round < 64; round++ {
		counts := map[string]int{}
		exprs := map[string]lang.Expr{}
		for _, st := range out.Body {
			lang.Walk(st.RHS, func(e lang.Expr) {
				if !cseEligible(e, l.Var, scalars, written) {
					return
				}
				k := e.String()
				counts[k]++
				if _, ok := exprs[k]; !ok {
					exprs[k] = e
				}
			})
		}
		var keys []string
		for k, n := range counts {
			if n >= 2 {
				keys = append(keys, k)
			}
		}
		if len(keys) == 0 {
			break
		}
		// Largest expression first (by rendered length, then lexicographic
		// for determinism).
		sort.Slice(keys, func(i, j int) bool {
			if len(keys[i]) != len(keys[j]) {
				return len(keys[i]) > len(keys[j])
			}
			return keys[i] < keys[j]
		})
		k := keys[0]
		name := fmt.Sprintf("_cse_%d", hoisted)
		scalars[name] = true
		hoisted++
		def := &lang.Assign{Scalar: name, Op: lang.OpSet, RHS: exprs[k], Pos: l.Pos}
		body := make([]*lang.Assign, 0, len(out.Body)+1)
		body = append(body, def)
		for _, st := range out.Body {
			body = append(body, replaceInAssign(st, k, name))
		}
		out.Body = body
	}
	if hoisted == 0 {
		return l, 0
	}
	return out, hoisted
}

// CSEProgram applies CSE to every loop, returning a new program and the
// total hoisted count.
func CSEProgram(prog *lang.Program) (*lang.Program, int) {
	out := &lang.Program{Params: prog.Params, Arrays: prog.Arrays}
	total := 0
	for _, l := range prog.Loops {
		nl, n := CSE(l)
		total += n
		out.Loops = append(out.Loops, nl)
	}
	if total == 0 {
		return prog, 0
	}
	return out, total
}

// cseEligible reports whether e is worth and safe to hoist: a compound
// expression or an indirect array read, pure (no scalar temps, no arrays
// the loop writes).
func cseEligible(e lang.Expr, loopVar string, scalars, written map[string]bool) bool {
	switch x := e.(type) {
	case *lang.BinExpr, *lang.CallExpr, *lang.UnExpr:
		// compound: worthwhile if pure
	case *lang.IndexExpr:
		// Indirect reads only — a[i] is already one load.
		indirect := false
		for _, sub := range x.Index {
			if _, ok := sub.(*lang.IndexExpr); ok {
				indirect = true
			}
		}
		if !indirect {
			return false
		}
	default:
		return false
	}
	pure := true
	lang.Walk(e, func(sub lang.Expr) {
		switch s := sub.(type) {
		case *lang.Ident:
			if s.Name != loopVar && scalars[s.Name] {
				pure = false
			}
		case *lang.IndexExpr:
			if written[s.Array] {
				pure = false
			}
		}
	})
	return pure
}

// replaceInAssign clones st with every subexpression rendering as key
// replaced by a reference to the scalar name.
func replaceInAssign(st *lang.Assign, key, name string) *lang.Assign {
	out := &lang.Assign{Scalar: st.Scalar, Op: st.Op, Pos: st.Pos}
	if st.Target != nil {
		// Subscripts of the write target are left alone: replacing the
		// indirection expression itself with a float-valued scalar would
		// change the statement's shape, and targets are cheap.
		out.Target = st.Target
	}
	out.RHS = replaceExpr(st.RHS, key, name)
	return out
}

func replaceExpr(e lang.Expr, key, name string) lang.Expr {
	if e.String() == key {
		return &lang.Ident{Name: name, Pos: e.Position()}
	}
	switch x := e.(type) {
	case *lang.BinExpr:
		return &lang.BinExpr{Op: x.Op, L: replaceExpr(x.L, key, name), R: replaceExpr(x.R, key, name), Pos: x.Pos}
	case *lang.UnExpr:
		return &lang.UnExpr{X: replaceExpr(x.X, key, name), Pos: x.Pos}
	case *lang.CallExpr:
		out := &lang.CallExpr{Fn: x.Fn, Pos: x.Pos}
		for _, a := range x.Args {
			out.Args = append(out.Args, replaceExpr(a, key, name))
		}
		return out
	case *lang.IndexExpr:
		out := &lang.IndexExpr{Array: x.Array, Pos: x.Pos}
		for _, sub := range x.Index {
			out.Index = append(out.Index, replaceExpr(sub, key, name))
		}
		return out
	default:
		return e
	}
}
