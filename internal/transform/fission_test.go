package transform

import (
	"math/rand"
	"testing"

	"irred/internal/analysis"
	"irred/internal/interp"
	"irred/internal/lang"
)

// runBoth executes src as-written and after fission with identical random
// bindings, returning both environments for comparison.
func runBoth(t *testing.T, src string, seed int64, elems map[string]int) (*interp.Env, *interp.Env) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	fiss, _, err := Fission(res)
	if err != nil {
		t.Fatal(err)
	}

	mkEnv := func(p *lang.Program) *interp.Env {
		rng := rand.New(rand.NewSource(seed))
		env := interp.NewEnv(p)
		for name, v := range elems {
			env.SetParam(name, v)
		}
		for _, d := range prog.Arrays { // bind only source-declared arrays
			n, err := env.Size(d.Name)
			if err != nil {
				t.Fatal(err)
			}
			if d.Int {
				data := make([]int32, n)
				// Indirection values must stay in range of the smallest
				// float array; use the "m" parameter when present.
				lim := elems["m"]
				if lim == 0 {
					lim = n
				}
				for i := range data {
					data[i] = int32(rng.Intn(lim))
				}
				if err := env.BindInt(d.Name, data); err != nil {
					t.Fatal(err)
				}
			} else {
				data := make([]float64, n)
				for i := range data {
					data[i] = rng.Float64()
				}
				if err := env.BindFloat(d.Name, data); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := env.Alloc(); err != nil {
			t.Fatal(err)
		}
		return env
	}

	orig := mkEnv(prog)
	if err := orig.Run(); err != nil {
		t.Fatal(err)
	}
	fenv := mkEnv(fiss)
	if err := fenv.Run(); err != nil {
		t.Fatal(err)
	}
	return orig, fenv
}

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		d := a[i] - b[i]
		if d < -1e-9 || d > 1e-9 {
			return false
		}
	}
	return true
}

const twoGroupSrc = `
param n, m
array ia[n, 2] int
array ja[n] int
array x[m]
array z[m]
array y[n]
loop i = 0, n {
    t = y[i] * 2
    x[ia[i, 0]] += t
    x[ia[i, 1]] += t + 1
    z[ja[i]] += t * 3
}
`

func TestFissionPreservesSemantics(t *testing.T) {
	orig, fiss := runBoth(t, twoGroupSrc, 1, map[string]int{"n": 200, "m": 37})
	for _, a := range []string{"x", "z"} {
		if !sameFloats(orig.Floats[a], fiss.Floats[a]) {
			t.Fatalf("array %s diverged after fission", a)
		}
	}
}

func TestFissionStructure(t *testing.T) {
	prog := lang.MustParse(twoGroupSrc)
	res, err := analysis.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	fiss, frs, err := Fission(res)
	if err != nil {
		t.Fatal(err)
	}
	fr := frs[0]
	if len(fr.Loops) != 2 {
		t.Fatalf("fissioned into %d loops, want 2", len(fr.Loops))
	}
	// The scalar t feeds both groups: it must be promoted to a temp array
	// computed by a prologue.
	if fr.Prologue == nil || len(fr.Temps) != 1 || fr.Temps[0].Name != "_tmp_t" {
		t.Fatalf("temporary promotion wrong: temps=%v prologue=%v", fr.Temps, fr.Prologue)
	}
	if fiss.Array("_tmp_t") == nil {
		t.Fatal("temp array not declared in fissioned program")
	}
	// Total output loops: prologue + 2 groups.
	if len(fiss.Loops) != 3 {
		t.Fatalf("fissioned program has %d loops, want 3", len(fiss.Loops))
	}
	// Each fissioned loop must carry a group.
	for i, fl := range fr.Loops {
		if fl.Group == nil {
			t.Fatalf("fissioned loop %d has no group", i)
		}
	}
}

func TestSingleGroupPassThrough(t *testing.T) {
	src := `
param n, m
array ia[n, 2] int
array x[m]
array y[n]
loop i = 0, n {
    x[ia[i, 0]] += y[i]
    x[ia[i, 1]] -= y[i]
}
`
	prog := lang.MustParse(src)
	res, err := analysis.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	fiss, frs, err := Fission(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(frs[0].Loops) != 1 || frs[0].Prologue != nil || len(frs[0].Temps) != 0 {
		t.Fatalf("single-group loop was transformed: %+v", frs[0])
	}
	if fiss.Loops[0] != prog.Loops[0] {
		t.Fatal("pass-through should reuse the original loop")
	}
}

func TestScalarUsedByOneGroupStaysLocal(t *testing.T) {
	src := `
param n, m
array ia[n] int
array ja[n] int
array x[m]
array z[m]
array y[n]
loop i = 0, n {
    t = y[i] * 2
    u = y[i] + 1
    x[ia[i]] += t
    z[ja[i]] += u
}
`
	prog := lang.MustParse(src)
	res, err := analysis.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	_, frs, err := Fission(res)
	if err != nil {
		t.Fatal(err)
	}
	fr := frs[0]
	if len(fr.Temps) != 0 || fr.Prologue != nil {
		t.Fatalf("single-group scalars should be recomputed locally, got temps %v", fr.Temps)
	}
	// Each output loop carries exactly its own scalar def.
	for _, fl := range fr.Loops {
		nScalar := 0
		for _, st := range fl.Loop.Body {
			if st.Scalar != "" {
				nScalar++
			}
		}
		if nScalar != 1 {
			t.Fatalf("loop has %d scalar defs, want 1", nScalar)
		}
	}
	// And semantics hold.
	orig, fiss := runBoth(t, src, 2, map[string]int{"n": 150, "m": 41})
	for _, a := range []string{"x", "z"} {
		if !sameFloats(orig.Floats[a], fiss.Floats[a]) {
			t.Fatalf("array %s diverged", a)
		}
	}
}

func TestRegularWritesSplitOff(t *testing.T) {
	src := `
param n, m
array ia[n] int
array x[m]
array w[n]
array y[n]
loop i = 0, n {
    x[ia[i]] += y[i]
    w[i] = y[i] * 2
}
`
	prog := lang.MustParse(src)
	res, err := analysis.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	_, frs, err := Fission(res)
	if err != nil {
		t.Fatal(err)
	}
	fr := frs[0]
	if len(fr.Loops) != 2 {
		t.Fatalf("loops = %d, want 2 (reduction + regular)", len(fr.Loops))
	}
	if fr.Loops[0].Group == nil || fr.Loops[1].Group != nil {
		t.Fatal("group assignment wrong")
	}
	orig, fiss := runBoth(t, src, 3, map[string]int{"n": 99, "m": 17})
	for _, a := range []string{"x", "w"} {
		if !sameFloats(orig.Floats[a], fiss.Floats[a]) {
			t.Fatalf("array %s diverged", a)
		}
	}
}

func TestChainedScalarDeps(t *testing.T) {
	// u depends on t; both needed by both groups -> both promoted, and the
	// prologue computes them in dependency order.
	src := `
param n, m
array ia[n] int
array ja[n] int
array x[m]
array z[m]
array y[n]
loop i = 0, n {
    t = y[i] * 2
    u = t + 1
    x[ia[i]] += u
    z[ja[i]] += u * t
}
`
	orig, fiss := runBoth(t, src, 4, map[string]int{"n": 120, "m": 23})
	for _, a := range []string{"x", "z"} {
		if !sameFloats(orig.Floats[a], fiss.Floats[a]) {
			t.Fatalf("array %s diverged", a)
		}
	}
}
