package transform

import (
	"math/rand"
	"strings"
	"testing"

	"irred/internal/interp"
	"irred/internal/lang"
)

func TestCSEHoistsRepeatedIndirectRead(t *testing.T) {
	// Figure 1 has no repeated subexpression (the two c-reads differ in
	// column); this loop repeats c[ia[i,0]] twice.
	prog := lang.MustParse(`
param n, m
array ia[n, 2] int
array x[m]
array y[n]
array c[m]
loop i = 0, n {
    x[ia[i, 0]] += y[i] * c[ia[i, 0]] + c[ia[i, 0]]
}
`)
	nl, n := CSE(prog.Loops[0])
	if n == 0 {
		t.Fatal("no expression hoisted")
	}
	if nl.Body[0].Scalar == "" || !strings.Contains(nl.Body[0].RHS.String(), "c[ia[i, 0]]") {
		t.Fatalf("first statement is not the hoisted read: %s", nl.Body[0])
	}
	// The remaining statement references the temp, not the read.
	if strings.Count(nl.Body[len(nl.Body)-1].RHS.String(), "c[ia[i, 0]]") != 0 {
		t.Fatalf("occurrences not replaced: %s", nl.Body[len(nl.Body)-1])
	}
}

func TestCSEPreservesSemantics(t *testing.T) {
	src := `
param n, m
array ia[n, 2] int
array x[m]
array y[n]
array c[m]
loop i = 0, n {
    t = y[i] * c[ia[i, 0]]
    x[ia[i, 0]] += t + c[ia[i, 0]] * c[ia[i, 0]]
    x[ia[i, 1]] += c[ia[i, 1]] + c[ia[i, 1]] * y[i]
}
`
	prog := lang.MustParse(src)
	opt, n := CSEProgram(prog)
	if n < 2 {
		t.Fatalf("hoisted %d, want >= 2", n)
	}
	run := func(p *lang.Program) []float64 {
		rng := rand.New(rand.NewSource(4))
		env := interp.NewEnv(p)
		env.SetParam("n", 200)
		env.SetParam("m", 37)
		ia := make([]int32, 400)
		for i := range ia {
			ia[i] = int32(rng.Intn(37))
		}
		y := make([]float64, 200)
		c := make([]float64, 37)
		for i := range y {
			y[i] = rng.Float64()
		}
		for i := range c {
			c[i] = rng.Float64()
		}
		if err := env.BindInt("ia", ia); err != nil {
			t.Fatal(err)
		}
		if err := env.BindFloat("y", y); err != nil {
			t.Fatal(err)
		}
		if err := env.BindFloat("c", c); err != nil {
			t.Fatal(err)
		}
		if err := env.Alloc(); err != nil {
			t.Fatal(err)
		}
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return env.Floats["x"]
	}
	if !sameFloats(run(prog), run(opt)) {
		t.Fatal("CSE changed results")
	}
}

func TestCSESkipsWrittenArrays(t *testing.T) {
	// b[i] is written in the loop: reads of b must not be hoisted above
	// the write.
	prog := lang.MustParse(`
param n
array a[n]
array b[n]
loop i = 0, n {
    b[i] = i + 1
    a[i] = b[i] * 2 + b[i] * 2
}
`)
	nl, n := CSE(prog.Loops[0])
	if n != 0 {
		t.Fatalf("hoisted %d expressions reading a written array: %v", n, nl.Body[0])
	}
}

func TestCSESkipsScalarDependent(t *testing.T) {
	prog := lang.MustParse(`
param n
array a[n]
array y[n]
loop i = 0, n {
    t = y[i] + 1
    a[i] = t * 2 + t * 2
}
`)
	_, n := CSE(prog.Loops[0])
	if n != 0 {
		t.Fatal("hoisted a scalar-dependent expression")
	}
}

func TestCSENoCandidates(t *testing.T) {
	prog := lang.MustParse(`
param n
array a[n]
array y[n]
loop i = 0, n { a[i] = y[i] * 2 }
`)
	nl, n := CSE(prog.Loops[0])
	if n != 0 {
		t.Fatal("hoisted from a loop with no repeats")
	}
	if nl != prog.Loops[0] {
		t.Fatal("no-op CSE should return the original loop")
	}
}

func TestCSELargestFirst(t *testing.T) {
	// (c[ia[i]] * 2) repeats and contains c[ia[i]] which also repeats; the
	// larger expression must be hoisted (count of hoists may be 1 or 2,
	// but the first hoisted def must be the product).
	prog := lang.MustParse(`
param n, m
array ia[n] int
array x[m]
array c[m]
loop i = 0, n {
    x[ia[i]] += c[ia[i]] * 2
    x[ia[i]] -= c[ia[i]] * 2
}
`)
	nl, n := CSE(prog.Loops[0])
	if n == 0 {
		t.Fatal("nothing hoisted")
	}
	if !strings.Contains(nl.Body[0].RHS.String(), "*") {
		t.Fatalf("largest expression not hoisted first: %s", nl.Body[0])
	}
}
