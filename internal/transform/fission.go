// Package transform implements the loop fission of Section 4: when the
// reduction array sections updated by a loop fall into more than one
// reference group, the loop is split into a sequence of loops, each
// updating a single group, so that one LightInspector serves each loop.
// Scalar values computed in the original loop and needed by several of the
// fissioned loops are carried in compiler-introduced temporary arrays, as
// the paper describes.
package transform

import (
	"fmt"
	"sort"

	"irred/internal/analysis"
	"irred/internal/lang"
)

// FissionedLoop is one output loop together with the reference group it
// serves (nil Group for the residual loop of regular writes).
type FissionedLoop struct {
	Loop  *lang.Loop
	Group *analysis.RefGroup
}

// FissionResult is the outcome for one original loop.
type FissionResult struct {
	Original *analysis.LoopInfo
	// Temps lists compiler-introduced temporary arrays (added to the
	// program's declarations).
	Temps []*lang.ArrayDecl
	// Prologue computes the temporaries, when any are needed.
	Prologue *lang.Loop
	// Loops are the fissioned loops in execution order.
	Loops []*FissionedLoop
}

// Fission splits every loop of an analyzed program as needed. The returned
// program shares unchanged loops with the input and appends temporary
// array declarations. It is a no-op (loops passed through) for loops that
// already update a single reference group.
func Fission(res *analysis.Result) (*lang.Program, []*FissionResult, error) {
	out := &lang.Program{
		Params: res.Program.Params,
		Arrays: append([]*lang.ArrayDecl(nil), res.Program.Arrays...),
	}
	var frs []*FissionResult
	for _, li := range res.Loops {
		fr, err := fissionLoop(res.Program, li)
		if err != nil {
			return nil, nil, err
		}
		frs = append(frs, fr)
		out.Arrays = append(out.Arrays, fr.Temps...)
		if fr.Prologue != nil {
			out.Loops = append(out.Loops, fr.Prologue)
		}
		for _, fl := range fr.Loops {
			out.Loops = append(out.Loops, fl.Loop)
		}
	}
	return out, frs, nil
}

func fissionLoop(prog *lang.Program, li *analysis.LoopInfo) (*FissionResult, error) {
	fr := &FissionResult{Original: li}
	l := li.Loop

	// Count how many output loops each scalar def is needed by.
	type unit struct {
		group *analysis.RefGroup
		stmts []int
	}
	var units []unit
	for gi := range li.Groups {
		g := &li.Groups[gi]
		units = append(units, unit{group: g, stmts: append([]int(nil), g.Stmts...)})
	}
	if len(li.RegWrites) > 0 {
		units = append(units, unit{stmts: append([]int(nil), li.RegWrites...)})
	}
	if len(units) <= 1 {
		// Single unit: pass the loop through untouched (scalar defs stay).
		var g *analysis.RefGroup
		if len(li.Groups) == 1 {
			g = &li.Groups[0]
		}
		fr.Loops = []*FissionedLoop{{Loop: l, Group: g}}
		return fr, nil
	}

	// Which scalars does each unit need (transitively through defs)?
	defIdx := map[string]int{}
	for _, di := range li.ScalarDefs {
		defIdx[l.Body[di].Scalar] = di
	}
	needs := make([]map[string]bool, len(units))
	var collect func(e lang.Expr, set map[string]bool)
	collect = func(e lang.Expr, set map[string]bool) {
		lang.Walk(e, func(x lang.Expr) {
			id, ok := x.(*lang.Ident)
			if !ok {
				return
			}
			if di, isDef := defIdx[id.Name]; isDef && !set[id.Name] {
				set[id.Name] = true
				collect(l.Body[di].RHS, set)
			}
		})
	}
	useCount := map[string]int{}
	for ui, u := range units {
		needs[ui] = map[string]bool{}
		for _, si := range u.stmts {
			collect(l.Body[si].RHS, needs[ui])
			if tgt := l.Body[si].Target; tgt != nil {
				for _, sub := range tgt.Index {
					collect(sub, needs[ui])
				}
			}
		}
		for name := range needs[ui] {
			useCount[name]++
		}
	}

	// Scalars needed by more than one unit are promoted to temporary
	// arrays computed in a prologue loop; scalars needed by one unit are
	// recomputed inside it.
	var promoted []string
	for name, n := range useCount {
		if n > 1 {
			promoted = append(promoted, name)
		}
	}
	sort.Strings(promoted)
	promotedSet := map[string]bool{}
	extent, err := loopExtent(prog, l)
	if err != nil {
		return nil, err
	}
	if len(promoted) > 0 {
		pro := &lang.Loop{Var: l.Var, Lo: l.Lo, Hi: l.Hi, Pos: l.Pos}
		for _, name := range promoted {
			promotedSet[name] = true
			tmp := &lang.ArrayDecl{Name: tempName(name), Dims: []lang.Extent{extent}, Pos: l.Pos}
			if prog.Array(tmp.Name) != nil {
				return nil, fmt.Errorf("irl:%s: temporary name %q collides with a declared array", l.Pos, tmp.Name)
			}
			fr.Temps = append(fr.Temps, tmp)
		}
		// The prologue must compute promoted temps in original def order,
		// including any non-promoted defs they depend on.
		proNeeds := map[string]bool{}
		for _, name := range promoted {
			proNeeds[name] = true
			collect(l.Body[defIdx[name]].RHS, proNeeds)
		}
		for _, di := range li.ScalarDefs {
			st := l.Body[di]
			if !proNeeds[st.Scalar] {
				continue
			}
			// References to earlier promoted scalars inside a definition
			// must read the temp array too.
			rhs := rewriteExpr(st.RHS, promotedSet, l.Var)
			if promotedSet[st.Scalar] {
				pro.Body = append(pro.Body, &lang.Assign{
					Target: &lang.IndexExpr{
						Array: tempName(st.Scalar),
						Index: []lang.Expr{&lang.Ident{Name: l.Var, Pos: st.Pos}},
						Pos:   st.Pos,
					},
					Op:  lang.OpSet,
					RHS: rhs,
					Pos: st.Pos,
				})
			} else {
				pro.Body = append(pro.Body, &lang.Assign{Scalar: st.Scalar, Op: st.Op, RHS: rhs, Pos: st.Pos})
			}
		}
		fr.Prologue = pro
	}

	// Emit one loop per unit: local (non-promoted) defs it needs, in
	// original order, then its statements with promoted scalars replaced
	// by temp-array reads.
	for ui, u := range units {
		nl := &lang.Loop{Var: l.Var, Lo: l.Lo, Hi: l.Hi, Pos: l.Pos}
		for _, di := range li.ScalarDefs {
			st := l.Body[di]
			if needs[ui][st.Scalar] && !promotedSet[st.Scalar] {
				nl.Body = append(nl.Body, rewriteAssign(st, promotedSet, l.Var))
			}
		}
		sort.Ints(u.stmts)
		for _, si := range u.stmts {
			nl.Body = append(nl.Body, rewriteAssign(l.Body[si], promotedSet, l.Var))
		}
		fr.Loops = append(fr.Loops, &FissionedLoop{Loop: nl, Group: u.group})
	}
	return fr, nil
}

// tempName names the compiler-introduced temporary array for a scalar.
func tempName(scalar string) string { return "_tmp_" + scalar }

// loopExtent derives the temp array extent from the loop bound, which must
// be a parameter or literal for temporaries to be declarable.
func loopExtent(prog *lang.Program, l *lang.Loop) (lang.Extent, error) {
	switch hi := l.Hi.(type) {
	case *lang.Ident:
		for _, p := range prog.Params {
			if p == hi.Name {
				return lang.Extent{Param: hi.Name}, nil
			}
		}
		return lang.Extent{}, fmt.Errorf("irl:%s: loop bound %q is not a parameter", l.Pos, hi.Name)
	case *lang.Num:
		return lang.Extent{Lit: int(hi.Val)}, nil
	default:
		return lang.Extent{}, fmt.Errorf("irl:%s: loop bound %s too complex for temporary introduction", l.Pos, l.Hi)
	}
}

// rewriteAssign clones a statement, replacing promoted scalar reads with
// temp-array references.
func rewriteAssign(st *lang.Assign, promoted map[string]bool, loopVar string) *lang.Assign {
	out := &lang.Assign{Scalar: st.Scalar, Op: st.Op, Pos: st.Pos}
	if st.Target != nil {
		out.Target = rewriteExpr(st.Target, promoted, loopVar).(*lang.IndexExpr)
	}
	out.RHS = rewriteExpr(st.RHS, promoted, loopVar)
	return out
}

func rewriteExpr(e lang.Expr, promoted map[string]bool, loopVar string) lang.Expr {
	switch x := e.(type) {
	case *lang.Num:
		return x
	case *lang.Ident:
		if promoted[x.Name] {
			return &lang.IndexExpr{
				Array: tempName(x.Name),
				Index: []lang.Expr{&lang.Ident{Name: loopVar, Pos: x.Pos}},
				Pos:   x.Pos,
			}
		}
		return x
	case *lang.IndexExpr:
		out := &lang.IndexExpr{Array: x.Array, Pos: x.Pos}
		for _, sub := range x.Index {
			out.Index = append(out.Index, rewriteExpr(sub, promoted, loopVar))
		}
		return out
	case *lang.BinExpr:
		return &lang.BinExpr{Op: x.Op, L: rewriteExpr(x.L, promoted, loopVar), R: rewriteExpr(x.R, promoted, loopVar), Pos: x.Pos}
	case *lang.UnExpr:
		return &lang.UnExpr{X: rewriteExpr(x.X, promoted, loopVar), Pos: x.Pos}
	case *lang.CallExpr:
		out := &lang.CallExpr{Fn: x.Fn, Pos: x.Pos}
		for _, a := range x.Args {
			out.Args = append(out.Args, rewriteExpr(a, promoted, loopVar))
		}
		return out
	default:
		return e
	}
}
