package interp

import (
	"math"
	"math/rand"
	"testing"

	"irred/internal/lang"
)

const compileSrc = `
param n, m
array ia[n, 2] int
array y[n]
array c[m]
array x[m]
loop i = 0, n {
    t = y[i] * 2 + 1
    u = t - c[ia[i, 0]] / 4
    x[ia[i, 0]] += u * sqrt(abs(t)) + min(t, u) - max(0 - t, u) + n
    x[ia[i, 1]] -= t / (u + 100)
}
`

func compileEnv(t *testing.T, seed int64) (*Env, *lang.Loop) {
	t.Helper()
	prog := lang.MustParse(compileSrc)
	env := NewEnv(prog)
	env.SetParam("n", 300)
	env.SetParam("m", 64)
	rng := rand.New(rand.NewSource(seed))
	ia := make([]int32, 600)
	for i := range ia {
		ia[i] = int32(rng.Intn(64))
	}
	y := make([]float64, 300)
	c := make([]float64, 64)
	for i := range y {
		y[i] = rng.Float64()
	}
	for i := range c {
		c[i] = rng.Float64()
	}
	if err := env.BindInt("ia", ia); err != nil {
		t.Fatal(err)
	}
	if err := env.BindFloat("y", y); err != nil {
		t.Fatal(err)
	}
	if err := env.BindFloat("c", c); err != nil {
		t.Fatal(err)
	}
	if err := env.Alloc(); err != nil {
		t.Fatal(err)
	}
	return env, prog.Loops[0]
}

func TestCompiledMatchesTreeWalker(t *testing.T) {
	env, loop := compileEnv(t, 3)
	var exprs []lang.Expr
	for _, st := range loop.Body {
		if st.Scalar == "" {
			exprs = append(exprs, st.RHS)
		}
	}
	code, err := env.CompileIter(loop, exprs)
	if err != nil {
		t.Fatal(err)
	}
	if code.NumResults() != len(exprs) {
		t.Fatalf("NumResults = %d", code.NumResults())
	}
	want := make([]float64, len(exprs))
	got := make([]float64, len(exprs))
	for i := 0; i < 300; i++ {
		if err := env.IterEval(loop, i, exprs, want); err != nil {
			t.Fatal(err)
		}
		code.Eval(i, got)
		for j := range want {
			if math.Abs(got[j]-want[j]) > 1e-12*(1+math.Abs(want[j])) {
				t.Fatalf("iter %d result %d: compiled %v, tree %v", i, j, got[j], want[j])
			}
		}
	}
}

func TestCompiledCloneIndependent(t *testing.T) {
	env, loop := compileEnv(t, 5)
	exprs := []lang.Expr{loop.Body[2].RHS}
	code, err := env.CompileIter(loop, exprs)
	if err != nil {
		t.Fatal(err)
	}
	clone := code.Clone()
	a := make([]float64, 1)
	b := make([]float64, 1)
	// Interleaved evaluation from two evaluators must not interfere.
	for i := 0; i < 50; i++ {
		code.Eval(i, a)
		clone.Eval(i, b)
		if a[0] != b[0] {
			t.Fatalf("iter %d: clone diverged: %v vs %v", i, a[0], b[0])
		}
	}
}

func TestCompileErrors(t *testing.T) {
	prog := lang.MustParse(`
param n
array a[n]
loop i = 0, n { a[i] = zz + 1 }
`)
	env := NewEnv(prog)
	env.SetParam("n", 4)
	if err := env.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := env.CompileIter(prog.Loops[0], []lang.Expr{prog.Loops[0].Body[0].RHS}); err == nil {
		t.Fatal("unbound identifier compiled")
	}
}

func TestCompileUnboundArray(t *testing.T) {
	prog := lang.MustParse(`
param n
array a[n]
array b[n]
loop i = 0, n { a[i] = b[i] }
`)
	env := NewEnv(prog)
	env.SetParam("n", 4)
	// b deliberately left unbound (no Alloc).
	if _, err := env.CompileIter(prog.Loops[0], []lang.Expr{prog.Loops[0].Body[0].RHS}); err == nil {
		t.Fatal("unbound array compiled")
	}
}

func BenchmarkTreeWalkEval(b *testing.B) {
	prog := lang.MustParse(compileSrc)
	env := NewEnv(prog)
	env.SetParam("n", 300)
	env.SetParam("m", 64)
	ia := make([]int32, 600)
	y := make([]float64, 300)
	c := make([]float64, 64)
	for i := range y {
		y[i] = 1.5
	}
	for i := range c {
		c[i] = 0.5
	}
	env.BindInt("ia", ia)
	env.BindFloat("y", y)
	env.BindFloat("c", c)
	env.Alloc()
	loop := prog.Loops[0]
	exprs := []lang.Expr{loop.Body[2].RHS, loop.Body[3].RHS}
	out := make([]float64, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := env.IterEval(loop, i%300, exprs, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompiledEval(b *testing.B) {
	prog := lang.MustParse(compileSrc)
	env := NewEnv(prog)
	env.SetParam("n", 300)
	env.SetParam("m", 64)
	ia := make([]int32, 600)
	y := make([]float64, 300)
	c := make([]float64, 64)
	for i := range y {
		y[i] = 1.5
	}
	for i := range c {
		c[i] = 0.5
	}
	env.BindInt("ia", ia)
	env.BindFloat("y", y)
	env.BindFloat("c", c)
	env.Alloc()
	loop := prog.Loops[0]
	code, err := env.CompileIter(loop, []lang.Expr{loop.Body[2].RHS, loop.Body[3].RHS})
	if err != nil {
		b.Fatal(err)
	}
	out := make([]float64, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		code.Eval(i%300, out)
	}
}
