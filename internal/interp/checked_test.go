package interp

import (
	"strings"
	"testing"

	"irred/internal/lang"
)

const checkedSrc = `
param n, m
array col[n] int
array x[m]
array y[n]
loop i = 0, n {
    y[i] += x[col[i]]
}
`

func checkedEnv(t *testing.T, col []int32) (*Env, *lang.Loop) {
	t.Helper()
	prog := lang.MustParse(checkedSrc)
	env := NewEnv(prog)
	env.SetParam("n", len(col))
	env.SetParam("m", 4)
	if err := env.BindInt("col", col); err != nil {
		t.Fatal(err)
	}
	if err := env.BindFloat("x", []float64{10, 20, 30, 40}); err != nil {
		t.Fatal(err)
	}
	if err := env.Alloc(); err != nil {
		t.Fatal(err)
	}
	return env, prog.Loops[0]
}

func TestCheckedFaultRecordedNotPanicked(t *testing.T) {
	// col[2] = 9 escapes x's extent 4: formerly a slice-bounds panic,
	// now a recorded fault with the access clamped.
	env, loop := checkedEnv(t, []int32{0, 3, 9})
	code, err := env.CompileIter(loop, []lang.Expr{loop.Body[0].RHS})
	if err != nil {
		t.Fatal(err)
	}
	if code.NumChecks() == 0 {
		t.Fatal("default compilation must carry range checks")
	}
	out := make([]float64, 1)
	for i := 0; i < 3; i++ {
		code.Eval(i, out)
	}
	ferr := code.Err()
	if ferr == nil {
		t.Fatal("out-of-range access must record a fault")
	}
	if !strings.Contains(ferr.Error(), "x[col[i]]") || !strings.Contains(ferr.Error(), "9") {
		t.Errorf("fault message should name the access and the value: %v", ferr)
	}
	// Valid iterations still computed correctly.
	code2, _ := env.CompileIter(loop, []lang.Expr{loop.Body[0].RHS})
	code2.Eval(0, out)
	if out[0] != 10 {
		t.Errorf("iteration 0 reads x[0]=10, got %v", out[0])
	}
	if code2.Err() != nil {
		t.Errorf("valid iteration must not fault: %v", code2.Err())
	}
}

func TestUncheckedElidesChecks(t *testing.T) {
	env, loop := checkedEnv(t, []int32{0, 3, 1})
	all := func(*lang.IndexExpr) bool { return true }
	un, err := env.CompileIterOpts(loop, []lang.Expr{loop.Body[0].RHS}, CompileOpts{Unchecked: all})
	if err != nil {
		t.Fatal(err)
	}
	if un.NumChecks() != 0 {
		t.Fatalf("fully proven loop still has %d checks", un.NumChecks())
	}
	ch, err := env.CompileIter(loop, []lang.Expr{loop.Body[0].RHS})
	if err != nil {
		t.Fatal(err)
	}
	a := make([]float64, 1)
	b := make([]float64, 1)
	for i := 0; i < 3; i++ {
		un.Eval(i, a)
		ch.Eval(i, b)
		if a[0] != b[0] {
			t.Fatalf("iter %d: unchecked %v != checked %v", i, a[0], b[0])
		}
	}
	if ch.Err() != nil {
		t.Fatalf("in-range data must not fault: %v", ch.Err())
	}
}

func TestPartialProofKeepsOtherChecks(t *testing.T) {
	env, loop := checkedEnv(t, []int32{0, 1, 2})
	// Prove only the col[i] reference; x[col[i]] itself stays checked.
	only := func(ix *lang.IndexExpr) bool { return ix.Array == "col" }
	code, err := env.CompileIterOpts(loop, []lang.Expr{loop.Body[0].RHS}, CompileOpts{Unchecked: only})
	if err != nil {
		t.Fatal(err)
	}
	full, err := env.CompileIter(loop, []lang.Expr{loop.Body[0].RHS})
	if err != nil {
		t.Fatal(err)
	}
	if code.NumChecks() == 0 || code.NumChecks() >= full.NumChecks() {
		t.Fatalf("partial proof: got %d checks, fully checked has %d", code.NumChecks(), full.NumChecks())
	}
}

func TestNonIntegerSubscriptFaults(t *testing.T) {
	prog := lang.MustParse(`
param n
array x[n]
array y[n]
loop i = 0, n {
    y[i] += x[i / 2]
}
`)
	env := NewEnv(prog)
	env.SetParam("n", 4)
	if err := env.Alloc(); err != nil {
		t.Fatal(err)
	}
	loop := prog.Loops[0]
	code, err := env.CompileIter(loop, []lang.Expr{loop.Body[0].RHS})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 1)
	code.Eval(1, out) // 1/2 = 0.5: not an integer subscript
	if code.Err() == nil {
		t.Fatal("non-integer subscript must fault under checked execution")
	}
}

func TestCloneFaultsIndependently(t *testing.T) {
	env, loop := checkedEnv(t, []int32{0, 9, 1})
	code, err := env.CompileIter(loop, []lang.Expr{loop.Body[0].RHS})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 1)
	code.Eval(1, out) // faults
	if code.Err() == nil {
		t.Fatal("expected fault")
	}
	clone := code.Clone()
	if clone.Err() != nil {
		t.Fatal("clone must start with a clean fault state")
	}
	clone.Eval(0, out) // in range
	if clone.Err() != nil {
		t.Fatalf("clone faulted on valid data: %v", clone.Err())
	}
}
