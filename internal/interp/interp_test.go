package interp

import (
	"math"
	"strings"
	"testing"

	"irred/internal/lang"
)

func env(t *testing.T, src string) *Env {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return NewEnv(prog)
}

func TestRunSimpleLoop(t *testing.T) {
	e := env(t, `
param n
array a[n]
array b[n]
loop i = 0, n { a[i] = b[i] * 2 + 1 }
`)
	e.SetParam("n", 4)
	if err := e.BindFloat("b", []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := e.Alloc(); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 5, 7, 9}
	for i, v := range want {
		if e.Floats["a"][i] != v {
			t.Fatalf("a = %v, want %v", e.Floats["a"], want)
		}
	}
}

func TestIrregularReduction(t *testing.T) {
	e := env(t, `
param n, m
array ia[n] int
array x[m]
loop i = 0, n { x[ia[i]] += 1 }
`)
	e.SetParam("n", 5)
	e.SetParam("m", 3)
	if err := e.BindInt("ia", []int32{0, 1, 1, 2, 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.Alloc(); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 1}
	for i, v := range want {
		if e.Floats["x"][i] != v {
			t.Fatalf("x = %v, want %v", e.Floats["x"], want)
		}
	}
}

func TestTwoDimIndirection(t *testing.T) {
	e := env(t, `
param n, m
array ia[n, 2] int
array x[m]
loop i = 0, n { x[ia[i, 1]] += 10 }
`)
	e.SetParam("n", 2)
	e.SetParam("m", 4)
	// Row-major: ia[0] = (0, 3), ia[1] = (1, 2).
	if err := e.BindInt("ia", []int32{0, 3, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := e.Alloc(); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if x := e.Floats["x"]; x[3] != 10 || x[2] != 10 || x[0] != 0 {
		t.Fatalf("x = %v", x)
	}
}

func TestScalarTempsAndBuiltins(t *testing.T) {
	e := env(t, `
param n
array a[n]
loop i = 0, n {
    t = i + 1
    a[i] = sqrt(t * t) + min(i, 2) + abs(0 - 1) + max(0, i)
}
`)
	e.SetParam("n", 4)
	if err := e.Alloc(); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		want := float64(i+1) + math.Min(float64(i), 2) + 1 + float64(i)
		if e.Floats["a"][i] != want {
			t.Fatalf("a[%d] = %v, want %v", i, e.Floats["a"][i], want)
		}
	}
}

func TestSubtractAssign(t *testing.T) {
	e := env(t, `
param n
array a[n]
array ia[n] int
loop i = 0, n { a[ia[i]] -= 2 }
`)
	e.SetParam("n", 3)
	if err := e.BindInt("ia", []int32{0, 0, 2}); err != nil {
		t.Fatal(err)
	}
	if err := e.Alloc(); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if a := e.Floats["a"]; a[0] != -4 || a[2] != -2 {
		t.Fatalf("a = %v", a)
	}
}

func TestOutOfBoundsError(t *testing.T) {
	e := env(t, `
param n, m
array ia[n] int
array x[m]
loop i = 0, n { x[ia[i]] += 1 }
`)
	e.SetParam("n", 1)
	e.SetParam("m", 2)
	if err := e.BindInt("ia", []int32{5}); err != nil {
		t.Fatal(err)
	}
	if err := e.Alloc(); err != nil {
		t.Fatal(err)
	}
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-bounds indirection not caught: %v", err)
	}
}

func TestBindErrors(t *testing.T) {
	e := env(t, `
param n
array a[n]
array ia[n] int
loop i = 0, n { a[i] = 1 }
`)
	e.SetParam("n", 3)
	if err := e.BindFloat("zz", nil); err == nil {
		t.Error("bound undeclared array")
	}
	if err := e.BindFloat("ia", []float64{1, 2, 3}); err == nil {
		t.Error("bound float data to int array")
	}
	if err := e.BindInt("a", []int32{1, 2, 3}); err == nil {
		t.Error("bound int data to float array")
	}
	if err := e.BindFloat("a", []float64{1}); err == nil {
		t.Error("bound wrong length")
	}
}

func TestIterEval(t *testing.T) {
	e := env(t, `
param n
array y[n]
array a[n]
loop i = 0, n {
    t = y[i] * 2
    a[i] = t
}
`)
	e.SetParam("n", 3)
	if err := e.BindFloat("y", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := e.Alloc(); err != nil {
		t.Fatal(err)
	}
	l := e.Prog.Loops[0]
	exprs := []lang.Expr{l.Body[1].RHS} // "t"
	out := make([]float64, 1)
	if err := e.IterEval(l, 2, exprs, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 6 {
		t.Fatalf("IterEval = %v, want 6", out[0])
	}
}

func TestUnboundParam(t *testing.T) {
	e := env(t, `
param n
array a[n]
loop i = 0, n { a[i] = 1 }
`)
	if err := e.Alloc(); err == nil {
		t.Fatal("Alloc with unbound param succeeded")
	}
}

func TestLoopVarAndParamInExpr(t *testing.T) {
	e := env(t, `
param n
array a[n]
loop i = 0, n { a[i] = i * n }
`)
	e.SetParam("n", 3)
	if err := e.Alloc(); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if a := e.Floats["a"]; a[2] != 6 {
		t.Fatalf("a = %v", a)
	}
}
