// Package interp evaluates IRL programs against concrete data. It provides
// the sequential reference semantics (what the original loop computes) and
// the per-iteration evaluation hooks that let compiled loops execute on the
// phase runtime.
package interp

import (
	"fmt"
	"math"

	"irred/internal/lang"
)

// Env binds a program's parameters and arrays to values. Two-dimensional
// arrays are stored flattened row-major.
type Env struct {
	Prog   *lang.Program
	Params map[string]int
	Floats map[string][]float64
	Ints   map[string][]int32
}

// NewEnv creates an empty environment for prog.
func NewEnv(prog *lang.Program) *Env {
	return &Env{
		Prog:   prog,
		Params: map[string]int{},
		Floats: map[string][]float64{},
		Ints:   map[string][]int32{},
	}
}

// SetParam binds a parameter.
func (e *Env) SetParam(name string, v int) { e.Params[name] = v }

// extentVal resolves a declared extent.
func (e *Env) extentVal(x lang.Extent) (int, error) {
	if x.Param == "" {
		return x.Lit, nil
	}
	v, ok := e.Params[x.Param]
	if !ok {
		return 0, fmt.Errorf("interp: parameter %q unbound", x.Param)
	}
	return v, nil
}

// Size reports the flattened length of a declared array.
func (e *Env) Size(name string) (int, error) {
	decl := e.Prog.Array(name)
	if decl == nil {
		return 0, fmt.Errorf("interp: array %q not declared", name)
	}
	n := 1
	for _, d := range decl.Dims {
		v, err := e.extentVal(d)
		if err != nil {
			return 0, err
		}
		n *= v
	}
	return n, nil
}

// BindFloat binds a float array, validating its length.
func (e *Env) BindFloat(name string, data []float64) error {
	decl := e.Prog.Array(name)
	if decl == nil {
		return fmt.Errorf("interp: array %q not declared", name)
	}
	if decl.Int {
		return fmt.Errorf("interp: array %q is int", name)
	}
	n, err := e.Size(name)
	if err != nil {
		return err
	}
	if len(data) != n {
		return fmt.Errorf("interp: array %q needs %d elements, got %d", name, n, len(data))
	}
	e.Floats[name] = data
	return nil
}

// BindInt binds an int array, validating its length.
func (e *Env) BindInt(name string, data []int32) error {
	decl := e.Prog.Array(name)
	if decl == nil {
		return fmt.Errorf("interp: array %q not declared", name)
	}
	if !decl.Int {
		return fmt.Errorf("interp: array %q is float", name)
	}
	n, err := e.Size(name)
	if err != nil {
		return err
	}
	if len(data) != n {
		return fmt.Errorf("interp: array %q needs %d elements, got %d", name, n, len(data))
	}
	e.Ints[name] = data
	return nil
}

// Alloc binds fresh zeroed storage for every declared array that has no
// binding yet, so partially-bound programs can run.
func (e *Env) Alloc() error {
	for _, d := range e.Prog.Arrays {
		n, err := e.Size(d.Name)
		if err != nil {
			return err
		}
		if d.Int {
			if _, ok := e.Ints[d.Name]; !ok {
				e.Ints[d.Name] = make([]int32, n)
			}
		} else {
			if _, ok := e.Floats[d.Name]; !ok {
				e.Floats[d.Name] = make([]float64, n)
			}
		}
	}
	return nil
}

// frame is per-iteration evaluation state.
type frame struct {
	loopVar string
	i       int
	temps   map[string]float64
}

// EvalExpr evaluates an expression for iteration i of a loop.
func (e *Env) evalExpr(x lang.Expr, f *frame) (float64, error) {
	switch v := x.(type) {
	case *lang.Num:
		return v.Val, nil
	case *lang.Ident:
		if v.Name == f.loopVar {
			return float64(f.i), nil
		}
		if t, ok := f.temps[v.Name]; ok {
			return t, nil
		}
		if p, ok := e.Params[v.Name]; ok {
			return float64(p), nil
		}
		return 0, fmt.Errorf("interp:%s: unbound identifier %q", v.Pos, v.Name)
	case *lang.IndexExpr:
		idx, err := e.flatIndex(v, f)
		if err != nil {
			return 0, err
		}
		if data, ok := e.Floats[v.Array]; ok {
			return data[idx], nil
		}
		if data, ok := e.Ints[v.Array]; ok {
			return float64(data[idx]), nil
		}
		return 0, fmt.Errorf("interp:%s: array %q unbound", v.Pos, v.Array)
	case *lang.BinExpr:
		l, err := e.evalExpr(v.L, f)
		if err != nil {
			return 0, err
		}
		r, err := e.evalExpr(v.R, f)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case '+':
			return l + r, nil
		case '-':
			return l - r, nil
		case '*':
			return l * r, nil
		case '/':
			return l / r, nil
		}
		return 0, fmt.Errorf("interp:%s: bad operator %q", v.Pos, v.Op)
	case *lang.UnExpr:
		x, err := e.evalExpr(v.X, f)
		return -x, err
	case *lang.CallExpr:
		args := make([]float64, len(v.Args))
		for i, a := range v.Args {
			var err error
			if args[i], err = e.evalExpr(a, f); err != nil {
				return 0, err
			}
		}
		switch v.Fn {
		case "sqrt":
			return math.Sqrt(args[0]), nil
		case "abs":
			return math.Abs(args[0]), nil
		case "min":
			return math.Min(args[0], args[1]), nil
		case "max":
			return math.Max(args[0], args[1]), nil
		}
		return 0, fmt.Errorf("interp:%s: unknown builtin %q", v.Pos, v.Fn)
	default:
		return 0, fmt.Errorf("interp: unknown expression node %T", x)
	}
}

// flatIndex computes the flattened element index of an array reference.
func (e *Env) flatIndex(ix *lang.IndexExpr, f *frame) (int, error) {
	decl := e.Prog.Array(ix.Array)
	if decl == nil {
		return 0, fmt.Errorf("interp:%s: array %q not declared", ix.Pos, ix.Array)
	}
	if len(ix.Index) != len(decl.Dims) {
		return 0, fmt.Errorf("interp:%s: array %q has %d dims, indexed with %d", ix.Pos, ix.Array, len(decl.Dims), len(ix.Index))
	}
	idx := 0
	for d, sub := range ix.Index {
		v, err := e.evalExpr(sub, f)
		if err != nil {
			return 0, err
		}
		sv := int(v)
		if float64(sv) != v {
			return 0, fmt.Errorf("interp:%s: non-integer subscript %v", ix.Pos, v)
		}
		ext, err := e.extentVal(decl.Dims[d])
		if err != nil {
			return 0, err
		}
		if sv < 0 || sv >= ext {
			return 0, fmt.Errorf("interp:%s: %s subscript %d out of range [0,%d)", ix.Pos, ix.Array, sv, ext)
		}
		idx = idx*ext + sv
	}
	return idx, nil
}

// bounds evaluates a loop's iteration range.
func (e *Env) bounds(l *lang.Loop) (lo, hi int, err error) {
	f := &frame{loopVar: "", temps: nil}
	lov, err := e.evalExpr(l.Lo, f)
	if err != nil {
		return 0, 0, err
	}
	hiv, err := e.evalExpr(l.Hi, f)
	if err != nil {
		return 0, 0, err
	}
	return int(lov), int(hiv), nil
}

// RunLoop executes one loop sequentially.
func (e *Env) RunLoop(l *lang.Loop) error {
	lo, hi, err := e.bounds(l)
	if err != nil {
		return err
	}
	f := &frame{loopVar: l.Var, temps: map[string]float64{}}
	for i := lo; i < hi; i++ {
		f.i = i
		for k := range f.temps {
			delete(f.temps, k)
		}
		for _, st := range l.Body {
			v, err := e.evalExpr(st.RHS, f)
			if err != nil {
				return err
			}
			if st.Scalar != "" {
				f.temps[st.Scalar] = v
				continue
			}
			idx, err := e.flatIndex(st.Target, f)
			if err != nil {
				return err
			}
			data, ok := e.Floats[st.Target.Array]
			if !ok {
				return fmt.Errorf("interp:%s: cannot assign to int array %q", st.Pos, st.Target.Array)
			}
			switch st.Op {
			case lang.OpSet:
				data[idx] = v
			case lang.OpAdd:
				data[idx] += v
			case lang.OpSub:
				data[idx] -= v
			case lang.OpMul:
				data[idx] *= v
			case lang.OpMin:
				data[idx] = math.Min(data[idx], v)
			case lang.OpMax:
				data[idx] = math.Max(data[idx], v)
			}
		}
	}
	return nil
}

// Run executes every loop of the program in order.
func (e *Env) Run() error {
	for _, l := range e.Prog.Loops {
		if err := e.RunLoop(l); err != nil {
			return err
		}
	}
	return nil
}

// IterEval evaluates, for iteration i of loop l, the values of the given
// expressions after executing the loop's scalar definitions. It is the hook
// the compiled phase executor uses to compute per-iteration contributions.
func (e *Env) IterEval(l *lang.Loop, i int, exprs []lang.Expr, out []float64) error {
	f := &frame{loopVar: l.Var, i: i, temps: map[string]float64{}}
	for _, st := range l.Body {
		if st.Scalar != "" {
			v, err := e.evalExpr(st.RHS, f)
			if err != nil {
				return err
			}
			f.temps[st.Scalar] = v
		}
	}
	for j, x := range exprs {
		v, err := e.evalExpr(x, f)
		if err != nil {
			return err
		}
		out[j] = v
	}
	return nil
}
