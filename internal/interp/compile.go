package interp

import (
	"fmt"
	"math"

	"irred/internal/lang"
)

// This file compiles IRL expressions to a small stack bytecode so that
// per-iteration evaluation inside the phase runtime runs without AST
// walking or map lookups — the role the EARTH-C backend's code generation
// played. A Code object evaluates a loop's scalar definitions and a set of
// result expressions for one iteration.

type opcode uint8

const (
	opConst opcode = iota // push constants[a]
	opIter                // push float64(i)
	opLoad1               // push f64[a][idx] where idx = pop()
	opLoadI               // push i32[a][idx] as float64 where idx = pop()
	opReg                 // push regs[a]
	opAdd
	opSub
	opMul
	opDiv
	opNeg
	opSqrt
	opAbs
	opMin
	opMax
	opStore  // regs[a] = pop()
	opResult // out[a] = pop()
)

type instr struct {
	op opcode
	a  int32
}

// Code is a compiled per-iteration evaluator.
type Code struct {
	prog   []instr
	consts []float64
	f64    [][]float64 // referenced float arrays, resolved at compile time
	i32    [][]int32   // referenced int arrays
	nRegs  int
	nOut   int
	stack  []float64
	regs   []float64
}

// CompileIter compiles loop l's scalar definitions followed by the given
// result expressions. The returned Code is bound to the environment's
// current array bindings (rebinding arrays requires recompilation) and is
// NOT safe for concurrent use — clone one per goroutine with Clone.
func (e *Env) CompileIter(l *lang.Loop, results []lang.Expr) (*Code, error) {
	c := &compiler{env: e, loop: l, regOf: map[string]int32{}}
	for _, st := range l.Body {
		if st.Scalar == "" {
			continue
		}
		if err := c.expr(st.RHS); err != nil {
			return nil, err
		}
		reg, ok := c.regOf[st.Scalar]
		if !ok {
			reg = int32(len(c.regOf))
			c.regOf[st.Scalar] = reg
		}
		c.emit(instr{op: opStore, a: reg})
	}
	for j, r := range results {
		if err := c.expr(r); err != nil {
			return nil, err
		}
		c.emit(instr{op: opResult, a: int32(j)})
	}
	code := &Code{
		prog:   c.prog,
		consts: c.consts,
		f64:    c.f64,
		i32:    c.i32,
		nRegs:  len(c.regOf),
		nOut:   len(results),
	}
	code.stack = make([]float64, 0, 16)
	code.regs = make([]float64, code.nRegs)
	return code, nil
}

// Clone returns an independent evaluator sharing the immutable program and
// array bindings, for concurrent use from several goroutines.
func (c *Code) Clone() *Code {
	out := *c
	out.stack = make([]float64, 0, 16)
	out.regs = make([]float64, c.nRegs)
	return &out
}

// NumResults reports how many output values Eval produces.
func (c *Code) NumResults() int { return c.nOut }

// Eval runs the program for iteration i, writing the results into out
// (len >= NumResults). Index bounds are checked by the slice accesses.
func (c *Code) Eval(i int, out []float64) {
	s := c.stack[:0]
	fi := float64(i)
	for _, in := range c.prog {
		switch in.op {
		case opConst:
			s = append(s, c.consts[in.a])
		case opIter:
			s = append(s, fi)
		case opLoad1:
			idx := int(s[len(s)-1])
			s[len(s)-1] = c.f64[in.a][idx]
		case opLoadI:
			idx := int(s[len(s)-1])
			s[len(s)-1] = float64(c.i32[in.a][idx])
		case opReg:
			s = append(s, c.regs[in.a])
		case opAdd:
			s[len(s)-2] += s[len(s)-1]
			s = s[:len(s)-1]
		case opSub:
			s[len(s)-2] -= s[len(s)-1]
			s = s[:len(s)-1]
		case opMul:
			s[len(s)-2] *= s[len(s)-1]
			s = s[:len(s)-1]
		case opDiv:
			s[len(s)-2] /= s[len(s)-1]
			s = s[:len(s)-1]
		case opNeg:
			s[len(s)-1] = -s[len(s)-1]
		case opSqrt:
			s[len(s)-1] = math.Sqrt(s[len(s)-1])
		case opAbs:
			s[len(s)-1] = math.Abs(s[len(s)-1])
		case opMin:
			s[len(s)-2] = math.Min(s[len(s)-2], s[len(s)-1])
			s = s[:len(s)-1]
		case opMax:
			s[len(s)-2] = math.Max(s[len(s)-2], s[len(s)-1])
			s = s[:len(s)-1]
		case opStore:
			c.regs[in.a] = s[len(s)-1]
			s = s[:len(s)-1]
		case opResult:
			out[in.a] = s[len(s)-1]
			s = s[:len(s)-1]
		}
	}
	c.stack = s[:0]
}

type compiler struct {
	env    *Env
	loop   *lang.Loop
	prog   []instr
	consts []float64
	f64    [][]float64
	i32    [][]int32
	f64Of  map[string]int32
	i32Of  map[string]int32
	regOf  map[string]int32
}

func (c *compiler) emit(in instr) { c.prog = append(c.prog, in) }

func (c *compiler) constIdx(v float64) int32 {
	for i, x := range c.consts {
		if x == v {
			return int32(i)
		}
	}
	c.consts = append(c.consts, v)
	return int32(len(c.consts) - 1)
}

func (c *compiler) f64Idx(name string) (int32, error) {
	if c.f64Of == nil {
		c.f64Of = map[string]int32{}
	}
	if i, ok := c.f64Of[name]; ok {
		return i, nil
	}
	data, ok := c.env.Floats[name]
	if !ok {
		return 0, fmt.Errorf("interp: array %q unbound at compile time", name)
	}
	c.f64 = append(c.f64, data)
	c.f64Of[name] = int32(len(c.f64) - 1)
	return c.f64Of[name], nil
}

func (c *compiler) i32Idx(name string) (int32, error) {
	if c.i32Of == nil {
		c.i32Of = map[string]int32{}
	}
	if i, ok := c.i32Of[name]; ok {
		return i, nil
	}
	data, ok := c.env.Ints[name]
	if !ok {
		return 0, fmt.Errorf("interp: int array %q unbound at compile time", name)
	}
	c.i32 = append(c.i32, data)
	c.i32Of[name] = int32(len(c.i32) - 1)
	return c.i32Of[name], nil
}

// index compiles the flattened element index of an array reference onto
// the stack.
func (c *compiler) index(ix *lang.IndexExpr) error {
	decl := c.env.Prog.Array(ix.Array)
	if decl == nil {
		return fmt.Errorf("interp:%s: array %q not declared", ix.Pos, ix.Array)
	}
	if len(ix.Index) != len(decl.Dims) {
		return fmt.Errorf("interp:%s: array %q has %d dims, indexed with %d", ix.Pos, ix.Array, len(decl.Dims), len(ix.Index))
	}
	// idx = sub0; for each later dim: idx = idx*ext + sub.
	if err := c.expr(ix.Index[0]); err != nil {
		return err
	}
	for d := 1; d < len(ix.Index); d++ {
		ext, err := c.env.extentVal(decl.Dims[d])
		if err != nil {
			return err
		}
		c.emit(instr{op: opConst, a: c.constIdx(float64(ext))})
		c.emit(instr{op: opMul})
		if err := c.expr(ix.Index[d]); err != nil {
			return err
		}
		c.emit(instr{op: opAdd})
	}
	return nil
}

func (c *compiler) expr(e lang.Expr) error {
	switch x := e.(type) {
	case *lang.Num:
		c.emit(instr{op: opConst, a: c.constIdx(x.Val)})
	case *lang.Ident:
		if x.Name == c.loop.Var {
			c.emit(instr{op: opIter})
			return nil
		}
		if reg, ok := c.regOf[x.Name]; ok {
			c.emit(instr{op: opReg, a: reg})
			return nil
		}
		if v, ok := c.env.Params[x.Name]; ok {
			c.emit(instr{op: opConst, a: c.constIdx(float64(v))})
			return nil
		}
		return fmt.Errorf("interp:%s: unbound identifier %q", x.Pos, x.Name)
	case *lang.IndexExpr:
		if err := c.index(x); err != nil {
			return err
		}
		decl := c.env.Prog.Array(x.Array)
		if decl.Int {
			i, err := c.i32Idx(x.Array)
			if err != nil {
				return err
			}
			c.emit(instr{op: opLoadI, a: i})
		} else {
			i, err := c.f64Idx(x.Array)
			if err != nil {
				return err
			}
			c.emit(instr{op: opLoad1, a: i})
		}
	case *lang.BinExpr:
		if err := c.expr(x.L); err != nil {
			return err
		}
		if err := c.expr(x.R); err != nil {
			return err
		}
		switch x.Op {
		case '+':
			c.emit(instr{op: opAdd})
		case '-':
			c.emit(instr{op: opSub})
		case '*':
			c.emit(instr{op: opMul})
		case '/':
			c.emit(instr{op: opDiv})
		default:
			return fmt.Errorf("interp:%s: bad operator %q", x.Pos, x.Op)
		}
	case *lang.UnExpr:
		if err := c.expr(x.X); err != nil {
			return err
		}
		c.emit(instr{op: opNeg})
	case *lang.CallExpr:
		for _, a := range x.Args {
			if err := c.expr(a); err != nil {
				return err
			}
		}
		switch x.Fn {
		case "sqrt":
			c.emit(instr{op: opSqrt})
		case "abs":
			c.emit(instr{op: opAbs})
		case "min":
			c.emit(instr{op: opMin})
		case "max":
			c.emit(instr{op: opMax})
		default:
			return fmt.Errorf("interp:%s: unknown builtin %q", x.Pos, x.Fn)
		}
	default:
		return fmt.Errorf("interp: unknown expression node %T", e)
	}
	return nil
}
