package interp

import (
	"fmt"
	"math"

	"irred/internal/lang"
)

// This file compiles IRL expressions to a small stack bytecode so that
// per-iteration evaluation inside the phase runtime runs without AST
// walking or map lookups — the role the EARTH-C backend's code generation
// played. A Code object evaluates a loop's scalar definitions and a set of
// result expressions for one iteration.

type opcode uint8

const (
	opConst opcode = iota // push constants[a]
	opIter                // push float64(i)
	opLoad1               // push f64[a][idx] where idx = pop()
	opLoadI               // push i32[a][idx] as float64 where idx = pop()
	opReg                 // push regs[a]
	opAdd
	opSub
	opMul
	opDiv
	opNeg
	opSqrt
	opAbs
	opMin
	opMax
	opStore  // regs[a] = pop()
	opResult // out[a] = pop()

	// Checked variants, emitted unless a dataflow proof covers the access.
	opRange  // validate top of stack against checks[a]; fault + clamp to 0 on failure
	opLoad1C // opLoad1 with the index validated against checks[a] first
	opLoadIC // opLoadI with the index validated against checks[a] first
)

type instr struct {
	op opcode
	a  int32
}

// check is one range-check site: the exclusive extent the value must stay
// under and a prerendered message prefix naming the reference.
type check struct {
	arr int32  // f64/i32 slot for checked loads; -1 for subscript checks
	ext int32  // exclusive upper bound (values must be integers in [0, ext))
	msg string // "pos: ref" used in fault reports
}

// Code is a compiled per-iteration evaluator.
type Code struct {
	prog   []instr
	consts []float64
	f64    [][]float64 // referenced float arrays, resolved at compile time
	i32    [][]int32   // referenced int arrays
	checks []check
	nRegs  int
	nOut   int
	stack  []float64
	regs   []float64
	err    error // first range fault, nil while clean
}

// CompileOpts controls bounds-check emission.
type CompileOpts struct {
	// Unchecked reports whether the given array reference occurrence is
	// proven in-bounds (by identity), licensing the compiler to elide its
	// range checks. Nil means nothing is proven: every access is checked.
	// The caller owns the soundness of the predicate — the canonical
	// implementation is dataflow.Facts.RefProven over a proof computed
	// from this same environment's bindings.
	Unchecked func(ix *lang.IndexExpr) bool
}

// CompileIter compiles loop l's scalar definitions followed by the given
// result expressions, with every array access range-checked (faults are
// recorded, not panics — see Err). The returned Code is bound to the
// environment's current array bindings (rebinding arrays requires
// recompilation) and is NOT safe for concurrent use — clone one per
// goroutine with Clone.
func (e *Env) CompileIter(l *lang.Loop, results []lang.Expr) (*Code, error) {
	return e.CompileIterOpts(l, results, CompileOpts{})
}

// CompileIterOpts is CompileIter with explicit bounds-check control.
func (e *Env) CompileIterOpts(l *lang.Loop, results []lang.Expr, opts CompileOpts) (*Code, error) {
	c := &compiler{env: e, loop: l, opts: opts, regOf: map[string]int32{}}
	for _, st := range l.Body {
		if st.Scalar == "" {
			continue
		}
		if err := c.expr(st.RHS); err != nil {
			return nil, err
		}
		reg, ok := c.regOf[st.Scalar]
		if !ok {
			reg = int32(len(c.regOf))
			c.regOf[st.Scalar] = reg
		}
		c.emit(instr{op: opStore, a: reg})
	}
	for j, r := range results {
		if err := c.expr(r); err != nil {
			return nil, err
		}
		c.emit(instr{op: opResult, a: int32(j)})
	}
	code := &Code{
		prog:   c.prog,
		consts: c.consts,
		f64:    c.f64,
		i32:    c.i32,
		checks: c.checks,
		nRegs:  len(c.regOf),
		nOut:   len(results),
	}
	code.stack = make([]float64, 0, 16)
	code.regs = make([]float64, code.nRegs)
	return code, nil
}

// Clone returns an independent evaluator sharing the immutable program and
// array bindings, for concurrent use from several goroutines. The clone
// starts with a clean fault state.
func (c *Code) Clone() *Code {
	out := *c
	out.stack = make([]float64, 0, 16)
	out.regs = make([]float64, c.nRegs)
	out.err = nil
	return &out
}

// NumResults reports how many output values Eval produces.
func (c *Code) NumResults() int { return c.nOut }

// NumChecks reports how many range-check sites the compiled code carries;
// zero means the whole loop runs unchecked (fully proven).
func (c *Code) NumChecks() int { return len(c.checks) }

// Err reports the first range fault recorded by checked execution, or nil.
// A faulting access clamps to a safe value and evaluation continues, so a
// run always completes; callers inspect Err afterwards. Clones fault
// independently.
func (c *Code) Err() error { return c.err }

// fault records the first out-of-range access.
func (c *Code) fault(ck *check, v float64) {
	if c.err == nil {
		c.err = fmt.Errorf("interp: %s: subscript %v out of range [0, %d)", ck.msg, v, ck.ext)
	}
}

// Eval runs the program for iteration i, writing the results into out
// (len >= NumResults). Index bounds are checked by the slice accesses.
func (c *Code) Eval(i int, out []float64) {
	s := c.stack[:0]
	fi := float64(i)
	for _, in := range c.prog {
		switch in.op {
		case opConst:
			s = append(s, c.consts[in.a])
		case opIter:
			s = append(s, fi)
		case opLoad1:
			idx := int(s[len(s)-1])
			s[len(s)-1] = c.f64[in.a][idx]
		case opLoadI:
			idx := int(s[len(s)-1])
			s[len(s)-1] = float64(c.i32[in.a][idx])
		case opReg:
			s = append(s, c.regs[in.a])
		case opAdd:
			s[len(s)-2] += s[len(s)-1]
			s = s[:len(s)-1]
		case opSub:
			s[len(s)-2] -= s[len(s)-1]
			s = s[:len(s)-1]
		case opMul:
			s[len(s)-2] *= s[len(s)-1]
			s = s[:len(s)-1]
		case opDiv:
			s[len(s)-2] /= s[len(s)-1]
			s = s[:len(s)-1]
		case opNeg:
			s[len(s)-1] = -s[len(s)-1]
		case opSqrt:
			s[len(s)-1] = math.Sqrt(s[len(s)-1])
		case opAbs:
			s[len(s)-1] = math.Abs(s[len(s)-1])
		case opMin:
			s[len(s)-2] = math.Min(s[len(s)-2], s[len(s)-1])
			s = s[:len(s)-1]
		case opMax:
			s[len(s)-2] = math.Max(s[len(s)-2], s[len(s)-1])
			s = s[:len(s)-1]
		case opStore:
			c.regs[in.a] = s[len(s)-1]
			s = s[:len(s)-1]
		case opResult:
			out[in.a] = s[len(s)-1]
			s = s[:len(s)-1]
		case opRange:
			ck := &c.checks[in.a]
			v := s[len(s)-1]
			if !(v >= 0 && v < float64(ck.ext)) || v != math.Trunc(v) {
				c.fault(ck, v)
				s[len(s)-1] = 0
			}
		case opLoad1C:
			ck := &c.checks[in.a]
			arr := c.f64[ck.arr]
			idx := int(s[len(s)-1])
			if idx < 0 || idx >= len(arr) {
				c.fault(ck, s[len(s)-1])
				s[len(s)-1] = 0
			} else {
				s[len(s)-1] = arr[idx]
			}
		case opLoadIC:
			ck := &c.checks[in.a]
			arr := c.i32[ck.arr]
			idx := int(s[len(s)-1])
			if idx < 0 || idx >= len(arr) {
				c.fault(ck, s[len(s)-1])
				s[len(s)-1] = 0
			} else {
				s[len(s)-1] = float64(arr[idx])
			}
		}
	}
	c.stack = s[:0]
}

type compiler struct {
	env    *Env
	loop   *lang.Loop
	opts   CompileOpts
	prog   []instr
	consts []float64
	f64    [][]float64
	i32    [][]int32
	checks []check
	f64Of  map[string]int32
	i32Of  map[string]int32
	regOf  map[string]int32
}

func (c *compiler) emit(in instr) { c.prog = append(c.prog, in) }

func (c *compiler) constIdx(v float64) int32 {
	for i, x := range c.consts {
		if x == v {
			return int32(i)
		}
	}
	c.consts = append(c.consts, v)
	return int32(len(c.consts) - 1)
}

func (c *compiler) f64Idx(name string) (int32, error) {
	if c.f64Of == nil {
		c.f64Of = map[string]int32{}
	}
	if i, ok := c.f64Of[name]; ok {
		return i, nil
	}
	data, ok := c.env.Floats[name]
	if !ok {
		return 0, fmt.Errorf("interp: array %q unbound at compile time", name)
	}
	c.f64 = append(c.f64, data)
	c.f64Of[name] = int32(len(c.f64) - 1)
	return c.f64Of[name], nil
}

func (c *compiler) i32Idx(name string) (int32, error) {
	if c.i32Of == nil {
		c.i32Of = map[string]int32{}
	}
	if i, ok := c.i32Of[name]; ok {
		return i, nil
	}
	data, ok := c.env.Ints[name]
	if !ok {
		return 0, fmt.Errorf("interp: int array %q unbound at compile time", name)
	}
	c.i32 = append(c.i32, data)
	c.i32Of[name] = int32(len(c.i32) - 1)
	return c.i32Of[name], nil
}

// checkIdx interns a range-check site.
func (c *compiler) checkIdx(arr, ext int32, msg string) int32 {
	c.checks = append(c.checks, check{arr: arr, ext: ext, msg: msg})
	return int32(len(c.checks) - 1)
}

// unchecked reports whether the access is covered by the caller's proof.
func (c *compiler) unchecked(ix *lang.IndexExpr) bool {
	return c.opts.Unchecked != nil && c.opts.Unchecked(ix)
}

// index compiles the flattened element index of an array reference onto
// the stack. Unless the reference is proven in-bounds, every subscript is
// validated against its declared extent (opRange) before it participates
// in the flattening — a faulting subscript is clamped to 0 so evaluation
// can continue, with the fault recorded on the Code.
func (c *compiler) index(ix *lang.IndexExpr) error {
	decl := c.env.Prog.Array(ix.Array)
	if decl == nil {
		return fmt.Errorf("interp:%s: array %q not declared", ix.Pos, ix.Array)
	}
	if len(ix.Index) != len(decl.Dims) {
		return fmt.Errorf("interp:%s: array %q has %d dims, indexed with %d", ix.Pos, ix.Array, len(decl.Dims), len(ix.Index))
	}
	checked := !c.unchecked(ix)
	emitCheck := func(d int) error {
		if !checked {
			return nil
		}
		ext, err := c.env.extentVal(decl.Dims[d])
		if err != nil {
			return err
		}
		msg := fmt.Sprintf("%s: %s dim %d", ix.Pos, ix, d)
		c.emit(instr{op: opRange, a: c.checkIdx(-1, int32(ext), msg)})
		return nil
	}
	// idx = sub0; for each later dim: idx = idx*ext + sub.
	if err := c.expr(ix.Index[0]); err != nil {
		return err
	}
	if err := emitCheck(0); err != nil {
		return err
	}
	for d := 1; d < len(ix.Index); d++ {
		ext, err := c.env.extentVal(decl.Dims[d])
		if err != nil {
			return err
		}
		c.emit(instr{op: opConst, a: c.constIdx(float64(ext))})
		c.emit(instr{op: opMul})
		if err := c.expr(ix.Index[d]); err != nil {
			return err
		}
		if err := emitCheck(d); err != nil {
			return err
		}
		c.emit(instr{op: opAdd})
	}
	return nil
}

func (c *compiler) expr(e lang.Expr) error {
	switch x := e.(type) {
	case *lang.Num:
		c.emit(instr{op: opConst, a: c.constIdx(x.Val)})
	case *lang.Ident:
		if x.Name == c.loop.Var {
			c.emit(instr{op: opIter})
			return nil
		}
		if reg, ok := c.regOf[x.Name]; ok {
			c.emit(instr{op: opReg, a: reg})
			return nil
		}
		if v, ok := c.env.Params[x.Name]; ok {
			c.emit(instr{op: opConst, a: c.constIdx(float64(v))})
			return nil
		}
		return fmt.Errorf("interp:%s: unbound identifier %q", x.Pos, x.Name)
	case *lang.IndexExpr:
		if err := c.index(x); err != nil {
			return err
		}
		decl := c.env.Prog.Array(x.Array)
		checked := !c.unchecked(x)
		if decl.Int {
			i, err := c.i32Idx(x.Array)
			if err != nil {
				return err
			}
			if checked {
				msg := fmt.Sprintf("%s: %s", x.Pos, x)
				c.emit(instr{op: opLoadIC, a: c.checkIdx(i, int32(len(c.i32[i])), msg)})
			} else {
				c.emit(instr{op: opLoadI, a: i})
			}
		} else {
			i, err := c.f64Idx(x.Array)
			if err != nil {
				return err
			}
			if checked {
				msg := fmt.Sprintf("%s: %s", x.Pos, x)
				c.emit(instr{op: opLoad1C, a: c.checkIdx(i, int32(len(c.f64[i])), msg)})
			} else {
				c.emit(instr{op: opLoad1, a: i})
			}
		}
	case *lang.BinExpr:
		if err := c.expr(x.L); err != nil {
			return err
		}
		if err := c.expr(x.R); err != nil {
			return err
		}
		switch x.Op {
		case '+':
			c.emit(instr{op: opAdd})
		case '-':
			c.emit(instr{op: opSub})
		case '*':
			c.emit(instr{op: opMul})
		case '/':
			c.emit(instr{op: opDiv})
		default:
			return fmt.Errorf("interp:%s: bad operator %q", x.Pos, x.Op)
		}
	case *lang.UnExpr:
		if err := c.expr(x.X); err != nil {
			return err
		}
		c.emit(instr{op: opNeg})
	case *lang.CallExpr:
		for _, a := range x.Args {
			if err := c.expr(a); err != nil {
				return err
			}
		}
		switch x.Fn {
		case "sqrt":
			c.emit(instr{op: opSqrt})
		case "abs":
			c.emit(instr{op: opAbs})
		case "min":
			c.emit(instr{op: opMin})
		case "max":
			c.emit(instr{op: opMax})
		default:
			return fmt.Errorf("interp:%s: unknown builtin %q", x.Pos, x.Fn)
		}
	default:
		return fmt.Errorf("interp: unknown expression node %T", e)
	}
	return nil
}
