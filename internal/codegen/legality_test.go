package codegen

import (
	"math/rand"
	"strings"
	"testing"

	"irred/internal/algebra"
	"irred/internal/interp"
)

func TestPlansCarrySchedulLicenses(t *testing.T) {
	u, err := Compile(figure1)
	if err != nil {
		t.Fatal(err)
	}
	p := u.Plans[0]
	if p.License == nil {
		t.Fatal("compiled plan has no schedule license")
	}
	if err := p.License.Verify(); err != nil {
		t.Fatalf("license ledger self-check: %v", err)
	}
	if p.License.Level() != "TreeFoldLegal" {
		t.Fatalf("figure1 is a float += reduction; level = %s\n%s", p.License.Level(), p.License.Report())
	}
	if p.Combine.Kind != algebra.Add {
		t.Fatalf("combine = %s", p.Combine)
	}
}

func TestBuildLoopRefusesUnlicensedPlan(t *testing.T) {
	u, err := Compile(`
param n, m
array ia[n] int
array x[m]
array w[n]
loop i = 0, n {
    x[ia[i]] = x[ia[i]] * 0.5 + w[i]
}
`)
	if err != nil {
		t.Fatal(err)
	}
	p := u.Plans[0]
	if p.Kind != Irregular {
		t.Fatal("exponential-decay update should still be recognized as an irregular reduction")
	}
	if p.License.Rotation {
		t.Fatalf("a*0.5+b is not associative; rotation must be refused\n%s", p.License.Report())
	}
	env := interp.NewEnv(u.Fissioned)
	env.SetParam("n", 8)
	env.SetParam("m", 4)
	_, _, err = p.BuildLoop(env, 2, 1, 0)
	if err == nil {
		t.Fatal("BuildLoop must refuse an unlicensed plan")
	}
	if !strings.Contains(err.Error(), "Illegal") || !strings.Contains(err.Error(), "legality-report") {
		t.Fatalf("refusal should name the license level and the report flag: %v", err)
	}
}

// TestFissionCarriesLicense is the fission x legality contract: a
// fissioned group inherits the meet of its own license with its parent
// loop's, so splitting an illegal loop never launders a legal-looking
// fragment into a licensed schedule.
func TestFissionCarriesLicense(t *testing.T) {
	u, err := Compile(`
param n, m
array ia[n] int
array ja[n] int
array x[m]
array z[m]
array w[n]
loop i = 0, n {
    x[ia[i]] += w[i]
    z[ja[i]] = z[ja[i]] * 0.5 + w[i]
}
`)
	if err != nil {
		t.Fatal(err)
	}
	var irr []*Plan
	for _, p := range u.Plans {
		if p.Kind == Irregular {
			irr = append(irr, p)
		}
	}
	if len(irr) != 2 {
		t.Fatalf("want 2 irregular plans after fission, got %d", len(irr))
	}
	for _, p := range irr {
		if p.License.Rotation || p.License.Tile || p.License.TreeFold {
			t.Fatalf("%s: fission widened the parent's refused license:\n%s", p.Name, p.License.Report())
		}
	}
	// The add group is clean in isolation; the refusal must come from the
	// inherited parent verdict, recorded in the ledger.
	for _, p := range irr {
		if len(p.Info.Reductions) > 0 && p.Info.Reductions[0].Array == "x" {
			found := false
			for _, j := range p.License.Ledger {
				if j.Rule == "inherited" {
					found = true
				}
			}
			if !found {
				t.Fatalf("add group's ledger should record the inherited narrowing:\n%s", p.License.Report())
			}
		}
	}
}

// TestTreeFoldEndToEnd drives the licensed tree-fold path from IRL source
// to bitwise-identical results: a min-reduction over integral data must
// agree exactly with the sequential interpreter.
func TestTreeFoldEndToEnd(t *testing.T) {
	src := `
param n, m
array e[n] int
array best[m]
array w[n]
loop j = 0, m {
    best[j] = 1000000
}
loop i = 0, n {
    best[e[i]] min= w[i]
}
`
	u, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	var plan *Plan
	for _, p := range u.Plans {
		if p.Kind == Irregular {
			plan = p
		}
	}
	if plan == nil {
		t.Fatal("no irregular plan")
	}
	if plan.Combine.Kind != algebra.Min {
		t.Fatalf("combine = %s", plan.Combine)
	}
	if !plan.License.TreeFold {
		t.Fatalf("min= must license tree-fold\n%s", plan.License.Report())
	}

	const n, m = 400, 37
	mkEnv := func() *interp.Env {
		rng := rand.New(rand.NewSource(13))
		env := interp.NewEnv(u.Fissioned)
		env.SetParam("n", n)
		env.SetParam("m", m)
		e := make([]int32, n)
		w := make([]float64, n)
		for i := range e {
			e[i] = int32(rng.Intn(m))
			w[i] = float64(rng.Intn(2000) - 1000)
		}
		if err := env.BindInt("e", e); err != nil {
			t.Fatal(err)
		}
		if err := env.BindFloat("w", w); err != nil {
			t.Fatal(err)
		}
		if err := env.Alloc(); err != nil {
			t.Fatal(err)
		}
		return env
	}

	ref := mkEnv()
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	want := ref.Floats["best"]

	env := mkEnv()
	for i := range env.Floats["best"] {
		env.Floats["best"][i] = 1000000 // the init loop, run by hand
	}
	tf, err := plan.BuildTreeFold(env, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Pack(env, tf.X); err != nil {
		t.Fatal(err)
	}
	if err := tf.Run(1); err != nil {
		t.Fatal(err)
	}
	if err := plan.Scatter(env, tf.X); err != nil {
		t.Fatal(err)
	}
	got := env.Floats["best"]
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("best[%d] = %v, want %v (must be bitwise)", i, got[i], want[i])
		}
	}
}

func TestBuildTreeFoldRefusesRotationOnly(t *testing.T) {
	// A float += reduction is TreeFoldLegal, but tampering the plan's
	// license down to rotation-only must block the tree-fold path via the
	// runtime's license check.
	u, err := Compile(figure1)
	if err != nil {
		t.Fatal(err)
	}
	p := u.Plans[0]
	env := bindFigure1(t, u, 50, 8, 2)
	lic := *p.License
	lic.TreeFold = false
	lic.Ledger = nil // drop the ledger so the downgrade is "self-consistent"
	weak := *p
	weak.License = &lic
	if _, err := weak.BuildTreeFold(env, 2); err == nil {
		t.Fatal("rotation-only license must block BuildTreeFold")
	}
}
