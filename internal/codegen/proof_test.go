package codegen

import (
	"math"
	"strings"
	"testing"

	"irred/internal/inspector"
	"irred/internal/interp"
	"irred/internal/rts"
)

// readIndirection reduces into y through one indirection and reads x
// through a second, independent one — so corrupting col defeats only the
// read proof while the schedule stays valid.
const readIndirection = `
param n, m
array row[n] int
array col[n] int
array x[m]
array y[m]
loop i = 0, n {
    y[row[i]] += x[col[i]] * 2.0
}
`

func bindReadIndirection(t *testing.T, u *Unit, row, col []int32, m int) *interp.Env {
	t.Helper()
	env := interp.NewEnv(u.Fissioned)
	env.SetParam("n", len(row))
	env.SetParam("m", m)
	if err := env.BindInt("row", row); err != nil {
		t.Fatal(err)
	}
	if err := env.BindInt("col", col); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, m)
	for i := range x {
		x[i] = float64(i + 1)
	}
	if err := env.BindFloat("x", x); err != nil {
		t.Fatal(err)
	}
	if err := env.Alloc(); err != nil {
		t.Fatal(err)
	}
	return env
}

func TestBuildLoopCarriesProof(t *testing.T) {
	u, err := Compile(figure1)
	if err != nil {
		t.Fatal(err)
	}
	env := bindFigure1(t, u, 300, 32, 21)
	p := u.Plans[0]
	loop, _, err := p.BuildLoop(env, 4, 2, inspector.Cyclic)
	if err != nil {
		t.Fatal(err)
	}
	if p.Facts == nil {
		t.Fatal("BuildLoop must record a proof artifact")
	}
	if !p.Facts.AllProven {
		t.Fatalf("figure1 with scanned ia must prove every obligation:\n%s", p.Facts.Report())
	}
	if !p.Facts.IndProven || p.Facts.NumElems != 32 {
		t.Fatalf("indirection claim missing: %+v", p.Facts)
	}
	if loop.Proof != p.Facts {
		t.Fatal("loop must carry the proof")
	}
	nat, err := rts.NewNative(loop)
	if err != nil {
		t.Fatal(err)
	}
	if nat.CheckTargets {
		t.Fatal("proof-carrying loop must elide native target checks")
	}
	if p.codes[0].NumChecks() != 0 {
		t.Fatalf("fully proven body compiled with %d checks", p.codes[0].NumChecks())
	}
	if !strings.Contains(p.Facts.Report(), "complete (unchecked execution)") {
		t.Errorf("report should state unchecked execution:\n%s", p.Facts.Report())
	}
}

func TestForceCheckedKeepsChecks(t *testing.T) {
	u, err := Compile(figure1)
	if err != nil {
		t.Fatal(err)
	}
	env := bindFigure1(t, u, 300, 32, 22)
	p := u.Plans[0]
	loop, _, err := p.BuildLoopOpts(env, 4, 2, inspector.Cyclic, BuildOpts{ForceChecked: true})
	if err != nil {
		t.Fatal(err)
	}
	if loop.Proof != nil {
		t.Fatal("ForceChecked must not hand the proof to the runtime")
	}
	if p.Facts == nil || !p.Facts.AllProven {
		t.Fatal("the proof is still computed and recorded on the plan")
	}
	if p.codes[0].NumChecks() == 0 {
		t.Fatal("ForceChecked body must keep its range checks")
	}
	nat, err := rts.NewNative(loop)
	if err != nil {
		t.Fatal(err)
	}
	if !nat.CheckTargets {
		t.Fatal("ForceChecked loop must keep native target checks")
	}
}

// The ISSUE's acceptance demo: deliberately out-of-range input makes the
// proof incomplete, the affected access falls back to checked execution,
// and the run completes with a recorded fault instead of a panic.
func TestDeliberateOOBFallsBackToChecked(t *testing.T) {
	u, err := Compile(readIndirection)
	if err != nil {
		t.Fatal(err)
	}
	const n, m = 64, 16
	row := make([]int32, n)
	col := make([]int32, n)
	for i := range row {
		row[i] = int32(i % m)
		col[i] = int32((i * 3) % m)
	}
	col[5] = m + 7 // deliberately out of range

	env := bindReadIndirection(t, u, row, col, m)
	p := u.Plans[0]
	loop, contribs, err := p.BuildLoop(env, 4, 2, inspector.Cyclic)
	if err != nil {
		t.Fatal(err)
	}
	if p.Facts.AllProven {
		t.Fatal("out-of-range col must defeat the full proof")
	}
	if !p.Facts.IndProven {
		t.Fatal("row is in range, so the rotated-array claim still holds")
	}
	if !strings.Contains(p.Facts.Report(), "INCOMPLETE") {
		t.Errorf("report should state the fallback:\n%s", p.Facts.Report())
	}

	nat, err := rts.NewNative(loop)
	if err != nil {
		t.Fatal(err)
	}
	nat.Contribs = contribs
	if err := nat.Run(1); err != nil {
		t.Fatalf("checked fallback must complete the run: %v", err)
	}
	ferr := p.RuntimeErr()
	if ferr == nil {
		t.Fatal("the out-of-range access must surface as a recorded fault")
	}
	if !strings.Contains(ferr.Error(), "x[col[i]]") {
		t.Errorf("fault should name the access: %v", ferr)
	}

	// Every iteration except the faulting one matches the sequential
	// interpretation with the same clamp-to-zero semantics.
	want := make([]float64, m)
	for i := 0; i < n; i++ {
		c := int(col[i])
		if c >= m {
			c = 0 // checked execution clamps the faulting access
		}
		want[int(row[i])] += float64(c+1) * 2
	}
	for e := 0; e < m; e++ {
		if math.Abs(nat.X[e]-want[e]) > 1e-9 {
			t.Fatalf("x[%d] = %v, want %v", e, nat.X[e], want[e])
		}
	}
}

// With valid data the same program proves completely, including the read
// through the second indirection.
func TestReadIndirectionProvenWhenValid(t *testing.T) {
	u, err := Compile(readIndirection)
	if err != nil {
		t.Fatal(err)
	}
	const n, m = 64, 16
	row := make([]int32, n)
	col := make([]int32, n)
	for i := range row {
		row[i] = int32(i % m)
		col[i] = int32((i * 5) % m)
	}
	env := bindReadIndirection(t, u, row, col, m)
	p := u.Plans[0]
	_, _, err = p.BuildLoop(env, 4, 2, inspector.Cyclic)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Facts.AllProven {
		t.Fatalf("valid data must prove the loop:\n%s", p.Facts.Report())
	}
	if p.RuntimeErr() != nil {
		t.Fatal("no run yet, no faults")
	}
}
