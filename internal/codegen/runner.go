package codegen

import (
	"fmt"

	"irred/internal/inspector"
	"irred/internal/interp"
	"irred/internal/rts"
)

// Runner executes a whole compiled program — prologues, irregular reduction
// loops on the phase runtime, and regular loops — repeatedly against one
// environment, the way a timestep loop drives the paper's kernels. The
// LightInspector schedules and the bytecode for every irregular plan are
// built once and reused across steps, matching the paper's methodology
// (inspector executed once per run).
type Runner struct {
	Unit  *Unit
	Env   *interp.Env
	procs int

	plans []runnerPlan
}

type runnerPlan struct {
	plan   *Plan
	native *rts.Native
}

// NewRunner prepares every plan for repeated execution at the given
// machine shape. The environment must already have all source arrays
// bound (Alloc'd).
func (u *Unit) NewRunner(env *interp.Env, procs, k int, dist inspector.Dist) (*Runner, error) {
	if procs <= 0 || k <= 0 {
		return nil, fmt.Errorf("codegen: runner needs procs >= 1 and k >= 1")
	}
	r := &Runner{Unit: u, Env: env, procs: procs}
	for _, p := range u.Plans {
		rp := runnerPlan{plan: p}
		if p.Kind == Irregular {
			loop, contribs, err := p.BuildLoop(env, procs, k, dist)
			if err != nil {
				return nil, err
			}
			nat, err := rts.NewNative(loop)
			if err != nil {
				return nil, err
			}
			nat.Contribs = contribs
			rp.native = nat
		}
		r.plans = append(r.plans, rp)
	}
	return r, nil
}

// Step executes the whole program once: each plan in order, irregular
// loops on the phase runtime (accumulating into the environment's
// reduction arrays), regular loops via the interpreter.
func (r *Runner) Step() error {
	for _, rp := range r.plans {
		if rp.native == nil {
			if err := r.Env.RunLoop(rp.plan.Loop); err != nil {
				return err
			}
			continue
		}
		// Load current reduction-array contents, sweep, write back.
		if err := rp.plan.Pack(r.Env, rp.native.X); err != nil {
			return err
		}
		if err := rp.native.Run(1); err != nil {
			return err
		}
		if err := rp.plan.Scatter(r.Env, rp.native.X); err != nil {
			return err
		}
	}
	return nil
}

// Run executes steps timesteps.
func (r *Runner) Run(steps int) error {
	for s := 0; s < steps; s++ {
		if err := r.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Pack loads the environment's reduction arrays into the runtime's rotated
// array (the inverse of Scatter), so a sweep accumulates on top of the
// current values.
func (p *Plan) Pack(env *interp.Env, x []float64) error {
	arrays := p.ReductionArrays()
	comp := len(arrays)
	for c, a := range arrays {
		data, ok := env.Floats[a]
		if !ok {
			return fmt.Errorf("codegen: array %q unbound", a)
		}
		for e := range data {
			x[e*comp+c] = data[e]
		}
	}
	return nil
}
