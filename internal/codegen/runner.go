package codegen

import (
	"fmt"

	"irred/internal/inspector"
	"irred/internal/interp"
	"irred/internal/rts"
)

// Runner executes a whole compiled program — prologues, irregular reduction
// loops on the phase runtime, and regular loops — repeatedly against one
// environment, the way a timestep loop drives the paper's kernels. The
// LightInspector schedules and the bytecode for every irregular plan are
// built once and reused across steps, matching the paper's methodology
// (inspector executed once per run).
type Runner struct {
	Unit  *Unit
	Env   *interp.Env
	procs int

	plans       []runnerPlan
	inspections int
	reuses      int
}

type runnerPlan struct {
	plan   *Plan
	native *rts.Native
}

// RunnerOpts controls schedule sharing across the program's plans.
type RunnerOpts struct {
	// NoReuse disables the reuse license: every irregular plan runs its
	// own inspection, PR-6-era behavior. The difftest oracle flips this
	// to prove reuse-on and reuse-off agree bitwise.
	NoReuse bool
	// VerifyReuse hard-errors when a granted plan's content key misses
	// the shared slot — evidence of a stale or forged grant — instead of
	// soundly falling back to a fresh inspection.
	VerifyReuse bool
}

// NewRunner prepares every plan for repeated execution at the given
// machine shape, sharing inspector schedules across plans the unit's
// reuse license proves equivalent. The environment must already have
// all source arrays bound (Alloc'd).
func (u *Unit) NewRunner(env *interp.Env, procs, k int, dist inspector.Dist) (*Runner, error) {
	return u.NewRunnerOpts(env, procs, k, dist, RunnerOpts{})
}

// NewRunnerOpts is NewRunner with explicit reuse control.
//
// Reuse is consumed proof-first, applied content-addressed: only plans
// the verified license grants consult the shared slots, and a slot is
// keyed by inspector.ScheduleKey over the plan's concrete Config and
// indirection columns — so even a license that somehow survived Verify
// while wrong cannot attach a foreign schedule to a loop; the key
// mismatch surfaces as a fresh inspection (or a hard error under
// VerifyReuse).
func (u *Unit) NewRunnerOpts(env *interp.Env, procs, k int, dist inspector.Dist, opts RunnerOpts) (*Runner, error) {
	if procs <= 0 || k <= 0 {
		return nil, fmt.Errorf("codegen: runner needs procs >= 1 and k >= 1")
	}
	reuse := u.Reuse
	if opts.NoReuse {
		reuse = nil
	}
	if reuse != nil {
		if err := reuse.Verify(); err != nil {
			return nil, fmt.Errorf("codegen: refusing schedule reuse: %w", err)
		}
	}
	r := &Runner{Unit: u, Env: env, procs: procs}
	slots := map[string][]*inspector.Schedule{}
	for i, p := range u.Plans {
		rp := runnerPlan{plan: p}
		if p.Kind == Irregular {
			loop, contribs, err := p.BuildLoop(env, procs, k, dist)
			if err != nil {
				return nil, err
			}
			key := inspector.ScheduleKey(loop.Cfg, loop.Ind...)
			var scheds []*inspector.Schedule
			if reuse != nil && reuse.ReuseOf(i) >= 0 {
				if shared, ok := slots[key]; ok {
					scheds = shared
					r.reuses++
				} else if opts.VerifyReuse {
					return nil, fmt.Errorf("codegen: %s: reuse license grants loop %d the schedules of loop %d, but the content key matches no inspected slot — the grant is stale or forged",
						p.Name, i, reuse.ReuseOf(i))
				}
			}
			if scheds == nil {
				scheds, err = loop.Schedules()
				if err != nil {
					return nil, err
				}
				r.inspections++
			}
			slots[key] = scheds
			nat, err := rts.NewNativeFrom(loop, scheds)
			if err != nil {
				return nil, err
			}
			nat.Contribs = contribs
			rp.native = nat
		}
		r.plans = append(r.plans, rp)
	}
	return r, nil
}

// Inspections reports how many LightInspector passes the runner paid
// across all irregular plans; Reuses reports how many plans executed
// against a shared schedule slot instead. Their sum is the number of
// irregular plans.
func (r *Runner) Inspections() int { return r.inspections }

// Reuses reports the number of irregular plans served from a shared
// schedule slot under the unit's reuse license.
func (r *Runner) Reuses() int { return r.reuses }

// Step executes the whole program once: each plan in order, irregular
// loops on the phase runtime (accumulating into the environment's
// reduction arrays), regular loops via the interpreter.
func (r *Runner) Step() error {
	for _, rp := range r.plans {
		if rp.native == nil {
			if err := r.Env.RunLoop(rp.plan.Loop); err != nil {
				return err
			}
			continue
		}
		// Load current reduction-array contents, sweep, write back.
		if err := rp.plan.Pack(r.Env, rp.native.X); err != nil {
			return err
		}
		if err := rp.native.Run(1); err != nil {
			return err
		}
		if err := rp.plan.Scatter(r.Env, rp.native.X); err != nil {
			return err
		}
	}
	return nil
}

// Run executes steps timesteps.
func (r *Runner) Run(steps int) error {
	for s := 0; s < steps; s++ {
		if err := r.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Pack loads the environment's reduction arrays into the runtime's rotated
// array (the inverse of Scatter), so a sweep accumulates on top of the
// current values.
func (p *Plan) Pack(env *interp.Env, x []float64) error {
	arrays := p.ReductionArrays()
	comp := len(arrays)
	for c, a := range arrays {
		data, ok := env.Floats[a]
		if !ok {
			return fmt.Errorf("codegen: array %q unbound", a)
		}
		for e := range data {
			x[e*comp+c] = data[e]
		}
	}
	return nil
}
