package codegen

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"irred/internal/inspector"
	"irred/internal/interp"
	"irred/internal/rts"
)

const figure1 = `
param num_edges, num_nodes
array ia[num_edges, 2] int
array x[num_nodes]
array y[num_edges]
array c[num_nodes]
loop i = 0, num_edges {
    x[ia[i, 0]] += y[i] * c[ia[i, 0]]
    x[ia[i, 1]] += y[i] * c[ia[i, 1]]
}
`

// bindFigure1 creates an environment with random data for figure1.
func bindFigure1(t *testing.T, u *Unit, edges, nodes int, seed int64) *interp.Env {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	env := interp.NewEnv(u.Fissioned)
	env.SetParam("num_edges", edges)
	env.SetParam("num_nodes", nodes)
	ia := make([]int32, edges*2)
	for i := range ia {
		ia[i] = int32(rng.Intn(nodes))
	}
	if err := env.BindInt("ia", ia); err != nil {
		t.Fatal(err)
	}
	y := make([]float64, edges)
	cArr := make([]float64, nodes)
	for i := range y {
		y[i] = rng.Float64()
	}
	for i := range cArr {
		cArr[i] = rng.Float64()
	}
	if err := env.BindFloat("y", y); err != nil {
		t.Fatal(err)
	}
	if err := env.BindFloat("c", cArr); err != nil {
		t.Fatal(err)
	}
	if err := env.Alloc(); err != nil {
		t.Fatal(err)
	}
	return env
}

func TestCompileFigure1(t *testing.T) {
	u, err := Compile(figure1)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Plans) != 1 {
		t.Fatalf("plans = %d", len(u.Plans))
	}
	p := u.Plans[0]
	if p.Kind != Irregular {
		t.Fatal("figure1 loop not classified irregular")
	}
	if got := p.ReductionArrays(); len(got) != 1 || got[0] != "x" {
		t.Fatalf("reduction arrays = %v", got)
	}
	cost := p.EstimateCost(1)
	if cost.Flops == 0 || cost.IterArrays != 1 || cost.NodeArrays != 2 {
		t.Fatalf("cost estimate wrong: %+v", cost)
	}
}

// The headline end-to-end test: compile Figure 1, run it through the full
// phase runtime (LightInspector + portion rotation on goroutines), and
// compare against the direct sequential interpretation.
func TestCompiledLoopMatchesInterpreter(t *testing.T) {
	u, err := Compile(figure1)
	if err != nil {
		t.Fatal(err)
	}
	const edges, nodes = 500, 64

	// Sequential reference via the interpreter.
	ref := bindFigure1(t, u, edges, nodes, 7)
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	want := ref.Floats["x"]

	for _, procs := range []int{1, 2, 4} {
		for _, k := range []int{1, 2} {
			env := bindFigure1(t, u, edges, nodes, 7)
			loop, contribs, err := u.Plans[0].BuildLoop(env, procs, k, inspector.Cyclic)
			if err != nil {
				t.Fatal(err)
			}
			nat, err := rts.NewNative(loop)
			if err != nil {
				t.Fatal(err)
			}
			nat.Contribs = contribs
			if err := nat.Run(1); err != nil {
				t.Fatal(err)
			}
			if err := u.Plans[0].Scatter(env, nat.X); err != nil {
				t.Fatal(err)
			}
			got := env.Floats["x"]
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-9 {
					t.Fatalf("P=%d k=%d: x[%d] = %v, want %v", procs, k, i, got[i], want[i])
				}
			}
		}
	}
}

func TestCompiledFissionedProgram(t *testing.T) {
	src := `
param n, m
array ia[n, 2] int
array ja[n] int
array x[m]
array z[m]
array y[n]
loop i = 0, n {
    t = y[i] * 2
    x[ia[i, 0]] += t
    x[ia[i, 1]] += t + 1
    z[ja[i]] -= t * 3
}
`
	u, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	// Prologue (temp array) + 2 irregular loops.
	var irr, reg int
	for _, p := range u.Plans {
		if p.Kind == Irregular {
			irr++
		} else {
			reg++
		}
	}
	if irr != 2 || reg != 1 {
		t.Fatalf("plans: %d irregular, %d regular; want 2/1", irr, reg)
	}

	const n, m = 300, 41
	mkEnv := func() *interp.Env {
		rng := rand.New(rand.NewSource(3))
		env := interp.NewEnv(u.Fissioned)
		env.SetParam("n", n)
		env.SetParam("m", m)
		ia := make([]int32, 2*n)
		ja := make([]int32, n)
		y := make([]float64, n)
		for i := range ia {
			ia[i] = int32(rng.Intn(m))
		}
		for i := range ja {
			ja[i] = int32(rng.Intn(m))
		}
		for i := range y {
			y[i] = rng.Float64()
		}
		for name, data := range map[string][]int32{"ia": ia, "ja": ja} {
			if err := env.BindInt(name, data); err != nil {
				t.Fatal(err)
			}
		}
		if err := env.BindFloat("y", y); err != nil {
			t.Fatal(err)
		}
		if err := env.Alloc(); err != nil {
			t.Fatal(err)
		}
		return env
	}

	// Reference: run the fissioned program sequentially.
	ref := mkEnv()
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}

	// Parallel: regular plans run via the interpreter, irregular plans on
	// the phase runtime.
	env := mkEnv()
	for _, p := range u.Plans {
		if p.Kind == Regular {
			if err := env.RunLoop(p.Loop); err != nil {
				t.Fatal(err)
			}
			continue
		}
		loop, contribs, err := p.BuildLoop(env, 3, 2, inspector.Block)
		if err != nil {
			t.Fatal(err)
		}
		nat, err := rts.NewNative(loop)
		if err != nil {
			t.Fatal(err)
		}
		nat.Contribs = contribs
		if err := nat.Run(1); err != nil {
			t.Fatal(err)
		}
		if err := p.Scatter(env, nat.X); err != nil {
			t.Fatal(err)
		}
	}
	for _, a := range []string{"x", "z"} {
		for i := range ref.Floats[a] {
			if math.Abs(env.Floats[a][i]-ref.Floats[a][i]) > 1e-9 {
				t.Fatalf("array %s diverged at %d", a, i)
			}
		}
	}
}

func TestDescribeMentionsSectionsAndGroups(t *testing.T) {
	u, err := Compile(figure1)
	if err != nil {
		t.Fatal(err)
	}
	d := u.Describe()
	for _, want := range []string{
		"reduction section",
		"ia[0:num_edges:1, 0]",
		"ia[0:num_edges:1, 1]",
		"reference group 0",
		"no fission needed",
	} {
		if !strings.Contains(d, want) {
			t.Fatalf("Describe lacks %q:\n%s", want, d)
		}
	}
}

func TestThreadedCListing(t *testing.T) {
	u, err := Compile(figure1)
	if err != nil {
		t.Fatal(err)
	}
	s := u.Plans[0].ThreadedC()
	for _, want := range []string{
		"THREADED",
		"LIGHTINSPECTOR",
		"BLKMOV_SYNC",
		"SYNC_SLOTS",
		"second loop",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("listing lacks %q:\n%s", want, s)
		}
	}
}

func TestThreadedCRegular(t *testing.T) {
	u, err := Compile(`
param n
array a[n]
loop i = 0, n { a[i] = 1 }
`)
	if err != nil {
		t.Fatal(err)
	}
	s := u.Plans[0].ThreadedC()
	if !strings.Contains(s, "regular loop") {
		t.Fatalf("regular listing wrong:\n%s", s)
	}
}

func TestGroupedArraysShareRotation(t *testing.T) {
	// Two reduction arrays in one reference group pack as components.
	src := `
param n, m
array ia[n, 2] int
array x[m]
array z[m]
array y[n]
loop i = 0, n {
    x[ia[i, 0]] += y[i]
    x[ia[i, 1]] += y[i]
    z[ia[i, 0]] += y[i] * 2
    z[ia[i, 1]] -= y[i]
}
`
	u, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Plans) != 1 {
		t.Fatalf("plans = %d, want 1 (one group)", len(u.Plans))
	}
	rng := rand.New(rand.NewSource(5))
	const n, m = 200, 32
	env := interp.NewEnv(u.Fissioned)
	env.SetParam("n", n)
	env.SetParam("m", m)
	ia := make([]int32, 2*n)
	for i := range ia {
		ia[i] = int32(rng.Intn(m))
	}
	y := make([]float64, n)
	for i := range y {
		y[i] = rng.Float64()
	}
	if err := env.BindInt("ia", ia); err != nil {
		t.Fatal(err)
	}
	if err := env.BindFloat("y", y); err != nil {
		t.Fatal(err)
	}
	if err := env.Alloc(); err != nil {
		t.Fatal(err)
	}
	loop, contribs, err := u.Plans[0].BuildLoop(env, 4, 2, inspector.Cyclic)
	if err != nil {
		t.Fatal(err)
	}
	if loop.Cost.Comp != 2 {
		t.Fatalf("comp = %d, want 2", loop.Cost.Comp)
	}
	nat, err := rts.NewNative(loop)
	if err != nil {
		t.Fatal(err)
	}
	nat.Contribs = contribs
	if err := nat.Run(1); err != nil {
		t.Fatal(err)
	}
	if err := u.Plans[0].Scatter(env, nat.X); err != nil {
		t.Fatal(err)
	}
	// Sequential check.
	wantX := make([]float64, m)
	wantZ := make([]float64, m)
	for i := 0; i < n; i++ {
		wantX[ia[2*i]] += y[i]
		wantX[ia[2*i+1]] += y[i]
		wantZ[ia[2*i]] += y[i] * 2
		wantZ[ia[2*i+1]] -= y[i]
	}
	for i := 0; i < m; i++ {
		if math.Abs(env.Floats["x"][i]-wantX[i]) > 1e-9 || math.Abs(env.Floats["z"][i]-wantZ[i]) > 1e-9 {
			t.Fatalf("grouped arrays diverged at %d", i)
		}
	}
}

func TestCompileErrorsPropagate(t *testing.T) {
	if _, err := Compile("loop i = 0, n { }"); err == nil {
		t.Fatal("parse error not propagated")
	}
	if _, err := Compile(`
param n, m
array ia[n] int
array x[m]
loop i = 0, n { x[ia[i]] = 1 }
`); err == nil {
		t.Fatal("analysis error not propagated")
	}
}

// TestRunnerMultiStep drives a whole compiled program — prologue, two
// irregular loops, and a regular decay loop — for several timesteps and
// compares against pure interpretation.
func TestRunnerMultiStep(t *testing.T) {
	src := `
param n, m
array ia[n, 2] int
array ja[n] int
array x[m]
array z[m]
array y[n]
loop i = 0, n {
    t = y[i] * 2
    x[ia[i, 0]] += t
    x[ia[i, 1]] += t + 1
    z[ja[i]] -= t * 3
}
loop e = 0, m {
    x[e] = x[e] * 0.5
    z[e] = z[e] * 0.25
}
`
	u, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	const n, m, steps = 400, 53, 4
	mkEnv := func(prog bool) *interp.Env {
		rng := rand.New(rand.NewSource(8))
		var env *interp.Env
		if prog {
			env = interp.NewEnv(u.Fissioned)
		} else {
			env = interp.NewEnv(u.Source)
		}
		env.SetParam("n", n)
		env.SetParam("m", m)
		ia := make([]int32, 2*n)
		ja := make([]int32, n)
		y := make([]float64, n)
		for i := range ia {
			ia[i] = int32(rng.Intn(m))
		}
		for i := range ja {
			ja[i] = int32(rng.Intn(m))
		}
		for i := range y {
			y[i] = rng.Float64()
		}
		if err := env.BindInt("ia", ia); err != nil {
			t.Fatal(err)
		}
		if err := env.BindInt("ja", ja); err != nil {
			t.Fatal(err)
		}
		if err := env.BindFloat("y", y); err != nil {
			t.Fatal(err)
		}
		if err := env.Alloc(); err != nil {
			t.Fatal(err)
		}
		return env
	}

	ref := mkEnv(false)
	for s := 0; s < steps; s++ {
		if err := ref.Run(); err != nil {
			t.Fatal(err)
		}
	}

	env := mkEnv(true)
	r, err := u.NewRunner(env, 4, 2, inspector.Cyclic)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(steps); err != nil {
		t.Fatal(err)
	}
	for _, a := range []string{"x", "z"} {
		for i := range ref.Floats[a] {
			if math.Abs(env.Floats[a][i]-ref.Floats[a][i]) > 1e-9 {
				t.Fatalf("array %s diverged at %d after %d steps", a, i, steps)
			}
		}
	}
}

func TestRunnerBadShape(t *testing.T) {
	u, err := Compile(figure1)
	if err != nil {
		t.Fatal(err)
	}
	env := interp.NewEnv(u.Fissioned)
	if _, err := u.NewRunner(env, 0, 2, inspector.Block); err == nil {
		t.Fatal("procs=0 accepted")
	}
}
