// Package codegen lowers analyzed, fissioned IRL loops to the phase
// runtime. Compile drives the whole pipeline of the paper's Section 4:
// parse -> extract sections -> build reference groups -> loop fission ->
// per-loop plans. A Plan can be wired onto the rts engines for execution
// and rendered as a Threaded-C-style listing (the EARTH-C compiler's
// target language).
package codegen

import (
	"errors"
	"fmt"
	"sort"

	"irred/internal/algebra"
	"irred/internal/analysis"
	"irred/internal/dataflow"
	"irred/internal/inspector"
	"irred/internal/interp"
	"irred/internal/lang"
	"irred/internal/rts"
	"irred/internal/transform"
)

// PlanKind distinguishes irregular (phase-executed) loops from regular
// loops that need no runtime preprocessing.
type PlanKind int

const (
	// Irregular plans run under the paper's execution strategy.
	Irregular PlanKind = iota
	// Regular plans (prologues, residual element loops) are embarrassingly
	// parallel and run directly.
	Regular
)

// Plan is the executable form of one post-fission loop.
type Plan struct {
	Kind PlanKind
	Loop *lang.Loop
	Info *analysis.LoopInfo // analysis of this loop (single reference group)
	Prog *lang.Program      // the fissioned program (declarations)
	Name string             // stable name for listings: loop0, loop0_g1, ...

	// Facts is the bounds proof computed by the most recent BuildLoop (or
	// ComputeFacts) against a concrete environment: which subscript
	// obligations were discharged, whether the compiled body runs without
	// range checks, and whether the native engine may skip per-write
	// target validation. Nil until a proof has been computed.
	Facts *dataflow.Facts

	// License is the schedule license of this post-fission loop: the
	// parent (pre-fission) loop's license met with the fissioned loop's
	// own, so fission can only narrow grants, never widen them. BuildLoop
	// refuses plans whose license does not grant rotation; BuildTreeFold
	// additionally requires the TreeFoldLegal grant.
	License *dataflow.License

	// Combine is the fold operator of the plan's reference group, with
	// the identity the legality pass proved (when it proved one). The
	// zero value is float addition.
	Combine algebra.Op

	// codes holds the per-processor bytecode evaluators of the most recent
	// BuildLoop, so runtime faults recorded by checked execution can be
	// surfaced after a run (RuntimeErr).
	codes []*interp.Code
}

// Unit is a fully compiled IRL program.
type Unit struct {
	Source    *lang.Program
	Analysis  *analysis.Result
	Fissioned *lang.Program
	Results   []*transform.FissionResult
	Plans     []*Plan

	// Reuse is the inter-loop schedule-reuse license proven over the
	// plans in plan order: grant indices are plan indices, so a Runner
	// can map Reuse.ReuseOf(i) straight onto Plans[i]. Proven with
	// unbound parameters — the grants hold for every environment.
	Reuse *dataflow.ReuseLicense
}

// Compile runs the whole pipeline on IRL source text.
func Compile(src string) (*Unit, error) { return compile(src, false) }

// CompileOptimized additionally runs common-subexpression elimination on
// every loop before analysis.
func CompileOptimized(src string) (*Unit, error) { return compile(src, true) }

func compile(src string, optimize bool) (*Unit, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	if optimize {
		prog, _ = transform.CSEProgram(prog)
	}
	res, err := analysis.Analyze(prog)
	if err != nil {
		return nil, err
	}
	fissioned, frs, err := transform.Fission(res)
	if err != nil {
		return nil, err
	}
	u := &Unit{Source: prog, Analysis: res, Fissioned: fissioned, Results: frs}

	// Schedule legality: license each source loop symbolically, then
	// re-license every fissioned loop and meet it with its parent's
	// license — a fissioned group carries its parent's verdict and can
	// only lose grants, never gain them.
	parentLics := dataflow.LegalizeProgram(prog, dataflow.Options{})

	for li, fr := range frs {
		parent := parentLics[li]
		if fr.Prologue != nil {
			pi, err := reanalyze(fissioned, fr.Prologue)
			if err != nil {
				return nil, err
			}
			u.Plans = append(u.Plans, &Plan{
				Kind: Regular, Loop: fr.Prologue, Info: pi, Prog: fissioned,
				Name:    fmt.Sprintf("loop%d_pro", li),
				License: dataflow.LegalizeLoop(fissioned, fr.Prologue, dataflow.Options{}),
			})
		}
		for gi, fl := range fr.Loops {
			info, err := reanalyze(fissioned, fl.Loop)
			if err != nil {
				return nil, err
			}
			if len(info.Groups) > 1 {
				return nil, fmt.Errorf("codegen: loop %d still has %d reference groups after fission", li, len(info.Groups))
			}
			kind := Regular
			if len(info.Reductions) > 0 {
				kind = Irregular
			}
			name := fmt.Sprintf("loop%d", li)
			if len(fr.Loops) > 1 {
				name = fmt.Sprintf("loop%d_g%d", li, gi)
			}
			lic := dataflow.Meet(parent, dataflow.LegalizeLoop(fissioned, fl.Loop, dataflow.Options{}))
			u.Plans = append(u.Plans, &Plan{
				Kind: kind, Loop: fl.Loop, Info: info, Prog: fissioned, Name: name,
				License: lic,
				Combine: planCombine(info, lic),
			})
		}
	}

	// Schedule reuse: prove which plans must receive identical inspector
	// schedules. The prover runs over the *plan* loop sequence (prologues
	// included — their writes kill reuse classes), so grant indices line
	// up with Plans.
	planLoops := make([]*lang.Loop, len(u.Plans))
	for i, p := range u.Plans {
		planLoops[i] = p.Loop
	}
	u.Reuse = dataflow.ProveReuse(&lang.Program{
		Params: fissioned.Params,
		Arrays: fissioned.Arrays,
		Loops:  planLoops,
	}, dataflow.Options{})
	return u, nil
}

// planCombine resolves the fold operator of a plan's reference group,
// preferring the license's op record because it carries the proven
// identity for compound (Custom) combines. Analysis guarantees one
// combine per group, so the first reduction is representative.
func planCombine(info *analysis.LoopInfo, lic *dataflow.License) algebra.Op {
	if len(info.Reductions) == 0 {
		return algebra.Op{}
	}
	op := info.Reductions[0].Op()
	if lic != nil {
		for _, ol := range lic.Ops {
			if ol.Array == info.Reductions[0].Array {
				return ol.Op
			}
		}
	}
	return op
}

func reanalyze(prog *lang.Program, l *lang.Loop) (*analysis.LoopInfo, error) {
	tmp := &lang.Program{Params: prog.Params, Arrays: prog.Arrays, Loops: []*lang.Loop{l}}
	res, err := analysis.Analyze(tmp)
	if err != nil {
		return nil, err
	}
	return res.Loops[0], nil
}

// ReductionArrays lists the distinct reduction arrays of the plan, sorted.
func (p *Plan) ReductionArrays() []string {
	set := map[string]bool{}
	for _, r := range p.Info.Reductions {
		set[r.Array] = true
	}
	var out []string
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// BuildOpts controls proof-carrying optimization during BuildLoop.
type BuildOpts struct {
	// ForceChecked keeps every range check and the native engine's
	// per-write target validation even when the bounds proof would allow
	// eliding them — for differential testing and benchmarking the checks
	// themselves. The proof is still computed and recorded.
	ForceChecked bool
}

// BuildLoop wires an irregular plan onto the runtime for a machine of
// `procs` processors with unrolling factor k: it extracts the indirection
// columns from the environment, estimates the kernel cost from the loop
// body, and returns the rts loop plus the contribution hook that evaluates
// the body per iteration.
//
// BuildLoop is proof-carrying: it runs the dataflow interval analysis
// seeded with the environment's concrete parameters and a one-pass min/max
// scan of every bound indirection array, records the resulting
// dataflow.Facts artifact on the plan and the loop, compiles the body with
// range checks elided exactly for the proven references (unproven accesses
// stay checked and fault gracefully — see RuntimeErr), and marks the loop
// so the native engine skips per-write target validation when the
// indirection contents are proven in range.
//
// Multiple reduction arrays in one group are packed as components of the
// rotated array; component c of element e holds array c's element e.
func (p *Plan) BuildLoop(env *interp.Env, procs, k int, dist inspector.Dist) (*rts.Loop, rts.ContribFunc, error) {
	return p.BuildLoopOpts(env, procs, k, dist, BuildOpts{})
}

// BuildLoopOpts is BuildLoop with explicit optimization control.
func (p *Plan) BuildLoopOpts(env *interp.Env, procs, k int, dist inspector.Dist, bopts BuildOpts) (*rts.Loop, rts.ContribFunc, error) {
	if p.Kind != Irregular {
		return nil, nil, fmt.Errorf("codegen: %s is a regular loop", p.Name)
	}
	if p.License != nil && !p.License.Rotation {
		return nil, nil, fmt.Errorf("codegen: %s: schedule license is %s — the rotation schedule is not licensed for this loop (run irredc -legality-report for the ledger)",
			p.Name, p.License.Level())
	}
	lo, hi, err := loopBounds(env, p.Loop)
	if err != nil {
		return nil, nil, err
	}
	if lo != 0 {
		return nil, nil, fmt.Errorf("codegen: %s: loops must start at 0 (got %d)", p.Name, lo)
	}
	arrays := p.ReductionArrays()
	compOf := map[string]int{}
	for c, a := range arrays {
		compOf[a] = c
	}
	nElems, err := env.Size(arrays[0])
	if err != nil {
		return nil, nil, err
	}
	for _, a := range arrays[1:] {
		n, err := env.Size(a)
		if err != nil {
			return nil, nil, err
		}
		if n != nElems {
			return nil, nil, fmt.Errorf("codegen: %s: reduction arrays %s and %s differ in extent", p.Name, arrays[0], a)
		}
	}

	reds := p.Info.Reductions
	ind := make([][]int32, len(reds))
	for r, red := range reds {
		col, err := indColumn(env, red.Ind, hi)
		if err != nil {
			return nil, nil, err
		}
		ind[r] = col
	}

	// Prove what we can about the loop's subscripts from the concrete
	// parameters and a one-pass scan of the bound indirection arrays, then
	// check the runtime side of the rotated-array claim against the
	// extracted columns.
	facts := p.ComputeFacts(env)
	facts.NumElems = nElems
	facts.IndProven = dataflow.ProveIndirection(nElems, ind...)
	p.Facts = facts

	loop := &rts.Loop{
		Cfg: inspector.Config{
			P: procs, K: k,
			NumIters: hi,
			NumElems: nElems,
			Dist:     dist,
		},
		Mode:    rts.Reduce,
		Ind:     ind,
		Cost:    p.EstimateCost(len(arrays)),
		Combine: p.Combine,
	}
	if !bopts.ForceChecked {
		loop.Proof = facts
	}

	exprs := make([]lang.Expr, len(reds))
	signs := make([]float64, len(reds))
	for r, red := range reds {
		exprs[r] = red.RHS
		signs[r] = 1
		if red.Negate {
			signs[r] = -1
		}
	}
	// Compile the body to bytecode once; each simulated processor gets an
	// independent evaluator (private register/stack state) plus a private
	// scratch buffer. Range checks are elided per reference exactly where
	// the proof covers the access.
	copts := interp.CompileOpts{}
	if !bopts.ForceChecked {
		copts.Unchecked = facts.RefProven
	}
	code, err := env.CompileIterOpts(p.Loop, exprs, copts)
	if err != nil {
		return nil, nil, err
	}
	comp := len(arrays)
	type evalState struct {
		code *interp.Code
		vals []float64
	}
	states := make([]evalState, procs)
	p.codes = p.codes[:0]
	for q := range states {
		states[q] = evalState{code: code.Clone(), vals: make([]float64, len(reds))}
		p.codes = append(p.codes, states[q].code)
	}
	// Unwritten scratch slots must hold the combine's identity, not zero:
	// with packed components, reference r contributes nothing to the other
	// components, and "nothing" is the identity of the fold.
	ident, _ := p.Combine.Identity()
	contribs := func(proc, i int, out []float64) {
		st := &states[proc]
		st.code.Eval(i, st.vals)
		for j := range out {
			out[j] = ident
		}
		for r, red := range reds {
			out[r*comp+compOf[red.Array]] = signs[r] * st.vals[r]
		}
	}
	return loop, contribs, nil
}

// BuildTreeFold wires an irregular plan onto the privatized tree-fold
// executor. The plan's schedule license must grant TreeFoldLegal —
// rts.NewTreeFold re-checks the grant and the ledger, so there is no way
// to reach the reordering execution path without a machine-checked proof
// that the combine tolerates it.
func (p *Plan) BuildTreeFold(env *interp.Env, workers int) (*rts.TreeFold, error) {
	loop, contribs, err := p.BuildLoopOpts(env, workers, 1, inspector.Block, BuildOpts{})
	if err != nil {
		return nil, err
	}
	tf, err := rts.NewTreeFold(loop, p.License)
	if err != nil {
		return nil, err
	}
	tf.Contribs = contribs
	return tf, nil
}

// ComputeFacts runs the dataflow bounds analysis for this plan's loop
// against an environment: concrete parameter values plus min/max scans of
// every bound indirection array seed the interval domain. The result does
// not carry the rotated-array claim (IndProven) — BuildLoop fills that in
// from the extracted columns.
func (p *Plan) ComputeFacts(env *interp.Env) *dataflow.Facts {
	opts, scanned := dataflow.EnvOptions(env.Params, env.Ints)
	lf := dataflow.AnalyzeLoop(p.Prog, p.Loop, opts)
	return lf.Proof(scanned)
}

// RuntimeErr reports the first range fault recorded by any processor's
// checked bytecode during runs since the last BuildLoop, or nil. Proven
// (unchecked) accesses never fault; unproven accesses clamp to a safe
// index, finish the run, and surface here.
func (p *Plan) RuntimeErr() error {
	var errs []error
	for _, c := range p.codes {
		if err := c.Err(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Scatter unpacks the runtime's rotated array back into the environment's
// reduction arrays after a run.
func (p *Plan) Scatter(env *interp.Env, x []float64) error {
	arrays := p.ReductionArrays()
	comp := len(arrays)
	for c, a := range arrays {
		data, ok := env.Floats[a]
		if !ok {
			return fmt.Errorf("codegen: array %q unbound", a)
		}
		for e := range data {
			data[e] = x[e*comp+c]
		}
	}
	return nil
}

// EstimateCost derives a simulator cost description from the loop body.
func (p *Plan) EstimateCost(comp int) rts.KernelCost {
	flops := 0
	for _, st := range p.Loop.Body {
		lang.Walk(st.RHS, func(e lang.Expr) {
			switch e.(type) {
			case *lang.BinExpr, *lang.UnExpr:
				flops++
			case *lang.CallExpr:
				flops += 8 // sqrt-class builtin
			}
		})
	}
	return rts.KernelCost{
		Flops:      flops,
		IntOps:     2 * len(p.Info.Reductions),
		IterArrays: len(p.Info.IterReads),
		NodeArrays: len(p.Info.Reads),
		Comp:       comp,
		BcastComp:  len(p.Info.Reads), // replicated reads refreshed per step
	}
}

func loopBounds(env *interp.Env, l *lang.Loop) (int, int, error) {
	loE, err := evalConst(env, l.Lo)
	if err != nil {
		return 0, 0, err
	}
	hiE, err := evalConst(env, l.Hi)
	if err != nil {
		return 0, 0, err
	}
	return loE, hiE, nil
}

func evalConst(env *interp.Env, e lang.Expr) (int, error) {
	switch x := e.(type) {
	case *lang.Num:
		return int(x.Val), nil
	case *lang.Ident:
		if v, ok := env.Params[x.Name]; ok {
			return v, nil
		}
		return 0, fmt.Errorf("codegen: unbound parameter %q", x.Name)
	default:
		return 0, fmt.Errorf("codegen: loop bound %s is not constant", e)
	}
}

// indColumn extracts the flattened indirection column ind[i] or
// ind[i, col] for i in [0, n).
func indColumn(env *interp.Env, ref analysis.IndRef, n int) ([]int32, error) {
	data, ok := env.Ints[ref.Array]
	if !ok {
		return nil, fmt.Errorf("codegen: indirection array %q unbound", ref.Array)
	}
	decl := env.Prog.Array(ref.Array)
	if ref.Col < 0 {
		if len(data) < n {
			return nil, fmt.Errorf("codegen: indirection %q shorter than loop", ref.Array)
		}
		return data[:n], nil
	}
	width := 0
	if len(decl.Dims) == 2 {
		w, err := envExtent(env, decl.Dims[1])
		if err != nil {
			return nil, err
		}
		width = w
	}
	if width == 0 || ref.Col >= width {
		return nil, fmt.Errorf("codegen: column %d out of range for %q", ref.Col, ref.Array)
	}
	out := make([]int32, n)
	for i := 0; i < n; i++ {
		out[i] = data[i*width+ref.Col]
	}
	return out, nil
}

func envExtent(env *interp.Env, x lang.Extent) (int, error) {
	if x.Param == "" {
		return x.Lit, nil
	}
	if v, ok := env.Params[x.Param]; ok {
		return v, nil
	}
	return 0, fmt.Errorf("codegen: parameter %q unbound", x.Param)
}
