package codegen

import (
	"math/rand"
	"strings"
	"testing"

	"irred/internal/dataflow"
	"irred/internal/inspector"
	"irred/internal/interp"
)

// The CG shape: consecutive sweeps over one indirection into different
// accumulators, the reuse license's bread and butter.
const cgTestSrc = `
param ne, n
array row[ne] int
array y[ne]
array q[n]
array z[n]
loop i = 0, ne {
    q[row[i]] += y[i]
}
loop i = 0, ne {
    z[row[i]] += y[i] * 2
}
`

// The euler2 shape: a boundary loop rewires part of the indirection
// between two otherwise identical sweeps, so reuse must be refused.
const rewireTestSrc = `
param ne, n, nb
array row[ne] int
array y[ne]
array q[n]
loop i = 0, ne {
    q[row[i]] += y[i]
}
loop j = 0, nb {
    row[j] = 0
}
loop i = 0, ne {
    q[row[i]] += y[i]
}
`

func cgEnv(t *testing.T, u *Unit, ne, n int, seed int64) *interp.Env {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	env := interp.NewEnv(u.Fissioned)
	env.SetParam("ne", ne)
	env.SetParam("n", n)
	env.SetParam("nb", ne/2)
	row := make([]int32, ne)
	y := make([]float64, ne)
	for i := range row {
		row[i] = int32(rng.Intn(n))
	}
	for i := range y {
		y[i] = float64(rng.Intn(100)) // integral: bitwise comparison below
	}
	if err := env.BindInt("row", row); err != nil {
		t.Fatal(err)
	}
	if err := env.BindFloat("y", y); err != nil {
		t.Fatal(err)
	}
	if err := env.Alloc(); err != nil {
		t.Fatal(err)
	}
	return env
}

func TestRunnerSharesSchedulesUnderReuseLicense(t *testing.T) {
	u, err := Compile(cgTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	if u.Reuse == nil {
		t.Fatal("compile produced no reuse license")
	}
	if got := u.Reuse.ReuseOf(1); got != 0 {
		t.Fatalf("ReuseOf(plan 1) = %d, want 0\n%s", got, u.Reuse.Report())
	}
	const ne, n = 400, 53

	r, err := u.NewRunner(cgEnv(t, u, ne, n, 8), 4, 2, inspector.Cyclic)
	if err != nil {
		t.Fatal(err)
	}
	if r.Inspections() != 1 || r.Reuses() != 1 {
		t.Fatalf("inspections = %d, reuses = %d; want 1 and 1", r.Inspections(), r.Reuses())
	}

	// VerifyReuse must be satisfied: the grant's content key hits.
	rv, err := u.NewRunnerOpts(cgEnv(t, u, ne, n, 8), 4, 2, inspector.Cyclic, RunnerOpts{VerifyReuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if rv.Reuses() != 1 {
		t.Fatalf("VerifyReuse runner reuses = %d, want 1", rv.Reuses())
	}

	// Reuse on and off must agree bitwise (integral data).
	off, err := u.NewRunnerOpts(cgEnv(t, u, ne, n, 8), 4, 2, inspector.Cyclic, RunnerOpts{NoReuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.Inspections() != 2 || off.Reuses() != 0 {
		t.Fatalf("NoReuse runner inspections = %d, reuses = %d; want 2 and 0", off.Inspections(), off.Reuses())
	}
	const steps = 3
	if err := r.Run(steps); err != nil {
		t.Fatal(err)
	}
	if err := off.Run(steps); err != nil {
		t.Fatal(err)
	}
	for _, a := range []string{"q", "z"} {
		on, ref := r.Env.Floats[a], off.Env.Floats[a]
		for i := range ref {
			if on[i] != ref[i] {
				t.Fatalf("array %s: reuse-on %v != reuse-off %v at %d", a, on[i], ref[i], i)
			}
		}
	}
}

func TestRunnerRefusesReuseAfterRewire(t *testing.T) {
	u, err := Compile(rewireTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Reuse.Grants) != 0 {
		t.Fatalf("rewire program got %d reuse grant(s)\n%s", len(u.Reuse.Grants), u.Reuse.Report())
	}
	r, err := u.NewRunner(cgEnv(t, u, 400, 53, 9), 4, 2, inspector.Block)
	if err != nil {
		t.Fatal(err)
	}
	if r.Inspections() != 2 || r.Reuses() != 0 {
		t.Fatalf("inspections = %d, reuses = %d; want 2 and 0", r.Inspections(), r.Reuses())
	}
}

func TestRunnerRejectsForgedReuseLicense(t *testing.T) {
	u, err := Compile(rewireTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	// Forge the grant the prover refused. Verify runs inside
	// NewRunnerOpts and must reject the whole runner.
	forged := &dataflow.ReuseGrant{From: 0, To: 2, Arrays: []string{"row"}}
	u.Reuse.Grants = append(u.Reuse.Grants, forged)
	_, err = u.NewRunner(cgEnv(t, u, 400, 53, 10), 4, 2, inspector.Block)
	if err == nil {
		t.Fatal("runner accepted a forged reuse grant")
	}
	if !strings.Contains(err.Error(), "refusing schedule reuse") {
		t.Fatalf("error %q does not refuse reuse", err)
	}
	// Reuse off ignores the license entirely and still runs.
	if _, err := u.NewRunnerOpts(cgEnv(t, u, 400, 53, 10), 4, 2, inspector.Block, RunnerOpts{NoReuse: true}); err != nil {
		t.Fatalf("NoReuse runner failed: %v", err)
	}
}
