package bench

import (
	"fmt"
	"strings"
)

// PaperRel holds the paper's reported numbers for one strategy of a
// euler/moldyn panel: the 2-processor absolute speedup and the relative
// speedup going from 2 to 32 processors.
type PaperRel struct {
	Name     string
	TwoP     float64
	Rel2to32 float64
}

// Paper-reported values (Section 5.4 text).
var (
	PaperEuler2K   = []PaperRel{{"1c", 1.10, 7.12}, {"2c", 1.20, 9.28}, {"4c", 1.17, 8.49}, {"2b", 1.24, 6.78}}
	PaperEuler10K  = []PaperRel{{"1c", 1.11, 7.62}, {"2c", 1.12, 10.36}, {"4c", 0.95, 9.95}, {"2b", 1.16, 6.94}}
	PaperMoldyn2K  = []PaperRel{{"1c", 1.30, 7.50}, {"2c", 1.19, 9.70}, {"4c", 1.15, 8.70}, {"2b", 1.11, 6.50}}
	PaperMoldyn10K = []PaperRel{{"1c", 0.82, 8.42}, {"2c", 0.57, 10.76}, {"4c", 0.57, 10.51}, {"2b", 0.56, 9.15}}
)

// SpeedupTable renders the paper's Section 5.4 text numbers against the
// measured figure: per strategy, the 2-processor absolute speedup and the
// 2→32 relative speedup, beside the paper's values.
func SpeedupTable(f *Figure, paper []PaperRel) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — speedup summary (measured vs paper)\n", strings.ToUpper(f.ID))
	fmt.Fprintf(&b, "%6s %14s %14s %16s %16s\n", "strat", "speedup@2P", "paper@2P", "rel 2->32", "paper 2->32")
	for _, s := range f.Series {
		var pv PaperRel
		for _, p := range paper {
			if p.Name == s.Def.Name {
				pv = p
			}
		}
		two := s.At(2)
		twoV := 0.0
		if two != nil {
			twoV = two.Speedup
		}
		fmt.Fprintf(&b, "%6s %14.2f %14.2f %16.2f %16.2f\n",
			s.Def.Name, twoV, pv.TwoP, s.RelativeSpeedup(2, 32), pv.Rel2to32)
	}
	return b.String()
}

// PaperMVM32 holds the paper's @32P mvm speedups per class.
var PaperMVM32 = map[string]map[string]float64{
	"W": {"k=1": 21.61, "k=2": 24.55, "k=4": 23.42},
	"A": {"k=1": 28.41, "k=2": 30.65, "k=4": 30.21},
}

// MVMTable renders T1: mvm speedups at 2 and 32 processors against the
// paper's values for the class ("W" or "A").
func MVMTable(f *Figure, class string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — mvm class %s speedup summary (measured vs paper)\n", strings.ToUpper(f.ID), class)
	fmt.Fprintf(&b, "%6s %14s %14s %14s\n", "strat", "speedup@2P", "speedup@32P", "paper@32P")
	for _, s := range f.Series {
		two, thirty := s.At(2), s.At(32)
		tv, th := 0.0, 0.0
		if two != nil {
			tv = two.Speedup
		}
		if thirty != nil {
			th = thirty.Speedup
		}
		fmt.Fprintf(&b, "%6s %14.2f %14.2f %14.2f\n", s.Def.Name, tv, th, PaperMVM32[class][s.Def.Name])
	}
	b.WriteString("paper @2P: 1.97-1.98 (class W), 1.94-1.95 (class A)\n")
	return b.String()
}
