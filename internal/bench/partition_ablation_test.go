package bench

import (
	"strings"
	"testing"
)

func TestAblationPartition(t *testing.T) {
	txt, err := AblationPartition(Options{Steps: 4, Seed: 1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"phase strategy (no partitioning)", "RCB", "cut edges"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("partition ablation lacks %q:\n%s", want, txt)
		}
	}
}
