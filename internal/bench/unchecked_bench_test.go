package bench

import (
	"testing"

	"irred/internal/codegen"
	"irred/internal/inspector"
	"irred/internal/interp"
	"irred/internal/kernels"
	"irred/internal/mesh"
	"irred/internal/moldyn"
	"irred/internal/rts"
	"irred/internal/sparse"
)

// BenchmarkUncheckedKernels measures what the bounds proof buys at run
// time, on two layers:
//
//   - native/*: the hand-wired kernels on the goroutine engine, per-write
//     (or per-gather) target validation on vs elided by the scanned proof
//     the kernel Loops now carry;
//   - compiled/mvm: the full compiler pipeline on the MVM IRL source,
//     per-access range checks in the bytecode evaluator on (ForceChecked)
//     vs elided where the proof discharges the obligation.
//
// EXPERIMENTS.md records representative numbers.
func BenchmarkUncheckedKernels(b *testing.B) {
	const p, k = 4, 2

	benchNative := func(b *testing.B, build func() (*rts.Native, error)) {
		for _, mode := range []struct {
			name  string
			check bool
		}{{"checked", true}, {"unchecked", false}} {
			b.Run(mode.name, func(b *testing.B) {
				n, err := build()
				if err != nil {
					b.Fatal(err)
				}
				if n.CheckTargets {
					b.Fatal("kernel loop must carry its proof")
				}
				n.CheckTargets = mode.check
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := n.Run(1); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}

	b.Run("native/mvm", func(b *testing.B) {
		mv := kernels.NewMVM(sparse.Generate(sparse.ClassS, 1))
		benchNative(b, func() (*rts.Native, error) {
			return mv.NewNative(p, k, inspector.Cyclic)
		})
	})
	b.Run("native/euler", func(b *testing.B) {
		nodes, edges := mesh.Paper2K()
		eu := kernels.NewEuler(mesh.Generate(nodes, edges, 1), 1)
		benchNative(b, func() (*rts.Native, error) {
			n, _, err := eu.NewNative(p, k, inspector.Cyclic)
			return n, err
		})
	})
	b.Run("native/moldyn", func(b *testing.B) {
		md := kernels.NewMoldyn(moldyn.Paper2K(1))
		benchNative(b, func() (*rts.Native, error) {
			n, _, _, err := md.NewNative(p, k, inspector.Cyclic)
			return n, err
		})
	})

	b.Run("compiled/mvm", func(b *testing.B) {
		a := sparse.Generate(sparse.ClassS, 1)
		mv := kernels.NewMVM(a)
		for _, mode := range []struct {
			name    string
			checked bool
		}{{"checked", true}, {"unchecked", false}} {
			b.Run(mode.name, func(b *testing.B) {
				u, err := codegen.Compile(kernels.MVMIRL)
				if err != nil {
					b.Fatal(err)
				}
				env := interp.NewEnv(u.Fissioned)
				env.SetParam("nnz", a.NNZ())
				env.SetParam("n", a.N)
				x := make([]float64, a.N)
				for i := range x {
					x[i] = 1
				}
				if err := env.BindInt("row", mv.Rows); err != nil {
					b.Fatal(err)
				}
				if err := env.BindInt("col", a.Col); err != nil {
					b.Fatal(err)
				}
				if err := env.BindFloat("a", a.Val); err != nil {
					b.Fatal(err)
				}
				if err := env.BindFloat("x", x); err != nil {
					b.Fatal(err)
				}
				if err := env.Alloc(); err != nil {
					b.Fatal(err)
				}
				plan := u.Plans[0]
				loop, contribs, err := plan.BuildLoopOpts(env, p, k, inspector.Cyclic,
					codegen.BuildOpts{ForceChecked: mode.checked})
				if err != nil {
					b.Fatal(err)
				}
				if !mode.checked && !plan.Facts.AllProven {
					b.Fatalf("mvm must prove completely:\n%s", plan.Facts.Report())
				}
				nat, err := rts.NewNative(loop)
				if err != nil {
					b.Fatal(err)
				}
				nat.Contribs = contribs
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := nat.Run(1); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if err := plan.RuntimeErr(); err != nil {
					b.Fatal(err)
				}
			})
		}
	})
}
