package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"irred/internal/inspector"
	"irred/internal/kernels"
	"irred/internal/machine"
	"irred/internal/mesh"
	"irred/internal/moldyn"
	"irred/internal/rts"
	"irred/internal/sim"
	"irred/internal/sparse"
)

// AblationK extends the paper's k ∈ {1,2,4} evaluation to k = 8 on the
// euler 2K mesh: more phases mean more overlap slack and imbalance
// tolerance, but more threading overhead and finer locality fragmentation.
func AblationK(opt Options) (*Figure, error) {
	opt.fill([]int{8, 16, 32})
	nodes, edges := mesh.Paper2K()
	m := mesh.Generate(nodes, edges, opt.Seed)
	eu := kernels.NewEuler(m, opt.Seed)
	strats := []StrategyDef{
		{"k=1", 1, inspector.Cyclic},
		{"k=2", 2, inspector.Cyclic},
		{"k=4", 4, inspector.Cyclic},
		{"k=8", 8, inspector.Cyclic},
	}
	f, err := runFigure("ablation-k", "euler 2K: unrolling factor sweep (cyclic)", opt, opt.Procs, strats,
		func(p, k int, d inspector.Dist) *rts.Loop { return eu.Loop(p, k, d) })
	if err != nil {
		return nil, err
	}
	f.Notes = append(f.Notes, "the paper evaluates k in {1,2,4} and finds k=2 the best balance")
	return f, nil
}

// AblationEdgeOrder compares block and cyclic distributions on the natural
// (coarsely sorted) edge order versus a fully shuffled edge list: the
// block distribution's per-phase imbalance comes from edge/node
// correlation, which shuffling destroys.
func AblationEdgeOrder(opt Options) (string, error) {
	opt.fill([]int{32})
	nodes, edges := mesh.Paper2K()
	natural := mesh.Generate(nodes, edges, opt.Seed)
	shuffled := natural.Shuffled(opt.Seed + 1)
	var b strings.Builder
	b.WriteString("ABLATION-EDGE-ORDER: euler 2K at P=32, k=2 — edge ordering vs distribution\n")
	fmt.Fprintf(&b, "%10s %8s %14s %14s %14s\n", "ordering", "dist", "seconds", "maxPhaseIters", "avgPhaseIters")
	for _, tc := range []struct {
		name string
		m    *mesh.Mesh
	}{{"natural", natural}, {"shuffled", shuffled}} {
		eu := kernels.NewEuler(tc.m, opt.Seed)
		for _, d := range []inspector.Dist{inspector.Block, inspector.Cyclic} {
			res, err := rts.RunSim(eu.Loop(32, 2, d), rts.SimOptions{Steps: opt.Steps})
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%10s %8s %13.2fs %14d %14.1f\n",
				tc.name, d, res.Seconds, res.MaxPhaseIters, res.AvgPhaseIters)
		}
	}
	return b.String(), nil
}

// AdaptiveRow is one adaptation period of the adaptive ablation.
type AdaptiveRow struct {
	Period           int     // timesteps between indirection mutations
	LightPerStep     float64 // effective seconds/step, full LightInspector rerun
	IncrPerStep      float64 // effective seconds/step, incremental update
	ClassicPerStep   float64 // effective seconds/step, inspector/executor
	LightInspector   float64 // one full preprocessing, seconds
	IncrInspector    float64 // one incremental update, seconds
	ClassicInspect   float64 // one classic schedule build, seconds
	LightOverClassic float64
}

// AblationAdaptive models the paper's future-work scenario: the
// indirection arrays change every `period` timesteps (10%% of the edges per
// adaptation), so preprocessing reruns at that period. The phase strategy
// reruns only the local LightInspector — or, with the incremental variant
// this repository adds (the paper's stated future work), updates only the
// changed iterations. The classic inspector/executor must rebuild its
// communication schedule (requiring an interprocessor exchange) and pays
// per-step ghost traffic. Effective cost = per-step cost + preprocessing
// amortized over the period.
func AblationAdaptive(opt Options, procs int) ([]AdaptiveRow, string, error) {
	opt.fill(nil)
	nodes, edges := mesh.Paper2K()
	m := mesh.Generate(nodes, edges, opt.Seed)
	eu := kernels.NewEuler(m, opt.Seed)
	l := eu.Loop(procs, 2, inspector.Cyclic)
	cm, net := machine.MANNA(), machine.MANNANet()

	res, err := rts.RunSim(l, rts.SimOptions{Steps: opt.Steps})
	if err != nil {
		return nil, "", err
	}
	lightStep := cm.Seconds(res.PerStep)
	lightInsp := cm.Seconds(res.InspectorCycles)
	// Incremental update: 10% of this processor's iterations change.
	changed := l.Cfg.NumIters / procs / 10
	incrInsp := cm.Seconds(rts.IncrementalInspectorCost(cm, l, changed))

	// The classic baseline runs owner-computes: block iterations aligned
	// with block element ownership.
	lB := eu.Loop(procs, 2, inspector.Block)
	cs, err := inspector.ClassicInspect(lB.Cfg, lB.Ind...)
	if err != nil {
		return nil, "", err
	}
	cStep, cInsp := classicCost(cm, net, lB, cs)
	classicStep, classicInsp := cm.Seconds(cStep), cm.Seconds(cInsp)

	var rows []AdaptiveRow
	for _, period := range []int{1, 2, 5, 10, 25, 100} {
		lr := lightStep + lightInsp/float64(period)
		ir := lightStep + incrInsp/float64(period)
		cr := classicStep + classicInsp/float64(period)
		rows = append(rows, AdaptiveRow{
			Period:           period,
			LightPerStep:     lr,
			IncrPerStep:      ir,
			ClassicPerStep:   cr,
			LightInspector:   lightInsp,
			IncrInspector:    incrInsp,
			ClassicInspect:   classicInsp,
			LightOverClassic: lr / cr,
		})
	}

	var b strings.Builder
	fmt.Fprintf(&b, "ABLATION-ADAPTIVE: euler 2K at P=%d — indirection arrays mutate every m steps\n", procs)
	fmt.Fprintf(&b, "preprocessing: LightInspector %.4fs (local), incremental update %.5fs (10%% churn), classic inspector %.4fs (needs exchange)\n",
		lightInsp, incrInsp, classicInsp)
	fmt.Fprintf(&b, "%6s %16s %16s %18s %10s\n", "m", "light (full)", "light (incr)", "inspector/executor", "ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %15.4fs %15.4fs %17.4fs %10.2f\n", r.Period, r.LightPerStep, r.IncrPerStep, r.ClassicPerStep, r.LightOverClassic)
	}
	b.WriteString("ratio < 1: the phase strategy is faster. The paper's thesis: frequent adaptation\n")
	b.WriteString("amortizes the classic inspector poorly while the LightInspector stays cheap.\n")
	return rows, b.String(), nil
}

// classicCost is an analytic model of the classic inspector/executor on
// the same machine. Per-step cost is the owner-computes compute (sequential
// work / P — the classic scheme keeps the original iteration order, so no
// phase-partitioning locality loss) under the same compiler-generated-code
// factor as the phase executor (its loop carries translation-table
// indirection and ghost branches), plus the ghost gather/scatter traffic on
// the critical path. The inspector cost follows the CHAOS-style structure:
// a hash-based localize pass over every reference, per-ghost schedule and
// translation-table construction, the request-list exchange, and all-to-all
// message overheads — the parts the LightInspector avoids entirely.
func classicCost(cm machine.CostModel, net machine.Network, l *rts.Loop, cs *inspector.ClassicSchedule) (perStep, insp sim.Time) {
	seq := rts.SequentialCost(cm, l)
	compute := seq / sim.Time(l.Cfg.P)
	if cm.CodegenFactor > 1 {
		compute = sim.Time(float64(compute) * cm.CodegenFactor)
	}

	// Ghost traffic: worst processor sends and receives its ghost bytes
	// each step (gather of read data in, scatter-add of contributions out).
	maxGhost := 0
	for p := 0; p < l.Cfg.P; p++ {
		if g := cs.GhostBytes(p); g > maxGhost {
			maxGhost = g
		}
	}
	comm := 2 * (net.XmitCycles(maxGhost) + net.Latency + net.RecvOverhead)
	perStep = compute + comm

	// Inspector: hash-based localize over every local reference (~60
	// cycles each: hash, probe, insert), schedule + translation-table
	// construction per ghost, the request-list exchange, and three
	// all-to-all synchronization rounds.
	const hashPerRef, perGhost = 60, 200
	refs := sim.Time(l.Cfg.NumIters / l.Cfg.P * len(l.Ind))
	maxGhosts := 0
	for p := 0; p < l.Cfg.P; p++ {
		if g := len(cs.Procs[p].Ghosts); g > maxGhosts {
			maxGhosts = g
		}
	}
	local := refs*hashPerRef + sim.Time(maxGhosts)*perGhost
	exchBytes := cs.InspectorExchangedBytes / l.Cfg.P
	exch := net.XmitCycles(exchBytes) + net.Latency + net.RecvOverhead
	allToAll := sim.Time(l.Cfg.P-1) * (net.SendOverhead + net.RecvOverhead)
	insp = local + 3*(exch+allToAll)
	return perStep, insp
}

// AblationInspector reports the LightInspector's one-time cost relative to
// a single timestep for each kernel — the paper runs it once per 100
// timesteps, so it must be cheap.
func AblationInspector(opt Options) (string, error) {
	opt.fill(nil)
	cm := machine.MANNA()
	var b strings.Builder
	b.WriteString("ABLATION-INSPECTOR: LightInspector cost vs one timestep (P=16, 2c)\n")
	fmt.Fprintf(&b, "%10s %16s %16s %10s\n", "kernel", "inspector (s)", "timestep (s)", "ratio")

	row := func(name string, l *rts.Loop) error {
		res, err := rts.RunSim(l, rts.SimOptions{Steps: opt.Steps})
		if err != nil {
			return err
		}
		insp := cm.Seconds(res.InspectorCycles)
		step := cm.Seconds(res.PerStep)
		fmt.Fprintf(&b, "%10s %15.5fs %15.5fs %10.2f\n", name, insp, step, insp/step)
		return nil
	}
	nodes, edges := mesh.Paper2K()
	eu := kernels.NewEuler(mesh.Generate(nodes, edges, opt.Seed), opt.Seed)
	if err := row("euler2K", eu.Loop(16, 2, inspector.Cyclic)); err != nil {
		return "", err
	}
	md := kernels.NewMoldyn(moldyn.Paper2K(opt.Seed))
	if err := row("moldyn2K", md.Loop(16, 2, inspector.Cyclic)); err != nil {
		return "", err
	}
	mv := kernels.NewMVM(sparse.Generate(sparse.ClassS, uint64(opt.Seed)))
	if err := row("mvmS", mv.Loop(16, 2, inspector.Block)); err != nil {
		return "", err
	}
	b.WriteString("the paper executes the inspector once per run of 100 timesteps\n")
	return b.String(), nil
}

// AblationMachine re-runs the k sweep on a modern machine preset (3 GHz
// core, 32 KB L1, microsecond-latency interconnect) next to the paper's
// MANNA: per cycle, communication is now far more expensive relative to
// computation, so the value of overlap (k >= 2) is a prediction the paper
// makes about the future that this ablation checks.
func AblationMachine(opt Options, procs int) (string, error) {
	opt.fill(nil)
	nodes, edges := mesh.Paper2K()
	m := mesh.Generate(nodes, edges, opt.Seed)
	eu := kernels.NewEuler(m, opt.Seed)

	var b strings.Builder
	fmt.Fprintf(&b, "ABLATION-MACHINE: euler 2K at P=%d — MANNA (1997) vs a modern node\n", procs)
	fmt.Fprintf(&b, "%8s %10s %14s %14s %15s\n", "machine", "k", "sec/step", "speedup", "k-gain vs k=1")
	for _, mc := range []struct {
		name string
		cm   machine.CostModel
		net  machine.Network
	}{
		{"MANNA", machine.MANNA(), machine.MANNANet()},
		{"modern", machine.Modern(), machine.ModernNet()},
	} {
		l1 := eu.Loop(1, 1, inspector.Block)
		seq := rts.SequentialCost(mc.cm, l1)
		var k1Step sim.Time
		for _, k := range []int{1, 2, 4} {
			l := eu.Loop(procs, k, inspector.Cyclic)
			res, err := rts.RunSim(l, rts.SimOptions{Steps: opt.Steps, Cost: mc.cm, Net: mc.net})
			if err != nil {
				return "", err
			}
			if k == 1 {
				k1Step = res.PerStep
			}
			gain := float64(k1Step)/float64(res.PerStep) - 1
			fmt.Fprintf(&b, "%8s %10d %13.5fs %13.2fx %13.1f%%\n",
				mc.name, k, mc.cm.Seconds(res.PerStep),
				float64(seq)/float64(res.PerStep), 100*gain)
		}
	}
	b.WriteString("k-gain: per-step time of k=1 over this k (positive = overlap pays).\n")
	return b.String(), nil
}

// AblationIncremental measures (in host wall-clock) the full LightInspector
// rebuild against the incremental update for growing churn fractions on the
// euler 10K mesh — the real cost of the paper's future-work feature.
func AblationIncremental(opt Options) (string, error) {
	opt.fill(nil)
	nodes, edges := mesh.Paper10K()
	m := mesh.Generate(nodes, edges, opt.Seed)
	eu := kernels.NewEuler(m, opt.Seed)
	l := eu.Loop(16, 2, inspector.Cyclic)

	var b strings.Builder
	b.WriteString("ABLATION-INCREMENTAL: euler 10K at P=16 — measured host time, schedule maintenance\n")
	fullStart := time.Now()
	scheds, err := l.Schedules()
	if err != nil {
		return "", err
	}
	fullDur := time.Since(fullStart)
	fmt.Fprintf(&b, "full LightInspector (all %d processors): %v\n", l.Cfg.P, fullDur)
	// Build the incremental indexes up front so the rows time only the
	// per-churn work (the index persists across updates in a real run).
	idxStart := time.Now()
	for _, s := range scheds {
		s.BeginIncremental()
	}
	fmt.Fprintf(&b, "one-time incremental index build: %v\n", time.Since(idxStart))
	fmt.Fprintf(&b, "%10s %16s %14s\n", "churn", "incremental", "vs full")

	rng := rand.New(rand.NewSource(opt.Seed + 9))
	for _, frac := range []float64{0.001, 0.01, 0.05, 0.20} {
		nChange := int(frac * float64(l.Cfg.NumIters))
		changed := make([]int32, 0, nChange)
		for j := 0; j < nChange; j++ {
			i := rng.Intn(l.Cfg.NumIters)
			l.Ind[1][i] = int32(rng.Intn(l.Cfg.NumElems))
			changed = append(changed, int32(i))
		}
		start := time.Now()
		for _, s := range scheds {
			if err := s.Update(changed, l.Ind...); err != nil {
				return "", err
			}
		}
		dur := time.Since(start)
		fmt.Fprintf(&b, "%9.1f%% %16v %13.2fx\n", 100*frac, dur, float64(fullDur)/float64(dur+1))
	}
	for p, s := range scheds {
		if err := s.Check(l.Ind...); err != nil {
			return "", fmt.Errorf("proc %d after churn: %w", p, err)
		}
	}
	b.WriteString("all schedules re-verified after the churn sequence.\n")
	return b.String(), nil
}
