package bench

import (
	"fmt"
	"math"
	"strings"
)

// Plot renders the figure's speedup curves as an ASCII chart (speedup vs
// processors, one glyph per series), so irredbench output shows the
// *shape* the paper's figures show, not just the numbers.
func (f *Figure) Plot(height int) string {
	if len(f.Series) == 0 || height < 4 {
		return ""
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@'}

	// Collect the P axis (columns) and the speedup range.
	var procs []int
	for _, pt := range f.Series[0].Points {
		procs = append(procs, pt.P)
	}
	maxSp := 1.0
	for _, s := range f.Series {
		for _, pt := range s.Points {
			if pt.Speedup > maxSp {
				maxSp = pt.Speedup
			}
		}
	}
	top := math.Ceil(maxSp)

	const colW = 7
	width := len(procs) * colW
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	rowOf := func(sp float64) int {
		r := height - 1 - int(sp/top*float64(height-1)+0.5)
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	colOf := func(pi int) int { return pi*colW + colW/2 }

	for si, s := range f.Series {
		g := glyphs[si%len(glyphs)]
		for pi, p := range procs {
			pt := s.At(p)
			if pt == nil {
				continue
			}
			r, c := rowOf(pt.Speedup), colOf(pi)
			if grid[r][c] == ' ' {
				grid[r][c] = g
			} else {
				// Overlapping points: mark the collision.
				grid[r][c] = '&'
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s — speedup vs processors (top = %.0fx)\n", strings.ToUpper(f.ID), top)
	for r := range grid {
		label := "      "
		switch r {
		case 0:
			label = fmt.Sprintf("%5.0fx", top)
		case height - 1:
			label = "    0x"
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, grid[r])
	}
	b.WriteString("       ")
	for _, p := range procs {
		fmt.Fprintf(&b, "%*d", colW, p)
	}
	b.WriteString("   (P)\n       legend:")
	for si, s := range f.Series {
		fmt.Fprintf(&b, "  %c=%s", glyphs[si%len(glyphs)], s.Def.Name)
	}
	b.WriteString("  &=overlap\n")
	return b.String()
}
