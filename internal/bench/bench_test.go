package bench

import (
	"strings"
	"testing"

	"irred/internal/sparse"
)

// Small, fast options for tests.
var testOpt = Options{Steps: 6, Seed: 1, Procs: []int{1, 2, 8}}

func TestFig4SmallClass(t *testing.T) {
	// A reduced class keeps the test fast while exercising the full path.
	f, err := Fig4(sparse.Class{Name: "W", N: 1000, NNZ: 20000}, testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 3 {
		t.Fatalf("series = %d", len(f.Series))
	}
	for _, s := range f.Series {
		if len(s.Points) != 3 {
			t.Fatalf("%s points = %d", s.Def.Name, len(s.Points))
		}
		if got := s.At(8); got == nil || got.Speedup <= 1 {
			t.Fatalf("%s: no speedup at 8 processors: %+v", s.Def.Name, got)
		}
	}
	out := f.Render()
	for _, want := range []string{"FIG4W", "k=1", "k=2", "k=4", "sequential"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render lacks %q:\n%s", want, out)
		}
	}
}

func TestFig6SmallAndSpeedupTable(t *testing.T) {
	opt := Options{Steps: 6, Seed: 1, Procs: []int{2, 8, 32}}
	f, err := Fig6(false, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 4 {
		t.Fatalf("series = %d", len(f.Series))
	}
	// Sanity: 32 processors beat 2 for every strategy.
	for _, s := range f.Series {
		if rel := s.RelativeSpeedup(2, 32); rel <= 1 {
			t.Fatalf("%s: relative speedup 2->32 = %v", s.Def.Name, rel)
		}
	}
	tbl := SpeedupTable(f, PaperEuler2K)
	for _, want := range []string{"1c", "2c", "4c", "2b", "9.28", "rel 2->32"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("table lacks %q:\n%s", want, tbl)
		}
	}
}

func TestFig7Small(t *testing.T) {
	opt := Options{Steps: 4, Seed: 1, Procs: []int{2, 8}}
	f, err := Fig7(false, opt)
	if err != nil {
		t.Fatal(err)
	}
	if f.SeqSeconds <= 0 {
		t.Fatal("no sequential baseline")
	}
	for _, s := range f.Series {
		if s.At(8).Seconds >= s.At(2).Seconds {
			t.Fatalf("%s: 8 processors slower than 2", s.Def.Name)
		}
	}
}

func TestAblationK(t *testing.T) {
	f, err := AblationK(Options{Steps: 4, Seed: 1, Procs: []int{16}})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 4 {
		t.Fatalf("series = %d", len(f.Series))
	}
}

func TestAblationAdaptive(t *testing.T) {
	rows, txt, err := AblationAdaptive(Options{Steps: 4, Seed: 1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || !strings.Contains(txt, "ABLATION-ADAPTIVE") {
		t.Fatal("adaptive ablation empty")
	}
	// Effective per-step cost must fall as the adaptation period grows.
	for i := 1; i < len(rows); i++ {
		if rows[i].LightPerStep > rows[i-1].LightPerStep {
			t.Fatalf("light per-step not monotone: %+v", rows)
		}
		if rows[i].ClassicPerStep > rows[i-1].ClassicPerStep {
			t.Fatalf("classic per-step not monotone: %+v", rows)
		}
	}
	// The light inspector must amortize better: its advantage is largest
	// at period 1.
	if rows[0].LightOverClassic >= rows[len(rows)-1].LightOverClassic {
		// ratio should grow (light loses relative ground) as adaptation
		// becomes rare.
		t.Fatalf("adaptive advantage shape wrong: %+v", rows)
	}
}

func TestAblationInspector(t *testing.T) {
	txt, err := AblationInspector(Options{Steps: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"euler2K", "moldyn2K", "mvmS"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("inspector ablation lacks %q:\n%s", want, txt)
		}
	}
}

func TestAblationEdgeOrder(t *testing.T) {
	txt, err := AblationEdgeOrder(Options{Steps: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt, "natural") || !strings.Contains(txt, "shuffled") {
		t.Fatalf("edge-order ablation incomplete:\n%s", txt)
	}
}

func TestMVMTableRendering(t *testing.T) {
	f, err := Fig4(sparse.Class{Name: "W", N: 500, NNZ: 6000}, Options{Steps: 4, Seed: 1, Procs: []int{2, 32}})
	if err != nil {
		t.Fatal(err)
	}
	tbl := MVMTable(f, "W")
	if !strings.Contains(tbl, "24.55") {
		t.Fatalf("paper value missing:\n%s", tbl)
	}
}

func TestFigureCSV(t *testing.T) {
	f, err := Fig4(sparse.Class{Name: "W", N: 400, NNZ: 4000}, Options{Steps: 4, Seed: 1, Procs: []int{2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	csv := f.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv rows = %d:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "P,k=1_seconds,k=1_speedup") {
		t.Fatalf("csv header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "2,") || !strings.HasPrefix(lines[2], "4,") {
		t.Fatalf("csv body:\n%s", csv)
	}
}

func TestFigurePlot(t *testing.T) {
	f, err := Fig6(false, Options{Steps: 4, Seed: 1, Procs: []int{2, 8, 32}})
	if err != nil {
		t.Fatal(err)
	}
	p := f.Plot(12)
	if !strings.Contains(p, "legend:") || !strings.Contains(p, "2c") {
		t.Fatalf("plot missing legend:\n%s", p)
	}
	lines := strings.Split(strings.TrimSpace(p), "\n")
	// Title + 12 grid rows + axis + legend.
	if len(lines) != 15 {
		t.Fatalf("plot has %d lines:\n%s", len(lines), p)
	}
	marks := 0
	for _, g := range []string{"*", "o", "+", "x", "&"} {
		marks += strings.Count(p, g)
	}
	if marks < 6 {
		t.Fatalf("plot has %d marks, want >= 6 (3 procs x 4 series with overlaps)\n%s", marks, p)
	}
}

func TestAblationMachine(t *testing.T) {
	txt, err := AblationMachine(Options{Steps: 4, Seed: 1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt, "MANNA") || !strings.Contains(txt, "modern") {
		t.Fatalf("machine ablation incomplete:\n%s", txt)
	}
}

func TestAblationIncremental(t *testing.T) {
	txt, err := AblationIncremental(Options{Steps: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt, "re-verified") {
		t.Fatalf("incremental ablation did not verify:\n%s", txt)
	}
}

func TestSeriesHelpers(t *testing.T) {
	s := Series{Def: Strat2C, Points: []Point{{P: 2, Seconds: 4}, {P: 8, Seconds: 1}}}
	if s.At(3) != nil {
		t.Fatal("At(3) found a point")
	}
	if got := s.RelativeSpeedup(2, 8); got != 4 {
		t.Fatalf("relative speedup = %v", got)
	}
	if got := s.RelativeSpeedup(2, 32); got != 0 {
		t.Fatalf("missing point speedup = %v, want 0", got)
	}
	f := &Figure{Series: []Series{s}}
	if f.SeriesByName("2c") == nil || f.SeriesByName("zz") != nil {
		t.Fatal("SeriesByName lookup wrong")
	}
}
