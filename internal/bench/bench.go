// Package bench regenerates every data-bearing exhibit of the paper's
// evaluation (Section 5): Figures 4 and 5 (mvm on NAS CG classes W, A, B),
// Figures 6 and 7 (euler and moldyn under the 1c/2c/4c/2b strategies), the
// speedup tables embedded in the text (T1–T3), and the ablations the
// design calls for (k sweep, adaptive reductions, inspector cost).
//
// Experiments run on the simulated EARTH machine, so any processor count
// the paper used (up to 64) runs on a laptop; timings are simulated seconds
// under the 50 MHz MANNA clock, like the authors' simulator reported.
package bench

import (
	"fmt"
	"strings"

	"irred/internal/inspector"
	"irred/internal/rts"
	"irred/internal/sim"
)

// StrategyDef names a (k, distribution) pair the paper evaluates.
type StrategyDef struct {
	Name string
	K    int
	Dist inspector.Dist
}

// The paper's strategy variants.
var (
	Strat1C = StrategyDef{"1c", 1, inspector.Cyclic}
	Strat2C = StrategyDef{"2c", 2, inspector.Cyclic}
	Strat4C = StrategyDef{"4c", 4, inspector.Cyclic}
	Strat2B = StrategyDef{"2b", 2, inspector.Block}
)

// KStrategies are the mvm variants (k sweep, block rows).
func KStrategies() []StrategyDef {
	return []StrategyDef{
		{"k=1", 1, inspector.Block},
		{"k=2", 2, inspector.Block},
		{"k=4", 4, inspector.Block},
	}
}

// EulerStrategies returns the four variants reported for euler and moldyn.
func EulerStrategies() []StrategyDef {
	return []StrategyDef{Strat1C, Strat2C, Strat4C, Strat2B}
}

// Point is one measured configuration.
type Point struct {
	P       int
	Cycles  sim.Time
	Seconds float64
	Speedup float64 // absolute, vs the sequential baseline
}

// Series is one strategy across processor counts.
type Series struct {
	Def    StrategyDef
	Points []Point
}

// At returns the point for processor count p, or nil.
func (s *Series) At(p int) *Point {
	for i := range s.Points {
		if s.Points[i].P == p {
			return &s.Points[i]
		}
	}
	return nil
}

// RelativeSpeedup reports speedup going from `from` to `to` processors —
// the paper's headline metric for euler and moldyn.
func (s *Series) RelativeSpeedup(from, to int) float64 {
	a, b := s.At(from), s.At(to)
	if a == nil || b == nil || b.Seconds == 0 {
		return 0
	}
	return a.Seconds / b.Seconds
}

// Figure is one regenerated exhibit.
type Figure struct {
	ID    string // e.g. "fig4w"
	Title string
	// SeqSeconds is the sequential baseline (simulated), and PaperSeq the
	// paper's measured sequential seconds where reported.
	SeqSeconds float64
	PaperSeq   float64
	Steps      int
	Series     []Series
	Notes      []string
}

// Options control experiment size.
type Options struct {
	Steps int   // timesteps (paper: 100)
	Seed  int64 // dataset seed
	Procs []int // processor counts; default per figure
}

func (o *Options) fill(defProcs []int) {
	if o.Steps <= 0 {
		o.Steps = 100
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Procs) == 0 {
		o.Procs = defProcs
	}
}

// runFigure drives one figure: it builds the loop per configuration,
// simulates it, and assembles speedups against the sequential walk.
func runFigure(id, title string, opt Options, defProcs []int,
	strats []StrategyDef, mk func(p, k int, d inspector.Dist) *rts.Loop) (*Figure, error) {
	opt.fill(defProcs)
	f := &Figure{ID: id, Title: title, Steps: opt.Steps}

	seqLoop := mk(1, 1, inspector.Block)
	seqCycles, seqSeconds := rts.RunSequentialSim(seqLoop, rts.SimOptions{Steps: opt.Steps})
	f.SeqSeconds = seqSeconds

	for _, sd := range strats {
		ser := Series{Def: sd}
		for _, p := range opt.Procs {
			l := mk(p, sd.K, sd.Dist)
			res, err := rts.RunSim(l, rts.SimOptions{Steps: opt.Steps})
			if err != nil {
				return nil, fmt.Errorf("%s %s P=%d: %w", id, sd.Name, p, err)
			}
			ser.Points = append(ser.Points, Point{
				P:       p,
				Cycles:  res.Cycles,
				Seconds: res.Seconds,
				Speedup: float64(seqCycles) / float64(res.Cycles),
			})
		}
		f.Series = append(f.Series, ser)
	}
	return f, nil
}

// Render formats the figure as a fixed-width table of simulated seconds
// with speedups in parentheses.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", strings.ToUpper(f.ID), f.Title)
	fmt.Fprintf(&b, "sequential: %.2fs simulated", f.SeqSeconds)
	if f.PaperSeq > 0 {
		fmt.Fprintf(&b, " (paper: %.2fs)", f.PaperSeq)
	}
	fmt.Fprintf(&b, ", %d timesteps\n", f.Steps)

	fmt.Fprintf(&b, "%6s", "P")
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %18s", s.Def.Name)
	}
	b.WriteByte('\n')
	if len(f.Series) > 0 {
		for i := range f.Series[0].Points {
			p := f.Series[0].Points[i].P
			fmt.Fprintf(&b, "%6d", p)
			for _, s := range f.Series {
				pt := s.At(p)
				if pt == nil {
					fmt.Fprintf(&b, " %18s", "-")
					continue
				}
				fmt.Fprintf(&b, "   %8.2fs (%5.2f)", pt.Seconds, pt.Speedup)
			}
			b.WriteByte('\n')
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the figure as comma-separated values (P, then one
// seconds+speedup pair per series) for external plotting.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString("P")
	for _, s := range f.Series {
		fmt.Fprintf(&b, ",%s_seconds,%s_speedup", s.Def.Name, s.Def.Name)
	}
	b.WriteByte('\n')
	if len(f.Series) > 0 {
		for i := range f.Series[0].Points {
			p := f.Series[0].Points[i].P
			fmt.Fprintf(&b, "%d", p)
			for _, s := range f.Series {
				if pt := s.At(p); pt != nil {
					fmt.Fprintf(&b, ",%.4f,%.3f", pt.Seconds, pt.Speedup)
				} else {
					b.WriteString(",,")
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// SeriesByName finds a series, or nil.
func (f *Figure) SeriesByName(name string) *Series {
	for i := range f.Series {
		if f.Series[i].Def.Name == name {
			return &f.Series[i]
		}
	}
	return nil
}
