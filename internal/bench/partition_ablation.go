package bench

import (
	"fmt"
	"math"
	"strings"

	"irred/internal/inspector"
	"irred/internal/kernels"
	"irred/internal/machine"
	"irred/internal/mesh"
	"irred/internal/rts"
	"irred/internal/sim"
)

// AblationPartition quantifies the paper's Section 5.4.3 discussion: what
// does expensive mesh partitioning buy, and what does it cost? It compares,
// on euler at P processors:
//
//   - the paper's phase strategy on the mesh as-is (no preprocessing
//     beyond the LightInspector);
//   - the phase strategy on an RCB-partitioned, renumbered mesh (the
//     "partitioning + renumbering" preprocessing of related work — it
//     improves locality but the phase strategy barely needs it);
//   - the classic inspector/executor with RCB partitioning (few cut edges,
//     so little ghost traffic — the strong static baseline);
//   - the classic inspector/executor with naive block ownership (what it
//     degrades to without partitioning).
//
// RCB preprocessing cost is charged once and reported separately: on an
// adaptive problem it recurs at every adaptation.
func AblationPartition(opt Options, procs int) (string, error) {
	opt.fill(nil)
	nodes, edges := mesh.Paper2K()
	m := mesh.Generate(nodes, edges, opt.Seed)
	cm, net := machine.MANNA(), machine.MANNANet()

	var b strings.Builder
	fmt.Fprintf(&b, "ABLATION-PARTITION: euler 2K at P=%d — what does mesh partitioning buy?\n", procs)
	fmt.Fprintf(&b, "%34s %12s %14s\n", "configuration", "sec/step", "preprocessing")

	// Phase strategy, natural mesh.
	eu := kernels.NewEuler(m, opt.Seed)
	l := eu.Loop(procs, 2, inspector.Cyclic)
	res, err := rts.RunSim(l, rts.SimOptions{Steps: opt.Steps})
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "%34s %11.4fs %13.5fs\n", "phase strategy (no partitioning)",
		cm.Seconds(res.PerStep), cm.Seconds(res.InspectorCycles))

	// Phase strategy, RCB-renumbered mesh.
	pt := m.RCB(procs)
	rcbCost := rcbCycles(cm, m, procs)
	rm := m.Renumber(pt)
	euR := kernels.NewEuler(rm, opt.Seed)
	lr := euR.Loop(procs, 2, inspector.Cyclic)
	resR, err := rts.RunSim(lr, rts.SimOptions{Steps: opt.Steps})
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "%34s %11.4fs %13.5fs\n", "phase strategy + RCB renumbering",
		cm.Seconds(resR.PerStep), cm.Seconds(rcbCost+resR.InspectorCycles))

	// Classic inspector/executor with RCB (renumbered mesh, owner-computes:
	// block iterations aligned with block element ownership, so ghosts
	// shrink to the partition boundary).
	lrB := euR.Loop(procs, 2, inspector.Block)
	csR, err := inspector.ClassicInspect(lrB.Cfg, lrB.Ind...)
	if err != nil {
		return "", err
	}
	stepR, inspR := classicCost(cm, net, lrB, csR)
	fmt.Fprintf(&b, "%34s %11.4fs %13.5fs\n", "inspector/executor + RCB",
		cm.Seconds(stepR), cm.Seconds(rcbCost+inspR))

	// Classic without partitioning (naive block ownership on the natural
	// numbering, block iterations).
	lB := eu.Loop(procs, 2, inspector.Block)
	cs, err := inspector.ClassicInspect(lB.Cfg, lB.Ind...)
	if err != nil {
		return "", err
	}
	step0, insp0 := classicCost(cm, net, lB, cs)
	fmt.Fprintf(&b, "%34s %11.4fs %13.5fs\n", "inspector/executor, no partitioning",
		cm.Seconds(step0), cm.Seconds(insp0))

	fmt.Fprintf(&b, "RCB cut edges: %d of %d (%.1f%%); ghosts without partitioning: %d, with: %d\n",
		pt.CutEdges(m), m.NumEdges(), 100*float64(pt.CutEdges(m))/float64(m.NumEdges()),
		cs.TotalGhosts(), csR.TotalGhosts())
	b.WriteString("the phase strategy's performance is nearly independent of partitioning —\n")
	b.WriteString("the paper's core claim — while the classic scheme depends on it, and RCB\n")
	b.WriteString("preprocessing recurs at every adaptation of an adaptive problem.\n")
	return b.String(), nil
}

// rcbCycles estimates recursive coordinate bisection cost: log2(P) levels,
// each sorting its node subsets (n log n comparisons of constant work).
func rcbCycles(cm machine.CostModel, m *mesh.Mesh, p int) sim.Time {
	n := float64(m.NumNodes)
	perLevel := n * math.Log2(n) * 8 * float64(cm.IntOp) // compare + swap + index arithmetic
	levels := math.Ceil(math.Log2(float64(p)))
	return sim.Time(perLevel * levels)
}
