package bench

import (
	"fmt"

	"irred/internal/inspector"
	"irred/internal/kernels"
	"irred/internal/mesh"
	"irred/internal/moldyn"
	"irred/internal/rts"
	"irred/internal/sparse"
)

// Fig4 regenerates one panel of the paper's Figure 4: mvm execution times
// for a NAS CG class across k ∈ {1,2,4}. Pass sparse.ClassW or ClassA (and
// see Fig5 for class B).
func Fig4(class sparse.Class, opt Options) (*Figure, error) {
	a := sparse.Generate(class, uint64(opt.Seed))
	mv := kernels.NewMVM(a)
	paperSeq := map[string]float64{"W": 41.38, "A": 154.55}[class.Name]
	f, err := runFigure(
		"fig4"+class.Name,
		fmt.Sprintf("mvm class %s (n=%d, nnz=%d), execution time vs processors", class.Name, class.N, class.NNZ),
		opt, []int{1, 2, 4, 8, 16, 32}, KStrategies(),
		func(p, k int, d inspector.Dist) *rts.Loop { return mv.Loop(p, k, d) },
	)
	if err != nil {
		return nil, err
	}
	f.PaperSeq = paperSeq
	f.Notes = append(f.Notes,
		"paper @32P speedups — class W: k1 21.61, k2 24.55, k4 23.42; class A: k1 28.41, k2 30.65, k4 30.21",
		"paper reports slightly superlinear speedups on 4-16 processors (cache effects)")
	return f, nil
}

// Fig5 regenerates Figure 5: mvm class B on 4-64 processors. The paper
// could not run class B sequentially (memory), so relative speedups are
// computed against the best 4-processor version (k=2), as the paper does.
func Fig5(opt Options) (*Figure, error) {
	a := sparse.Generate(sparse.ClassB, uint64(opt.Seed))
	mv := kernels.NewMVM(a)
	f, err := runFigure(
		"fig5",
		fmt.Sprintf("mvm class B (n=%d, nnz=%d), execution time vs processors", sparse.ClassB.N, sparse.ClassB.NNZ),
		opt, []int{4, 8, 16, 32, 64}, KStrategies(),
		func(p, k int, d inspector.Dist) *rts.Loop { return mv.Loop(p, k, d) },
	)
	if err != nil {
		return nil, err
	}
	if ref := f.SeriesByName("k=2"); ref != nil && ref.At(4) != nil {
		base := ref.At(4).Seconds
		for si := range f.Series {
			for pi := range f.Series[si].Points {
				pt := &f.Series[si].Points[pi]
				pt.Speedup = base / pt.Seconds * 1.0
			}
		}
		f.Notes = append(f.Notes, "speedups are relative to the best 4-processor version (k=2), as in the paper")
	}
	return f, nil
}

// Fig6 regenerates one panel of Figure 6: euler on the 2K or 10K mesh
// under the 1c/2c/4c/2b strategies.
func Fig6(large bool, opt Options) (*Figure, error) {
	nodes, edges := mesh.Paper2K()
	name, paperSeq := "2K", 7.84
	paperRel := "paper relative speedups 2->32: 1c 7.12, 2c 9.28, 4c 8.49, 2b 6.78"
	if large {
		nodes, edges = mesh.Paper10K()
		name, paperSeq = "10K", 29.07
		paperRel = "paper relative speedups 2->32: 1c 7.62, 2c 10.36, 4c 9.95, 2b 6.94"
	}
	opt.fill(nil)
	m := mesh.Generate(nodes, edges, opt.Seed)
	eu := kernels.NewEuler(m, opt.Seed)
	f, err := runFigure(
		"fig6-"+name,
		fmt.Sprintf("euler %s mesh (%d nodes, %d edges), execution time vs processors", name, nodes, edges),
		opt, []int{1, 2, 4, 8, 16, 32}, EulerStrategies(),
		func(p, k int, d inspector.Dist) *rts.Loop { return eu.Loop(p, k, d) },
	)
	if err != nil {
		return nil, err
	}
	f.PaperSeq = paperSeq
	f.Notes = append(f.Notes, paperRel)
	return f, nil
}

// Fig7 regenerates one panel of Figure 7: moldyn on the 2K or 10K dataset.
func Fig7(large bool, opt Options) (*Figure, error) {
	opt.fill(nil)
	var sys *moldyn.System
	name, paperSeq := "2K", 10.80
	paperRel := "paper relative speedups 2->32: 1c 7.50, 2c 9.70, 4c 8.70, 2b 6.50"
	if large {
		sys = moldyn.Paper10K(opt.Seed)
		name, paperSeq = "10K", 28.98
		paperRel = "paper relative speedups 2->32: 1c 8.42, 2c 10.76, 4c 10.51, 2b 9.15"
	} else {
		sys = moldyn.Paper2K(opt.Seed)
	}
	md := kernels.NewMoldyn(sys)
	f, err := runFigure(
		"fig7-"+name,
		fmt.Sprintf("moldyn %s (%d molecules, %d interactions), execution time vs processors", name, sys.N, sys.NumInteractions()),
		opt, []int{1, 2, 4, 8, 16, 32}, EulerStrategies(),
		func(p, k int, d inspector.Dist) *rts.Loop { return md.Loop(p, k, d) },
	)
	if err != nil {
		return nil, err
	}
	f.PaperSeq = paperSeq
	f.Notes = append(f.Notes, paperRel)
	return f, nil
}
