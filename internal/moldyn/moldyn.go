// Package moldyn generates molecular-dynamics configurations with the
// shape of the paper's moldyn datasets: molecules on a face-centred-cubic
// lattice in a periodic box, with interaction lists built from a distance
// cutoff — the construction of the original CHAOS/Maryland moldyn
// benchmark the paper's kernel derives from.
//
// The paper's dataset sizes fall out exactly: 4*9^3 = 2,916 molecules with
// a two-shell cutoff give 9 pairs per molecule (26,244 interactions), and
// 4*14^3 = 10,976 molecules with a one-shell cutoff give 6 pairs per
// molecule (65,856 interactions).
package moldyn

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// System is a molecular configuration plus its interaction (neighbour)
// list. I1/I2 are the indirection arrays of the force reduction loop.
type System struct {
	N      int       // molecules
	Box    float64   // periodic cube side
	Pos    []float64 // 3 coordinates per molecule, interleaved
	Vel    []float64 // 3 components per molecule
	I1, I2 []int32   // interaction pairs, in coarse first-molecule order
	Cutoff float64   // interaction cutoff distance
	Seed   int64     // drives jitter and list-order randomisation
}

// NumInteractions reports the pair count.
func (s *System) NumInteractions() int { return len(s.I1) }

// Generate builds an FCC system of 4*cells^3 molecules. shells selects the
// cutoff: 1 keeps nearest neighbours (6 pairs/molecule), 2 adds the second
// shell (9 pairs/molecule). Small positional jitter (scaled by jitter,
// e.g. 0.05) perturbs molecules without changing the shell structure.
func Generate(cells, shells int, jitter float64, seed int64) *System {
	if cells < 3 {
		panic("moldyn: need at least 3 cells per side")
	}
	var cutoff float64
	switch shells {
	case 1:
		cutoff = 0.85 // first FCC shell at 1/sqrt(2) ~ 0.707
	case 2:
		cutoff = 1.10 // second shell at 1.0, third at ~1.22
	default:
		panic(fmt.Sprintf("moldyn: shells = %d, want 1 or 2", shells))
	}
	rng := rand.New(rand.NewSource(seed))
	n := 4 * cells * cells * cells
	s := &System{
		N:      n,
		Box:    float64(cells),
		Pos:    make([]float64, 3*n),
		Vel:    make([]float64, 3*n),
		Cutoff: cutoff,
		Seed:   seed,
	}
	basis := [4][3]float64{{0, 0, 0}, {0, 0.5, 0.5}, {0.5, 0, 0.5}, {0.5, 0.5, 0}}
	id := 0
	for x := 0; x < cells; x++ {
		for y := 0; y < cells; y++ {
			for z := 0; z < cells; z++ {
				for _, b := range basis {
					s.Pos[3*id] = math.Mod(float64(x)+b[0]+jitter*(rng.Float64()-0.5)+s.Box, s.Box)
					s.Pos[3*id+1] = math.Mod(float64(y)+b[1]+jitter*(rng.Float64()-0.5)+s.Box, s.Box)
					s.Pos[3*id+2] = math.Mod(float64(z)+b[2]+jitter*(rng.Float64()-0.5)+s.Box, s.Box)
					s.Vel[3*id] = 0.1 * (rng.Float64() - 0.5)
					s.Vel[3*id+1] = 0.1 * (rng.Float64() - 0.5)
					s.Vel[3*id+2] = 0.1 * (rng.Float64() - 0.5)
					id++
				}
			}
		}
	}
	s.BuildNeighbors()
	return s
}

// Paper2K builds the paper's small moldyn dataset: 2,916 molecules and
// 26,244 interactions.
func Paper2K(seed int64) *System { return Generate(9, 2, 0.02, seed) }

// Paper10K builds the paper's large moldyn dataset: 10,976 molecules and
// 65,856 interactions.
func Paper10K(seed int64) *System { return Generate(14, 1, 0.02, seed) }

// dist2 is the squared minimum-image distance between molecules a and b.
func (s *System) dist2(a, b int) float64 {
	var d2 float64
	for c := 0; c < 3; c++ {
		d := s.Pos[3*a+c] - s.Pos[3*b+c]
		if d > s.Box/2 {
			d -= s.Box
		} else if d < -s.Box/2 {
			d += s.Box
		}
		d2 += d * d
	}
	return d2
}

// BuildNeighbors rebuilds the interaction list from current positions using
// a periodic cell list. This is the step an adaptive run repeats after
// molecules move; the paper's strategy re-runs only the LightInspector
// afterwards.
func (s *System) BuildNeighbors() {
	nc := int(s.Box / s.Cutoff)
	if nc < 1 {
		nc = 1
	}
	side := s.Box / float64(nc)
	cellOf := func(i int) int {
		cx := int(s.Pos[3*i] / side)
		cy := int(s.Pos[3*i+1] / side)
		cz := int(s.Pos[3*i+2] / side)
		if cx >= nc {
			cx = nc - 1
		}
		if cy >= nc {
			cy = nc - 1
		}
		if cz >= nc {
			cz = nc - 1
		}
		return (cx*nc+cy)*nc + cz
	}
	bins := make([][]int32, nc*nc*nc)
	for i := 0; i < s.N; i++ {
		c := cellOf(i)
		bins[c] = append(bins[c], int32(i))
	}
	cut2 := s.Cutoff * s.Cutoff
	type pair struct{ a, b int32 }
	var pairs []pair
	wrap := func(v int) int { return ((v % nc) + nc) % nc }
	for cx := 0; cx < nc; cx++ {
		for cy := 0; cy < nc; cy++ {
			for cz := 0; cz < nc; cz++ {
				home := bins[(cx*nc+cy)*nc+cz]
				for dx := -1; dx <= 1; dx++ {
					for dy := -1; dy <= 1; dy++ {
						for dz := -1; dz <= 1; dz++ {
							nb := bins[(wrap(cx+dx)*nc+wrap(cy+dy))*nc+wrap(cz+dz)]
							for _, a := range home {
								for _, b := range nb {
									if a < b && s.dist2(int(a), int(b)) <= cut2 {
										pairs = append(pairs, pair{a, b})
									}
								}
							}
						}
					}
				}
			}
		}
	}
	// With nc close to Box/Cutoff and a symmetric neighbourhood scan, each
	// qualifying (a<b) pair is found once per unordered bin pair; but the
	// home/neighbour double loop visits ordered bin pairs, so a pair whose
	// bins differ is seen twice. Dedup keeps the list exact.
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})
	s.I1, s.I2 = s.I1[:0], s.I2[:0]
	for i, p := range pairs {
		if i > 0 && p == pairs[i-1] {
			continue
		}
		s.I1 = append(s.I1, p.a)
		s.I2 = append(s.I2, p.b)
	}
	// Shuffle within windows: a rebuilt neighbour list has coarse, not
	// exact, molecule-order locality (particles drift out of sorted order
	// between rebuilds), and exact ordering would make block distributions
	// unrealistically home-aligned.
	window := len(s.I1) / 8
	if window < 64 {
		window = 64
	}
	rng := rand.New(rand.NewSource(s.Seed + 1))
	for lo := 0; lo < len(s.I1); lo += window {
		hi := lo + window
		if hi > len(s.I1) {
			hi = len(s.I1)
		}
		rng.Shuffle(hi-lo, func(i, j int) {
			s.I1[lo+i], s.I1[lo+j] = s.I1[lo+j], s.I1[lo+i]
			s.I2[lo+i], s.I2[lo+j] = s.I2[lo+j], s.I2[lo+i]
		})
	}
}

// Displace moves every molecule by a random vector of magnitude up to amp
// (with periodic wrap), modelling dynamics between neighbour-list rebuilds.
func (s *System) Displace(amp float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range s.Pos {
		s.Pos[i] = math.Mod(s.Pos[i]+amp*(rng.Float64()-0.5)+s.Box, s.Box)
	}
}

// Check validates system invariants.
func (s *System) Check() error {
	if len(s.Pos) != 3*s.N || len(s.Vel) != 3*s.N {
		return fmt.Errorf("moldyn: array lengths inconsistent with N=%d", s.N)
	}
	if len(s.I1) != len(s.I2) {
		return fmt.Errorf("moldyn: pair arrays differ in length")
	}
	cut2 := s.Cutoff * s.Cutoff
	for i := range s.I1 {
		a, b := int(s.I1[i]), int(s.I2[i])
		if a < 0 || a >= s.N || b < 0 || b >= s.N || a == b {
			return fmt.Errorf("moldyn: bad pair (%d,%d)", a, b)
		}
		if d2 := s.dist2(a, b); d2 > cut2*1.0001 {
			return fmt.Errorf("moldyn: pair (%d,%d) at distance %.3f beyond cutoff %.3f", a, b, math.Sqrt(d2), s.Cutoff)
		}
	}
	return nil
}
