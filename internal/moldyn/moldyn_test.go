package moldyn

import (
	"math"
	"testing"
)

func TestPaper2KExact(t *testing.T) {
	s := Paper2K(1)
	if s.N != 2916 {
		t.Fatalf("N = %d, want 2916", s.N)
	}
	if got := s.NumInteractions(); got != 26244 {
		t.Fatalf("interactions = %d, want 26244 (9 per molecule)", got)
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestPaper10KExact(t *testing.T) {
	s := Paper10K(1)
	if s.N != 10976 {
		t.Fatalf("N = %d, want 10976", s.N)
	}
	if got := s.NumInteractions(); got != 65856 {
		t.Fatalf("interactions = %d, want 65856 (6 per molecule)", got)
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestFCCShellStructure(t *testing.T) {
	// Without jitter, every molecule has exactly 12 first-shell and 6
	// second-shell neighbours under periodic boundaries.
	s := Generate(5, 1, 0, 1)
	if got, want := s.NumInteractions(), s.N*6; got != want {
		t.Fatalf("one-shell pairs = %d, want %d", got, want)
	}
	s2 := Generate(5, 2, 0, 1)
	if got, want := s2.NumInteractions(), s2.N*9; got != want {
		t.Fatalf("two-shell pairs = %d, want %d", got, want)
	}
}

func TestPairsInCoarseOrder(t *testing.T) {
	// Pair lists have coarse first-molecule order (window-level), and every
	// pair is canonical (a < b).
	s := Paper2K(1)
	const windows = 8
	w := len(s.I1) / windows
	var prevMean float64 = -1
	for b := 0; b < windows; b++ {
		var sum float64
		for i := b * w; i < (b+1)*w; i++ {
			sum += float64(s.I1[i])
		}
		mean := sum / float64(w)
		if mean <= prevMean {
			t.Fatalf("window %d mean %.0f not increasing past %.0f", b, mean, prevMean)
		}
		prevMean = mean
	}
	for i := range s.I1 {
		if s.I1[i] >= s.I2[i] {
			t.Fatalf("pair %d not canonical (a<b)", i)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a, b := Paper2K(5), Paper2K(5)
	for i := range a.Pos {
		if a.Pos[i] != b.Pos[i] {
			t.Fatal("positions differ")
		}
	}
	for i := range a.I1 {
		if a.I1[i] != b.I1[i] || a.I2[i] != b.I2[i] {
			t.Fatal("pairs differ")
		}
	}
}

func TestDisplaceAndRebuild(t *testing.T) {
	s := Generate(5, 1, 0.02, 1)
	pairSet := func() map[[2]int32]bool {
		m := map[[2]int32]bool{}
		for i := range s.I1 {
			m[[2]int32{s.I1[i], s.I2[i]}] = true
		}
		return m
	}
	before := pairSet()
	s.Displace(0.3, 7)
	s.BuildNeighbors()
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
	if s.NumInteractions() == 0 {
		t.Fatal("rebuild lost all pairs")
	}
	// A displacement of 0.3 on a shell-separated lattice must change the
	// neighbour list — that is what makes the problem adaptive.
	after := pairSet()
	changed := false
	for k := range after {
		if !before[k] {
			changed = true
			break
		}
	}
	if !changed && len(after) == len(before) {
		t.Fatal("displacement did not change the interaction list")
	}
}

func TestPositionsInsideBox(t *testing.T) {
	s := Paper2K(3)
	for i, p := range s.Pos {
		if p < 0 || p >= s.Box {
			t.Fatalf("coordinate %d = %v outside [0,%v)", i, p, s.Box)
		}
	}
	s.Displace(1.5, 9)
	for i, p := range s.Pos {
		if p < 0 || p >= s.Box {
			t.Fatalf("after displace, coordinate %d = %v outside box", i, p)
		}
	}
}

func TestMinimumImageDistance(t *testing.T) {
	s := &System{N: 2, Box: 10, Pos: []float64{0.5, 0, 0, 9.5, 0, 0}, Vel: make([]float64, 6), Cutoff: 2}
	if d := math.Sqrt(s.dist2(0, 1)); math.Abs(d-1.0) > 1e-12 {
		t.Fatalf("minimum-image distance %v, want 1", d)
	}
}

func TestBadShellsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for shells=3")
		}
	}()
	Generate(5, 3, 0, 1)
}
