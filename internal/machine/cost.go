package machine

import "irred/internal/sim"

// CostModel holds per-operation cycle costs for one node. The defaults
// (MANNA) are i860XP-flavoured: a 50 MHz in-order processor with a 16 KB
// 4-way data cache, paired on each node with a second i860XP acting as the
// Synchronization Unit (the paper's manna-dual mode).
type CostModel struct {
	ClockHz float64 // processor clock, cycles per second

	// Execution-unit costs.
	Flop      sim.Time // one floating-point add/mul
	IntOp     sim.Time // one integer/address op
	LoadHit   sim.Time // load or store that hits in the data cache
	MissExtra sim.Time // additional cycles for a cache-line miss
	LoopOver  sim.Time // per-iteration loop overhead (index update, branch)

	// Fiber / EARTH-operation costs.
	FiberSwitch sim.Time // EU cost to retire one fiber and dispatch the next
	SpawnOp     sim.Time // EU cost to issue a spawn/sync EARTH operation
	SyncOp      sim.Time // SU cost to process one synchronization event

	// CodegenFactor is the per-iteration instruction overhead of the
	// EARTH-C-compiled phase executor for LHS-irregular (reduce-mode)
	// loops, relative to the hand-written sequential C baseline: the
	// generated loop carries the owned-vs-buffer branch, rewritten
	// indirection addressing and copy-loop scaffolding. Calibrated against
	// the paper's 2-processor euler/moldyn measurements; gather-mode loops
	// (mvm) have no such machinery and take no overhead, matching the
	// paper's near-perfect 2-processor mvm speedups.
	CodegenFactor float64

	// Data cache geometry.
	CacheSize  int
	CacheLine  int
	CacheAssoc int
}

// MANNA returns the default cost model used throughout the reproduction.
func MANNA() CostModel {
	return CostModel{
		ClockHz:       50e6,
		Flop:          2,
		IntOp:         1,
		LoadHit:       1,
		MissExtra:     24,
		LoopOver:      2,
		FiberSwitch:   40,
		SpawnOp:       20,
		SyncOp:        30,
		CodegenFactor: 1.6,
		CacheSize:     16 << 10,
		CacheLine:     32,
		CacheAssoc:    4,
	}
}

// NewCache builds a data-cache simulator with this model's geometry.
func (m CostModel) NewCache() *Cache {
	return NewCache(m.CacheSize, m.CacheLine, m.CacheAssoc)
}

// Seconds converts a cycle count to wall-clock seconds on this machine.
func (m CostModel) Seconds(t sim.Time) float64 {
	return float64(t) / m.ClockHz
}

// Mem returns the cycle cost of nAccesses memory references of which nMisses
// missed the data cache.
func (m CostModel) Mem(nAccesses, nMisses uint64) sim.Time {
	return sim.Time(nAccesses)*m.LoadHit + sim.Time(nMisses)*m.MissExtra
}

// Network models the MANNA crossbar: every node pair is connected through a
// non-blocking switch, so the only serialization is at each node's own
// network interface. A message of b bytes occupies the sender's interface
// for SendOverhead + b*CyclesPerByte cycles, spends Latency cycles in
// flight, and occupies the receiver's SU for RecvOverhead cycles.
type Network struct {
	SendOverhead  sim.Time // fixed sender-side cost per message
	RecvOverhead  sim.Time // fixed receiver-side cost per message
	Latency       sim.Time // in-flight switch latency
	CyclesPerByte float64  // inverse link bandwidth (1.0 ≈ 50 MB/s at 50 MHz)
}

// MANNANet returns the default network model.
func MANNANet() Network {
	return Network{
		SendOverhead:  150,
		RecvOverhead:  150,
		Latency:       250,
		CyclesPerByte: 1.0,
	}
}

// XmitCycles reports how long a message of b bytes occupies the sending
// interface.
func (n Network) XmitCycles(b int) sim.Time {
	return n.SendOverhead + sim.Time(float64(b)*n.CyclesPerByte)
}

// Modern returns a present-day machine preset — a ~3 GHz core with a 32 KB
// L1 data cache and a kernel-bypass 10-gigabit-class interconnect — for the
// "does the 2002 conclusion still hold?" ablation. Compute got ~60× faster
// per cycle-second while network bandwidth grew ~25× and latency improved
// only ~10×, so communication is relatively more expensive to expose and
// overlap (k >= 2) matters at least as much as on MANNA.
func Modern() CostModel {
	return CostModel{
		ClockHz:       3e9,
		Flop:          1,
		IntOp:         1,
		LoadHit:       1,
		MissExtra:     40, // L1 miss served by L2/L3
		LoopOver:      1,
		FiberSwitch:   300, // user-level task switch ~100 ns
		SpawnOp:       60,
		SyncOp:        120,
		CodegenFactor: 1.2, // modern compilers lower the irregular-loop tax
		CacheSize:     32 << 10,
		CacheLine:     64,
		CacheAssoc:    8,
	}
}

// ModernNet returns the matching interconnect: ~1 µs one-way latency and
// ~1.2 GB/s effective per-link bandwidth (10 GbE with kernel bypass).
func ModernNet() Network {
	return Network{
		SendOverhead:  1500, // ~0.5 us host overhead
		RecvOverhead:  1500,
		Latency:       3000, // ~1 us switch + wire
		CyclesPerByte: 2.5,  // 3e9 cycles/s over 1.2e9 B/s
	}
}
