package machine

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCacheColdMiss(t *testing.T) {
	c := NewCache(1024, 32, 2)
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0) {
		t.Fatal("repeat access missed")
	}
	if !c.Access(31) {
		t.Fatal("same-line access missed")
	}
	if c.Access(32) {
		t.Fatal("next-line access hit")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, one set of interest: lines mapping to set 0 are multiples of
	// 32*sets. size=1024,line=32,assoc=2 -> sets=16.
	c := NewCache(1024, 32, 2)
	stride := uint64(32 * 16)
	c.Access(0 * stride)
	c.Access(1 * stride)
	c.Access(2 * stride) // evicts line 0 (LRU)
	if c.Access(0 * stride) {
		t.Fatal("evicted line hit")
	}
	// Now set holds {0,2}; 1 was evicted when 0 was refetched.
	if !c.Access(2 * stride) {
		t.Fatal("resident line missed")
	}
}

func TestCacheRecencyUpdate(t *testing.T) {
	c := NewCache(1024, 32, 2)
	stride := uint64(32 * 16)
	c.Access(0 * stride)
	c.Access(1 * stride)
	c.Access(0 * stride) // touch 0: now 1 is LRU
	c.Access(2 * stride) // evicts 1
	if !c.Access(0 * stride) {
		t.Fatal("MRU line was evicted")
	}
	if c.Access(1 * stride) {
		t.Fatal("LRU line survived")
	}
}

func TestCacheSequentialStream(t *testing.T) {
	c := NewCache(16<<10, 32, 4)
	// Streaming 8-byte words: one miss per 4 words.
	for i := 0; i < 4096; i++ {
		c.Access(uint64(i * 8))
	}
	if c.Misses != 1024 {
		t.Fatalf("misses = %d, want 1024", c.Misses)
	}
}

func TestCacheWorkingSetFits(t *testing.T) {
	c := NewCache(16<<10, 32, 4)
	// 8 KB working set, swept twice: second sweep must be all hits.
	for pass := 0; pass < 2; pass++ {
		if pass == 1 {
			c.ResetCounters()
		}
		for i := 0; i < 1024; i++ {
			c.Access(uint64(i * 8))
		}
	}
	if c.Misses != 0 {
		t.Fatalf("warm sweep misses = %d, want 0", c.Misses)
	}
}

func TestCacheCapacityMisses(t *testing.T) {
	c := NewCache(16<<10, 32, 4)
	// 64 KB working set swept repeatedly with LRU: every access in a
	// cyclic sweep larger than capacity misses at line granularity.
	words := (64 << 10) / 8
	for pass := 0; pass < 2; pass++ {
		if pass == 1 {
			c.ResetCounters()
		}
		for i := 0; i < words; i++ {
			c.Access(uint64(i * 8))
		}
	}
	wantMisses := uint64(words / 4) // one miss per 32-byte line
	if c.Misses != wantMisses {
		t.Fatalf("misses = %d, want %d", c.Misses, wantMisses)
	}
}

func TestAccessRange(t *testing.T) {
	c := NewCache(1024, 32, 2)
	if got := c.AccessRange(0, 64); got != 2 {
		t.Fatalf("cold 64B range misses = %d, want 2", got)
	}
	if got := c.AccessRange(0, 64); got != 0 {
		t.Fatalf("warm range misses = %d, want 0", got)
	}
	// A range straddling a line boundary touches both lines.
	c.Reset()
	if got := c.AccessRange(30, 4); got != 2 {
		t.Fatalf("straddling range misses = %d, want 2", got)
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(1024, 32, 2)
	c.Access(0)
	c.Reset()
	if c.Access(0) {
		t.Fatal("hit after Reset")
	}
	if c.Accesses() != 1 {
		t.Fatalf("accesses = %d, want 1", c.Accesses())
	}
}

func TestCacheBadParamsPanic(t *testing.T) {
	for _, args := range [][3]int{{0, 32, 2}, {1024, 0, 2}, {1024, 32, 0}, {1000, 32, 2}, {64, 32, 4}} {
		args := args
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCache(%v) did not panic", args)
				}
			}()
			NewCache(args[0], args[1], args[2])
		}()
	}
}

// Property: hits+misses always equals the number of accesses, and an access
// immediately repeated always hits.
func TestCacheInvariantsProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		c := NewCache(4096, 32, 2)
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < int(n); i++ {
			a := uint64(r.Intn(1 << 16))
			c.Access(a)
			if !c.Access(a) {
				return false
			}
		}
		return c.Accesses() == uint64(n)*2
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a direct-mapped cache and a fully-associative cache agree on a
// stream that fits entirely in both (compulsory misses only).
func TestCacheCompulsoryProperty(t *testing.T) {
	prop := func(lines []uint8) bool {
		dm := NewCache(8192, 32, 1)
		fa := NewCache(8192, 32, 256)
		seen := map[uint64]bool{}
		want := uint64(0)
		for _, l := range lines {
			a := uint64(l) * 32
			if !seen[a] {
				seen[a] = true
				want++
			}
			dm.Access(a)
			fa.Access(a)
		}
		// 256 distinct lines at most; both caches hold 256 lines.
		return dm.Misses == want && fa.Misses == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCostModelMem(t *testing.T) {
	m := MANNA()
	if got := m.Mem(100, 10); got != 100*m.LoadHit+10*m.MissExtra {
		t.Fatalf("Mem = %d", got)
	}
}

func TestCostModelSeconds(t *testing.T) {
	m := MANNA()
	if got := m.Seconds(50e6); got != 1.0 {
		t.Fatalf("Seconds(50e6) = %v, want 1", got)
	}
}

func TestNetworkXmit(t *testing.T) {
	n := MANNANet()
	if got := n.XmitCycles(1000); got != n.SendOverhead+1000 {
		t.Fatalf("XmitCycles = %d", got)
	}
	if n.XmitCycles(0) != n.SendOverhead {
		t.Fatal("zero-byte message should cost only the overhead")
	}
}

func TestModernPreset(t *testing.T) {
	m := Modern()
	if m.ClockHz <= MANNA().ClockHz {
		t.Fatal("modern clock not faster than MANNA")
	}
	if m.CacheSize <= MANNA().CacheSize {
		t.Fatal("modern cache not larger")
	}
	n := ModernNet()
	if n.Latency <= MANNANet().Latency {
		t.Fatal("modern latency (in cycles) should exceed MANNA's: compute sped up more than the wire")
	}
	// The presets must build valid caches.
	m.NewCache().Access(0)
}
