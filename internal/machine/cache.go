// Package machine models the hardware the paper evaluated on: MANNA nodes
// with 50 MHz Intel i860XP processors, a small on-chip data cache, and a
// crossbar interconnect with roughly one byte per cycle of link bandwidth.
//
// The package supplies the three ingredients the reproduction needs:
//
//   - a set-associative LRU data-cache simulator (Cache), which is the
//     mechanism behind the paper's locality observations (superlinear mvm
//     speedups on mid-size machines, the 2-processor overheads of euler and
//     moldyn, and the moldyn-10K slowdown);
//   - a cycle cost model (CostModel) for arithmetic, memory access, fiber
//     switching, and EARTH synchronization operations;
//   - a network model (Network) charging per-message overhead plus
//     per-byte transfer time, independent of message contents.
package machine

// Cache is a set-associative LRU cache simulator. It tracks only tags, not
// data: Access reports whether a byte address hits, updating recency and
// contents as a real cache would.
type Cache struct {
	lineShift uint
	setMask   uint64
	assoc     int
	// tags[set*assoc+way]; recency via per-set ordering (small assoc, so a
	// move-to-front array scan is fast and allocation-free).
	tags  []uint64
	valid []bool

	Hits   uint64
	Misses uint64
}

// NewCache returns a cache of size bytes total with the given line size and
// associativity. Size, line and associativity must be powers of two with
// size >= line*assoc.
func NewCache(size, line, assoc int) *Cache {
	if size <= 0 || line <= 0 || assoc <= 0 {
		panic("machine: cache parameters must be positive")
	}
	if size&(size-1) != 0 || line&(line-1) != 0 || assoc&(assoc-1) != 0 {
		panic("machine: cache parameters must be powers of two")
	}
	sets := size / (line * assoc)
	if sets < 1 {
		panic("machine: cache smaller than one set")
	}
	c := &Cache{
		assoc: assoc,
		tags:  make([]uint64, sets*assoc),
		valid: make([]bool, sets*assoc),
	}
	for line > 1 {
		line >>= 1
		c.lineShift++
	}
	c.setMask = uint64(sets - 1)
	return c
}

// Access touches the byte at addr and reports whether it hit. Way 0 of each
// set holds the most recently used line.
func (c *Cache) Access(addr uint64) bool {
	blk := addr >> c.lineShift
	set := int(blk&c.setMask) * c.assoc
	ways := c.tags[set : set+c.assoc]
	val := c.valid[set : set+c.assoc]
	for w := 0; w < c.assoc; w++ {
		if val[w] && ways[w] == blk {
			// Move to front to record recency.
			copy(ways[1:w+1], ways[:w])
			copy(val[1:w+1], val[:w])
			ways[0], val[0] = blk, true
			c.Hits++
			return true
		}
	}
	// Miss: evict LRU (last way).
	copy(ways[1:], ways[:c.assoc-1])
	copy(val[1:], val[:c.assoc-1])
	ways[0], val[0] = blk, true
	c.Misses++
	return false
}

// AccessRange touches n consecutive bytes starting at addr (e.g. a multi-word
// object) and returns the number of line misses incurred.
func (c *Cache) AccessRange(addr uint64, n int) int {
	misses := 0
	line := uint64(1) << c.lineShift
	end := addr + uint64(n)
	for a := addr &^ (line - 1); a < end; a += line {
		if !c.Access(a) {
			misses++
		}
	}
	return misses
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
	}
	c.Hits, c.Misses = 0, 0
}

// ResetCounters clears the hit/miss counters but keeps cache contents, so a
// warm-up pass can be excluded from measurement.
func (c *Cache) ResetCounters() { c.Hits, c.Misses = 0, 0 }

// Accesses reports the total number of accesses observed.
func (c *Cache) Accesses() uint64 { return c.Hits + c.Misses }

// MissRatio reports misses/accesses, or 0 when nothing was accessed.
func (c *Cache) MissRatio() float64 {
	if t := c.Accesses(); t > 0 {
		return float64(c.Misses) / float64(t)
	}
	return 0
}
