package earth

import (
	"testing"

	"irred/internal/machine"
	"irred/internal/sim"
)

func newTestMachine(p int) *Machine {
	return New(p, machine.MANNA(), machine.MANNANet())
}

func TestSingleFiberRuns(t *testing.T) {
	m := newTestMachine(1)
	n := m.Node(0)
	ran := false
	f := n.NewFiber(100, func(ctx *Ctx) { ran = true })
	n.NewSlot(0, f)
	end := m.Run()
	if !ran {
		t.Fatal("fiber did not run")
	}
	// SU signal + fiber switch + fiber cost.
	want := m.Cost.SyncOp + m.Cost.FiberSwitch + 100
	if end != want {
		t.Fatalf("end = %d, want %d", end, want)
	}
	if n.FibersRun != 1 {
		t.Fatalf("FibersRun = %d", n.FibersRun)
	}
}

func TestSlotJoin(t *testing.T) {
	m := newTestMachine(1)
	n := m.Node(0)
	var at sim.Time
	join := n.NewFiber(10, func(ctx *Ctx) { at = ctx.Time() })
	slot := n.NewSlot(2, join)
	a := n.NewFiber(50, func(ctx *Ctx) { ctx.Sync(slot) })
	b := n.NewFiber(200, func(ctx *Ctx) { ctx.Sync(slot) })
	n.NewSlot(0, a)
	n.NewSlot(0, b)
	m.Run()
	if at == 0 {
		t.Fatal("join fiber did not run")
	}
	// Join must run after both producers: b alone occupies the EU for at
	// least 200 cycles, and fibers run sequentially on one EU.
	if at < 250 {
		t.Fatalf("join ran at %d, before both producers could finish", at)
	}
}

func TestEUSerializesFibers(t *testing.T) {
	m := newTestMachine(1)
	n := m.Node(0)
	var ends []sim.Time
	for i := 0; i < 3; i++ {
		f := n.NewFiber(100, func(ctx *Ctx) { ends = append(ends, ctx.Time()) })
		n.NewSlot(0, f)
	}
	m.Run()
	if len(ends) != 3 {
		t.Fatalf("ran %d fibers", len(ends))
	}
	step := m.Cost.FiberSwitch + 100
	for i := 1; i < 3; i++ {
		if ends[i]-ends[i-1] != step {
			t.Fatalf("fiber completions %v not serialized by %d", ends, step)
		}
	}
}

func TestRemoteSync(t *testing.T) {
	m := newTestMachine(2)
	src, dst := m.Node(0), m.Node(1)
	ran := false
	f := dst.NewFiber(0, func(ctx *Ctx) { ran = true })
	slot := dst.NewSlot(1, f)
	g := src.NewFiber(10, func(ctx *Ctx) { ctx.Sync(slot) })
	src.NewSlot(0, g)
	m.Run()
	if !ran {
		t.Fatal("remote sync did not release fiber")
	}
	if src.SyncsSent != 1 {
		t.Fatalf("SyncsSent = %d", src.SyncsSent)
	}
}

func TestSendDeliversPayloadWithNetworkCost(t *testing.T) {
	m := newTestMachine(2)
	src, dst := m.Node(0), m.Node(1)
	const bytes = 4096
	var deliveredAt, consumedAt sim.Time
	consumer := dst.NewFiber(5, func(ctx *Ctx) { consumedAt = ctx.Time() })
	slot := dst.NewSlot(1, consumer)
	sender := src.NewFiber(10, func(ctx *Ctx) {
		ctx.Send(dst, bytes, slot, func() { deliveredAt = ctx.Node().Machine().Eng.Now() })
	})
	src.NewSlot(0, sender)
	m.Run()
	if deliveredAt == 0 || consumedAt <= deliveredAt {
		t.Fatalf("deliveredAt=%d consumedAt=%d", deliveredAt, consumedAt)
	}
	// Delivery cannot be earlier than fiber end + xmit + latency + recv.
	fiberEnd := m.Cost.SyncOp + m.Cost.FiberSwitch + 10
	minDeliver := fiberEnd + m.Net.XmitCycles(bytes) + m.Net.Latency + m.Net.RecvOverhead
	if deliveredAt < minDeliver {
		t.Fatalf("deliveredAt=%d < minimum %d", deliveredAt, minDeliver)
	}
	if src.MsgsSent != 1 || src.BytesSent != bytes {
		t.Fatalf("msgs=%d bytes=%d", src.MsgsSent, src.BytesSent)
	}
}

func TestLocalSendSkipsNetwork(t *testing.T) {
	m := newTestMachine(1)
	n := m.Node(0)
	done := false
	f := n.NewFiber(0, func(ctx *Ctx) { done = true })
	slot := n.NewSlot(1, f)
	g := n.NewFiber(1, func(ctx *Ctx) { ctx.Send(n, 1<<20, slot, nil) })
	n.NewSlot(0, g)
	m.Run()
	if !done {
		t.Fatal("local send did not deliver")
	}
	if n.MsgsSent != 0 {
		t.Fatalf("local send counted as network message")
	}
}

func TestNICSerializesMessages(t *testing.T) {
	m := newTestMachine(3)
	src := m.Node(0)
	var arrivals []sim.Time
	mkConsumer := func(node *Node) *Slot {
		f := node.NewFiber(0, func(ctx *Ctx) { arrivals = append(arrivals, ctx.Time()) })
		return node.NewSlot(1, f)
	}
	s1 := mkConsumer(m.Node(1))
	s2 := mkConsumer(m.Node(2))
	sender := src.NewFiber(0, func(ctx *Ctx) {
		ctx.Send(m.Node(1), 10000, s1, nil)
		ctx.Send(m.Node(2), 10000, s2, nil)
	})
	src.NewSlot(0, sender)
	m.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	// Second message waits for the NIC: arrivals separated by >= xmit time.
	gap := arrivals[1] - arrivals[0]
	if gap < m.Net.XmitCycles(10000) {
		t.Fatalf("gap = %d, want >= %d (NIC serialization)", gap, m.Net.XmitCycles(10000))
	}
}

func TestSpawnFromFiber(t *testing.T) {
	m := newTestMachine(1)
	n := m.Node(0)
	var order []string
	child := n.NewFiber(10, func(ctx *Ctx) { order = append(order, "child") })
	parent := n.NewFiber(10, func(ctx *Ctx) {
		order = append(order, "parent")
		ctx.Spawn(child)
	})
	n.NewSlot(0, parent)
	m.Run()
	if len(order) != 2 || order[0] != "parent" || order[1] != "child" {
		t.Fatalf("order = %v", order)
	}
}

func TestSUOverlapsWithEU(t *testing.T) {
	// While the EU is busy with a long fiber, the SU must still process an
	// incoming signal so the next fiber is ready the moment the EU frees up.
	m := newTestMachine(2)
	a, b := m.Node(0), m.Node(1)
	var nextAt sim.Time
	next := b.NewFiber(0, func(ctx *Ctx) { nextAt = ctx.Time() })
	slot := b.NewSlot(1, next)
	long := b.NewFiber(100000, nil)
	b.NewSlot(0, long)
	sender := a.NewFiber(0, func(ctx *Ctx) { ctx.Sync(slot) })
	a.NewSlot(0, sender)
	m.Run()
	// next should start as soon as the long fiber ends, not serialize the
	// sync processing after it: completion ≈ long end + switch.
	longEnd := m.Cost.SyncOp + m.Cost.FiberSwitch + 100000
	if nextAt > longEnd+m.Cost.FiberSwitch+m.Cost.SyncOp {
		t.Fatalf("next fiber at %d, SU work did not overlap EU (long end %d)", nextAt, longEnd)
	}
}

func TestDoubleDispatchPanics(t *testing.T) {
	m := newTestMachine(1)
	n := m.Node(0)
	f := n.NewFiber(1, nil)
	n.NewSlot(0, f)
	n.NewSlot(0, f)
	defer func() {
		if recover() == nil {
			t.Fatal("double dispatch did not panic")
		}
	}()
	m.Run()
}

func TestExtraSignalPanics(t *testing.T) {
	m := newTestMachine(1)
	n := m.Node(0)
	f := n.NewFiber(1, nil)
	s := n.NewSlot(1, f)
	g := n.NewFiber(1, func(ctx *Ctx) { ctx.Sync(s); ctx.Sync(s) })
	n.NewSlot(0, g)
	defer func() {
		if recover() == nil {
			t.Fatal("extra signal did not panic")
		}
	}()
	m.Run()
}

func TestDeterminism(t *testing.T) {
	run := func() sim.Time {
		m := newTestMachine(4)
		// A little all-to-all program.
		slots := make([]*Slot, 4)
		for i := 0; i < 4; i++ {
			n := m.Node(i)
			f := n.NewFiber(10, nil)
			slots[i] = n.NewSlot(3, f)
		}
		for i := 0; i < 4; i++ {
			i := i
			n := m.Node(i)
			f := n.NewFiber(sim.Time(100*(i+1)), func(ctx *Ctx) {
				for j := 0; j < 4; j++ {
					if j != i {
						ctx.Send(m.Node(j), 1000, slots[j], nil)
					}
				}
			})
			n.NewSlot(0, f)
		}
		return m.Run()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic end times: %d vs %d", a, b)
	}
}
