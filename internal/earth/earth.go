// Package earth models the EARTH (Efficient Architecture for Running
// Threads) abstract machine of Hum, Theobald and Gao on top of the
// deterministic event engine in package sim.
//
// An EARTH multiprocessor consists of nodes, each with an Execution Unit
// (EU) that runs non-preemptive fibers to completion and a Synchronization
// Unit (SU) that processes EARTH operations — synchronization signals, data
// transfers, and fiber spawns — and determines when fibers become ready.
// Fibers declare their data and control dependences through sync slots:
// counted dataflow-style join points. A fiber is eligible to run as soon as
// its slot's count reaches zero; there are no global barriers.
//
// The reproduction uses the paper's manna-dual configuration: the EU and SU
// are separate engines per node, so synchronization and communication
// processing overlap with fiber execution — the property the paper's
// execution strategy relies on to hide communication latency.
package earth

import (
	"fmt"

	"irred/internal/machine"
	"irred/internal/sim"
)

// Machine is a simulated EARTH multiprocessor.
type Machine struct {
	Eng  *sim.Engine
	Cost machine.CostModel
	Net  machine.Network

	nodes []*Node
	trace *Trace
}

// New builds a machine with p nodes using the given cost and network models.
func New(p int, cost machine.CostModel, net machine.Network) *Machine {
	if p <= 0 {
		panic("earth: machine needs at least one node")
	}
	m := &Machine{Eng: sim.NewEngine(), Cost: cost, Net: net}
	m.nodes = make([]*Node, p)
	for i := range m.nodes {
		m.nodes[i] = &Node{
			ID:  i,
			m:   m,
			EU:  sim.NewServer(m.Eng),
			SU:  sim.NewServer(m.Eng),
			NIC: sim.NewServer(m.Eng),
		}
	}
	return m
}

// P reports the number of nodes.
func (m *Machine) P() int { return len(m.nodes) }

// Node returns node i.
func (m *Machine) Node(i int) *Node { return m.nodes[i] }

// Run executes the event calendar to exhaustion and returns the final
// virtual time in cycles.
func (m *Machine) Run() sim.Time { return m.Eng.Run() }

// Seconds converts cycles to seconds under this machine's clock.
func (m *Machine) Seconds(t sim.Time) float64 { return m.Cost.Seconds(t) }

// Node is one EARTH node: an EU running fibers, an SU handling EARTH
// operations, and a network interface serializing outgoing messages.
type Node struct {
	ID  int
	m   *Machine
	EU  *sim.Server
	SU  *sim.Server
	NIC *sim.Server

	// Statistics.
	FibersRun uint64
	MsgsSent  uint64
	BytesSent uint64
	SyncsSent uint64
}

// Machine returns the machine this node belongs to.
func (n *Node) Machine() *Machine { return n.m }

// Fiber is a non-preemptive unit of work. Cost is the EU occupancy in
// cycles; Body runs at fiber completion and issues EARTH operations (and may
// create further fibers and slots). A fiber runs when the slot naming it
// reaches zero, or when spawned directly.
type Fiber struct {
	node *Node
	cost sim.Time
	body func(ctx *Ctx)
	ran  bool

	// Label names the fiber in traces; optional.
	Label string
}

// NewFiber declares a fiber on node n occupying the EU for cost cycles.
// body may be nil.
func (n *Node) NewFiber(cost sim.Time, body func(ctx *Ctx)) *Fiber {
	if cost < 0 {
		panic("earth: negative fiber cost")
	}
	return &Fiber{node: n, cost: cost, body: body}
}

// Slot is a counted dataflow synchronization point: when its count reaches
// zero the attached fiber is enqueued on its node's EU. Slots are one-shot;
// the runtime creates a fresh slot per join. Decrements are processed by the
// owning node's SU.
type Slot struct {
	node  *Node
	count int
	fiber *Fiber
	fired bool
}

// NewSlot creates a slot on node n that releases fiber after count signals.
// A count of zero enqueues the fiber immediately (through the SU, like any
// other synchronization event).
func (n *Node) NewSlot(count int, fiber *Fiber) *Slot {
	if count < 0 {
		panic("earth: negative slot count")
	}
	if fiber.node != n {
		panic("earth: slot and fiber must live on the same node")
	}
	s := &Slot{node: n, count: count, fiber: fiber}
	if count == 0 {
		n.suSignal(s)
	}
	return s
}

// suSignal models the SU processing one synchronization event for slot s.
func (n *Node) suSignal(s *Slot) {
	n.SU.Submit(n.m.Cost.SyncOp, func() {
		if s.fired {
			panic("earth: signal to an already-fired slot")
		}
		if s.count > 0 {
			s.count--
		}
		if s.count == 0 {
			s.fired = true
			n.dispatch(s.fiber)
		}
	})
}

// dispatch enqueues a ready fiber on the EU.
func (n *Node) dispatch(f *Fiber) {
	if f.ran {
		panic("earth: fiber dispatched twice")
	}
	f.ran = true
	n.FibersRun++
	occupancy := n.m.Cost.FiberSwitch + f.cost
	n.EU.Submit(occupancy, func() {
		n.m.recordFiber(n.ID, n.m.Eng.Now()-occupancy, n.m.Eng.Now(), f.Label)
		if f.body != nil {
			f.body(&Ctx{node: n})
		}
	})
}

// Ctx is passed to a fiber body; it issues EARTH operations on behalf of the
// completing fiber.
type Ctx struct {
	node *Node
}

// Node reports the node the fiber ran on.
func (c *Ctx) Node() *Node { return c.node }

// Time reports the current virtual time.
func (c *Ctx) Time() sim.Time { return c.node.m.Eng.Now() }

// Spawn makes fiber ready immediately (a spawn operation through the SU of
// the fiber's own node; remote spawns cost a sync message first).
func (c *Ctx) Spawn(f *Fiber) {
	s := &Slot{node: f.node, count: 1, fiber: f}
	c.Sync(s)
}

// Sync sends a synchronization signal to slot s, decrementing its count.
// Local signals go straight to this node's SU; remote signals cross the
// network as a small control message.
func (c *Ctx) Sync(s *Slot) {
	if s.node == c.node {
		c.node.suSignal(s)
		return
	}
	c.node.SyncsSent++
	c.transfer(s.node, syncMsgBytes, func() { s.node.suSignal(s) })
}

// syncMsgBytes is the wire size of a control-only EARTH operation.
const syncMsgBytes = 16

// Send models a DATA_SYNC / BLKMOV_SYNC: a payload of bytes moves to dst's
// memory; when it lands, onDeliver (may be nil) runs on the destination and
// slot (may be nil) receives one signal. Sending to the local node skips the
// network but still exercises the SU.
func (c *Ctx) Send(dst *Node, bytes int, slot *Slot, onDeliver func()) {
	if slot != nil && slot.node != dst {
		panic("earth: data-sync slot must live on the destination node")
	}
	deliver := func() {
		if onDeliver != nil {
			onDeliver()
		}
		if slot != nil {
			dst.suSignal(slot)
		}
	}
	if dst == c.node {
		c.node.SU.Submit(c.node.m.Cost.SyncOp, deliver)
		return
	}
	c.node.MsgsSent++
	c.node.BytesSent += uint64(bytes)
	c.transfer(dst, bytes, deliver)
}

// transfer moves bytes to dst: NIC occupancy, switch latency, then SU
// processing at the destination.
func (c *Ctx) transfer(dst *Node, bytes int, arrived func()) {
	m := c.node.m
	m.recordMsg(c.node.ID, dst.ID, m.Eng.Now(), bytes)
	c.node.NIC.Submit(m.Net.XmitCycles(bytes), func() {
		m.Eng.Schedule(m.Net.Latency, func() {
			dst.SU.Submit(m.Net.RecvOverhead, arrived)
		})
	})
}

// String identifies the node in traces.
func (n *Node) String() string { return fmt.Sprintf("node%d", n.ID) }

// RepeatingSlot is a sync slot with a reset count, the EARTH ISA's device
// for loop synchronization: each time the count reaches zero the slot
// dispatches a fresh fiber from spawn and re-arms itself with the original
// count. Unlike one-shot slots it accepts signals indefinitely.
type RepeatingSlot struct {
	node  *Node
	reset int
	count int
	spawn func() *Fiber
	Fires uint64
}

// NewRepeatingSlot creates a slot that dispatches spawn() every `count`
// signals. count must be positive.
func (n *Node) NewRepeatingSlot(count int, spawn func() *Fiber) *RepeatingSlot {
	if count <= 0 {
		panic("earth: repeating slot needs count >= 1")
	}
	if spawn == nil {
		panic("earth: repeating slot needs a fiber factory")
	}
	return &RepeatingSlot{node: n, reset: count, count: count, spawn: spawn}
}

// Signal sends one synchronization signal to the slot from a fiber on any
// node (remote signals cross the network like Sync).
func (c *Ctx) Signal(s *RepeatingSlot) {
	deliver := func() {
		s.count--
		if s.count == 0 {
			s.count = s.reset
			s.Fires++
			f := s.spawn()
			if f.node != s.node {
				panic("earth: repeating slot fiber must live on the slot's node")
			}
			s.node.dispatch(f)
		}
	}
	if s.node == c.node {
		c.node.SU.Submit(c.node.m.Cost.SyncOp, deliver)
		return
	}
	c.node.SyncsSent++
	c.transfer(s.node, syncMsgBytes, func() {
		s.node.SU.Submit(s.node.m.Cost.SyncOp, deliver)
	})
}
