package earth

import "irred/internal/sim"

// EARTH programs are a two-level hierarchy: threaded procedures and, within
// them, fibers. A procedure is invoked — possibly on a remote node — with a
// fresh frame; its fibers share the frame and synchronize through slots;
// when the procedure completes it signals its caller. TOKEN/INVOKE and
// END_THREADED are the operations behind function-call parallelism on
// EARTH (the classic demonstration being the parallel Fibonacci tree).
//
// Frames here are deliberately thin: Go closures carry the actual state,
// so a Frame only tracks the executing node and the caller's completion
// slot. The machine charges the invoke token (a control message for remote
// invocations plus SU processing) and the completion signal.

// Frame is one activation of a threaded procedure.
type Frame struct {
	node *Node
	done *Slot // caller's completion slot; may live on any node
}

// Node reports the node the procedure instance runs on.
func (f *Frame) Node() *Node { return f.node }

// Return ends the procedure: it signals the caller's completion slot
// (crossing the network when the caller is remote). Call it from the
// procedure's final fiber.
func (f *Frame) Return(ctx *Ctx) {
	if f.done == nil {
		return
	}
	ctx.Sync(f.done)
}

// Invoke starts a threaded procedure on dst: a token travels to dst (free
// for local invocations beyond SU processing), where the procedure's first
// fiber — with EU cost `cost` — runs body with a fresh frame. done (may be
// nil) is signalled when the procedure Returns.
func (c *Ctx) Invoke(dst *Node, cost sim.Time, body func(ctx *Ctx, f *Frame), done *Slot) {
	frame := &Frame{node: dst, done: done}
	first := dst.NewFiber(cost, func(ctx *Ctx) {
		if body != nil {
			body(ctx, frame)
		}
	})
	first.Label = "proc"
	slot := &Slot{node: dst, count: 1, fiber: first}
	if dst == c.node {
		c.node.suSignal(slot)
		return
	}
	c.node.SyncsSent++
	c.transfer(dst, syncMsgBytes, func() { dst.suSignal(slot) })
}

// InvokeRoot starts a procedure from outside any fiber (program setup):
// the token is processed by dst's SU at time zero.
func (m *Machine) InvokeRoot(dst *Node, cost sim.Time, body func(ctx *Ctx, f *Frame), done *Slot) {
	frame := &Frame{node: dst, done: done}
	first := dst.NewFiber(cost, func(ctx *Ctx) {
		if body != nil {
			body(ctx, frame)
		}
	})
	first.Label = "proc"
	dst.NewSlot(0, first)
}
