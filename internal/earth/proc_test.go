package earth

import (
	"testing"

	"irred/internal/sim"
)

// fibOnEarth computes Fibonacci with a tree of threaded procedures spread
// round-robin over the machine — the classic EARTH demonstration program.
// Each instance either returns a leaf value or invokes two children and
// joins their results with a two-count slot.
func fibOnEarth(t *testing.T, p int, n int) (int64, sim.Time) {
	t.Helper()
	m := newTestMachine(p)
	var result int64
	next := 0
	pick := func() *Node {
		next = (next + 1) % p
		return m.Node(next)
	}

	var fib func(ctx *Ctx, f *Frame, n int, out *int64)
	fib = func(ctx *Ctx, f *Frame, n int, out *int64) {
		if n < 2 {
			*out = int64(n)
			f.Return(ctx)
			return
		}
		var a, b int64
		node := f.Node()
		joinFiber := node.NewFiber(5, func(ctx *Ctx) {
			*out = a + b
			f.Return(ctx)
		})
		join := node.NewSlot(2, joinFiber)
		la, lb := pick(), pick()
		na, nb := n-1, n-2
		ctx.Invoke(la, 10, func(ctx *Ctx, cf *Frame) { fib(ctx, cf, na, &a) }, join)
		ctx.Invoke(lb, 10, func(ctx *Ctx, cf *Frame) { fib(ctx, cf, nb, &b) }, join)
	}

	root := m.Node(0)
	doneFiber := root.NewFiber(0, nil)
	done := root.NewSlot(1, doneFiber)
	m.InvokeRoot(root, 10, func(ctx *Ctx, f *Frame) { fib(ctx, f, n, &result) }, done)
	end := m.Run()
	return result, end
}

func TestThreadedFib(t *testing.T) {
	want := []int64{0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55}
	for _, p := range []int{1, 2, 4} {
		for n := 0; n <= 10; n++ {
			got, _ := fibOnEarth(t, p, n)
			if got != want[n] {
				t.Fatalf("P=%d: fib(%d) = %d, want %d", p, n, got, want[n])
			}
		}
	}
}

func TestThreadedFibParallelFaster(t *testing.T) {
	_, t1 := fibOnEarth(t, 1, 12)
	_, t8 := fibOnEarth(t, 8, 12)
	if t8 >= t1 {
		t.Fatalf("8-node fib (%d cycles) not faster than 1-node (%d cycles)", t8, t1)
	}
}

func TestThreadedFibDeterministic(t *testing.T) {
	_, a := fibOnEarth(t, 4, 10)
	_, b := fibOnEarth(t, 4, 10)
	if a != b {
		t.Fatalf("fib end times differ: %d vs %d", a, b)
	}
}

func TestInvokeLocalNoNetwork(t *testing.T) {
	m := newTestMachine(1)
	n := m.Node(0)
	ran := false
	m.InvokeRoot(n, 1, func(ctx *Ctx, f *Frame) {
		ctx.Invoke(n, 1, func(ctx *Ctx, cf *Frame) {
			ran = true
			cf.Return(ctx)
		}, nil)
		f.Return(ctx)
	}, nil)
	m.Run()
	if !ran {
		t.Fatal("local invoke did not run")
	}
	if n.MsgsSent != 0 {
		t.Fatal("local invoke used the network")
	}
}

func TestReturnWithoutDoneIsNoop(t *testing.T) {
	m := newTestMachine(1)
	m.InvokeRoot(m.Node(0), 1, func(ctx *Ctx, f *Frame) { f.Return(ctx) }, nil)
	m.Run() // must not panic
}
