package earth

import (
	"fmt"
	"sort"
	"strings"

	"irred/internal/sim"
)

// Trace records machine-level events (fiber execution intervals and
// message sends) for inspection and visualization. Attach one with
// Machine.SetTrace before building the program; rendering produces a
// text Gantt chart of EU occupancy — the tool one reaches for when asking
// "did the transfer actually overlap the computation?".
type Trace struct {
	Fibers []FiberSpan
	Msgs   []MsgEvent
}

// FiberSpan is one fiber's EU occupancy.
type FiberSpan struct {
	Node       int
	Start, End sim.Time
	Label      string
}

// MsgEvent is one network message.
type MsgEvent struct {
	From, To int
	At       sim.Time
	Bytes    int
}

// SetTrace enables event recording on the machine.
func (m *Machine) SetTrace(t *Trace) { m.trace = t }

// Trace reports the attached trace, or nil.
func (m *Machine) TraceData() *Trace { return m.trace }

// recordFiber appends a fiber span if tracing is on.
func (m *Machine) recordFiber(node int, start, end sim.Time, label string) {
	if m.trace != nil {
		m.trace.Fibers = append(m.trace.Fibers, FiberSpan{Node: node, Start: start, End: end, Label: label})
	}
}

// recordMsg appends a message event if tracing is on.
func (m *Machine) recordMsg(from, to int, at sim.Time, bytes int) {
	if m.trace != nil {
		m.trace.Msgs = append(m.trace.Msgs, MsgEvent{From: from, To: to, At: at, Bytes: bytes})
	}
}

// Busy reports total EU-busy cycles per node over the trace.
func (t *Trace) Busy(p int) sim.Time {
	var total sim.Time
	for _, f := range t.Fibers {
		if f.Node == p {
			total += f.End - f.Start
		}
	}
	return total
}

// Gantt renders EU occupancy as one text row per node over [0, end),
// using `width` character cells: '#' busy, '.' idle. Useful in tests and
// for eyeballing overlap.
func (t *Trace) Gantt(nodes int, end sim.Time, width int) string {
	if width <= 0 || end <= 0 {
		return ""
	}
	rows := make([][]byte, nodes)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	for _, f := range t.Fibers {
		if f.Node < 0 || f.Node >= nodes {
			continue
		}
		lo := int(int64(f.Start) * int64(width) / int64(end))
		hi := int(int64(f.End)*int64(width)/int64(end)) + 1
		if hi > width {
			hi = width
		}
		for c := lo; c < hi; c++ {
			rows[f.Node][c] = '#'
		}
	}
	var b strings.Builder
	for i, r := range rows {
		fmt.Fprintf(&b, "node%-3d |%s|\n", i, r)
	}
	return b.String()
}

// SortedFibers returns fiber spans ordered by start time (stable across
// nodes), for deterministic inspection.
func (t *Trace) SortedFibers() []FiberSpan {
	out := append([]FiberSpan(nil), t.Fibers...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Node < out[j].Node
	})
	return out
}
