package earth

import (
	"strings"
	"testing"

	"irred/internal/sim"
)

func TestGetSyncRoundTrip(t *testing.T) {
	m := newTestMachine(2)
	a, b := m.Node(0), m.Node(1)
	var doneAt sim.Time
	consumer := a.NewFiber(0, func(ctx *Ctx) { doneAt = ctx.Time() })
	slot := a.NewSlot(1, consumer)
	const bytes = 2048
	req := a.NewFiber(10, func(ctx *Ctx) { ctx.GetSync(b, bytes, slot, nil) })
	a.NewSlot(0, req)
	m.Run()
	if doneAt == 0 {
		t.Fatal("GET_SYNC never completed")
	}
	// Round trip: request (small) out + response (payload) back, two
	// latencies, two receive overheads at least.
	minRT := m.Net.XmitCycles(16) + m.Net.XmitCycles(bytes) + 2*m.Net.Latency + 2*m.Net.RecvOverhead
	if doneAt < minRT {
		t.Fatalf("GET_SYNC done at %d, below minimum round trip %d", doneAt, minRT)
	}
	// The payload leg is charged to the source node.
	if b.MsgsSent != 1 || b.BytesSent != bytes {
		t.Fatalf("source sent %d msgs / %d bytes", b.MsgsSent, b.BytesSent)
	}
}

func TestGetSyncDoesNotUseRemoteEU(t *testing.T) {
	// The defining EARTH property: a remote read is served by the SU; the
	// remote EU never runs a fiber for it.
	m := newTestMachine(2)
	a, b := m.Node(0), m.Node(1)
	done := a.NewFiber(0, nil)
	slot := a.NewSlot(1, done)
	req := a.NewFiber(1, func(ctx *Ctx) { ctx.GetSync(b, 4096, slot, nil) })
	a.NewSlot(0, req)
	m.Run()
	if b.FibersRun != 0 {
		t.Fatalf("remote EU ran %d fibers for a GET_SYNC", b.FibersRun)
	}
	if b.EU.Busy != 0 {
		t.Fatalf("remote EU busy %d cycles", b.EU.Busy)
	}
}

func TestLocalGetSync(t *testing.T) {
	m := newTestMachine(1)
	n := m.Node(0)
	ran := false
	f := n.NewFiber(0, func(ctx *Ctx) { ran = true })
	slot := n.NewSlot(1, f)
	g := n.NewFiber(1, func(ctx *Ctx) { ctx.GetSync(n, 100, slot, nil) })
	n.NewSlot(0, g)
	m.Run()
	if !ran {
		t.Fatal("local GET_SYNC did not complete")
	}
	if n.MsgsSent != 0 {
		t.Fatal("local GET_SYNC used the network")
	}
}

func TestIncrSyncAppliesRemotely(t *testing.T) {
	m := newTestMachine(2)
	a, b := m.Node(0), m.Node(1)
	counter := 0
	consumer := b.NewFiber(0, nil)
	slot := b.NewSlot(2, consumer)
	send := a.NewFiber(1, func(ctx *Ctx) {
		ctx.IncrSync(b, slot, func() { counter++ })
		ctx.IncrSync(b, slot, func() { counter += 10 })
	})
	a.NewSlot(0, send)
	m.Run()
	if counter != 11 {
		t.Fatalf("counter = %d, want 11", counter)
	}
}

func TestGetSyncSlotOnWrongNodePanics(t *testing.T) {
	m := newTestMachine(2)
	a, b := m.Node(0), m.Node(1)
	f := b.NewFiber(0, nil)
	slot := b.NewSlot(1, f)
	g := a.NewFiber(1, func(ctx *Ctx) { ctx.GetSync(b, 8, slot, nil) })
	a.NewSlot(0, g)
	defer func() {
		if recover() == nil {
			t.Fatal("misplaced GET_SYNC slot accepted")
		}
	}()
	m.Run()
}

func TestTraceRecordsFibersAndMessages(t *testing.T) {
	m := newTestMachine(2)
	tr := &Trace{}
	m.SetTrace(tr)
	a, b := m.Node(0), m.Node(1)
	cons := b.NewFiber(50, nil)
	cons.Label = "consumer"
	slot := b.NewSlot(1, cons)
	prod := a.NewFiber(100, func(ctx *Ctx) { ctx.Send(b, 1000, slot, nil) })
	prod.Label = "producer"
	a.NewSlot(0, prod)
	end := m.Run()

	if len(tr.Fibers) != 2 {
		t.Fatalf("traced %d fibers, want 2", len(tr.Fibers))
	}
	spans := tr.SortedFibers()
	if spans[0].Label != "producer" || spans[1].Label != "consumer" {
		t.Fatalf("span order: %+v", spans)
	}
	if spans[0].End-spans[0].Start != m.Cost.FiberSwitch+100 {
		t.Fatalf("producer span length %d", spans[0].End-spans[0].Start)
	}
	if len(tr.Msgs) != 1 || tr.Msgs[0].Bytes != 1000 || tr.Msgs[0].From != 0 || tr.Msgs[0].To != 1 {
		t.Fatalf("msgs: %+v", tr.Msgs)
	}
	if tr.Busy(0) != m.Cost.FiberSwitch+100 {
		t.Fatalf("Busy(0) = %d", tr.Busy(0))
	}

	g := tr.Gantt(2, end, 40)
	if !strings.Contains(g, "node0") || !strings.Contains(g, "#") {
		t.Fatalf("gantt malformed:\n%s", g)
	}
	// Node 0 busy early, node 1 busy late.
	lines := strings.Split(strings.TrimSpace(g), "\n")
	if !strings.Contains(lines[0][:15], "#") {
		t.Fatalf("node0 row idle at start:\n%s", g)
	}
}

func TestGanttEmpty(t *testing.T) {
	tr := &Trace{}
	if g := tr.Gantt(1, 0, 10); g != "" {
		t.Fatalf("empty gantt = %q", g)
	}
}

func TestRepeatingSlotReArms(t *testing.T) {
	m := newTestMachine(2)
	a, b := m.Node(0), m.Node(1)
	var runs int
	slot := b.NewRepeatingSlot(2, func() *Fiber {
		return b.NewFiber(5, func(ctx *Ctx) { runs++ })
	})
	// Six signals from a remote producer: the slot must fire three times.
	prod := a.NewFiber(1, func(ctx *Ctx) {
		for i := 0; i < 6; i++ {
			ctx.Signal(slot)
		}
	})
	a.NewSlot(0, prod)
	m.Run()
	if runs != 3 || slot.Fires != 3 {
		t.Fatalf("runs = %d, fires = %d; want 3/3", runs, slot.Fires)
	}
}

func TestRepeatingSlotLocalPipeline(t *testing.T) {
	// A self-sustaining loop: each firing signals the slot again until a
	// budget is spent — the EARTH idiom for a sequential loop of fibers.
	m := newTestMachine(1)
	n := m.Node(0)
	var iters int
	var slot *RepeatingSlot
	slot = n.NewRepeatingSlot(1, func() *Fiber {
		return n.NewFiber(10, func(ctx *Ctx) {
			iters++
			if iters < 50 {
				ctx.Signal(slot)
			}
		})
	})
	kick := n.NewFiber(0, func(ctx *Ctx) { ctx.Signal(slot) })
	n.NewSlot(0, kick)
	m.Run()
	if iters != 50 {
		t.Fatalf("loop ran %d iterations, want 50", iters)
	}
}

func TestRepeatingSlotBadArgsPanic(t *testing.T) {
	m := newTestMachine(1)
	n := m.Node(0)
	for _, fn := range []func(){
		func() { n.NewRepeatingSlot(0, func() *Fiber { return n.NewFiber(0, nil) }) },
		func() { n.NewRepeatingSlot(1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic for bad repeating slot")
				}
			}()
			fn()
		}()
	}
}
