package earth

// Additional EARTH operations beyond Sync/Send: split-phase remote reads
// and fetch-and-add style synchronization, matching the operation set of
// the EARTH instruction manual (GET_SYNC, INCR_SYNC). Both are split-phase:
// the issuing fiber terminates and a successor fiber is released by a sync
// slot when the operation completes — non-preemptive fibers never wait.

// GetSync models GET_SYNC: read `bytes` from src's memory into the local
// node. The request crosses the network, src's SU serves it (a memory read,
// no EU involvement — the defining EARTH property), and the response
// carries the payload back; onDone runs at the issuing node and slot (on
// the issuing node, may be nil) receives a signal.
func (c *Ctx) GetSync(src *Node, bytes int, slot *Slot, onDone func()) {
	if slot != nil && slot.node != c.node {
		panic("earth: GET_SYNC completion slot must live on the issuing node")
	}
	home := c.node
	finish := func() {
		if onDone != nil {
			onDone()
		}
		if slot != nil {
			home.suSignal(slot)
		}
	}
	if src == c.node {
		c.node.SU.Submit(c.node.m.Cost.SyncOp, finish)
		return
	}
	// Request: a small control message to src.
	c.node.SyncsSent++
	c.transfer(src, syncMsgBytes, func() {
		// Response: src's SU sends the payload back.
		src.MsgsSent++
		src.BytesSent += uint64(bytes)
		srcCtx := &Ctx{node: src}
		srcCtx.transfer(home, bytes, finish)
	})
}

// IncrSync models INCR_SYNC: an atomic remote increment served by the
// destination's SU (again without involving its EU), signalling slot (on
// the destination, may be nil) when applied. apply performs the actual
// mutation at the destination.
func (c *Ctx) IncrSync(dst *Node, slot *Slot, apply func()) {
	if slot != nil && slot.node != dst {
		panic("earth: INCR_SYNC slot must live on the destination node")
	}
	done := func() {
		if apply != nil {
			apply()
		}
		if slot != nil {
			dst.suSignal(slot)
		}
	}
	if dst == c.node {
		c.node.SU.Submit(c.node.m.Cost.SyncOp, done)
		return
	}
	c.node.SyncsSent++
	c.transfer(dst, syncMsgBytes, done)
}
