package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	start := tr.Begin()
	if start != 0 {
		t.Fatalf("nil Begin = %d", start)
	}
	tr.End(SpanCompute, 0, 0, 0, 0, start) // must not panic
	tr.Event("x", 0, 0, 0, 0)
	tr.Reset()
	if spans, total := tr.Snapshot(); spans != nil || total != 0 {
		t.Fatalf("nil Snapshot = %v, %d", spans, total)
	}
}

func TestRecordAndSnapshot(t *testing.T) {
	tr := New(16)
	s0 := tr.Begin()
	time.Sleep(time.Millisecond)
	tr.End(SpanCompute, 1, 2, 3, 4, s0)
	tr.Event(SpanWait, 0, 1, 2, 3)

	spans, total := tr.Snapshot()
	if total != 2 || len(spans) != 2 {
		t.Fatalf("got %d spans, total %d", len(spans), total)
	}
	c := spans[0]
	if c.Name != SpanCompute || c.Proc != 1 || c.Phase != 2 || c.Step != 3 || c.Portion != 4 {
		t.Fatalf("bad span tags: %+v", c)
	}
	if c.DurNS < int64(time.Millisecond)/2 {
		t.Fatalf("compute span too short: %d ns", c.DurNS)
	}
	if spans[1].DurNS != 0 {
		t.Fatalf("event has duration %d", spans[1].DurNS)
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	tr := New(8)
	for i := 0; i < 20; i++ {
		tr.End(SpanCopy, i, 0, 0, 0, tr.Begin())
	}
	spans, total := tr.Snapshot()
	if total != 20 {
		t.Fatalf("total = %d", total)
	}
	if len(spans) != 8 {
		t.Fatalf("retained %d spans", len(spans))
	}
	// Oldest-first: procs 12..19.
	for i, s := range spans {
		if int(s.Proc) != 12+i {
			t.Fatalf("span %d has proc %d, want %d", i, s.Proc, 12+i)
		}
	}
}

func TestResetClears(t *testing.T) {
	tr := New(4)
	tr.Event("x", 0, 0, 0, 0)
	tr.Reset()
	if spans, total := tr.Snapshot(); len(spans) != 0 || total != 0 {
		t.Fatalf("after reset: %d spans, total %d", len(spans), total)
	}
}

func TestAggregate(t *testing.T) {
	spans := []Span{
		{Name: SpanCompute, Phase: 0, DurNS: 100},
		{Name: SpanCompute, Phase: 0, DurNS: 300},
		{Name: SpanCompute, Phase: 1, DurNS: 50},
		{Name: SpanWait, Phase: 1, DurNS: 10},
	}
	byName := Aggregate(spans, false)
	if len(byName) != 2 {
		t.Fatalf("by-name rows: %d", len(byName))
	}
	c := byName[0]
	if c.Name != SpanCompute || c.Count != 3 || c.TotalNS != 450 || c.MinNS != 50 || c.MaxNS != 300 {
		t.Fatalf("compute row: %+v", c)
	}
	if c.AvgNS != 150 {
		t.Fatalf("avg = %v", c.AvgNS)
	}

	byPhase := Aggregate(spans, true)
	if len(byPhase) != 3 {
		t.Fatalf("by-phase rows: %d", len(byPhase))
	}
	if byPhase[0].Phase != 0 || byPhase[0].Count != 2 || byPhase[1].Phase != 1 || byPhase[1].Count != 1 {
		t.Fatalf("by-phase rows: %+v", byPhase)
	}
}

func TestTableRenders(t *testing.T) {
	rows := Aggregate([]Span{
		{Name: SpanCompute, Phase: 2, DurNS: 1e6},
		{Name: SpanWait, Phase: -1, DurNS: 5e5},
	}, true)
	tab := Table(rows)
	for _, want := range []string{"span", "compute", "wait", "count"} {
		if !strings.Contains(tab, want) {
			t.Fatalf("table missing %q:\n%s", want, tab)
		}
	}
}

// TestConcurrentRecord exercises the ring under parallel writers and a
// concurrent reader, for the race detector.
func TestConcurrentRecord(t *testing.T) {
	tr := New(64)
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.End(SpanCompute, p, i%8, i, -1, tr.Begin())
			}
		}(p)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			tr.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if _, total := tr.Snapshot(); total != 2000 {
		t.Fatalf("total = %d", total)
	}
}
