package obs

import (
	"math/rand"
	"sort"
	"sync"
)

// Reservoir is a bounded-memory quantile estimator: it keeps every sample
// up to its capacity, then switches to uniform reservoir sampling, so
// short runs report exact order statistics and long soaks report an
// unbiased estimate without unbounded memory. It is the shared estimator
// behind irredload's latency percentiles and irredsweep's per-cell
// repeat statistics.
//
// The replacement RNG is seeded deterministically at construction, so a
// run over a fixed sample stream is reproducible.
type Reservoir struct {
	mu      sync.Mutex
	samples []float64
	seen    int64
	max     int
	rng     *rand.Rand
}

// DefaultReservoirCap bounds a reservoir built with a non-positive
// capacity: 64k float64 samples, ~512 KiB.
const DefaultReservoirCap = 1 << 16

// NewReservoir builds a reservoir retaining at most max samples
// (DefaultReservoirCap when max <= 0).
func NewReservoir(max int) *Reservoir {
	if max <= 0 {
		max = DefaultReservoirCap
	}
	return &Reservoir{max: max, rng: rand.New(rand.NewSource(1))}
}

// Add records one sample.
func (r *Reservoir) Add(v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seen++
	if len(r.samples) < r.max {
		r.samples = append(r.samples, v)
		return
	}
	// Uniform replacement keeps every seen sample equally likely to be
	// retained, so percentiles stay unbiased on long streams.
	if i := r.rng.Int63n(r.seen); int(i) < r.max {
		r.samples[i] = v
	}
}

// Count reports the total samples ever offered (retained or not).
func (r *Reservoir) Count() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen
}

// Quantiles reads the requested quantiles (0..1) from a sorted copy of
// the retained samples; q=0 is the minimum, q=1 the maximum. An empty
// reservoir reports zeros.
func (r *Reservoir) Quantiles(qs ...float64) []float64 {
	r.mu.Lock()
	s := make([]float64, len(r.samples))
	copy(s, r.samples)
	r.mu.Unlock()
	out := make([]float64, len(qs))
	if len(s) == 0 {
		return out
	}
	sort.Float64s(s)
	for i, q := range qs {
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		out[i] = s[int(q*float64(len(s)-1))]
	}
	return out
}
