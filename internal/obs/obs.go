// Package obs is a zero-dependency, allocation-light in-process tracer
// for the runtime's phase-level observability.
//
// The paper's execution strategy interleaves three kinds of work inside
// every phase — the copy (drain) loop, the main compute loop, and the wait
// for the rotating portion to arrive — and its claims (communication
// overlapped with computation, LightInspector cost amortized across
// timesteps) are claims about where time goes *within* a phase. A Tracer
// records one Span per unit of phase work into a fixed-capacity ring, so a
// long-running daemon can expose "where does a sweep stall" without
// unbounded memory and without allocating on the hot path: recording a
// span copies a small value struct into a preallocated slot.
//
// All methods are safe on a nil *Tracer and become no-ops, so the runtime
// threads an optional tracer through its hot loops at the cost of a nil
// check. Begin reads the monotonic clock only when tracing is live.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span names recorded by the runtime. Phase-level spans carry the
// processor, phase, step and portion they describe; -1 marks a tag that
// does not apply.
const (
	// SpanCompute is the main loop of one phase: contributions computed
	// and folded into the owned portion or the remote buffer.
	SpanCompute = "compute"
	// SpanCopy is the second (copy) loop of one phase: buffered
	// contributions drained into the just-arrived portion.
	SpanCopy = "copy"
	// SpanWait is the time a processor blocks receiving a rotated portion
	// — the rotation wait the schedule is supposed to hide under compute.
	SpanWait = "wait"
	// SpanUpdate is the regular between-sweep loop under the barrier.
	SpanUpdate = "update"
	// SpanInspect is one LightInspector pass for one processor.
	SpanInspect = "inspect"
	// SpanResend is a rotation payload recovered from the sender's
	// retransmit buffer after a watchdog timeout or checksum mismatch.
	SpanResend = "resend"
	// SpanRecover is a whole-sweep recovery: the engine restoring state
	// from the last good checkpoint after a transient fault, or degrading
	// the machine shape after a permanent peer loss.
	SpanRecover = "recover"
	// SpanCheckpoint is one checkpoint write (sweep state persisted so a
	// restart can resume instead of recompute).
	SpanCheckpoint = "checkpoint"
	// SpanForward is one inter-node job forward: the routing node's view
	// of the hop to the owner (retries and failovers included).
	SpanForward = "forward"
	// SpanFailover is one failover: a forward abandoned a dead target and
	// replayed the job on the ring successor.
	SpanFailover = "failover"
	// SpanGossip is one health-gossip exchange with one peer.
	SpanGossip = "gossip"
	// SpanReplicate is one checkpoint frame shipped to the ring successor.
	SpanReplicate = "replicate"
	// SpanDelta is one incremental schedule revision for one processor
	// (Schedule.Update on a session's resident schedule) — the streaming
	// counterpart of SpanInspect, which full re-inspection records.
	SpanDelta = "delta"
)

// Span is one traced interval. Times are nanoseconds since the tracer's
// epoch (monotonic), so spans from concurrent goroutines order correctly.
type Span struct {
	Name    string `json:"name"`
	Proc    int32  `json:"proc"`    // executing processor, -1 if n/a
	Phase   int32  `json:"phase"`   // phase within the sweep, -1 if n/a
	Step    int32  `json:"step"`    // timestep, -1 if n/a
	Portion int32  `json:"portion"` // rotated portion involved, -1 if n/a
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// Tracer records spans into a fixed ring. When the ring is full the oldest
// spans are overwritten; Snapshot reports how many were recorded in total
// so callers can tell how much history was dropped.
type Tracer struct {
	epoch time.Time

	mu    sync.Mutex
	ring  []Span
	total uint64 // spans ever recorded; ring slot = total % len(ring)
}

// DefaultCapacity is the ring size used when New is given a non-positive
// capacity: roughly a few hundred sweeps of a small machine shape.
const DefaultCapacity = 8192

// New builds a tracer with the given ring capacity (DefaultCapacity when
// capacity <= 0).
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{epoch: time.Now(), ring: make([]Span, capacity)}
}

// Begin reads the tracer clock. On a nil tracer it returns 0 without
// touching the clock, so instrumented hot loops pay only a nil check.
func (t *Tracer) Begin() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.epoch))
}

// End records a span that started at the Begin value start.
func (t *Tracer) End(name string, proc, phase, step, portion int, start int64) {
	if t == nil {
		return
	}
	now := int64(time.Since(t.epoch))
	t.record(Span{
		Name:    name,
		Proc:    int32(proc),
		Phase:   int32(phase),
		Step:    int32(step),
		Portion: int32(portion),
		StartNS: start,
		DurNS:   now - start,
	})
}

// Event records an instantaneous marker (a zero-duration span).
func (t *Tracer) Event(name string, proc, phase, step, portion int) {
	if t == nil {
		return
	}
	t.record(Span{
		Name:    name,
		Proc:    int32(proc),
		Phase:   int32(phase),
		Step:    int32(step),
		Portion: int32(portion),
		StartNS: int64(time.Since(t.epoch)),
	})
}

func (t *Tracer) record(s Span) {
	t.mu.Lock()
	t.ring[t.total%uint64(len(t.ring))] = s
	t.total++
	t.mu.Unlock()
}

// Snapshot copies the retained spans, oldest first, and reports the total
// ever recorded (total - len(spans) were dropped by ring wrap).
func (t *Tracer) Snapshot() (spans []Span, total uint64) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.total
	if n > uint64(len(t.ring)) {
		n = uint64(len(t.ring))
	}
	spans = make([]Span, 0, n)
	start := t.total - n
	for i := uint64(0); i < n; i++ {
		spans = append(spans, t.ring[(start+i)%uint64(len(t.ring))])
	}
	return spans, t.total
}

// Reset discards all retained spans and the total count; the epoch is
// kept, so span timestamps stay comparable across a reset.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.total = 0
	t.mu.Unlock()
}

// Agg is one row of an aggregate table: the distribution of durations over
// all spans sharing a name (and, for the per-phase form, a phase).
type Agg struct {
	Name    string  `json:"name"`
	Phase   int32   `json:"phase"` // -1 in the by-name form
	Count   int64   `json:"count"`
	TotalNS int64   `json:"total_ns"`
	MinNS   int64   `json:"min_ns"`
	MaxNS   int64   `json:"max_ns"`
	AvgNS   float64 `json:"avg_ns"`
}

// Aggregate folds spans into per-name rows; with byPhase it keys on
// (name, phase) instead, giving the per-phase table that shows where a
// sweep's time goes. Rows come back sorted by name, then phase.
func Aggregate(spans []Span, byPhase bool) []Agg {
	type key struct {
		name  string
		phase int32
	}
	m := make(map[key]*Agg)
	for i := range spans {
		s := &spans[i]
		k := key{name: s.Name, phase: -1}
		if byPhase {
			k.phase = s.Phase
		}
		a, ok := m[k]
		if !ok {
			a = &Agg{Name: k.name, Phase: k.phase, MinNS: s.DurNS, MaxNS: s.DurNS}
			m[k] = a
		}
		a.Count++
		a.TotalNS += s.DurNS
		if s.DurNS < a.MinNS {
			a.MinNS = s.DurNS
		}
		if s.DurNS > a.MaxNS {
			a.MaxNS = s.DurNS
		}
	}
	out := make([]Agg, 0, len(m))
	for _, a := range m {
		a.AvgNS = float64(a.TotalNS) / float64(a.Count)
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}

// Table renders aggregate rows as an aligned text table (milliseconds),
// the human-readable form of /debug/trace.
func Table(rows []Agg) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %5s %8s %12s %10s %10s %10s\n",
		"span", "phase", "count", "total_ms", "avg_ms", "min_ms", "max_ms")
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	for _, r := range rows {
		phase := "-"
		if r.Phase >= 0 {
			phase = fmt.Sprintf("%d", r.Phase)
		}
		fmt.Fprintf(&b, "%-12s %5s %8d %12.3f %10.4f %10.4f %10.4f\n",
			r.Name, phase, r.Count, ms(r.TotalNS), r.AvgNS/1e6, ms(r.MinNS), ms(r.MaxNS))
	}
	return b.String()
}
