package obs

import (
	"math"
	"math/rand"
	"testing"
)

// Small streams are retained whole, so quantiles are exact order stats.
func TestReservoirExactSmallSample(t *testing.T) {
	r := NewReservoir(100)
	// 1..100 shuffled: p50 -> 50, p95 -> 95, p99 -> 99 under the
	// idx = q*(n-1) convention (0-indexed sorted positions 49, 94, 98).
	perm := rand.New(rand.NewSource(7)).Perm(100)
	for _, v := range perm {
		r.Add(float64(v + 1))
	}
	qs := r.Quantiles(0, 0.50, 0.95, 0.99, 1)
	want := []float64{1, 50, 95, 99, 100}
	for i := range want {
		if qs[i] != want[i] {
			t.Fatalf("quantile %d = %v, want %v (all %v)", i, qs[i], want[i], qs)
		}
	}
	if r.Count() != 100 {
		t.Fatalf("Count = %d", r.Count())
	}
}

// A long uniform stream through a small reservoir must still estimate
// quantiles near their true values: sampling is unbiased.
func TestReservoirUniformStream(t *testing.T) {
	r := NewReservoir(2048)
	rng := rand.New(rand.NewSource(42))
	const n = 200_000
	for i := 0; i < n; i++ {
		r.Add(rng.Float64())
	}
	if r.Count() != n {
		t.Fatalf("Count = %d, want %d", r.Count(), n)
	}
	qs := r.Quantiles(0.50, 0.95, 0.99)
	for i, want := range []float64{0.50, 0.95, 0.99} {
		if math.Abs(qs[i]-want) > 0.05 {
			t.Fatalf("p%v = %v, want ~%v", want*100, qs[i], want)
		}
	}
}

// A heavily skewed (exponential-ish) distribution: the tail quantiles
// must order correctly and sit far above the median.
func TestReservoirSkewedDistribution(t *testing.T) {
	r := NewReservoir(4096)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100_000; i++ {
		r.Add(rng.ExpFloat64())
	}
	qs := r.Quantiles(0.50, 0.95, 0.99)
	p50, p95, p99 := qs[0], qs[1], qs[2]
	if !(p50 < p95 && p95 < p99) {
		t.Fatalf("quantiles out of order: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	// True values: ln2 ~= 0.693, 3.0, 4.6.
	if math.Abs(p50-math.Ln2) > 0.1 || math.Abs(p95-3.0) > 0.4 || math.Abs(p99-4.6) > 0.8 {
		t.Fatalf("exponential quantiles off: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
}

func TestReservoirEmptyAndClamping(t *testing.T) {
	r := NewReservoir(8)
	qs := r.Quantiles(0.5)
	if qs[0] != 0 {
		t.Fatalf("empty reservoir quantile = %v", qs[0])
	}
	r.Add(5)
	qs = r.Quantiles(-1, 2)
	if qs[0] != 5 || qs[1] != 5 {
		t.Fatalf("clamped quantiles = %v", qs)
	}
}

func TestReservoirDefaultCap(t *testing.T) {
	r := NewReservoir(0)
	if r.max != DefaultReservoirCap {
		t.Fatalf("default cap = %d", r.max)
	}
}
