package mesh

import (
	"fmt"
	"sort"
)

// This file implements recursive coordinate bisection (RCB) — the
// geometric mesh partitioner that conventional distributed-memory
// approaches (the paper's Section 5.4.3 comparison with Agrawal-Saltz)
// rely on. The paper's whole point is that its strategy does *not* need
// this machinery; having it lets the repository quantify what partitioning
// buys (locality, fewer cut edges) and what it costs (preprocessing that
// adaptive problems must repeat).

// Partition assigns each node to one of P parts.
type Partition struct {
	P    int
	Part []int32 // len NumNodes, values in [0, P)
}

// RCB partitions the mesh's nodes into p parts of near-equal size by
// recursively bisecting along the widest coordinate axis. p need not be a
// power of two: splits are sized proportionally.
func (m *Mesh) RCB(p int) *Partition {
	if p <= 0 {
		panic("mesh: RCB needs p >= 1")
	}
	part := make([]int32, m.NumNodes)
	ids := make([]int32, m.NumNodes)
	for i := range ids {
		ids[i] = int32(i)
	}
	var rec func(ids []int32, lo, hi int)
	rec = func(ids []int32, lo, hi int) {
		nparts := hi - lo
		if nparts == 1 {
			for _, id := range ids {
				part[id] = int32(lo)
			}
			return
		}
		// Widest axis of this subset's bounding box.
		var minc, maxc [3]float64
		for c := 0; c < 3; c++ {
			minc[c], maxc[c] = m.Coord[3*ids[0]+int32(c)], m.Coord[3*ids[0]+int32(c)]
		}
		for _, id := range ids {
			for c := 0; c < 3; c++ {
				v := m.Coord[3*id+int32(c)]
				if v < minc[c] {
					minc[c] = v
				}
				if v > maxc[c] {
					maxc[c] = v
				}
			}
		}
		axis := 0
		for c := 1; c < 3; c++ {
			if maxc[c]-minc[c] > maxc[axis]-minc[axis] {
				axis = c
			}
		}
		sort.Slice(ids, func(a, b int) bool {
			return m.Coord[3*ids[a]+int32(axis)] < m.Coord[3*ids[b]+int32(axis)]
		})
		leftParts := nparts / 2
		cut := len(ids) * leftParts / nparts
		rec(ids[:cut], lo, lo+leftParts)
		rec(ids[cut:], lo+leftParts, hi)
	}
	rec(ids, 0, p)
	return &Partition{P: p, Part: part}
}

// Sizes reports the node count of each part.
func (pt *Partition) Sizes() []int {
	out := make([]int, pt.P)
	for _, p := range pt.Part {
		out[p]++
	}
	return out
}

// CutEdges reports how many edges cross part boundaries — the
// communication the classic owner-computes scheme pays per timestep.
func (pt *Partition) CutEdges(m *Mesh) int {
	cut := 0
	for i := range m.I1 {
		if pt.Part[m.I1[i]] != pt.Part[m.I2[i]] {
			cut++
		}
	}
	return cut
}

// Check validates partition invariants: every node assigned, parts within
// one node of perfectly balanced.
func (pt *Partition) Check(m *Mesh) error {
	if len(pt.Part) != m.NumNodes {
		return fmt.Errorf("mesh: partition covers %d nodes, mesh has %d", len(pt.Part), m.NumNodes)
	}
	for i, p := range pt.Part {
		if int(p) < 0 || int(p) >= pt.P {
			return fmt.Errorf("mesh: node %d in part %d of %d", i, p, pt.P)
		}
	}
	sizes := pt.Sizes()
	lo, hi := sizes[0], sizes[0]
	for _, s := range sizes {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	// RCB with proportional splits keeps sizes within a handful of nodes.
	if hi-lo > pt.P {
		return fmt.Errorf("mesh: imbalanced partition, sizes %v", sizes)
	}
	return nil
}

// Renumber returns a copy of the mesh with nodes renumbered so each part's
// nodes are contiguous (part-major, original order within a part) and the
// edge list re-sorted by first endpoint. This is the "array renumbering"
// preprocessing the paper's related work applies to improve locality — and
// that the paper's own strategy avoids.
func (m *Mesh) Renumber(pt *Partition) *Mesh {
	order := make([]int32, 0, m.NumNodes)
	for p := 0; p < pt.P; p++ {
		for i := 0; i < m.NumNodes; i++ {
			if int(pt.Part[i]) == p {
				order = append(order, int32(i))
			}
		}
	}
	newID := make([]int32, m.NumNodes)
	for newIdx, old := range order {
		newID[old] = int32(newIdx)
	}
	out := &Mesh{NumNodes: m.NumNodes, Coord: make([]float64, 3*m.NumNodes)}
	for newIdx, old := range order {
		copy(out.Coord[3*newIdx:3*newIdx+3], m.Coord[3*old:3*old+3])
	}
	type edge struct{ a, b int32 }
	es := make([]edge, len(m.I1))
	for i := range m.I1 {
		es[i] = edge{newID[m.I1[i]], newID[m.I2[i]]}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].a != es[j].a {
			return es[i].a < es[j].a
		}
		return es[i].b < es[j].b
	})
	out.I1 = make([]int32, len(es))
	out.I2 = make([]int32, len(es))
	for i, e := range es {
		out.I1[i], out.I2[i] = e.a, e.b
	}
	return out
}
