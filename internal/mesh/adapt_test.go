package mesh

import (
	"reflect"
	"testing"
)

func TestAdaptDeterministic(t *testing.T) {
	a := Generate(512, 2200, 3)
	b := Generate(512, 2200, 3)
	for step := 0; step < 10; step++ {
		ca := a.Adapt(step, 0.05, 9)
		cb := b.Adapt(step, 0.05, 9)
		if !reflect.DeepEqual(ca, cb) {
			t.Fatalf("step %d: changed lists diverge", step)
		}
		if !reflect.DeepEqual(a.I2, b.I2) {
			t.Fatalf("step %d: meshes diverge", step)
		}
	}
}

func TestAdaptChangedListCanonical(t *testing.T) {
	m := Generate(512, 2200, 1)
	seen := make(map[int32]int)
	for step := 0; step < 20; step++ {
		before := append([]int32(nil), m.I2...)
		changed := m.Adapt(step, 0.04, 7)
		want := int(0.04 * float64(m.NumEdges()))
		if len(changed) != want {
			t.Fatalf("step %d: %d edges changed, want %d", step, len(changed), want)
		}
		for j, i := range changed {
			if j > 0 && changed[j] <= changed[j-1] {
				t.Fatalf("step %d: changed list not strictly increasing at %d", step, j)
			}
			if int(i) < 0 || int(i) >= m.NumEdges() {
				t.Fatalf("step %d: changed index %d out of range", step, i)
			}
			seen[i]++
		}
		// No edge outside the changed list may move.
		inChanged := make(map[int32]bool, len(changed))
		for _, i := range changed {
			inChanged[i] = true
		}
		for i := range m.I2 {
			if m.I2[i] != before[i] && !inChanged[int32(i)] {
				t.Fatalf("step %d: edge %d changed but was not reported", step, i)
			}
		}
		if err := m.Check(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	// The hotspot drifts: 20 steps at 4% must touch far more than one
	// window's worth of distinct edges.
	if len(seen) < 4*int(0.04*float64(m.NumEdges())) {
		t.Fatalf("20 drifting steps touched only %d distinct edges", len(seen))
	}
}

func TestAdaptTinyAndEdgeCases(t *testing.T) {
	m := Generate(64, 200, 2)
	if got := m.Adapt(0, 0, 1); got != nil {
		t.Fatalf("frac 0 changed %d edges", len(got))
	}
	if got := m.Adapt(0, 0.0001, 1); len(got) != 1 {
		t.Fatalf("tiny frac changed %d edges, want 1 (floor)", len(got))
	}
	if got := m.Adapt(1, 1.0, 1); len(got) != m.NumEdges() {
		t.Fatalf("frac 1 changed %d of %d edges", len(got), m.NumEdges())
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
}
