package mesh

import (
	"math/rand"
	"sort"
)

// Adapt performs one deterministic adaptation step: a hotspot window of
// edges — drifting through the mesh as step advances, the way a shock
// front or refinement region moves through an adaptive computation —
// is rewired to new nearby second endpoints. Because nodes are numbered
// in spatial order and edges sorted by first endpoint, an index window is
// a spatial region, and pulling I2 toward I1 models local refinement
// (locality preserved, unlike Mutate's neighbourhood-breaking rewiring).
//
// It mutates the mesh in place and returns the changed edge indices,
// sorted and distinct — edge index == loop iteration for the edge-loop
// kernels, so the return value is exactly the changed-iteration list
// Schedule.Update and the session delta API consume. The result is a pure
// function of (mesh state, step, frac, seed): a client and a test oracle
// replaying the same schedule of Adapt calls see identical meshes.
func (m *Mesh) Adapt(step int, frac float64, seed int64) []int32 {
	e := len(m.I1)
	if e == 0 || frac <= 0 {
		return nil
	}
	n := int(frac * float64(e))
	if n < 1 {
		n = 1
	}
	if n > e {
		n = e
	}
	rng := rand.New(rand.NewSource(seed ^ (int64(step)+1)*0x5851F42D4C957F2D))

	// Hotspot: a window of 4n consecutive edge indices (wrapping), whose
	// base drifts by ~e/7 per step plus jitter, so successive steps touch
	// overlapping-but-moving regions instead of resampling one spot.
	w := 4 * n
	if w > e {
		w = e
	}
	lo := int((int64(step)*(int64(e)/7+1) + int64(rng.Intn(e))) % int64(e))
	picks := rng.Perm(w)[:n]
	changed := make([]int32, n)
	for j, off := range picks {
		changed[j] = int32((lo + off) % e)
	}
	sort.Slice(changed, func(i, j int) bool { return changed[i] < changed[j] })

	// Refine: each touched edge gets a new second endpoint within a small
	// spatial span of its first, never a self-loop.
	span := m.NumNodes / 16
	if span < 2 {
		span = 2
	}
	for _, i := range changed {
		a := int(m.I1[i])
		b := a + rng.Intn(2*span+1) - span
		if b < 0 {
			b += m.NumNodes
		}
		if b >= m.NumNodes {
			b -= m.NumNodes
		}
		if b == a {
			b = (b + 1) % m.NumNodes
		}
		m.I2[i] = int32(b)
	}
	return changed
}
