package mesh

import (
	"testing"
	"testing/quick"
)

func TestRCBBalance(t *testing.T) {
	m := Generate(2800, 17377, 1)
	for _, p := range []int{2, 3, 4, 7, 8, 16, 32} {
		pt := m.RCB(p)
		if err := pt.Check(m); err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		sizes := pt.Sizes()
		want := m.NumNodes / p
		for i, s := range sizes {
			if s < want-p || s > want+p+1 {
				t.Fatalf("P=%d: part %d has %d nodes, want ~%d (%v)", p, i, s, want, sizes)
			}
		}
	}
}

func TestRCBCutsFewEdges(t *testing.T) {
	// A geometric partitioner must cut far fewer edges than a random
	// assignment would: random cuts ~ (1-1/P) of edges.
	m := Generate(2800, 17377, 1)
	pt := m.RCB(8)
	cut := pt.CutEdges(m)
	randomExpect := m.NumEdges() * 7 / 8
	if cut >= randomExpect/3 {
		t.Fatalf("RCB cut %d of %d edges; geometric partitioning should cut far fewer than %d",
			cut, m.NumEdges(), randomExpect)
	}
	if cut == 0 {
		t.Fatal("a connected mesh split into 8 parts must cut some edges")
	}
}

func TestRCBSinglePart(t *testing.T) {
	m := Generate(100, 500, 2)
	pt := m.RCB(1)
	if err := pt.Check(m); err != nil {
		t.Fatal(err)
	}
	if pt.CutEdges(m) != 0 {
		t.Fatal("one part cannot cut edges")
	}
}

func TestRenumberPreservesStructure(t *testing.T) {
	m := Generate(500, 3000, 3)
	pt := m.RCB(4)
	r := m.Renumber(pt)
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	if r.NumNodes != m.NumNodes || r.NumEdges() != m.NumEdges() {
		t.Fatal("renumbering changed mesh size")
	}
	// Degree multiset is preserved (renumbering is a node permutation).
	a, b := m.Degree(), r.Degree()
	ca := map[int]int{}
	cb := map[int]int{}
	for i := range a {
		ca[a[i]]++
		cb[b[i]]++
	}
	for k, v := range ca {
		if cb[k] != v {
			t.Fatalf("degree multiset changed: %d nodes of degree %d -> %d", v, k, cb[k])
		}
	}
	// Renumbered edges are sorted by first endpoint.
	for i := 1; i < r.NumEdges(); i++ {
		if r.I1[i] < r.I1[i-1] {
			t.Fatal("renumbered edge list unsorted")
		}
	}
}

func TestRenumberImprovesBlockAlignment(t *testing.T) {
	// After partition renumbering, a block distribution of nodes matches
	// the partition: edges crossing block boundaries equal RCB cut edges
	// (up to rounding), which is far below the unpartitioned count.
	m := Generate(2800, 17377, 1)
	const p = 8
	pt := m.RCB(p)
	r := m.Renumber(pt)
	blockOf := func(n int32, mm *Mesh) int { return int(n) * p / mm.NumNodes }
	crossing := func(mm *Mesh) int {
		c := 0
		for i := range mm.I1 {
			if blockOf(mm.I1[i], mm) != blockOf(mm.I2[i], mm) {
				c++
			}
		}
		return c
	}
	before, after := crossing(m), crossing(r)
	if after >= before {
		t.Fatalf("renumbering did not reduce block-crossing edges: %d -> %d", before, after)
	}
}

func TestRCBDeterministic(t *testing.T) {
	m := Generate(300, 1500, 9)
	a, b := m.RCB(6), m.RCB(6)
	for i := range a.Part {
		if a.Part[i] != b.Part[i] {
			t.Fatal("RCB not deterministic")
		}
	}
}

// Property: any feasible mesh and part count yields a valid partition with
// every node assigned.
func TestRCBProperty(t *testing.T) {
	prop := func(seed int64, nRaw, pRaw uint8) bool {
		nodes := 27 + int(nRaw)
		edges := nodes + int(nRaw)%nodes
		p := 1 + int(pRaw)%9
		m := Generate(nodes, edges, seed)
		pt := m.RCB(p)
		return pt.Check(m) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRCBZeroPartsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for p=0")
		}
	}()
	Generate(100, 400, 1).RCB(0)
}
