// Package mesh generates synthetic unstructured meshes with the shape of
// the paper's euler datasets: the "2K" mesh (2,800 nodes, 17,377 edges) and
// the "10K" mesh (9,428 nodes, 59,863 edges). The edge-to-node ratio (~6.3)
// matches a three-dimensional unstructured mesh, so nodes are placed on a
// jittered 3-D grid and edges connect spatial neighbours.
//
// Two properties of real meshes matter for reproducing the paper's
// results and are preserved here:
//
//   - nodes are numbered in spatial order and the edge list is in coarse
//     first-endpoint order (element-traversal order), so a *block*
//     distribution of edges concentrates each processor's references in a
//     narrow node range — the source of the per-phase load imbalance the
//     paper observes with block distributions;
//   - endpoints of an edge are spatially (hence numerically) close, giving
//     the locality that the sequential baseline enjoys and phase
//     partitioning partially destroys.
package mesh

import (
	"fmt"
	"math/rand"
	"sort"
)

// Mesh is an undirected unstructured mesh given as an edge list.
type Mesh struct {
	NumNodes int
	// I1, I2 are the two endpoints of each edge — the loop's indirection
	// arrays IA(i,1), IA(i,2).
	I1, I2 []int32
	// Coord holds 3 coordinates per node (x, y, z interleaved).
	Coord []float64
}

// NumEdges reports the edge count.
func (m *Mesh) NumEdges() int { return len(m.I1) }

// Paper2K returns the dimensions of the paper's small euler mesh.
func Paper2K() (nodes, edges int) { return 2800, 17377 }

// Paper10K returns the dimensions of the paper's large euler mesh.
func Paper10K() (nodes, edges int) { return 9428, 59863 }

// Generate builds a mesh with exactly the requested node and edge counts.
// It panics if edges exceed the connectivity the generator can produce
// (about 9 per node); the paper's meshes are well within range.
func Generate(nodes, edges int, seed int64) *Mesh {
	if nodes < 8 {
		panic("mesh: need at least 8 nodes")
	}
	rng := rand.New(rand.NewSource(seed))

	// Grid dimensions: the most cubic box with nx*ny*nz >= nodes.
	nx := 1
	for nx*nx*nx < nodes {
		nx++
	}
	ny, nz := nx, nx
	for (nx-1)*ny*nz >= nodes {
		nx--
	}
	for nx*(ny-1)*nz >= nodes {
		ny--
	}

	m := &Mesh{NumNodes: nodes, Coord: make([]float64, 3*nodes)}
	// Spatially-ordered node numbering with jittered positions.
	id := 0
	idOf := make(map[[3]int]int, nodes)
	for x := 0; x < nx && id < nodes; x++ {
		for y := 0; y < ny && id < nodes; y++ {
			for z := 0; z < nz && id < nodes; z++ {
				idOf[[3]int{x, y, z}] = id
				m.Coord[3*id] = float64(x) + 0.3*rng.Float64()
				m.Coord[3*id+1] = float64(y) + 0.3*rng.Float64()
				m.Coord[3*id+2] = float64(z) + 0.3*rng.Float64()
				id++
			}
		}
	}

	// Candidate edges: neighbour offsets covering axis, face-diagonal and
	// body-diagonal directions (up to 9 per node), enough to exceed the
	// paper's edge/node ratio.
	offsets := [][3]int{
		{1, 0, 0}, {0, 1, 0}, {0, 0, 1},
		{1, 1, 0}, {1, 0, 1}, {0, 1, 1},
		{1, 1, 1}, {1, -1, 0}, {0, 1, -1},
	}
	type edge struct{ a, b int32 }
	var cand []edge
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			for z := 0; z < nz; z++ {
				a, ok := idOf[[3]int{x, y, z}]
				if !ok {
					continue
				}
				for _, o := range offsets {
					b, ok := idOf[[3]int{x + o[0], y + o[1], z + o[2]}]
					if !ok {
						continue
					}
					cand = append(cand, edge{int32(a), int32(b)})
				}
			}
		}
	}
	if len(cand) < edges {
		panic(fmt.Sprintf("mesh: cannot make %d edges from %d nodes (max %d)", edges, nodes, len(cand)))
	}
	// Keep exactly `edges` candidates, deterministically sampled, then
	// restore coarse spatial order: sorted by first endpoint, but shuffled
	// within windows. Real mesh generators emit edges in element-traversal
	// order — strong locality without exact node alignment; a perfectly
	// sorted list would make block distributions unrealistically
	// home-aligned.
	rng.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
	cand = cand[:edges]
	sort.Slice(cand, func(i, j int) bool {
		if cand[i].a != cand[j].a {
			return cand[i].a < cand[j].a
		}
		return cand[i].b < cand[j].b
	})
	window := edges / 8
	if window < 64 {
		window = 64
	}
	for lo := 0; lo < edges; lo += window {
		hi := lo + window
		if hi > edges {
			hi = edges
		}
		rng.Shuffle(hi-lo, func(i, j int) { cand[lo+i], cand[lo+j] = cand[lo+j], cand[lo+i] })
	}
	m.I1 = make([]int32, edges)
	m.I2 = make([]int32, edges)
	for i, e := range cand {
		m.I1[i], m.I2[i] = e.a, e.b
	}
	return m
}

// Check validates mesh invariants.
func (m *Mesh) Check() error {
	if len(m.I1) != len(m.I2) {
		return fmt.Errorf("mesh: endpoint arrays differ in length")
	}
	if len(m.Coord) != 3*m.NumNodes {
		return fmt.Errorf("mesh: coord length %d, want %d", len(m.Coord), 3*m.NumNodes)
	}
	for i := range m.I1 {
		for _, e := range []int32{m.I1[i], m.I2[i]} {
			if int(e) < 0 || int(e) >= m.NumNodes {
				return fmt.Errorf("mesh: edge %d endpoint %d out of range", i, e)
			}
		}
		if m.I1[i] == m.I2[i] {
			return fmt.Errorf("mesh: edge %d is a self-loop", i)
		}
	}
	return nil
}

// Shuffled returns a copy with the edge list in random order — destroying
// the spatial edge ordering while keeping the same mesh, for ablations.
func (m *Mesh) Shuffled(seed int64) *Mesh {
	rng := rand.New(rand.NewSource(seed))
	out := &Mesh{NumNodes: m.NumNodes, Coord: m.Coord}
	out.I1 = append([]int32(nil), m.I1...)
	out.I2 = append([]int32(nil), m.I2...)
	rng.Shuffle(len(out.I1), func(i, j int) {
		out.I1[i], out.I1[j] = out.I1[j], out.I1[i]
		out.I2[i], out.I2[j] = out.I2[j], out.I2[i]
	})
	return out
}

// Mutate rewires frac of the edges to new random neighbourhood-breaking
// targets, modelling one adaptation step of an adaptive irregular problem
// (the paper's future-work scenario). It returns the number rewired.
func (m *Mesh) Mutate(frac float64, seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	n := int(frac * float64(len(m.I1)))
	for j := 0; j < n; j++ {
		i := rng.Intn(len(m.I1))
		b := int32(rng.Intn(m.NumNodes))
		for b == m.I1[i] {
			b = int32(rng.Intn(m.NumNodes))
		}
		m.I2[i] = b
	}
	return n
}

// Degree returns the per-node edge degree histogram (sum of endpoint
// occurrences), used by tests and load-balance diagnostics.
func (m *Mesh) Degree() []int {
	deg := make([]int, m.NumNodes)
	for i := range m.I1 {
		deg[m.I1[i]]++
		deg[m.I2[i]]++
	}
	return deg
}
