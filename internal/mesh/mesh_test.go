package mesh

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperSizesExact(t *testing.T) {
	for _, tc := range []struct{ nodes, edges int }{
		{2800, 17377},
		{9428, 59863},
	} {
		m := Generate(tc.nodes, tc.edges, 1)
		if m.NumNodes != tc.nodes || m.NumEdges() != tc.edges {
			t.Fatalf("got %d nodes %d edges, want %d/%d", m.NumNodes, m.NumEdges(), tc.nodes, tc.edges)
		}
		if err := m.Check(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := Generate(500, 3000, 42)
	b := Generate(500, 3000, 42)
	for i := range a.I1 {
		if a.I1[i] != b.I1[i] || a.I2[i] != b.I2[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestCoarseEdgeOrdering(t *testing.T) {
	// Edges are emitted in element-traversal order: coarse windows of the
	// list move monotonically through the node range, even though entries
	// within a window are unordered.
	m := Generate(1000, 6000, 1)
	const windows = 8
	w := m.NumEdges() / windows
	var prevMean float64 = -1
	for b := 0; b < windows; b++ {
		var sum float64
		for i := b * w; i < (b+1)*w; i++ {
			sum += float64(m.I1[i])
		}
		mean := sum / float64(w)
		if mean <= prevMean {
			t.Fatalf("window %d mean %.0f not increasing past %.0f", b, mean, prevMean)
		}
		prevMean = mean
	}
}

func TestEndpointLocality(t *testing.T) {
	// Mesh edges connect spatial neighbours: endpoint index distance must
	// be far below the random expectation (~nodes/3).
	m := Generate(2800, 17377, 1)
	var sum float64
	for i := range m.I1 {
		sum += math.Abs(float64(m.I1[i]) - float64(m.I2[i]))
	}
	avg := sum / float64(m.NumEdges())
	if avg > float64(m.NumNodes)/8 {
		t.Fatalf("avg endpoint distance %.0f — no spatial locality", avg)
	}
}

func TestShuffledPreservesMultiset(t *testing.T) {
	m := Generate(300, 1500, 3)
	s := m.Shuffled(4)
	if s.NumEdges() != m.NumEdges() {
		t.Fatal("edge count changed")
	}
	count := func(mm *Mesh) map[[2]int32]int {
		c := map[[2]int32]int{}
		for i := range mm.I1 {
			c[[2]int32{mm.I1[i], mm.I2[i]}]++
		}
		return c
	}
	a, b := count(m), count(s)
	if len(a) != len(b) {
		t.Fatal("edge multiset changed")
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("edge %v count changed", k)
		}
	}
	// And the order must actually differ somewhere.
	same := true
	for i := range m.I1 {
		if m.I1[i] != s.I1[i] || m.I2[i] != s.I2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("shuffle did nothing")
	}
}

func TestMutateRewires(t *testing.T) {
	m := Generate(300, 1500, 3)
	orig := append([]int32(nil), m.I2...)
	n := m.Mutate(0.10, 99)
	if n != 150 {
		t.Fatalf("mutated %d, want 150", n)
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	changed := 0
	for i := range orig {
		if m.I2[i] != orig[i] {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("mutation changed nothing")
	}
}

func TestDegreeSum(t *testing.T) {
	m := Generate(200, 900, 5)
	deg := m.Degree()
	sum := 0
	for _, d := range deg {
		sum += d
	}
	if sum != 2*m.NumEdges() {
		t.Fatalf("degree sum %d, want %d", sum, 2*m.NumEdges())
	}
}

// Property: any feasible (nodes, edges) request yields exactly that size
// and a valid mesh.
func TestGenerateProperty(t *testing.T) {
	prop := func(seed int64, nRaw, eRaw uint8) bool {
		nodes := 27 + int(nRaw)
		edges := nodes + int(eRaw)%(3*nodes)
		m := Generate(nodes, edges, seed)
		return m.NumNodes == nodes && m.NumEdges() == edges && m.Check() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTooManyEdgesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for infeasible edge count")
		}
	}()
	Generate(27, 10000, 1)
}
