// Package algebra infers algebraic properties of reduction operators:
// associativity, commutativity, identity elements, idempotence and
// float-reorder sensitivity. The properties are what legalize schedules
// beyond the paper's single k*P rotation — tree folds and tiled
// regroupings are sound exactly when the combine operator provably
// carries the right algebra (cf. reduction-aware polyhedral scheduling).
//
// Builtin operators (+, *, min, max) are table-driven. Compound update
// expressions (x[ia[i]] = f(x[ia[i]], contribution)) are normalized by
// ExtractUpdate into a two-variable combine tree over the accumulator "a"
// and the contribution "b", then checked by CheckExpr: bounded exhaustive
// evaluation over a small integer domain, upgraded to a genuine proof
// over the reals when the combine is polynomial of low enough degree
// (a degree-d polynomial identity that holds on d+1 points per variable
// holds everywhere).
package algebra

import (
	"fmt"
	"math"

	"irred/internal/lang"
)

// Kind identifies a fold operator. The zero value is Add, so a
// zero-valued Op behaves exactly like the pre-algebra runtime (+=).
type Kind int

const (
	Add    Kind = iota // a + b
	Mul                // a * b
	Min                // min(a, b)
	Max                // max(a, b)
	Custom             // compound combine expression over "a" and "b"
)

func (k Kind) String() string {
	switch k {
	case Add:
		return "+"
	case Mul:
		return "*"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return "custom"
	}
}

// Op is an executable fold operator. For Custom kinds, Expr is the
// combine tree over the identifiers "a" (accumulator) and "b"
// (contribution); Ident/HasIdent carry the discovered identity element.
type Op struct {
	Kind     Kind
	Expr     lang.Expr // Custom only
	Ident    float64   // Custom only, valid when HasIdent
	HasIdent bool      // Custom only
}

// Fold combines an accumulator value with one contribution.
func (o Op) Fold(a, b float64) float64 {
	switch o.Kind {
	case Add:
		return a + b
	case Mul:
		return a * b
	case Min:
		return math.Min(a, b)
	case Max:
		return math.Max(a, b)
	default:
		return Eval(o.Expr, a, b)
	}
}

// Identity reports the operator's identity element, if one is known.
func (o Op) Identity() (float64, bool) {
	switch o.Kind {
	case Add:
		return 0, true
	case Mul:
		return 1, true
	case Min:
		return math.Inf(1), true
	case Max:
		return math.Inf(-1), true
	default:
		return o.Ident, o.HasIdent
	}
}

func (o Op) String() string {
	if o.Kind == Custom && o.Expr != nil {
		return o.Expr.String()
	}
	return o.Kind.String()
}

// Eval evaluates a combine expression at accumulator value a and
// contribution value b. Identifiers other than "a"/"b" and array
// references evaluate to NaN (they make the combine unverifiable).
func Eval(e lang.Expr, a, b float64) float64 {
	switch x := e.(type) {
	case *lang.Num:
		return x.Val
	case *lang.Ident:
		switch x.Name {
		case "a":
			return a
		case "b":
			return b
		}
		return math.NaN()
	case *lang.BinExpr:
		l, r := Eval(x.L, a, b), Eval(x.R, a, b)
		switch x.Op {
		case '+':
			return l + r
		case '-':
			return l - r
		case '*':
			return l * r
		case '/':
			return l / r
		}
		return math.NaN()
	case *lang.UnExpr:
		return -Eval(x.X, a, b)
	case *lang.CallExpr:
		switch x.Fn {
		case "sqrt":
			return math.Sqrt(Eval(x.Args[0], a, b))
		case "abs":
			return math.Abs(Eval(x.Args[0], a, b))
		case "min":
			return math.Min(Eval(x.Args[0], a, b), Eval(x.Args[1], a, b))
		case "max":
			return math.Max(Eval(x.Args[0], a, b), Eval(x.Args[1], a, b))
		}
		return math.NaN()
	default:
		return math.NaN()
	}
}

// Verdict is the tri-state outcome of a property check. The zero value
// is Unknown: absence of proof licenses nothing.
type Verdict int

const (
	Unknown   Verdict = iota // neither proven nor refuted
	Proven                   // holds (by table, polynomial identity, or exhaustion)
	Disproven                // counterexample found
)

func (v Verdict) String() string {
	switch v {
	case Proven:
		return "proven"
	case Disproven:
		return "disproven"
	default:
		return "unknown"
	}
}

// Props records the inferred algebraic properties of one combine
// operator, with provenance.
type Props struct {
	Assoc       Verdict
	Comm        Verdict
	Idem        Verdict
	HasIdentity Verdict
	Identity    float64 // valid when HasIdentity == Proven

	// ReorderSensitive marks operators whose float evaluation depends on
	// grouping/order even when the real-arithmetic algebra is associative
	// (+ and * round; min/max are exact).
	ReorderSensitive bool

	// Proof names the evidence: "operator table", "polynomial identity
	// (...)", or "bounded-exhaustive (...)".
	Proof string

	// Counterexamples, when a property is disproven.
	AssocCex string
	CommCex  string
}

// TableProps returns the property table entry for a builtin operator.
// Custom kinds have no table entry; check them with CheckExpr.
func TableProps(k Kind) Props {
	switch k {
	case Add:
		return Props{Assoc: Proven, Comm: Proven, Idem: Disproven,
			HasIdentity: Proven, Identity: 0, ReorderSensitive: true,
			Proof: "operator table"}
	case Mul:
		return Props{Assoc: Proven, Comm: Proven, Idem: Disproven,
			HasIdentity: Proven, Identity: 1, ReorderSensitive: true,
			Proof: "operator table"}
	case Min:
		return Props{Assoc: Proven, Comm: Proven, Idem: Proven,
			HasIdentity: Proven, Identity: math.Inf(1), ReorderSensitive: false,
			Proof: "operator table"}
	case Max:
		return Props{Assoc: Proven, Comm: Proven, Idem: Proven,
			HasIdentity: Proven, Identity: math.Inf(-1), ReorderSensitive: false,
			Proof: "operator table"}
	default:
		return Props{Proof: "no table entry for custom operator"}
	}
}

// checkDomain is the bounded check domain. Seven points per variable
// suffice to prove polynomial identities of composite degree <= 6.
var checkDomain = []float64{-3, -2, -1, 0, 1, 2, 3}

// maxProofDegree is the largest composite-expression degree the domain
// proves as a polynomial identity (len(checkDomain)-1).
const maxProofDegree = 6

// CheckExpr infers the properties of a combine expression over the
// identifiers "a" and "b". Polynomial combines of low degree get a
// genuine proof over the reals; other combines get bounded-exhaustive
// verdicts over the integer domain, and any domain hole (NaN from
// division etc.) downgrades an un-refuted property to Unknown.
func CheckExpr(e lang.Expr) Props {
	if free := freeVars(e); free != "" {
		return Props{
			ReorderSensitive: true,
			Proof:            fmt.Sprintf("unverifiable: combine references %s", free),
		}
	}

	// A polynomial combine of degree d composes to degree <= d*d in each
	// variable; when that fits the grid, agreement on the grid is a proof
	// over the reals, not a bounded check.
	deg, poly := polyDegree(e)
	sound := poly && deg*deg <= maxProofDegree

	p := Props{ReorderSensitive: reorderSensitive(e)}
	if sound {
		p.Proof = fmt.Sprintf("polynomial identity (degree %d combine on a %d-point grid)", deg, len(checkDomain))
	} else {
		p.Proof = fmt.Sprintf("bounded-exhaustive (integer grid [%g,%g])", checkDomain[0], checkDomain[len(checkDomain)-1])
	}

	f := func(a, b float64) float64 { return Eval(e, a, b) }
	holes := false

	// Associativity: (a.b).c == a.(b.c).
	p.Assoc = Proven
	for _, a := range checkDomain {
		for _, b := range checkDomain {
			for _, c := range checkDomain {
				l, r := f(f(a, b), c), f(a, f(b, c))
				if math.IsNaN(l) || math.IsNaN(r) {
					holes = true
					continue
				}
				if l != r {
					p.Assoc = Disproven
					p.AssocCex = fmt.Sprintf("a=%g b=%g c=%g: (a.b).c=%g but a.(b.c)=%g", a, b, c, l, r)
				}
			}
		}
	}
	// Commutativity and idempotence.
	p.Comm, p.Idem = Proven, Proven
	for _, a := range checkDomain {
		for _, b := range checkDomain {
			l, r := f(a, b), f(b, a)
			if math.IsNaN(l) || math.IsNaN(r) {
				holes = true
				continue
			}
			if l != r {
				p.Comm = Disproven
				p.CommCex = fmt.Sprintf("a=%g b=%g: a.b=%g but b.a=%g", a, b, l, r)
			}
		}
		if v := f(a, a); !math.IsNaN(v) && v != a {
			p.Idem = Disproven
		}
	}
	if holes && !sound {
		// The grid had singular points; un-refuted properties stay Unknown.
		if p.Assoc == Proven {
			p.Assoc = Unknown
		}
		if p.Comm == Proven {
			p.Comm = Unknown
		}
		if p.Idem == Proven {
			p.Idem = Unknown
		}
		p.Proof += "; domain holes (singular points) — unrefuted properties left unknown"
	}

	// Identity element: two-sided, over the whole domain. Canonical
	// identities are tried before grid points so that a grid extremum
	// passing the bounded test (e.g. 3 for min over [-3,3]) does not
	// shadow the true identity.
	p.HasIdentity = Unknown
	candidates := []float64{0, 1, math.Inf(1), math.Inf(-1), -1, -2, -3, 2, 3}
	for _, cand := range candidates {
		ok := true
		for _, a := range checkDomain {
			if f(a, cand) != a || f(cand, a) != a {
				ok = false
				break
			}
		}
		if ok {
			p.HasIdentity = Proven
			p.Identity = cand
			break
		}
	}
	return p
}

// freeVars reports identifiers or array references other than a/b that
// make a combine unverifiable, or "" if there are none.
func freeVars(e lang.Expr) string {
	out := ""
	lang.Walk(e, func(x lang.Expr) {
		if out != "" {
			return
		}
		switch n := x.(type) {
		case *lang.Ident:
			if n.Name != "a" && n.Name != "b" {
				out = fmt.Sprintf("free variable %q", n.Name)
			}
		case *lang.IndexExpr:
			out = fmt.Sprintf("array reference %q", n.String())
		}
	})
	return out
}

// polyDegree returns the maximum degree of e in either variable, and
// whether e is polynomial (built from +, -, * and constants only).
func polyDegree(e lang.Expr) (int, bool) {
	switch x := e.(type) {
	case *lang.Num:
		return 0, true
	case *lang.Ident:
		return 1, true
	case *lang.BinExpr:
		dl, okl := polyDegree(x.L)
		dr, okr := polyDegree(x.R)
		if !okl || !okr {
			return 0, false
		}
		switch x.Op {
		case '+', '-':
			return max(dl, dr), true
		case '*':
			return dl + dr, true
		}
		return 0, false
	case *lang.UnExpr:
		return polyDegree(x.X)
	default:
		return 0, false
	}
}

// reorderSensitive reports whether the combine's float evaluation can
// depend on grouping even when the real algebra is associative: any
// rounding arithmetic (+ - * /) makes it so; pure min/max trees do not.
func reorderSensitive(e lang.Expr) bool {
	sensitive := false
	lang.Walk(e, func(x lang.Expr) {
		switch n := x.(type) {
		case *lang.BinExpr, *lang.UnExpr:
			sensitive = true
		case *lang.CallExpr:
			if n.Fn != "min" && n.Fn != "max" {
				sensitive = true
			}
		}
	})
	return sensitive
}
