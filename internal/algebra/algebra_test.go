package algebra

import (
	"math"
	"testing"

	"irred/internal/lang"
)

// combine parses `x[ia[i]] = rhs` and runs ExtractUpdate on it with a
// varying() that treats the loop variable i (and anything containing it)
// as iteration-varying.
func extract(t *testing.T, rhs string) (*Update, error) {
	t.Helper()
	src := `
param n, m
array ia[n] int
array x[m]
array w[n]
array y[n]
loop i = 0, n {
    t = w[i] * 2
    x[ia[i]] = ` + rhs + `
}
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	l := prog.Loops[0]
	st := l.Body[len(l.Body)-1]
	varying := func(e lang.Expr) bool {
		found := false
		lang.Walk(e, func(x lang.Expr) {
			if id, ok := x.(*lang.Ident); ok && (id.Name == l.Var || id.Name == "t") {
				found = true
			}
		})
		return found
	}
	return ExtractUpdate(st.Target, st.RHS, varying)
}

func TestExtractStructural(t *testing.T) {
	cases := []struct {
		rhs    string
		kind   Kind
		negate bool
	}{
		{"x[ia[i]] + w[i]", Add, false},
		{"w[i] + x[ia[i]]", Add, false},
		{"x[ia[i]] - w[i]", Add, true},
		{"x[ia[i]] * w[i]", Mul, false},
		{"min(x[ia[i]], w[i])", Min, false},
		{"max(w[i], x[ia[i]])", Max, false},
		{"x[ia[i]] + 2", Add, false}, // constant contribution is still additive
	}
	for _, c := range cases {
		upd, err := extract(t, c.rhs)
		if err != nil {
			t.Errorf("%s: %v", c.rhs, err)
			continue
		}
		if upd.Op.Kind != c.kind || upd.Negate != c.negate {
			t.Errorf("%s: got kind %v negate %v, want %v %v", c.rhs, upd.Op.Kind, upd.Negate, c.kind, c.negate)
		}
		if len(upd.Acc) == 0 {
			t.Errorf("%s: no accumulator occurrences recorded", c.rhs)
		}
	}
}

func TestExtractGeneric(t *testing.T) {
	upd, err := extract(t, "x[ia[i]] * w[i] + x[ia[i]] + w[i]")
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	if upd.Op.Kind != Custom {
		t.Fatalf("kind = %v, want Custom", upd.Op.Kind)
	}
	if got, want := upd.Op.Expr.String(), "(((a * b) + a) + b)"; got != want {
		t.Fatalf("combine = %s, want %s", got, want)
	}
	p := CheckExpr(upd.Op.Expr)
	if p.Assoc != Proven || p.Comm != Proven {
		t.Fatalf("a*b+a+b: assoc=%v comm=%v, want proven (props: %+v)", p.Assoc, p.Comm, p)
	}
	if p.HasIdentity != Proven || p.Identity != 0 {
		t.Fatalf("a*b+a+b: identity = %v/%g, want proven 0", p.HasIdentity, p.Identity)
	}
	if deg, poly := polyDegree(upd.Op.Expr); !poly || deg != 2 {
		t.Fatalf("degree = %d, poly = %v", deg, poly)
	}
}

func TestExtractErrors(t *testing.T) {
	if _, err := extract(t, "w[i]"); err != ErrNoAcc {
		t.Errorf("overwrite: err = %v, want ErrNoAcc", err)
	}
	if _, err := extract(t, "x[ia[i]] * 0.5 + w[i] + y[i]"); err == nil {
		t.Errorf("two distinct contributions: expected error")
	}
	// A parameter inside a *compound* combine is an unknown constant the
	// checker cannot bound.
	if _, err := extract(t, "x[ia[i]] * n + w[i]"); err == nil {
		t.Errorf("parameter in combine: expected error")
	}
}

func TestExtractParamStructural(t *testing.T) {
	// `x[ia[i]] + n` hits the structural case (additive, acc on one
	// side) in the happy path only if the other side is acc-free; it is,
	// so this is Add with contribution n.
	upd, err := extract(t, "n + x[ia[i]]")
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	if upd.Op.Kind != Add {
		t.Fatalf("kind = %v, want Add", upd.Op.Kind)
	}
}

func TestCheckExprNonAssociative(t *testing.T) {
	// a*0.5 + b — the decayed accumulation: commutative in no argument
	// order sense, not associative.
	upd, err := extract(t, "x[ia[i]] * 0.5 + w[i]")
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	p := CheckExpr(upd.Op.Expr)
	if p.Assoc != Disproven {
		t.Fatalf("a*0.5+b: assoc = %v, want disproven", p.Assoc)
	}
	if p.AssocCex == "" {
		t.Fatalf("a*0.5+b: no counterexample recorded")
	}
}

func TestCheckExprDivision(t *testing.T) {
	upd, err := extract(t, "x[ia[i]] / (1 + w[i])")
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	p := CheckExpr(upd.Op.Expr)
	if p.Assoc != Disproven && p.Comm != Disproven {
		t.Fatalf("a/(1+b): expected assoc or comm disproven, got %+v", p)
	}
}

func TestCheckExprMinCall(t *testing.T) {
	e := &lang.CallExpr{Fn: "min", Args: []lang.Expr{&lang.Ident{Name: "a"}, &lang.Ident{Name: "b"}}}
	p := CheckExpr(e)
	if p.Assoc != Proven || p.Comm != Proven || p.Idem != Proven {
		t.Fatalf("min(a,b): %+v", p)
	}
	if p.HasIdentity != Proven || !math.IsInf(p.Identity, 1) {
		t.Fatalf("min(a,b): identity %v/%g, want +Inf", p.HasIdentity, p.Identity)
	}
	if p.ReorderSensitive {
		t.Fatalf("min(a,b): marked reorder-sensitive")
	}
}

func TestCheckExprFreeVariable(t *testing.T) {
	e := &lang.BinExpr{Op: '+', L: &lang.Ident{Name: "a"}, R: &lang.Ident{Name: "q"}}
	p := CheckExpr(e)
	if p.Assoc != Unknown || p.HasIdentity != Unknown {
		t.Fatalf("free variable: %+v", p)
	}
}

func TestTableProps(t *testing.T) {
	for _, k := range []Kind{Add, Mul, Min, Max} {
		p := TableProps(k)
		if p.Assoc != Proven || p.Comm != Proven || p.HasIdentity != Proven {
			t.Errorf("%v: table entry incomplete: %+v", k, p)
		}
		op := Op{Kind: k}
		id, ok := op.Identity()
		if !ok || id != p.Identity {
			t.Errorf("%v: Op.Identity %g/%v != table %g", k, id, ok, p.Identity)
		}
		// The identity must actually be an identity under Fold.
		for _, v := range []float64{-2, 0, 1.5, 7} {
			if op.Fold(v, id) != v || op.Fold(id, v) != v {
				t.Errorf("%v: %g is not an identity for %g", k, id, v)
			}
		}
	}
	if p := TableProps(Min); p.Idem != Proven || p.ReorderSensitive {
		t.Errorf("min: %+v", p)
	}
	if p := TableProps(Add); p.Idem != Disproven || !p.ReorderSensitive {
		t.Errorf("add: %+v", p)
	}
}

func TestFoldCustomMatchesSequential(t *testing.T) {
	upd, err := extract(t, "x[ia[i]] * w[i] + x[ia[i]] + w[i]")
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	op := upd.Op
	// Folding the combine must reproduce the source statement's
	// left-to-right evaluation bitwise.
	for _, a := range []float64{0, 0.1, -3.75, 1e9} {
		for _, b := range []float64{0, 0.3, 2.5, -7} {
			want := a*b + a + b
			if got := op.Fold(a, b); got != want {
				t.Fatalf("Fold(%g,%g) = %g, want %g", a, b, got, want)
			}
		}
	}
}
