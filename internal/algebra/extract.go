package algebra

import (
	"errors"
	"fmt"

	"irred/internal/lang"
)

// Update is the normalized form of an irregular self-update
//
//	acc <- fold(acc, contrib)
//
// extracted from `x[ia[i]] = rhs`. For builtin kinds the fold is the
// builtin operator (with Negate folding a-b as a+(-b)); for Custom kinds
// Op.Expr is the combine tree over "a" (accumulator) and "b"
// (contribution), preserving the source expression's shape so evaluating
// the combine reproduces the sequential statement bitwise.
type Update struct {
	Op      Op
	Contrib lang.Expr
	Negate  bool // Add only: contribution entered as acc - contrib
	// Acc lists the accumulator occurrences inside the original RHS, so
	// callers can exempt them from read-set bookkeeping.
	Acc []*lang.IndexExpr
}

// ErrNoAcc marks an irregular `=` write whose RHS never reads the
// target: a plain overwrite, not an update — a static race under any
// parallel schedule.
var ErrNoAcc = errors.New("right-hand side never reads the target element")

// ExtractUpdate decomposes the RHS of an irregular `=` statement into
// accumulator-fold form. varying reports whether an expression depends
// on the iteration (loop variable or loop-local scalar); the extracted
// contribution must be one iteration-varying subexpression (possibly
// repeated), and everything else constants or builtin calls.
func ExtractUpdate(target *lang.IndexExpr, rhs lang.Expr, varying func(lang.Expr) bool) (*Update, error) {
	key := target.String()
	var accs []*lang.IndexExpr
	lang.Walk(rhs, func(e lang.Expr) {
		if ix, ok := e.(*lang.IndexExpr); ok && ix.String() == key {
			accs = append(accs, ix)
		}
	})
	if len(accs) == 0 {
		return nil, ErrNoAcc
	}
	isAcc := func(e lang.Expr) bool {
		for _, a := range accs {
			if e == lang.Expr(a) {
				return true
			}
		}
		return false
	}
	containsAcc := func(e lang.Expr) bool {
		found := false
		lang.Walk(e, func(x lang.Expr) {
			if isAcc(x) {
				found = true
			}
		})
		return found
	}

	// Structural decomposition: the common shapes map straight onto a
	// builtin operator, no property check needed. The contribution side
	// need not be iteration-varying here (x[ia[i]] = x[ia[i]] + c is
	// still an additive reduction).
	switch x := rhs.(type) {
	case *lang.BinExpr:
		var kind Kind
		ok := false
		switch x.Op {
		case '+':
			kind, ok = Add, true
		case '*':
			kind, ok = Mul, true
		}
		if ok {
			if isAcc(x.L) && !containsAcc(x.R) {
				return &Update{Op: Op{Kind: kind}, Contrib: x.R, Acc: accs}, nil
			}
			if isAcc(x.R) && !containsAcc(x.L) {
				return &Update{Op: Op{Kind: kind}, Contrib: x.L, Acc: accs}, nil
			}
		}
		if x.Op == '-' && isAcc(x.L) && !containsAcc(x.R) {
			return &Update{Op: Op{Kind: Add}, Contrib: x.R, Negate: true, Acc: accs}, nil
		}
	case *lang.CallExpr:
		if (x.Fn == "min" || x.Fn == "max") && len(x.Args) == 2 {
			kind := Min
			if x.Fn == "max" {
				kind = Max
			}
			if isAcc(x.Args[0]) && !containsAcc(x.Args[1]) {
				return &Update{Op: Op{Kind: kind}, Contrib: x.Args[1], Acc: accs}, nil
			}
			if isAcc(x.Args[1]) && !containsAcc(x.Args[0]) {
				return &Update{Op: Op{Kind: kind}, Contrib: x.Args[0], Acc: accs}, nil
			}
		}
	}

	// Generic extraction: substitute accumulator occurrences with "a" and
	// every maximal acc-free iteration-varying subtree with "b". All "b"
	// candidates must be the same expression, and the residue must be
	// constants and builtin structure only — otherwise the combine has
	// free inputs the bounded checker cannot account for.
	var contrib lang.Expr
	var subErr error
	var sub func(e lang.Expr) lang.Expr
	sub = func(e lang.Expr) lang.Expr {
		if subErr != nil {
			return e
		}
		if isAcc(e) {
			return &lang.Ident{Name: "a", Pos: e.Position()}
		}
		if !containsAcc(e) && varying(e) {
			if contrib == nil {
				contrib = e
			} else if contrib.String() != e.String() {
				subErr = fmt.Errorf("two distinct iteration-varying contributions %s and %s", contrib, e)
			}
			return &lang.Ident{Name: "b", Pos: e.Position()}
		}
		switch x := e.(type) {
		case *lang.Num:
			return x
		case *lang.Ident:
			// Not varying and not the accumulator: a parameter — an
			// unknown constant the checker cannot bound.
			subErr = fmt.Errorf("combine references parameter %q", x.Name)
			return x
		case *lang.IndexExpr:
			// An invariant array read (constant subscripts): opaque.
			subErr = fmt.Errorf("combine references invariant array element %s", x)
			return x
		case *lang.BinExpr:
			return &lang.BinExpr{Op: x.Op, L: sub(x.L), R: sub(x.R), Pos: x.Pos}
		case *lang.UnExpr:
			return &lang.UnExpr{X: sub(x.X), Pos: x.Pos}
		case *lang.CallExpr:
			out := &lang.CallExpr{Fn: x.Fn, Pos: x.Pos}
			for _, a := range x.Args {
				out.Args = append(out.Args, sub(a))
			}
			return out
		default:
			subErr = fmt.Errorf("unsupported expression %s", e)
			return e
		}
	}
	combine := sub(rhs)
	if subErr != nil {
		return nil, fmt.Errorf("update of %s is not expressible as target (+) contribution: %v", key, subErr)
	}
	if contrib == nil {
		return nil, fmt.Errorf("update of %s has no iteration-varying contribution", key)
	}
	return &Update{Op: Op{Kind: Custom, Expr: combine}, Contrib: contrib, Acc: accs}, nil
}
