package dataflow

import (
	"strings"
	"testing"

	"irred/internal/lang"
)

func parse(t *testing.T, src string) *lang.Program {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

const eulerish = `
param num_edges, num_nodes
array ia[num_edges, 2] int
array x[num_nodes]
array y[num_edges]
array c[num_nodes]

loop i = 0, num_edges {
    t = y[i] * c[ia[i, 0]]
    x[ia[i, 0]] += t
    x[ia[i, 1]] -= t
}
`

func TestSymbolicProof(t *testing.T) {
	prog := parse(t, eulerish)
	res := AnalyzeProgram(prog, Options{})
	lf := res.Loops[0]

	// Without indirection content knowledge, y[i], c's outer subscript via
	// ia is unknown, but ia[i, 0] itself (subscripts i and 0) is proven.
	if lf.AllProven() {
		t.Fatal("loop must not be fully proven without indirection contents")
	}
	byRef := map[string][]Status{}
	for _, a := range lf.Accesses {
		byRef[a.Ref.String()+written(a.Write)] = append(byRef[a.Ref.String()+written(a.Write)], a.Status)
	}
	for ref, stats := range byRef {
		switch {
		case strings.HasPrefix(ref, "y[i]"), strings.HasPrefix(ref, "ia[i,"):
			for _, s := range stats {
				if s != Proven {
					t.Errorf("%s: want proven, got %v", ref, stats)
				}
			}
		case strings.HasPrefix(ref, "x["), strings.HasPrefix(ref, "c["):
			if stats[0] != Unknown {
				t.Errorf("%s: want unknown without contents, got %v", ref, stats)
			}
		}
	}
}

func written(w bool) string {
	if w {
		return " (write)"
	}
	return ""
}

func TestContentSeededProof(t *testing.T) {
	prog := parse(t, eulerish)
	// Contents of ia proven in [0, num_nodes) by a runtime scan with
	// concrete extents.
	opts := Options{
		Params:   map[string]int{"num_edges": 100, "num_nodes": 10},
		Contents: map[string]Interval{"ia": ScanInt32([]int32{0, 3, 9, 5})},
	}
	lf := AnalyzeLoop(prog, prog.Loops[0], opts)
	if !lf.AllProven() {
		t.Fatalf("expected full proof:\n%s", lf.Describe())
	}
	for _, a := range lf.Accesses {
		if !lf.RefProven(a.Ref) {
			t.Errorf("RefProven(%s) = false", a.Ref)
		}
	}

	// A content range that escapes the extent defeats the proof.
	opts.Contents["ia"] = ScanInt32([]int32{0, 10})
	lf = AnalyzeLoop(prog, prog.Loops[0], opts)
	if lf.AllProven() {
		t.Fatal("content value 10 >= num_nodes=10 must defeat the proof")
	}
}

func TestProvableOOB(t *testing.T) {
	src := `
param n
array x[n]
array y[n]

loop i = 0, n {
    x[i] += y[i + n]
}
`
	prog := parse(t, src)
	lf := AnalyzeLoop(prog, prog.Loops[0], Options{})
	var oob []Access
	for _, a := range lf.Accesses {
		if a.Status == OOB {
			oob = append(oob, a)
		}
	}
	if len(oob) != 1 || oob[0].Ref.Array != "y" {
		t.Fatalf("want exactly the y[i+n] access OOB, got %+v\n%s", oob, lf.Describe())
	}
}

func TestNegativeOOB(t *testing.T) {
	src := `
param n
array x[n]
array y[n]

loop i = 0, n {
    x[i] += y[i - n - 1]
}
`
	prog := parse(t, src)
	lf := AnalyzeLoop(prog, prog.Loops[0], Options{})
	// i - n - 1 is in [-n-1, -2]: entirely negative, provably OOB.
	found := false
	for _, a := range lf.Accesses {
		if a.Ref.Array == "y" && a.Status == OOB {
			found = true
		}
	}
	if !found {
		t.Fatalf("y[i-n-1] should be provably out of bounds\n%s", lf.Describe())
	}
}

func TestDeadStatements(t *testing.T) {
	src := `
param n
array x[n]
array y[n]
array col[n] int

loop i = 0, n {
    unused = y[i] + 1
    t = y[i] * 0
    u = t + 1
    x[col[i]] += t
    x[i] += y[i]
}
`
	prog := parse(t, src)
	lf := AnalyzeLoop(prog, prog.Loops[0], Options{})
	// Statement 1 (t = y[i]*0) feeds only the zero reduction at 3, which is
	// dead; u at 2 is never read; unused at 0 is never read. Statement 4 is
	// live.
	wantDead := []int{0, 1, 2, 3}
	if len(lf.Dead) != len(wantDead) {
		t.Fatalf("dead = %v, want %v\n%s", lf.Dead, wantDead, lf.Describe())
	}
	for i, d := range wantDead {
		if lf.Dead[i] != d {
			t.Fatalf("dead = %v, want %v", lf.Dead, wantDead)
		}
	}
	if len(lf.ZeroRed) != 1 || lf.ZeroRed[0] != 3 {
		t.Fatalf("zero reductions = %v, want [3]", lf.ZeroRed)
	}
	if lf.IsDead(4) {
		t.Fatal("x[i] += y[i] is live")
	}
}

func TestReachingDefs(t *testing.T) {
	src := `
param n
array x[n]
array y[n]

loop i = 0, n {
    t = y[i]
    t = t + 1
    x[i] += t
}
`
	prog := parse(t, src)
	lf := AnalyzeLoop(prog, prog.Loops[0], Options{})
	if got := lf.Reaching[1]["t"]; got != 0 {
		t.Errorf("t at stmt 1 reached by def %d, want 0", got)
	}
	if got := lf.Reaching[2]["t"]; got != 1 {
		t.Errorf("t at stmt 2 reached by def %d, want 1", got)
	}
	// A read before any definition reaches nothing.
	src2 := `
param n
array x[n]

loop i = 0, n {
    x[i] += t
    t = 1
}
`
	prog2 := parse(t, src2)
	lf2 := AnalyzeLoop(prog2, prog2.Loops[0], Options{})
	if got := lf2.Reaching[0]["t"]; got != -1 {
		t.Errorf("use-before-def should reach -1, got %d", got)
	}
}

func TestInvariants(t *testing.T) {
	src := `
param n, m
array x[n]
array y[n]
array w[m]

loop i = 0, n {
    s = w[0] * 2 + m
    x[i] += y[i] * s
}
`
	prog := parse(t, src)
	lf := AnalyzeLoop(prog, prog.Loops[0], Options{})
	if len(lf.Invariant) != 1 {
		t.Fatalf("invariants = %v, want exactly the RHS of s", lf.Invariant)
	}
	inv := lf.Invariant[0]
	if inv.Stmt != 0 {
		t.Errorf("invariant at stmt %d, want 0", inv.Stmt)
	}
	if got := inv.Expr.String(); !strings.Contains(got, "w[0]") {
		t.Errorf("invariant expr = %s", got)
	}
	// y[i] * s varies with i: not invariant; s alone is a bare ident (not
	// reported); and the loop writing w would kill w[0]'s invariance.
}

func TestInvariantKilledByWrite(t *testing.T) {
	src := `
param n
array x[n]
array y[n]

loop i = 0, n {
    s = x[0] + 1
    x[i] = y[i] + s
}
`
	prog := parse(t, src)
	lf := AnalyzeLoop(prog, prog.Loops[0], Options{})
	if len(lf.Invariant) != 0 {
		t.Fatalf("x is written by the loop; x[0]+1 is not invariant: %v", lf.Invariant)
	}
}

func TestStaleRead(t *testing.T) {
	src := `
param n
array a[n]
array b[n]
array half[1] int

loop i = 0, 8 {
    a[i] = b[i]
}
loop j = 16, 32 {
    b[j] += a[j]
}
`
	prog := parse(t, src)
	res := AnalyzeProgram(prog, Options{})
	if len(res.Stale) != 1 {
		t.Fatalf("stale reads = %+v, want exactly a[j] in loop 1", res.Stale)
	}
	s := res.Stale[0]
	if s.Array != "a" || s.Loop != 1 {
		t.Fatalf("stale read = %+v", s)
	}
	// b is read in loop 0 before any write: input data, not stale.
}

func TestStaleReadSilentForInputs(t *testing.T) {
	prog := parse(t, eulerish)
	res := AnalyzeProgram(prog, Options{})
	if len(res.Stale) != 0 {
		t.Fatalf("no stale reads expected for pure-input program: %+v", res.Stale)
	}
}

func TestScalarChainProof(t *testing.T) {
	// A subscript routed through a scalar still proves.
	src := `
param n
array x[n]
array y[n]

loop i = 0, n {
    x[i] += y[i] * 2 - y[i]
}
`
	prog := parse(t, src)
	lf := AnalyzeLoop(prog, prog.Loops[0], Options{})
	if !lf.AllProven() {
		t.Fatalf("all direct [i] accesses should be proven:\n%s", lf.Describe())
	}
	f := lf.Proof(nil)
	if !f.AllProven {
		t.Fatal("Facts.AllProven should mirror the loop facts")
	}
	rep := f.Report()
	if !strings.Contains(rep, "complete") {
		t.Errorf("report should announce a complete proof:\n%s", rep)
	}
}

func TestProveIndirection(t *testing.T) {
	if !ProveIndirection(10, []int32{0, 9, 4}) {
		t.Error("contents within range should prove")
	}
	if ProveIndirection(10, []int32{0, 10}) {
		t.Error("content == extent must not prove")
	}
	if ProveIndirection(10, []int32{-1, 3}) {
		t.Error("negative content must not prove")
	}
	if ProveIndirection(0, []int32{}) {
		t.Error("zero extent proves nothing")
	}
	if f := IndirectionFacts("k", 10, []int32{0, 3}); f == nil || !f.IndProven || f.NumElems != 10 {
		t.Errorf("IndirectionFacts: %+v", f)
	}
	if f := IndirectionFacts("k", 10, []int32{11}); f != nil {
		t.Error("IndirectionFacts must be nil for out-of-range contents")
	}
}
