package dataflow

import (
	"strings"
	"testing"

	"irred/internal/algebra"
	"irred/internal/lang"
)

func legalize(t *testing.T, src string) []*License {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	lics := LegalizeProgram(prog, Options{})
	for _, lic := range lics {
		if err := lic.Verify(); err != nil {
			t.Fatalf("ledger self-check: %v\n%s", err, lic.Report())
		}
	}
	return lics
}

const addLoop = `
param n, m
array ia[n] int
array x[m]
array w[n]
loop i = 0, n {
    x[ia[i]] += w[i]
}
`

func TestLicenseBuiltinAdd(t *testing.T) {
	lic := legalize(t, addLoop)[0]
	if lic.Level() != "TreeFoldLegal" {
		t.Fatalf("level = %s, want TreeFoldLegal\n%s", lic.Level(), lic.Report())
	}
	if !lic.Rotation || !lic.Tile || !lic.TreeFold {
		t.Fatalf("grants: %+v", lic)
	}
	if !lic.ReorderSensitive {
		t.Fatalf("float add must be reorder-sensitive")
	}
	if len(lic.Ops) != 1 || lic.Ops[0].Op.Kind != algebra.Add {
		t.Fatalf("ops: %+v", lic.Ops)
	}
}

func TestLicenseMinFold(t *testing.T) {
	lic := legalize(t, `
param n, m
array e[n] int
array best[m]
array w[n]
loop i = 0, n {
    best[e[i]] min= w[i]
}
`)[0]
	if lic.Level() != "TreeFoldLegal" {
		t.Fatalf("level = %s\n%s", lic.Level(), lic.Report())
	}
	if lic.ReorderSensitive {
		t.Fatalf("min is IEEE-exact; must not be reorder-sensitive")
	}
	if lic.Ops[0].Props.Idem != algebra.Proven {
		t.Fatalf("min must be idempotent: %+v", lic.Ops[0].Props)
	}
	// best is never pre-written and min's identity is +inf: IRL019 domain.
	if !lic.Ops[0].IdentSuspect {
		t.Fatalf("expected IdentSuspect for unseeded min reduction")
	}
}

func TestLicenseIdentSuspectClearedByInit(t *testing.T) {
	lic := legalize(t, `
param n, m
array e[n] int
array best[m]
array w[n]
loop j = 0, m {
    best[j] = 1000000
}
loop i = 0, n {
    best[e[i]] min= w[i]
}
`)[1]
	if lic.Ops[0].IdentSuspect {
		t.Fatalf("init loop writes best; IdentSuspect must be clear")
	}
}

func TestLicenseGeneralUpdate(t *testing.T) {
	lic := legalize(t, `
param n, m
array ia[n] int
array x[m]
array w[n]
loop i = 0, n {
    x[ia[i]] = x[ia[i]] * w[i] + x[ia[i]] + w[i]
}
`)[0]
	if lic.Level() != "TreeFoldLegal" {
		t.Fatalf("a*b+a+b: level = %s\n%s", lic.Level(), lic.Report())
	}
	ol := lic.Ops[0]
	if ol.Op.Kind != algebra.Custom {
		t.Fatalf("kind = %v", ol.Op.Kind)
	}
	if id, ok := ol.Op.Identity(); !ok || id != 0 {
		t.Fatalf("identity = %g/%v, want 0", id, ok)
	}
	if !strings.Contains(ol.Props.Proof, "polynomial identity") {
		t.Fatalf("degree-2 combine deserves a polynomial proof, got %q", ol.Props.Proof)
	}
}

func TestLicenseNonAssociativeRefused(t *testing.T) {
	lic := legalize(t, `
param n, m
array ia[n] int
array x[m]
array w[n]
loop i = 0, n {
    x[ia[i]] = x[ia[i]] * 0.5 + w[i]
}
`)[0]
	if lic.Level() != "Illegal" {
		t.Fatalf("a*0.5+b: level = %s\n%s", lic.Level(), lic.Report())
	}
	if lic.Rotation || lic.Tile || lic.TreeFold {
		t.Fatalf("grants leaked: %+v", lic)
	}
	if len(lic.Refusals) == 0 || lic.Refusals[0].Cex == "" {
		t.Fatalf("expected a refusal with counterexample: %+v", lic.Refusals)
	}
}

func TestLicenseConflictingWrite(t *testing.T) {
	lic := legalize(t, `
param n, m
array ja[n] int
array z[m]
array w[n]
loop i = 0, n {
    z[ja[i]] = w[i]
}
`)[0]
	if !lic.Conflicting || lic.Level() != "Illegal" {
		t.Fatalf("overwrite: %s\n%s", lic.Level(), lic.Report())
	}
	if len(lic.Conflicts) != 1 {
		t.Fatalf("conflicts: %+v", lic.Conflicts)
	}
}

func TestLicenseOrderedDependence(t *testing.T) {
	// x[i+1] = x[i] is a loop-carried flow dependence: no schedule.
	lic := legalize(t, `
param n
array x[n]
loop i = 0, n {
    x[i + 1] = x[i]
}
`)[0]
	if lic.Rotation || lic.Tile {
		t.Fatalf("ordered dependence must refuse parallel schedules\n%s", lic.Report())
	}
	if lic.Level() != "Illegal" {
		t.Fatalf("level = %s", lic.Level())
	}
}

func TestLicenseIterationLocal(t *testing.T) {
	lic := legalize(t, `
param n
array x[n]
array y[n]
loop i = 0, n {
    x[i] = y[i] * 2
}
`)[0]
	if lic.Level() != "IterationLocal" {
		t.Fatalf("level = %s\n%s", lic.Level(), lic.Report())
	}
}

func TestLicenseMixedOpsConflict(t *testing.T) {
	lic := legalize(t, `
param n, m
array ia[n] int
array x[m]
array w[n]
loop i = 0, n {
    x[ia[i]] += w[i]
    x[ia[i]] *= w[i]
}
`)[0]
	if !lic.Conflicting {
		t.Fatalf("mixed += and *= on one array must conflict\n%s", lic.Report())
	}
}

func TestLicenseMeet(t *testing.T) {
	full := legalize(t, addLoop)[0]
	none := legalize(t, `
param n, m
array ja[n] int
array z[m]
array w[n]
loop i = 0, n {
    z[ja[i]] = w[i]
}
`)[0]
	met := Meet(none, full)
	if met.Rotation || met.Tile || met.TreeFold || !met.Conflicting {
		t.Fatalf("Meet must not widen: %+v", met)
	}
	if Meet(nil, full) != full {
		t.Fatalf("nil parent must pass through")
	}
	same := Meet(full, full)
	if !same.TreeFold || same.Conflicting {
		t.Fatalf("Meet with equal parent lost grants: %+v", same)
	}
}

func TestLicenseReportMentionsLedger(t *testing.T) {
	lic := legalize(t, addLoop)[0]
	rep := lic.Report()
	for _, want := range []string{"TreeFoldLegal", "[grant]", "operator table", "rotation: granted"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestLicenseVerifyCatchesTampering(t *testing.T) {
	lic := legalize(t, `
param n, m
array ia[n] int
array x[m]
array w[n]
loop i = 0, n {
    x[ia[i]] = x[ia[i]] * 0.5 + w[i]
}
`)[0]
	lic.TreeFold, lic.Tile, lic.Rotation = true, true, true
	if err := lic.Verify(); err == nil {
		t.Fatalf("tampered license must fail verification")
	}
}
