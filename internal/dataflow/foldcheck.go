package dataflow

import (
	"fmt"
	"sort"

	"irred/internal/algebra"
)

// W6 — fold-schedule equivalence. The legality pass licenses two
// parallel fold orders for a reduction element:
//
//   - rotation: each processor pre-groups its contributions (in its
//     iteration order) into a buffer partial, and the partials fold into
//     the element in phase order — the order in which each processor
//     owns the element's portion;
//   - tree-fold: each worker folds its contributions into a private
//     identity-seeded accumulator, and the accumulators fold pairwise in
//     a binary tree.
//
// For integral data and the builtin operators both orders are exact, so
// they must agree *bitwise* with the sequential fold. CheckFoldStrategy
// verifies that, abstractly, for one ownership strategy: every element
// (one per portion), every processor contributing a deterministic pair
// of integral values. A violation means the pre-grouping or the phase
// order breaks the algebra — exactly the bug class W1–W5 cannot see.

// foldOps are the builtin operators checked. Mul uses a restricted value
// set (see contribution) so products stay exactly representable.
var foldOps = []algebra.Kind{algebra.Add, algebra.Mul, algebra.Min, algebra.Max}

// contribution is the j-th integral value processor proc feeds into
// element e. Deterministic, spread over negatives and positives; for Mul
// the values stay in {1, 2} so that up to 2*P contributions at P <= 8
// remain exactly representable (2^16 << 2^53).
func contribution(kind algebra.Kind, e, proc, j int) float64 {
	if kind == algebra.Mul {
		return float64(1 + (e+proc+j)%2)
	}
	return float64((e*31+proc*7+j*3)%11 - 5)
}

// seed is the element's initial value.
func seed(kind algebra.Kind) float64 {
	switch kind {
	case algebra.Mul:
		return 2
	case algebra.Min:
		return 4
	case algebra.Max:
		return -4
	default:
		return 3
	}
}

// CheckFoldStrategy verifies rotation-order and tree-order folds against
// the sequential fold for one ownership strategy and one operator,
// bitwise. Each processor contributes perProc values per element, in
// global iteration order proc-major (a block distribution of
// iterations).
func CheckFoldStrategy(p, k int, own Ownership, kind algebra.Kind) []Violation {
	const maxViolations = 32
	const perProc = 2
	var out []Violation
	report := func(format string, args ...any) {
		if len(out) < maxViolations {
			out = append(out, Violation{P: p, K: k, Kind: "W6", Msg: fmt.Sprintf(format, args...)})
		}
	}
	op := algebra.Op{Kind: kind}
	ident, ok := op.Identity()
	if !ok {
		report("operator %s has no identity; fold schedules need one", op)
		return out
	}
	P := own.Procs()
	nph := own.Phases()
	for e := 0; e < nph; e++ { // one element per portion
		// Sequential: the element folds every contribution in global
		// iteration order.
		x := seed(kind)
		for proc := 0; proc < P; proc++ {
			for j := 0; j < perProc; j++ {
				x = op.Fold(x, contribution(kind, e, proc, j))
			}
		}

		// Per-processor partials, each seeded with the identity and folded
		// in the processor's own iteration order — the buffer (rotation)
		// and private-accumulator (tree) pre-grouping alike.
		partial := make([]float64, P)
		for proc := 0; proc < P; proc++ {
			partial[proc] = ident
			for j := 0; j < perProc; j++ {
				partial[proc] = op.Fold(partial[proc], contribution(kind, e, proc, j))
			}
		}

		// Rotation order: processors fold into the element during the
		// phase in which they own its portion.
		order := make([]int, P)
		for proc := range order {
			order[proc] = proc
		}
		sort.Slice(order, func(i, j int) bool {
			return own.PhaseOfPortion(order[i], e) < own.PhaseOfPortion(order[j], e)
		})
		for i := 1; i < P; i++ {
			if own.PhaseOfPortion(order[i-1], e) == own.PhaseOfPortion(order[i], e) {
				report("element %d: processors %d and %d own its portion in the same phase", e, order[i-1], order[i])
			}
		}
		rot := seed(kind)
		for _, proc := range order {
			rot = op.Fold(rot, partial[proc])
		}

		// Tree order: binary fold over the partials, then into the element.
		tree := append([]float64(nil), partial...)
		for stride := 1; stride < P; stride *= 2 {
			for i := 0; i+stride < P; i += 2 * stride {
				tree[i] = op.Fold(tree[i], tree[i+stride])
			}
		}
		tf := op.Fold(seed(kind), tree[0])

		if rot != x {
			report("op %s element %d: rotation fold %g != sequential %g", op, e, rot, x)
		}
		if tf != x {
			report("op %s element %d: tree fold %g != sequential %g", op, e, tf, x)
		}
	}
	return out
}

// ProveAllFold exhausts every strategy with 1 <= P <= maxP and
// 1 <= k <= maxK over every builtin operator, checking the production
// ownership map's fold orders. Empty violations means rotation and
// tree-fold are bitwise-equal to the sequential fold across the whole
// bounded space.
func ProveAllFold(maxP, maxK int) (checked int, violations []Violation) {
	for p := 1; p <= maxP; p++ {
		for k := 1; k <= maxK; k++ {
			for _, kind := range foldOps {
				violations = append(violations, CheckFoldStrategy(p, k, ConfigOwnership(p, k), kind)...)
				checked++
			}
		}
	}
	return checked, violations
}
