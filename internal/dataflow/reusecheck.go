package dataflow

import (
	"bytes"
	"fmt"

	"irred/internal/inspector"
	"irred/internal/lang"
)

// W8: the reuse model check. ProveReuse argues symbolically that two
// loops receive identical schedules; this check discharges the claim by
// brute force. For a family of concrete multi-loop programs it runs the
// prover, then for EVERY ownership strategy P <= maxP, k <= maxK and
// both iteration distributions it materializes the indirection contents
// as seen at each loop's inspection time (applying the program's
// intervening writes) and inspects per-loop from scratch:
//
//	W8 reuse soundness — every granted pair must produce byte-identical
//	                     schedules on every processor, and every
//	                     stale-refused pair whose contents the
//	                     intervening write actually changed must NOT.
//
// A prover bug that grants across a content change, or inspector
// nondeterminism that breaks content-addressed sharing, surfaces here
// as a violation naming the strategy and the loop pair.

// reuseScenario is one concrete program plus the ground-truth
// indirection contents visible to each loop's inspection. The mutation
// in indAt mirrors the program's own intervening writes; the prover
// sees only the source.
type reuseScenario struct {
	name string
	src  string
	// wantGrants and wantStale pin the prover's verdict per scenario so
	// the brute-force half cannot pass vacuously on an empty license.
	wantGrants int
	wantStale  int
	// indAt returns the indirection columns (signature order) a fresh
	// inspection of loop `loop` would consume, for ne iterations over n
	// elements.
	indAt func(loop, ne, n int) [][]int32
}

func baseRow(ne, n int) []int32 {
	row := make([]int32, ne)
	for i := range row {
		row[i] = int32((i*7 + 3) % n)
	}
	return row
}

func reuseScenarios() []reuseScenario {
	const rewired = 0 // the boundary loops pin row[j] to element 0
	return []reuseScenario{
		{
			// The CG shape: two sweeps over the same row column into
			// different accumulators. One inspection serves both.
			name: "cg-chain",
			src: `param ne, n
array row[ne] int
array y[ne]
array q[n]
array z[n]
loop i = 0, ne { q[row[i]] += y[i] }
loop i = 0, ne { z[row[i]] += y[i] }
loop i = 0, ne { q[row[i]] += z[row[i]] * y[i] }`,
			wantGrants: 2,
			indAt: func(loop, ne, n int) [][]int32 {
				return [][]int32{baseRow(ne, n)}
			},
		},
		{
			// The euler rewire shape: a boundary loop rewrites part of
			// the indirection between two otherwise identical sweeps.
			name: "rewire",
			src: `param ne, n, nb
array row[ne] int
array y[ne]
array q[n]
loop i = 0, ne { q[row[i]] += y[i] }
loop j = 0, nb { row[j] = 0 }
loop i = 0, ne { q[row[i]] += y[i] }`,
			wantStale: 1,
			indAt: func(loop, ne, n int) [][]int32 {
				row := baseRow(ne, n)
				if loop == 2 { // after `row[j] = 0` over [0, nb)
					for j := 0; j < ne/2; j++ {
						row[j] = rewired
					}
				}
				return [][]int32{row}
			},
		},
	}
}

// scenarioParams binds the scenario's symbolic extents: chosen so every
// portion of every strategy in the bounded space is non-empty.
func scenarioParams(maxP, maxK int) (ne, n int, params map[string]int) {
	n = maxP*maxK*3 + 1 // a few elements per portion, plus a remainder
	ne = 4 * n
	return ne, n, map[string]int{"ne": ne, "n": n, "nb": ne / 2}
}

// inspectAll runs the light inspector per processor and serializes the
// result — the byte-level identity the runtime's content-addressed
// schedule sharing relies on.
func inspectAll(cfg inspector.Config, ind [][]int32) ([]byte, error) {
	var buf bytes.Buffer
	for p := 0; p < cfg.P; p++ {
		s, err := inspector.Light(cfg, p, ind...)
		if err != nil {
			return nil, err
		}
		if _, err := s.WriteTo(&buf); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// CheckReuseStrategy brute-force checks one scenario under one
// (P, k, dist) strategy.
func CheckReuseStrategy(p, k int, dist inspector.Dist, sc reuseScenario) []Violation {
	const maxViolations = 32
	var out []Violation
	report := func(format string, args ...any) {
		if len(out) < maxViolations {
			out = append(out, Violation{P: p, K: k, Kind: "W8", Msg: fmt.Sprintf(format, args...)})
		}
	}

	prog, err := lang.Parse(sc.src)
	if err != nil {
		report("%s: scenario does not parse: %v", sc.name, err)
		return out
	}
	ne, n, params := scenarioParams(8, 4)
	rl := ProveReuse(prog, Options{Params: params})
	if err := rl.Verify(); err != nil {
		report("%s: license fails its own Verify: %v", sc.name, err)
		return out
	}
	if len(rl.Grants) != sc.wantGrants {
		report("%s: prover issued %d grant(s), scenario expects %d", sc.name, len(rl.Grants), sc.wantGrants)
	}
	stale := 0
	for _, r := range rl.Refusals {
		if r.Stale {
			stale++
		}
	}
	if stale != sc.wantStale {
		report("%s: prover issued %d stale refusal(s), scenario expects %d", sc.name, stale, sc.wantStale)
	}

	cfg := inspector.Config{P: p, K: k, NumIters: ne, NumElems: n, Dist: dist}
	sched := func(loop int) []byte {
		b, err := inspectAll(cfg, sc.indAt(loop, ne, n))
		if err != nil {
			report("%s: loop %d fails to inspect: %v", sc.name, loop, err)
			return nil
		}
		return b
	}
	for _, g := range rl.Grants {
		from, to := sched(g.From), sched(g.To)
		if from == nil || to == nil {
			continue
		}
		if !bytes.Equal(from, to) {
			report("%s: granted reuse %d→%d but brute-force schedules differ (%d vs %d bytes)",
				sc.name, g.From, g.To, len(from), len(to))
		}
	}
	for _, r := range rl.Refusals {
		if !r.Stale {
			continue
		}
		from, to := sched(r.From), sched(r.To)
		if from == nil || to == nil {
			continue
		}
		if bytes.Equal(from, to) {
			report("%s: stale refusal %d→%d but the intervening write left the schedules identical — scenario and program disagree",
				sc.name, r.From, r.To)
		}
	}
	return out
}

// ProveAllReuse exhausts every strategy with 1 <= P <= maxP and
// 1 <= k <= maxK under both distributions, for every scenario. Empty
// violations means every granted reuse in the bounded space is
// discharged against brute-force per-loop inspection.
func ProveAllReuse(maxP, maxK int) (checked int, violations []Violation) {
	for _, sc := range reuseScenarios() {
		for p := 1; p <= maxP; p++ {
			for k := 1; k <= maxK; k++ {
				for _, d := range []inspector.Dist{inspector.Block, inspector.Cyclic} {
					violations = append(violations, CheckReuseStrategy(p, k, d, sc)...)
					checked++
				}
			}
		}
	}
	return checked, violations
}
