package dataflow_test

import (
	"math"
	"testing"

	"irred/internal/algebra"
	"irred/internal/dataflow"
	"irred/internal/interp"
	"irred/internal/lang"
)

// FuzzDataflow throws arbitrary IRL source at the dataflow engine and
// checks its two load-bearing properties:
//
//  1. termination: the analysis returns on every parseable program (the
//     interval domain has no infinite ascending chains the single-pass
//     analysis could climb, and the dead/invariant passes are bounded);
//  2. soundness of proofs: compiling with range checks elided exactly for
//     the proven references never faults — a proven access that indexes
//     out of bounds would panic the evaluator, which the harness reports;
//  3. soundness of algebra: every property the legality pass claims
//     Proven about a reduction's combine is re-verified by brute force
//     over the checker's own evaluation domain — a claimed law with a
//     concrete counterexample means the prover lied, and a tampered
//     schedule license must always fail Verify.
//
// Programs are bound with fixed small parameters and adversarial
// indirection contents (including negative and too-large values), so the
// proof must hold because the ScanInt32 seeding observed the data, not
// because the data happens to be benign.
func FuzzDataflow(f *testing.F) {
	f.Add("param n, m\narray ia[n] int\narray x[m]\narray y[n]\nloop i = 0, n {\n    x[ia[i]] += y[i]\n}\n")
	f.Add("param n\narray ia[n] int\narray x[n]\narray y[n]\nloop i = 0, n {\n    t = y[i] * 0\n    x[ia[i]] += t\n}\n")
	f.Add("param n\narray ia[n] int\narray x[n]\narray y[n]\nloop i = 0, n {\n    x[ia[i]] += y[i + n]\n}\n")
	f.Add("param n, m\narray ia[n, 2] int\narray x[m]\narray y[n]\nloop i = 0, n {\n    x[ia[i, 0]] += y[i] * 0.5\n    x[ia[i, 1]] -= y[i]\n}\n")
	f.Add("param n\narray w[8]\narray x[8]\narray ia[n] int\nloop i = 0, 4 {\n    w[i] = i * 2.0\n}\nloop i = 0, n {\n    x[ia[i]] += w[0] * 3 + 1\n}\n")
	f.Add("loop i = 0, 3 {\n    x[i] = 1\n}\n")
	f.Add("param n\narray x[n]\nloop i = n, 0 {\n    x[i] = sqrt(abs(x[i]))\n}\n")
	f.Add("param n, m\narray e[n] int\narray best[m]\narray w[n]\nloop i = 0, n {\n    best[e[i]] min= w[i]\n}\n")
	f.Add("param n, m\narray ia[n] int\narray x[m]\narray w[n]\nloop i = 0, n {\n    x[ia[i]] *= w[i]\n    x[ia[i]] max= 0 - w[i]\n}\n")
	f.Add("param n, m\narray ia[n] int\narray x[m]\narray w[n]\nloop i = 0, n {\n    x[ia[i]] = x[ia[i]] * w[i] + x[ia[i]] + w[i]\n}\n")
	f.Add("param n, m\narray ia[n] int\narray x[m]\narray w[n]\nloop i = 0, n {\n    x[ia[i]] = x[ia[i]] * 0.5 + w[i]\n}\n")

	f.Fuzz(func(t *testing.T, src string) {
		prog, err := lang.Parse(src)
		if err != nil {
			return // not a program; nothing to analyze
		}

		env := interp.NewEnv(prog)
		for _, p := range prog.Params {
			env.SetParam(p, 6)
		}
		// Adversarial indirection contents: the pattern covers negative,
		// in-range and too-large values, so no access through an
		// indirection can be proven unless the scan really bounds it.
		for _, a := range prog.Arrays {
			if !a.Int {
				continue
			}
			size := 1
			for _, d := range a.Dims {
				if d.Param != "" {
					size *= 6
				} else {
					size *= d.Lit
				}
			}
			if size < 0 || size > 1<<12 {
				return
			}
			data := make([]int32, size)
			for i := range data {
				data[i] = int32(i%9 - 2)
			}
			if err := env.BindInt(a.Name, data); err != nil {
				return
			}
		}
		if err := env.Alloc(); err != nil {
			return
		}

		opts, _ := dataflow.EnvOptions(env.Params, env.Ints)

		// Property 1: the whole-program analysis terminates and keeps its
		// internal shapes consistent.
		res := dataflow.AnalyzeProgram(prog, opts)
		if len(res.Loops) != len(prog.Loops) {
			t.Fatalf("analysis lost loops: %d facts for %d loops", len(res.Loops), len(prog.Loops))
		}
		for li, lf := range res.Loops {
			zero := map[int]bool{}
			for _, idx := range lf.ZeroRed {
				zero[idx] = true
			}
			for i := 1; i < len(lf.Dead); i++ {
				if lf.Dead[i-1] >= lf.Dead[i] {
					t.Fatalf("loop %d: Dead not strictly sorted: %v", li, lf.Dead)
				}
			}
			for _, idx := range lf.ZeroRed {
				if !lf.IsDead(idx) {
					t.Fatalf("loop %d: zero reduction %d not in Dead", li, idx)
				}
			}
			_ = zero
		}

		// Property 2: run each loop's right-hand sides with checks elided
		// exactly where proven. An unsound proof panics the evaluator on
		// a raw out-of-range slice index.
		for li, l := range prog.Loops {
			lf := res.Loops[li]
			lo, hi, ok := constBounds(env, l)
			if !ok || hi-lo <= 0 || hi-lo > 64 {
				continue
			}
			exprs := make([]lang.Expr, len(l.Body))
			for si, st := range l.Body {
				exprs[si] = st.RHS
			}
			proof := lf.Proof(nil)
			code, err := env.CompileIterOpts(l, exprs, interp.CompileOpts{Unchecked: proof.RefProven})
			if err != nil {
				continue
			}
			out := make([]float64, len(exprs))
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("loop %d: proven access faulted at runtime (unsound proof): %v\nsource:\n%s", li, r, src)
					}
				}()
				for i := lo; i < hi; i++ {
					code.Eval(i, out)
				}
			}()
		}

		// Property 3: algebra soundness. Every license's ledger must
		// verify, and every algebraic law the prover claims Proven must
		// survive brute-force re-checking over the prover's own domain.
		// All evaluations are deterministic float arithmetic, identical to
		// the prover's, so this oracle can disagree only when the proof
		// logic itself is wrong — never from rounding flakiness.
		for li, lic := range dataflow.LegalizeProgram(prog, opts) {
			if err := lic.Verify(); err != nil {
				t.Fatalf("loop %d: license ledger failed self-check: %v\nsource:\n%s", li, err, src)
			}
			for _, ol := range lic.Ops {
				checkAlgebraClaims(t, src, ol)
			}
			// Tamper check: escalate every grant on a copy. If the real
			// license records refusals, conflicts, or unproven algebra,
			// the forged grants must be rejected by the ledger self-check.
			tampered := *lic
			tampered.Rotation, tampered.Tile, tampered.TreeFold = true, true, true
			mustFail := lic.Conflicting || len(lic.Refusals) > 0
			for _, ol := range lic.Ops {
				if ol.Props.Assoc != algebra.Proven || ol.Props.Comm != algebra.Proven || ol.Props.HasIdentity != algebra.Proven {
					mustFail = true
				}
			}
			if mustFail {
				if err := tampered.Verify(); err == nil {
					t.Fatalf("loop %d: tampered license (all grants forged) passed Verify\nsource:\n%s", li, src)
				}
			}
		}
	})
}

// oracleDomain mirrors the algebra checker's evaluation grid.
var oracleDomain = []float64{-3, -2, -1, 0, 1, 2, 3}

// checkAlgebraClaims re-verifies by brute force every property claimed
// Proven for one reduction operator. Triples with NaN intermediates are
// domain holes the prover also skips (it downgrades unrefuted claims to
// Unknown when holes exist), so they are skipped here too.
func checkAlgebraClaims(t *testing.T, src string, ol dataflow.OpLicense) {
	t.Helper()
	op := ol.Op
	fold := op.Fold
	ok := func(vs ...float64) bool {
		for _, v := range vs {
			if math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if ol.Props.Assoc == algebra.Proven {
		for _, a := range oracleDomain {
			for _, b := range oracleDomain {
				for _, c := range oracleDomain {
					ab, bc := fold(a, b), fold(b, c)
					l, r := fold(ab, c), fold(a, bc)
					if !ok(ab, bc, l, r) {
						continue
					}
					if l != r {
						t.Fatalf("claimed-associative op %s refuted: a=%g b=%g c=%g gives %g vs %g\nsource:\n%s", op, a, b, c, l, r, src)
					}
				}
			}
		}
	}
	if ol.Props.Comm == algebra.Proven {
		for _, a := range oracleDomain {
			for _, b := range oracleDomain {
				l, r := fold(a, b), fold(b, a)
				if !ok(l, r) {
					continue
				}
				if l != r {
					t.Fatalf("claimed-commutative op %s refuted: a=%g b=%g gives %g vs %g\nsource:\n%s", op, a, b, l, r, src)
				}
			}
		}
	}
	if ol.Props.Idem == algebra.Proven {
		for _, a := range oracleDomain {
			v := fold(a, a)
			if !ok(v) {
				continue
			}
			if v != a {
				t.Fatalf("claimed-idempotent op %s refuted: f(%g,%g) = %g\nsource:\n%s", op, a, a, v, src)
			}
		}
	}
	if id, has := op.Identity(); has {
		for _, a := range oracleDomain {
			l, r := fold(id, a), fold(a, id)
			if !ok(l, r) {
				continue
			}
			if l != a || r != a {
				t.Fatalf("claimed identity %g of op %s refuted: f(id,%g)=%g f(%g,id)=%g\nsource:\n%s", id, op, a, l, a, r, src)
			}
		}
	}
}

// constBounds resolves the loop bounds against the bound parameters.
func constBounds(env *interp.Env, l *lang.Loop) (int, int, bool) {
	get := func(e lang.Expr) (int, bool) {
		switch x := e.(type) {
		case *lang.Num:
			return int(x.Val), float64(int(x.Val)) == x.Val
		case *lang.Ident:
			v, ok := env.Params[x.Name]
			return v, ok
		}
		return 0, false
	}
	lo, ok1 := get(l.Lo)
	hi, ok2 := get(l.Hi)
	return lo, hi, ok1 && ok2
}
