package dataflow_test

import (
	"testing"

	"irred/internal/dataflow"
	"irred/internal/interp"
	"irred/internal/lang"
)

// FuzzDataflow throws arbitrary IRL source at the dataflow engine and
// checks its two load-bearing properties:
//
//  1. termination: the analysis returns on every parseable program (the
//     interval domain has no infinite ascending chains the single-pass
//     analysis could climb, and the dead/invariant passes are bounded);
//  2. soundness of proofs: compiling with range checks elided exactly for
//     the proven references never faults — a proven access that indexes
//     out of bounds would panic the evaluator, which the harness reports.
//
// Programs are bound with fixed small parameters and adversarial
// indirection contents (including negative and too-large values), so the
// proof must hold because the ScanInt32 seeding observed the data, not
// because the data happens to be benign.
func FuzzDataflow(f *testing.F) {
	f.Add("param n, m\narray ia[n] int\narray x[m]\narray y[n]\nloop i = 0, n {\n    x[ia[i]] += y[i]\n}\n")
	f.Add("param n\narray ia[n] int\narray x[n]\narray y[n]\nloop i = 0, n {\n    t = y[i] * 0\n    x[ia[i]] += t\n}\n")
	f.Add("param n\narray ia[n] int\narray x[n]\narray y[n]\nloop i = 0, n {\n    x[ia[i]] += y[i + n]\n}\n")
	f.Add("param n, m\narray ia[n, 2] int\narray x[m]\narray y[n]\nloop i = 0, n {\n    x[ia[i, 0]] += y[i] * 0.5\n    x[ia[i, 1]] -= y[i]\n}\n")
	f.Add("param n\narray w[8]\narray x[8]\narray ia[n] int\nloop i = 0, 4 {\n    w[i] = i * 2.0\n}\nloop i = 0, n {\n    x[ia[i]] += w[0] * 3 + 1\n}\n")
	f.Add("loop i = 0, 3 {\n    x[i] = 1\n}\n")
	f.Add("param n\narray x[n]\nloop i = n, 0 {\n    x[i] = sqrt(abs(x[i]))\n}\n")

	f.Fuzz(func(t *testing.T, src string) {
		prog, err := lang.Parse(src)
		if err != nil {
			return // not a program; nothing to analyze
		}

		env := interp.NewEnv(prog)
		for _, p := range prog.Params {
			env.SetParam(p, 6)
		}
		// Adversarial indirection contents: the pattern covers negative,
		// in-range and too-large values, so no access through an
		// indirection can be proven unless the scan really bounds it.
		for _, a := range prog.Arrays {
			if !a.Int {
				continue
			}
			size := 1
			for _, d := range a.Dims {
				if d.Param != "" {
					size *= 6
				} else {
					size *= d.Lit
				}
			}
			if size < 0 || size > 1<<12 {
				return
			}
			data := make([]int32, size)
			for i := range data {
				data[i] = int32(i%9 - 2)
			}
			if err := env.BindInt(a.Name, data); err != nil {
				return
			}
		}
		if err := env.Alloc(); err != nil {
			return
		}

		opts := dataflow.Options{Params: env.Params, Contents: map[string]dataflow.Interval{}}
		for name, data := range env.Ints {
			opts.Contents[name] = dataflow.ScanInt32(data)
		}

		// Property 1: the whole-program analysis terminates and keeps its
		// internal shapes consistent.
		res := dataflow.AnalyzeProgram(prog, opts)
		if len(res.Loops) != len(prog.Loops) {
			t.Fatalf("analysis lost loops: %d facts for %d loops", len(res.Loops), len(prog.Loops))
		}
		for li, lf := range res.Loops {
			zero := map[int]bool{}
			for _, idx := range lf.ZeroRed {
				zero[idx] = true
			}
			for i := 1; i < len(lf.Dead); i++ {
				if lf.Dead[i-1] >= lf.Dead[i] {
					t.Fatalf("loop %d: Dead not strictly sorted: %v", li, lf.Dead)
				}
			}
			for _, idx := range lf.ZeroRed {
				if !lf.IsDead(idx) {
					t.Fatalf("loop %d: zero reduction %d not in Dead", li, idx)
				}
			}
			_ = zero
		}

		// Property 2: run each loop's right-hand sides with checks elided
		// exactly where proven. An unsound proof panics the evaluator on
		// a raw out-of-range slice index.
		for li, l := range prog.Loops {
			lf := res.Loops[li]
			lo, hi, ok := constBounds(env, l)
			if !ok || hi-lo <= 0 || hi-lo > 64 {
				continue
			}
			exprs := make([]lang.Expr, len(l.Body))
			for si, st := range l.Body {
				exprs[si] = st.RHS
			}
			proof := lf.Proof(nil)
			code, err := env.CompileIterOpts(l, exprs, interp.CompileOpts{Unchecked: proof.RefProven})
			if err != nil {
				continue
			}
			out := make([]float64, len(exprs))
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("loop %d: proven access faulted at runtime (unsound proof): %v\nsource:\n%s", li, r, src)
					}
				}()
				for i := lo; i < hi; i++ {
					code.Eval(i, out)
				}
			}()
		}
	})
}

// constBounds resolves the loop bounds against the bound parameters.
func constBounds(env *interp.Env, l *lang.Loop) (int, int, bool) {
	get := func(e lang.Expr) (int, bool) {
		switch x := e.(type) {
		case *lang.Num:
			return int(x.Val), float64(int(x.Val)) == x.Val
		case *lang.Ident:
			v, ok := env.Params[x.Name]
			return v, ok
		}
		return 0, false
	}
	lo, ok1 := get(l.Lo)
	hi, ok2 := get(l.Hi)
	return lo, hi, ok1 && ok2
}
