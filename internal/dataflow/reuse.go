package dataflow

import (
	"fmt"
	"sort"
	"strings"

	"irred/internal/lang"
)

// Inter-loop schedule reuse. The paper's economics amortize one
// inspection over many executor sweeps of one loop; multi-loop programs
// (a CG solve, euler time-stepping) repeat the *same* traversal in
// several fissioned loops per sweep, and each of those loops paying its
// own inspection forfeits the amortization. This pass proves when two
// loops must receive bitwise-identical schedules — same indirection
// columns, same iteration/element extents, no intervening write to any
// covered indirection array — and issues a proof-carrying ReuseLicense:
// grants with a named-rule ledger, refusals with positions, and a
// Verify self-check that re-derives every grant from the program so a
// forged or tampered license is rejected rather than trusted.
//
// The rules, named in every grant's ledger:
//
//	same-indirection     both loops traverse the same indirection
//	                     columns, in the same reference order
//	same-extent          same iteration space [lo, hi) and the same
//	                     reduction-array element extent, so the
//	                     inspector Config fields agree
//	no-intervening-write no statement between the two inspections
//	                     writes any covered indirection array
//	no-resize            extents are declared parameters/literals; IRL
//	                     has no resize, so NumIters/NumElems cannot
//	                     drift between the loops
//
// Reuse is content-addressed downstream: consumers key shared schedule
// slots on inspector.ScheduleKey, so even a forged grant cannot corrupt
// a run — it can only be caught (Verify, the W8 model check, IRL022).

// IndSig is one indirection column a loop's reductions traverse, in
// reference order: the analysis.IndRef shape (array, literal column,
// -1 for 1-D) that codegen extracts into the inspector's ind slices.
type IndSig struct {
	Array string
	Col   int
}

func (s IndSig) String() string {
	if s.Col < 0 {
		return s.Array + "(*)"
	}
	return fmt.Sprintf("%s(*,%d)", s.Array, s.Col)
}

// ReuseSig is the schedule-identity signature of one loop: two loops
// with equal signatures and no intervening indirection write receive
// bitwise-identical schedules from the (deterministic) inspector.
type ReuseSig struct {
	Loop int      // program loop index
	Refs []IndSig // indirection columns, body reference order
	Lo   string   // iteration space, rendered bounds
	Hi   string
	// Elems is the reduction arrays' element extent (all reduction
	// arrays of one loop must agree for the loop to build at all),
	// rendered through the bound parameters.
	Elems string
	// Arrays is the distinct indirection arrays covered, sorted — the
	// kill set for intervening writes.
	Arrays []string
}

// Key is the signature's equivalence-class key. The reduction arrays
// themselves are deliberately absent: reducing into q versus z changes
// no inspector input, only the executor's data columns.
func (s *ReuseSig) Key() string {
	var b strings.Builder
	for _, r := range s.Refs {
		b.WriteString(r.String())
		b.WriteByte(';')
	}
	fmt.Fprintf(&b, "[%s,%s)x%s", s.Lo, s.Hi, s.Elems)
	return b.String()
}

func (s *ReuseSig) refsKey() string {
	var b strings.Builder
	for _, r := range s.Refs {
		b.WriteString(r.String())
		b.WriteByte(';')
	}
	return b.String()
}

// ReuseGrant licenses loop To to execute against the schedules
// inspected for loop From. Every grant carries its own justification
// ledger; Verify re-derives each rule from the program.
type ReuseGrant struct {
	From, To int
	FromPos  lang.Pos // position of the representative (inspecting) loop
	Pos      lang.Pos // position of the reusing loop
	Arrays   []string // covered indirection arrays, sorted
	Ledger   []Justification
}

func (g *ReuseGrant) note(rule string, ok bool, format string, args ...any) {
	g.Ledger = append(g.Ledger, Justification{Rule: rule, OK: ok, Detail: fmt.Sprintf(format, args...)})
}

// ReuseRefusal is a reuse opportunity the prover declined. Stale marks
// the reuse-after-write case — the signatures matched but a write at
// Pos invalidated the inspected contents (IRL022's domain); non-stale
// refusals record weaker mismatches such as differing extent facts.
type ReuseRefusal struct {
	From, To int
	Pos      lang.Pos // the invalidating write for stale refusals
	Array    string   // the written indirection array (stale only)
	Stale    bool
	Reason   string
}

// ReuseLicense is the program-level reuse proof: per-loop signatures,
// grants, refusals, and a program ledger.
type ReuseLicense struct {
	Prog *lang.Program
	Opts Options
	// Sigs has one entry per program loop; nil for loops with no
	// irregular reduction in inspectable form.
	Sigs     []*ReuseSig
	Grants   []*ReuseGrant
	Refusals []ReuseRefusal
	Ledger   []Justification
}

func (rl *ReuseLicense) note(rule string, ok bool, format string, args ...any) {
	rl.Ledger = append(rl.Ledger, Justification{Rule: rule, OK: ok, Detail: fmt.Sprintf(format, args...)})
}

// ReuseOf reports the representative loop whose schedules loop idx is
// licensed to reuse, or -1 when the loop must inspect for itself.
func (rl *ReuseLicense) ReuseOf(idx int) int {
	for _, g := range rl.Grants {
		if g.To == idx {
			return g.From
		}
	}
	return -1
}

// loopSig extracts the schedule-identity signature of one loop, or nil
// when the loop has no irregular reduction in the inspectable shape
// (target subscripted by ind[i] or ind[i, lit] with i the loop
// variable). The reference order matches codegen's column extraction:
// body order, one column per irregular update.
func loopSig(prog *lang.Program, idx int, l *lang.Loop, opts Options) *ReuseSig {
	sig := &ReuseSig{Loop: idx, Lo: l.Lo.String(), Hi: l.Hi.String()}
	reds := map[string]bool{}
	for _, st := range l.Body {
		if st.Target == nil {
			continue
		}
		var nested *lang.IndexExpr
		for _, sub := range st.Target.Index {
			if ix, ok := sub.(*lang.IndexExpr); ok {
				nested = ix
				break
			}
		}
		if nested == nil {
			continue
		}
		ref, ok := indRefOf(nested, l.Var)
		if !ok {
			return nil // analysis refuses the loop; nothing to reuse
		}
		sig.Refs = append(sig.Refs, ref)
		reds[st.Target.Array] = true
	}
	if len(sig.Refs) == 0 {
		return nil
	}

	// All reduction arrays of one loop must share an extent for the loop
	// to build; the signature carries that common extent. Disagreement
	// is a build error elsewhere — here it just voids the signature.
	var elems string
	for _, a := range sortedKeys(reds) {
		decl := prog.Array(a)
		if decl == nil || len(decl.Dims) == 0 {
			return nil
		}
		e := extentBound(decl.Dims[0], opts.Params).String()
		if elems != "" && e != elems {
			return nil
		}
		elems = e
	}
	sig.Elems = elems

	arrays := map[string]bool{}
	for _, r := range sig.Refs {
		arrays[r.Array] = true
	}
	sig.Arrays = sortedKeys(arrays)
	return sig
}

// indRefOf recognizes the inspectable indirection shape ind[i] or
// ind[i, lit] with i the loop variable.
func indRefOf(ix *lang.IndexExpr, loopVar string) (IndSig, bool) {
	if len(ix.Index) == 0 || len(ix.Index) > 2 {
		return IndSig{}, false
	}
	id, ok := ix.Index[0].(*lang.Ident)
	if !ok || id.Name != loopVar {
		return IndSig{}, false
	}
	ref := IndSig{Array: ix.Array, Col: -1}
	if len(ix.Index) == 2 {
		num, ok := ix.Index[1].(*lang.Num)
		if !ok || num.Val != float64(int(num.Val)) {
			return IndSig{}, false
		}
		ref.Col = int(num.Val)
	}
	return ref, true
}

// writeEvent is the latest statement that wrote an (indirection) array.
type writeEvent struct {
	Loop  int
	Pos   lang.Pos
	Array string
}

// reuseClass tracks one live equivalence class of inspections.
type reuseClass struct {
	rep    int // representative loop whose inspection is current
	repPos lang.Pos
	stale  *writeEvent // set when an intervening write invalidated rep
}

// ProveReuse runs the inter-loop reuse prover over the whole program.
// It is total: malformed or uninspectable loops contribute no
// signature (and no grants) but their writes still kill classes.
func ProveReuse(prog *lang.Program, opts Options) *ReuseLicense {
	rl := &ReuseLicense{Prog: prog, Opts: opts}
	rl.note("no-resize", true,
		"array extents are declared parameters or literals; IRL has no resize statement, so NumIters/NumElems are loop-invariant")

	classes := map[string]*reuseClass{} // full signature key -> class
	lastRefs := map[string]int{}        // refs-only key -> latest loop index
	intArray := map[string]bool{}       // indirection candidates (int decls)
	for _, d := range prog.Arrays {
		if d.Int {
			intArray[d.Name] = true
		}
	}

	for idx, l := range prog.Loops {
		sig := loopSig(prog, idx, l, opts)
		rl.Sigs = append(rl.Sigs, sig)
		if sig != nil {
			rl.matchLoop(sig, l, classes, lastRefs)
			lastRefs[sig.refsKey()] = idx
		}
		// The loop's own writes take effect after its inspection: a loop
		// that rewires its own indirection invalidates every covering
		// class — including the one it just seeded — for later loops.
		for _, st := range l.Body {
			if st.Target == nil || !intArray[st.Target.Array] {
				continue
			}
			ev := &writeEvent{Loop: idx, Pos: st.Pos, Array: st.Target.Array}
			for _, c := range classes {
				if c.stale != nil {
					continue
				}
				if sigCovers(rl.Sigs, c.rep, st.Target.Array) {
					c.stale = ev
				}
			}
		}
	}

	rl.note("reuse", true, "%d grant(s), %d refusal(s) over %d loop(s)",
		len(rl.Grants), len(rl.Refusals), len(prog.Loops))
	return rl
}

// sigCovers reports whether loop rep's signature covers array a.
func sigCovers(sigs []*ReuseSig, rep int, a string) bool {
	if rep < 0 || rep >= len(sigs) || sigs[rep] == nil {
		return false
	}
	for _, arr := range sigs[rep].Arrays {
		if arr == a {
			return true
		}
	}
	return false
}

// matchLoop resolves one inspectable loop against the live classes:
// grant, stale refusal (re-seating the class), extent refusal, or a
// fresh class.
func (rl *ReuseLicense) matchLoop(sig *ReuseSig, l *lang.Loop, classes map[string]*reuseClass, lastRefs map[string]int) {
	key := sig.Key()
	c, ok := classes[key]
	if !ok {
		// Same columns under different extent facts is worth reporting:
		// the traversal repeats but the inspector Config does not.
		if from, ok := lastRefs[sig.refsKey()]; ok {
			fromSig := rl.Sigs[from]
			rl.Refusals = append(rl.Refusals, ReuseRefusal{
				From: from, To: sig.Loop, Pos: l.Pos,
				Reason: fmt.Sprintf("extent facts differ: loop %d is [%s,%s)x%s, loop %d is [%s,%s)x%s",
					from, fromSig.Lo, fromSig.Hi, fromSig.Elems, sig.Loop, sig.Lo, sig.Hi, sig.Elems),
			})
		}
		classes[key] = &reuseClass{rep: sig.Loop, repPos: l.Pos}
		return
	}
	if c.stale != nil {
		rl.Refusals = append(rl.Refusals, ReuseRefusal{
			From: c.rep, To: sig.Loop, Pos: c.stale.Pos, Array: c.stale.Array, Stale: true,
			Reason: fmt.Sprintf("indirection array %q is written at %s between loop %d's inspection and loop %d; the inspected schedule is stale",
				c.stale.Array, c.stale.Pos, c.rep, sig.Loop),
		})
		c.rep, c.repPos, c.stale = sig.Loop, l.Pos, nil
		return
	}
	g := &ReuseGrant{
		From: c.rep, To: sig.Loop,
		FromPos: c.repPos, Pos: l.Pos,
		Arrays: append([]string(nil), sig.Arrays...),
	}
	refs := make([]string, len(sig.Refs))
	for i, r := range sig.Refs {
		refs[i] = r.String()
	}
	g.note("same-indirection", true, "loops %d and %d traverse %s in the same reference order", g.From, g.To, strings.Join(refs, ", "))
	g.note("same-extent", true, "both inspect iteration space [%s, %s) over %s elements", sig.Lo, sig.Hi, sig.Elems)
	g.note("no-intervening-write", true, "no statement between loop %d and loop %d writes %s", g.From, g.To, strings.Join(g.Arrays, ", "))
	g.note("no-resize", true, "extents are loop-invariant declarations")
	rl.Grants = append(rl.Grants, g)
}

// Verify machine-checks the license against the program it claims to
// describe: every grant's premises are re-derived from scratch, so a
// grant that was forged, tampered with, or re-attached to a different
// program fails. A non-nil error means the license must not be
// consumed.
func (rl *ReuseLicense) Verify() error {
	if rl.Prog == nil {
		return fmt.Errorf("dataflow: reuse license carries no program")
	}
	fresh := ProveReuse(rl.Prog, rl.Opts)
	for _, g := range rl.Grants {
		if g.From < 0 || g.To <= g.From || g.To >= len(rl.Prog.Loops) {
			return fmt.Errorf("dataflow: reuse grant %d→%d is out of program order", g.From, g.To)
		}
		for _, j := range g.Ledger {
			if !j.OK {
				return fmt.Errorf("dataflow: reuse grant %d→%d over a failed ledger rule %q", g.From, g.To, j.Rule)
			}
		}
		fromSig := loopSig(rl.Prog, g.From, rl.Prog.Loops[g.From], rl.Opts)
		toSig := loopSig(rl.Prog, g.To, rl.Prog.Loops[g.To], rl.Opts)
		if fromSig == nil || toSig == nil {
			return fmt.Errorf("dataflow: reuse grant %d→%d names a loop with no inspectable signature", g.From, g.To)
		}
		if fromSig.Key() != toSig.Key() {
			return fmt.Errorf("dataflow: reuse grant %d→%d spans unequal signatures %q vs %q", g.From, g.To, fromSig.Key(), toSig.Key())
		}
		if !equalStrings(g.Arrays, toSig.Arrays) {
			return fmt.Errorf("dataflow: reuse grant %d→%d covers %v, signature says %v", g.From, g.To, g.Arrays, toSig.Arrays)
		}
		// Premise: no write to a covered array in [From, To) — writes in
		// the representative's own body execute after its inspection but
		// before the grantee's reuse.
		covered := map[string]bool{}
		for _, a := range g.Arrays {
			covered[a] = true
		}
		for li := g.From; li < g.To; li++ {
			for _, st := range rl.Prog.Loops[li].Body {
				if st.Target != nil && covered[st.Target.Array] {
					return fmt.Errorf("dataflow: reuse grant %d→%d crosses a write to %q at %s", g.From, g.To, st.Target.Array, st.Pos)
				}
			}
		}
		// The fresh prover must agree the reuse is live: it may pick an
		// earlier representative of the same class, never refuse.
		rep := fresh.ReuseOf(g.To)
		if rep < 0 {
			return fmt.Errorf("dataflow: reuse grant %d→%d is not derivable from the program", g.From, g.To)
		}
	}
	return nil
}

// Report renders the license with its ledgers, Facts.Report-style.
func (rl *ReuseLicense) Report() string {
	var b strings.Builder
	insp := 0
	for _, s := range rl.Sigs {
		if s != nil {
			insp++
		}
	}
	fmt.Fprintf(&b, "program: %d loop(s), %d inspectable, %d reuse grant(s), %d refusal(s)\n",
		len(rl.Sigs), insp, len(rl.Grants), len(rl.Refusals))
	for i, s := range rl.Sigs {
		if s == nil {
			fmt.Fprintf(&b, "  loop %d: no inspectable irregular reduction\n", i)
			continue
		}
		refs := make([]string, len(s.Refs))
		for j, r := range s.Refs {
			refs[j] = r.String()
		}
		fmt.Fprintf(&b, "  loop %d: traverses %s over [%s, %s) into %s element(s)", i, strings.Join(refs, ", "), s.Lo, s.Hi, s.Elems)
		if from := rl.ReuseOf(i); from >= 0 {
			fmt.Fprintf(&b, " — reuses loop %d's schedules", from)
		} else {
			b.WriteString(" — inspects")
		}
		b.WriteString("\n")
	}
	for _, g := range rl.Grants {
		fmt.Fprintf(&b, "  grant loop %d → loop %d at %s (inspected at %s), arrays %s\n",
			g.From, g.To, g.Pos, g.FromPos, strings.Join(g.Arrays, ", "))
		for _, j := range g.Ledger {
			word := "ok"
			if !j.OK {
				word = "FAIL"
			}
			fmt.Fprintf(&b, "    [%s] %s: %s\n", j.Rule, word, j.Detail)
		}
	}
	for _, r := range rl.Refusals {
		kind := "refused"
		if r.Stale {
			kind = "refused (stale)"
		}
		fmt.Fprintf(&b, "  %s loop %d → loop %d at %s: %s\n", kind, r.From, r.To, r.Pos, r.Reason)
	}
	for _, j := range rl.Ledger {
		word := "ok"
		if !j.OK {
			word = "FAIL"
		}
		fmt.Fprintf(&b, "  [%s] %s: %s\n", j.Rule, word, j.Detail)
	}
	return b.String()
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
