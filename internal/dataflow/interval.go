package dataflow

import (
	"fmt"
	"math"

	"irred/internal/inspector"
)

// Bound is one endpoint of an interval. A bound is either infinite, a
// finite constant Off, or the symbolic form Sym + Off where Sym names a
// program parameter. Parameters are array extents and loop trip counts, so
// the domain assumes every parameter is a nonnegative integer; that single
// assumption is what lets `i <= n-1 < n` discharge the in-bounds obligation
// of y[i] against extent n without knowing n's value.
type Bound struct {
	Inf int8    // -1 = -infinity, +1 = +infinity, 0 = finite
	Sym string  // parameter name; "" for a plain constant
	Off float64 // constant part
}

// NegInf and PosInf are the infinite endpoints.
var (
	NegInf = Bound{Inf: -1}
	PosInf = Bound{Inf: +1}
)

// Finite is the constant bound v.
func Finite(v float64) Bound { return Bound{Off: v} }

// Sym is the symbolic bound sym + off.
func Sym(sym string, off float64) Bound { return Bound{Sym: sym, Off: off} }

func (b Bound) String() string {
	switch {
	case b.Inf < 0:
		return "-inf"
	case b.Inf > 0:
		return "+inf"
	case b.Sym == "":
		return trimFloat(b.Off)
	case b.Off == 0:
		return b.Sym
	case b.Off < 0:
		return fmt.Sprintf("%s-%s", b.Sym, trimFloat(-b.Off))
	default:
		return fmt.Sprintf("%s+%s", b.Sym, trimFloat(b.Off))
	}
}

func trimFloat(v float64) string { return fmt.Sprintf("%g", v) }

// Resolve substitutes a concrete parameter value when one is known,
// turning a symbolic bound into a constant.
func (b Bound) Resolve(params map[string]int) Bound {
	if b.Inf != 0 || b.Sym == "" {
		return b
	}
	if v, ok := params[b.Sym]; ok {
		return Finite(float64(v) + b.Off)
	}
	return b
}

// leq reports whether a <= b is *provable* under the domain's assumption
// that every parameter is >= 0. Unprovable comparisons return false — the
// caller must treat false as "unknown", never as "greater".
func leq(a, b Bound) bool {
	switch {
	case a.Inf < 0 || b.Inf > 0:
		return true
	case a.Inf > 0 || b.Inf < 0:
		return false
	case a.Sym == b.Sym:
		return a.Off <= b.Off
	case a.Sym == "":
		// c <= s + d holds whenever c <= d, since s >= 0.
		return a.Off <= b.Off
	default:
		// s + c <= d is unprovable (s unbounded above), as is s + c <= t + d
		// for distinct parameters s, t.
		return false
	}
}

// lt reports whether a < b is provable.
func lt(a, b Bound) bool {
	switch {
	case a.Inf != 0 || b.Inf != 0:
		// Strict comparison against an infinity is provable exactly when the
		// non-strict one is and the bounds are not the same infinity.
		return leq(a, b) && !(a.Inf != 0 && a.Inf == b.Inf)
	case a.Sym == b.Sym:
		return a.Off < b.Off
	case a.Sym == "":
		return a.Off < b.Off
	default:
		return false
	}
}

// addB adds two bounds, rounding toward `dir` (-1 = down to -inf, +1 = up
// to +inf) when the sum leaves the representable sym+off form.
func addB(a, b Bound, dir int8) Bound {
	if a.Inf != 0 {
		return a
	}
	if b.Inf != 0 {
		return b
	}
	switch {
	case a.Sym == "":
		return Bound{Sym: b.Sym, Off: a.Off + b.Off}
	case b.Sym == "":
		return Bound{Sym: a.Sym, Off: a.Off + b.Off}
	default:
		return Bound{Inf: dir}
	}
}

// subB subtracts two bounds, rounding toward dir when the difference
// leaves the representable form. Crucially, identical symbols cancel:
// (n + a) - (n + b) = a - b exactly, which is what lets `i - n` for
// i in [0, n-1] keep the finite upper bound -1.
func subB(a, b Bound, dir int8) Bound {
	if a.Inf != 0 {
		return a
	}
	if b.Inf != 0 {
		return Bound{Inf: -b.Inf}
	}
	switch {
	case a.Sym == b.Sym:
		return Finite(a.Off - b.Off)
	case b.Sym == "":
		return Bound{Sym: a.Sym, Off: a.Off - b.Off}
	default:
		return Bound{Inf: dir}
	}
}

// negB negates a bound, rounding toward dir when -sym is unrepresentable.
func negB(b Bound, dir int8) Bound {
	switch {
	case b.Inf != 0:
		return Bound{Inf: -b.Inf}
	case b.Sym == "":
		return Finite(-b.Off)
	default:
		return Bound{Inf: dir}
	}
}

// constVal reports the bound's value when it is a finite constant.
func (b Bound) constVal() (float64, bool) {
	if b.Inf == 0 && b.Sym == "" {
		return b.Off, true
	}
	return 0, false
}

// minB / maxB pick the provably smaller / larger bound, rounding toward
// the safe infinity when the comparison is unprovable.
func minB(a, b Bound) Bound {
	if leq(a, b) {
		return a
	}
	if leq(b, a) {
		return b
	}
	return NegInf
}

func maxB(a, b Bound) Bound {
	if leq(b, a) {
		return a
	}
	if leq(a, b) {
		return b
	}
	return PosInf
}

// Interval is the abstract value of a scalar expression: a closed range
// [Lo, Hi] plus two qualifiers. Int records that every concrete value is
// an integer (required before an in-bounds range implies a safe subscript).
// Exact records that the interval is tight — both endpoints are attained
// over the loop's iteration space — which is what licenses *definite*
// out-of-bounds reports rather than mere may-overflow warnings.
type Interval struct {
	Lo, Hi Bound
	Int    bool
	Exact  bool
}

// Top is the unconstrained interval.
func Top() Interval { return Interval{Lo: NegInf, Hi: PosInf} }

// TopInt is the unconstrained integer interval (e.g. the contents of an
// indirection array that has not been scanned).
func TopInt() Interval { return Interval{Lo: NegInf, Hi: PosInf, Int: true} }

// Singleton is the exact one-point interval.
func Singleton(v float64) Interval {
	return Interval{Lo: Finite(v), Hi: Finite(v), Int: v == math.Trunc(v) && !math.IsInf(v, 0), Exact: true}
}

// Range is the interval [lo, hi] of integers.
func Range(lo, hi Bound) Interval { return Interval{Lo: lo, Hi: hi, Int: true} }

func (iv Interval) String() string {
	qual := ""
	if iv.Int {
		qual = " int"
	}
	if iv.Exact {
		qual += " exact"
	}
	return fmt.Sprintf("[%s, %s]%s", iv.Lo, iv.Hi, qual)
}

// IsSingleton reports the single constant value the interval holds, if any.
func (iv Interval) IsSingleton() (float64, bool) {
	a, aok := iv.Lo.constVal()
	b, bok := iv.Hi.constVal()
	if aok && bok && a == b {
		return a, true
	}
	return 0, false
}

// Resolve substitutes known parameter values into both endpoints.
func (iv Interval) Resolve(params map[string]int) Interval {
	iv.Lo = iv.Lo.Resolve(params)
	iv.Hi = iv.Hi.Resolve(params)
	return iv
}

// Join is the least upper bound (union hull) of two intervals.
func Join(a, b Interval) Interval {
	return Interval{
		Lo:  minB(a.Lo, b.Lo),
		Hi:  maxB(a.Hi, b.Hi),
		Int: a.Int && b.Int,
		// The hull of two exact intervals is exact only when one contains
		// the other; proving that symbolically is rarely possible, so the
		// join conservatively drops exactness unless the intervals coincide.
		Exact: a.Exact && b.Exact && a.Lo == b.Lo && a.Hi == b.Hi,
	}
}

// Add returns the interval of x + y.
func (iv Interval) Add(o Interval) Interval {
	return Interval{
		Lo:    addB(iv.Lo, o.Lo, -1),
		Hi:    addB(iv.Hi, o.Hi, +1),
		Int:   iv.Int && o.Int,
		Exact: iv.Exact && o.Exact && (iv.isPoint() || o.isPoint()),
	}
}

// Sub returns the interval of x - y: [Lo - o.Hi, Hi - o.Lo], with
// same-symbol cancellation via subB.
func (iv Interval) Sub(o Interval) Interval {
	return Interval{
		Lo:    subB(iv.Lo, o.Hi, -1),
		Hi:    subB(iv.Hi, o.Lo, +1),
		Int:   iv.Int && o.Int,
		Exact: iv.Exact && o.Exact && (iv.isPoint() || o.isPoint()),
	}
}

// Neg returns the interval of -x.
func (iv Interval) Neg() Interval {
	return Interval{Lo: negB(iv.Hi, -1), Hi: negB(iv.Lo, +1), Int: iv.Int, Exact: iv.Exact}
}

// isPoint reports whether the interval is structurally a single value
// (identical endpoints, possibly symbolic).
func (iv Interval) isPoint() bool { return iv.Lo.Inf == 0 && iv.Lo == iv.Hi }

// Mul returns the interval of x * y. Symbolic endpoints survive only
// through multiplication by an exact zero (which annihilates) — any other
// symbolic product widens to infinity on the affected side.
func (iv Interval) Mul(o Interval) Interval {
	if v, ok := iv.IsSingleton(); ok && v == 0 && iv.Exact {
		return Singleton(0)
	}
	if v, ok := o.IsSingleton(); ok && v == 0 && o.Exact {
		return Singleton(0)
	}
	a1, ok1 := iv.Lo.constVal()
	a2, ok2 := iv.Hi.constVal()
	b1, ok3 := o.Lo.constVal()
	b2, ok4 := o.Hi.constVal()
	if !(ok1 && ok2 && ok3 && ok4) {
		return Interval{Lo: NegInf, Hi: PosInf, Int: iv.Int && o.Int}
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range [4]float64{a1 * b1, a1 * b2, a2 * b1, a2 * b2} {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return Interval{
		Lo: Finite(lo), Hi: Finite(hi),
		Int:   iv.Int && o.Int,
		Exact: iv.Exact && o.Exact && iv.isPoint() && o.isPoint(),
	}
}

// Div returns the interval of x / y. Division never preserves integrality
// (IRL has no integer division), and any divisor range containing zero
// widens to the full line (IEEE division by zero yields an infinity, which
// the in-bounds checks must treat as fatal anyway).
func (iv Interval) Div(o Interval) Interval {
	a1, ok1 := iv.Lo.constVal()
	a2, ok2 := iv.Hi.constVal()
	b1, ok3 := o.Lo.constVal()
	b2, ok4 := o.Hi.constVal()
	if !(ok1 && ok2 && ok3 && ok4) || b1 <= 0 && b2 >= 0 {
		return Top()
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range [4]float64{a1 / b1, a1 / b2, a2 / b1, a2 / b2} {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return Interval{Lo: Finite(lo), Hi: Finite(hi)}
}

// Sqrt returns the interval of sqrt(x).
func (iv Interval) Sqrt() Interval {
	lo, hi := Finite(0), PosInf
	if v, ok := iv.Lo.constVal(); ok && v > 0 {
		lo = Finite(math.Sqrt(v))
	}
	if v, ok := iv.Hi.constVal(); ok && v >= 0 {
		hi = Finite(math.Sqrt(v))
	}
	if v, ok := iv.Hi.constVal(); ok && v < 0 {
		// sqrt of a provably negative range is NaN everywhere; treat as top
		// (the access analysis will refuse integrality anyway).
		return Top()
	}
	return Interval{Lo: lo, Hi: hi}
}

// Abs returns the interval of abs(x).
func (iv Interval) Abs() Interval {
	if leq(Finite(0), iv.Lo) {
		return Interval{Lo: iv.Lo, Hi: iv.Hi, Int: iv.Int, Exact: iv.Exact}
	}
	if leq(iv.Hi, Finite(0)) {
		n := iv.Neg()
		return Interval{Lo: n.Lo, Hi: n.Hi, Int: iv.Int, Exact: iv.Exact}
	}
	hi := maxB(iv.Hi, negB(iv.Lo, +1))
	return Interval{Lo: Finite(0), Hi: hi, Int: iv.Int}
}

// Min returns the interval of min(x, y).
func (iv Interval) Min(o Interval) Interval {
	return Interval{Lo: minB(iv.Lo, o.Lo), Hi: minB(iv.Hi, o.Hi), Int: iv.Int && o.Int}
}

// Max returns the interval of max(x, y).
func (iv Interval) Max(o Interval) Interval {
	return Interval{Lo: maxB(iv.Lo, o.Lo), Hi: maxB(iv.Hi, o.Hi), Int: iv.Int && o.Int}
}

// Within reports whether the interval provably lies inside [0, extent):
// 0 <= Lo and Hi <= extent-1, plus integrality of every value.
func (iv Interval) Within(extent Bound) bool {
	return iv.Int && leq(Finite(0), iv.Lo) && lt(iv.Hi, extent)
}

// DefinitelyOutside reports whether *every* value of the interval lies
// outside [0, extent): the whole range is negative, or at or above the
// extent. This needs no exactness — an overapproximation entirely outside
// the legal range still proves each concrete access faults.
func (iv Interval) DefinitelyOutside(extent Bound) bool {
	return lt(iv.Hi, Finite(0)) || leq(extent, iv.Lo)
}

// Escapes reports whether some value of the interval provably lies outside
// [0, extent). It requires exactness: for a tight interval the endpoints
// are attained, so Lo < 0 or Hi >= extent exhibits a faulting access.
func (iv Interval) Escapes(extent Bound) bool {
	if iv.DefinitelyOutside(extent) {
		return true
	}
	return iv.Exact && (lt(iv.Lo, Finite(0)) || leq(extent, iv.Hi))
}

// ScanInt32 is the one-pass runtime min/max scan of an indirection array:
// the exact observed content range, the fact the proof-carrying pipeline
// feeds back into the analysis as the array's value interval.
func ScanInt32(data []int32) Interval {
	lo, hi, ok := inspector.ContentRange(data)
	if !ok {
		return Interval{Lo: Finite(0), Hi: Finite(-1), Int: true, Exact: true}
	}
	return Interval{Lo: Finite(float64(lo)), Hi: Finite(float64(hi)), Int: true, Exact: true}
}
