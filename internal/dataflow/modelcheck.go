package dataflow

import (
	"fmt"

	"irred/internal/inspector"
)

// This file is the bounded exhaustive model checker for the systolic
// ownership protocol. The runtime's correctness rests on the ownership map
// PortionAt(p, ph) = (k*p + ph) mod (k*P): within any phase no two
// processors own the same portion (single writer), across a sweep every
// processor owns every portion exactly once (completeness), and portions
// migrate from processor p to p-1 every k phases (the systolic rotation
// that lets the transfer overlap k-1 phases of computation). The IRV
// verifier checks these properties for one concrete schedule at runtime;
// the model checker proves them content-independently by exhausting every
// (P, k) strategy up to a bound — small enough to enumerate, large enough
// to cover every configuration the paper (and this repo's benchmarks)
// uses.

// Ownership abstracts the portion-ownership protocol under test. The
// production implementation is inspector.Config; tests inject corrupted
// implementations to prove the checker can fail.
type Ownership interface {
	// Procs is P, Phases is the sweep length k*P (also the portion count).
	Procs() int
	Phases() int
	// PortionAt reports the portion processor p owns during phase ph.
	PortionAt(p, ph int) int
	// OwnerAt reports the processor owning portion q during phase ph, or
	// -1 when no processor does.
	OwnerAt(q, ph int) int
	// PhaseOfPortion reports the phase during which processor p owns
	// portion q (the inverse of PortionAt).
	PhaseOfPortion(p, q int) int
}

// cfgOwnership adapts inspector.Config to the Ownership interface.
type cfgOwnership struct{ cfg inspector.Config }

func (o cfgOwnership) Procs() int              { return o.cfg.P }
func (o cfgOwnership) Phases() int             { return o.cfg.NumPhases() }
func (o cfgOwnership) PortionAt(p, ph int) int { return o.cfg.PortionAt(p, ph) }
func (o cfgOwnership) OwnerAt(q, ph int) int   { return o.cfg.OwnerAt(q, ph) }
func (o cfgOwnership) PhaseOfPortion(p, q int) int {
	// PhaseOf is defined on elements; portions are contiguous blocks of
	// PortionSize elements, so any element of the portion will do.
	return o.cfg.PhaseOf(p, q*o.cfg.PortionSize())
}

// ConfigOwnership wraps the production ownership map for model checking.
// NumIters/NumElems/Dist do not influence the ownership protocol; the
// wrapper picks an extent that exercises every portion.
func ConfigOwnership(p, k int) Ownership {
	return cfgOwnership{cfg: inspector.Config{
		P: p, K: k,
		NumIters: 1,
		NumElems: p * k, // one element per portion
		Dist:     inspector.Block,
	}}
}

// Violation is one failed protocol invariant for one strategy.
type Violation struct {
	P, K int
	Kind string // W1..W5
	Msg  string
}

func (v Violation) Error() string {
	return fmt.Sprintf("ownership(P=%d, k=%d): %s: %s", v.P, v.K, v.Kind, v.Msg)
}

// CheckStrategy machine-checks one strategy's ownership protocol:
//
//	W1 single writer   — within any phase, no portion has two owners;
//	W2 completeness    — each processor owns every portion exactly once
//	                     per sweep (rotation completeness);
//	W3 systolic motion — the portion owned by p in phase ph is owned by
//	                     p-1 (mod P) in phase ph+k: portions migrate one
//	                     processor per k phases;
//	W4 owner inverse   — OwnerAt agrees with PortionAt both ways, and
//	                     reports no owner in the dead phases between a
//	                     portion's visits;
//	W5 phase inverse   — PhaseOfPortion is the phase inverse of PortionAt.
//
// All violations are collected (up to a cap) rather than stopping at the
// first, so a corrupted protocol produces an actionable report.
func CheckStrategy(p, k int, own Ownership) []Violation {
	const maxViolations = 32
	var out []Violation
	report := func(kind, format string, args ...any) {
		if len(out) < maxViolations {
			out = append(out, Violation{P: p, K: k, Kind: kind, Msg: fmt.Sprintf(format, args...)})
		}
	}
	P := own.Procs()
	nph := own.Phases()
	if P != p || nph != p*k {
		report("W0", "strategy shape: Procs=%d Phases=%d, want %d and %d", P, nph, p, p*k)
		return out
	}

	// W1: per phase, portion -> owner is injective (and portions in range).
	for ph := 0; ph < nph; ph++ {
		ownerOf := make([]int, nph)
		for q := range ownerOf {
			ownerOf[q] = -1
		}
		for proc := 0; proc < P; proc++ {
			q := own.PortionAt(proc, ph)
			if q < 0 || q >= nph {
				report("W1", "phase %d: processor %d owns portion %d outside [0,%d)", ph, proc, q, nph)
				continue
			}
			if prev := ownerOf[q]; prev >= 0 {
				report("W1", "phase %d: portion %d owned by both processor %d and %d", ph, q, prev, proc)
			}
			ownerOf[q] = proc
		}
	}

	// W2: per processor, phase -> portion is a bijection onto [0, k*P).
	for proc := 0; proc < P; proc++ {
		seen := make([]int, nph)
		for q := range seen {
			seen[q] = -1
		}
		for ph := 0; ph < nph; ph++ {
			q := own.PortionAt(proc, ph)
			if q < 0 || q >= nph {
				continue // reported under W1
			}
			if prev := seen[q]; prev >= 0 {
				report("W2", "processor %d owns portion %d in both phase %d and %d", proc, q, prev, ph)
			}
			seen[q] = ph
		}
		for q, ph := range seen {
			if ph < 0 {
				report("W2", "processor %d never owns portion %d", proc, q)
			}
		}
	}

	// W3: the systolic rotation — p's portion reaches p-1 exactly k phases
	// later. (Beyond the sweep edge the next sweep repeats the pattern, so
	// the check wraps modulo k*P.)
	for proc := 0; proc < P; proc++ {
		prev := (proc - 1 + P) % P
		for ph := 0; ph < nph; ph++ {
			q := own.PortionAt(proc, ph)
			nq := own.PortionAt(prev, (ph+k)%nph)
			if q != nq {
				report("W3", "portion %d owned by processor %d in phase %d is not at processor %d in phase %d (found %d)",
					q, proc, ph, prev, ph+k, nq)
			}
		}
	}

	// W4: OwnerAt inverts PortionAt, and is -1 in the dead phases.
	for q := 0; q < nph; q++ {
		for ph := 0; ph < nph; ph++ {
			owner := own.OwnerAt(q, ph)
			var expected = -1
			for proc := 0; proc < P; proc++ {
				if own.PortionAt(proc, ph) == q {
					expected = proc
					break
				}
			}
			if owner != expected {
				report("W4", "OwnerAt(portion %d, phase %d) = %d, but PortionAt says %d", q, ph, owner, expected)
			}
		}
	}

	// W5: PhaseOfPortion inverts PortionAt.
	for proc := 0; proc < P; proc++ {
		for q := 0; q < nph; q++ {
			ph := own.PhaseOfPortion(proc, q)
			if ph < 0 || ph >= nph || own.PortionAt(proc, ph) != q {
				report("W5", "PhaseOfPortion(processor %d, portion %d) = %d, but PortionAt(%d, %d) = %d",
					proc, q, ph, proc, ph, own.PortionAt(proc, max0(ph)))
			}
		}
	}
	return out
}

func max0(v int) int {
	if v < 0 {
		return 0
	}
	return v
}

// ProveAll exhausts every strategy with 1 <= P <= maxP and 1 <= k <= maxK,
// checking the production ownership map. It returns all violations (empty
// means the protocol is proven for the bounded space) plus the number of
// strategies checked.
func ProveAll(maxP, maxK int) (checked int, violations []Violation) {
	for p := 1; p <= maxP; p++ {
		for k := 1; k <= maxK; k++ {
			violations = append(violations, CheckStrategy(p, k, ConfigOwnership(p, k))...)
			checked++
		}
	}
	return checked, violations
}
