package dataflow

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"irred/internal/algebra"
	"irred/internal/lang"
)

// Schedule legality. The paper executes every irregular reduction under
// one schedule — k*P rotating portions — on the *assumption* that the
// update is an associative, commutative accumulation. This pass replaces
// the assumption with proof: it classifies every cross-iteration
// dependence of a loop (true reduction / ordered dependence /
// conflicting write), infers the algebraic properties of each reduction
// operator via internal/algebra, and issues a proof-carrying
// ScheduleLicense recording which schedules are legal and why.
//
// The license grants form a small lattice keyed on proof strength:
//
//	Illegal       conflicting write, disproven associativity, or an
//	              ordered cross-iteration dependence
//	RotationOnly  recognized reduction whose algebra is unverifiable —
//	              the paper's schedule, licensed by assumption, with the
//	              ledger saying so
//	TileLegal     associativity+commutativity proven: contributions may
//	              be regrouped and reordered arbitrarily (tiled owner-
//	              computes schedules)
//	TreeFoldLegal additionally a proven identity element: per-worker
//	              private accumulators may be seeded with the identity
//	              and folded in a binary tree
//
// Every grant and refusal is recorded in a machine-checkable
// justification ledger (Verify re-derives the grants from the ledger).

// OpLicense is the per-reduction-operator part of a license.
type OpLicense struct {
	Array string
	Stmt  int // body index of the reduction statement
	Pos   lang.Pos
	// Op is the executable fold operator; for proven Custom combines the
	// identity element is filled in.
	Op    algebra.Op
	Props algebra.Props
	// IdentSuspect marks reductions whose identity is known and nonzero
	// while the target array is not written by any earlier loop: the
	// zero-initialized environment then feeds a non-identity seed into
	// the fold (IRL019's domain). Set by LegalizeProgram.
	IdentSuspect bool
}

// Refusal is a reduction-shaped update whose algebra refuses reordering:
// disproven or unverifiable associativity/commutativity (IRL017's
// domain).
type Refusal struct {
	Pos    lang.Pos
	Array  string
	Reason string
	Cex    string // counterexample, when disproven
}

// Conflict is a conflicting non-reduction write — a static race under
// any parallel schedule (IRL018's domain).
type Conflict struct {
	Pos    lang.Pos
	Array  string
	Reason string
}

// Justification is one ledger entry: a named rule, whether it held, and
// the evidence.
type Justification struct {
	Rule   string
	OK     bool
	Detail string
}

// License is the schedule license of one loop.
type License struct {
	Loop *lang.Loop
	// Grants.
	Rotation bool // the paper's k*P rotating-portion schedule
	Tile     bool // arbitrary regrouping/reordering of contributions
	TreeFold bool // privatized per-worker accumulators, tree-folded
	// Refused-for reasons.
	Conflicting      bool
	ReorderSensitive bool // float result depends on schedule even when licensed
	Ops              []OpLicense
	Refusals         []Refusal
	Conflicts        []Conflict
	Ledger           []Justification
}

func (lic *License) note(rule string, ok bool, format string, args ...any) {
	lic.Ledger = append(lic.Ledger, Justification{Rule: rule, OK: ok, Detail: fmt.Sprintf(format, args...)})
}

// Level names the strongest license held.
func (lic *License) Level() string {
	switch {
	case lic.Conflicting:
		return "Illegal"
	case len(lic.Ops) == 0:
		if lic.Rotation {
			return "IterationLocal"
		}
		return "Illegal"
	case lic.TreeFold:
		return "TreeFoldLegal"
	case lic.Tile && lic.Rotation:
		return "TileLegal"
	case lic.Rotation:
		return "RotationOnly"
	case lic.Tile:
		return "TileOnly"
	default:
		return "Illegal"
	}
}

// LegalizeProgram licenses every loop of the program, one License per
// loop in order, and marks IdentSuspect reductions (identity known,
// nonzero, target array never written by an earlier loop).
func LegalizeProgram(prog *lang.Program, opts Options) []*License {
	var out []*License
	written := map[string]bool{}
	for _, l := range prog.Loops {
		lic := LegalizeLoop(prog, l, opts)
		for i := range lic.Ops {
			op := &lic.Ops[i]
			if id, ok := op.Op.Identity(); ok && id != 0 && !written[op.Array] {
				op.IdentSuspect = true
			}
		}
		out = append(out, lic)
		for _, st := range l.Body {
			if st.Target != nil {
				written[st.Target.Array] = true
			}
		}
	}
	return out
}

// LegalizeLoop computes the schedule license of one loop. The pass is
// total: statements the Section 4 analysis would reject contribute
// refusals or conflicts instead of errors, so lint can report on
// malformed programs.
func LegalizeLoop(prog *lang.Program, l *lang.Loop, opts Options) *License {
	lic := &License{Loop: l}
	lf := AnalyzeLoop(prog, l, opts)

	scalars := map[string]bool{}
	varying := func(e lang.Expr) bool {
		found := false
		lang.Walk(e, func(x lang.Expr) {
			if id, ok := x.(*lang.Ident); ok && (id.Name == l.Var || scalars[id.Name]) {
				found = true
			}
		})
		return found
	}
	irregular := func(ix *lang.IndexExpr) bool {
		for _, sub := range ix.Index {
			if _, ok := sub.(*lang.IndexExpr); ok {
				return true
			}
		}
		return false
	}

	// Pass 1: classify writes. Irregular targets become operator
	// licenses, refusals or conflicts; regular targets feed the
	// dependence check below.
	accNodes := map[lang.Expr]bool{}
	regWrites := map[string]bool{}
	irrWrites := map[string]bool{}
	ordered := false
	for idx, st := range l.Body {
		if st.Scalar != "" {
			scalars[st.Scalar] = true
			continue
		}
		if st.Target == nil {
			continue
		}
		if !irregular(st.Target) {
			regWrites[st.Target.Array] = true
			continue
		}
		irrWrites[st.Target.Array] = true
		ol := OpLicense{Array: st.Target.Array, Stmt: idx, Pos: st.Pos}
		switch st.Op {
		case lang.OpAdd, lang.OpSub:
			ol.Op = algebra.Op{Kind: algebra.Add}
		case lang.OpMul:
			ol.Op = algebra.Op{Kind: algebra.Mul}
		case lang.OpMin:
			ol.Op = algebra.Op{Kind: algebra.Min}
		case lang.OpMax:
			ol.Op = algebra.Op{Kind: algebra.Max}
		case lang.OpSet:
			upd, err := algebra.ExtractUpdate(st.Target, st.RHS, varying)
			if errors.Is(err, algebra.ErrNoAcc) {
				lic.Conflicting = true
				lic.Conflicts = append(lic.Conflicts, Conflict{
					Pos: st.Pos, Array: st.Target.Array,
					Reason: fmt.Sprintf("plain overwrite of %s through indirection: when two iterations hit the same element, the surviving value depends on execution order", st.Target),
				})
				continue
			}
			if err != nil {
				lic.Refusals = append(lic.Refusals, Refusal{
					Pos: st.Pos, Array: st.Target.Array,
					Reason: fmt.Sprintf("update is not verifiable as a fold: %v", err),
				})
				continue
			}
			ol.Op = upd.Op
			for _, a := range upd.Acc {
				accNodes[a] = true
			}
		}
		if ol.Op.Kind == algebra.Custom {
			ol.Props = algebra.CheckExpr(ol.Op.Expr)
			if ol.Props.HasIdentity == algebra.Proven {
				ol.Op.Ident, ol.Op.HasIdent = ol.Props.Identity, true
			}
			if ol.Props.Assoc == algebra.Disproven || ol.Props.Comm == algebra.Disproven {
				reason, cex := "associativity disproven", ol.Props.AssocCex
				if ol.Props.Assoc != algebra.Disproven {
					reason, cex = "commutativity disproven", ol.Props.CommCex
				}
				lic.Refusals = append(lic.Refusals, Refusal{
					Pos: st.Pos, Array: st.Target.Array,
					Reason: fmt.Sprintf("%s for combine %s (%s)", reason, ol.Op.Expr, ol.Props.Proof),
					Cex:    cex,
				})
			}
		} else {
			ol.Props = algebra.TableProps(ol.Op.Kind)
		}
		lic.Ops = append(lic.Ops, ol)
	}

	// One combine per reduction array: mixed operators on one array
	// cannot rotate (or fold) as a unit.
	opOf := map[string]string{}
	for _, ol := range lic.Ops {
		key := ol.Op.String()
		if prev, ok := opOf[ol.Array]; ok && prev != key {
			lic.Conflicting = true
			lic.Conflicts = append(lic.Conflicts, Conflict{
				Pos: ol.Pos, Array: ol.Array,
				Reason: fmt.Sprintf("array %q is updated with both %q and %q; mixed folds do not commute", ol.Array, prev, key),
			})
		}
		opOf[ol.Array] = key
	}

	// An array written both regularly and irregularly in one loop races
	// against itself.
	for a := range irrWrites {
		if regWrites[a] {
			lic.Conflicting = true
			lic.Conflicts = append(lic.Conflicts, Conflict{
				Pos: l.Pos, Array: a,
				Reason: fmt.Sprintf("array %q is written both through indirection and at iteration-aligned indices in the same loop", a),
			})
		}
	}

	// A reduction array read anywhere except as its own accumulator is an
	// ordered cross-iteration dependence: the read observes partial sums.
	for _, st := range l.Body {
		st := st
		lang.Walk(st.RHS, func(e lang.Expr) {
			if accNodes[e] || ordered {
				return
			}
			ix, ok := e.(*lang.IndexExpr)
			if !ok || !irrWrites[ix.Array] {
				return
			}
			if decl := prog.Array(ix.Array); decl != nil && decl.Int {
				return
			}
			ordered = true
			lic.note("no-ordered-dep", false,
				"%s: read of reduction array %q at %s observes partial folds; execution order is fixed", st.Pos, ix.Array, ix)
		})
	}

	// Regular arrays: a write at one subscript with a read (or second
	// write) of the same array at a different subscript is a potential
	// cross-iteration dependence unless the interval analysis proves the
	// index sets disjoint. Iteration-aligned pairs (textually identical
	// subscripts) are same-element, same-iteration: legal.
	refs := groupAccesses(lf)
	for _, w := range refs {
		if !w.write || irregular(w.ref) {
			continue
		}
		for _, r := range refs {
			if r.ref == w.ref || r.ref.Array != w.ref.Array || accNodes[lang.Expr(r.ref)] {
				continue
			}
			if r.write && !sameStmtOrder(w, r) {
				continue // the (w, r) pair is checked once, in body order
			}
			if alignedSubscripts(w.ref, r.ref) {
				continue
			}
			dj := false
			for d := range w.idx {
				if d < len(r.idx) && disjoint(w.idx[d], r.idx[d]) {
					dj = true
					lic.note("no-ordered-dep", true,
						"%s and %s touch %q at provably disjoint index sets %s vs %s", w.ref, r.ref, w.ref.Array, w.idx[d], r.idx[d])
					break
				}
			}
			if dj {
				continue
			}
			ordered = true
			kind := "read"
			if r.write {
				kind = "write"
			}
			lic.note("no-ordered-dep", false,
				"write %s may alias %s %s across iterations (intervals overlap); execution order is fixed", w.ref, kind, r.ref)
		}
	}

	// Aggregate the grants and write the ledger.
	lic.note("reduction-form", len(lic.Refusals) == 0 && len(lic.Conflicts) == 0,
		"%d irregular update(s) in recognized fold form, %d refusal(s), %d conflict(s)", len(lic.Ops), len(lic.Refusals), len(lic.Conflicts))
	if !ordered {
		lic.note("no-ordered-dep", true, "no cross-iteration dependence outside the reductions")
	}

	rotation, tile, treefold := !lic.Conflicting && !ordered && len(lic.Refusals) == 0, true, true
	for i := range lic.Ops {
		ol := &lic.Ops[i]
		p := ol.Props
		lic.note("operator-props", p.Assoc != algebra.Disproven && p.Comm != algebra.Disproven,
			"%s %s %s: assoc %s, comm %s, idem %s [%s]", ol.Pos, ol.Array, ol.Op, p.Assoc, p.Comm, p.Idem, p.Proof)
		if id, ok := ol.Op.Identity(); ok {
			lic.note("identity", true, "%s %s: identity element %s", ol.Array, ol.Op, formatIdent(id))
		} else {
			lic.note("identity", false, "%s %s: no identity element found; buffers and private accumulators cannot be seeded", ol.Array, ol.Op)
			rotation = false
		}
		if p.Assoc == algebra.Disproven || p.Comm == algebra.Disproven {
			rotation, tile = false, false
		}
		if p.Assoc != algebra.Proven || p.Comm != algebra.Proven {
			tile = false
		}
		if p.HasIdentity != algebra.Proven {
			treefold = false
		}
		if p.Assoc == algebra.Unknown || p.Comm == algebra.Unknown {
			lic.note("assumption", true, "%s %s: associativity/commutativity unproven; rotation licensed by the Section 4 reduction assumption, not by proof", ol.Array, ol.Op)
		}
		if p.ReorderSensitive {
			lic.ReorderSensitive = true
		}
	}
	if lic.Conflicting || ordered || len(lic.Refusals) > 0 {
		tile, treefold = false, false
	}
	treefold = treefold && tile
	lic.Rotation, lic.Tile, lic.TreeFold = rotation, tile, treefold
	if lic.ReorderSensitive && len(lic.Ops) > 0 {
		lic.note("reorder-sensitivity", true, "float rounding depends on fold order: parallel results are schedule-reproducible, not sequential-bitwise")
	}
	lic.note("grant", true, "rotation=%v tile=%v tree-fold=%v (%s)", lic.Rotation, lic.Tile, lic.TreeFold, lic.Level())
	return lic
}

// Meet combines a parent loop's license with a fissioned child's: the
// child may carry at most what the parent held (fission must not
// silently widen a license).
func Meet(parent, child *License) *License {
	if parent == nil {
		return child
	}
	out := &License{
		Loop:             child.Loop,
		Rotation:         parent.Rotation && child.Rotation,
		Tile:             parent.Tile && child.Tile,
		TreeFold:         parent.TreeFold && child.TreeFold,
		Conflicting:      parent.Conflicting || child.Conflicting,
		ReorderSensitive: parent.ReorderSensitive || child.ReorderSensitive,
		Ops:              child.Ops,
		Refusals:         append(append([]Refusal(nil), child.Refusals...), parent.Refusals...),
		Conflicts:        append(append([]Conflict(nil), child.Conflicts...), parent.Conflicts...),
		Ledger:           append([]Justification(nil), child.Ledger...),
	}
	if parent.Rotation != child.Rotation || parent.Tile != child.Tile || parent.TreeFold != child.TreeFold || parent.Conflicting != child.Conflicting {
		out.note("inherited", true, "license met with parent loop's (%s): fission carries, never widens", parent.Level())
	}
	return out
}

// Verify machine-checks the license: the granted flags must be exactly
// what the ledger and the per-operator facts support. A non-nil error
// means the license is internally inconsistent and must not be trusted.
func (lic *License) Verify() error {
	failed := map[string]bool{}
	for _, j := range lic.Ledger {
		if !j.OK {
			failed[j.Rule] = true
		}
	}
	if lic.Rotation && (failed["reduction-form"] || failed["no-ordered-dep"] || failed["identity"]) {
		return fmt.Errorf("dataflow: license grants rotation over a failed ledger rule")
	}
	for _, ol := range lic.Ops {
		p := ol.Props
		if lic.Rotation && (p.Assoc == algebra.Disproven || p.Comm == algebra.Disproven) {
			return fmt.Errorf("dataflow: rotation granted with disproven algebra for %s", ol.Array)
		}
		if lic.Tile && (p.Assoc != algebra.Proven || p.Comm != algebra.Proven) {
			return fmt.Errorf("dataflow: tile granted without proven associativity+commutativity for %s", ol.Array)
		}
		if lic.TreeFold && p.HasIdentity != algebra.Proven {
			return fmt.Errorf("dataflow: tree-fold granted without a proven identity for %s", ol.Array)
		}
		if lic.TreeFold {
			if _, ok := ol.Op.Identity(); !ok {
				return fmt.Errorf("dataflow: tree-fold granted but operator %s carries no identity", ol.Op)
			}
		}
	}
	if lic.TreeFold && !lic.Tile {
		return fmt.Errorf("dataflow: tree-fold granted without tile")
	}
	if (lic.Conflicting || len(lic.Refusals) > 0) && (lic.Rotation || lic.Tile || lic.TreeFold) {
		return fmt.Errorf("dataflow: schedule granted despite conflicts/refusals")
	}
	return nil
}

// Report renders the license with its justification ledger, in the style
// of Facts.Report.
func (lic *License) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loop %s = %s, %s at %s: schedule license %s\n",
		lic.Loop.Var, lic.Loop.Lo, lic.Loop.Hi, lic.Loop.Pos, lic.Level())
	fmt.Fprintf(&b, "  rotation: %s   tile: %s   tree-fold: %s\n",
		grantWord(lic.Rotation), grantWord(lic.Tile), grantWord(lic.TreeFold))
	if lic.ReorderSensitive {
		fmt.Fprintf(&b, "  reorder-sensitive: parallel float results differ bitwise from sequential\n")
	}
	for _, ol := range lic.Ops {
		p := ol.Props
		fmt.Fprintf(&b, "  op %s: %s folds via %s: assoc %s, comm %s, idem %s", ol.Pos, ol.Array, ol.Op, p.Assoc, p.Comm, p.Idem)
		if id, ok := ol.Op.Identity(); ok {
			fmt.Fprintf(&b, ", identity %s", formatIdent(id))
		}
		fmt.Fprintf(&b, " [%s]\n", p.Proof)
	}
	for _, r := range lic.Refusals {
		fmt.Fprintf(&b, "  refused %s: %s %s", r.Pos, r.Array, r.Reason)
		if r.Cex != "" {
			fmt.Fprintf(&b, " (counterexample: %s)", r.Cex)
		}
		b.WriteString("\n")
	}
	for _, c := range lic.Conflicts {
		fmt.Fprintf(&b, "  conflict %s: %s %s\n", c.Pos, c.Array, c.Reason)
	}
	for _, j := range lic.Ledger {
		word := "ok"
		if !j.OK {
			word = "FAIL"
		}
		fmt.Fprintf(&b, "  [%s] %s: %s\n", j.Rule, word, j.Detail)
	}
	return b.String()
}

func grantWord(ok bool) string {
	if ok {
		return "granted"
	}
	return "refused"
}

func formatIdent(id float64) string {
	switch {
	case math.IsInf(id, 1):
		return "+inf"
	case math.IsInf(id, -1):
		return "-inf"
	default:
		return fmt.Sprintf("%g", id)
	}
}

// refAccess groups the per-dimension Access entries of one reference.
type refAccess struct {
	ref   *lang.IndexExpr
	stmt  int
	write bool
	idx   []Interval
}

func groupAccesses(lf *LoopFacts) []*refAccess {
	var out []*refAccess
	byRef := map[*lang.IndexExpr]*refAccess{}
	for _, a := range lf.Accesses {
		ra := byRef[a.Ref]
		if ra == nil {
			ra = &refAccess{ref: a.Ref, stmt: a.Stmt, write: a.Write}
			byRef[a.Ref] = ra
			out = append(out, ra)
		}
		ra.idx = append(ra.idx, a.Index)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].stmt < out[j].stmt })
	return out
}

// alignedSubscripts reports textual equality of all subscripts — the
// same element in the same iteration.
func alignedSubscripts(a, b *lang.IndexExpr) bool {
	if len(a.Index) != len(b.Index) {
		return false
	}
	for d := range a.Index {
		if a.Index[d].String() != b.Index[d].String() {
			return false
		}
	}
	return true
}

// sameStmtOrder orders a write/write pair so it is reported once.
func sameStmtOrder(w, r *refAccess) bool { return w.stmt <= r.stmt }
