package dataflow

import (
	"math"
	"testing"
)

func TestBoundOrdering(t *testing.T) {
	n := Bound{Sym: "n"}
	cases := []struct {
		a, b      Bound
		leq, less bool
	}{
		{Finite(1), Finite(2), true, true},
		{Finite(2), Finite(2), true, false},
		{Finite(3), Finite(2), false, false},
		{NegInf, Finite(0), true, true},
		{Finite(0), PosInf, true, true},
		{NegInf, NegInf, true, false},
		{PosInf, PosInf, true, false},
		// c <= n + d iff c <= d (n >= 0 assumed).
		{Finite(0), n, true, false},          // 0 <= n but 0 < n unprovable (n may be 0)
		{Finite(-1), n, true, true},          // -1 <= n and -1 < n
		{Finite(0), Sym("n", 1), true, true}, // 0 < n+1
		{Finite(1), n, false, false},         // 1 <= n unprovable
		// n + c vs n + d compares offsets.
		{Sym("n", -1), n, true, true},
		{n, n, true, false},
		{Sym("n", 1), n, false, false},
		// sym vs const and distinct syms: unprovable.
		{n, Finite(100), false, false},
		{n, Bound{Sym: "m"}, false, false},
	}
	for _, c := range cases {
		if got := leq(c.a, c.b); got != c.leq {
			t.Errorf("leq(%s, %s) = %v, want %v", c.a, c.b, got, c.leq)
		}
		if got := lt(c.a, c.b); got != c.less {
			t.Errorf("lt(%s, %s) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
}

func TestIntervalArithmetic(t *testing.T) {
	a := Range(Finite(0), Finite(10))
	b := Range(Finite(-3), Finite(3))
	sum := a.Add(b)
	if !leq(sum.Lo, Finite(-3)) || !leq(Finite(13), sum.Hi) || !sum.Int {
		t.Errorf("Add: got %s", sum)
	}
	prod := a.Mul(b)
	if got, _ := prod.Lo.constVal(); got != -30 {
		t.Errorf("Mul lo: got %s", prod)
	}
	if got, _ := prod.Hi.constVal(); got != 30 {
		t.Errorf("Mul hi: got %s", prod)
	}
	diff := a.Sub(a)
	if got, _ := diff.Lo.constVal(); got != -10 {
		t.Errorf("Sub: got %s", diff)
	}

	// Symbolic: [0, n-1] + 1 = [1, n].
	iv := Range(Finite(0), Sym("n", -1)).Add(Singleton(1))
	if iv.Lo != Finite(1) || iv.Hi != (Bound{Sym: "n"}) || !iv.Int {
		t.Errorf("symbolic add: got %s", iv)
	}
	// Symbolic + symbolic widens to infinity.
	wide := Range(Finite(0), Sym("n", 0)).Add(Range(Finite(0), Sym("m", 0)))
	if wide.Hi.Inf != 1 {
		t.Errorf("symbolic+symbolic should widen: got %s", wide)
	}
	// Exact zero annihilates even a symbolic interval.
	zero := Singleton(0).Mul(Range(Finite(0), Sym("n", 0)))
	if v, ok := zero.IsSingleton(); !ok || v != 0 || !zero.Exact {
		t.Errorf("0 * [0,n] should be exactly 0: got %s", zero)
	}
	// Non-exact zero does not.
	nz := Interval{Lo: Finite(0), Hi: Finite(0), Int: true}.Mul(Range(NegInf, PosInf))
	if _, ok := nz.IsSingleton(); ok && nz.Exact {
		t.Errorf("non-exact zero must not annihilate: got %s", nz)
	}
}

func TestIntervalDiv(t *testing.T) {
	a := Range(Finite(2), Finite(8))
	if iv := a.Div(Range(Finite(2), Finite(4))); iv.Int {
		t.Errorf("division must drop integrality: %s", iv)
	} else if lo, _ := iv.Lo.constVal(); lo != 0.5 {
		t.Errorf("div lo: %s", iv)
	}
	// Divisor range containing zero widens to top.
	if iv := a.Div(Range(Finite(-1), Finite(1))); iv.Lo.Inf != -1 || iv.Hi.Inf != 1 {
		t.Errorf("div by range containing 0: %s", iv)
	}
}

func TestIntervalCalls(t *testing.T) {
	sq := Range(Finite(4), Finite(9)).Sqrt()
	if lo, _ := sq.Lo.constVal(); lo != 2 {
		t.Errorf("sqrt lo: %s", sq)
	}
	if hi, _ := sq.Hi.constVal(); hi != 3 {
		t.Errorf("sqrt hi: %s", sq)
	}
	abs := Range(Finite(-5), Finite(3)).Abs()
	if lo, _ := abs.Lo.constVal(); lo != 0 {
		t.Errorf("abs lo: %s", abs)
	}
	if hi, _ := abs.Hi.constVal(); hi != 5 {
		t.Errorf("abs hi: %s", abs)
	}
	mn := Range(Finite(0), Finite(10)).Min(Range(Finite(5), Finite(7)))
	if hi, _ := mn.Hi.constVal(); hi != 7 {
		t.Errorf("min hi: %s", mn)
	}
	mx := Range(Finite(0), Finite(10)).Max(Range(Finite(5), Finite(20)))
	if lo, _ := mx.Lo.constVal(); lo != 5 {
		t.Errorf("max lo: %s", mx)
	}
}

func TestWithinAndOutside(t *testing.T) {
	n := Bound{Sym: "n"}
	// The canonical obligation: i in [0, n-1] is inside extent n.
	if !Range(Finite(0), Sym("n", -1)).Within(n) {
		t.Error("[0, n-1] should be within [0, n)")
	}
	// i in [0, n] is not (the endpoint n escapes).
	if Range(Finite(0), n).Within(n) {
		t.Error("[0, n] must not be within [0, n)")
	}
	// A float interval is never within.
	if (Interval{Lo: Finite(0), Hi: Finite(1)}).Within(Finite(10)) {
		t.Error("non-integer interval must not be within")
	}
	// [n, 2n] is definitely outside [0, n)... only when n's positivity
	// gives n >= extent — extent is the same symbol, so leq(n, n) holds.
	if !Range(n, PosInf).DefinitelyOutside(n) {
		t.Error("[n, +inf] should be definitely outside [0, n)")
	}
	if !Range(Finite(-5), Finite(-1)).DefinitelyOutside(n) {
		t.Error("negative range should be definitely outside")
	}
	if Range(Finite(0), Finite(5)).DefinitelyOutside(Finite(10)) {
		t.Error("[0,5] is not outside [0,10)")
	}
	// Escapes needs exactness for the partial case.
	partial := Range(Finite(-1), Finite(5))
	if partial.Escapes(Finite(10)) {
		t.Error("inexact [-1,5] must not claim escape")
	}
	partial.Exact = true
	if !partial.Escapes(Finite(10)) {
		t.Error("exact [-1,5] attains -1, so it escapes")
	}
}

func TestScanInt32(t *testing.T) {
	iv := ScanInt32([]int32{3, 0, 7, 2})
	if lo, _ := iv.Lo.constVal(); lo != 0 {
		t.Errorf("scan lo: %s", iv)
	}
	if hi, _ := iv.Hi.constVal(); hi != 7 {
		t.Errorf("scan hi: %s", iv)
	}
	if !iv.Int || !iv.Exact {
		t.Errorf("scan qualifiers: %s", iv)
	}
	if !iv.Within(Finite(8)) || iv.Within(Finite(7)) {
		t.Errorf("scan bounds proof: %s", iv)
	}
	empty := ScanInt32(nil)
	if !empty.Within(Finite(1)) {
		t.Errorf("empty scan should be vacuously within any extent: %s", empty)
	}
}

func TestResolve(t *testing.T) {
	params := map[string]int{"n": 16}
	b := Sym("n", -1).Resolve(params)
	if v, ok := b.constVal(); !ok || v != 15 {
		t.Errorf("resolve: %s", b)
	}
	iv := Range(Finite(0), Sym("n", -1)).Resolve(params)
	if !iv.Within(Finite(16)) {
		t.Errorf("resolved interval: %s", iv)
	}
	if got := Sym("m", 2).Resolve(params); got.Sym != "m" {
		t.Errorf("unbound param must stay symbolic: %s", got)
	}
}

func TestSingletonNonInteger(t *testing.T) {
	s := Singleton(1.5)
	if s.Int {
		t.Error("1.5 is not an integer singleton")
	}
	if !Singleton(3).Int {
		t.Error("3 is an integer singleton")
	}
	if Singleton(math.Inf(1)).Int {
		t.Error("inf is not an integer")
	}
}
