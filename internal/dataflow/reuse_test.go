package dataflow

import (
	"strings"
	"testing"

	"irred/internal/inspector"
	"irred/internal/lang"
)

const cgSrc = `param ne, n
array row[ne] int
array y[ne]
array q[n]
array z[n]
loop i = 0, ne {
    q[row[i]] += y[i]
}
loop i = 0, ne {
    z[row[i]] += y[i]
}
loop i = 0, ne {
    q[row[i]] += z[row[i]] * y[i]
}`

const rewireSrc = `param ne, n, nb
array row[ne] int
array y[ne]
array q[n]
loop i = 0, ne {
    q[row[i]] += y[i]
}
loop j = 0, nb {
    row[j] = 0
}
loop i = 0, ne {
    q[row[i]] += y[i]
}`

func mustParse(t *testing.T, src string) *lang.Program {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

func TestProveReuseGrantsChain(t *testing.T) {
	rl := ProveReuse(mustParse(t, cgSrc), Options{})
	if len(rl.Grants) != 2 {
		t.Fatalf("grants = %d, want 2\n%s", len(rl.Grants), rl.Report())
	}
	if got := rl.ReuseOf(1); got != 0 {
		t.Errorf("ReuseOf(1) = %d, want 0", got)
	}
	if got := rl.ReuseOf(2); got != 0 {
		t.Errorf("ReuseOf(2) = %d, want 0", got)
	}
	if got := rl.ReuseOf(0); got != -1 {
		t.Errorf("ReuseOf(0) = %d, want -1 (the representative inspects)", got)
	}
	if err := rl.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	for _, g := range rl.Grants {
		rules := map[string]bool{}
		for _, j := range g.Ledger {
			if !j.OK {
				t.Errorf("grant %d→%d: ledger rule %q failed: %s", g.From, g.To, j.Rule, j.Detail)
			}
			rules[j.Rule] = true
		}
		for _, want := range []string{"same-indirection", "same-extent", "no-intervening-write", "no-resize"} {
			if !rules[want] {
				t.Errorf("grant %d→%d: ledger missing rule %q", g.From, g.To, want)
			}
		}
	}
	rep := rl.Report()
	for _, want := range []string{"grant loop 0 → loop 1", "grant loop 0 → loop 2", "row(*)"} {
		if !strings.Contains(rep, want) {
			t.Errorf("Report missing %q:\n%s", want, rep)
		}
	}
}

func TestProveReuseRefusesAfterWrite(t *testing.T) {
	prog := mustParse(t, rewireSrc)
	rl := ProveReuse(prog, Options{})
	if len(rl.Grants) != 0 {
		t.Fatalf("grants = %d, want 0\n%s", len(rl.Grants), rl.Report())
	}
	var stale []ReuseRefusal
	for _, r := range rl.Refusals {
		if r.Stale {
			stale = append(stale, r)
		}
	}
	if len(stale) != 1 {
		t.Fatalf("stale refusals = %d, want 1\n%s", len(stale), rl.Report())
	}
	r := stale[0]
	if r.From != 0 || r.To != 2 || r.Array != "row" {
		t.Errorf("stale refusal = %d→%d on %q, want 0→2 on row", r.From, r.To, r.Array)
	}
	// The refusal points at the invalidating write, not at either loop.
	wantPos := prog.Loops[1].Body[0].Pos
	if r.Pos != wantPos {
		t.Errorf("stale refusal at %s, want the write at %s", r.Pos, wantPos)
	}
	if err := rl.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestProveReuseSelfInvalidation(t *testing.T) {
	// A loop that rewires its own indirection: the write lands after its
	// inspection, so the next identical loop must re-inspect.
	src := `param ne, n
array row[ne] int
array q[n]
loop i = 0, ne {
    q[row[i]] += 1
    row[i] = 0
}
loop i = 0, ne {
    q[row[i]] += 1
}`
	rl := ProveReuse(mustParse(t, src), Options{})
	if len(rl.Grants) != 0 {
		t.Fatalf("grants = %d, want 0 (representative invalidated itself)\n%s", len(rl.Grants), rl.Report())
	}
	found := false
	for _, r := range rl.Refusals {
		if r.Stale && r.From == 0 && r.To == 1 && r.Array == "row" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no stale 0→1 refusal on row:\n%s", rl.Report())
	}
}

func TestProveReuseExtentMismatch(t *testing.T) {
	src := `param ne, n, m
array row[ne] int
array q[n]
array r[m]
loop i = 0, ne {
    q[row[i]] += 1
}
loop i = 0, ne {
    r[row[i]] += 1
}`
	rl := ProveReuse(mustParse(t, src), Options{})
	if len(rl.Grants) != 0 {
		t.Fatalf("grants = %d, want 0 (NumElems facts differ)\n%s", len(rl.Grants), rl.Report())
	}
	found := false
	for _, r := range rl.Refusals {
		if !r.Stale && strings.Contains(r.Reason, "extent facts differ") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no extent-mismatch refusal:\n%s", rl.Report())
	}
	// Binding both extents to the same value makes the facts agree again.
	rl = ProveReuse(mustParse(t, src), Options{Params: map[string]int{"n": 40, "m": 40}})
	if len(rl.Grants) != 1 {
		t.Fatalf("grants = %d, want 1 once n and m are bound equal\n%s", len(rl.Grants), rl.Report())
	}
	if err := rl.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestReuseVerifyRejectsForgedGrant(t *testing.T) {
	prog := mustParse(t, rewireSrc)
	rl := ProveReuse(prog, Options{})

	// Forge the grant the prover refused: loop 2 reusing loop 0's
	// schedules across the rewire.
	forged := &ReuseGrant{From: 0, To: 2, Arrays: []string{"row"}}
	forged.note("no-intervening-write", true, "forged")
	rl.Grants = append(rl.Grants, forged)
	if err := rl.Verify(); err == nil {
		t.Fatal("Verify accepted a grant across an intervening indirection write")
	} else if !strings.Contains(err.Error(), "write") {
		t.Fatalf("Verify error %q does not name the write", err)
	}
}

func TestReuseVerifyRejectsTampering(t *testing.T) {
	valid := func(t *testing.T) *ReuseLicense {
		rl := ProveReuse(mustParse(t, cgSrc), Options{})
		if err := rl.Verify(); err != nil {
			t.Fatalf("pristine license fails Verify: %v", err)
		}
		if len(rl.Grants) == 0 {
			t.Fatal("no grants to tamper with")
		}
		return rl
	}

	t.Run("failed ledger rule", func(t *testing.T) {
		rl := valid(t)
		rl.Grants[0].Ledger[0].OK = false
		if err := rl.Verify(); err == nil || !strings.Contains(err.Error(), "failed ledger rule") {
			t.Fatalf("Verify = %v, want failed-ledger-rule error", err)
		}
	})
	t.Run("widened array set", func(t *testing.T) {
		rl := valid(t)
		rl.Grants[0].Arrays = []string{"row", "y"}
		if err := rl.Verify(); err == nil {
			t.Fatal("Verify accepted a grant covering arrays the signature does not")
		}
	})
	t.Run("reversed order", func(t *testing.T) {
		rl := valid(t)
		rl.Grants[0].From, rl.Grants[0].To = rl.Grants[0].To, rl.Grants[0].From
		if err := rl.Verify(); err == nil {
			t.Fatal("Verify accepted a backwards grant")
		}
	})
	t.Run("out of range", func(t *testing.T) {
		rl := valid(t)
		rl.Grants[0].To = 99
		if err := rl.Verify(); err == nil {
			t.Fatal("Verify accepted a grant naming a nonexistent loop")
		}
	})
	t.Run("reattached program", func(t *testing.T) {
		rl := valid(t)
		rl.Prog = mustParse(t, rewireSrc)
		if err := rl.Verify(); err == nil {
			t.Fatal("Verify accepted a license reattached to a different program")
		}
	})
	t.Run("no program", func(t *testing.T) {
		rl := valid(t)
		rl.Prog = nil
		if err := rl.Verify(); err == nil {
			t.Fatal("Verify accepted a license with no program")
		}
	})
}

func TestProveAllReuse(t *testing.T) {
	checked, violations := ProveAllReuse(8, 4)
	if checked == 0 {
		t.Fatal("no strategies checked")
	}
	for _, v := range violations {
		t.Errorf("%v", v)
	}
}

func TestCheckReuseStrategyCatchesLyingScenario(t *testing.T) {
	// A scenario whose ground-truth contents ignore the program's rewire:
	// the prover refuses (stale) but brute force finds identical
	// schedules, so the checker must flag the disagreement rather than
	// pass vacuously.
	sc := reuseScenario{
		name:      "lying",
		src:       rewireSrc,
		wantStale: 1,
		indAt: func(loop, ne, n int) [][]int32 {
			return [][]int32{baseRow(ne, n)} // never applies the write
		},
	}
	out := CheckReuseStrategy(2, 2, inspector.Block, sc)
	if len(out) == 0 {
		t.Fatal("checker accepted a scenario whose contents contradict the program")
	}
}
