package dataflow

import (
	"sort"

	"irred/internal/lang"
)

// EnvOptions builds analysis Options from concrete bindings: parameter
// values plus a one-pass min/max scan of every bound indirection array.
// It returns the options and the sorted list of scanned array names (the
// provenance recorded by Facts). It is the single source of truth for
// seeding the interval domain from an environment — codegen and the fuzz
// harness both go through it.
func EnvOptions(params map[string]int, ints map[string][]int32) (Options, []string) {
	opts := Options{Params: params, Contents: map[string]Interval{}}
	scanned := make([]string, 0, len(ints))
	for name, data := range ints {
		opts.Contents[name] = ScanInt32(data)
		scanned = append(scanned, name)
	}
	sort.Strings(scanned)
	return opts, scanned
}

// ScalarReads collects the scalars read anywhere in the loop body —
// right-hand sides and target subscripts. Shared by the lint layer
// (IRL009/IRL014 partitioning) and the legality pass.
func ScalarReads(l *lang.Loop) map[string]bool {
	used := map[string]bool{}
	note := func(e lang.Expr) {
		lang.Walk(e, func(x lang.Expr) {
			if id, ok := x.(*lang.Ident); ok {
				used[id.Name] = true
			}
		})
	}
	for _, st := range l.Body {
		note(st.RHS)
		if st.Target != nil {
			for _, sub := range st.Target.Index {
				note(sub)
			}
		}
	}
	return used
}
