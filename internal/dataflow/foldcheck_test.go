package dataflow

import (
	"testing"

	"irred/internal/algebra"
	"irred/internal/lang"
)

func TestProveAllFoldBounded(t *testing.T) {
	checked, violations := ProveAllFold(8, 4)
	if checked != 32*len(foldOps) {
		t.Fatalf("checked %d (strategy, op) pairs, want %d", checked, 32*len(foldOps))
	}
	if len(violations) != 0 {
		t.Fatalf("rotation and tree-fold must be bitwise-equal to the sequential fold; got %d violations, first: %v",
			len(violations), violations[0])
	}
}

// TestNonAssociativeOpFailsFoldCheck proves the checker can fail: a
// subtraction-like combine (a - b) is neither associative nor
// commutative, so regrouped fold orders must diverge from sequential at
// P > 1.
func TestNonAssociativeOpFailsFoldCheck(t *testing.T) {
	sub := algebra.Op{
		Kind:     algebra.Custom,
		Expr:     &lang.BinExpr{Op: '-', L: &lang.Ident{Name: "a"}, R: &lang.Ident{Name: "b"}},
		Ident:    0,
		HasIdent: true,
	}
	// Route the custom op through CheckFoldStrategy by reusing its body
	// via a local harness: the exported checker is keyed on builtin
	// kinds, so verify directly that regrouping subtraction diverges.
	seqVal := 3.0
	vals := []float64{1, 2, 3, 4}
	for _, v := range vals {
		seqVal = sub.Fold(seqVal, v)
	}
	partA := sub.Fold(sub.Fold(0, vals[0]), vals[1])
	partB := sub.Fold(sub.Fold(0, vals[2]), vals[3])
	grouped := sub.Fold(sub.Fold(3.0, partA), partB)
	if grouped == seqVal {
		t.Fatalf("pre-grouped subtraction agreed with sequential (%g); the equivalence check would be vacuous", grouped)
	}
}

// corruptFoldOwnership breaks PhaseOfPortion so two processors appear to
// fold into an element during the same phase — the rotation order
// becomes ambiguous and W6 must notice.
type corruptFoldOwnership struct {
	Ownership
}

func (c corruptFoldOwnership) PhaseOfPortion(p, q int) int {
	return 0 // every processor claims phase 0 for every portion
}

func TestCorruptedPhaseOrderFailsFoldCheck(t *testing.T) {
	base := ConfigOwnership(4, 2)
	violations := CheckFoldStrategy(4, 2, corruptFoldOwnership{base}, algebra.Add)
	if len(violations) == 0 {
		t.Fatal("ambiguous phase order must produce W6 violations")
	}
	for _, v := range violations {
		if v.Kind != "W6" {
			t.Errorf("unexpected violation kind %s", v.Kind)
		}
	}
}
