package dataflow

import (
	"strings"
	"testing"
)

func TestProveAllBounded(t *testing.T) {
	checked, violations := ProveAll(8, 4)
	if checked != 32 {
		t.Fatalf("checked %d strategies, want 32", checked)
	}
	if len(violations) != 0 {
		t.Fatalf("production ownership map must verify; got %d violations, first: %v",
			len(violations), violations[0])
	}
}

// corruptOwnership wraps the production map but swaps the portions of two
// processors in one phase for one of them only — breaking the single-writer
// invariant without touching the rest of the protocol.
type corruptOwnership struct {
	Ownership
	phase, proc, portion int
}

func (c corruptOwnership) PortionAt(p, ph int) int {
	if p == c.proc && ph == c.phase {
		return c.portion
	}
	return c.Ownership.PortionAt(p, ph)
}

func TestCorruptedOwnershipFailsLoudly(t *testing.T) {
	base := ConfigOwnership(4, 2)
	// Processor 1 claims processor 0's phase-0 portion.
	corrupt := corruptOwnership{Ownership: base, phase: 0, proc: 1, portion: base.PortionAt(0, 0)}
	violations := CheckStrategy(4, 2, corrupt)
	if len(violations) == 0 {
		t.Fatal("corrupted ownership map must produce violations")
	}
	kinds := map[string]bool{}
	for _, v := range violations {
		kinds[v.Kind] = true
		if v.P != 4 || v.K != 2 {
			t.Errorf("violation carries wrong strategy: %+v", v)
		}
	}
	// The double-claim breaks single-writer, completeness (the abandoned
	// portion is never owned by proc 1), and the inverse maps.
	for _, want := range []string{"W1", "W2"} {
		if !kinds[want] {
			t.Errorf("expected a %s violation, got kinds %v (violations: %v)", want, kinds, violations)
		}
	}
	if msg := violations[0].Error(); !strings.Contains(msg, "P=4, k=2") {
		t.Errorf("violation message should name the strategy: %s", msg)
	}
}

// brokenRotation keeps per-phase injectivity but uses a non-systolic
// permutation (identity rotation by 1 phase instead of k), violating W3
// for k > 1 while W1 still holds.
type brokenRotation struct{ p, k int }

func (b brokenRotation) Procs() int              { return b.p }
func (b brokenRotation) Phases() int             { return b.p * b.k }
func (b brokenRotation) PortionAt(p, ph int) int { return (p + ph) % (b.p * b.k) }
func (b brokenRotation) OwnerAt(q, ph int) int {
	for p := 0; p < b.p; p++ {
		if b.PortionAt(p, ph) == q {
			return p
		}
	}
	return -1
}
func (b brokenRotation) PhaseOfPortion(p, q int) int {
	n := b.p * b.k
	return ((q-p)%n + n) % n
}

func TestBrokenRotationCaught(t *testing.T) {
	violations := CheckStrategy(4, 2, brokenRotation{p: 4, k: 2})
	var w3 bool
	for _, v := range violations {
		if v.Kind == "W3" {
			w3 = true
		}
	}
	if !w3 {
		t.Fatalf("stride-1 rotation must violate the systolic k-phase motion: %v", violations)
	}
}

func TestCheckStrategyShapeGuard(t *testing.T) {
	violations := CheckStrategy(3, 2, ConfigOwnership(4, 2))
	if len(violations) == 0 || violations[0].Kind != "W0" {
		t.Fatalf("shape mismatch must be reported: %v", violations)
	}
}
