package dataflow

import (
	"fmt"
	"sort"
	"strings"

	"irred/internal/lang"
)

// Obligation is one discharged (or undischarged) bounds-check obligation
// in a proof artifact: a single subscript dimension of a single reference
// occurrence, the interval derived for it, and the extent it was compared
// against.
type Obligation struct {
	Ref    string   // rendered reference, e.g. "x[ia[i, 0]]"
	Pos    lang.Pos // source position of the reference
	Dim    int      // subscript dimension
	Index  string   // rendered subscript interval
	Extent string   // rendered extent
	Write  bool
	Proven bool
}

// Facts is the proof artifact attached to a compiled loop. It records
// every bounds obligation the analysis discharged, whether the whole loop
// is proven (AllProven → the bytecode runs without range checks), and
// whether the indirection-array contents feeding the rotated array are
// proven inside [0, NumElems) (IndProven → the native engine skips
// per-write target validation). Facts is pure data — safe to retain,
// print, and compare after the loop is gone.
type Facts struct {
	// LoopPos and LoopDesc identify the proven loop for reports.
	LoopPos  lang.Pos
	LoopDesc string

	Obligations []Obligation

	// AllProven: every subscript occurrence of the compiled body is proven
	// in-bounds, so the bytecode was emitted without range checks.
	AllProven bool

	// IndProven: every extracted indirection value is proven inside
	// [0, NumElems), so the native engine's per-write target validation is
	// redundant and skipped. NumElems records the extent the contents were
	// proven against; a runtime with a different extent must ignore the
	// proof.
	IndProven bool
	NumElems  int

	// Scanned lists the indirection arrays whose content intervals came
	// from a runtime ScanInt32 pass rather than static reasoning.
	Scanned []string

	proven map[*lang.IndexExpr]bool
}

// Proof assembles the artifact for a loop from its analysis facts.
// scanned names the arrays whose Contents intervals were measured at
// runtime (they become part of the proof's provenance).
func (lf *LoopFacts) Proof(scanned []string) *Facts {
	f := &Facts{
		LoopPos:   lf.Loop.Pos,
		LoopDesc:  fmt.Sprintf("loop %s = %s, %s", lf.Loop.Var, lf.Loop.Lo, lf.Loop.Hi),
		AllProven: lf.AllProven(),
		Scanned:   append([]string(nil), scanned...),
		proven:    map[*lang.IndexExpr]bool{},
	}
	sort.Strings(f.Scanned)
	for _, a := range lf.Accesses {
		f.Obligations = append(f.Obligations, Obligation{
			Ref:    a.Ref.String(),
			Pos:    a.Ref.Pos,
			Dim:    a.Dim,
			Index:  a.Index.String(),
			Extent: a.Extent.String(),
			Write:  a.Write,
			Proven: a.Status == Proven,
		})
		if p, seen := f.proven[a.Ref]; !seen {
			f.proven[a.Ref] = a.Status == Proven
		} else {
			f.proven[a.Ref] = p && a.Status == Proven
		}
	}
	return f
}

// RefProven reports whether the artifact proves every dimension of the
// given reference occurrence in-bounds. References the artifact has never
// seen are unproven.
func (f *Facts) RefProven(ix *lang.IndexExpr) bool {
	if f == nil || f.proven == nil {
		return false
	}
	return f.proven[ix]
}

// ProveIndirection checks the runtime side of the IndProven claim: every
// value of every given indirection column lies in [0, numElems). Hand-
// wired kernels use it to attach a minimal proof to their loops.
func ProveIndirection(numElems int, cols ...[]int32) bool {
	if numElems <= 0 {
		return false
	}
	ext := Finite(float64(numElems))
	for _, c := range cols {
		if !ScanInt32(c).Within(ext) {
			return false
		}
	}
	return true
}

// IndirectionFacts builds a minimal proof artifact for a hand-wired loop:
// no per-reference obligations, just the scanned IndProven claim. Returns
// nil when the contents are not all in range, so the result can be
// assigned to Loop.Proof unconditionally.
func IndirectionFacts(desc string, numElems int, cols ...[]int32) *Facts {
	if !ProveIndirection(numElems, cols...) {
		return nil
	}
	return &Facts{
		LoopDesc:  desc,
		IndProven: true,
		NumElems:  numElems,
		Scanned:   []string{"(indirection columns)"},
	}
}

// Report renders the artifact as the optimization report shown by
// `irredc -opt-report`.
func (f *Facts) Report() string {
	var b strings.Builder
	state := "INCOMPLETE (checked execution)"
	if f.AllProven {
		state = "complete (unchecked execution)"
	}
	fmt.Fprintf(&b, "%s at %s: bounds proof %s\n", f.LoopDesc, f.LoopPos, state)
	for _, o := range f.Obligations {
		verdict := "UNPROVEN -> checked"
		if o.Proven {
			verdict = "proven"
		}
		kind := "read "
		if o.Write {
			kind = "write"
		}
		fmt.Fprintf(&b, "  %s %-24s dim %d: %s within [0, %s): %s\n",
			kind, o.Ref, o.Dim, o.Index, o.Extent, verdict)
	}
	if f.IndProven {
		fmt.Fprintf(&b, "  indirection contents within [0, %d): native target checks elided\n", f.NumElems)
	} else {
		fmt.Fprintf(&b, "  indirection contents unproven: native target checks retained\n")
	}
	if len(f.Scanned) > 0 {
		fmt.Fprintf(&b, "  runtime scans: %s\n", strings.Join(f.Scanned, ", "))
	}
	return b.String()
}
