// Package dataflow is an abstract-interpretation engine over the IRL AST:
// interval (value-range) analysis of scalars, subscripts and
// indirection-array contents, reaching definitions, and liveness over
// straight-line loop bodies. Its results feed three consumers:
//
//   - precise lint diagnostics (IRL013+): provable out-of-bounds
//     subscripts, dataflow-dead statements, reads of never-written array
//     ranges, loop-invariant subexpressions;
//   - proof-carrying bounds-check elimination: when every subscript of a
//     compiled loop is proven in-bounds, the bytecode compiler and the
//     native runtime drop per-access validation, recording the discharged
//     obligations in a Facts artifact attached to the loop;
//   - a bounded model checker (modelcheck.go) for the systolic ownership
//     protocol, proving the single-writer and rotation invariants for all
//     small (P, k) strategies.
//
// The interval domain is symbolic: a bound is a constant or `param + c`
// where param is a declared program parameter, assumed to be a nonnegative
// integer (parameters are array extents and trip counts). That one
// assumption discharges the canonical obligation — `i` in [0, n-1] is
// inside an extent-n array — without knowing n. Concrete parameter values
// and one-pass min/max scans of indirection arrays (ScanInt32) tighten the
// same analysis at compile time for the proof-carrying path.
package dataflow

import (
	"fmt"
	"sort"
	"strings"

	"irred/internal/lang"
)

// Options seeds the analysis with optional concrete knowledge.
type Options struct {
	// Params binds parameters to concrete values. Unbound parameters stay
	// symbolic (each is assumed only to be a nonnegative integer).
	Params map[string]int
	// Contents gives the value interval of an int (indirection) array's
	// contents, typically from ScanInt32 over the bound data. Arrays
	// without an entry are assumed to hold any integer.
	Contents map[string]Interval
}

// Status classifies one bounds obligation.
type Status int

const (
	// Unknown: the interval neither proves the access in-bounds nor out.
	Unknown Status = iota
	// Proven: every value of the subscript interval is an integer inside
	// [0, extent).
	Proven
	// OOB: every value of the subscript interval lies outside [0, extent) —
	// the access faults whenever it executes.
	OOB
)

func (s Status) String() string {
	switch s {
	case Proven:
		return "proven"
	case OOB:
		return "out-of-bounds"
	default:
		return "unknown"
	}
}

// Access records the interval analysis of one subscript dimension of one
// array reference occurrence.
type Access struct {
	Ref    *lang.IndexExpr // the referencing expression (identity matters)
	Stmt   int             // body index of the owning statement
	Dim    int             // subscript dimension
	Write  bool            // true when Ref is the statement's target
	Index  Interval        // interval of the subscript expression
	Extent Bound           // declared extent of the dimension
	Status Status
}

// LoopFacts is the dataflow result for one loop.
type LoopFacts struct {
	Loop *lang.Loop
	// Var is the interval of the loop variable over [lo, hi).
	Var Interval
	// Scalars maps each body-defined scalar to the interval of its value
	// (after its definition, within one iteration).
	Scalars map[string]Interval
	// RHS holds the interval of each body statement's right-hand side.
	RHS []Interval
	// Accesses lists every subscript obligation in body order (targets and
	// right-hand sides, including subscripts of indirection arrays).
	Accesses []Access
	// Dead lists body indices of dataflow-dead statements: reductions whose
	// contribution is provably zero, and scalar definitions whose value can
	// never reach a live statement. Sorted ascending.
	Dead []int
	// ZeroRed is the subset of Dead that are provably-zero reductions.
	ZeroRed []int
	// Reaching maps, per body statement, each scalar the statement reads to
	// the body index of the definition that reaches the read; -1 means no
	// definition reaches it (the read faults at runtime, since scalars are
	// reset every iteration).
	Reaching []map[string]int
	// Invariant lists the maximal non-trivial loop-invariant subexpressions
	// of right-hand sides, in body order.
	Invariant []InvariantExpr
}

// InvariantExpr is one loop-invariant right-hand-side subexpression.
type InvariantExpr struct {
	Stmt int // body index
	Expr lang.Expr
}

// AllProven reports whether every subscript obligation of the loop is
// proven in-bounds — the condition for unchecked execution.
func (lf *LoopFacts) AllProven() bool {
	if len(lf.Accesses) == 0 {
		return false
	}
	for _, a := range lf.Accesses {
		if a.Status != Proven {
			return false
		}
	}
	return true
}

// RefProven reports whether every dimension of the given reference
// occurrence is proven in-bounds. The lookup is by node identity.
func (lf *LoopFacts) RefProven(ix *lang.IndexExpr) bool {
	found := false
	for _, a := range lf.Accesses {
		if a.Ref == ix {
			found = true
			if a.Status != Proven {
				return false
			}
		}
	}
	return found
}

// IsDead reports whether body statement idx is dataflow-dead.
func (lf *LoopFacts) IsDead(idx int) bool {
	for _, d := range lf.Dead {
		if d == idx {
			return true
		}
	}
	return false
}

// StaleRead is a cross-loop finding: a later loop reads elements of an
// array that the program writes, at indices provably disjoint from
// everything written — the read can only observe initial (input) data.
type StaleRead struct {
	Array   string
	Ref     *lang.IndexExpr
	Loop    int // index of the reading loop in Program.Loops
	Read    Interval
	Written Interval
}

// Result is the whole-program analysis.
type Result struct {
	Prog  *lang.Program
	Opts  Options
	Loops []*LoopFacts
	// Stale lists reads of never-written element ranges, program order.
	Stale []StaleRead
}

// AnalyzeProgram runs the loop analysis on every loop and the cross-loop
// written-range analysis. The analysis is total: malformed references
// (undeclared arrays, wrong dimensionality) simply contribute no facts —
// the parser and Section 4 analysis own those rejections.
func AnalyzeProgram(prog *lang.Program, opts Options) *Result {
	res := &Result{Prog: prog, Opts: opts}
	// written tracks, per float array, the hull of all element intervals
	// written by loops seen so far.
	written := map[string]Interval{}
	for li, l := range prog.Loops {
		lf := AnalyzeLoop(prog, l, opts)
		res.Loops = append(res.Loops, lf)

		// Reads of previously-written arrays at provably disjoint indices.
		wroteHere := map[string]bool{}
		for _, a := range lf.Accesses {
			if a.Write {
				wroteHere[a.Ref.Array] = true
			}
		}
		for _, a := range lf.Accesses {
			decl := prog.Array(a.Ref.Array)
			if a.Write || decl == nil || decl.Int || len(decl.Dims) != 1 {
				continue
			}
			w, ok := written[a.Ref.Array]
			if !ok || wroteHere[a.Ref.Array] {
				continue
			}
			if disjoint(a.Index, w) {
				res.Stale = append(res.Stale, StaleRead{
					Array: a.Ref.Array, Ref: a.Ref, Loop: li,
					Read: a.Index, Written: w,
				})
			}
		}
		for _, a := range lf.Accesses {
			decl := prog.Array(a.Ref.Array)
			if !a.Write || decl == nil || decl.Int {
				continue
			}
			iv := a.Index
			if len(decl.Dims) != 1 {
				// Multi-dimensional writes: give up on range tracking and
				// treat the whole array as written.
				iv = Top()
			}
			if w, ok := written[a.Ref.Array]; ok {
				written[a.Ref.Array] = Join(w, iv)
			} else {
				written[a.Ref.Array] = iv
			}
		}
	}
	return res
}

// disjoint reports whether the two intervals are provably disjoint.
func disjoint(a, b Interval) bool {
	return lt(a.Hi, b.Lo) || lt(b.Hi, a.Lo)
}

// AnalyzeLoop runs interval analysis, reaching definitions, liveness, dead
// statement detection and invariant detection over one loop body.
func AnalyzeLoop(prog *lang.Program, l *lang.Loop, opts Options) *LoopFacts {
	lf := &LoopFacts{Loop: l, Scalars: map[string]Interval{}}
	ev := &evaluator{prog: prog, loop: l, opts: opts, lf: lf, env: lf.Scalars}

	// Loop variable: [lo, hi-1]. The bound expressions are evaluated with
	// the loop variable itself unknown (referencing it there is a runtime
	// error anyway).
	ev.varKnown = false
	loIv := ev.evalNoRecord(l.Lo)
	hiIv := ev.evalNoRecord(l.Hi)
	lf.Var = Interval{
		Lo:  loIv.Lo,
		Hi:  addB(hiIv.Hi, Finite(-1), +1),
		Int: loIv.Int && hiIv.Int,
		// Not exact: the loop may run zero iterations, in which case the
		// endpoints are never attained.
	}
	ev.varKnown = true

	// Forward pass over the straight-line body. Scalars are reset every
	// iteration by the reference semantics, so a use before its definition
	// is a runtime fault, not a loop-carried dependence: a single pass
	// reaches the fixpoint. Reaching definitions fall out of the same walk.
	lastDef := map[string]int{}
	lf.RHS = make([]Interval, len(l.Body))
	lf.Reaching = make([]map[string]int, len(l.Body))
	for idx, st := range l.Body {
		ev.stmt = idx
		lf.Reaching[idx] = reachingOf(ev, st, lastDef)
		rhs := ev.eval(st.RHS)
		lf.RHS[idx] = rhs
		if st.Scalar != "" {
			lf.Scalars[st.Scalar] = rhs
			lastDef[st.Scalar] = idx
		} else if st.Target != nil {
			ev.access(st.Target, true)
		}
	}

	lf.Dead, lf.ZeroRed = deadStatements(ev, l, lf)
	lf.Invariant = invariants(prog, l, lf)
	return lf
}

// reachingOf records which definition reaches each scalar read of st.
func reachingOf(ev *evaluator, st *lang.Assign, lastDef map[string]int) map[string]int {
	var m map[string]int
	note := func(e lang.Expr) {
		lang.Walk(e, func(x lang.Expr) {
			id, ok := x.(*lang.Ident)
			if !ok || !ev.isScalar(id.Name) {
				return
			}
			if m == nil {
				m = map[string]int{}
			}
			if d, ok := lastDef[id.Name]; ok {
				m[id.Name] = d
			} else {
				m[id.Name] = -1
			}
		})
	}
	note(st.RHS)
	if st.Target != nil {
		for _, sub := range st.Target.Index {
			note(sub)
		}
	}
	return m
}

// evaluator computes expression intervals, recording subscript obligations
// as it descends through array references.
type evaluator struct {
	prog     *lang.Program
	loop     *lang.Loop
	opts     Options
	lf       *LoopFacts
	env      map[string]Interval
	stmt     int
	varKnown bool
	record   bool
}

// isParam reports whether name is a declared parameter.
func (ev *evaluator) isParam(name string) bool {
	for _, p := range ev.prog.Params {
		if p == name {
			return true
		}
	}
	return false
}

// isScalar reports whether name is a loop-body temporary: not the loop
// variable, not a parameter, not an array.
func (ev *evaluator) isScalar(name string) bool {
	return name != ev.loop.Var && !ev.isParam(name) && ev.prog.Array(name) == nil
}

// evalNoRecord evaluates without recording Access entries (loop bounds).
func (ev *evaluator) evalNoRecord(e lang.Expr) Interval {
	saved := ev.record
	ev.record = false
	iv := ev.evalInner(e)
	ev.record = saved
	return iv
}

// eval evaluates a body expression, recording every subscript obligation.
func (ev *evaluator) eval(e lang.Expr) Interval {
	ev.record = true
	return ev.evalInner(e)
}

func (ev *evaluator) evalInner(e lang.Expr) Interval {
	switch x := e.(type) {
	case *lang.Num:
		return Singleton(x.Val)
	case *lang.Ident:
		if x.Name == ev.loop.Var {
			if ev.varKnown {
				return ev.lf.Var
			}
			return Top()
		}
		if iv, ok := ev.env[x.Name]; ok {
			return iv
		}
		if ev.isParam(x.Name) {
			return paramInterval(x.Name, ev.opts.Params)
		}
		return Top()
	case *lang.IndexExpr:
		if ev.record {
			ev.access(x, false)
		} else {
			for _, sub := range x.Index {
				ev.evalInner(sub)
			}
		}
		decl := ev.prog.Array(x.Array)
		if decl != nil && decl.Int {
			if iv, ok := ev.opts.Contents[x.Array]; ok {
				return iv
			}
			return TopInt()
		}
		return Top()
	case *lang.BinExpr:
		a := ev.evalInner(x.L)
		b := ev.evalInner(x.R)
		switch x.Op {
		case '+':
			return a.Add(b)
		case '-':
			return a.Sub(b)
		case '*':
			return a.Mul(b)
		case '/':
			return a.Div(b)
		}
		return Top()
	case *lang.UnExpr:
		return ev.evalInner(x.X).Neg()
	case *lang.CallExpr:
		args := make([]Interval, len(x.Args))
		for i, a := range x.Args {
			args[i] = ev.evalInner(a)
		}
		switch x.Fn {
		case "sqrt":
			if len(args) == 1 {
				return args[0].Sqrt()
			}
		case "abs":
			if len(args) == 1 {
				return args[0].Abs()
			}
		case "min":
			if len(args) == 2 {
				return args[0].Min(args[1])
			}
		case "max":
			if len(args) == 2 {
				return args[0].Max(args[1])
			}
		}
		return Top()
	}
	return Top()
}

// access records the bounds obligations of one array reference, evaluating
// (and thereby recording) its subscripts first.
func (ev *evaluator) access(ix *lang.IndexExpr, write bool) {
	decl := ev.prog.Array(ix.Array)
	if decl == nil || len(ix.Index) != len(decl.Dims) {
		// Malformed; the parser/analysis layers reject these. Still walk the
		// subscripts so nested references are recorded.
		for _, sub := range ix.Index {
			ev.evalInner(sub)
		}
		return
	}
	for d, sub := range ix.Index {
		iv := ev.evalInner(sub)
		ext := extentBound(decl.Dims[d], ev.opts.Params)
		st := Unknown
		switch {
		case iv.Within(ext):
			st = Proven
		case iv.DefinitelyOutside(ext):
			st = OOB
		}
		ev.lf.Accesses = append(ev.lf.Accesses, Access{
			Ref: ix, Stmt: ev.stmt, Dim: d, Write: write,
			Index: iv, Extent: ext, Status: st,
		})
	}
}

// paramInterval is the interval of a parameter reference: its concrete
// value when bound, else the symbolic point [p, p] (p assumed >= 0).
func paramInterval(name string, params map[string]int) Interval {
	if v, ok := params[name]; ok {
		return Singleton(float64(v))
	}
	return Interval{Lo: Bound{Sym: name}, Hi: Bound{Sym: name}, Int: true, Exact: true}
}

// extentBound is the declared extent of one dimension as a bound.
func extentBound(x lang.Extent, params map[string]int) Bound {
	if x.Param == "" {
		return Finite(float64(x.Lit))
	}
	if v, ok := params[x.Param]; ok {
		return Finite(float64(v))
	}
	return Bound{Sym: x.Param}
}

// deadStatements runs the liveness pass: reductions with provably-zero
// contributions are dead outright; a scalar definition is dead when no
// live statement after it (before any redefinition) reads the scalar.
// Bodies are straight-line and scalars reset per iteration, so one
// backward pass is the fixpoint.
func deadStatements(ev *evaluator, l *lang.Loop, lf *LoopFacts) (dead, zero []int) {
	isZeroRed := func(idx int) bool {
		st := l.Body[idx]
		// Only additive reductions are no-ops on a zero contribution:
		// 0 is not the identity of *=, min= or max=.
		if st.Target == nil || (st.Op != lang.OpAdd && st.Op != lang.OpSub) {
			return false
		}
		iv := lf.RHS[idx]
		v, ok := iv.IsSingleton()
		return ok && iv.Exact && v == 0
	}
	live := map[string]bool{}
	markReads := func(st *lang.Assign) {
		note := func(e lang.Expr) {
			lang.Walk(e, func(x lang.Expr) {
				if id, ok := x.(*lang.Ident); ok && ev.isScalar(id.Name) {
					live[id.Name] = true
				}
			})
		}
		note(st.RHS)
		if st.Target != nil {
			for _, sub := range st.Target.Index {
				note(sub)
			}
		}
	}
	deadSet := map[int]bool{}
	for idx := len(l.Body) - 1; idx >= 0; idx-- {
		st := l.Body[idx]
		if st.Target != nil {
			if isZeroRed(idx) {
				deadSet[idx] = true
				zero = append(zero, idx)
				continue
			}
			markReads(st)
			continue
		}
		if !live[st.Scalar] {
			deadSet[idx] = true
			continue
		}
		delete(live, st.Scalar)
		markReads(st)
	}
	for idx := range deadSet {
		dead = append(dead, idx)
	}
	sort.Ints(dead)
	sort.Ints(zero)
	return dead, zero
}

// invariants finds the maximal non-trivial loop-invariant subexpressions
// of each statement's right-hand side. An expression is invariant when it
// references neither the loop variable nor any body-defined scalar, and
// every array it reads has invariant subscripts and is not written by the
// loop. Trivial candidates (literals, bare identifiers, pure-constant
// arithmetic) are skipped — only BinExpr/CallExpr nodes that mention at
// least one identifier or array element are worth hoisting.
func invariants(prog *lang.Program, l *lang.Loop, lf *LoopFacts) []InvariantExpr {
	writtenArrays := map[string]bool{}
	scalars := map[string]bool{}
	for _, st := range l.Body {
		if st.Target != nil {
			writtenArrays[st.Target.Array] = true
		} else {
			scalars[st.Scalar] = true
		}
	}
	var isInv func(e lang.Expr) bool
	isInv = func(e lang.Expr) bool {
		switch x := e.(type) {
		case *lang.Num:
			return true
		case *lang.Ident:
			return x.Name != l.Var && !scalars[x.Name]
		case *lang.IndexExpr:
			if writtenArrays[x.Array] {
				return false
			}
			for _, sub := range x.Index {
				if !isInv(sub) {
					return false
				}
			}
			return true
		case *lang.BinExpr:
			return isInv(x.L) && isInv(x.R)
		case *lang.UnExpr:
			return isInv(x.X)
		case *lang.CallExpr:
			for _, a := range x.Args {
				if !isInv(a) {
					return false
				}
			}
			return true
		}
		return false
	}
	nonTrivial := func(e lang.Expr) bool {
		switch e.(type) {
		case *lang.BinExpr, *lang.CallExpr:
		default:
			return false
		}
		mentions := false
		lang.Walk(e, func(x lang.Expr) {
			switch x.(type) {
			case *lang.Ident, *lang.IndexExpr:
				mentions = true
			}
		})
		return mentions
	}
	var out []InvariantExpr
	for idx, st := range l.Body {
		var visit func(e lang.Expr)
		visit = func(e lang.Expr) {
			if isInv(e) && nonTrivial(e) {
				out = append(out, InvariantExpr{Stmt: idx, Expr: e})
				return // maximal: don't descend into a reported node
			}
			switch x := e.(type) {
			case *lang.IndexExpr:
				// Subscripts of a varying reference are expected to vary;
				// constant-subscript reads inside them were handled above.
			case *lang.BinExpr:
				visit(x.L)
				visit(x.R)
			case *lang.UnExpr:
				visit(x.X)
			case *lang.CallExpr:
				for _, a := range x.Args {
					visit(a)
				}
			}
		}
		visit(st.RHS)
	}
	return out
}

// Describe renders the loop facts as a human-readable multi-line summary,
// used by tests and debug output.
func (lf *LoopFacts) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loop %s: var %s\n", lf.Loop.Var, lf.Var)
	names := make([]string, 0, len(lf.Scalars))
	for n := range lf.Scalars {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  scalar %s %s\n", n, lf.Scalars[n])
	}
	for _, a := range lf.Accesses {
		kind := "read"
		if a.Write {
			kind = "write"
		}
		fmt.Fprintf(&b, "  %s %s dim %d: %s vs [0, %s): %s\n",
			kind, a.Ref, a.Dim, a.Index, a.Extent, a.Status)
	}
	if len(lf.Dead) > 0 {
		fmt.Fprintf(&b, "  dead: %v\n", lf.Dead)
	}
	return b.String()
}
