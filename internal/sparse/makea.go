package sparse

import (
	"math"
	"sort"
)

// This file implements the NAS CG benchmark's matrix construction
// ("makea"): the matrix is a weighted sum of outer products of random
// sparse vectors, shifted to be diagonally dominant —
//
//	A = sum_{k=1..n} w_k * x_k * x_k^T  +  shift on the diagonal
//
// where each x_k has `nonzer` geometrically-scattered nonzero entries
// produced by the NAS linear congruential generator, and the weights w_k
// fall geometrically from 1 to 1/cond. This is the authentic construction
// behind the paper's class W/A/B inputs; Generate (sparse.go) is the
// size-exact variant used when the experiment must match the paper's
// reported nonzero counts precisely.

// MakeaParams are the NAS CG construction parameters per class.
type MakeaParams struct {
	N      int     // order
	Nonzer int     // nonzeros per generated sparse vector
	Shift  float64 // diagonal shift
	RCond  float64 // reciprocal condition number target
}

// NAS parameter sets (from the CG benchmark specification).
var (
	MakeaS = MakeaParams{N: 1400, Nonzer: 7, Shift: 10, RCond: 0.1}
	MakeaW = MakeaParams{N: 7000, Nonzer: 8, Shift: 12, RCond: 0.1}
	MakeaA = MakeaParams{N: 14000, Nonzer: 11, Shift: 20, RCond: 0.1}
	MakeaB = MakeaParams{N: 75000, Nonzer: 13, Shift: 60, RCond: 0.1}
)

// Makea builds the CG matrix for the given parameters. The result is
// symmetric and positive definite with ~n*(nonzer+1)^2 stored nonzeros
// (duplicates from overlapping outer products merge by addition).
func Makea(p MakeaParams, seed uint64) *CSR {
	r := NewRand(seed)
	n := p.N

	// Geometric weight ratio: w_1 = 1, w_n = rcond.
	ratio := math.Pow(p.RCond, 1.0/float64(n))

	// Accumulate outer-product contributions per row. Each generated
	// sparse vector contributes a (nonzer+1)-clique including the diagonal
	// anchor k.
	type entry struct {
		col int32
		val float64
	}
	rows := make([][]entry, n)
	w := 1.0
	idx := make([]int32, 0, p.Nonzer+1)
	val := make([]float64, 0, p.Nonzer+1)
	for k := 0; k < n; k++ {
		// Build the sparse vector x_k: nonzer random positions with random
		// values, plus 0.5 at position k (the NAS construction).
		idx = idx[:0]
		val = val[:0]
		seen := map[int32]int{}
		for j := 0; j < p.Nonzer; j++ {
			pos := int32(r.Intn(n))
			v := r.Float64()
			if at, ok := seen[pos]; ok {
				val[at] += v
				continue
			}
			seen[pos] = len(idx)
			idx = append(idx, pos)
			val = append(val, v)
		}
		if at, ok := seen[int32(k)]; ok {
			val[at] += 0.5
		} else {
			idx = append(idx, int32(k))
			val = append(val, 0.5)
		}
		// Scatter w * x * x^T.
		for a := range idx {
			ra := rows[idx[a]]
			for b := range idx {
				ra = append(ra, entry{col: idx[b], val: w * val[a] * val[b]})
			}
			rows[idx[a]] = ra
		}
		w *= ratio
	}

	// Merge duplicates, add the identity shift, and assemble CSR.
	m := &CSR{N: n, RowPtr: make([]int32, n+1)}
	for i := 0; i < n; i++ {
		es := rows[i]
		es = append(es, entry{col: int32(i), val: p.Shift})
		sort.Slice(es, func(a, b int) bool { return es[a].col < es[b].col })
		for j := 0; j < len(es); {
			c := es[j].col
			v := 0.0
			for ; j < len(es) && es[j].col == c; j++ {
				v += es[j].val
			}
			m.Col = append(m.Col, c)
			m.Val = append(m.Val, v)
		}
		m.RowPtr[i+1] = int32(len(m.Col))
		rows[i] = nil // release as we go
	}
	return m
}
