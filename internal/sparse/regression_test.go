package sparse

import "testing"

func TestGeneratePropertyRegression(t *testing.T) {
	// The exact inputs that broke the exact-NNZ property before the
	// overflow-redistribution fix (dense case: n=18, nnz near n^2).
	n := 10 + int(uint8(0x8))
	nnz := n + int(uint8(0xef))*n/16
	m := Generate(Class{Name: "q", N: n, NNZ: nnz}, 0x446796651bb5e298)
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != nnz {
		t.Fatalf("NNZ = %d, want exactly %d", m.NNZ(), nnz)
	}
}

func TestGenerateFullyDense(t *testing.T) {
	m := Generate(Class{Name: "full", N: 8, NNZ: 64}, 1)
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 64 {
		t.Fatalf("NNZ = %d, want 64", m.NNZ())
	}
}

func TestGenerateOverfullPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for nnz > n^2")
		}
	}()
	Generate(Class{Name: "bad", N: 4, NNZ: 17}, 1)
}
