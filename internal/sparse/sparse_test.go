package sparse

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenerateClassS(t *testing.T) {
	m := Generate(ClassS, 0)
	if m.N != ClassS.N {
		t.Fatalf("N = %d", m.N)
	}
	if m.NNZ() != ClassS.NNZ {
		t.Fatalf("NNZ = %d, want %d (paper-exact)", m.NNZ(), ClassS.NNZ)
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(ClassS, 7)
	b := Generate(ClassS, 7)
	if a.NNZ() != b.NNZ() {
		t.Fatal("nnz differ")
	}
	for i := range a.Col {
		if a.Col[i] != b.Col[i] || a.Val[i] != b.Val[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
	c := Generate(ClassS, 8)
	same := true
	for i := range a.Col {
		if i < len(c.Col) && a.Col[i] != c.Col[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical matrices")
	}
}

func TestDiagonalPresent(t *testing.T) {
	m := Generate(ClassS, 0)
	for i := 0; i < m.N; i++ {
		cols, _ := m.Row(i)
		found := false
		for _, c := range cols {
			if int(c) == i {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("row %d missing diagonal", i)
		}
	}
}

func TestMulVecSmall(t *testing.T) {
	// [[2 1 0],[0 3 0],[4 0 5]] * [1 2 3] = [4 6 19]
	m := &CSR{
		N:      3,
		RowPtr: []int32{0, 2, 3, 5},
		Col:    []int32{0, 1, 1, 0, 2},
		Val:    []float64{2, 1, 3, 4, 5},
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	y := make([]float64, 3)
	m.MulVec([]float64{1, 2, 3}, y)
	want := []float64{4, 6, 19}
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-12 {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
}

func TestRowOfNZ(t *testing.T) {
	m := Generate(Class{Name: "tiny", N: 50, NNZ: 300}, 0)
	rows := m.RowOfNZ()
	if len(rows) != m.NNZ() {
		t.Fatalf("len = %d", len(rows))
	}
	for i := 0; i < m.N; i++ {
		for j := m.RowPtr[i]; j < m.RowPtr[i+1]; j++ {
			if rows[j] != int32(i) {
				t.Fatalf("nz %d: row %d, want %d", j, rows[j], i)
			}
		}
	}
}

func TestNASRandRange(t *testing.T) {
	r := NewRand(0)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v <= 0 || v >= 1 {
			t.Fatalf("value %v out of (0,1)", v)
		}
	}
}

func TestNASRandKnownSequence(t *testing.T) {
	// The NAS LCG from seed 314159265 is fully determined; pin the first
	// value so the generator can never silently change.
	r := NewRand(0)
	got := r.Float64()
	// x1 = (314159265 * 5^13) mod 2^46.
	want := float64((uint64(314159265)*uint64(nasA))&nasMsk) / float64(nasMod)
	if got != want {
		t.Fatalf("first value %v, want %v", got, want)
	}
}

func TestIntnBounds(t *testing.T) {
	prop := func(seed uint64, nRaw uint16) bool {
		n := 1 + int(nRaw)
		r := NewRand(seed)
		for i := 0; i < 100; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: generated matrices always pass Check and have exact NNZ.
func TestGenerateProperty(t *testing.T) {
	prop := func(seed uint64, nRaw, dRaw uint8) bool {
		n := 10 + int(nRaw)
		nnz := n + int(dRaw)*n/16
		m := Generate(Class{Name: "q", N: n, NNZ: nnz}, seed)
		return m.Check() == nil && m.NNZ() == nnz
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecDimensionPanics(t *testing.T) {
	m := Generate(Class{Name: "tiny", N: 10, NNZ: 30}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dimension mismatch")
		}
	}()
	m.MulVec(make([]float64, 5), make([]float64, 10))
}
