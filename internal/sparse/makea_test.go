package sparse

import (
	"math"
	"testing"
)

func TestMakeaSmallStructure(t *testing.T) {
	p := MakeaParams{N: 200, Nonzer: 5, Shift: 10, RCond: 0.1}
	m := Makea(p, 0)
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	if m.N != p.N {
		t.Fatalf("N = %d", m.N)
	}
	// Density ~ n*(nonzer+1)^2 with merges: between n and 2x the estimate.
	est := p.N * (p.Nonzer + 1) * (p.Nonzer + 1)
	if m.NNZ() < p.N || m.NNZ() > 2*est {
		t.Fatalf("nnz = %d, estimate %d", m.NNZ(), est)
	}
}

func TestMakeaSymmetric(t *testing.T) {
	m := Makea(MakeaParams{N: 120, Nonzer: 4, Shift: 5, RCond: 0.1}, 0)
	get := func(i, j int32) float64 {
		cols, vals := m.Row(int(i))
		for k, c := range cols {
			if c == j {
				return vals[k]
			}
		}
		return 0
	}
	for i := 0; i < m.N; i++ {
		cols, vals := m.Row(i)
		for k, c := range cols {
			if d := math.Abs(vals[k] - get(c, int32(i))); d > 1e-12 {
				t.Fatalf("A[%d][%d]=%v != A[%d][%d]=%v", i, c, vals[k], c, i, get(c, int32(i)))
			}
		}
	}
}

func TestMakeaDiagonallyDominant(t *testing.T) {
	// Shifted construction: every diagonal entry exceeds the off-diagonal
	// row sum in magnitude (strictly PD for CG).
	m := Makea(MakeaParams{N: 150, Nonzer: 4, Shift: 20, RCond: 0.1}, 0)
	for i := 0; i < m.N; i++ {
		cols, vals := m.Row(i)
		var diag, off float64
		for k, c := range cols {
			if int(c) == i {
				diag = vals[k]
			} else {
				off += math.Abs(vals[k])
			}
		}
		if diag <= 0 {
			t.Fatalf("row %d: nonpositive diagonal %v", i, diag)
		}
		if diag <= off*0.5 {
			t.Fatalf("row %d: diagonal %v too weak vs off-sum %v", i, diag, off)
		}
	}
}

func TestMakeaDeterministic(t *testing.T) {
	a := Makea(MakeaParams{N: 100, Nonzer: 3, Shift: 5, RCond: 0.1}, 7)
	b := Makea(MakeaParams{N: 100, Nonzer: 3, Shift: 5, RCond: 0.1}, 7)
	if a.NNZ() != b.NNZ() {
		t.Fatal("nnz differs")
	}
	for i := range a.Val {
		if a.Val[i] != b.Val[i] || a.Col[i] != b.Col[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestMakeaClassParamsMatchClasses(t *testing.T) {
	// The NAS parameter sets correspond to the paper's class sizes.
	if MakeaW.N != ClassW.N || MakeaA.N != ClassA.N || MakeaB.N != ClassB.N || MakeaS.N != ClassS.N {
		t.Fatal("makea orders disagree with class sizes")
	}
}

func TestMakeaCGConverges(t *testing.T) {
	// The whole point of the construction: CG solves quickly.
	m := Makea(MakeaParams{N: 300, Nonzer: 4, Shift: 15, RCond: 0.1}, 0)
	n := m.N
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	pvec := append([]float64(nil), b...)
	q := make([]float64, n)
	dot := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			s += a[i] * b[i]
		}
		return s
	}
	rs := dot(r, r)
	iters := 0
	for ; iters < 100 && math.Sqrt(rs) > 1e-10; iters++ {
		m.MulVec(pvec, q)
		alpha := rs / dot(pvec, q)
		for i := range x {
			x[i] += alpha * pvec[i]
			r[i] -= alpha * q[i]
		}
		rs2 := dot(r, r)
		beta := rs2 / rs
		rs = rs2
		for i := range pvec {
			pvec[i] = r[i] + beta*pvec[i]
		}
	}
	if iters >= 100 {
		t.Fatalf("CG did not converge in 100 iterations (residual %v)", math.Sqrt(rs))
	}
}
