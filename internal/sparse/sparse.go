// Package sparse provides compressed sparse row matrices and a NAS-CG-style
// pseudo-random sparse matrix generator at the class sizes the paper uses
// for its mvm experiments (Section 5.3): class W (7,000 rows), class A
// (14,000 rows) and class B (75,000 rows), plus the small class S for tests.
package sparse

import (
	"fmt"
	"sort"
)

// CSR is a compressed sparse row matrix.
type CSR struct {
	N      int       // rows == cols
	RowPtr []int32   // len N+1
	Col    []int32   // len NNZ, ascending within each row
	Val    []float64 // len NNZ
}

// NNZ reports the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.Col) }

// Row returns the column indices and values of row i.
func (m *CSR) Row(i int) ([]int32, []float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.Col[lo:hi], m.Val[lo:hi]
}

// RowOfNZ builds the iteration-aligned row index: rows[j] is the row of the
// j-th stored nonzero (the mvm loop's output index).
func (m *CSR) RowOfNZ() []int32 {
	rows := make([]int32, m.NNZ())
	for i := 0; i < m.N; i++ {
		for j := m.RowPtr[i]; j < m.RowPtr[i+1]; j++ {
			rows[j] = int32(i)
		}
	}
	return rows
}

// MulVec computes y = A*x sequentially (the reference kernel).
func (m *CSR) MulVec(x, y []float64) {
	if len(x) != m.N || len(y) != m.N {
		panic("sparse: dimension mismatch")
	}
	for i := 0; i < m.N; i++ {
		var s float64
		for j := m.RowPtr[i]; j < m.RowPtr[i+1]; j++ {
			s += m.Val[j] * x[m.Col[j]]
		}
		y[i] = s
	}
}

// Check validates structural invariants.
func (m *CSR) Check() error {
	if len(m.RowPtr) != m.N+1 {
		return fmt.Errorf("sparse: RowPtr length %d, want %d", len(m.RowPtr), m.N+1)
	}
	if m.RowPtr[0] != 0 || int(m.RowPtr[m.N]) != len(m.Col) {
		return fmt.Errorf("sparse: RowPtr endpoints %d..%d, want 0..%d", m.RowPtr[0], m.RowPtr[m.N], len(m.Col))
	}
	for i := 0; i < m.N; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			return fmt.Errorf("sparse: RowPtr not monotone at row %d", i)
		}
		for j := m.RowPtr[i]; j < m.RowPtr[i+1]; j++ {
			if int(m.Col[j]) < 0 || int(m.Col[j]) >= m.N {
				return fmt.Errorf("sparse: column %d out of range in row %d", m.Col[j], i)
			}
			if j > m.RowPtr[i] && m.Col[j] <= m.Col[j-1] {
				return fmt.Errorf("sparse: columns not ascending in row %d", i)
			}
		}
	}
	return nil
}

// Rand is the NAS parallel benchmarks' linear congruential generator:
// x_{k+1} = a*x_k mod 2^46 with a = 5^13, returning x/2^46 in (0,1).
// It is the generator the original CG makea routine used; we keep it for
// authenticity and cross-platform determinism.
type Rand struct{ x uint64 }

const (
	nasA   = 1220703125        // 5^13
	nasMod = uint64(1) << 46   // modulus 2^46
	nasMsk = nasMod - 1        // mask
	seed0  = uint64(314159265) // NAS default seed
)

// NewRand seeds the generator; seed 0 selects the NAS default.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = seed0
	}
	return &Rand{x: seed & nasMsk}
}

// Float64 advances the generator and returns a uniform value in (0,1).
func (r *Rand) Float64() float64 {
	r.x = (r.x * nasA) & nasMsk
	return float64(r.x) / float64(nasMod)
}

// Intn returns a uniform integer in [0, n).
func (r *Rand) Intn(n int) int {
	i := int(r.Float64() * float64(n))
	if i >= n {
		i = n - 1
	}
	return i
}

// Class identifies a NAS CG problem size.
type Class struct {
	Name string
	N    int // rows
	NNZ  int // target stored nonzeros (paper's reported counts)
}

// The paper's three classes plus the small class S used in tests. NNZ
// values are the counts reported in Section 5.3.
var (
	ClassS = Class{Name: "S", N: 1400, NNZ: 78148}
	ClassW = Class{Name: "W", N: 7000, NNZ: 508402}
	ClassA = Class{Name: "A", N: 14000, NNZ: 1853104}
	ClassB = Class{Name: "B", N: 75000, NNZ: 13708072}
)

// Generate builds a CG-style pseudo-random sparse matrix with exactly
// c.NNZ stored nonzeros: every diagonal entry is present and the remaining
// entries scatter uniformly, mimicking the density profile of the NAS
// makea construction (random sparse outer products). Deterministic for a
// given seed.
func Generate(c Class, seed uint64) *CSR {
	if c.N <= 0 || c.NNZ < c.N {
		panic(fmt.Sprintf("sparse: bad class %+v (need NNZ >= N)", c))
	}
	if c.NNZ > c.N*c.N {
		panic(fmt.Sprintf("sparse: class %+v denser than full", c))
	}
	r := NewRand(seed)
	perRow := make([]int, c.N)
	// One diagonal entry per row, then deal out the rest uniformly. A row
	// holds at most N-1 extras (plus its diagonal); overflow moves to the
	// next row with capacity so the total stays exact.
	extra := c.NNZ - c.N
	for i := 0; i < extra; i++ {
		row := r.Intn(c.N)
		for perRow[row] >= c.N-1 {
			row = (row + 1) % c.N
		}
		perRow[row]++
	}
	m := &CSR{N: c.N, RowPtr: make([]int32, c.N+1)}
	m.Col = make([]int32, 0, c.NNZ)
	m.Val = make([]float64, 0, c.NNZ)
	cols := make([]int32, 0, 256)
	seen := make(map[int32]struct{}, 256)
	for i := 0; i < c.N; i++ {
		cols = cols[:0]
		clear(seen)
		cols = append(cols, int32(i)) // diagonal
		seen[int32(i)] = struct{}{}
		want := perRow[i] + 1 // perRow is capped at N-1, so want <= N
		for len(cols) < want {
			cand := int32(r.Intn(c.N))
			if _, dup := seen[cand]; !dup {
				seen[cand] = struct{}{}
				cols = append(cols, cand)
			}
		}
		sort.Slice(cols, func(a, b int) bool { return cols[a] < cols[b] })
		for _, cc := range cols {
			m.Col = append(m.Col, cc)
			v := r.Float64()
			if cc == int32(i) {
				v += float64(c.N) / 10 // diagonally dominant, CG-friendly
			}
			m.Val = append(m.Val, v)
		}
		m.RowPtr[i+1] = int32(len(m.Col))
	}
	return m
}
