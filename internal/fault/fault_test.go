package fault

import (
	"strings"
	"testing"
	"time"
)

// TestNilInjectorIsInert pins the zero-cost-when-disabled contract: every
// method on a nil *Injector returns the no-fault answer.
func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if f := in.Payload(0, 0, 0, 0); f != (PayloadFault{}) {
		t.Fatalf("nil injector injected %+v", f)
	}
	if d := in.Stall(0, 0, 0); d != 0 {
		t.Fatalf("nil injector stalled %v", d)
	}
	in.KernelPanic(0, 0) // must not panic
	if in.Killed(0, 0, 0) {
		t.Fatal("nil injector killed a processor")
	}
	if err := in.DiskWrite("x", 0); err != nil {
		t.Fatalf("nil injector failed a write: %v", err)
	}
	in.Recovered()
	if c := in.Counters(); c.Total() != 0 {
		t.Fatalf("nil injector counted faults: %+v", c)
	}
	if in.Spec().Enabled() {
		t.Fatal("nil injector reports an enabled spec")
	}
}

// TestNewDisabledSpecReturnsNil: an empty spec and a nil injector are the
// same state.
func TestNewDisabledSpecReturnsNil(t *testing.T) {
	if New(Spec{Seed: 42}) != nil {
		t.Fatal("New returned a live injector for a no-fault spec")
	}
	if New(Spec{DropRate: 0.1}) == nil {
		t.Fatal("New returned nil for an enabled spec")
	}
}

// TestDeterminism: the same seed and coordinates yield the same decisions
// across injector instances; a different seed yields a different stream.
func TestDeterminism(t *testing.T) {
	spec := Spec{Seed: 7, DropRate: 0.3, CorruptRate: 0.2, DelayRate: 0.25, DupRate: 0.25, StallRate: 0.3}
	a, b := New(spec), New(spec)
	diff := 0
	other := New(Spec{Seed: 8, DropRate: 0.3, CorruptRate: 0.2, DelayRate: 0.25, DupRate: 0.25, StallRate: 0.3})
	for proc := 0; proc < 4; proc++ {
		for phase := 0; phase < 8; phase++ {
			for sweep := 0; sweep < 8; sweep++ {
				fa := a.Payload(proc, phase, sweep, phase)
				fb := b.Payload(proc, phase, sweep, phase)
				if fa != fb {
					t.Fatalf("same seed diverged at (%d,%d,%d): %+v vs %+v", proc, phase, sweep, fa, fb)
				}
				if sa, sb := a.Stall(proc, phase, sweep), b.Stall(proc, phase, sweep); sa != sb {
					t.Fatalf("stall decisions diverged at (%d,%d,%d)", proc, phase, sweep)
				}
				if fa != other.Payload(proc, phase, sweep, phase) {
					diff++
				}
			}
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical fault streams")
	}
}

// TestRatesApproximatelyHold: with rate r over N independent coordinates
// about r*N faults fire — the hash stream is uniform enough to trust.
func TestRatesApproximatelyHold(t *testing.T) {
	in := New(Spec{Seed: 3, DropRate: 0.25})
	n, drops := 20000, 0
	for i := 0; i < n; i++ {
		if in.Payload(i, i%64, i%97, i%13).Drop {
			drops++
		}
	}
	got := float64(drops) / float64(n)
	if got < 0.22 || got > 0.28 {
		t.Fatalf("drop rate 0.25 realized as %.3f", got)
	}
}

// TestTargetsFireExactlyOnce: a one-shot target matches its coordinates
// once and never again, wildcards included.
func TestTargetsFireExactlyOnce(t *testing.T) {
	in := New(Spec{Targets: []Target{
		{Class: Drop, Proc: 1, Phase: 2, Sweep: 0},
		{Class: Kill, Proc: 2, Phase: -1, Sweep: 1},
		{Class: Panic, Proc: 0, Phase: -1, Sweep: -1, Iter: 5},
	}})
	if f := in.Payload(1, 1, 0, 0); f.Drop {
		t.Fatal("target fired at the wrong phase")
	}
	if f := in.Payload(1, 2, 0, 0); !f.Drop {
		t.Fatal("drop target did not fire at its coordinates")
	}
	if f := in.Payload(1, 2, 0, 0); f.Drop {
		t.Fatal("drop target fired twice")
	}
	if in.Killed(2, 0, 0) {
		t.Fatal("kill target fired at the wrong sweep")
	}
	if !in.Killed(2, 3, 1) {
		t.Fatal("kill target did not fire (wildcard phase)")
	}
	if in.Killed(2, 3, 1) {
		t.Fatal("kill target fired twice")
	}
	fired := func() (fired bool) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(PanicErr); !ok {
					t.Fatalf("panic carried %T, want PanicErr", r)
				}
				fired = true
			}
		}()
		in.KernelPanic(0, 5)
		return false
	}
	if !fired() {
		t.Fatal("panic target did not fire")
	}
	if fired() {
		t.Fatal("panic target fired twice")
	}
	c := in.Counters()
	if c.Drops != 1 || c.Kills != 1 || c.Panics != 1 || c.Total() != 3 {
		t.Fatalf("counters %+v, want exactly one drop, kill, panic", c)
	}
}

// TestKillRequiresTarget: rate-based kills do not exist (a rate would
// eventually erase the whole machine).
func TestKillRequiresTarget(t *testing.T) {
	in := New(Spec{Seed: 1, DropRate: 1, CorruptRate: 1, StallRate: 1, PanicRate: 1, DiskRate: 1})
	for p := 0; p < 8; p++ {
		if in.Killed(p, 0, 0) {
			t.Fatal("rate-based spec killed a processor")
		}
	}
}

// TestParseSpecRoundTrip: flag syntax -> Spec -> String -> Spec is stable.
func TestParseSpecRoundTrip(t *testing.T) {
	spec, err := ParseSpec("seed=9,drop=0.02,corrupt=0.01,stall=0.05,stall_ms=5,panic=0.001,disk=0.5,delay=0.03,dup=0.04,delay_ms=7")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 9 || spec.DropRate != 0.02 || spec.StallMS != 5 || spec.DelayMS != 7 {
		t.Fatalf("parsed %+v", spec)
	}
	again, err := ParseSpec(spec.String())
	if err != nil {
		t.Fatal(err)
	}
	if again.String() != spec.String() {
		t.Fatalf("round trip changed the spec: %+v vs %+v", again, spec)
	}
}

// TestParseSpecAll: the "all" shorthand enables every class.
func TestParseSpecAll(t *testing.T) {
	spec, err := ParseSpec("seed=4,all")
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Enabled() || spec.DropRate == 0 || spec.PanicRate == 0 || spec.DiskRate == 0 {
		t.Fatalf("all expanded to %+v", spec)
	}
}

// TestParseSpecRejects: bad keys, bad values, out-of-range rates.
func TestParseSpecRejects(t *testing.T) {
	for _, bad := range []string{"frobnicate=1", "drop=banana", "drop", "drop=1.5", "seed=x"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", bad)
		}
	}
}

// TestStallAndDelayDurations: configured durations are honored and
// defaulted.
func TestStallAndDelayDurations(t *testing.T) {
	in := New(Spec{Seed: 2, StallRate: 1, StallMS: 3, DelayRate: 1, DelayMS: 4})
	if d := in.Stall(0, 0, 0); d != 3*time.Millisecond {
		t.Fatalf("stall = %v, want 3ms", d)
	}
	if f := in.Payload(0, 0, 0, 0); f.Delay != 4*time.Millisecond {
		t.Fatalf("delay = %v, want 4ms", f.Delay)
	}
	def := New(Spec{Seed: 2, StallRate: 1, DelayRate: 1})
	if d := def.Stall(0, 0, 0); d != 20*time.Millisecond {
		t.Fatalf("default stall = %v, want 20ms", d)
	}
}

// TestDiskWriteDeterminism: same name+attempt always answers the same
// way, and a full rate fails everything.
func TestDiskWriteDeterminism(t *testing.T) {
	in := New(Spec{Seed: 5, DiskRate: 0.5})
	for i := 0; i < 50; i++ {
		a := in.DiskWrite("cache/abc.irs", i)
		b := in.DiskWrite("cache/abc.irs", i)
		if (a == nil) != (b == nil) {
			t.Fatal("disk decision not deterministic")
		}
	}
	always := New(Spec{Seed: 5, DiskRate: 1})
	if err := always.DiskWrite("x", 0); err == nil {
		t.Fatal("rate-1 disk injector let a write through")
	}
}

// TestCountersSummary renders fired classes only.
func TestCountersSummary(t *testing.T) {
	c := Counters{Drops: 2, Panics: 1, Recoveries: 3}
	s := c.Summary()
	for _, want := range []string{"drop=2", "panic=1", "recovered=3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary %q missing %q", s, want)
		}
	}
	if (Counters{}).Summary() != "none" {
		t.Fatal("empty summary should be none")
	}
}
