package fault

import (
	"testing"
)

// TestHopDeterministic: the same (from, to, attempt) coordinates decide
// identically across injectors built from the same spec — a failing chaos
// seed on the cluster transport is a replayable bug report.
func TestHopDeterministic(t *testing.T) {
	spec := Spec{Seed: 7, NetDropRate: 0.3, NetDelayRate: 0.3, NetDelayMS: 5}
	a, b := New(spec), New(spec)
	if a == nil || b == nil {
		t.Fatal("net rates should enable the injector")
	}
	drops, delays := 0, 0
	for att := 0; att < 200; att++ {
		fa := a.Hop("n1", "n2", att)
		fb := b.Hop("n1", "n2", att)
		if fa != fb {
			t.Fatalf("attempt %d: %+v != %+v", att, fa, fb)
		}
		if fa.Drop {
			drops++
		}
		if fa.Delay > 0 {
			delays++
		}
	}
	if drops == 0 || delays == 0 {
		t.Fatalf("expected both drops and delays at rate 0.3 over 200 attempts, got drops=%d delays=%d", drops, delays)
	}
	if a.Hop("n1", "n2", 0) == (HopFault{}) && a.Hop("n1", "n3", 0) == (HopFault{}) && a.Hop("n2", "n1", 0) == (HopFault{}) {
		// Nothing to assert here beyond coverage: distinct pairs draw from
		// independent streams, exercised above.
		_ = delays
	}
	c := a.Counters()
	if c.NetDrops == 0 || c.NetDelays == 0 {
		t.Fatalf("counters not maintained: %+v", c)
	}
}

// TestPartitionBlocksAndHeals: a partition drops every hop between the
// pair, in both directions, until healed; unrelated pairs are untouched.
func TestPartitionBlocksAndHeals(t *testing.T) {
	in := New(Spec{Partitions: []PartitionPair{{A: "n1", B: "n2"}}})
	if in == nil {
		t.Fatal("a partitioned spec should enable the injector")
	}
	if !in.Partitioned("n1", "n2") || !in.Partitioned("n2", "n1") {
		t.Fatal("spec partition not installed bidirectionally")
	}
	if !in.Hop("n1", "n2", 0).Drop || !in.Hop("n2", "n1", 0).Drop {
		t.Fatal("partitioned hop did not drop")
	}
	if in.Hop("n1", "n3", 0).Drop {
		t.Fatal("unrelated hop dropped with zero rates")
	}
	in.Heal("n2", "n1") // order-insensitive
	if in.Partitioned("n1", "n2") {
		t.Fatal("heal did not remove the partition")
	}
	if in.Hop("n1", "n2", 1).Drop {
		t.Fatal("healed hop still drops")
	}
	if got := in.Counters().Partitions; got != 2 {
		t.Fatalf("partition block count = %d, want 2", got)
	}

	// Runtime-installed partitions behave identically.
	in.Partition("a", "b")
	if !in.Hop("b", "a", 0).Drop {
		t.Fatal("runtime partition not effective")
	}
}

// TestNilInjectorNetMethods: every network method is nil-safe and inert.
func TestNilInjectorNetMethods(t *testing.T) {
	var in *Injector
	in.Partition("a", "b")
	in.Heal("a", "b")
	if in.Partitioned("a", "b") {
		t.Fatal("nil injector reports a partition")
	}
	if f := in.Hop("a", "b", 0); f.Drop || f.Delay != 0 {
		t.Fatal("nil injector injected a hop fault")
	}
}

// TestParseSpecNet: the flag syntax round-trips the network keys.
func TestParseSpecNet(t *testing.T) {
	spec, err := ParseSpec("seed=3,net_drop=0.1,net_delay=0.2,net_delay_ms=7,partition=n1~n2,partition=n2~n3")
	if err != nil {
		t.Fatal(err)
	}
	if spec.NetDropRate != 0.1 || spec.NetDelayRate != 0.2 || spec.NetDelayMS != 7 {
		t.Fatalf("parsed %+v", spec)
	}
	if len(spec.Partitions) != 2 || spec.Partitions[0] != (PartitionPair{A: "n1", B: "n2"}) {
		t.Fatalf("partitions %+v", spec.Partitions)
	}
	in := New(spec)
	if got := in.Hop("n1", "n2", 0); !got.Drop {
		t.Fatal("parsed partition not effective")
	}
	if f := in.Hop("n1", "n3", 0); f.Delay == 0 && f.Drop {
		_ = f // rolled outcomes vary by seed; the partition check above is the assertion
	}
	if _, err := ParseSpec("partition=only-one"); err == nil {
		t.Fatal("malformed partition accepted")
	}
	if _, err := ParseSpec("net_drop=1.5"); err == nil {
		t.Fatal("out-of-range net_drop accepted")
	}
	// String() renders net keys in re-parseable syntax.
	back, err := ParseSpec(spec.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", spec.String(), err)
	}
	if back.NetDropRate != spec.NetDropRate || len(back.Partitions) != len(spec.Partitions) {
		t.Fatalf("round trip lost fields: %+v", back)
	}
}
