// Package fault is the runtime's deterministic chaos injector.
//
// The paper's rotation schedule is independent of the indirection
// contents, so every processor knows exactly which portion it must
// receive in every phase — which makes loss, delay, duplication,
// corruption and peer death *detectable from purely local information*.
// This package supplies the faults that the hardened runtime
// (rts.Distributed's acknowledged rotation protocol, the service's
// supervised jobs, the cache's disk writes) must detect and recover from.
//
// Every decision is a pure function of (seed, fault class, coordinates):
// an injected run is bit-reproducible regardless of goroutine
// interleaving, so a failing chaos seed is a replayable bug report. A nil
// *Injector is fully inert — every method is nil-safe and returns the
// no-fault answer after a single nil check, so production builds thread
// the injector through hot paths at effectively zero cost.
package fault

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Class enumerates the injectable fault classes.
type Class int

const (
	// Drop loses a rotation payload in transit (the channel send is
	// suppressed; the sender's retransmit buffer still holds it).
	Drop Class = iota
	// Delay delivers a rotation payload late, possibly after the
	// receiver's watchdog has already recovered it from the sender.
	Delay
	// Duplicate delivers a rotation payload twice; the receiver must
	// discard the stale copy by its sweep/portion tag.
	Duplicate
	// Corrupt flips bits in a rotation payload in transit; the checksum
	// must catch it and trigger a resend.
	Corrupt
	// Stall suspends a processor at a phase boundary for StallMS.
	Stall
	// Panic makes a kernel contribution panic (a poisoned iteration).
	Panic
	// Kill permanently removes a processor mid-sweep: the surviving
	// processors must degrade to a P-1 schedule.
	Kill
	// DiskFail makes a cache/checkpoint disk write fail.
	DiskFail
	// NetDrop loses an inter-node cluster hop (forward, gossip, replica
	// push): the HTTP request errors before it is sent, so retry/backoff
	// on the sender is the only recovery path.
	NetDrop
	// NetDelay delivers an inter-node hop late by NetDelayMS.
	NetDelay
	// Partition blocks every hop between two named nodes until healed —
	// the structural network fault; it is configured by pair, not rolled.
	Partition

	numClasses
)

var classNames = [numClasses]string{
	"drop", "delay", "dup", "corrupt", "stall", "panic", "kill", "disk",
	"net_drop", "net_delay", "partition",
}

func (c Class) String() string {
	if c < 0 || int(c) >= len(classNames) {
		return fmt.Sprintf("Class(%d)", int(c))
	}
	return classNames[c]
}

// Target is a one-shot fault pinned to exact coordinates: it fires the
// first time the runtime reaches (Proc, Phase, Sweep) — Phase and Sweep
// may be -1 to match any — and never again. Targets are how the
// differential tests stage exactly one fault per run.
type Target struct {
	Class Class `json:"class"`
	Proc  int   `json:"proc"`
	Phase int   `json:"phase"` // -1 matches any phase
	Sweep int   `json:"sweep"` // -1 matches any sweep
	Iter  int   `json:"iter"`  // Panic only: global iteration, -1 matches any
}

// Spec configures an Injector. Rates are per-decision probabilities in
// [0,1]; Targets are precise one-shot faults. The zero Spec injects
// nothing.
type Spec struct {
	Seed int64 `json:"seed"`

	// Per-payload probabilities, evaluated once per rotation send.
	DropRate    float64 `json:"drop,omitempty"`
	DelayRate   float64 `json:"delay,omitempty"`
	DupRate     float64 `json:"dup,omitempty"`
	CorruptRate float64 `json:"corrupt,omitempty"`

	// Per-(proc,phase) stall probability and duration.
	StallRate float64 `json:"stall,omitempty"`
	StallMS   int64   `json:"stall_ms,omitempty"` // default 20

	// Per-iteration kernel panic probability.
	PanicRate float64 `json:"panic,omitempty"`

	// Per-write disk failure probability.
	DiskRate float64 `json:"disk,omitempty"`

	// DelayMS is how late a delayed payload is delivered (default 20).
	DelayMS int64 `json:"delay_ms,omitempty"`

	// Per-hop inter-node network fault probabilities (cluster transport).
	NetDropRate  float64 `json:"net_drop,omitempty"`
	NetDelayRate float64 `json:"net_delay,omitempty"`
	// NetDelayMS is how late a delayed hop is delivered (default 10).
	NetDelayMS int64 `json:"net_delay_ms,omitempty"`

	// Partitions are node pairs whose hops fail in both directions until
	// healed (Injector.Heal). Pairs may also be installed and removed at
	// runtime with Injector.Partition/Heal — the deterministic way a test
	// stages a split-brain and then lets it mend.
	Partitions []PartitionPair `json:"partitions,omitempty"`

	// Targets are precise one-shot faults (fired at most once each).
	Targets []Target `json:"targets,omitempty"`
}

// PartitionPair names two nodes that cannot reach each other.
type PartitionPair struct {
	A string `json:"a"`
	B string `json:"b"`
}

// Enabled reports whether the spec injects anything at all.
func (s Spec) Enabled() bool {
	return s.DropRate > 0 || s.DelayRate > 0 || s.DupRate > 0 ||
		s.CorruptRate > 0 || s.StallRate > 0 || s.PanicRate > 0 ||
		s.DiskRate > 0 || s.NetDropRate > 0 || s.NetDelayRate > 0 ||
		len(s.Partitions) > 0 || len(s.Targets) > 0
}

// Validate rejects out-of-range rates (an injector is a test instrument;
// a malformed one should fail loudly, not quietly misfire).
func (s Spec) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"drop", s.DropRate}, {"delay", s.DelayRate}, {"dup", s.DupRate},
		{"corrupt", s.CorruptRate}, {"stall", s.StallRate},
		{"panic", s.PanicRate}, {"disk", s.DiskRate},
		{"net_drop", s.NetDropRate}, {"net_delay", s.NetDelayRate},
	} {
		if r.v < 0 || r.v > 1 || math.IsNaN(r.v) {
			return fmt.Errorf("fault: %s rate %v outside [0,1]", r.name, r.v)
		}
	}
	if s.StallMS < 0 || s.DelayMS < 0 || s.NetDelayMS < 0 {
		return fmt.Errorf("fault: negative duration")
	}
	for i, p := range s.Partitions {
		if p.A == "" || p.B == "" {
			return fmt.Errorf("fault: partition %d names an empty node", i)
		}
	}
	for i, t := range s.Targets {
		if t.Class < 0 || t.Class >= numClasses {
			return fmt.Errorf("fault: target %d has unknown class %d", i, int(t.Class))
		}
	}
	return nil
}

// String renders the spec in the -chaos flag syntax accepted by ParseSpec
// (targets are omitted; they are a programmatic-use feature).
func (s Spec) String() string {
	parts := []string{fmt.Sprintf("seed=%d", s.Seed)}
	add := func(k string, v float64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", k, v))
		}
	}
	add("drop", s.DropRate)
	add("delay", s.DelayRate)
	add("dup", s.DupRate)
	add("corrupt", s.CorruptRate)
	add("stall", s.StallRate)
	add("panic", s.PanicRate)
	add("disk", s.DiskRate)
	add("net_drop", s.NetDropRate)
	add("net_delay", s.NetDelayRate)
	if s.StallMS > 0 {
		parts = append(parts, fmt.Sprintf("stall_ms=%d", s.StallMS))
	}
	if s.DelayMS > 0 {
		parts = append(parts, fmt.Sprintf("delay_ms=%d", s.DelayMS))
	}
	if s.NetDelayMS > 0 {
		parts = append(parts, fmt.Sprintf("net_delay_ms=%d", s.NetDelayMS))
	}
	for _, p := range s.Partitions {
		parts = append(parts, fmt.Sprintf("partition=%s~%s", p.A, p.B))
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses the -chaos flag syntax: comma-separated key=value
// pairs, e.g. "seed=7,drop=0.02,corrupt=0.02,stall=0.01,panic=0.005".
// The bare word "all" expands to a moderate dose of every fault class.
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if part == "all" {
			spec.DropRate, spec.DelayRate, spec.DupRate = 0.02, 0.02, 0.02
			spec.CorruptRate, spec.StallRate = 0.02, 0.01
			spec.PanicRate, spec.DiskRate = 0.002, 0.05
			continue
		}
		key, val, found := strings.Cut(part, "=")
		if !found {
			return Spec{}, fmt.Errorf("fault: %q is not key=value", part)
		}
		switch key {
		case "seed", "stall_ms", "delay_ms", "net_delay_ms":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("fault: bad %s %q", key, val)
			}
			switch key {
			case "seed":
				spec.Seed = n
			case "stall_ms":
				spec.StallMS = n
			case "delay_ms":
				spec.DelayMS = n
			case "net_delay_ms":
				spec.NetDelayMS = n
			}
		case "partition":
			a, b, found := strings.Cut(val, "~")
			if !found || a == "" || b == "" {
				return Spec{}, fmt.Errorf("fault: partition %q is not a~b", val)
			}
			spec.Partitions = append(spec.Partitions, PartitionPair{A: a, B: b})
		default:
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("fault: bad rate %q for %s", val, key)
			}
			switch key {
			case "drop":
				spec.DropRate = f
			case "delay":
				spec.DelayRate = f
			case "dup":
				spec.DupRate = f
			case "corrupt":
				spec.CorruptRate = f
			case "stall":
				spec.StallRate = f
			case "panic":
				spec.PanicRate = f
			case "disk":
				spec.DiskRate = f
			case "net_drop":
				spec.NetDropRate = f
			case "net_delay":
				spec.NetDelayRate = f
			default:
				return Spec{}, fmt.Errorf("fault: unknown key %q", key)
			}
		}
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// Counters is a snapshot of how many faults of each class actually fired.
type Counters struct {
	Drops      int64 `json:"drops"`
	Delays     int64 `json:"delays"`
	Dups       int64 `json:"dups"`
	Corrupts   int64 `json:"corrupts"`
	Stalls     int64 `json:"stalls"`
	Panics     int64 `json:"panics"`
	Kills      int64 `json:"kills"`
	DiskFails  int64 `json:"disk_fails"`
	NetDrops   int64 `json:"net_drops"`
	NetDelays  int64 `json:"net_delays"`
	Partitions int64 `json:"partition_blocks"` // hops blocked by a live partition
	Recoveries int64 `json:"recoveries"`       // incremented by the runtime, not the injector
}

// Total sums the injected-fault counters (recoveries excluded).
func (c Counters) Total() int64 {
	return c.Drops + c.Delays + c.Dups + c.Corrupts + c.Stalls +
		c.Panics + c.Kills + c.DiskFails + c.NetDrops + c.NetDelays +
		c.Partitions
}

// Injector makes deterministic fault decisions. All methods are safe on a
// nil receiver (and inject nothing), so callers hold a possibly-nil
// *Injector without guards.
// The zero Injector is valid and injects nothing, but — unlike a nil one
// — still accepts runtime Partition/Heal calls, so a harness can build an
// inert injector first and install structural network chaos later.
type Injector struct {
	spec Spec

	mu    sync.Mutex
	fired []bool // one-shot targets already fired

	netMu sync.Mutex
	parts map[[2]string]bool // live partitions, key = sorted pair

	counts [numClasses]atomic.Int64
	recov  atomic.Int64
	hopSeq atomic.Int64 // per-process hop counter, a rolling coordinate
}

// New builds an injector for the spec; it returns nil when the spec
// injects nothing, so "chaos off" and "no injector" are the same state.
func New(spec Spec) *Injector {
	if !spec.Enabled() {
		return nil
	}
	in := &Injector{spec: spec, fired: make([]bool, len(spec.Targets))}
	for _, p := range spec.Partitions {
		in.Partition(p.A, p.B)
	}
	return in
}

// Spec returns the injector's configuration (zero Spec when nil).
func (in *Injector) Spec() Spec {
	if in == nil {
		return Spec{}
	}
	return in.spec
}

// splitmix64 is the SplitMix64 finalizer: a strong 64-bit mixer, so the
// per-coordinate streams below are independent and uniform.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// roll draws a deterministic uniform in [0,1) for (class, a, b, c, d) and
// reports whether it falls under rate. The decision depends only on the
// seed and the coordinates — never on timing or interleaving.
func (in *Injector) roll(class Class, rate float64, a, b, c, d int) bool {
	if rate <= 0 {
		return false
	}
	h := splitmix64(uint64(in.spec.Seed) ^ splitmix64(uint64(class)+1))
	h = splitmix64(h ^ uint64(int64(a)))
	h = splitmix64(h ^ uint64(int64(b))<<1)
	h = splitmix64(h ^ uint64(int64(c))<<2)
	h = splitmix64(h ^ uint64(int64(d))<<3)
	return float64(h>>11)/float64(1<<53) < rate
}

// target fires a matching one-shot target at most once. Phase/Sweep/Iter
// wildcards (-1) match anything.
func (in *Injector) target(class Class, proc, phase, sweep, iter int) bool {
	if len(in.spec.Targets) == 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, t := range in.spec.Targets {
		if in.fired[i] || t.Class != class || t.Proc != proc {
			continue
		}
		if (t.Phase >= 0 && t.Phase != phase) ||
			(t.Sweep >= 0 && t.Sweep != sweep) ||
			(t.Iter >= 0 && iter >= 0 && t.Iter != iter) {
			continue
		}
		in.fired[i] = true
		return true
	}
	return false
}

func (in *Injector) count(class Class) {
	in.counts[class].Add(1)
}

// PayloadFault describes what happens to one rotation payload in transit.
type PayloadFault struct {
	Drop      bool
	Duplicate bool
	Corrupt   bool
	Delay     time.Duration
}

// Payload decides the fate of the payload processor proc sends for
// (portion, phase, sweep). At most one destructive fault (drop XOR
// corrupt) fires per payload so single-fault recovery stays analyzable;
// delay and duplicate may ride along.
func (in *Injector) Payload(proc, phase, sweep, portion int) PayloadFault {
	if in == nil {
		return PayloadFault{}
	}
	var f PayloadFault
	switch {
	case in.target(Drop, proc, phase, sweep, -1) || in.roll(Drop, in.spec.DropRate, proc, phase, sweep, portion):
		f.Drop = true
		in.count(Drop)
	case in.target(Corrupt, proc, phase, sweep, -1) || in.roll(Corrupt, in.spec.CorruptRate, proc, phase, sweep, portion):
		f.Corrupt = true
		in.count(Corrupt)
	}
	if in.target(Duplicate, proc, phase, sweep, -1) || in.roll(Duplicate, in.spec.DupRate, proc, phase, sweep, portion) {
		f.Duplicate = true
		in.count(Duplicate)
	}
	if in.target(Delay, proc, phase, sweep, -1) || in.roll(Delay, in.spec.DelayRate, proc, phase, sweep, portion) {
		f.Delay = in.delayDur()
		in.count(Delay)
	}
	return f
}

func (in *Injector) delayDur() time.Duration {
	ms := in.spec.DelayMS
	if ms <= 0 {
		ms = 20
	}
	return time.Duration(ms) * time.Millisecond
}

// Stall reports how long processor proc should stall at (phase, sweep);
// zero means no stall.
func (in *Injector) Stall(proc, phase, sweep int) time.Duration {
	if in == nil {
		return 0
	}
	if in.target(Stall, proc, phase, sweep, -1) || in.roll(Stall, in.spec.StallRate, proc, phase, sweep, 0) {
		in.count(Stall)
		ms := in.spec.StallMS
		if ms <= 0 {
			ms = 20
		}
		return time.Duration(ms) * time.Millisecond
	}
	return 0
}

// PanicErr is the value an injected kernel panic carries, so supervisors
// can tell an injected panic from an organic one in logs.
type PanicErr struct{ Proc, Iter int }

func (e PanicErr) Error() string {
	return fmt.Sprintf("fault: injected kernel panic (proc %d, iteration %d)", e.Proc, e.Iter)
}

// KernelPanic panics with a PanicErr when the injector poisons iteration
// iter on processor proc. Call it at the top of a contribution function.
func (in *Injector) KernelPanic(proc, iter int) {
	if in == nil {
		return
	}
	if in.target(Panic, proc, -1, -1, iter) || in.roll(Panic, in.spec.PanicRate, proc, iter, 0, 1) {
		in.count(Panic)
		panic(PanicErr{Proc: proc, Iter: iter})
	}
}

// Killed reports whether processor proc dies permanently at (phase,
// sweep). Only Targets can kill — a rate-based permanent kill would
// eventually erase the whole machine. A kill target fires once; after the
// runtime degrades to P-1 the survivors are left alone.
func (in *Injector) Killed(proc, phase, sweep int) bool {
	if in == nil {
		return false
	}
	if in.target(Kill, proc, phase, sweep, -1) {
		in.count(Kill)
		return true
	}
	return false
}

// DiskWrite returns an injected error for a disk write of name, or nil.
// The decision hashes the name so a given file either fails or succeeds
// consistently within one attempt stream.
func (in *Injector) DiskWrite(name string, attempt int) error {
	if in == nil {
		return nil
	}
	h := 0
	for _, b := range []byte(name) {
		h = h*131 + int(b)
	}
	if in.target(DiskFail, attempt, -1, -1, -1) || in.roll(DiskFail, in.spec.DiskRate, h, attempt, 0, 2) {
		in.count(DiskFail)
		return fmt.Errorf("fault: injected disk write failure (%s, attempt %d)", name, attempt)
	}
	return nil
}

// partKey normalizes a node pair so partitions are bidirectional.
func partKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Partition blocks every hop between nodes a and b (both directions)
// until Heal — the deterministic split-brain a cluster test stages.
func (in *Injector) Partition(a, b string) {
	if in == nil {
		return
	}
	in.netMu.Lock()
	if in.parts == nil {
		in.parts = make(map[[2]string]bool)
	}
	in.parts[partKey(a, b)] = true
	in.netMu.Unlock()
}

// Heal removes a partition installed by Partition (or the spec).
func (in *Injector) Heal(a, b string) {
	if in == nil {
		return
	}
	in.netMu.Lock()
	delete(in.parts, partKey(a, b))
	in.netMu.Unlock()
}

// Partitioned reports whether a and b currently cannot reach each other.
func (in *Injector) Partitioned(a, b string) bool {
	if in == nil {
		return false
	}
	in.netMu.Lock()
	defer in.netMu.Unlock()
	return in.parts[partKey(a, b)]
}

// HopFault describes what happens to one inter-node cluster hop.
type HopFault struct {
	Drop  bool // the request errors before it is sent
	Delay time.Duration
}

// strHash folds a node name into a coordinate for the deterministic roll.
func strHash(s string) int {
	h := uint32(2166136261)
	for _, b := range []byte(s) {
		h = (h ^ uint32(b)) * 16777619
	}
	return int(int32(h))
}

// Hop decides the fate of attempt number attempt of a hop from node
// `from` to node `to`. A live partition between the pair always drops
// (counted separately from rolled drops); otherwise NetDropRate and
// NetDelayRate are rolled on (from, to, attempt, seq) coordinates, where
// seq is a per-process hop counter: unlike the job-level faults, the
// node-pair coordinates alone are nearly constant in a small fleet, so
// without seq a 10% drop rate would either always or never fire for a
// given pair. With seq the rate holds per hop; a run is still
// reproducible when its hop order is (seed fixed, one client).
func (in *Injector) Hop(from, to string, attempt int) HopFault {
	if in == nil {
		return HopFault{}
	}
	if in.Partitioned(from, to) {
		in.count(Partition)
		return HopFault{Drop: true}
	}
	seq := int(in.hopSeq.Add(1))
	var f HopFault
	if in.roll(NetDrop, in.spec.NetDropRate, strHash(from), strHash(to), attempt, seq) {
		f.Drop = true
		in.count(NetDrop)
		return f
	}
	if in.roll(NetDelay, in.spec.NetDelayRate, strHash(from), strHash(to), attempt, ^seq) {
		ms := in.spec.NetDelayMS
		if ms <= 0 {
			ms = 10
		}
		f.Delay = time.Duration(ms) * time.Millisecond
		in.count(NetDelay)
	}
	return f
}

// Recovered lets the runtime count a successful recovery against the
// injector, so a soak can assert faults fired AND were recovered.
func (in *Injector) Recovered() {
	if in == nil {
		return
	}
	in.recov.Add(1)
}

// Counters snapshots the fired-fault counts (zero value when nil).
func (in *Injector) Counters() Counters {
	if in == nil {
		return Counters{}
	}
	return Counters{
		Drops:      in.counts[Drop].Load(),
		Delays:     in.counts[Delay].Load(),
		Dups:       in.counts[Duplicate].Load(),
		Corrupts:   in.counts[Corrupt].Load(),
		Stalls:     in.counts[Stall].Load(),
		Panics:     in.counts[Panic].Load(),
		Kills:      in.counts[Kill].Load(),
		DiskFails:  in.counts[DiskFail].Load(),
		NetDrops:   in.counts[NetDrop].Load(),
		NetDelays:  in.counts[NetDelay].Load(),
		Partitions: in.counts[Partition].Load(),
		Recoveries: in.recov.Load(),
	}
}

// Summary renders the non-zero counters, sorted by class name — the line
// a soak run prints next to its latency report.
func (c Counters) Summary() string {
	m := map[string]int64{
		"drop": c.Drops, "delay": c.Delays, "dup": c.Dups,
		"corrupt": c.Corrupts, "stall": c.Stalls, "panic": c.Panics,
		"kill": c.Kills, "disk": c.DiskFails, "net_drop": c.NetDrops,
		"net_delay": c.NetDelays, "partition": c.Partitions,
		"recovered": c.Recoveries,
	}
	keys := make([]string, 0, len(m))
	for k, v := range m {
		if v > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, m[k])
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}
