package inspector

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// emulate executes one sweep of the phase machine for every processor and
// returns the resulting reduction array. contrib(i, r) is the value
// iteration i adds through reference r. Within a phase, processors touch
// disjoint portions, so executing them sequentially is equivalent.
func emulate(t *testing.T, cfg Config, ind [][]int32, contrib func(i int, r int) float64) []float64 {
	t.Helper()
	x := make([]float64, cfg.NumElems)
	scheds := make([]*Schedule, cfg.P)
	bufs := make([][]float64, cfg.P)
	for p := 0; p < cfg.P; p++ {
		s, err := Light(cfg, p, ind...)
		if err != nil {
			t.Fatalf("Light(p=%d): %v", p, err)
		}
		if err := s.Check(ind...); err != nil {
			t.Fatalf("Check(p=%d): %v", p, err)
		}
		scheds[p] = s
		bufs[p] = make([]float64, s.BufLen)
	}
	for ph := 0; ph < cfg.NumPhases(); ph++ {
		for p := 0; p < cfg.P; p++ {
			s := scheds[p]
			prog := &s.Phases[ph]
			for _, cp := range prog.Copies {
				b := int(cp.Buf) - cfg.NumElems
				x[cp.Elem] += bufs[p][b]
				bufs[p][b] = 0
			}
			for j, it := range prog.Iters {
				for r := range prog.Ind {
					v := contrib(int(it), r)
					tgt := int(prog.Ind[r][j])
					if tgt < cfg.NumElems {
						x[tgt] += v
					} else {
						bufs[p][tgt-cfg.NumElems] += v
					}
				}
			}
		}
	}
	return x
}

// sequential is the reference loop of Figure 1.
func sequential(cfg Config, ind [][]int32, contrib func(i, r int) float64) []float64 {
	x := make([]float64, cfg.NumElems)
	for i := 0; i < cfg.NumIters; i++ {
		for r := range ind {
			x[ind[r][i]] += contrib(i, r)
		}
	}
	return x
}

func randInd(rng *rand.Rand, nIters, nElems, refs int) [][]int32 {
	ind := make([][]int32, refs)
	for r := range ind {
		ind[r] = make([]int32, nIters)
		for i := range ind[r] {
			ind[r][i] = int32(rng.Intn(nElems))
		}
	}
	return ind
}

func almostEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		d := a[i] - b[i]
		if d < -1e-9 || d > 1e-9 {
			return false
		}
	}
	return true
}

func TestOwnershipMapInvariants(t *testing.T) {
	for _, cfg := range []Config{
		{P: 2, K: 2, NumIters: 20, NumElems: 8},
		{P: 4, K: 1, NumIters: 100, NumElems: 64},
		{P: 3, K: 4, NumIters: 50, NumElems: 37},
		{P: 8, K: 2, NumIters: 1000, NumElems: 999},
	} {
		kp := cfg.NumPhases()
		for ph := 0; ph < kp; ph++ {
			seen := map[int]bool{}
			for p := 0; p < cfg.P; p++ {
				q := cfg.PortionAt(p, ph)
				if seen[q] {
					t.Fatalf("cfg %+v phase %d: portion %d owned twice", cfg, ph, q)
				}
				seen[q] = true
				if got := cfg.OwnerAt(q, ph); got != p {
					t.Fatalf("OwnerAt(%d,%d) = %d, want %d", q, ph, got, p)
				}
			}
		}
		// Each portion owned by each processor exactly once per sweep; a
		// portion is live only every k-th phase.
		for q := 0; q < kp; q++ {
			owners := map[int]int{}
			live := 0
			for ph := 0; ph < kp; ph++ {
				if p := cfg.OwnerAt(q, ph); p >= 0 {
					owners[p]++
					live++
				}
			}
			if live != cfg.P {
				t.Fatalf("portion %d live %d phases, want %d", q, live, cfg.P)
			}
			for p, n := range owners {
				if n != 1 {
					t.Fatalf("portion %d owned by proc %d %d times", q, p, n)
				}
			}
		}
		// PhaseOf inverts PortionAt.
		for p := 0; p < cfg.P; p++ {
			for e := 0; e < cfg.NumElems; e++ {
				ph := cfg.PhaseOf(p, e)
				lo, hi := cfg.PortionBounds(cfg.PortionAt(p, ph))
				if e < lo || e >= hi {
					t.Fatalf("PhaseOf(%d,%d)=%d does not own element", p, e, ph)
				}
			}
		}
	}
}

func TestOwnershipMigratesToPreviousProc(t *testing.T) {
	cfg := Config{P: 4, K: 2, NumIters: 10, NumElems: 16}
	kp := cfg.NumPhases()
	for q := 0; q < kp; q++ {
		var prev = -1
		for ph := q % cfg.K; ph < 2*kp; ph += cfg.K {
			p := cfg.OwnerAt(q, ph%kp)
			if prev >= 0 {
				want := (prev - 1 + cfg.P) % cfg.P
				if p != want {
					t.Fatalf("portion %d: owner %d -> %d, want %d", q, prev, p, want)
				}
			}
			prev = p
		}
	}
}

func TestDistributions(t *testing.T) {
	for _, d := range []Dist{Block, Cyclic} {
		cfg := Config{P: 3, K: 2, NumIters: 10, NumElems: 6, Dist: d}
		total := 0
		for p := 0; p < cfg.P; p++ {
			n := 0
			cfg.Iters(p, func(i int) {
				if cfg.OwnerOfIter(i) != p {
					t.Fatalf("%v: OwnerOfIter(%d) != %d", d, i, p)
				}
				n++
			})
			if n != cfg.IterCount(p) {
				t.Fatalf("%v: proc %d visited %d, IterCount %d", d, p, n, cfg.IterCount(p))
			}
			total += n
		}
		if total != cfg.NumIters {
			t.Fatalf("%v: %d total iterations", d, total)
		}
	}
}

func TestBlockOwnerOfIterMatchesRange(t *testing.T) {
	for _, n := range []int{1, 7, 10, 100, 101} {
		for _, p := range []int{1, 2, 3, 7, 16} {
			cfg := Config{P: p, K: 1, NumIters: n, NumElems: 4, Dist: Block}
			for proc := 0; proc < p; proc++ {
				lo, hi := cfg.IterRange(proc)
				for i := lo; i < hi; i++ {
					if got := cfg.OwnerOfIter(i); got != proc {
						t.Fatalf("P=%d N=%d: OwnerOfIter(%d)=%d want %d", p, n, i, got, proc)
					}
				}
			}
		}
	}
}

// TestPaperFigure3Structure checks every structural fact the paper states
// about its worked example: 8 nodes, 20 edges, 2 processors, k = 2 → 4
// phases per processor, 2 nodes per portion, the remote buffer starting at
// location 8, and a deferred reference landing in a buffer slot with a copy
// loop in the future owning phase. (The paper does not print its mesh's
// edge list, so the exact phase counts 3/3/3/1 are not reproducible; the
// structure is.)
func TestPaperFigure3Structure(t *testing.T) {
	cfg := Config{P: 2, K: 2, NumIters: 20, NumElems: 8, Dist: Block}
	if cfg.NumPhases() != 4 {
		t.Fatalf("phases = %d, want 4", cfg.NumPhases())
	}
	if cfg.PortionSize() != 2 {
		t.Fatalf("portion size = %d, want 2", cfg.PortionSize())
	}
	// An edge like the paper's 7th: one endpoint owned in this proc's phase
	// 0, the other in a future phase.
	ind1 := make([]int32, 20)
	ind2 := make([]int32, 20)
	rng := rand.New(rand.NewSource(7))
	for i := range ind1 {
		ind1[i] = int32(rng.Intn(8))
		ind2[i] = int32(rng.Intn(8))
	}
	// Edge 7 references an element of P0's phase-0 portion and one of its
	// phase-2 portion.
	lo0, _ := cfg.PortionBounds(cfg.PortionAt(0, 0))
	lo2, _ := cfg.PortionBounds(cfg.PortionAt(0, 2))
	ind1[7], ind2[7] = int32(lo0), int32(lo2)

	s, err := Light(cfg, 0, ind1, ind2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Check(ind1, ind2); err != nil {
		t.Fatal(err)
	}
	if got := s.NumIters(); got != 10 {
		t.Fatalf("P0 iterations = %d, want 10 (half of 20 edges)", got)
	}
	// Find edge 7 in phase 0 and confirm its second reference was
	// redirected to a remote-buffer slot >= 8.
	p0 := &s.Phases[0]
	found := false
	for j, it := range p0.Iters {
		if it == 7 {
			found = true
			if p0.Ind[0][j] != int32(lo0) {
				t.Fatalf("owned reference rewritten to %d", p0.Ind[0][j])
			}
			if p0.Ind[1][j] < 8 {
				t.Fatalf("deferred reference %d, want buffer slot >= 8", p0.Ind[1][j])
			}
		}
	}
	if !found {
		t.Fatal("edge 7 not assigned to phase 0")
	}
	// The future phase (2) must copy that buffer slot into the element.
	var copied bool
	for _, cp := range s.Phases[2].Copies {
		if cp.Elem == int32(lo2) {
			copied = true
		}
	}
	if !copied {
		t.Fatal("phase 2 has no copy loop entry for the deferred element")
	}
}

func TestLightMatchesSequentialSmall(t *testing.T) {
	cfg := Config{P: 2, K: 2, NumIters: 20, NumElems: 8, Dist: Block}
	rng := rand.New(rand.NewSource(1))
	ind := randInd(rng, cfg.NumIters, cfg.NumElems, 2)
	contrib := func(i, r int) float64 { return float64(i*3+r) * 0.25 }
	got := emulate(t, cfg, ind, contrib)
	want := sequential(cfg, ind, contrib)
	if !almostEqual(got, want) {
		t.Fatalf("phase execution diverged\n got %v\nwant %v", got, want)
	}
}

func TestLightMatchesSequentialSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, p := range []int{1, 2, 3, 4, 8} {
		for _, k := range []int{1, 2, 4} {
			for _, d := range []Dist{Block, Cyclic} {
				for _, refs := range []int{1, 2, 3} {
					cfg := Config{P: p, K: k, NumIters: 157, NumElems: 61, Dist: d}
					ind := randInd(rng, cfg.NumIters, cfg.NumElems, refs)
					contrib := func(i, r int) float64 { return float64(i+1) / float64(r+2) }
					got := emulate(t, cfg, ind, contrib)
					want := sequential(cfg, ind, contrib)
					if !almostEqual(got, want) {
						t.Fatalf("P=%d k=%d %v refs=%d: diverged", p, k, d, refs)
					}
				}
			}
		}
	}
}

// Property: for random shapes and indirections the phase execution always
// matches the sequential reduction and all schedules pass Check.
func TestLightEquivalenceProperty(t *testing.T) {
	prop := func(seed int64, pRaw, kRaw, nRaw, eRaw uint8, cyclic bool) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			P:        1 + int(pRaw)%8,
			K:        1 + int(kRaw)%4,
			NumIters: int(nRaw),
			NumElems: 1 + int(eRaw),
		}
		if cyclic {
			cfg.Dist = Cyclic
		}
		ind := randInd(rng, cfg.NumIters, cfg.NumElems, 2)
		contrib := func(i, r int) float64 { return float64((i + 1) * (r + 1)) }
		got := emulateQuiet(cfg, ind, contrib)
		if got == nil {
			return false
		}
		return almostEqual(got, sequential(cfg, ind, contrib))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// emulateQuiet is emulate without the testing.T plumbing, for quick.Check.
func emulateQuiet(cfg Config, ind [][]int32, contrib func(i, r int) float64) []float64 {
	x := make([]float64, cfg.NumElems)
	scheds := make([]*Schedule, cfg.P)
	bufs := make([][]float64, cfg.P)
	for p := 0; p < cfg.P; p++ {
		s, err := Light(cfg, p, ind...)
		if err != nil || s.Check(ind...) != nil {
			return nil
		}
		scheds[p] = s
		bufs[p] = make([]float64, s.BufLen)
	}
	for ph := 0; ph < cfg.NumPhases(); ph++ {
		for p := 0; p < cfg.P; p++ {
			s := scheds[p]
			prog := &s.Phases[ph]
			for _, cp := range prog.Copies {
				x[cp.Elem] += bufs[p][int(cp.Buf)-cfg.NumElems]
				bufs[p][int(cp.Buf)-cfg.NumElems] = 0
			}
			for j, it := range prog.Iters {
				for r := range prog.Ind {
					v := contrib(int(it), r)
					if tgt := int(prog.Ind[r][j]); tgt < cfg.NumElems {
						x[tgt] += v
					} else {
						bufs[p][tgt-cfg.NumElems] += v
					}
				}
			}
		}
	}
	return x
}

func TestSingleReferenceNeedsNoBuffers(t *testing.T) {
	cfg := Config{P: 4, K: 2, NumIters: 200, NumElems: 64, Dist: Cyclic}
	rng := rand.New(rand.NewSource(3))
	ind := randInd(rng, cfg.NumIters, cfg.NumElems, 1)
	for p := 0; p < cfg.P; p++ {
		s, err := Light(cfg, p, ind...)
		if err != nil {
			t.Fatal(err)
		}
		if s.BufLen != 0 || s.NumCopies() != 0 {
			t.Fatalf("proc %d: single-reference loop allocated %d buffers, %d copies", p, s.BufLen, s.NumCopies())
		}
	}
}

func TestBufferSharing(t *testing.T) {
	// Two iterations deferring to the same element must share one slot.
	cfg := Config{P: 2, K: 2, NumIters: 4, NumElems: 8, Dist: Block}
	// P0 owns iterations 0,1. Element 0 is P0's phase 0; element 6 is a
	// future phase. Both iterations reference (0, 6).
	ind1 := []int32{0, 0, 0, 0}
	ind2 := []int32{6, 6, 0, 0}
	s, err := Light(cfg, 0, ind1, ind2)
	if err != nil {
		t.Fatal(err)
	}
	if s.BufLen != 1 {
		t.Fatalf("BufLen = %d, want 1 (shared slot)", s.BufLen)
	}
	if s.NumCopies() != 1 {
		t.Fatalf("copies = %d, want 1", s.NumCopies())
	}
}

func TestLightErrors(t *testing.T) {
	ind := [][]int32{{0, 1}, {1, 0}}
	cases := []struct {
		name string
		cfg  Config
		proc int
		ind  [][]int32
	}{
		{"badP", Config{P: 0, K: 1, NumIters: 2, NumElems: 2}, 0, ind},
		{"badK", Config{P: 1, K: 0, NumIters: 2, NumElems: 2}, 0, ind},
		{"badElems", Config{P: 1, K: 1, NumIters: 2, NumElems: 0}, 0, ind},
		{"badProc", Config{P: 2, K: 1, NumIters: 2, NumElems: 2}, 5, ind},
		{"noInd", Config{P: 1, K: 1, NumIters: 2, NumElems: 2}, 0, nil},
		{"shortInd", Config{P: 1, K: 1, NumIters: 3, NumElems: 2}, 0, ind},
		{"outOfRange", Config{P: 1, K: 1, NumIters: 2, NumElems: 1}, 0, ind},
	}
	for _, c := range cases {
		if _, err := Light(c.cfg, c.proc, c.ind...); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestEmptyLoop(t *testing.T) {
	cfg := Config{P: 2, K: 2, NumIters: 0, NumElems: 4, Dist: Block}
	s, err := Light(cfg, 0, []int32{}, []int32{})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumIters() != 0 || s.BufLen != 0 {
		t.Fatal("empty loop produced work")
	}
	if err := s.Check([]int32{}, []int32{}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxPhaseItersImbalance(t *testing.T) {
	// All iterations referencing the same element pile into one phase.
	cfg := Config{P: 2, K: 2, NumIters: 40, NumElems: 8, Dist: Block}
	ind := make([]int32, 40) // all zeros -> element 0
	s, err := Light(cfg, 0, ind)
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxPhaseIters() != 20 {
		t.Fatalf("MaxPhaseIters = %d, want 20", s.MaxPhaseIters())
	}
}

func TestPhaseHistogramAndImbalance(t *testing.T) {
	cfg := Config{P: 2, K: 2, NumIters: 40, NumElems: 8, Dist: Block}
	ind := make([]int32, 40) // all element 0: everything in one phase
	s, err := Light(cfg, 0, ind)
	if err != nil {
		t.Fatal(err)
	}
	h := s.PhaseHistogram()
	total := 0
	for _, n := range h {
		total += n
	}
	if total != s.NumIters() {
		t.Fatalf("histogram sums to %d, schedule has %d", total, s.NumIters())
	}
	// All 20 local iterations in one of 4 phases: imbalance = 20/(20/4) = 4.
	if got := s.Imbalance(); got != 4 {
		t.Fatalf("imbalance = %v, want 4", got)
	}
	// An empty schedule reports neutral imbalance.
	empty, err := Light(Config{P: 2, K: 1, NumIters: 0, NumElems: 4}, 0, []int32{})
	if err != nil {
		t.Fatal(err)
	}
	if empty.Imbalance() != 1 {
		t.Fatalf("empty imbalance = %v", empty.Imbalance())
	}
}
