// Package inspector implements the paper's runtime preprocessing.
//
// LightInspector (Section 3 of the paper) runs independently on each
// processor — it needs no interprocessor communication, which is what makes
// it "light" compared to the classic communicating inspector of the
// inspector/executor paradigm (also implemented here, as the baseline).
//
// Given the contents of the indirection arrays, the iteration distribution,
// and the portion-rotation ownership map, LightInspector partitions each
// processor's iterations into k*P phases, allocates remote-buffer slots for
// reduction elements owned in a later phase, rewrites the indirection
// arrays to point at owned elements or buffer slots, and builds the second
// (copy) loop that folds buffered contributions in when a portion arrives.
package inspector

import "fmt"

// Dist selects how loop iterations (and their aligned arrays) are divided
// among processors.
type Dist int

const (
	// Block assigns num_iters/P consecutive iterations to each processor.
	Block Dist = iota
	// Cyclic deals iterations round-robin: iteration i goes to proc i mod P.
	Cyclic
)

func (d Dist) String() string {
	switch d {
	case Block:
		return "block"
	case Cyclic:
		return "cyclic"
	default:
		return fmt.Sprintf("Dist(%d)", int(d))
	}
}

// Config describes one irregular reduction loop to the runtime: the machine
// shape (P processors, unrolling factor k), the loop extent, the reduction
// array extent, and the iteration distribution.
type Config struct {
	P        int  // number of processors
	K        int  // phases-per-processor factor (paper evaluates k ∈ {1,2,4})
	NumIters int  // loop trip count (edges / interactions / nonzeros)
	NumElems int  // reduction (or rotated) array length (nodes / molecules / rows)
	Dist     Dist // iteration distribution
}

// Validate reports an error for a malformed configuration.
func (c Config) Validate() error {
	switch {
	case c.P <= 0:
		return fmt.Errorf("inspector: P = %d, need >= 1", c.P)
	case c.K <= 0:
		return fmt.Errorf("inspector: K = %d, need >= 1", c.K)
	case c.NumIters < 0:
		return fmt.Errorf("inspector: NumIters = %d", c.NumIters)
	case c.NumElems <= 0:
		return fmt.Errorf("inspector: NumElems = %d, need >= 1", c.NumElems)
	default:
		return nil
	}
}

// NumPhases reports the phases per processor in one sweep: k*P.
func (c Config) NumPhases() int { return c.K * c.P }

// PortionSize reports the number of reduction elements per portion
// (the last portion may be short when k*P does not divide NumElems).
func (c Config) PortionSize() int {
	return (c.NumElems + c.NumPhases() - 1) / c.NumPhases()
}

// PortionOf reports which portion element e belongs to.
func (c Config) PortionOf(e int) int { return e / c.PortionSize() }

// PortionBounds reports the half-open element range [lo, hi) of portion q.
func (c Config) PortionBounds(q int) (lo, hi int) {
	ps := c.PortionSize()
	lo = q * ps
	hi = lo + ps
	if hi > c.NumElems {
		hi = c.NumElems
	}
	if lo > c.NumElems {
		lo = c.NumElems
	}
	return lo, hi
}

// PortionAt reports the portion processor p owns during phase ph:
// (k*p + ph) mod (k*P) — the paper's ownership map.
func (c Config) PortionAt(p, ph int) int {
	return (c.K*p + ph) % c.NumPhases()
}

// PhaseOf reports the phase during which processor p owns the portion of
// element e: the inverse of PortionAt.
func (c Config) PhaseOf(p, e int) int {
	kp := c.NumPhases()
	return ((c.PortionOf(e)-c.K*p)%kp + kp) % kp
}

// OwnerAt reports which processor owns portion q during phase ph, or -1 if
// no processor owns it then (portions are live only every k-th phase).
func (c Config) OwnerAt(q, ph int) int {
	kp := c.NumPhases()
	d := ((q-ph)%kp + kp) % kp
	if d%c.K != 0 {
		return -1
	}
	return d / c.K
}

// IterRange reports the half-open range [lo, hi) of iterations processor p
// executes under a Block distribution; counts differ by at most one.
func (c Config) IterRange(p int) (lo, hi int) {
	base := c.NumIters / c.P
	rem := c.NumIters % c.P
	lo = p*base + min(p, rem)
	hi = lo + base
	if p < rem {
		hi++
	}
	return lo, hi
}

// IterCount reports how many iterations processor p executes.
func (c Config) IterCount(p int) int {
	switch c.Dist {
	case Block:
		lo, hi := c.IterRange(p)
		return hi - lo
	default: // Cyclic
		n := c.NumIters / c.P
		if p < c.NumIters%c.P {
			n++
		}
		return n
	}
}

// OwnerOfIter reports which processor executes iteration i.
func (c Config) OwnerOfIter(i int) int {
	switch c.Dist {
	case Block:
		base := c.NumIters / c.P
		rem := c.NumIters % c.P
		// First rem processors have base+1 iterations.
		cut := rem * (base + 1)
		if i < cut {
			return i / (base + 1)
		}
		if base == 0 {
			return c.P - 1
		}
		return rem + (i-cut)/base
	default: // Cyclic
		return i % c.P
	}
}

// Iters calls fn for each iteration owned by processor p, in increasing
// global order.
func (c Config) Iters(p int, fn func(i int)) {
	switch c.Dist {
	case Block:
		lo, hi := c.IterRange(p)
		for i := lo; i < hi; i++ {
			fn(i)
		}
	default: // Cyclic
		for i := p; i < c.NumIters; i += c.P {
			fn(i)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
