package inspector

import "fmt"

// This file implements the paper's stated future work (Section 7): an
// incremental LightInspector. When an adaptive problem mutates a few
// entries of its indirection arrays, Update revises the existing schedule
// in time proportional to the number of changed iterations instead of
// re-running the full inspector. Like the full inspector it needs no
// interprocessor communication.

// incrState is the bookkeeping needed for in-place schedule updates.
type incrState struct {
	// iterPhase/iterIdx locate each owned iteration inside Phases.
	iterPhase map[int32]int
	iterIdx   map[int32]int
	// bufOf maps a deferred element to its buffer slot; slotRefs counts
	// live references per slot (indexed slot-NumElems); slotElem records
	// the element a slot buffers; free lists reusable slots.
	bufOf    map[int32]int32
	slotRefs []int
	slotElem []int32
	free     []int32
}

// BeginIncremental prepares the schedule for Update calls by indexing its
// iterations and buffer slots. It is idempotent and runs in one pass over
// the schedule.
func (s *Schedule) BeginIncremental() {
	if s.incr != nil {
		return
	}
	st := &incrState{
		iterPhase: make(map[int32]int, s.NumIters()),
		iterIdx:   make(map[int32]int, s.NumIters()),
		bufOf:     make(map[int32]int32, s.BufLen),
		slotRefs:  make([]int, s.BufLen),
		slotElem:  make([]int32, s.BufLen),
	}
	for i := range st.slotElem {
		st.slotElem[i] = -1
	}
	for ph := range s.Phases {
		p := &s.Phases[ph]
		for j, it := range p.Iters {
			st.iterPhase[it] = ph
			st.iterIdx[it] = j
			for r := range p.Ind {
				if x := p.Ind[r][j]; int(x) >= s.Cfg.NumElems {
					st.slotRefs[int(x)-s.Cfg.NumElems]++
				}
			}
		}
		for _, cp := range p.Copies {
			b := int(cp.Buf) - s.Cfg.NumElems
			st.slotElem[b] = cp.Elem
			st.bufOf[cp.Elem] = cp.Buf
		}
	}
	s.incr = st
}

// Update incrementally revises the schedule after the indirection arrays
// changed for the given iterations. ind must be the full, new indirection
// arrays (same shapes as those passed to Light). Iterations not owned by
// this processor are ignored, so callers may pass the global change list.
// The cost is O(changed iterations), not O(all iterations).
func (s *Schedule) Update(changed []int32, ind ...[]int32) error {
	if len(ind) != s.NumRef {
		return fmt.Errorf("inspector: Update got %d indirection arrays, schedule has %d references", len(ind), s.NumRef)
	}
	for r, a := range ind {
		if len(a) != s.Cfg.NumIters {
			return fmt.Errorf("inspector: indirection %d has length %d, want %d", r, len(a), s.Cfg.NumIters)
		}
	}
	s.BeginIncremental()
	for _, it := range changed {
		if int(it) < 0 || int(it) >= s.Cfg.NumIters {
			return fmt.Errorf("inspector: changed iteration %d out of range", it)
		}
		if s.Cfg.OwnerOfIter(int(it)) != s.Proc {
			continue
		}
		for r := range ind {
			if e := ind[r][it]; int(e) < 0 || int(e) >= s.Cfg.NumElems {
				return fmt.Errorf("inspector: indirection %d value %d at iteration %d out of range", r, e, it)
			}
		}
		s.remove(it)
		s.insert(it, ind)
	}
	return nil
}

// remove detaches iteration it from its current phase, releasing buffer
// slots whose reference counts drop to zero.
func (s *Schedule) remove(it int32) {
	st := s.incr
	ph, ok := st.iterPhase[it]
	if !ok {
		return
	}
	j := st.iterIdx[it]
	p := &s.Phases[ph]
	for r := range p.Ind {
		if x := p.Ind[r][j]; int(x) >= s.Cfg.NumElems {
			s.releaseSlot(x)
		}
	}
	// Swap-remove from the phase, updating the moved iteration's index.
	last := len(p.Iters) - 1
	moved := p.Iters[last]
	p.Iters[j] = moved
	p.Iters = p.Iters[:last]
	for r := range p.Ind {
		p.Ind[r][j] = p.Ind[r][last]
		p.Ind[r] = p.Ind[r][:last]
	}
	if moved != it {
		st.iterIdx[moved] = j
	}
	delete(st.iterPhase, it)
	delete(st.iterIdx, it)
}

// releaseSlot decrements a buffer slot's reference count and, at zero,
// removes its copy pair and recycles the slot.
func (s *Schedule) releaseSlot(slot int32) {
	st := s.incr
	b := int(slot) - s.Cfg.NumElems
	st.slotRefs[b]--
	if st.slotRefs[b] > 0 {
		return
	}
	elem := st.slotElem[b]
	cph := s.Cfg.PhaseOf(s.Proc, int(elem))
	cp := &s.Phases[cph]
	for i := range cp.Copies {
		if cp.Copies[i].Buf == slot {
			cp.Copies[i] = cp.Copies[len(cp.Copies)-1]
			cp.Copies = cp.Copies[:len(cp.Copies)-1]
			break
		}
	}
	delete(st.bufOf, elem)
	st.slotElem[b] = -1
	st.free = append(st.free, slot)
}

// insert assigns iteration it to its (new) phase, rewriting references and
// allocating buffer slots for deferred elements.
func (s *Schedule) insert(it int32, ind [][]int32) {
	st := s.incr
	// Earliest owning phase across references (inspector step 1).
	best := s.Cfg.NumPhases()
	for r := range ind {
		if ph := s.Cfg.PhaseOf(s.Proc, int(ind[r][it])); ph < best {
			best = ph
		}
	}
	p := &s.Phases[best]
	j := len(p.Iters)
	p.Iters = append(p.Iters, it)
	for r := range ind {
		e := ind[r][it]
		if s.Cfg.PhaseOf(s.Proc, int(e)) == best {
			p.Ind[r] = append(p.Ind[r], e)
			continue
		}
		p.Ind[r] = append(p.Ind[r], s.acquireSlot(e))
	}
	st.iterPhase[it] = best
	st.iterIdx[it] = j
}

// acquireSlot returns the buffer slot for a deferred element, reusing or
// allocating one and installing its copy pair on first use.
func (s *Schedule) acquireSlot(e int32) int32 {
	st := s.incr
	if slot, ok := st.bufOf[e]; ok {
		st.slotRefs[int(slot)-s.Cfg.NumElems]++
		return slot
	}
	var slot int32
	if n := len(st.free); n > 0 {
		slot = st.free[n-1]
		st.free = st.free[:n-1]
	} else {
		slot = int32(s.Cfg.NumElems + s.BufLen)
		s.BufLen++
		st.slotRefs = append(st.slotRefs, 0)
		st.slotElem = append(st.slotElem, -1)
	}
	b := int(slot) - s.Cfg.NumElems
	st.slotRefs[b] = 1
	st.slotElem[b] = e
	st.bufOf[e] = slot
	cph := s.Cfg.PhaseOf(s.Proc, int(e))
	s.Phases[cph].Copies = append(s.Phases[cph].Copies, CopyPair{Elem: e, Buf: slot})
	return slot
}
