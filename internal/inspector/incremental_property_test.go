package inspector

import (
	"math/rand"
	"testing"
)

// auditSlots is the white-box bookkeeping oracle for the incremental
// state: it recomputes, from the phase programs alone, how many live
// references each buffer slot has and which element it buffers, then
// checks the maintained slotRefs/slotElem/bufOf/free structures against
// that ground truth. Any leak (a dead slot missing from the free list),
// double-free (a slot freed twice or freed while referenced), or stale
// mapping shows up as a mismatch.
func auditSlots(t *testing.T, s *Schedule) {
	t.Helper()
	st := s.incr
	if st == nil {
		t.Fatal("schedule has no incremental state")
	}
	if len(st.slotRefs) != s.BufLen || len(st.slotElem) != s.BufLen {
		t.Fatalf("slot tables sized %d/%d, BufLen %d", len(st.slotRefs), len(st.slotElem), s.BufLen)
	}
	refs := make([]int, s.BufLen)
	elemOf := make([]int32, s.BufLen)
	for b := range elemOf {
		elemOf[b] = -1
	}
	for ph := range s.Phases {
		p := &s.Phases[ph]
		for r := range p.Ind {
			for _, x := range p.Ind[r] {
				if int(x) >= s.Cfg.NumElems {
					b := int(x) - s.Cfg.NumElems
					if b >= s.BufLen {
						t.Fatalf("phase %d ref %d uses slot %d beyond BufLen %d", ph, r, b, s.BufLen)
					}
					refs[b]++
				}
			}
		}
		for _, cp := range p.Copies {
			b := int(cp.Buf) - s.Cfg.NumElems
			if b < 0 || b >= s.BufLen {
				t.Fatalf("copy pair slot %d out of range", b)
			}
			if elemOf[b] >= 0 {
				t.Fatalf("slot %d has two copy pairs (elements %d and %d)", b, elemOf[b], cp.Elem)
			}
			elemOf[b] = cp.Elem
		}
	}
	for b := 0; b < s.BufLen; b++ {
		if refs[b] != st.slotRefs[b] {
			t.Fatalf("slot %d: %d live references, slotRefs says %d", b, refs[b], st.slotRefs[b])
		}
		if refs[b] > 0 {
			if elemOf[b] < 0 {
				t.Fatalf("slot %d referenced %d times but has no copy pair", b, refs[b])
			}
			if st.slotElem[b] != elemOf[b] {
				t.Fatalf("slot %d buffers element %d, slotElem says %d", b, elemOf[b], st.slotElem[b])
			}
		} else {
			if elemOf[b] >= 0 {
				t.Fatalf("dead slot %d still has a copy pair for element %d", b, elemOf[b])
			}
			if st.slotElem[b] != -1 {
				t.Fatalf("dead slot %d: slotElem = %d, want -1", b, st.slotElem[b])
			}
		}
	}
	// The free list must contain exactly the zero-reference slots, each
	// once: a missing slot is a leak, a duplicate is a double-free, a live
	// slot on the list would be corrupted by the next acquire.
	seen := make(map[int32]bool, len(st.free))
	for _, slot := range st.free {
		b := int(slot) - s.Cfg.NumElems
		if b < 0 || b >= s.BufLen {
			t.Fatalf("free list holds slot %d outside the buffer", slot)
		}
		if seen[slot] {
			t.Fatalf("slot %d double-freed", slot)
		}
		seen[slot] = true
		if refs[b] != 0 {
			t.Fatalf("slot %d on the free list with %d live references", slot, refs[b])
		}
	}
	dead := 0
	for b := range refs {
		if refs[b] == 0 {
			dead++
		}
	}
	if len(st.free) != dead {
		t.Fatalf("free list has %d slots, %d are dead (leak)", len(st.free), dead)
	}
	// bufOf must be a bijection onto the live slots.
	for e, slot := range st.bufOf {
		b := int(slot) - s.Cfg.NumElems
		if b < 0 || b >= s.BufLen || refs[b] == 0 || st.slotElem[b] != e {
			t.Fatalf("bufOf[%d] = slot %d is stale (refs %d, slotElem %d)", e, slot, refs[b], st.slotElem[b])
		}
	}
	if live := s.BufLen - dead; len(st.bufOf) != live {
		t.Fatalf("bufOf has %d entries, %d slots are live", len(st.bufOf), live)
	}
}

// TestUpdateSlotReuseProperty drives randomized update sequences across
// strategies and asserts after every batch that the slot bookkeeping
// neither leaks nor double-frees, and that the schedule still passes its
// full invariant check and reproduces the sequential result.
func TestUpdateSlotReuseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1718))
	dists := []Dist{Block, Cyclic}
	for trial := 0; trial < 12; trial++ {
		cfg := Config{
			P: 1 + rng.Intn(4), K: 1 + rng.Intn(3),
			NumIters: 150 + rng.Intn(250),
			NumElems: 30 + rng.Intn(70),
			Dist:     dists[trial%2],
		}
		ind := randInd(rng, cfg.NumIters, cfg.NumElems, 1+rng.Intn(2)+1)
		scheds := make([]*Schedule, cfg.P)
		for p := 0; p < cfg.P; p++ {
			s, err := Light(cfg, p, ind...)
			if err != nil {
				t.Fatal(err)
			}
			s.BeginIncremental()
			auditSlots(t, s)
			scheds[p] = s
		}
		for round := 0; round < 25; round++ {
			changed := mutateInd(rng, ind, cfg.NumElems, 1+rng.Intn(16))
			for p, s := range scheds {
				if err := s.Update(changed, ind...); err != nil {
					t.Fatalf("trial %d round %d proc %d: %v", trial, round, p, err)
				}
				auditSlots(t, s)
				if err := s.Check(ind...); err != nil {
					t.Fatalf("trial %d round %d proc %d: %v", trial, round, p, err)
				}
			}
		}
		got := emulateScheds(cfg, scheds, func(i, r int) float64 { return float64(i%7 + r) })
		want := sequential(cfg, ind, func(i, r int) float64 { return float64(i%7 + r) })
		for e := range got {
			if got[e] != want[e] {
				t.Fatalf("trial %d: element %d = %g, want %g", trial, e, got[e], want[e])
			}
		}
	}
}

// TestCloneIndependence asserts a cloned schedule is equal to its source
// but fully detached: updates to the clone must not disturb the original
// (the cache-immutability contract sessions rely on).
func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := Config{P: 3, K: 2, NumIters: 400, NumElems: 80, Dist: Cyclic}
	ind := randInd(rng, cfg.NumIters, cfg.NumElems, 2)
	orig, err := Light(cfg, 1, ind...)
	if err != nil {
		t.Fatal(err)
	}
	origIters, origBuf := orig.NumIters(), orig.BufLen

	cl := orig.Clone()
	if cl.NumIters() != origIters || cl.BufLen != origBuf || cl.NumRef != orig.NumRef {
		t.Fatalf("clone differs: iters %d/%d buf %d/%d", cl.NumIters(), origIters, cl.BufLen, origBuf)
	}
	if err := cl.Check(ind...); err != nil {
		t.Fatal(err)
	}

	// Mutate through the clone; the original must stay bitwise intact.
	snapshot := func(s *Schedule) []int32 {
		var flat []int32
		for ph := range s.Phases {
			p := &s.Phases[ph]
			flat = append(flat, p.Iters...)
			for r := range p.Ind {
				flat = append(flat, p.Ind[r]...)
			}
			for _, cp := range p.Copies {
				flat = append(flat, cp.Elem, cp.Buf)
			}
		}
		return flat
	}
	before := snapshot(orig)
	mutated := append([][]int32(nil), ind...)
	for r := range mutated {
		mutated[r] = append([]int32(nil), ind[r]...)
	}
	changed := mutateInd(rng, mutated, cfg.NumElems, 40)
	if err := cl.Update(changed, mutated...); err != nil {
		t.Fatal(err)
	}
	if err := cl.Check(mutated...); err != nil {
		t.Fatal(err)
	}
	after := snapshot(orig)
	if len(before) != len(after) {
		t.Fatalf("original changed shape: %d -> %d entries", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("original entry %d changed: %d -> %d", i, before[i], after[i])
		}
	}
	if orig.incr != nil {
		t.Fatal("cloning or updating the clone built incremental state on the original")
	}
}
