package inspector

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Schedule serialization: a compact binary format so LightInspector output
// can be cached to disk and reloaded instead of re-inspecting — the
// practical complement to the paper's "inspector executed once" methodology
// when the same dataset is run many times.
//
// Layout (little-endian varints except where noted):
//
//	magic "IRSC" | version u8 | Config (6 varints) | proc | numRef | bufLen
//	per phase: iter count | iters (delta-varint) | per ref: ind values |
//	           copy count | copy pairs
const (
	schedMagic   = "IRSC"
	schedVersion = 1
)

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// WriteTo serializes the schedule. It implements io.WriterTo.
func (s *Schedule) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	if _, err := bw.WriteString(schedMagic); err != nil {
		return cw.n, err
	}
	if err := bw.WriteByte(schedVersion); err != nil {
		return cw.n, err
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	hdr := []int64{
		int64(s.Cfg.P), int64(s.Cfg.K), int64(s.Cfg.NumIters), int64(s.Cfg.NumElems),
		int64(s.Cfg.Dist), int64(s.Proc), int64(s.NumRef), int64(s.BufLen),
		int64(len(s.Phases)),
	}
	for _, v := range hdr {
		if err := put(v); err != nil {
			return cw.n, err
		}
	}
	for ph := range s.Phases {
		p := &s.Phases[ph]
		if err := put(int64(len(p.Iters))); err != nil {
			return cw.n, err
		}
		// Iterations delta-encoded (ascending after Light; Update may
		// reorder, so deltas are signed).
		prev := int64(0)
		for _, it := range p.Iters {
			if err := put(int64(it) - prev); err != nil {
				return cw.n, err
			}
			prev = int64(it)
		}
		for r := 0; r < s.NumRef; r++ {
			for _, x := range p.Ind[r] {
				if err := put(int64(x)); err != nil {
					return cw.n, err
				}
			}
		}
		if err := put(int64(len(p.Copies))); err != nil {
			return cw.n, err
		}
		for _, cp := range p.Copies {
			if err := put(int64(cp.Elem)); err != nil {
				return cw.n, err
			}
			if err := put(int64(cp.Buf)); err != nil {
				return cw.n, err
			}
		}
	}
	return cw.n, bw.Flush()
}

// ReadSchedule deserializes a schedule written by WriteTo and verifies its
// structural invariants before returning it.
func ReadSchedule(r io.Reader) (*Schedule, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("inspector: reading schedule magic: %w", err)
	}
	if string(magic) != schedMagic {
		return nil, fmt.Errorf("inspector: bad schedule magic %q", magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != schedVersion {
		return nil, fmt.Errorf("inspector: unsupported schedule version %d", ver)
	}
	get := func() (int64, error) { return binary.ReadVarint(br) }
	geti := func() (int, error) {
		v, err := get()
		if err != nil {
			return 0, err
		}
		if v < 0 || v > 1<<31 {
			return 0, fmt.Errorf("inspector: corrupt schedule: count %d", v)
		}
		return int(v), nil
	}

	s := &Schedule{}
	fields := []*int{&s.Cfg.P, &s.Cfg.K, &s.Cfg.NumIters, &s.Cfg.NumElems}
	for _, f := range fields {
		if *f, err = geti(); err != nil {
			return nil, err
		}
	}
	dist, err := geti()
	if err != nil {
		return nil, err
	}
	s.Cfg.Dist = Dist(dist)
	if s.Proc, err = geti(); err != nil {
		return nil, err
	}
	if s.NumRef, err = geti(); err != nil {
		return nil, err
	}
	if s.BufLen, err = geti(); err != nil {
		return nil, err
	}
	nPhases, err := geti()
	if err != nil {
		return nil, err
	}
	if err := s.Cfg.Validate(); err != nil {
		return nil, fmt.Errorf("inspector: corrupt schedule: %w", err)
	}
	if nPhases != s.Cfg.NumPhases() {
		return nil, fmt.Errorf("inspector: corrupt schedule: %d phases for k*P = %d", nPhases, s.Cfg.NumPhases())
	}
	if s.NumRef <= 0 || s.NumRef > 16 {
		return nil, fmt.Errorf("inspector: corrupt schedule: %d references", s.NumRef)
	}

	// Claimed counts are untrusted until the stream backs them: every entry
	// costs at least one byte on the wire, so a short corrupt stream hits
	// EOF long before an append-grown slice gets large. Preallocation is
	// therefore capped — a corrupt header claiming 2^31 phases or
	// iterations must not translate into a multi-gigabyte make() up front.
	const preallocCap = 1 << 16
	capAt := func(n int) int {
		if n > preallocCap {
			return preallocCap
		}
		return n
	}
	s.Phases = make([]PhaseProgram, 0, capAt(nPhases))
	for ph := 0; ph < nPhases; ph++ {
		var p PhaseProgram
		n, err := geti()
		if err != nil {
			return nil, err
		}
		if n > s.Cfg.NumIters {
			return nil, fmt.Errorf("inspector: corrupt schedule: phase %d has %d iterations", ph, n)
		}
		p.Iters = make([]int32, 0, capAt(n))
		prev := int64(0)
		for j := 0; j < n; j++ {
			d, err := get()
			if err != nil {
				return nil, err
			}
			prev += d
			p.Iters = append(p.Iters, int32(prev))
		}
		p.Ind = make([][]int32, s.NumRef)
		for r := 0; r < s.NumRef; r++ {
			p.Ind[r] = make([]int32, 0, capAt(n))
			for j := 0; j < n; j++ {
				v, err := get()
				if err != nil {
					return nil, err
				}
				p.Ind[r] = append(p.Ind[r], int32(v))
			}
		}
		nc, err := geti()
		if err != nil {
			return nil, err
		}
		if nc > s.BufLen {
			return nil, fmt.Errorf("inspector: corrupt schedule: phase %d has %d copies for %d buffers", ph, nc, s.BufLen)
		}
		p.Copies = make([]CopyPair, 0, capAt(nc))
		for j := 0; j < nc; j++ {
			e, err := get()
			if err != nil {
				return nil, err
			}
			b, err := get()
			if err != nil {
				return nil, err
			}
			p.Copies = append(p.Copies, CopyPair{Elem: int32(e), Buf: int32(b)})
		}
		s.Phases = append(s.Phases, p)
	}
	if err := s.Check(); err != nil {
		return nil, fmt.Errorf("inspector: deserialized schedule invalid: %w", err)
	}
	return s, nil
}
