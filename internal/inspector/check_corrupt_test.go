package inspector

import (
	"math/rand"
	"strings"
	"testing"
)

// freshSchedule builds a schedule with both owned writes and buffered
// (deferred) writes, so every Check invariant has something to trip over.
func freshSchedule(t *testing.T) (Config, *Schedule, [][]int32) {
	t.Helper()
	cfg := Config{P: 4, K: 2, NumIters: 200, NumElems: 64, Dist: Cyclic}
	rng := rand.New(rand.NewSource(21))
	ind := randInd(rng, cfg.NumIters, cfg.NumElems, 2)
	s, err := Light(cfg, 0, ind...)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Check(ind...); err != nil {
		t.Fatalf("fresh schedule fails Check: %v", err)
	}
	if s.BufLen == 0 || s.NumCopies() == 0 {
		t.Fatal("fresh schedule has no buffered references to corrupt")
	}
	return cfg, s, ind
}

// findOwned locates an owned (non-buffered) reference: phase ph, ref r,
// slot j with Ind[r][j] < NumElems.
func findOwned(t *testing.T, cfg Config, s *Schedule) (ph, r, j int) {
	t.Helper()
	for ph := range s.Phases {
		p := &s.Phases[ph]
		for r := range p.Ind {
			for j, x := range p.Ind[r] {
				if int(x) < cfg.NumElems {
					return ph, r, j
				}
			}
		}
	}
	t.Fatal("no owned reference found")
	return 0, 0, 0
}

// findBuffered locates a deferred reference (Ind entry >= NumElems).
func findBuffered(t *testing.T, cfg Config, s *Schedule) (ph, r, j int) {
	t.Helper()
	for ph := range s.Phases {
		p := &s.Phases[ph]
		for r := range p.Ind {
			for j, x := range p.Ind[r] {
				if int(x) >= cfg.NumElems {
					return ph, r, j
				}
			}
		}
	}
	t.Fatal("no buffered reference found")
	return 0, 0, 0
}

// findCopy locates a phase with a copy-loop entry.
func findCopy(t *testing.T, s *Schedule) int {
	t.Helper()
	for ph := range s.Phases {
		if len(s.Phases[ph].Copies) > 0 {
			return ph
		}
	}
	t.Fatal("no copy entries found")
	return 0
}

// TestCheckRejectsCorruptedSchedules hand-corrupts a valid LightInspector
// schedule in every way Check guards against and asserts each corruption is
// caught with the right complaint.
func TestCheckRejectsCorruptedSchedules(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, cfg Config, s *Schedule, ind [][]int32)
		wantMsg string
	}{
		{
			// The systolic invariant: every write lands in a portion owned
			// during the write's phase. Redirect an owned write to an element
			// whose portion arrives in a different phase.
			name: "write in non-owning phase",
			corrupt: func(t *testing.T, cfg Config, s *Schedule, ind [][]int32) {
				ph, r, j := findOwned(t, cfg, s)
				x := s.Phases[ph].Ind[r][j]
				s.Phases[ph].Ind[r][j] = (x + int32(cfg.PortionSize())) % int32(cfg.NumElems)
			},
			wantMsg: "not owned",
		},
		{
			name: "iteration duplicated across phases",
			corrupt: func(t *testing.T, cfg Config, s *Schedule, ind [][]int32) {
				src, dst := -1, -1
				for ph := range s.Phases {
					if len(s.Phases[ph].Iters) > 0 {
						if src < 0 {
							src = ph
						} else {
							dst = ph
							break
						}
					}
				}
				if dst < 0 {
					t.Fatal("need two non-empty phases")
				}
				p, q := &s.Phases[src], &s.Phases[dst]
				q.Iters = append(q.Iters, p.Iters[0])
				for r := range q.Ind {
					q.Ind[r] = append(q.Ind[r], p.Ind[r][0])
				}
			},
			wantMsg: "scheduled twice",
		},
		{
			name: "iteration dropped",
			corrupt: func(t *testing.T, cfg Config, s *Schedule, ind [][]int32) {
				ph, _, _ := findOwned(t, cfg, s)
				p := &s.Phases[ph]
				p.Iters = p.Iters[1:]
				for r := range p.Ind {
					p.Ind[r] = p.Ind[r][1:]
				}
			},
			wantMsg: "iterations",
		},
		{
			name: "iteration owned by another processor",
			corrupt: func(t *testing.T, cfg Config, s *Schedule, ind [][]int32) {
				ph, _, j := findOwned(t, cfg, s)
				it := s.Phases[ph].Iters[j]
				for i := 0; i < cfg.NumIters; i++ {
					if cfg.OwnerOfIter(i) != s.Proc && int32(i) != it {
						s.Phases[ph].Iters[j] = int32(i)
						return
					}
				}
				t.Fatal("no foreign iteration found")
			},
			wantMsg: "not owned by proc",
		},
		{
			name: "index outside the local image",
			corrupt: func(t *testing.T, cfg Config, s *Schedule, ind [][]int32) {
				ph, r, j := findOwned(t, cfg, s)
				s.Phases[ph].Ind[r][j] = int32(s.LocalLen())
			},
			wantMsg: "out of local image",
		},
		{
			name: "owned write redirected within the portion",
			corrupt: func(t *testing.T, cfg Config, s *Schedule, ind [][]int32) {
				// Same phase, same portion, wrong element: only the original
				// indirection array can expose this.
				ph, r, j := findOwned(t, cfg, s)
				x := int(s.Phases[ph].Ind[r][j])
				for e := 0; e < cfg.NumElems; e++ {
					if e != x && cfg.PhaseOf(s.Proc, e) == ph {
						s.Phases[ph].Ind[r][j] = int32(e)
						return
					}
				}
				t.Skip("portion has a single element")
			},
			wantMsg: "!= original",
		},
		{
			name: "two elements share a buffer slot",
			corrupt: func(t *testing.T, cfg Config, s *Schedule, ind [][]int32) {
				ph1, r1, j1 := findBuffered(t, cfg, s)
				a := s.Phases[ph1].Ind[r1][j1]
				e1 := ind[r1][s.Phases[ph1].Iters[j1]]
				for ph := range s.Phases {
					p := &s.Phases[ph]
					for r := range p.Ind {
						for j, x := range p.Ind[r] {
							if int(x) >= cfg.NumElems && x != a && ind[r][p.Iters[j]] != e1 {
								p.Ind[r][j] = a
								return
							}
						}
					}
				}
				t.Skip("only one buffered element")
			},
			wantMsg: "shared by elements",
		},
		{
			name: "copy entry in a non-owning phase",
			corrupt: func(t *testing.T, cfg Config, s *Schedule, ind [][]int32) {
				src := findCopy(t, s)
				cp := s.Phases[src].Copies[0]
				dst := (src + 1) % len(s.Phases)
				if cfg.PhaseOf(s.Proc, int(cp.Elem)) == dst {
					t.Fatalf("destination phase %d also owns element %d", dst, cp.Elem)
				}
				s.Phases[src].Copies = s.Phases[src].Copies[1:]
				s.Phases[dst].Copies = append(s.Phases[dst].Copies, cp)
			},
			wantMsg: "not owned",
		},
		{
			name: "copy source outside the buffer",
			corrupt: func(t *testing.T, cfg Config, s *Schedule, ind [][]int32) {
				ph := findCopy(t, s)
				s.Phases[ph].Copies[0].Buf = int32(s.LocalLen())
			},
			wantMsg: "out of buffer",
		},
		{
			name: "referenced slot never drained",
			corrupt: func(t *testing.T, cfg Config, s *Schedule, ind [][]int32) {
				ph := findCopy(t, s)
				s.Phases[ph].Copies = s.Phases[ph].Copies[1:]
			},
			wantMsg: "copied",
		},
		{
			name: "slot drained twice",
			corrupt: func(t *testing.T, cfg Config, s *Schedule, ind [][]int32) {
				ph := findCopy(t, s)
				p := &s.Phases[ph]
				p.Copies = append(p.Copies, p.Copies[0])
			},
			wantMsg: "copied",
		},
		{
			name: "ragged indirection data",
			corrupt: func(t *testing.T, cfg Config, s *Schedule, ind [][]int32) {
				ph, r, _ := findOwned(t, cfg, s)
				p := &s.Phases[ph]
				p.Ind[r] = p.Ind[r][:len(p.Ind[r])-1]
			},
			wantMsg: "entries for",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, s, ind := freshSchedule(t)
			tc.corrupt(t, cfg, s, ind)
			err := s.Check(ind...)
			if err == nil {
				t.Fatal("Check accepted the corrupted schedule")
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("Check() = %q, want message containing %q", err, tc.wantMsg)
			}
		})
	}
}
