package inspector

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScheduleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	cfg := Config{P: 4, K: 2, NumIters: 500, NumElems: 97, Dist: Cyclic}
	ind := randInd(rng, cfg.NumIters, cfg.NumElems, 2)
	for p := 0; p < cfg.P; p++ {
		s, err := Light(cfg, p, ind...)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		n, err := s.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
		}
		got, err := ReadSchedule(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cfg != s.Cfg || got.Proc != s.Proc || got.BufLen != s.BufLen || got.NumRef != s.NumRef {
			t.Fatalf("header changed: %+v vs %+v", got.Cfg, s.Cfg)
		}
		for ph := range s.Phases {
			a, b := &s.Phases[ph], &got.Phases[ph]
			if len(a.Iters) != len(b.Iters) || len(a.Copies) != len(b.Copies) {
				t.Fatalf("phase %d shape changed", ph)
			}
			for j := range a.Iters {
				if a.Iters[j] != b.Iters[j] {
					t.Fatalf("phase %d iter %d changed", ph, j)
				}
				for r := range a.Ind {
					if a.Ind[r][j] != b.Ind[r][j] {
						t.Fatalf("phase %d ind[%d][%d] changed", ph, r, j)
					}
				}
			}
			for j := range a.Copies {
				if a.Copies[j] != b.Copies[j] {
					t.Fatalf("phase %d copy %d changed", ph, j)
				}
			}
		}
		// The deserialized schedule passes the full invariant check
		// against the original indirection arrays.
		if err := got.Check(ind...); err != nil {
			t.Fatal(err)
		}
	}
}

func TestScheduleRoundTripAfterIncrementalUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	cfg := Config{P: 2, K: 2, NumIters: 200, NumElems: 40, Dist: Block}
	ind := randInd(rng, cfg.NumIters, cfg.NumElems, 2)
	s, err := Light(cfg, 0, ind...)
	if err != nil {
		t.Fatal(err)
	}
	changed := mutateInd(rng, ind, cfg.NumElems, 20)
	if err := s.Update(changed, ind...); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSchedule(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Check(ind...); err != nil {
		t.Fatal(err)
	}
	// And the reloaded schedule accepts further incremental updates.
	changed2 := mutateInd(rng, ind, cfg.NumElems, 10)
	if err := got.Update(changed2, ind...); err != nil {
		t.Fatal(err)
	}
	if err := got.Check(ind...); err != nil {
		t.Fatal(err)
	}
}

func TestReadScheduleRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOPE\x01"),
		"truncated": []byte("IRSC\x01\x02"),
		"bad ver":   []byte("IRSC\x09"),
	}
	for name, data := range cases {
		if _, err := ReadSchedule(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadScheduleRejectsTamperedBody(t *testing.T) {
	cfg := Config{P: 2, K: 1, NumIters: 50, NumElems: 16, Dist: Block}
	rng := rand.New(rand.NewSource(53))
	ind := randInd(rng, cfg.NumIters, cfg.NumElems, 2)
	s, err := Light(cfg, 0, ind...)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Flip bytes in the body; either decoding fails or the invariant check
	// catches it. (Some flips may decode to an equivalent valid schedule of
	// different content — the Check(ind) in production call sites catches
	// those; here we only require no panic and mostly-detected corruption.)
	data := buf.Bytes()
	detected := 0
	for off := 6; off < len(data); off += 7 {
		tampered := append([]byte(nil), data...)
		tampered[off] ^= 0x55
		if _, err := ReadSchedule(bytes.NewReader(tampered)); err != nil {
			detected++
		}
	}
	if detected == 0 {
		t.Fatal("no tampering detected at all")
	}
}

// Property: round trip is lossless for arbitrary shapes.
func TestScheduleSerializationProperty(t *testing.T) {
	prop := func(seed int64, pRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{P: 1 + int(pRaw)%5, K: 1 + int(kRaw)%3, NumIters: 120, NumElems: 31, Dist: Cyclic}
		ind := randInd(rng, cfg.NumIters, cfg.NumElems, 2)
		s, err := Light(cfg, 0, ind...)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadSchedule(&buf)
		if err != nil {
			return false
		}
		return got.Check(ind...) == nil && got.NumIters() == s.NumIters()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
