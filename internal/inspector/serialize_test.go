package inspector

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScheduleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	cfg := Config{P: 4, K: 2, NumIters: 500, NumElems: 97, Dist: Cyclic}
	ind := randInd(rng, cfg.NumIters, cfg.NumElems, 2)
	for p := 0; p < cfg.P; p++ {
		s, err := Light(cfg, p, ind...)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		n, err := s.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
		}
		got, err := ReadSchedule(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cfg != s.Cfg || got.Proc != s.Proc || got.BufLen != s.BufLen || got.NumRef != s.NumRef {
			t.Fatalf("header changed: %+v vs %+v", got.Cfg, s.Cfg)
		}
		for ph := range s.Phases {
			a, b := &s.Phases[ph], &got.Phases[ph]
			if len(a.Iters) != len(b.Iters) || len(a.Copies) != len(b.Copies) {
				t.Fatalf("phase %d shape changed", ph)
			}
			for j := range a.Iters {
				if a.Iters[j] != b.Iters[j] {
					t.Fatalf("phase %d iter %d changed", ph, j)
				}
				for r := range a.Ind {
					if a.Ind[r][j] != b.Ind[r][j] {
						t.Fatalf("phase %d ind[%d][%d] changed", ph, r, j)
					}
				}
			}
			for j := range a.Copies {
				if a.Copies[j] != b.Copies[j] {
					t.Fatalf("phase %d copy %d changed", ph, j)
				}
			}
		}
		// The deserialized schedule passes the full invariant check
		// against the original indirection arrays.
		if err := got.Check(ind...); err != nil {
			t.Fatal(err)
		}
	}
}

func TestScheduleRoundTripAfterIncrementalUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	cfg := Config{P: 2, K: 2, NumIters: 200, NumElems: 40, Dist: Block}
	ind := randInd(rng, cfg.NumIters, cfg.NumElems, 2)
	s, err := Light(cfg, 0, ind...)
	if err != nil {
		t.Fatal(err)
	}
	changed := mutateInd(rng, ind, cfg.NumElems, 20)
	if err := s.Update(changed, ind...); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSchedule(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Check(ind...); err != nil {
		t.Fatal(err)
	}
	// And the reloaded schedule accepts further incremental updates.
	changed2 := mutateInd(rng, ind, cfg.NumElems, 10)
	if err := got.Update(changed2, ind...); err != nil {
		t.Fatal(err)
	}
	if err := got.Check(ind...); err != nil {
		t.Fatal(err)
	}
}

func TestReadScheduleRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOPE\x01"),
		"truncated": []byte("IRSC\x01\x02"),
		"bad ver":   []byte("IRSC\x09"),
	}
	for name, data := range cases {
		if _, err := ReadSchedule(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadScheduleRejectsTamperedBody(t *testing.T) {
	cfg := Config{P: 2, K: 1, NumIters: 50, NumElems: 16, Dist: Block}
	rng := rand.New(rand.NewSource(53))
	ind := randInd(rng, cfg.NumIters, cfg.NumElems, 2)
	s, err := Light(cfg, 0, ind...)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Flip bytes in the body; either decoding fails or the invariant check
	// catches it. (Some flips may decode to an equivalent valid schedule of
	// different content — the Check(ind) in production call sites catches
	// those; here we only require no panic and mostly-detected corruption.)
	data := buf.Bytes()
	detected := 0
	for off := 6; off < len(data); off += 7 {
		tampered := append([]byte(nil), data...)
		tampered[off] ^= 0x55
		if _, err := ReadSchedule(bytes.NewReader(tampered)); err != nil {
			detected++
		}
	}
	if detected == 0 {
		t.Fatal("no tampering detected at all")
	}
}

// Property: round trip is lossless for arbitrary shapes.
func TestScheduleSerializationProperty(t *testing.T) {
	prop := func(seed int64, pRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{P: 1 + int(pRaw)%5, K: 1 + int(kRaw)%3, NumIters: 120, NumElems: 31, Dist: Cyclic}
		ind := randInd(rng, cfg.NumIters, cfg.NumElems, 2)
		s, err := Light(cfg, 0, ind...)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadSchedule(&buf)
		if err != nil {
			return false
		}
		return got.Check(ind...) == nil && got.NumIters() == s.NumIters()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// schedulesEquivalent compares every serialized field of two schedules,
// treating nil and empty slices as equal (Light leaves empty Copies nil,
// ReadSchedule materialises empty non-nil slices).
func schedulesEquivalent(a, b *Schedule) string {
	if a.Cfg != b.Cfg {
		return fmt.Sprintf("Cfg: %+v vs %+v", a.Cfg, b.Cfg)
	}
	if a.Proc != b.Proc || a.NumRef != b.NumRef || a.BufLen != b.BufLen {
		return fmt.Sprintf("header: (%d,%d,%d) vs (%d,%d,%d)",
			a.Proc, a.NumRef, a.BufLen, b.Proc, b.NumRef, b.BufLen)
	}
	if len(a.Phases) != len(b.Phases) {
		return fmt.Sprintf("phase count: %d vs %d", len(a.Phases), len(b.Phases))
	}
	for ph := range a.Phases {
		x, y := &a.Phases[ph], &b.Phases[ph]
		if len(x.Iters) != len(y.Iters) {
			return fmt.Sprintf("phase %d: %d vs %d iters", ph, len(x.Iters), len(y.Iters))
		}
		for j := range x.Iters {
			if x.Iters[j] != y.Iters[j] {
				return fmt.Sprintf("phase %d iter %d: %d vs %d", ph, j, x.Iters[j], y.Iters[j])
			}
		}
		if len(x.Ind) != len(y.Ind) {
			return fmt.Sprintf("phase %d: %d vs %d refs", ph, len(x.Ind), len(y.Ind))
		}
		for r := range x.Ind {
			if len(x.Ind[r]) != len(y.Ind[r]) {
				return fmt.Sprintf("phase %d ref %d length", ph, r)
			}
			for j := range x.Ind[r] {
				if x.Ind[r][j] != y.Ind[r][j] {
					return fmt.Sprintf("phase %d ind[%d][%d]: %d vs %d", ph, r, j, x.Ind[r][j], y.Ind[r][j])
				}
			}
		}
		if len(x.Copies) != len(y.Copies) {
			return fmt.Sprintf("phase %d: %d vs %d copies", ph, len(x.Copies), len(y.Copies))
		}
		for j := range x.Copies {
			if x.Copies[j] != y.Copies[j] {
				return fmt.Sprintf("phase %d copy %d: %+v vs %+v", ph, j, x.Copies[j], y.Copies[j])
			}
		}
	}
	return ""
}

// Property: every field survives the round trip, across randomized P, k,
// distribution, reference count, and processor — not just the invariant
// check. Includes the k=1 edge case and P=1 (all-local schedules: BufLen 0,
// every Copies list empty).
func TestScheduleRoundTripAllFieldsProperty(t *testing.T) {
	dists := []Dist{Cyclic, Block}
	prop := func(seed int64, pRaw, kRaw, dRaw, rRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			P:        1 + int(pRaw)%6,
			K:        1 + int(kRaw)%4,
			NumIters: 60 + rng.Intn(200),
			NumElems: 17 + rng.Intn(80),
			Dist:     dists[int(dRaw)%len(dists)],
		}
		ind := randInd(rng, cfg.NumIters, cfg.NumElems, 1+int(rRaw)%3)
		proc := rng.Intn(cfg.P)
		s, err := Light(cfg, proc, ind...)
		if err != nil {
			t.Logf("seed %d: Light: %v", seed, err)
			return false
		}
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			t.Logf("seed %d: WriteTo: %v", seed, err)
			return false
		}
		got, err := ReadSchedule(&buf)
		if err != nil {
			t.Logf("seed %d: ReadSchedule: %v", seed, err)
			return false
		}
		if diff := schedulesEquivalent(s, got); diff != "" {
			t.Logf("seed %d (cfg %+v proc %d): %s", seed, cfg, proc, diff)
			return false
		}
		return got.Check(ind...) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The P=1 degenerate cases pinned down explicitly. At k=1 the single phase
// owns everything, so the schedule has no remote buffers and no copy loops —
// the empty-buffer shape the codec must preserve. At k>1 even one processor
// defers references to later-phase portions, so the buffers are non-empty;
// both shapes must round-trip.
func TestScheduleRoundTripSingleProcessor(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	for _, k := range []int{1, 2, 3} {
		cfg := Config{P: 1, K: k, NumIters: 150, NumElems: 40, Dist: Cyclic}
		ind := randInd(rng, cfg.NumIters, cfg.NumElems, 2)
		s, err := Light(cfg, 0, ind...)
		if err != nil {
			t.Fatal(err)
		}
		if k == 1 && s.BufLen != 0 {
			t.Fatalf("single-phase schedule has BufLen %d", s.BufLen)
		}
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadSchedule(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if diff := schedulesEquivalent(s, got); diff != "" {
			t.Fatalf("k=%d: %s", k, diff)
		}
		if k == 1 {
			for ph := range got.Phases {
				if len(got.Phases[ph].Copies) != 0 {
					t.Fatalf("phase %d grew %d copies", ph, len(got.Phases[ph].Copies))
				}
			}
		}
		if err := got.Check(ind...); err != nil {
			t.Fatal(err)
		}
	}
}
