package inspector

import (
	"fmt"

	"irred/internal/obs"
)

// CopyPair is one iteration of the second (copy) loop: when the owning
// phase begins, X[Elem] += X[Buf] folds a buffered contribution into the
// just-arrived portion, and the buffer slot is cleared for the next sweep.
type CopyPair struct {
	Elem int32 // reduction element (global index, owned in this phase)
	Buf  int32 // buffer slot (index >= Config.NumElems in the local image)
}

// PhaseProgram is everything one processor executes during one phase.
type PhaseProgram struct {
	// Iters lists the global iteration numbers assigned to this phase (in
	// increasing order as built by Light; incremental updates may reorder).
	Iters []int32
	// Ind holds, per indirection reference r, the rewritten local index of
	// Iters[j]'s r-th reduction access: either an owned element (global
	// numbering — no renumbering is needed since portions are contiguous)
	// or a remote-buffer slot >= NumElems.
	Ind [][]int32
	// Copies is the second loop of this phase.
	Copies []CopyPair
}

// Schedule is the LightInspector output for one processor: the per-phase
// iteration partition, rewritten indirection arrays, buffer extent, and
// copy loops. A processor's local image of the reduction array has
// NumElems + BufLen slots.
type Schedule struct {
	Cfg    Config
	Proc   int
	NumRef int            // indirection references per iteration
	BufLen int            // remote-buffer slots appended after NumElems
	Phases []PhaseProgram // len Cfg.NumPhases()

	incr *incrState // lazily-built state for incremental updates
}

// Light runs the LightInspector for processor proc. ind holds one
// indirection array per reduction reference in the loop (the paper's
// IA(i,1), IA(i,2), ...); each must have length Cfg.NumIters and values in
// [0, NumElems). The routine inspects only iterations owned by proc and
// performs no communication.
//
// The three steps follow Section 3 of the paper:
//  1. assign each local iteration to the earliest phase in which one of its
//     referenced portions is owned;
//  2. rewrite indirection values — owned references keep their element
//     index, future-phase references get a remote-buffer slot (slots are
//     shared by references to the same element, so each deferred element is
//     buffered and copied exactly once per sweep);
//  3. build the per-phase copy loops that apply buffered contributions when
//     the portion arrives.
func Light(cfg Config, proc int, ind ...[]int32) (*Schedule, error) {
	return LightTraced(cfg, proc, nil, ind...)
}

// LightTraced is Light recording one obs.SpanInspect span per invocation
// (tagged with the processor), so a serving layer can show how much
// inspector cost each schedule build amortizes. A nil tracer traces
// nothing.
func LightTraced(cfg Config, proc int, tr *obs.Tracer, ind ...[]int32) (*Schedule, error) {
	defer tr.End(obs.SpanInspect, proc, -1, -1, -1, tr.Begin())
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if proc < 0 || proc >= cfg.P {
		return nil, fmt.Errorf("inspector: proc %d out of range [0,%d)", proc, cfg.P)
	}
	if len(ind) == 0 {
		return nil, fmt.Errorf("inspector: need at least one indirection array")
	}
	for r, a := range ind {
		if len(a) != cfg.NumIters {
			return nil, fmt.Errorf("inspector: indirection array %d has %d entries, want %d", r, len(a), cfg.NumIters)
		}
	}

	nph := cfg.NumPhases()
	s := &Schedule{Cfg: cfg, Proc: proc, NumRef: len(ind), Phases: make([]PhaseProgram, nph)}

	// Step 1: count iterations per phase so slices can be sized exactly,
	// validating indirection values along the way.
	counts := make([]int, nph)
	var badRef, badIter int = -1, -1
	cfg.Iters(proc, func(i int) {
		for r := range ind {
			if e := ind[r][i]; int(e) < 0 || int(e) >= cfg.NumElems {
				if badRef < 0 {
					badRef, badIter = r, i
				}
				return
			}
		}
		counts[s.phaseOfIter(ind, i)]++
	})
	if badRef >= 0 {
		return nil, fmt.Errorf("inspector: indirection %d value %d at iteration %d out of range [0,%d)",
			badRef, ind[badRef][badIter], badIter, cfg.NumElems)
	}
	for ph := range s.Phases {
		p := &s.Phases[ph]
		p.Iters = make([]int32, 0, counts[ph])
		p.Ind = make([][]int32, len(ind))
		for r := range p.Ind {
			p.Ind[r] = make([]int32, 0, counts[ph])
		}
	}

	// Steps 2 and 3: place iterations, allocate buffer slots for deferred
	// references, and emit copy-loop pairs. bufOf maps a deferred element to
	// its buffer slot so all references to it share one slot.
	bufOf := make(map[int32]int32)
	cfg.Iters(proc, func(i int) {
		ph := s.phaseOfIter(ind, i)
		p := &s.Phases[ph]
		p.Iters = append(p.Iters, int32(i))
		for r := range ind {
			e := ind[r][i]
			rph := cfg.PhaseOf(proc, int(e))
			if rph == ph {
				p.Ind[r] = append(p.Ind[r], e)
				continue
			}
			slot, ok := bufOf[e]
			if !ok {
				slot = int32(cfg.NumElems + s.BufLen)
				s.BufLen++
				bufOf[e] = slot
				fp := &s.Phases[rph]
				fp.Copies = append(fp.Copies, CopyPair{Elem: e, Buf: slot})
			}
			p.Ind[r] = append(p.Ind[r], slot)
		}
	})
	return s, nil
}

// phaseOfIter implements step 1: the earliest phase among the iteration's
// reduction references.
func (s *Schedule) phaseOfIter(ind [][]int32, i int) int {
	best := s.Cfg.NumPhases()
	for r := range ind {
		if ph := s.Cfg.PhaseOf(s.Proc, int(ind[r][i])); ph < best {
			best = ph
		}
	}
	return best
}

// LocalLen reports the length of this processor's local image of the
// reduction array: the full element range plus the remote buffer.
func (s *Schedule) LocalLen() int { return s.Cfg.NumElems + s.BufLen }

// NumIters reports the total iterations across all phases.
func (s *Schedule) NumIters() int {
	n := 0
	for i := range s.Phases {
		n += len(s.Phases[i].Iters)
	}
	return n
}

// NumCopies reports the total copy-loop iterations across all phases.
func (s *Schedule) NumCopies() int {
	n := 0
	for i := range s.Phases {
		n += len(s.Phases[i].Copies)
	}
	return n
}

// MaxPhaseIters reports the largest per-phase iteration count — the load-
// imbalance driver the paper discusses for block distributions.
func (s *Schedule) MaxPhaseIters() int {
	m := 0
	for i := range s.Phases {
		if n := len(s.Phases[i].Iters); n > m {
			m = n
		}
	}
	return m
}

// Check verifies the schedule's internal invariants; it is used by tests
// and available to callers after adaptive rebuilds. It confirms that
//   - every local iteration appears in exactly one phase,
//   - every rewritten index is either owned during its phase or a valid
//     buffer slot,
//   - every referenced buffer slot is copied exactly once (slots freed by
//     incremental updates are unreferenced and never copied),
//   - copy targets are owned during their copy phase.
func (s *Schedule) Check(ind ...[]int32) error {
	cfg := s.Cfg
	seen := make(map[int32]bool, s.NumIters())
	bufCopied := make([]int, s.BufLen)
	bufRefs := make([]int, s.BufLen)
	bufElem := make([]int32, s.BufLen)
	for i := range bufElem {
		bufElem[i] = -1
	}

	for ph := range s.Phases {
		p := &s.Phases[ph]
		for r := range p.Ind {
			if len(p.Ind[r]) != len(p.Iters) {
				return fmt.Errorf("phase %d: ref %d has %d entries for %d iters", ph, r, len(p.Ind[r]), len(p.Iters))
			}
		}
		for j, it := range p.Iters {
			if seen[it] {
				return fmt.Errorf("iteration %d scheduled twice", it)
			}
			seen[it] = true
			if cfg.OwnerOfIter(int(it)) != s.Proc {
				return fmt.Errorf("iteration %d not owned by proc %d", it, s.Proc)
			}
			for r := range p.Ind {
				x := p.Ind[r][j]
				switch {
				case int(x) < cfg.NumElems:
					if cfg.PhaseOf(s.Proc, int(x)) != ph {
						return fmt.Errorf("phase %d iter %d ref %d: element %d not owned", ph, it, r, x)
					}
					if len(ind) > r && ind[r][it] != x {
						return fmt.Errorf("phase %d iter %d ref %d: owned element %d != original %d", ph, it, r, x, ind[r][it])
					}
				case int(x) < s.LocalLen():
					b := int(x) - cfg.NumElems
					bufRefs[b]++
					if len(ind) > r {
						if bufElem[b] >= 0 && bufElem[b] != ind[r][it] {
							return fmt.Errorf("buffer slot %d shared by elements %d and %d", b, bufElem[b], ind[r][it])
						}
						bufElem[b] = ind[r][it]
					}
				default:
					return fmt.Errorf("phase %d iter %d ref %d: index %d out of local image", ph, it, r, x)
				}
			}
		}
		for _, cp := range p.Copies {
			if cfg.PhaseOf(s.Proc, int(cp.Elem)) != ph {
				return fmt.Errorf("phase %d: copy target %d not owned", ph, cp.Elem)
			}
			b := int(cp.Buf) - cfg.NumElems
			if b < 0 || b >= s.BufLen {
				return fmt.Errorf("phase %d: copy source %d out of buffer", ph, cp.Buf)
			}
			bufCopied[b]++
			if bufElem[b] >= 0 && bufElem[b] != cp.Elem {
				return fmt.Errorf("buffer slot %d copies to %d but buffers %d", b, cp.Elem, bufElem[b])
			}
		}
	}
	if got, want := len(seen), cfg.IterCount(s.Proc); got != want {
		return fmt.Errorf("scheduled %d iterations, processor owns %d", got, want)
	}
	for b, n := range bufCopied {
		// Referenced slots are copied exactly once per sweep; slots freed
		// by incremental updates are unreferenced and never copied.
		want := 0
		if bufRefs[b] > 0 {
			want = 1
		}
		if n != want {
			return fmt.Errorf("buffer slot %d copied %d times (refs %d)", b, n, bufRefs[b])
		}
	}
	return nil
}

// PhaseHistogram reports the per-phase iteration counts — the quantity the
// paper "carefully analyzed" to diagnose block-distribution imbalance.
func (s *Schedule) PhaseHistogram() []int {
	out := make([]int, len(s.Phases))
	for i := range s.Phases {
		out[i] = len(s.Phases[i].Iters)
	}
	return out
}

// Imbalance reports max/mean of the phase histogram (1.0 = perfectly
// balanced; large values mean a few phases carry most of the work).
func (s *Schedule) Imbalance() float64 {
	n := s.NumIters()
	if n == 0 || len(s.Phases) == 0 {
		return 1
	}
	mean := float64(n) / float64(len(s.Phases))
	return float64(s.MaxPhaseIters()) / mean
}
