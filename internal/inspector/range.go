package inspector

// ContentRange reports the minimum and maximum value across the given
// indirection columns in one pass; ok is false when every column is empty.
// It is the shared runtime scan behind the proof layer's content intervals
// (dataflow.ScanInt32) and is usable on its own to pre-validate
// deserialized indirection data before building schedules: contents inside
// [0, NumElems) are exactly what Light requires of every owned iteration.
func ContentRange(cols ...[]int32) (lo, hi int32, ok bool) {
	for _, col := range cols {
		for _, v := range col {
			if !ok {
				lo, hi, ok = v, v, true
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	return lo, hi, ok
}
