package inspector

import "testing"

func TestContentRange(t *testing.T) {
	if _, _, ok := ContentRange(nil, []int32{}); ok {
		t.Fatal("empty columns have no range")
	}
	lo, hi, ok := ContentRange([]int32{5, -2, 9}, []int32{}, []int32{7})
	if !ok || lo != -2 || hi != 9 {
		t.Fatalf("got [%d, %d] ok=%v, want [-2, 9] true", lo, hi, ok)
	}
	lo, hi, ok = ContentRange([]int32{3})
	if !ok || lo != 3 || hi != 3 {
		t.Fatalf("singleton: got [%d, %d] ok=%v", lo, hi, ok)
	}
}
