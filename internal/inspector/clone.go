package inspector

// Clone returns a deep copy of the schedule, safe to mutate with Update
// while the original keeps serving other runs. The service's schedule
// cache hands out shared *Schedule pointers and treats entries as
// immutable after insertion; a session that wants to revise a schedule
// incrementally must therefore clone it first and never put the mutated
// copy back. The incremental-update index (BeginIncremental state) is not
// copied — the clone rebuilds it lazily on its first Update.
func (s *Schedule) Clone() *Schedule {
	out := &Schedule{
		Cfg:    s.Cfg,
		Proc:   s.Proc,
		NumRef: s.NumRef,
		BufLen: s.BufLen,
		Phases: make([]PhaseProgram, len(s.Phases)),
	}
	for ph := range s.Phases {
		p := &s.Phases[ph]
		q := &out.Phases[ph]
		q.Iters = append([]int32(nil), p.Iters...)
		q.Ind = make([][]int32, len(p.Ind))
		for r := range p.Ind {
			q.Ind[r] = append([]int32(nil), p.Ind[r]...)
		}
		q.Copies = append([]CopyPair(nil), p.Copies...)
	}
	return out
}

// CloneSchedules deep-copies a schedule set (one schedule per processor),
// the unit the cache stores and a session revises.
func CloneSchedules(scheds []*Schedule) []*Schedule {
	out := make([]*Schedule, len(scheds))
	for i, s := range scheds {
		out[i] = s.Clone()
	}
	return out
}
