package inspector

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// ScheduleKey returns a stable content hash identifying the LightInspector
// output for a loop: the configuration (P, K, NumIters, NumElems, Dist)
// plus the full contents of the indirection arrays. Light is deterministic,
// so two loops with equal keys have identical schedule sets for every
// processor — the key is safe to use as a cache or persistence identifier.
//
// Note the asymmetry the paper exploits: the communication schedule (what
// moves, when, how much) depends only on (P, K, NumElems), but the phase
// programs do depend on indirection contents — hence the content hash. The
// values flowing through the reduction never enter the key, so one cached
// schedule set serves any data run through the same indirection arrays.
func ScheduleKey(cfg Config, ind ...[]int32) string {
	h := sha256.New()
	var hdr [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(hdr[:], v)
		h.Write(hdr[:])
	}
	put(uint64(cfg.P))
	put(uint64(cfg.K))
	put(uint64(cfg.NumIters))
	put(uint64(cfg.NumElems))
	put(uint64(cfg.Dist))
	put(uint64(len(ind)))
	// Hash array contents in batches to keep the pass cheap on the
	// multi-million-entry class B arrays.
	buf := make([]byte, 0, 4096)
	for _, a := range ind {
		put(uint64(len(a)))
		for len(a) > 0 {
			n := min(len(a), 1024)
			buf = buf[:0]
			for _, v := range a[:n] {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
			}
			h.Write(buf)
			a = a[n:]
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
