package inspector

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// emulateClassic executes the classic owner-computes executor: local
// compute into owned elements and ghost accumulators, then scatter-reduce.
func emulateClassic(cfg Config, cs *ClassicSchedule, contrib func(i, r int) float64) []float64 {
	x := make([]float64, cfg.NumElems)
	for _, cp := range cs.Procs {
		ghostAcc := make([]float64, len(cp.Ghosts))
		for j, it := range cp.Iters {
			for r := range cp.Ind {
				v := contrib(int(it), r)
				if tgt := int(cp.Ind[r][j]); tgt < cfg.NumElems {
					x[tgt] += v
				} else {
					ghostAcc[tgt-cfg.NumElems] += v
				}
			}
		}
		// Scatter-reduce ghosts to their owners.
		for _, slots := range cp.SendTo {
			for _, g := range slots {
				x[cp.Ghosts[g]] += ghostAcc[g]
			}
		}
	}
	return x
}

func TestClassicMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, p := range []int{1, 2, 4, 7} {
		for _, d := range []Dist{Block, Cyclic} {
			cfg := Config{P: p, K: 1, NumIters: 200, NumElems: 53, Dist: d}
			ind := randInd(rng, cfg.NumIters, cfg.NumElems, 2)
			cs, err := ClassicInspect(cfg, ind...)
			if err != nil {
				t.Fatal(err)
			}
			if err := cs.Check(ind...); err != nil {
				t.Fatal(err)
			}
			contrib := func(i, r int) float64 { return float64(i)*1.5 + float64(r) }
			got := emulateClassic(cfg, cs, contrib)
			want := sequential(cfg, ind, contrib)
			if !almostEqual(got, want) {
				t.Fatalf("P=%d %v: classic executor diverged", p, d)
			}
		}
	}
}

func TestClassicGhostDedup(t *testing.T) {
	// Many references to the same remote element make one ghost.
	cfg := Config{P: 2, K: 1, NumIters: 10, NumElems: 10, Dist: Block}
	ind := make([]int32, 10)
	for i := range ind {
		ind[i] = 9 // owned by proc 1
	}
	cs, err := ClassicInspect(cfg, ind)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(cs.Procs[0].Ghosts); n != 1 {
		t.Fatalf("proc 0 ghosts = %d, want 1", n)
	}
	if n := len(cs.Procs[1].Ghosts); n != 0 {
		t.Fatalf("proc 1 ghosts = %d, want 0", n)
	}
	if cs.GhostBytes(0) != 12 {
		t.Fatalf("GhostBytes = %d", cs.GhostBytes(0))
	}
}

func TestClassicNoGhostsWhenLocal(t *testing.T) {
	// Iterations referencing only their own processor's block: no ghosts,
	// no inspector exchange traffic.
	cfg := Config{P: 2, K: 1, NumIters: 10, NumElems: 10, Dist: Block}
	ind := make([]int32, 10)
	for i := range ind {
		if i < 5 {
			ind[i] = int32(i) // proc 0 owns elements 0..4
		} else {
			ind[i] = int32(i) // proc 1 owns elements 5..9
		}
	}
	cs, err := ClassicInspect(cfg, ind)
	if err != nil {
		t.Fatal(err)
	}
	if cs.TotalGhosts() != 0 || cs.InspectorExchangedBytes != 0 {
		t.Fatalf("ghosts=%d bytes=%d, want 0", cs.TotalGhosts(), cs.InspectorExchangedBytes)
	}
}

func TestClassicElemPartition(t *testing.T) {
	cfg := Config{P: 3, K: 1, NumIters: 1, NumElems: 10}
	covered := make([]int, 10)
	for p := 0; p < 3; p++ {
		lo, hi := classicElemRange(cfg, p)
		for e := lo; e < hi; e++ {
			covered[e]++
			if classicOwnerOfElem(cfg, e) != p {
				t.Fatalf("owner(%d) != %d", e, p)
			}
		}
	}
	for e, n := range covered {
		if n != 1 {
			t.Fatalf("element %d covered %d times", e, n)
		}
	}
}

func TestClassicErrors(t *testing.T) {
	if _, err := ClassicInspect(Config{P: 0, K: 1, NumIters: 1, NumElems: 1}, []int32{0}); err == nil {
		t.Error("bad P accepted")
	}
	if _, err := ClassicInspect(Config{P: 1, K: 1, NumIters: 1, NumElems: 1}); err == nil {
		t.Error("missing indirection accepted")
	}
	if _, err := ClassicInspect(Config{P: 1, K: 1, NumIters: 2, NumElems: 1}, []int32{0}); err == nil {
		t.Error("short indirection accepted")
	}
	if _, err := ClassicInspect(Config{P: 1, K: 1, NumIters: 1, NumElems: 1}, []int32{5}); err == nil {
		t.Error("out-of-range indirection accepted")
	}
}

// Property: classic executor equivalence for random shapes.
func TestClassicEquivalenceProperty(t *testing.T) {
	prop := func(seed int64, pRaw, nRaw, eRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{P: 1 + int(pRaw)%6, K: 1, NumIters: int(nRaw), NumElems: 1 + int(eRaw)}
		ind := randInd(rng, cfg.NumIters, cfg.NumElems, 2)
		cs, err := ClassicInspect(cfg, ind...)
		if err != nil || cs.Check(ind...) != nil {
			return false
		}
		contrib := func(i, r int) float64 { return float64(i + r + 1) }
		return almostEqual(emulateClassic(cfg, cs, contrib), sequential(cfg, ind, contrib))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// The headline comparison: the LightInspector needs no communication while
// the classic inspector's exchange grows with the ghost count.
func TestLightInspectorNeedsNoExchange(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := Config{P: 8, K: 2, NumIters: 5000, NumElems: 1000, Dist: Cyclic}
	ind := randInd(rng, cfg.NumIters, cfg.NumElems, 2)
	cs, err := ClassicInspect(cfg, ind...)
	if err != nil {
		t.Fatal(err)
	}
	if cs.InspectorExchangedBytes == 0 {
		t.Fatal("expected the classic inspector to need communication on a random workload")
	}
	// Light runs per-processor with no cross-processor inputs at all: the
	// API takes only this processor's id — nothing to exchange.
	for p := 0; p < cfg.P; p++ {
		if _, err := Light(cfg, p, ind...); err != nil {
			t.Fatal(err)
		}
	}
}
