package inspector

import (
	"fmt"
	"sort"
)

// Classic implements the conventional inspector/executor paradigm of Saltz
// et al. — the paper's point of comparison. Reduction elements live with a
// fixed block owner; each processor's inspector scans its iterations,
// discovers off-processor references (ghosts), and builds a communication
// schedule saying which elements travel between which processor pairs.
//
// Unlike the LightInspector, building the schedule inherently requires
// interprocessor communication (the request lists must be exchanged), and
// the volume of the per-timestep gather/scatter depends on the contents of
// the indirection arrays. Both costs are surfaced so the simulator can
// charge them — including re-inspection on every mutation in the adaptive
// ablation.

// GhostRef rewrites one off-processor reference: iteration local index j,
// reference r, ghost slot g.
type ghostKey struct {
	elem int32
}

// ClassicProc is the executor program for one processor.
type ClassicProc struct {
	Proc int
	// ElemLo, ElemHi is the owned block of reduction elements.
	ElemLo, ElemHi int
	// Iters are the global iteration numbers this processor executes.
	Iters []int32
	// Ind holds rewritten indirection values per reference: owned elements
	// keep global numbering; ghosts are numbered NumElems+g where g indexes
	// Ghosts.
	Ind [][]int32
	// Ghosts lists the global element of each ghost slot, grouped by owner
	// (ascending owner, then ascending element).
	Ghosts []int32
	// SendTo[q] lists ghost slots whose accumulated values are sent to
	// processor q in the scatter-reduce (and whose fresh values are
	// received from q in a gather). SendTo[Proc] is empty.
	SendTo [][]int32
}

// ClassicSchedule is the inspector/executor program for all processors.
type ClassicSchedule struct {
	Cfg   Config
	Procs []*ClassicProc
	// InspectorExchangedBytes is the total wire traffic needed to build the
	// schedule (request-list exchange), charged to the inspector itself.
	InspectorExchangedBytes int
}

// ElemRange reports the block of elements owned by processor p under the
// classic owner-computes partition.
func classicElemRange(cfg Config, p int) (lo, hi int) {
	base := cfg.NumElems / cfg.P
	rem := cfg.NumElems % cfg.P
	lo = p*base + min(p, rem)
	hi = lo + base
	if p < rem {
		hi++
	}
	return lo, hi
}

func classicOwnerOfElem(cfg Config, e int) int {
	base := cfg.NumElems / cfg.P
	rem := cfg.NumElems % cfg.P
	cut := rem * (base + 1)
	if e < cut {
		return e / (base + 1)
	}
	if base == 0 {
		return cfg.P - 1
	}
	return rem + (e-cut)/base
}

// ClassicInspect builds the full inspector/executor schedule. ind has one
// indirection array per reduction reference, each of length cfg.NumIters
// with values in [0, cfg.NumElems).
func ClassicInspect(cfg Config, ind ...[]int32) (*ClassicSchedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(ind) == 0 {
		return nil, fmt.Errorf("inspector: need at least one indirection array")
	}
	for r, a := range ind {
		if len(a) != cfg.NumIters {
			return nil, fmt.Errorf("inspector: indirection array %d has %d entries, want %d", r, len(a), cfg.NumIters)
		}
		for i, e := range a {
			if int(e) < 0 || int(e) >= cfg.NumElems {
				return nil, fmt.Errorf("inspector: indirection %d value %d at iteration %d out of range", r, e, i)
			}
		}
	}

	cs := &ClassicSchedule{Cfg: cfg, Procs: make([]*ClassicProc, cfg.P)}
	for p := 0; p < cfg.P; p++ {
		lo, hi := classicElemRange(cfg, p)
		cp := &ClassicProc{Proc: p, ElemLo: lo, ElemHi: hi, SendTo: make([][]int32, cfg.P)}

		// Collect local iterations and discover ghosts.
		ghostSlot := map[ghostKey]int32{}
		cfg.Iters(p, func(i int) { cp.Iters = append(cp.Iters, int32(i)) })
		cp.Ind = make([][]int32, len(ind))
		for r := range ind {
			cp.Ind[r] = make([]int32, len(cp.Iters))
		}
		// First pass: find the distinct off-processor elements, then order
		// them by (owner, element) for deterministic schedules.
		var distinct []int32
		for _, it := range cp.Iters {
			for r := range ind {
				e := ind[r][it]
				if int(e) >= lo && int(e) < hi {
					continue
				}
				k := ghostKey{e}
				if _, ok := ghostSlot[k]; !ok {
					ghostSlot[k] = -1
					distinct = append(distinct, e)
				}
			}
		}
		sort.Slice(distinct, func(a, b int) bool {
			oa, ob := classicOwnerOfElem(cfg, int(distinct[a])), classicOwnerOfElem(cfg, int(distinct[b]))
			if oa != ob {
				return oa < ob
			}
			return distinct[a] < distinct[b]
		})
		cp.Ghosts = distinct
		for g, e := range distinct {
			ghostSlot[ghostKey{e}] = int32(g)
			q := classicOwnerOfElem(cfg, int(e))
			cp.SendTo[q] = append(cp.SendTo[q], int32(g))
		}
		// Second pass: rewrite references.
		for j, it := range cp.Iters {
			for r := range ind {
				e := ind[r][it]
				if int(e) >= lo && int(e) < hi {
					cp.Ind[r][j] = e
				} else {
					cp.Ind[r][j] = int32(cfg.NumElems) + ghostSlot[ghostKey{e}]
				}
			}
		}
		cs.Procs[p] = cp
		// Request-list exchange: each ghost's global index travels to its
		// owner (4 bytes), and the owner replies with a confirmation of the
		// same size — the classic two-phase schedule build.
		cs.InspectorExchangedBytes += 8 * len(distinct)
	}
	return cs, nil
}

// GhostBytes reports the per-timestep communication volume of processor p:
// the scatter-reduce of ghost accumulations (8 bytes each, plus 4 bytes of
// index so the owner knows where to add).
func (cs *ClassicSchedule) GhostBytes(p int) int {
	return 12 * len(cs.Procs[p].Ghosts)
}

// TotalGhosts reports the machine-wide ghost count.
func (cs *ClassicSchedule) TotalGhosts() int {
	n := 0
	for _, cp := range cs.Procs {
		n += len(cp.Ghosts)
	}
	return n
}

// Check validates executor-program invariants against the original
// indirection arrays.
func (cs *ClassicSchedule) Check(ind ...[]int32) error {
	cfg := cs.Cfg
	seen := make(map[int32]bool, cfg.NumIters)
	for _, cp := range cs.Procs {
		for j, it := range cp.Iters {
			if seen[it] {
				return fmt.Errorf("iteration %d scheduled twice", it)
			}
			seen[it] = true
			for r := range cp.Ind {
				x := cp.Ind[r][j]
				if int(x) < cfg.NumElems {
					if int(x) < cp.ElemLo || int(x) >= cp.ElemHi {
						return fmt.Errorf("proc %d: owned ref %d outside block", cp.Proc, x)
					}
					if len(ind) > r && ind[r][it] != x {
						return fmt.Errorf("proc %d: owned ref %d != original %d", cp.Proc, x, ind[r][it])
					}
					continue
				}
				g := int(x) - cfg.NumElems
				if g >= len(cp.Ghosts) {
					return fmt.Errorf("proc %d: ghost slot %d out of range", cp.Proc, g)
				}
				if len(ind) > r && cp.Ghosts[g] != ind[r][it] {
					return fmt.Errorf("proc %d: ghost slot %d holds %d, want %d", cp.Proc, g, cp.Ghosts[g], ind[r][it])
				}
			}
		}
		// Every ghost appears in exactly one send list, addressed to its owner.
		inList := make([]int, len(cp.Ghosts))
		for q, slots := range cp.SendTo {
			for _, g := range slots {
				inList[g]++
				if owner := classicOwnerOfElem(cfg, int(cp.Ghosts[g])); owner != q {
					return fmt.Errorf("proc %d: ghost %d sent to %d, owner %d", cp.Proc, g, q, owner)
				}
			}
		}
		for g, n := range inList {
			if n != 1 {
				return fmt.Errorf("proc %d: ghost %d in %d send lists", cp.Proc, g, n)
			}
		}
	}
	if len(seen) != cfg.NumIters {
		return fmt.Errorf("scheduled %d iterations, want %d", len(seen), cfg.NumIters)
	}
	return nil
}
