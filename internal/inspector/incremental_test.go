package inspector

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// mutateInd flips n random entries of the indirection arrays and returns
// the affected iteration list.
func mutateInd(rng *rand.Rand, ind [][]int32, nElems, n int) []int32 {
	changed := map[int32]bool{}
	for j := 0; j < n; j++ {
		r := rng.Intn(len(ind))
		i := rng.Intn(len(ind[r]))
		ind[r][i] = int32(rng.Intn(nElems))
		changed[int32(i)] = true
	}
	out := make([]int32, 0, len(changed))
	for i := range changed {
		out = append(out, i)
	}
	return out
}

// emulateScheds runs one sweep with prebuilt schedules (the incremental
// counterpart of emulate in light_test.go).
func emulateScheds(cfg Config, scheds []*Schedule, contrib func(i, r int) float64) []float64 {
	x := make([]float64, cfg.NumElems)
	bufs := make([][]float64, cfg.P)
	for p := range scheds {
		bufs[p] = make([]float64, scheds[p].BufLen)
	}
	for ph := 0; ph < cfg.NumPhases(); ph++ {
		for p := 0; p < cfg.P; p++ {
			s := scheds[p]
			prog := &s.Phases[ph]
			for _, cp := range prog.Copies {
				x[cp.Elem] += bufs[p][int(cp.Buf)-cfg.NumElems]
				bufs[p][int(cp.Buf)-cfg.NumElems] = 0
			}
			for j, it := range prog.Iters {
				for r := range prog.Ind {
					v := contrib(int(it), r)
					if tgt := int(prog.Ind[r][j]); tgt < cfg.NumElems {
						x[tgt] += v
					} else {
						bufs[p][tgt-cfg.NumElems] += v
					}
				}
			}
		}
	}
	return x
}

func TestIncrementalUpdateMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cfg := Config{P: 4, K: 2, NumIters: 500, NumElems: 97, Dist: Cyclic}
	ind := randInd(rng, cfg.NumIters, cfg.NumElems, 2)

	scheds := make([]*Schedule, cfg.P)
	for p := range scheds {
		s, err := Light(cfg, p, ind...)
		if err != nil {
			t.Fatal(err)
		}
		scheds[p] = s
	}

	contrib := func(i, r int) float64 { return float64(i+1) * float64(r+1) }
	for round := 0; round < 10; round++ {
		changed := mutateInd(rng, ind, cfg.NumElems, 25)
		for p := range scheds {
			if err := scheds[p].Update(changed, ind...); err != nil {
				t.Fatalf("round %d proc %d: %v", round, p, err)
			}
			if err := scheds[p].Check(ind...); err != nil {
				t.Fatalf("round %d proc %d: %v", round, p, err)
			}
		}
		got := emulateScheds(cfg, scheds, contrib)
		want := sequential(cfg, ind, contrib)
		if !almostEqual(got, want) {
			t.Fatalf("round %d: incremental schedule diverged from sequential", round)
		}
	}
}

func TestIncrementalSlotReuse(t *testing.T) {
	// Mutating the same iterations back and forth must not grow the buffer
	// without bound: freed slots are recycled.
	cfg := Config{P: 2, K: 2, NumIters: 40, NumElems: 16, Dist: Block}
	rng := rand.New(rand.NewSource(5))
	ind := randInd(rng, cfg.NumIters, cfg.NumElems, 2)
	s, err := Light(cfg, 0, ind...)
	if err != nil {
		t.Fatal(err)
	}
	maxBuf := s.BufLen + 4 // slack for transient element churn
	for round := 0; round < 200; round++ {
		changed := mutateInd(rng, ind, cfg.NumElems, 4)
		if err := s.Update(changed, ind...); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Check(ind...); err != nil {
		t.Fatal(err)
	}
	// The live element set stays bounded by the number of distinct
	// deferred elements (at most NumElems), so slots must be recycled
	// rather than always appended.
	if s.BufLen > cfg.NumElems && s.BufLen > maxBuf+cfg.NumElems {
		t.Fatalf("BufLen grew to %d after churn (started at %d)", s.BufLen, maxBuf-4)
	}
}

func TestIncrementalIgnoresForeignIterations(t *testing.T) {
	cfg := Config{P: 2, K: 1, NumIters: 20, NumElems: 8, Dist: Block}
	rng := rand.New(rand.NewSource(6))
	ind := randInd(rng, cfg.NumIters, cfg.NumElems, 2)
	s, err := Light(cfg, 0, ind...)
	if err != nil {
		t.Fatal(err)
	}
	before := s.NumIters()
	// Mutate only iterations owned by processor 1 (block: 10..19).
	ind[0][15] = 3
	if err := s.Update([]int32{15}, ind...); err != nil {
		t.Fatal(err)
	}
	if s.NumIters() != before {
		t.Fatal("foreign iteration changed this processor's schedule")
	}
	if err := s.Check(ind...); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalErrors(t *testing.T) {
	cfg := Config{P: 1, K: 1, NumIters: 4, NumElems: 4}
	ind := [][]int32{{0, 1, 2, 3}}
	s, err := Light(cfg, 0, ind...)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Update([]int32{0}, ind[0], ind[0]); err == nil {
		t.Error("wrong reference count accepted")
	}
	if err := s.Update([]int32{99}, ind[0]); err == nil {
		t.Error("out-of-range iteration accepted")
	}
	bad := []int32{0, 1, 2, 9}
	if err := s.Update([]int32{3}, bad); err == nil {
		t.Error("out-of-range element accepted")
	}
	if err := s.Update([]int32{1}, []int32{0, 1, 2}); err == nil {
		t.Error("short indirection accepted")
	}
}

// Property: any mutation sequence keeps Update-maintained schedules
// equivalent to freshly built ones.
func TestIncrementalEquivalenceProperty(t *testing.T) {
	prop := func(seed int64, pRaw, kRaw, mutRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			P: 1 + int(pRaw)%5, K: 1 + int(kRaw)%3,
			NumIters: 120, NumElems: 31, Dist: Cyclic,
		}
		ind := randInd(rng, cfg.NumIters, cfg.NumElems, 2)
		scheds := make([]*Schedule, cfg.P)
		for p := range scheds {
			s, err := Light(cfg, p, ind...)
			if err != nil {
				return false
			}
			scheds[p] = s
		}
		changed := mutateInd(rng, ind, cfg.NumElems, 1+int(mutRaw)%30)
		for p := range scheds {
			if err := scheds[p].Update(changed, ind...); err != nil {
				return false
			}
			if err := scheds[p].Check(ind...); err != nil {
				return false
			}
		}
		contrib := func(i, r int) float64 { return float64(i + r*1000) }
		return almostEqual(emulateScheds(cfg, scheds, contrib), sequential(cfg, ind, contrib))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
