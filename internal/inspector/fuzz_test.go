package inspector

import (
	"bytes"
	"math/rand"
	"testing"
)

// fuzzScheduleBytes serializes a real LightInspector schedule, giving the
// fuzzer structurally valid seeds to mutate.
func fuzzScheduleBytes(seed int64, p, k, iters, elems int) []byte {
	rng := rand.New(rand.NewSource(seed))
	ind := make([][]int32, 2)
	for r := range ind {
		ind[r] = make([]int32, iters)
		for i := range ind[r] {
			ind[r][i] = int32(rng.Intn(elems))
		}
	}
	cfg := Config{P: p, K: k, NumIters: iters, NumElems: elems, Dist: Cyclic}
	s, err := Light(cfg, 0, ind...)
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzSerializeRoundTrip hammers the schedule codec with arbitrary bytes.
// Properties:
//
//  1. ReadSchedule never panics and never allocates proportionally to
//     claimed (attacker-controlled) counts — only to bytes actually
//     present in the stream.
//  2. Anything ReadSchedule accepts passes the Check() invariants (the
//     reader enforces this itself; the fuzz target re-checks).
//  3. Accepted schedules survive a write/reread round trip into identical
//     canonical bytes — the format has one encoding per schedule.
func FuzzSerializeRoundTrip(f *testing.F) {
	f.Add(fuzzScheduleBytes(1, 2, 2, 300, 64))
	f.Add(fuzzScheduleBytes(2, 1, 1, 50, 8))
	f.Add(fuzzScheduleBytes(3, 4, 2, 800, 128))
	f.Add([]byte("IRSC"))
	f.Add([]byte("IRSC\x01"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadSchedule(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := s.Check(); err != nil {
			t.Fatalf("accepted schedule fails Check: %v", err)
		}
		var out bytes.Buffer
		if _, err := s.WriteTo(&out); err != nil {
			t.Fatalf("rewriting accepted schedule: %v", err)
		}
		s2, err := ReadSchedule(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("rereading rewritten schedule: %v", err)
		}
		var out2 bytes.Buffer
		if _, err := s2.WriteTo(&out2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatal("canonical encoding not stable across a round trip")
		}
	})
}
