package sim

// Server is a single-occupancy resource with FIFO queueing: at most one job
// is in service at a time and waiting jobs are served in submission order.
// It models serially-occupied hardware such as an execution unit, a
// synchronization unit, or a network interface.
type Server struct {
	eng  *Engine
	busy bool
	wait []serverJob

	// Busy accumulates the total cycles the server spent in service,
	// for utilization reporting.
	Busy Time
}

type serverJob struct {
	cost Time
	done func()
}

// NewServer returns an idle server attached to eng.
func NewServer(eng *Engine) *Server {
	return &Server{eng: eng}
}

// Submit enqueues a job occupying the server for cost cycles; done (which
// may be nil) runs when the job completes.
func (s *Server) Submit(cost Time, done func()) {
	if cost < 0 {
		panic("sim: negative job cost")
	}
	if s.busy {
		s.wait = append(s.wait, serverJob{cost, done})
		return
	}
	s.start(serverJob{cost, done})
}

func (s *Server) start(j serverJob) {
	s.busy = true
	s.Busy += j.cost
	s.eng.Schedule(j.cost, func() {
		s.busy = false
		if j.done != nil {
			j.done()
		}
		if len(s.wait) > 0 && !s.busy {
			next := s.wait[0]
			s.wait = s.wait[1:]
			s.start(next)
		}
	})
}

// Idle reports whether the server has no job in service.
func (s *Server) Idle() bool { return !s.busy }

// QueueLen reports the number of jobs waiting (excluding any in service).
func (s *Server) QueueLen() int { return len(s.wait) }
