package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	if end := e.Run(); end != 30 {
		t.Fatalf("final time = %d, want 30", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestTieBreakBySubmissionOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie order = %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(10, func() {
		e.Schedule(5, func() { at = e.Now() })
	})
	e.Run()
	if at != 15 {
		t.Fatalf("nested event fired at %d, want 15", at)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Events() != 0 {
		t.Fatalf("events run = %d, want 0", e.Events())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, d := range []Time{5, 10, 15, 20} {
		d := d
		e.Schedule(d, func() { got = append(got, d) })
	}
	e.RunUntil(12)
	if len(got) != 2 || got[0] != 5 || got[1] != 10 {
		t.Fatalf("got %v, want [5 10]", got)
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	e.Run()
	if len(got) != 4 {
		t.Fatalf("after Run got %v", got)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative delay")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func TestScheduleAtPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic for past ScheduleAt")
			}
		}()
		e.ScheduleAt(5, func() {})
	})
	e.Run()
}

// Property: for any set of non-negative delays, events fire in
// non-decreasing time order and the final clock equals the max delay.
func TestEventOrderProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := NewEngine()
		var fired []Time
		var maxd Time
		for _, d := range delays {
			d := Time(d)
			if d > maxd {
				maxd = d
			}
			e.Schedule(d, func() { fired = append(fired, e.Now()) })
		}
		end := e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		if len(delays) == 0 {
			return end == 0
		}
		return end == maxd
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestServerFIFO(t *testing.T) {
	e := NewEngine()
	s := NewServer(e)
	var order []int
	var times []Time
	for i := 0; i < 3; i++ {
		i := i
		s.Submit(10, func() {
			order = append(order, i)
			times = append(times, e.Now())
		})
	}
	e.Run()
	for i, want := range []Time{10, 20, 30} {
		if order[i] != i || times[i] != want {
			t.Fatalf("order=%v times=%v", order, times)
		}
	}
	if s.Busy != 30 {
		t.Fatalf("busy = %d, want 30", s.Busy)
	}
}

func TestServerInterleavedSubmission(t *testing.T) {
	e := NewEngine()
	s := NewServer(e)
	var done []Time
	e.Schedule(0, func() { s.Submit(10, func() { done = append(done, e.Now()) }) })
	// Arrives while the first job is in service.
	e.Schedule(5, func() { s.Submit(10, func() { done = append(done, e.Now()) }) })
	// Arrives while the server is idle again.
	e.Schedule(25, func() { s.Submit(10, func() { done = append(done, e.Now()) }) })
	e.Run()
	want := []Time{10, 20, 35}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("done=%v want=%v", done, want)
		}
	}
}

// Property: a single-server queue finishes all n jobs at exactly the sum of
// their costs when they are all submitted at time zero.
func TestServerMakespanProperty(t *testing.T) {
	prop := func(costs []uint8) bool {
		e := NewEngine()
		s := NewServer(e)
		var sum Time
		for _, c := range costs {
			sum += Time(c)
			s.Submit(Time(c), nil)
		}
		return e.Run() == sum
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleAtAbsolute(t *testing.T) {
	e := NewEngine()
	var got []Time
	e.Schedule(10, func() {
		e.ScheduleAt(25, func() { got = append(got, e.Now()) })
		e.ScheduleAt(10, func() { got = append(got, e.Now()) }) // same instant
	})
	e.Run()
	if len(got) != 2 || got[0] != 10 || got[1] != 25 {
		t.Fatalf("got %v, want [10 25]", got)
	}
}

func TestCancelInsideEvent(t *testing.T) {
	e := NewEngine()
	var ev *Event
	fired := false
	e.Schedule(5, func() { ev.Cancel() })
	ev = e.Schedule(10, func() { fired = true })
	e.Run()
	if fired {
		t.Fatal("event cancelled mid-run still fired")
	}
}

func TestServerIdleAndQueueLen(t *testing.T) {
	e := NewEngine()
	s := NewServer(e)
	if !s.Idle() {
		t.Fatal("fresh server busy")
	}
	s.Submit(10, nil)
	s.Submit(10, nil)
	if s.Idle() || s.QueueLen() != 1 {
		t.Fatalf("idle=%v queue=%d", s.Idle(), s.QueueLen())
	}
	e.Run()
	if !s.Idle() || s.QueueLen() != 0 {
		t.Fatal("server not drained")
	}
}
