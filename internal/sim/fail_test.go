package sim

import (
	"errors"
	"testing"
)

func TestEngineFailStopsRun(t *testing.T) {
	e := NewEngine()
	boom := errors.New("invariant broken")
	var after int
	e.Schedule(1, func() {})
	e.Schedule(2, func() { e.Fail(boom) })
	e.Schedule(3, func() { after++ })
	e.Run()
	if after != 0 {
		t.Fatal("event ran after the engine failed")
	}
	if e.Err() != boom {
		t.Fatalf("Err() = %v, want %v", e.Err(), boom)
	}
	if e.Now() != 2 {
		t.Fatalf("clock at %d, want 2", e.Now())
	}
	// The first failure wins.
	e.Fail(errors.New("second"))
	if e.Err() != boom {
		t.Fatal("second Fail overwrote the first")
	}
}

func TestEngineFailStopsRunUntil(t *testing.T) {
	e := NewEngine()
	boom := errors.New("stop")
	e.Schedule(1, func() { e.Fail(boom) })
	e.Schedule(2, func() { t.Fatal("event ran after failure") })
	e.RunUntil(10)
	if e.Err() != boom {
		t.Fatalf("Err() = %v", e.Err())
	}
	if e.Pending() == 0 {
		t.Fatal("failed engine should leave later events queued")
	}
}
