// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock measured in machine cycles and executes
// scheduled events in (time, insertion-order) order, so a given event program
// always produces the same trace. It is the substrate under the EARTH
// abstract machine in package earth: execution units, synchronization units,
// and the interconnection network are all expressed as events and resources
// on one Engine.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point on the virtual clock, in cycles.
type Time int64

// Infinity is a time later than any event the engine will ever run.
const Infinity Time = math.MaxInt64

// Event is a scheduled callback. Events are ordered by time; ties are broken
// by scheduling order so simulations are reproducible.
type Event struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool
	idx  int // heap index, -1 when not queued
}

// At reports the virtual time this event fires at.
func (e *Event) At() Time { return e.at }

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired (or was already cancelled) is a no-op.
func (e *Event) Cancel() { e.dead = true }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx, q[j].idx = i, j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.idx = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	queue  eventQueue
	nRun   uint64
	closed bool
	err    error
}

// NewEngine returns an engine with the clock at zero and an empty calendar.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Events reports how many events have been executed so far.
func (e *Engine) Events() uint64 { return e.nRun }

// Schedule arranges for fn to run after delay cycles. It panics if delay is
// negative: events cannot fire in the past.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt arranges for fn to run at absolute virtual time at, which must
// not be earlier than Now.
func (e *Engine) ScheduleAt(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", at, e.now))
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Fail aborts the simulation: once the engine has failed, Step (and so Run
// and RunUntil) executes no further events. The first failure wins; later
// calls are no-ops. Event callbacks use it to stop a run whose invariants
// are already known broken — the debug verify mode of the rts executors
// fails the engine on the first ownership violation instead of simulating
// millions of further cycles of a racy program.
func (e *Engine) Fail(err error) {
	if e.err == nil && err != nil {
		e.err = err
	}
}

// Err reports the failure recorded by Fail, or nil.
func (e *Engine) Err() error { return e.err }

// Step runs the single earliest pending event and reports whether one ran.
func (e *Engine) Step() bool {
	if e.err != nil {
		return false
	}
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.nRun++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the calendar is empty and returns the final
// virtual time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with firing time <= deadline. It returns the
// virtual time of the last executed event (or the starting time when no
// event fired). Events scheduled later than deadline remain queued.
func (e *Engine) RunUntil(deadline Time) Time {
	for len(e.queue) > 0 && e.err == nil {
		// Peek at the earliest live event.
		ev := e.queue[0]
		if ev.dead {
			heap.Pop(&e.queue)
			continue
		}
		if ev.at > deadline {
			break
		}
		e.Step()
	}
	return e.now
}

// Pending reports the number of events still queued (including cancelled
// events not yet discarded).
func (e *Engine) Pending() int { return len(e.queue) }
