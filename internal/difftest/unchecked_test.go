package difftest

import (
	"math"
	"math/rand"
	"testing"

	"irred/internal/codegen"
	"irred/internal/inspector"
	"irred/internal/interp"
	"irred/internal/kernels"
	"irred/internal/rts"
)

// bindMVM binds one mvmCase to a fresh environment for the compiled unit.
func bindMVM(t *testing.T, u *codegen.Unit, c mvmCase) *interp.Env {
	t.Helper()
	env := interp.NewEnv(u.Fissioned)
	env.SetParam("nnz", c.nnz)
	env.SetParam("n", c.n)
	if err := env.BindInt("row", c.row); err != nil {
		t.Fatal(err)
	}
	if err := env.BindInt("col", c.col); err != nil {
		t.Fatal(err)
	}
	if err := env.BindFloat("a", c.a); err != nil {
		t.Fatal(err)
	}
	if err := env.BindFloat("x", c.x); err != nil {
		t.Fatal(err)
	}
	if err := env.Alloc(); err != nil {
		t.Fatal(err)
	}
	return env
}

// buildAndRun compiles the MVM kernel over the case and runs it on the
// native engine, checked or proof-optimized, returning the rotated array
// and the plan (for RuntimeErr).
func buildAndRun(t *testing.T, c mvmCase, p, k, steps int, forceChecked bool) ([]float64, *codegen.Plan) {
	t.Helper()
	u, err := codegen.Compile(kernels.MVMIRL)
	if err != nil {
		t.Fatal(err)
	}
	env := bindMVM(t, u, c)
	plan := u.Plans[0]
	loop, contribs, err := plan.BuildLoopOpts(env, p, k, inspector.Cyclic, codegen.BuildOpts{ForceChecked: forceChecked})
	if err != nil {
		t.Fatal(err)
	}
	nat, err := rts.NewNative(loop)
	if err != nil {
		t.Fatal(err)
	}
	if forceChecked && !nat.CheckTargets {
		t.Fatal("ForceChecked build must keep native target checks")
	}
	nat.Contribs = contribs
	if err := nat.Run(steps); err != nil {
		t.Fatalf("native run: %v", err)
	}
	return nat.X, plan
}

// TestUncheckedBitIdentical is the proof-side differential oracle: on
// integral data, the proof-optimized build (no range checks, no native
// target validation) must agree BITWISE with the fully checked build for
// every strategy — eliding a check can never change a value.
func TestUncheckedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 4; trial++ {
		c := randMVM(rng, true)
		for _, pk := range [][2]int{{1, 1}, {2, 2}, {4, 2}} {
			p, k := pk[0], pk[1]
			checked, planC := buildAndRun(t, c, p, k, 2, true)
			unchecked, planU := buildAndRun(t, c, p, k, 2, false)
			if !planU.Facts.AllProven || !planU.Facts.IndProven {
				t.Fatalf("in-range MVM must prove completely:\n%s", planU.Facts.Report())
			}
			if err := planC.RuntimeErr(); err != nil {
				t.Fatalf("checked build faulted on valid data: %v", err)
			}
			if err := planU.RuntimeErr(); err != nil {
				t.Fatalf("unchecked build faulted: %v", err)
			}
			for e := range checked {
				if math.Float64bits(checked[e]) != math.Float64bits(unchecked[e]) {
					t.Fatalf("trial %d P=%d k=%d: y[%d] checked %v != unchecked %v",
						trial, p, k, e, checked[e], unchecked[e])
				}
			}
		}
	}
}

// TestOOBInputDegradesGracefully feeds deliberately out-of-range read
// indirection (col) through both builds: the proof must fail for the
// affected access, both builds must fall back to checked execution there,
// complete the run, agree bitwise, and surface the fault via RuntimeErr.
func TestOOBInputDegradesGracefully(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := randMVM(rng, true)
	c.col[7] = int32(c.n + 100) // x[col[i]] escapes; row stays valid

	checked, planC := buildAndRun(t, c, 4, 2, 1, true)
	unchecked, planU := buildAndRun(t, c, 4, 2, 1, false)
	if planU.Facts.AllProven {
		t.Fatal("out-of-range col must defeat the proof")
	}
	if !planU.Facts.IndProven {
		t.Fatal("row is still in range; the rotated-array claim holds")
	}
	if err := planC.RuntimeErr(); err == nil {
		t.Fatal("checked build must record the out-of-range access")
	}
	if err := planU.RuntimeErr(); err == nil {
		t.Fatal("fallback build must record the out-of-range access")
	}
	for e := range checked {
		if math.Float64bits(checked[e]) != math.Float64bits(unchecked[e]) {
			t.Fatalf("y[%d]: checked %v != fallback %v", e, checked[e], unchecked[e])
		}
	}
}
