// Package difftest holds the cross-engine differential tests: the same
// irregular reduction is pushed through every execution engine the repo
// has — the native goroutine engine, the discrete-event simulator with
// attached computation (SimExec), and the IRL interpreter — and the
// results are compared elementwise against a plain sequential loop.
//
// The package intentionally contains no non-test code: it exists because
// the engines live in packages that cannot all import each other
// (rts would cycle with codegen/interp), so the only place they can meet
// is a leaf test package that imports all of them.
package difftest
