package difftest

import (
	"fmt"
	"math/rand"
	"testing"

	"irred/internal/codegen"
	"irred/internal/inspector"
	"irred/internal/interp"
	"irred/internal/rts"
)

// The schedule-reuse differential property: executing the later loops of a
// multi-loop program against the first loop's inspector schedules (the
// reuse the dataflow prover licenses) must be observationally invisible —
// reuse-on and reuse-off agree bitwise for integral data, within
// reassociation tolerance for floats, on every engine and every ownership
// strategy. Schedules are content-determined (inspector.ScheduleKey), so
// any divergence here means an engine mutates schedules during a run or
// the sharing plumbing corrupted state.

// reuseCase is one raw multi-loop program: every loop sweeps the same two
// indirection arrays (the proven-invariant traversal), contributing
// per-loop weights. Loops chain through one reduction array per sweep.
type reuseCase struct {
	iters, n int
	ind      [][]int32
	w        [][][]float64 // [loop][ref][iter]
}

func randReuseCase(rng *rand.Rand, loops int, integral bool) reuseCase {
	c := reuseCase{
		iters: 300 + rng.Intn(900),
		n:     40 + rng.Intn(200),
	}
	c.ind = make([][]int32, 2)
	for r := range c.ind {
		c.ind[r] = make([]int32, c.iters)
		for i := range c.ind[r] {
			c.ind[r][i] = int32(rng.Intn(c.n))
		}
	}
	c.w = make([][][]float64, loops)
	for l := range c.w {
		c.w[l] = make([][]float64, 2)
		for r := range c.w[l] {
			c.w[l][r] = make([]float64, c.iters)
			for i := range c.w[l][r] {
				if integral {
					c.w[l][r][i] = float64(1 + rng.Intn(8))
				} else {
					c.w[l][r][i] = rng.NormFloat64()
				}
			}
		}
	}
	return c
}

func (c reuseCase) contrib(l int) rts.ContribFunc {
	w := c.w[l]
	return func(_, i int, out []float64) {
		out[0] = w[0][i]
		out[1] = w[1][i]
	}
}

func (c reuseCase) loop(p, k int, dist inspector.Dist) *rts.Loop {
	return &rts.Loop{
		Cfg: inspector.Config{
			P: p, K: k,
			NumIters: c.iters, NumElems: c.n,
			Dist: dist,
		},
		Mode: rts.Reduce,
		Ind:  c.ind,
	}
}

// sequential is the reference: loops in order, program order within each.
func (c reuseCase) sequential(steps int) []float64 {
	x := make([]float64, c.n)
	for s := 0; s < steps; s++ {
		for l := range c.w {
			for i := 0; i < c.iters; i++ {
				x[c.ind[0][i]] += c.w[l][0][i]
				x[c.ind[1][i]] += c.w[l][1][i]
			}
		}
	}
	return x
}

// schedules builds per-loop schedule sets: one shared set under reuse
// (inspected once), a fresh inspection per loop otherwise. It returns the
// sets and how many inspections were paid.
func (c reuseCase) schedules(p, k int, dist inspector.Dist, reuse bool) ([][]*inspector.Schedule, int, error) {
	sets := make([][]*inspector.Schedule, len(c.w))
	inspections := 0
	for l := range c.w {
		if reuse && l > 0 {
			sets[l] = sets[0]
			continue
		}
		s, err := c.loop(p, k, dist).Schedules()
		if err != nil {
			return nil, inspections, err
		}
		inspections++
		sets[l] = s
	}
	return sets, inspections, nil
}

// native runs the multi-loop program on the rotation engine: one Native
// per loop, all sharing one reduction array, loops in order per sweep.
func (c reuseCase) native(p, k int, dist inspector.Dist, steps int, reuse bool) ([]float64, int, error) {
	sets, inspections, err := c.schedules(p, k, dist, reuse)
	if err != nil {
		return nil, inspections, err
	}
	x := make([]float64, c.n)
	natives := make([]*rts.Native, len(c.w))
	for l := range c.w {
		nat, err := rts.NewNativeFrom(c.loop(p, k, dist), sets[l])
		if err != nil {
			return nil, inspections, err
		}
		nat.Contribs = c.contrib(l)
		nat.X = x
		natives[l] = nat
	}
	for s := 0; s < steps; s++ {
		for _, nat := range natives {
			if err := nat.Run(1); err != nil {
				return nil, inspections, err
			}
		}
	}
	return x, inspections, nil
}

// distributedML runs the multi-loop program on the message-passing engine,
// chaining the array between loops via Seed.
func (c reuseCase) distributedML(p, k int, dist inspector.Dist, steps int, reuse bool) ([]float64, int, error) {
	sets, inspections, err := c.schedules(p, k, dist, reuse)
	if err != nil {
		return nil, inspections, err
	}
	x := make([]float64, c.n)
	for s := 0; s < steps; s++ {
		for l := range c.w {
			d, err := rts.NewDistributedFrom(c.loop(p, k, dist), sets[l])
			if err != nil {
				return nil, inspections, err
			}
			d.Contribs = c.contrib(l)
			if err := d.Seed(x); err != nil {
				return nil, inspections, err
			}
			x, err = d.Run(1)
			if err != nil {
				return nil, inspections, err
			}
		}
	}
	return x, inspections, nil
}

// TestReuseOnOffAgreeAcrossEnginesAndStrategies is the raw-loop half of
// the oracle: native and distributed execution of a 3-loop program with
// schedule reuse on and off, over every ownership strategy, against the
// sequential reference. Integral cases demand bitwise equality;
// float cases tolerance. Reuse-on must pay exactly 1 inspection,
// reuse-off exactly one per loop.
func TestReuseOnOffAgreeAcrossEnginesAndStrategies(t *testing.T) {
	const loops, steps = 3, 2
	for ci, integral := range []bool{true, false} {
		rng := rand.New(rand.NewSource(int64(500 + ci)))
		c := randReuseCase(rng, loops, integral)
		want := c.sequential(steps)
		for _, st := range strategies {
			label := fmt.Sprintf("case %d (integral=%v) P=%d k=%d dist=%v", ci, integral, st.p, st.k, st.dist)
			for _, reuse := range []bool{true, false} {
				got, insp, err := c.native(st.p, st.k, st.dist, steps, reuse)
				if err != nil {
					t.Fatalf("%s native reuse=%v: %v", label, reuse, err)
				}
				if wantInsp := map[bool]int{true: 1, false: loops}[reuse]; insp != wantInsp {
					t.Fatalf("%s native reuse=%v paid %d inspections, want %d", label, reuse, insp, wantInsp)
				}
				compare(t, label+fmt.Sprintf(" native reuse=%v", reuse), got, want, integral)

				got, insp, err = c.distributedML(st.p, st.k, st.dist, steps, reuse)
				if err != nil {
					t.Fatalf("%s distributed reuse=%v: %v", label, reuse, err)
				}
				if wantInsp := map[bool]int{true: 1, false: loops}[reuse]; insp != wantInsp {
					t.Fatalf("%s distributed reuse=%v paid %d inspections, want %d", label, reuse, insp, wantInsp)
				}
				compare(t, label+fmt.Sprintf(" distributed reuse=%v", reuse), got, want, integral)
			}
		}
	}
}

// The compiled half: a CG-shaped two-loop IRL program whose reuse license
// the compiler proves, executed through every engine the plans support.
const cgDiffSrc = `
param ne, n
array row[ne] int
array y[ne]
array q[n]
array z[n]
loop i = 0, ne {
    q[row[i]] += y[i]
}
loop i = 0, ne {
    z[row[i]] += y[i] * 2
}
`

func cgDiffEnv(t *testing.T, u *codegen.Unit, ne, n int, seed int64) *interp.Env {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	env := interp.NewEnv(u.Fissioned)
	env.SetParam("ne", ne)
	env.SetParam("n", n)
	row := make([]int32, ne)
	y := make([]float64, ne)
	for i := range row {
		row[i] = int32(rng.Intn(n))
	}
	for i := range y {
		y[i] = float64(1 + rng.Intn(50)) // integral: every comparison bitwise
	}
	if err := env.BindInt("row", row); err != nil {
		t.Fatal(err)
	}
	if err := env.BindFloat("y", y); err != nil {
		t.Fatal(err)
	}
	if err := env.Alloc(); err != nil {
		t.Fatal(err)
	}
	return env
}

// distributedExec runs one irregular plan on the message-passing engine,
// seeding from and scattering back to the environment.
func distributedExec(procs, k int, dist inspector.Dist) func(p *codegen.Plan, env *interp.Env) error {
	return func(p *codegen.Plan, env *interp.Env) error {
		loop, contribs, err := p.BuildLoop(env, procs, k, dist)
		if err != nil {
			return err
		}
		d, err := rts.NewDistributed(loop)
		if err != nil {
			return err
		}
		d.Contribs = contribs
		seed := make([]float64, loop.Cfg.NumElems*len(p.ReductionArrays()))
		if err := p.Pack(env, seed); err != nil {
			return err
		}
		if err := d.Seed(seed); err != nil {
			return err
		}
		x, err := d.Run(1)
		if err != nil {
			return err
		}
		return p.Scatter(env, x)
	}
}

// TestCompiledReuseAgreesAcrossEngines runs the compiled CG program with
// the runner's licensed reuse on and off, and cross-checks both against
// the distributed and tree-fold executions of the same plans — bitwise,
// for every ownership strategy.
func TestCompiledReuseAgreesAcrossEngines(t *testing.T) {
	u, err := codegen.Compile(cgDiffSrc)
	if err != nil {
		t.Fatal(err)
	}
	const ne, n, steps, seed = 600, 71, 3, 33

	// The tree-fold and distributed references are strategy-independent
	// checks of the same program; compute the tree-fold one once.
	tfEnv := cgDiffEnv(t, u, ne, n, seed)
	for s := 0; s < steps; s++ {
		if err := runPlans(u, tfEnv, treeFoldExec(4)); err != nil {
			t.Fatal(err)
		}
	}

	for _, st := range strategies {
		label := fmt.Sprintf("P=%d k=%d dist=%v", st.p, st.k, st.dist)

		on, err := u.NewRunnerOpts(cgDiffEnv(t, u, ne, n, seed), st.p, st.k, st.dist, codegen.RunnerOpts{VerifyReuse: true})
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if on.Inspections() != 1 || on.Reuses() != 1 {
			t.Fatalf("%s: reuse-on inspections=%d reuses=%d, want 1/1", label, on.Inspections(), on.Reuses())
		}
		off, err := u.NewRunnerOpts(cgDiffEnv(t, u, ne, n, seed), st.p, st.k, st.dist, codegen.RunnerOpts{NoReuse: true})
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if off.Inspections() != 2 {
			t.Fatalf("%s: reuse-off inspections=%d, want 2", label, off.Inspections())
		}
		if err := on.Run(steps); err != nil {
			t.Fatalf("%s reuse-on: %v", label, err)
		}
		if err := off.Run(steps); err != nil {
			t.Fatalf("%s reuse-off: %v", label, err)
		}

		dEnv := cgDiffEnv(t, u, ne, n, seed)
		for s := 0; s < steps; s++ {
			if err := runPlans(u, dEnv, distributedExec(st.p, st.k, st.dist)); err != nil {
				t.Fatalf("%s distributed: %v", label, err)
			}
		}

		for _, a := range []string{"q", "z"} {
			ref := off.Env.Floats[a]
			compare(t, label+" reuse-on vs reuse-off "+a, on.Env.Floats[a], ref, true)
			compare(t, label+" distributed vs reuse-off "+a, dEnv.Floats[a], ref, true)
			compare(t, label+" tree-fold vs reuse-off "+a, tfEnv.Floats[a], ref, true)
		}
	}
}
