package difftest

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"irred/internal/inspector"
	"irred/internal/interp"
	"irred/internal/kernels"
	"irred/internal/lang"
	"irred/internal/rts"
)

// mvmCase is one randomly drawn sparse-MVM reduction instance:
// y[row[i]] += a[i] * x[col[i]] over nnz nonzeros and n elements.
type mvmCase struct {
	nnz, n   int
	row, col []int32
	a, x     []float64
}

// randMVM draws a case. Integral values (small ints for a and x) keep every
// product and every partial sum exactly representable in float64, so all
// accumulation orders — sequential, portion-rotated, DES-scheduled — must
// agree BITWISE, not just within a tolerance. That turns the comparison
// into an exact oracle.
func randMVM(rng *rand.Rand, integral bool) mvmCase {
	c := mvmCase{
		nnz: 200 + rng.Intn(1000),
		n:   40 + rng.Intn(260),
	}
	c.row = make([]int32, c.nnz)
	c.col = make([]int32, c.nnz)
	c.a = make([]float64, c.nnz)
	c.x = make([]float64, c.n)
	for i := 0; i < c.nnz; i++ {
		c.row[i] = int32(rng.Intn(c.n))
		c.col[i] = int32(rng.Intn(c.n))
		if integral {
			c.a[i] = float64(1 + rng.Intn(8))
		} else {
			c.a[i] = rng.NormFloat64()
		}
	}
	for e := 0; e < c.n; e++ {
		if integral {
			c.x[e] = float64(1 + rng.Intn(8))
		} else {
			c.x[e] = rng.NormFloat64()
		}
	}
	return c
}

// sequential is the reference: the loop as written, steps times.
func (c mvmCase) sequential(steps int) []float64 {
	y := make([]float64, c.n)
	for s := 0; s < steps; s++ {
		for i := 0; i < c.nnz; i++ {
			y[c.row[i]] += c.a[i] * c.x[c.col[i]]
		}
	}
	return y
}

// loop builds the rts loop for a strategy.
func (c mvmCase) loop(p, k int, dist inspector.Dist) *rts.Loop {
	return &rts.Loop{
		Cfg:  inspector.Config{P: p, K: k, NumIters: c.nnz, NumElems: c.n, Dist: dist},
		Mode: rts.Reduce,
		Ind:  [][]int32{c.row},
		Cost: rts.KernelCost{Flops: 2, IterArrays: 3, NodeArrays: 1},
	}
}

// native runs the goroutine engine.
func (c mvmCase) native(p, k int, dist inspector.Dist, steps int) ([]float64, error) {
	n, err := rts.NewNative(c.loop(p, k, dist))
	if err != nil {
		return nil, err
	}
	n.Contribs = func(_, i int, out []float64) { out[0] = c.a[i] * c.x[c.col[i]] }
	if err := n.Run(steps); err != nil {
		return nil, err
	}
	return n.X, nil
}

// sim runs the DES engine with attached computation.
func (c mvmCase) sim(p, k int, dist inspector.Dist, steps int) ([]float64, error) {
	ex := &rts.SimExec{
		Contribs: func(_, i int, out []float64) { out[0] = c.a[i] * c.x[c.col[i]] },
	}
	opt := rts.SimOptions{Steps: steps, WarmSteps: 1, MeasureSteps: steps - 1, Exec: ex}
	if _, err := rts.RunSim(c.loop(p, k, dist), opt); err != nil {
		return nil, err
	}
	if err := ex.Err(); err != nil {
		return nil, err
	}
	return ex.X, nil
}

// interpRun pushes the case through the IRL interpreter using the shared
// MVM kernel source — same program text the compiler pipeline consumes.
func (c mvmCase) interpRun(steps int) ([]float64, error) {
	prog, err := lang.Parse(kernels.MVMIRL)
	if err != nil {
		return nil, err
	}
	env := interp.NewEnv(prog)
	env.SetParam("nnz", c.nnz)
	env.SetParam("n", c.n)
	if err := env.BindInt("row", c.row); err != nil {
		return nil, err
	}
	if err := env.BindInt("col", c.col); err != nil {
		return nil, err
	}
	if err := env.BindFloat("a", c.a); err != nil {
		return nil, err
	}
	if err := env.BindFloat("x", c.x); err != nil {
		return nil, err
	}
	if err := env.Alloc(); err != nil {
		return nil, err
	}
	for s := 0; s < steps; s++ {
		if err := env.RunLoop(prog.Loops[0]); err != nil {
			return nil, err
		}
	}
	return env.Floats["y"], nil
}

// compare checks elementwise equality. exact=true demands bitwise equality
// (integral inputs); otherwise a relative tolerance absorbs the reordering
// of float accumulation.
func compare(t *testing.T, label string, got, want []float64, exact bool) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", label, len(got), len(want))
	}
	for e := range want {
		if exact {
			if got[e] != want[e] {
				t.Fatalf("%s: element %d = %v, want %v (exact)", label, e, got[e], want[e])
			}
			continue
		}
		diff := math.Abs(got[e] - want[e])
		scale := math.Max(1, math.Abs(want[e]))
		if diff > 1e-9*scale {
			t.Fatalf("%s: element %d = %v, want %v (diff %g)", label, e, got[e], want[e], diff)
		}
	}
}

// strategies is the (P, k, dist) grid every drawn case is run under.
var strategies = []struct {
	p, k int
	dist inspector.Dist
}{
	{1, 1, inspector.Block},
	{2, 2, inspector.Block},
	{3, 1, inspector.Cyclic},
	{4, 2, inspector.Cyclic},
	{5, 3, inspector.Block},
}

// TestEnginesAgreeExact is the differential property test: random integral
// cases through native, sim, and interp must reproduce the sequential
// reference bitwise, for every strategy.
func TestEnginesAgreeExact(t *testing.T) {
	const cases, steps = 6, 3
	for ci := 0; ci < cases; ci++ {
		rng := rand.New(rand.NewSource(int64(100 + ci)))
		c := randMVM(rng, true)
		want := c.sequential(steps)

		// The interpreter has no strategy axis: one run per case.
		got, err := c.interpRun(steps)
		if err != nil {
			t.Fatal(err)
		}
		compare(t, fmt.Sprintf("case %d interp", ci), got, want, true)

		for _, s := range strategies {
			label := fmt.Sprintf("case %d P=%d k=%d %v", ci, s.p, s.k, s.dist)
			got, err := c.native(s.p, s.k, s.dist, steps)
			if err != nil {
				t.Fatalf("%s native: %v", label, err)
			}
			compare(t, label+" native", got, want, true)

			got, err = c.sim(s.p, s.k, s.dist, steps)
			if err != nil {
				t.Fatalf("%s sim: %v", label, err)
			}
			compare(t, label+" sim", got, want, true)
		}
	}
}

// TestEnginesAgreeFloat repeats the property with full-precision gaussian
// inputs and a tolerance: catches value-routing bugs that integral inputs
// could mask (e.g. a contribution applied twice with weight 0.5).
func TestEnginesAgreeFloat(t *testing.T) {
	const cases, steps = 4, 2
	for ci := 0; ci < cases; ci++ {
		rng := rand.New(rand.NewSource(int64(900 + ci)))
		c := randMVM(rng, false)
		want := c.sequential(steps)

		got, err := c.interpRun(steps)
		if err != nil {
			t.Fatal(err)
		}
		compare(t, fmt.Sprintf("case %d interp", ci), got, want, false)

		for _, s := range strategies {
			label := fmt.Sprintf("case %d P=%d k=%d %v", ci, s.p, s.k, s.dist)
			got, err := c.native(s.p, s.k, s.dist, steps)
			if err != nil {
				t.Fatalf("%s native: %v", label, err)
			}
			compare(t, label+" native", got, want, false)

			got, err = c.sim(s.p, s.k, s.dist, steps)
			if err != nil {
				t.Fatalf("%s sim: %v", label, err)
			}
			compare(t, label+" sim", got, want, false)
		}
	}
}

// TestEnginesAgreeTwoRef runs an euler-shaped two-reference reduction
// (f added at one endpoint, subtracted at the other) through native and
// sim with an Update hook between sweeps — the barrier path — and checks
// both against a sequential replay.
func TestEnginesAgreeTwoRef(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const edges, nodes, steps = 1500, 220, 3
	i1 := make([]int32, edges)
	i2 := make([]int32, edges)
	w := make([]float64, edges)
	for i := range i1 {
		i1[i] = int32(rng.Intn(nodes))
		i2[i] = int32(rng.Intn(nodes))
		w[i] = float64(1 + rng.Intn(4))
	}
	contribs := func(_, i int, out []float64) { out[0], out[1] = w[i], -w[i] }
	update := func(x []float64, cfg inspector.Config, proc int) {
		lo, _ := cfg.PortionBounds(cfg.PortionAt(proc, 0))
		_, hi := cfg.PortionBounds(cfg.PortionAt(proc, cfg.K-1))
		for e := lo; e < hi; e++ {
			x[e] *= 0.5
		}
	}

	want := make([]float64, nodes)
	for s := 0; s < steps; s++ {
		for i := 0; i < edges; i++ {
			want[i1[i]] += w[i]
			want[i2[i]] -= w[i]
		}
		for e := range want {
			want[e] *= 0.5
		}
	}

	for _, s := range strategies {
		label := fmt.Sprintf("P=%d k=%d %v", s.p, s.k, s.dist)
		mk := func() *rts.Loop {
			return &rts.Loop{
				Cfg:  inspector.Config{P: s.p, K: s.k, NumIters: edges, NumElems: nodes, Dist: s.dist},
				Mode: rts.Reduce,
				Ind:  [][]int32{i1, i2},
				Cost: rts.KernelCost{Flops: 4, IterArrays: 2, NodeArrays: 1, UpdateFlopsPerElem: 1, UpdateArraysPerElem: 1},
			}
		}

		l := mk()
		n, err := rts.NewNative(l)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		n.Contribs = contribs
		n.Update = func(p, _ int) { update(n.X, l.Cfg, p) }
		if err := n.Run(steps); err != nil {
			t.Fatalf("%s native: %v", label, err)
		}
		compare(t, label+" native", n.X, want, true)

		l = mk()
		ex := &rts.SimExec{Contribs: contribs}
		ex.Update = func(p, _ int) { update(ex.X, l.Cfg, p) }
		opt := rts.SimOptions{Steps: steps, WarmSteps: 1, MeasureSteps: steps - 1, Exec: ex}
		if _, err := rts.RunSim(l, opt); err != nil {
			t.Fatalf("%s sim: %v", label, err)
		}
		if err := ex.Err(); err != nil {
			t.Fatalf("%s sim exec: %v", label, err)
		}
		compare(t, label+" sim", ex.X, want, true)
	}
}
