package difftest

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"irred/internal/fault"
	"irred/internal/inspector"
	"irred/internal/rts"
)

// distributed runs the hardened rotation engine under a fault spec. Fast
// recovery tuning (short watchdog) keeps injected faults sub-millisecond
// concerns rather than wall-clock ones.
func (c mvmCase) distributed(p, k int, dist inspector.Dist, steps int, spec fault.Spec) ([]float64, error) {
	d, err := rts.NewDistributed(c.loop(p, k, dist))
	if err != nil {
		return nil, err
	}
	d.Contribs = func(_, i int, out []float64) { out[0] = c.a[i] * c.x[c.col[i]] }
	d.Inject = fault.New(spec)
	d.Watchdog = 15 * time.Millisecond
	d.MaxResend = 3
	return d.Run(steps)
}

// chaosScenarios are the single-fault cases of the failure model: exactly
// one payload dropped, corrupted, delayed, or duplicated in transit, or one
// processor transiently stalled at a phase boundary. Each must be absorbed
// by the rotation protocol's local recovery (checksum + watchdog + resend +
// stale-tag discard) with a bitwise-sequential result.
var chaosScenarios = []struct {
	name string
	spec fault.Spec
}{
	{"drop", fault.Spec{Targets: []fault.Target{
		{Class: fault.Drop, Proc: 1, Phase: 1, Sweep: 0, Iter: -1}}}},
	{"corrupt", fault.Spec{Seed: 7, Targets: []fault.Target{
		{Class: fault.Corrupt, Proc: 0, Phase: -1, Sweep: 1, Iter: -1}}}},
	{"delay", fault.Spec{DelayMS: 40, Targets: []fault.Target{
		{Class: fault.Delay, Proc: 2, Phase: -1, Sweep: 0, Iter: -1}}}},
	{"dup", fault.Spec{Targets: []fault.Target{
		{Class: fault.Duplicate, Proc: 1, Phase: -1, Sweep: 1, Iter: -1}}}},
	{"stall", fault.Spec{StallMS: 40, Targets: []fault.Target{
		{Class: fault.Stall, Proc: 0, Phase: 1, Sweep: -1, Iter: -1}}}},
}

// TestChaosSingleFaultBitwise is the chaos differential test: random
// integral cases through the hardened distributed engine, one injected
// fault per run, compared bitwise against the sequential loop. Recovery is
// only recovery if the recomputed answer is the exact answer.
func TestChaosSingleFaultBitwise(t *testing.T) {
	const cases, steps = 3, 3
	for ci := 0; ci < cases; ci++ {
		rng := rand.New(rand.NewSource(int64(900 + ci)))
		c := randMVM(rng, true)
		want := c.sequential(steps)
		for _, sc := range chaosScenarios {
			got, err := c.distributed(3, 2, inspector.Cyclic, steps, sc.spec)
			if err != nil {
				t.Fatalf("case %d %s: %v", ci, sc.name, err)
			}
			compare(t, fmt.Sprintf("case %d %s", ci, sc.name), got, want, true)
		}
	}
}

// TestChaosCleanEnginesAgree cross-checks the hardened engine with no
// faults injected (a zero Spec builds a nil, zero-cost injector) against
// the native engine and the sequential reference — the hardening layer
// must be invisible when nothing goes wrong.
func TestChaosCleanEnginesAgree(t *testing.T) {
	const steps = 2
	rng := rand.New(rand.NewSource(77))
	c := randMVM(rng, true)
	want := c.sequential(steps)

	got, err := c.distributed(4, 2, inspector.Block, steps, fault.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	compare(t, "clean distributed", got, want, true)

	got, err = c.native(4, 2, inspector.Block, steps)
	if err != nil {
		t.Fatal(err)
	}
	compare(t, "clean native", got, want, true)
}
