package difftest

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"irred/internal/inspector"
	"irred/internal/mesh"
	"irred/internal/rts"
)

// This file is the incremental-revision oracle: Schedule.Update applied to
// a resident schedule must be observationally identical to throwing the
// schedule away and re-running the LightInspector on the revised
// indirection arrays. Integral contributions make the comparison bitwise
// (every partial sum exactly representable); float contributions get the
// usual reordering tolerance, because Update legitimately re-orders
// iterations within a phase (swap-remove insertion) relative to a fresh
// inspection. This is the contract the service's streaming sessions stand
// on — a delta-updated session result must be indistinguishable from
// resubmitting the whole problem.

// incCase is a raw multi-reference reduction: for each iteration i and
// reference r, x[ind[r][i]] += w[i]·(r+1).
type incCase struct {
	iters, elems int
	ind          [][]int32
	w            []float64
}

func randIncCase(rng *rand.Rand, refs int, integral bool) *incCase {
	c := &incCase{
		iters: 400 + rng.Intn(400),
		elems: 60 + rng.Intn(120),
	}
	c.ind = make([][]int32, refs)
	for r := range c.ind {
		c.ind[r] = make([]int32, c.iters)
		for i := range c.ind[r] {
			c.ind[r][i] = int32(rng.Intn(c.elems))
		}
	}
	c.w = make([]float64, c.iters)
	for i := range c.w {
		if integral {
			c.w[i] = float64(1 + rng.Intn(8))
		} else {
			c.w[i] = rng.NormFloat64()
		}
	}
	return c
}

func (c *incCase) sequential(steps int) []float64 {
	x := make([]float64, c.elems)
	for s := 0; s < steps; s++ {
		for i := 0; i < c.iters; i++ {
			for r := range c.ind {
				x[c.ind[r][i]] += c.w[i] * float64(r+1)
			}
		}
	}
	return x
}

func (c *incCase) loop(p, k int, dist inspector.Dist) *rts.Loop {
	return &rts.Loop{
		Cfg:  inspector.Config{P: p, K: k, NumIters: c.iters, NumElems: c.elems, Dist: dist},
		Mode: rts.Reduce,
		Ind:  c.ind,
	}
}

// runFrom executes the native engine from the given resident schedules.
func (c *incCase) runFrom(scheds []*inspector.Schedule, p, k int, dist inspector.Dist, steps int) ([]float64, error) {
	n, err := rts.NewNativeFrom(c.loop(p, k, dist), scheds)
	if err != nil {
		return nil, err
	}
	n.Contribs = func(_, i int, out []float64) {
		for r := range c.ind {
			out[r] = c.w[i] * float64(r+1)
		}
	}
	if err := n.Run(steps); err != nil {
		return nil, err
	}
	return n.X, nil
}

// mutateCase rewrites n distinct iterations to fresh indirection targets
// and returns the changed list, sorted.
func mutateCase(rng *rand.Rand, c *incCase, n int) []int32 {
	perm := rng.Perm(c.iters)[:n]
	sort.Ints(perm)
	changed := make([]int32, n)
	for j, it := range perm {
		changed[j] = int32(it)
		for r := range c.ind {
			c.ind[r][it] = int32(rng.Intn(c.elems))
		}
	}
	return changed
}

// TestIncrementalMatchesFullReinspection sweeps contribution families ×
// strategies × delta sizes. After every delta, the incrementally revised
// schedules and freshly inspected schedules must both reproduce the
// sequential reference — and each other, bitwise, in the integral family.
func TestIncrementalMatchesFullReinspection(t *testing.T) {
	for _, integral := range []bool{true, false} {
		family := "float"
		if integral {
			family = "integral"
		}
		rng := rand.New(rand.NewSource(2026))
		for _, st := range strategies {
			c := randIncCase(rng, 1+rng.Intn(2)+1, integral)
			cfg := inspector.Config{P: st.p, K: st.k, NumIters: c.iters, NumElems: c.elems, Dist: st.dist}
			scheds := make([]*inspector.Schedule, st.p)
			for p := 0; p < st.p; p++ {
				s, err := inspector.Light(cfg, p, c.ind...)
				if err != nil {
					t.Fatal(err)
				}
				s.BeginIncremental()
				scheds[p] = s
			}
			for _, deltaN := range []int{1, 8, 40, c.iters / 10, 3 * c.iters / 10} {
				label := fmt.Sprintf("%s/P%dk%d%v/delta%d", family, st.p, st.k, st.dist, deltaN)
				changed := mutateCase(rng, c, deltaN)
				for p, s := range scheds {
					if err := s.Update(changed, c.ind...); err != nil {
						t.Fatalf("%s: proc %d: %v", label, p, err)
					}
					if err := s.Check(c.ind...); err != nil {
						t.Fatalf("%s: proc %d: %v", label, p, err)
					}
				}
				fresh := make([]*inspector.Schedule, st.p)
				for p := 0; p < st.p; p++ {
					s, err := inspector.Light(cfg, p, c.ind...)
					if err != nil {
						t.Fatal(err)
					}
					fresh[p] = s
				}
				gotIncr, err := c.runFrom(scheds, st.p, st.k, st.dist, 1)
				if err != nil {
					t.Fatalf("%s: incremental run: %v", label, err)
				}
				gotFull, err := c.runFrom(fresh, st.p, st.k, st.dist, 1)
				if err != nil {
					t.Fatalf("%s: full run: %v", label, err)
				}
				want := c.sequential(1)
				compare(t, label+"/incr-vs-seq", gotIncr, want, integral)
				compare(t, label+"/full-vs-seq", gotFull, want, integral)
				if integral {
					compare(t, label+"/incr-vs-full", gotIncr, gotFull, true)
				}
			}
		}
	}
}

// TestIncrementalMeshSoak200 is the randomized long-haul: an adaptive mesh
// absorbs 200 deterministic refinement steps of varying sparsity, the
// resident schedules are revised incrementally after each — never rebuilt —
// and the parallel result is cross-checked bitwise against the sequential
// reference after every single step.
func TestIncrementalMeshSoak200(t *testing.T) {
	m := mesh.Generate(400, 1800, 5)
	rng := rand.New(rand.NewSource(500))
	cfg := inspector.Config{P: 3, K: 2, NumIters: m.NumEdges(), NumElems: m.NumNodes, Dist: inspector.Cyclic}
	c := &incCase{iters: m.NumEdges(), elems: m.NumNodes, ind: [][]int32{m.I1, m.I2}}
	c.w = make([]float64, c.iters)
	for i := range c.w {
		c.w[i] = float64(1 + rng.Intn(8))
	}
	scheds := make([]*inspector.Schedule, cfg.P)
	for p := 0; p < cfg.P; p++ {
		s, err := inspector.Light(cfg, p, c.ind...)
		if err != nil {
			t.Fatal(err)
		}
		s.BeginIncremental()
		scheds[p] = s
	}
	fracs := []float64{0.002, 0.01, 0.05, 0.15}
	for step := 0; step < 200; step++ {
		changed := m.Adapt(step, fracs[step%len(fracs)], 11)
		for p, s := range scheds {
			if err := s.Update(changed, c.ind...); err != nil {
				t.Fatalf("step %d: proc %d: %v", step, p, err)
			}
		}
		got, err := c.runFrom(scheds, cfg.P, cfg.K, cfg.Dist, 1)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		compare(t, fmt.Sprintf("step%d", step), got, c.sequential(1), true)
		if step%25 == 24 {
			for p, s := range scheds {
				if err := s.Check(c.ind...); err != nil {
					t.Fatalf("step %d: proc %d: %v", step, p, err)
				}
			}
		}
	}
}
