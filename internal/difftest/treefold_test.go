package difftest

import (
	"fmt"
	"math/rand"
	"testing"

	"irred/internal/codegen"
	"irred/internal/inspector"
	"irred/internal/interp"
	"irred/internal/kernels"
	"irred/internal/rts"
)

// The tree-fold differential property: for every kernel in
// internal/kernels, the licensed tree-fold execution path must agree
// with the rotation schedule and with the sequential interpreter — and
// for integral (exactly representable) data the agreement must be
// BITWISE, which is precisely the claim the W6 model check proves in the
// abstract and these tests confirm on the real compiled kernels.

// kernelCase is one kernel source plus a data binder. bind must be
// deterministic for a given case so every engine sees identical inputs.
type kernelCase struct {
	name   string
	src    string
	arrays []string // reduction arrays compared after the run
	exact  bool     // integral data: demand bitwise equality
	bind   func(env *interp.Env) error
}

// runPlans executes the compiled unit's plans in program order against
// env: regular plans through the interpreter, irregular plans through
// exec. Results land back in env's arrays via Scatter, so later plans
// (and the final comparison) see them.
func runPlans(u *codegen.Unit, env *interp.Env, exec func(p *codegen.Plan, env *interp.Env) error) error {
	for _, p := range u.Plans {
		if p.Kind == codegen.Regular {
			if err := env.RunLoop(p.Loop); err != nil {
				return err
			}
			continue
		}
		if err := exec(p, env); err != nil {
			return err
		}
	}
	return nil
}

// rotationExec runs one irregular plan on the native rotation engine.
func rotationExec(procs, k int, dist inspector.Dist) func(p *codegen.Plan, env *interp.Env) error {
	return func(p *codegen.Plan, env *interp.Env) error {
		loop, contribs, err := p.BuildLoop(env, procs, k, dist)
		if err != nil {
			return err
		}
		nat, err := rts.NewNative(loop)
		if err != nil {
			return err
		}
		nat.Contribs = contribs
		if err := p.Pack(env, nat.X); err != nil {
			return err
		}
		if err := nat.Run(1); err != nil {
			return err
		}
		return p.Scatter(env, nat.X)
	}
}

// treeFoldExec runs one irregular plan on the privatized tree-fold
// engine — only possible because every kernel's license grants it.
func treeFoldExec(workers int) func(p *codegen.Plan, env *interp.Env) error {
	return func(p *codegen.Plan, env *interp.Env) error {
		tf, err := p.BuildTreeFold(env, workers)
		if err != nil {
			return err
		}
		if err := p.Pack(env, tf.X); err != nil {
			return err
		}
		if err := tf.Run(1); err != nil {
			return err
		}
		return p.Scatter(env, tf.X)
	}
}

func mvmKernelCase(seed int64) kernelCase {
	rng := rand.New(rand.NewSource(seed))
	nnz, n := 300+rng.Intn(700), 50+rng.Intn(200)
	row := make([]int32, nnz)
	col := make([]int32, nnz)
	a := make([]float64, nnz)
	x := make([]float64, n)
	for i := 0; i < nnz; i++ {
		row[i] = int32(rng.Intn(n))
		col[i] = int32(rng.Intn(n))
		a[i] = float64(1 + rng.Intn(8))
	}
	for e := range x {
		x[e] = float64(1 + rng.Intn(8))
	}
	return kernelCase{
		name: "mvm", src: kernels.MVMIRL, arrays: []string{"y"}, exact: true,
		bind: func(env *interp.Env) error {
			env.SetParam("nnz", nnz)
			env.SetParam("n", n)
			if err := env.BindInt("row", row); err != nil {
				return err
			}
			if err := env.BindInt("col", col); err != nil {
				return err
			}
			if err := env.BindFloat("a", a); err != nil {
				return err
			}
			return env.BindFloat("x", x)
		},
	}
}

func eulerKernelCase(seed int64) kernelCase {
	rng := rand.New(rand.NewSource(seed))
	edges, nodes := 400+rng.Intn(800), 60+rng.Intn(140)
	ia := make([]int32, 2*edges)
	w := make([]float64, edges)
	qs := make([][]float64, 3)
	for i := 0; i < edges; i++ {
		ia[2*i] = int32(rng.Intn(nodes))
		ia[2*i+1] = int32(rng.Intn(nodes))
		w[i] = float64(1 + rng.Intn(4))
	}
	for c := range qs {
		qs[c] = make([]float64, nodes)
		for e := range qs[c] {
			// Integral states: every intermediate in the euler body is a
			// dyadic rational (x * 0.25 etc.), so sums stay exact.
			qs[c][e] = float64(1 + rng.Intn(8))
		}
	}
	return kernelCase{
		name: "euler", src: kernels.EulerIRL, arrays: []string{"r1", "r2", "r3"}, exact: true,
		bind: func(env *interp.Env) error {
			env.SetParam("num_edges", edges)
			env.SetParam("num_nodes", nodes)
			if err := env.BindInt("ia", ia); err != nil {
				return err
			}
			if err := env.BindFloat("w", w); err != nil {
				return err
			}
			for c, name := range []string{"q1", "q2", "q3"} {
				if err := env.BindFloat(name, qs[c]); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

func minredKernelCase(seed int64) kernelCase {
	rng := rand.New(rand.NewSource(seed))
	edges, nodes := 500+rng.Intn(500), 40+rng.Intn(100)
	e := make([]int32, edges)
	w := make([]float64, edges)
	for i := range e {
		e[i] = int32(rng.Intn(nodes))
		w[i] = float64(rng.Intn(5000) - 1000)
	}
	return kernelCase{
		name: "minred", src: kernels.MinredIRL, arrays: []string{"best"}, exact: true,
		bind: func(env *interp.Env) error {
			env.SetParam("num_edges", edges)
			env.SetParam("num_nodes", nodes)
			if err := env.BindInt("e", e); err != nil {
				return err
			}
			return env.BindFloat("w", w)
		},
	}
}

func moldynKernelCase(seed int64) kernelCase {
	rng := rand.New(rand.NewSource(seed))
	inter, mol := 400+rng.Intn(600), 50+rng.Intn(150)
	ia := make([]int32, 2*inter)
	for i := 0; i < inter; i++ {
		a := rng.Intn(mol)
		b := rng.Intn(mol)
		for b == a {
			b = rng.Intn(mol)
		}
		ia[2*i], ia[2*i+1] = int32(a), int32(b)
	}
	ps := make([][]float64, 3)
	for c := range ps {
		ps[c] = make([]float64, mol)
		for e := range ps[c] {
			ps[c][e] = rng.NormFloat64() * 3
		}
	}
	return kernelCase{
		name: "moldyn", src: kernels.MoldynIRL, arrays: []string{"fx", "fy", "fz"}, exact: false,
		bind: func(env *interp.Env) error {
			env.SetParam("num_inter", inter)
			env.SetParam("num_mol", mol)
			if err := env.BindInt("ia", ia); err != nil {
				return err
			}
			for c, name := range []string{"px", "py", "pz"} {
				if err := env.BindFloat(name, ps[c]); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

func runKernelCase(t *testing.T, kc kernelCase) {
	u, err := codegen.Compile(kc.src)
	if err != nil {
		t.Fatalf("%s: compile: %v", kc.name, err)
	}
	for _, p := range u.Plans {
		if p.Kind == codegen.Irregular && !p.License.TreeFold {
			t.Fatalf("%s: plan %s not licensed for tree-fold:\n%s", kc.name, p.Name, p.License.Report())
		}
	}
	mkEnv := func() *interp.Env {
		env := interp.NewEnv(u.Fissioned)
		if err := kc.bind(env); err != nil {
			t.Fatalf("%s: bind: %v", kc.name, err)
		}
		if err := env.Alloc(); err != nil {
			t.Fatalf("%s: alloc: %v", kc.name, err)
		}
		return env
	}

	ref := mkEnv()
	if err := ref.Run(); err != nil {
		t.Fatalf("%s: reference run: %v", kc.name, err)
	}

	check := func(label string, env *interp.Env) {
		t.Helper()
		for _, a := range kc.arrays {
			compare(t, fmt.Sprintf("%s %s %s", kc.name, label, a), env.Floats[a], ref.Floats[a], kc.exact)
		}
	}

	for _, s := range strategies {
		env := mkEnv()
		if err := runPlans(u, env, rotationExec(s.p, s.k, s.dist)); err != nil {
			t.Fatalf("%s rotation P=%d k=%d: %v", kc.name, s.p, s.k, err)
		}
		check(fmt.Sprintf("rotation P=%d k=%d %v", s.p, s.k, s.dist), env)
	}
	for _, workers := range []int{1, 2, 3, 4, 8} {
		env := mkEnv()
		if err := runPlans(u, env, treeFoldExec(workers)); err != nil {
			t.Fatalf("%s tree-fold W=%d: %v", kc.name, workers, err)
		}
		check(fmt.Sprintf("tree-fold W=%d", workers), env)
	}
}

// TestTreeFoldAgreesWithRotation is the headline equivalence test: every
// kernel, rotation and tree-fold, against the sequential interpreter —
// bitwise for the integral kernels (mvm, euler, minred), within
// tolerance for moldyn (its body divides, so inputs are not integral).
func TestTreeFoldAgreesWithRotation(t *testing.T) {
	for i, mk := range []func(int64) kernelCase{mvmKernelCase, eulerKernelCase, minredKernelCase, moldynKernelCase} {
		kc := mk(int64(40 + i))
		t.Run(kc.name, func(t *testing.T) { runKernelCase(t, kc) })
	}
}
