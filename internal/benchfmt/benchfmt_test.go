package benchfmt

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestNewStatsTrimMath(t *testing.T) {
	// 10 samples with one wild outlier at each end. trimFrac 0.1 drops
	// exactly one from each end.
	samples := []float64{1000, 10, 11, 12, 10, 11, 12, 10, 11, 0.001}
	s := NewStats(samples, 0.1)
	if s.Count != 10 || s.TrimmedCount != 1 {
		t.Fatalf("count/trim = %d/%d", s.Count, s.TrimmedCount)
	}
	if s.MinMS != 0.001 || s.MaxMS != 1000 {
		t.Fatalf("min/max = %v/%v", s.MinMS, s.MaxMS)
	}
	// Trimmed mean over {10,10,10,11,11,11,12,12} = 10.875.
	if math.Abs(s.TrimmedMS-10.875) > 1e-12 {
		t.Fatalf("trimmed mean = %v, want 10.875", s.TrimmedMS)
	}
	// The untrimmed mean is dragged by the outlier.
	if s.MeanMS < 100 {
		t.Fatalf("mean = %v, expected outlier-dominated", s.MeanMS)
	}
	if s.Score() != s.TrimmedMS {
		t.Fatalf("Score should prefer the trimmed mean")
	}
}

func TestNewStatsSmallSamples(t *testing.T) {
	s := NewStats(nil, 0.1)
	if s.Count != 0 || s.Score() != 0 {
		t.Fatalf("empty stats: %+v", s)
	}
	// With 2 samples no trimming may occur regardless of the fraction.
	s = NewStats([]float64{4, 8}, 0.5)
	if s.TrimmedCount != 0 || s.TrimmedMS != 6 || s.MeanMS != 6 {
		t.Fatalf("2-sample stats: %+v", s)
	}
	// A trim that would consume all samples collapses to no trim.
	s = NewStats([]float64{1, 2, 3, 4}, 0.5)
	if s.TrimmedCount != 0 || s.TrimmedMS != 2.5 {
		t.Fatalf("over-trim stats: %+v", s)
	}
}

func TestNewStatsStdDev(t *testing.T) {
	s := NewStats([]float64{2, 4, 4, 4, 5, 5, 7, 9}, 0)
	if math.Abs(s.StdDevMS-2) > 1e-12 {
		t.Fatalf("stddev = %v, want 2", s.StdDevMS)
	}
}

// goldenSummary is the deterministic summary behind the golden-file
// schema test; every field populated so schema drift is caught.
func goldenSummary() *Summary {
	return &Summary{
		Stamp: Stamp{
			Schema:     Schema,
			Date:       "2026-08-08",
			Time:       "2026-08-08T12:00:00Z",
			Commit:     "0123456789abcdef0123456789abcdef01234567",
			CommitTime: "2026-08-08T11:00:00Z",
			Dirty:      false,
			Module:     "irred",
			Version:    "(devel)",
			GoVersion:  "go1.22.0",
			OS:         "linux",
			Arch:       "amd64",
			NumCPU:     8,
		},
		Cells: []Cell{
			{
				ID: "mvm/S/native/p2/k1/cyclic/unchecked", Kernel: "mvm", Class: "S",
				Engine: "native", P: 2, K: 1, Dist: "cyclic", Checked: false,
				Steps: 3, Warmup: 1, Repeats: 5,
				Wall:  NewStats([]float64{4.0, 4.2, 4.1, 4.3, 9.9}, 0.2),
				P50MS: 4.2, P95MS: 9.9, P99MS: 9.9,
				PhaseMS:   map[string]float64{"compute": 6.5, "copy": 0.4, "wait": 1.1, "update": 0.7, "inspect": 2.0},
				CacheHits: 5, CacheMisses: 1, CacheHitRatio: 5.0 / 6.0,
			},
			{
				ID: "euler/2k/sim/p4/k2/cyclic/checked", Kernel: "euler", Class: "2k",
				Engine: "sim", P: 4, K: 2, Dist: "cyclic", Checked: true,
				Steps: 100, Warmup: 0, Repeats: 1,
				Wall:  NewStats([]float64{12.5}, 0.2),
				P50MS: 12.5, P95MS: 12.5, P99MS: 12.5,
				SimSeconds: 0.0875,
			},
			{
				ID: "raw/small/distributed/p3/k2/block/checked", Kernel: "raw", Class: "small",
				Engine: "distributed", P: 3, K: 2, Dist: "block", Checked: true,
				Steps: 3, Warmup: 1, Repeats: 3,
				Error: "injected: example of an errored cell",
			},
		},
		Skipped: []Skip{
			{ID: "mvm/S/distributed/p2/k1/cyclic/checked", Reason: "engine distributed needs a reduce-mode kernel; mvm is gather"},
			{ID: "euler/2k/interp/p4/k1/cyclic/checked", Reason: "engine interp is sequential; needs P=1 and k=1"},
		},
	}
}

// The golden file pins the BENCH JSON schema: any field rename, type
// change, or serialization drift shows up as a diff against testdata.
func TestGoldenBenchSchema(t *testing.T) {
	got, err := json.MarshalIndent(goldenSummary(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "golden_bench.json")
	if os.Getenv("IRRED_UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (run with IRRED_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("BENCH schema drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", FileName("2026-08-08", ""))
	want := goldenSummary()
	if err := Write(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Commit != want.Commit || len(got.Cells) != len(want.Cells) || len(got.Skipped) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if c, ok := got.Cell("mvm/S/native/p2/k1/cyclic/unchecked"); !ok || c.Wall.Count != 5 {
		t.Fatalf("cell lookup: %v %v", c, ok)
	}
}

func TestReadRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_bad.json")
	if err := os.WriteFile(path, []byte(`{"schema":"other/v9","cells":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("wrong schema must be rejected")
	}
}

func TestLatest(t *testing.T) {
	dir := t.TempDir()
	if _, err := Latest(dir); err == nil {
		t.Fatal("empty dir must error")
	}
	for _, name := range []string{"BENCH_2026-08-01.json", "BENCH_2026-08-08.json", "BENCH_2026-07-30_ci.json", "notbench.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_2026-08-08.json" {
		t.Fatalf("Latest = %s", got)
	}
}
