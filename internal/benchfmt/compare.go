package benchfmt

import (
	"fmt"
	"sort"
	"strings"
)

// Verdict classifies one matched cell in a baseline comparison.
type Verdict string

const (
	// VerdictOK: the candidate score is within the threshold band.
	VerdictOK Verdict = "ok"
	// VerdictRegression: candidate slower than baseline by more than the
	// threshold fraction — the gate fails on any of these.
	VerdictRegression Verdict = "regression"
	// VerdictImproved: candidate faster than baseline by more than the
	// threshold fraction (informational; never fails the gate).
	VerdictImproved Verdict = "improved"
)

// Delta is one matched cell's comparison outcome.
type Delta struct {
	ID      string  `json:"id"`
	OldMS   float64 `json:"old_ms"`
	NewMS   float64 `json:"new_ms"`
	Ratio   float64 `json:"ratio"` // new/old; > 1 is slower
	Verdict Verdict `json:"verdict"`
}

// Comparison is the outcome of gating a candidate BENCH summary against
// a baseline.
type Comparison struct {
	Threshold    float64 `json:"threshold"` // allowed fractional slowdown (0.25 = +25%)
	Matched      int     `json:"matched"`
	Regressions  int     `json:"regressions"`
	Improvements int     `json:"improvements"`
	Deltas       []Delta `json:"deltas"`
	// OnlyBaseline / OnlyCandidate list cell IDs present on one side only
	// (grid drift, new engines, errored cells). They never fail the gate
	// by themselves but are always reported — silent coverage loss is how
	// perf claims rot.
	OnlyBaseline  []string `json:"only_baseline,omitempty"`
	OnlyCandidate []string `json:"only_candidate,omitempty"`
}

// Failed reports whether the gate should exit non-zero.
func (c *Comparison) Failed() bool { return c.Regressions > 0 }

// Compare gates candidate against baseline: every cell present and
// error-free in both is scored by its trimmed-mean wall time, and a
// candidate score above baseline*(1+threshold) is a regression. A
// non-positive threshold defaults to 0.25 (+25%).
func Compare(baseline, candidate *Summary, threshold float64) *Comparison {
	if threshold <= 0 {
		threshold = 0.25
	}
	c := &Comparison{Threshold: threshold}

	base := make(map[string]*Cell, len(baseline.Cells))
	for i := range baseline.Cells {
		if baseline.Cells[i].Error == "" {
			base[baseline.Cells[i].ID] = &baseline.Cells[i]
		}
	}
	seen := make(map[string]bool, len(candidate.Cells))
	for i := range candidate.Cells {
		cell := &candidate.Cells[i]
		seen[cell.ID] = true
		b, ok := base[cell.ID]
		if !ok || cell.Error != "" {
			if cell.Error == "" {
				c.OnlyCandidate = append(c.OnlyCandidate, cell.ID)
			}
			continue
		}
		oldMS, newMS := b.Wall.Score(), cell.Wall.Score()
		d := Delta{ID: cell.ID, OldMS: oldMS, NewMS: newMS, Verdict: VerdictOK}
		if oldMS > 0 {
			d.Ratio = newMS / oldMS
		}
		switch {
		case oldMS > 0 && newMS > oldMS*(1+threshold):
			d.Verdict = VerdictRegression
			c.Regressions++
		case oldMS > 0 && newMS < oldMS*(1-threshold):
			d.Verdict = VerdictImproved
			c.Improvements++
		}
		c.Matched++
		c.Deltas = append(c.Deltas, d)
	}
	for id := range base {
		if !seen[id] {
			c.OnlyBaseline = append(c.OnlyBaseline, id)
		}
	}
	sort.Strings(c.OnlyBaseline)
	sort.Strings(c.OnlyCandidate)
	sort.Slice(c.Deltas, func(i, j int) bool { return c.Deltas[i].ID < c.Deltas[j].ID })
	return c
}

// Table renders the comparison as an aligned text report, regressions
// first, suitable for a CI log.
func (c *Comparison) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "baseline comparison: %d matched, %d regressions, %d improvements (threshold +%.0f%%)\n",
		c.Matched, c.Regressions, c.Improvements, c.Threshold*100)
	rows := append([]Delta(nil), c.Deltas...)
	sort.Slice(rows, func(i, j int) bool {
		if (rows[i].Verdict == VerdictRegression) != (rows[j].Verdict == VerdictRegression) {
			return rows[i].Verdict == VerdictRegression
		}
		return rows[i].Ratio > rows[j].Ratio
	})
	fmt.Fprintf(&b, "%-58s %10s %10s %7s %s\n", "cell", "old_ms", "new_ms", "ratio", "verdict")
	for _, d := range rows {
		fmt.Fprintf(&b, "%-58s %10.3f %10.3f %6.2fx %s\n", d.ID, d.OldMS, d.NewMS, d.Ratio, d.Verdict)
	}
	for _, id := range c.OnlyBaseline {
		fmt.Fprintf(&b, "only in baseline:  %s\n", id)
	}
	for _, id := range c.OnlyCandidate {
		fmt.Fprintf(&b, "only in candidate: %s\n", id)
	}
	return b.String()
}
