package benchfmt

import (
	"strings"
	"testing"
)

// mkSummary builds a summary with one cell per (id, trimmed-mean ms).
func mkSummary(cells map[string]float64) *Summary {
	s := &Summary{Stamp: Stamp{Schema: Schema, Date: "2026-08-08"}}
	for id, ms := range cells {
		s.Cells = append(s.Cells, Cell{ID: id, Wall: Stats{Count: 5, MeanMS: ms, TrimmedMS: ms}})
	}
	return s
}

func TestCompareCleanRun(t *testing.T) {
	base := mkSummary(map[string]float64{"a": 10, "b": 20})
	cand := mkSummary(map[string]float64{"a": 10.5, "b": 19})
	c := Compare(base, cand, 0.25)
	if c.Failed() || c.Regressions != 0 || c.Matched != 2 {
		t.Fatalf("clean run flagged: %+v", c)
	}
	for _, d := range c.Deltas {
		if d.Verdict != VerdictOK {
			t.Fatalf("delta %+v", d)
		}
	}
}

func TestCompareDetectsInjectedRegression(t *testing.T) {
	base := mkSummary(map[string]float64{"a": 10, "b": 20, "c": 5})
	// b inflated 10x — an injected regression well past any threshold.
	cand := mkSummary(map[string]float64{"a": 10, "b": 200, "c": 5})
	c := Compare(base, cand, 0.25)
	if !c.Failed() || c.Regressions != 1 {
		t.Fatalf("injected regression missed: %+v", c)
	}
	var reg *Delta
	for i := range c.Deltas {
		if c.Deltas[i].Verdict == VerdictRegression {
			reg = &c.Deltas[i]
		}
	}
	if reg == nil || reg.ID != "b" || reg.Ratio != 10 {
		t.Fatalf("regression delta: %+v", reg)
	}
	if !strings.Contains(c.Table(), "regression") {
		t.Fatalf("table must name the verdict:\n%s", c.Table())
	}
}

func TestCompareThresholdBand(t *testing.T) {
	base := mkSummary(map[string]float64{"a": 100})
	// +24% is inside a 25% band; +26% is outside.
	if Compare(base, mkSummary(map[string]float64{"a": 124}), 0.25).Failed() {
		t.Fatal("+24% must pass a 25% gate")
	}
	if !Compare(base, mkSummary(map[string]float64{"a": 126}), 0.25).Failed() {
		t.Fatal("+26% must fail a 25% gate")
	}
}

func TestCompareImprovement(t *testing.T) {
	base := mkSummary(map[string]float64{"a": 100})
	c := Compare(base, mkSummary(map[string]float64{"a": 40}), 0.25)
	if c.Failed() || c.Improvements != 1 {
		t.Fatalf("improvement misclassified: %+v", c)
	}
}

func TestCompareUnmatchedAndErrored(t *testing.T) {
	base := mkSummary(map[string]float64{"a": 10, "gone": 5})
	cand := mkSummary(map[string]float64{"a": 10, "new": 7})
	cand.Cells = append(cand.Cells, Cell{ID: "broken", Error: "boom"})
	base.Cells = append(base.Cells, Cell{ID: "basebroken", Error: "boom"})
	c := Compare(base, cand, 0.25)
	if c.Failed() || c.Matched != 1 {
		t.Fatalf("unexpected verdicts: %+v", c)
	}
	if len(c.OnlyBaseline) != 1 || c.OnlyBaseline[0] != "gone" {
		t.Fatalf("OnlyBaseline = %v", c.OnlyBaseline)
	}
	// An errored candidate cell never counts as coverage; errored
	// baseline cells are dropped from the baseline set entirely.
	if len(c.OnlyCandidate) != 1 || c.OnlyCandidate[0] != "new" {
		t.Fatalf("OnlyCandidate = %v", c.OnlyCandidate)
	}
}

func TestCompareDefaultThreshold(t *testing.T) {
	base := mkSummary(map[string]float64{"a": 10})
	c := Compare(base, mkSummary(map[string]float64{"a": 10}), 0)
	if c.Threshold != 0.25 {
		t.Fatalf("default threshold = %v", c.Threshold)
	}
}
