// Package benchfmt defines the persisted BENCH trajectory format: the
// schema of the `BENCH_<date>.json` summaries written by cmd/irredsweep,
// the per-cell statistics they carry, and the baseline comparator behind
// the CI regression gate.
//
// The package is deliberately a leaf — standard library only — so both
// the sweep harness (internal/sweep) and the runtime tuner
// (internal/rts) can consume trajectories without an import cycle:
// sweep imports rts to execute cells, rts imports benchfmt to pick
// (engine, P, k) from measured data.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Schema identifies the BENCH JSON layout. Readers reject files whose
// schema does not match — a trajectory from a future incompatible layout
// must fail loudly, not mis-parse into zeros that look like a 100x win.
const Schema = "irred-bench/v1"

// Stamp is the identity block of a BENCH summary: when it ran, on what
// commit, with which toolchain, on what machine class. Every field comes
// from internal/buildinfo plus the harness clock; "unknown" marks
// metadata the build did not embed.
type Stamp struct {
	Schema     string `json:"schema"`
	Date       string `json:"date"` // YYYY-MM-DD, also used in the filename
	Time       string `json:"time"` // RFC3339 start of the sweep
	Commit     string `json:"commit"`
	CommitTime string `json:"commit_time"`
	Dirty      bool   `json:"dirty"`
	Module     string `json:"module"`
	Version    string `json:"version"`
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	NumCPU     int    `json:"num_cpu"`
}

// Stats summarizes the repeat wall times of one cell. The trimmed mean —
// the comparator's score — drops the TrimmedCount fastest and slowest
// repeats before averaging, so a single GC pause or cold page fault does
// not flip the regression gate.
type Stats struct {
	Count        int     `json:"count"`
	TrimmedCount int     `json:"trimmed_count"` // repeats dropped from EACH end
	MeanMS       float64 `json:"mean_ms"`
	TrimmedMS    float64 `json:"trimmed_mean_ms"`
	MinMS        float64 `json:"min_ms"`
	MaxMS        float64 `json:"max_ms"`
	StdDevMS     float64 `json:"stddev_ms"`
}

// NewStats aggregates samples (milliseconds), trimming floor(n*trimFrac)
// samples from each end of the sorted order for the trimmed mean. With
// fewer than 3 samples, or a trim that would consume everything, the
// trimmed mean falls back to the plain mean.
func NewStats(samples []float64, trimFrac float64) Stats {
	s := Stats{Count: len(samples)}
	if len(samples) == 0 {
		return s
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	s.MinMS, s.MaxMS = sorted[0], sorted[len(sorted)-1]
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	s.MeanMS = sum / float64(len(sorted))
	var varsum float64
	for _, v := range sorted {
		d := v - s.MeanMS
		varsum += d * d
	}
	s.StdDevMS = math.Sqrt(varsum / float64(len(sorted)))

	trim := 0
	if trimFrac > 0 {
		trim = int(float64(len(sorted)) * trimFrac)
	}
	if len(sorted) < 3 || 2*trim >= len(sorted) {
		trim = 0
	}
	s.TrimmedCount = trim
	kept := sorted[trim : len(sorted)-trim]
	var tsum float64
	for _, v := range kept {
		tsum += v
	}
	s.TrimmedMS = tsum / float64(len(kept))
	return s
}

// Score is the single number the comparator and the tuner rank cells by.
func (s Stats) Score() float64 {
	if s.TrimmedMS > 0 {
		return s.TrimmedMS
	}
	return s.MeanMS
}

// Cell is one measured grid point of the sweep.
type Cell struct {
	// ID is the canonical cell key: kernel/class/engine/P/K/dist/checked
	// (plus /chaos=<spec> when fault injection was on). Matched cells in
	// two BENCH files describe the same workload and strategy.
	ID      string `json:"id"`
	Kernel  string `json:"kernel"`
	Class   string `json:"class"`
	Engine  string `json:"engine"`
	P       int    `json:"p"`
	K       int    `json:"k"`
	Dist    string `json:"dist"`
	Checked bool   `json:"checked"`
	Chaos   string `json:"chaos,omitempty"`

	// DeltaFrac and Adapt describe adaptive streaming cells: the fraction
	// of iterations each adaptation step rewires, and the schedule
	// maintenance path measured — "incr" (Schedule.Update on the resident
	// schedules) or "full" (LightInspector rebuild). Zero/empty on
	// ordinary cells.
	DeltaFrac float64 `json:"delta_frac,omitempty"`
	Adapt     string  `json:"adapt,omitempty"`

	Steps   int `json:"steps"`
	Warmup  int `json:"warmup"`
	Repeats int `json:"repeats"`

	Wall Stats `json:"wall_ms"`

	// Latency percentiles over the recorded repeats (irredload-style,
	// from the shared reservoir estimator).
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`

	// PhaseMS is the per-phase span budget from internal/obs, total
	// milliseconds per span name (compute, copy, wait, update, inspect)
	// across the recorded repeats. Engines that record no spans leave it
	// empty.
	PhaseMS map[string]float64 `json:"phase_ms,omitempty"`

	// Schedule-cache traffic attributed to this cell (internal/service
	// cache counters, delta across the cell's runs).
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`

	// SimSeconds is the modeled MANNA seconds for engine=sim cells (the
	// wall stats then time the simulation itself).
	SimSeconds float64 `json:"sim_seconds,omitempty"`

	// Error marks a cell that failed to execute; errored cells carry no
	// stats and are excluded from comparison and tuning.
	Error string `json:"error,omitempty"`
}

// Skip records a grid point the expansion refused, with the legality
// rule that refused it — the sweep never silently drops coverage.
type Skip struct {
	ID     string `json:"id"`
	Reason string `json:"reason"`
}

// Summary is one whole BENCH_<date>.json: identity stamp, measured
// cells, and the grid points skipped as illegal.
type Summary struct {
	Stamp
	Cells   []Cell `json:"cells"`
	Skipped []Skip `json:"skipped,omitempty"`
}

// Cell looks up a cell by ID.
func (s *Summary) Cell(id string) (*Cell, bool) {
	for i := range s.Cells {
		if s.Cells[i].ID == id {
			return &s.Cells[i], true
		}
	}
	return nil, false
}

// Write marshals the summary (indented, trailing newline) to path,
// creating parent directories as needed.
func Write(path string, s *Summary) error {
	if s.Schema == "" {
		s.Schema = Schema
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("benchfmt: marshal: %w", err)
	}
	data = append(data, '\n')
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("benchfmt: %w", err)
		}
	}
	return os.WriteFile(path, data, 0o644)
}

// Read loads and validates a BENCH summary.
func Read(path string) (*Summary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	var s Summary
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	if s.Schema != Schema {
		return nil, fmt.Errorf("benchfmt: %s: schema %q, want %q", path, s.Schema, Schema)
	}
	return &s, nil
}

// All returns every BENCH_*.json in dir in ascending chronological order
// — the naming convention (BENCH_YYYY-MM-DD[_hhmmss].json) makes lexical
// order chronological — or an error when none exist.
func All(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("benchfmt: no BENCH_*.json in %s", dir)
	}
	sort.Strings(matches)
	return matches, nil
}

// Latest returns the lexically newest BENCH_*.json in dir, or an error
// when none exist.
func Latest(dir string) (string, error) {
	matches, err := All(dir)
	if err != nil {
		return "", err
	}
	return matches[len(matches)-1], nil
}

// FileName renders the canonical summary filename for a date stamp,
// with an optional suffix to disambiguate multiple runs per day.
func FileName(date, suffix string) string {
	if suffix != "" {
		return fmt.Sprintf("BENCH_%s_%s.json", date, strings.ReplaceAll(suffix, " ", "-"))
	}
	return fmt.Sprintf("BENCH_%s.json", date)
}
