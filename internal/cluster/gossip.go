package cluster

import (
	"sort"
	"sync"
	"time"
)

// PeerState is the health of one peer as seen by this node. Transitions
// are driven by direct probe outcomes with hysteresis: a peer is not
// suspected on the first missed probe, and not declared dead on the first
// suspicion — transient stalls (GC pauses, a slow disk flush, one dropped
// packet under chaos) must not reshuffle the ring.
//
//	alive --SuspectAfter consecutive misses--> suspect
//	suspect --DeadAfter consecutive misses--> dead
//	any --one successful exchange--> alive
//
// Dead peers leave the ring (their key range moves to successors) but keep
// being probed, so a recovered node rejoins without operator action.
type PeerState int

const (
	PeerAlive PeerState = iota
	PeerSuspect
	PeerDead
)

func (s PeerState) String() string {
	switch s {
	case PeerAlive:
		return "alive"
	case PeerSuspect:
		return "suspect"
	default:
		return "dead"
	}
}

// PeerWire is the self-description a node attaches to every gossip
// exchange: readiness, load, and a cheap fingerprint of its schedule
// cache. The digest lets operators see cache convergence across the fleet
// from any node's /metrics without shipping key lists.
type PeerWire struct {
	Name         string `json:"name"`
	Ready        bool   `json:"ready"`
	QueueDepth   int    `json:"queue_depth"`
	WorkersBusy  int    `json:"workers_busy"`
	CacheEntries int    `json:"cache_entries"`
	CacheDigest  uint64 `json:"cache_digest"`
}

// GossipMsg is one half of a gossip exchange. The prober POSTs its own
// wire state to /v1/cluster/gossip; the receiver records the sender as
// alive (an inbound probe is proof of life, which heals one-way probe
// failures) and answers with its own GossipMsg — every exchange refreshes
// both directions.
type GossipMsg struct {
	From string   `json:"from"`
	Self PeerWire `json:"self"`
}

// PeerStatus is one row of the peer table snapshot exposed on /metrics.
type PeerStatus struct {
	Name         string `json:"name"`
	URL          string `json:"url"`
	State        string `json:"state"`
	Misses       int    `json:"misses"`
	Ready        bool   `json:"ready"`
	QueueDepth   int    `json:"queue_depth"`
	WorkersBusy  int    `json:"workers_busy"`
	CacheEntries int    `json:"cache_entries"`
	CacheDigest  uint64 `json:"cache_digest"`
	LastSeenMS   int64  `json:"last_seen_ms"` // ms since last success, -1 if never
}

// peerTable tracks every configured peer's state. All decisions are
// local: a node trusts only its own probe outcomes (plus inbound probes),
// so there is nothing to coordinate and no split-brain arbitration — at
// worst a partitioned node routes to itself, and the ClusterUID dedupe on
// the owner makes the duplicate submission idempotent.
type peerTable struct {
	suspectAfter int
	deadAfter    int

	mu    sync.Mutex
	peers map[string]*peerEntry
}

type peerEntry struct {
	name     string
	url      string
	state    PeerState
	misses   int
	wire     PeerWire
	lastSeen time.Time
}

func newPeerTable(peers map[string]string, suspectAfter, deadAfter int) *peerTable {
	if suspectAfter < 1 {
		suspectAfter = 2
	}
	if deadAfter <= suspectAfter {
		deadAfter = suspectAfter + 2
	}
	t := &peerTable{
		suspectAfter: suspectAfter,
		deadAfter:    deadAfter,
		peers:        make(map[string]*peerEntry, len(peers)),
	}
	for name, url := range peers {
		// Peers start alive: a booting fleet must not treat slow-starting
		// members as dead before the first probe round completes.
		t.peers[name] = &peerEntry{name: name, url: url, state: PeerAlive}
	}
	return t
}

// observeSuccess records a completed exchange with peer name and the wire
// state it reported. Any state resets to alive immediately — recovery
// needs no hysteresis, only failure does.
func (t *peerTable) observeSuccess(name string, wire PeerWire) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.peers[name]
	if !ok {
		return // not in the static seed set: ignore strangers
	}
	e.state = PeerAlive
	e.misses = 0
	e.wire = wire
	e.lastSeen = time.Now()
}

// observeFailure records a failed probe and applies the hysteresis
// thresholds. It returns the resulting state so the caller can log
// transitions.
func (t *peerTable) observeFailure(name string) PeerState {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.peers[name]
	if !ok {
		return PeerDead
	}
	e.misses++
	switch {
	case e.misses >= t.deadAfter:
		e.state = PeerDead
	case e.misses >= t.suspectAfter:
		e.state = PeerSuspect
	}
	return e.state
}

// url returns the base URL for peer name ("" if unknown).
func (t *peerTable) url(name string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.peers[name]; ok {
		return e.url
	}
	return ""
}

// state returns the current state of peer name (PeerDead if unknown).
func (t *peerTable) state(name string) PeerState {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.peers[name]; ok {
		return e.state
	}
	return PeerDead
}

// notReady reports whether peer name has affirmatively advertised
// non-readiness (draining). A peer never heard from is NOT not-ready:
// during boot the fleet must route normally before the first gossip
// round lands.
func (t *peerTable) notReady(name string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.peers[name]; ok {
		return !e.lastSeen.IsZero() && !e.wire.Ready
	}
	return false
}

// names returns all configured peer names, sorted (stable probe order).
func (t *peerTable) names() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.peers))
	for name := range t.peers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// liveMembers returns the non-dead peer names plus self — the ring
// membership. Dead peers fall out, moving their key range to successors;
// suspect peers stay (hysteresis: reshuffling the ring is the expensive,
// cache-cold operation, so it waits for the stronger signal).
func (t *peerTable) liveMembers(self string) []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := []string{self}
	for name, e := range t.peers {
		if e.state != PeerDead {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// snapshot copies the peer table for /metrics, sorted by name.
func (t *peerTable) snapshot() []PeerStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]PeerStatus, 0, len(t.peers))
	for _, e := range t.peers {
		ps := PeerStatus{
			Name:         e.name,
			URL:          e.url,
			State:        e.state.String(),
			Misses:       e.misses,
			Ready:        e.wire.Ready,
			QueueDepth:   e.wire.QueueDepth,
			WorkersBusy:  e.wire.WorkersBusy,
			CacheEntries: e.wire.CacheEntries,
			CacheDigest:  e.wire.CacheDigest,
			LastSeenMS:   -1,
		}
		if !e.lastSeen.IsZero() {
			ps.LastSeenMS = time.Since(e.lastSeen).Milliseconds()
		}
		out = append(out, ps)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
