package cluster

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math/big"
	"net/http"
	"net/http/httptrace"
	"time"
)

// errChaosDrop marks a hop the fault injector swallowed; it behaves like
// any other transport error (retry, then failover).
var errChaosDrop = errors.New("cluster: hop dropped by fault injector")

// newClusterUID mints the idempotency token a routing node stamps into a
// forwarded spec. The same UID rides every retry and every failover of
// one client submission, so the owner-side dedupe collapses duplicates
// (a broken wait connection, a replayed job) into one execution.
func newClusterUID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to a time-derived token; uniqueness only has to hold
		// within the dedupe window of in-flight jobs.
		n, _ := rand.Int(rand.Reader, big.NewInt(1<<62))
		return fmt.Sprintf("u%x-%x", time.Now().UnixNano(), n)
	}
	return hex.EncodeToString(b[:])
}

// hopResult is one attempt against one target.
type hopResult struct {
	resp    *http.Response
	err     error
	reqSent bool // a connection was established before the error
}

// doHop performs one HTTP exchange with peer `to`, routed through the
// fault injector's network model first: a partitioned or dropped hop
// never touches the wire, a delayed hop sleeps before sending. reqSent
// reports whether a TCP connection was obtained — the signal that
// distinguishes "target is down, nothing happened" from "target died
// holding our job", which is what separates a plain failover from a
// replay.
func (n *Node) doHop(ctx context.Context, to, method, url string, body []byte, attempt int, timeout time.Duration) hopResult {
	if f := n.cfg.Chaos.Hop(n.cfg.Self, to, attempt); f.Drop {
		return hopResult{err: errChaosDrop}
	} else if f.Delay > 0 {
		select {
		case <-time.After(f.Delay):
		case <-ctx.Done():
			return hopResult{err: ctx.Err()}
		}
	}
	hctx, cancel := context.WithTimeout(ctx, timeout)
	sent := false
	hctx = httptrace.WithClientTrace(hctx, &httptrace.ClientTrace{
		GotConn: func(httptrace.GotConnInfo) { sent = true },
	})
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(hctx, method, url, rd)
	if err != nil {
		cancel()
		return hopResult{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Irred-Forward", "1")
	req.Header.Set("X-Irred-From", n.cfg.Self)
	resp, err := n.client.Do(req)
	if err != nil {
		cancel()
		return hopResult{err: err, reqSent: sent}
	}
	// The caller owns the body; cancel when it is drained.
	resp.Body = &cancelOnClose{ReadCloser: resp.Body, cancel: cancel}
	return hopResult{resp: resp, reqSent: sent}
}

type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelOnClose) Close() error {
	err := c.ReadCloser.Close()
	c.cancel()
	return err
}

// forward proxies a job submission along the failover order. For each
// target it retries up to HopRetries times with jittered backoff, then
// abandons the target for its ring successor. A target that died after
// receiving the request counts the eventual success as a replay: the
// job's UID makes the resubmission idempotent, and the successor either
// seeds from the replicated checkpoint or recomputes deterministically —
// the client sees neither.
//
// Terminal HTTP statuses stop the walk: 2xx and 4xx come from a healthy
// owner deciding, and retrying them elsewhere would only duplicate work
// or mask a bad request. 5xx and transport errors move on.
func (n *Node) forward(w http.ResponseWriter, r *http.Request, order []string, body []byte, key string) {
	tr := n.trace
	start := tr.Begin()
	ctx := r.Context()
	anyAccepted := false // some target got the request before dying
	failedOver := false
	for ti, target := range order {
		if target == n.cfg.Self {
			// Self as last resort: everything remote is unreachable, so
			// run the job here rather than fail the client.
			n.serveLocal(w, r, body)
			if failedOver {
				n.ctrs.failovers.Add(1)
				if anyAccepted {
					n.ctrs.replays.Add(1)
					tr.Event(spanFailover, -1, -1, -1, -1)
				}
			}
			tr.End(spanForward, -1, -1, -1, -1, start)
			return
		}
		if ti < len(order)-1 {
			if n.table.state(target) == PeerDead {
				// Known-dead: don't burn retries, move straight to the
				// successor. This is a failover, not a route-around.
				failedOver = true
				continue
			}
			if n.table.notReady(target) {
				continue // draining peer: route around it silently
			}
		}
		url := n.table.url(target) + r.URL.RequestURI()
		for attempt := 0; attempt <= n.cfg.HopRetries; attempt++ {
			if attempt > 0 {
				n.ctrs.forwardRetries.Add(1)
				select {
				case <-time.After(backoff(attempt)):
				case <-ctx.Done():
					writeGatewayError(w, "client gone during forward retry")
					return
				}
			}
			hr := n.doHop(ctx, target, http.MethodPost, url, body, attempt, n.hopTimeout(r))
			if hr.err != nil {
				if hr.reqSent {
					anyAccepted = true
				}
				if ctx.Err() != nil {
					writeGatewayError(w, "client gone during forward")
					return
				}
				continue
			}
			if hr.resp.StatusCode >= 500 {
				// The target answered but can't serve (closing, internal
				// fault). Drain and try again / fail over.
				io.Copy(io.Discard, hr.resp.Body)
				hr.resp.Body.Close()
				anyAccepted = true
				continue
			}
			// Terminal answer: relay it. reqSent errors *during* the body
			// copy mean the target died mid-response — fall through to
			// the next target with the same UID.
			if err := relayResponse(w, hr.resp, target); err != nil {
				anyAccepted = true
				// Headers already went out; nothing more we can do for
				// this client on a broken relay.
				tr.End(spanForward, -1, -1, -1, -1, start)
				return
			}
			n.ctrs.forwards.Add(1)
			if failedOver {
				n.ctrs.failovers.Add(1)
				if anyAccepted {
					n.ctrs.replays.Add(1)
					tr.Event(spanFailover, -1, -1, -1, -1)
				}
			}
			tr.End(spanForward, -1, -1, -1, -1, start)
			return
		}
		// Target exhausted its retries: mark it missed so gossip converges
		// faster, and move to the ring successor.
		n.table.observeFailure(target)
		failedOver = true
	}
	writeGatewayError(w, "no cluster member could run the job")
}

// relayResponse copies the target's answer to the client, stamping the
// serving node. Returns an error only when the copy broke mid-body.
func relayResponse(w http.ResponseWriter, resp *http.Response, target string) error {
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("X-Irred-Node", target)
	w.WriteHeader(resp.StatusCode)
	_, err := io.Copy(w, resp.Body)
	return err
}

func writeGatewayError(w http.ResponseWriter, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadGateway)
	fmt.Fprintf(w, "{\"error\":%q}\n", msg)
}

// backoff is the jittered retry delay for attempt n (1-based): equal
// jitter on an exponential base, capped well under a hop timeout so a
// full retry burst stays inside one gossip period.
func backoff(attempt int) time.Duration {
	base := 25 * time.Millisecond << (attempt - 1)
	if base > 400*time.Millisecond {
		base = 400 * time.Millisecond
	}
	half := base / 2
	j, _ := rand.Int(rand.Reader, big.NewInt(int64(half)+1))
	return half + time.Duration(j.Int64())
}

// hopTimeout picks the per-attempt timeout: waiting submissions (?wait=1)
// hold the hop open for the whole job, so they get the long timeout;
// fire-and-forget submissions answer fast or not at all.
func (n *Node) hopTimeout(r *http.Request) time.Duration {
	if r.URL.Query().Get("wait") == "1" {
		return n.cfg.WaitHopTimeout
	}
	return n.cfg.HopTimeout
}
