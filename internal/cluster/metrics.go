package cluster

import "sync/atomic"

// counters is the node's cluster-layer telemetry, all lock-free. The
// numbers answer the operational questions a coordinator-light fleet
// raises: is routing spread sane (localServes vs forwards), is the fleet
// healthy (failovers, replays), is chaos biting (forwardRetries), is any
// tenant being shaped (tenantSheds via TenantLimiter.Sheds).
type counters struct {
	forwards       atomic.Int64 // jobs proxied to a remote owner
	forwardRetries atomic.Int64 // per-hop retries during forwards
	failovers      atomic.Int64 // forwards that abandoned a target for its successor
	redirects      atomic.Int64 // 307 answers in redirect mode
	localServes    atomic.Int64 // jobs this node owned and ran itself
	replays        atomic.Int64 // jobs resubmitted after an owner died mid-job
	replicasSent   atomic.Int64 // checkpoint frames shipped to successors
	replicaSeeds   atomic.Int64 // replica GETs served to a failing-over peer
	gossipOK       atomic.Int64
	gossipFail     atomic.Int64
	tenantSheds    atomic.Int64 // admissions refused by the tenant limiter
}

// Snapshot is the cluster section of /metrics.
type Snapshot struct {
	Node           string           `json:"node"`
	RingMembers    []string         `json:"ring_members"`
	Peers          []PeerStatus     `json:"peers"`
	Forwards       int64            `json:"forwards"`
	ForwardRetries int64            `json:"forward_retries"`
	Failovers      int64            `json:"failovers"`
	Redirects      int64            `json:"redirects"`
	LocalServes    int64            `json:"local_serves"`
	Replays        int64            `json:"replays"`
	ReplicasSent   int64            `json:"replicas_sent"`
	ReplicaSeeds   int64            `json:"replica_seeds"`
	ReplicaJobs    int              `json:"replica_jobs"`
	ReplicaBytes   int64            `json:"replica_bytes"`
	ReplicaStored  int64            `json:"replica_stored"`
	ReplicaEvicted int64            `json:"replica_evicted"`
	GossipOK       int64            `json:"gossip_ok"`
	GossipFail     int64            `json:"gossip_fail"`
	TenantSheds    int64            `json:"tenant_sheds"`
	TenantShedsBy  map[string]int64 `json:"tenant_sheds_by,omitempty"`
}
