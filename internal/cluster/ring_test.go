package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// ringKeys builds K deterministic keys shaped like real routing keys.
func ringKeys(k int) []string {
	keys := make([]string, k)
	for i := range keys {
		keys[i] = fmt.Sprintf("sched:%016x/p4/k%d", i*2654435761, i%7)
	}
	return keys
}

// TestRingMovementBound is the satellite property test: on a single join
// or leave, ownership moves for at most ceil(K/N) keys, where N is the
// smaller member count — each member's fair share of the smaller fleet.
// Consistent hashing's whole point is that a membership change of 1
// reshuffles one node's share (~K/N keys), not K. The test is fully
// deterministic (fixed keys, seedless hash), so it cannot flake.
func TestRingMovementBound(t *testing.T) {
	keys := ringKeys(4000)
	for n := 2; n <= 6; n++ {
		members := make([]string, n)
		for i := range members {
			members[i] = fmt.Sprintf("node%d", i+1)
		}
		base := NewRing(members, 0)

		// Join: n -> n+1 members.
		joined := base.With(fmt.Sprintf("node%d", n+1))
		bound := (len(keys) + n - 1) / n // ceil(K/n), n = smaller fleet
		moved := 0
		for _, k := range keys {
			if base.Owner(k) != joined.Owner(k) {
				moved++
			}
		}
		if moved > bound {
			t.Errorf("join %d->%d: %d keys moved, bound ceil(K/N) = %d", n, n+1, moved, bound)
		}
		if moved == 0 {
			t.Errorf("join %d->%d: no keys moved; new member owns nothing", n, n+1)
		}

		// Leave: n -> n-1 members. Keys that stay must keep their owner.
		left := base.Without(members[n-1])
		bound = (len(keys) + n - 2) / (n - 1) // ceil(K/(n-1)), smaller fleet
		moved = 0
		for _, k := range keys {
			if base.Owner(k) != left.Owner(k) {
				moved++
				// Only keys the departed member owned may move.
				if base.Owner(k) != members[n-1] {
					t.Fatalf("leave %d->%d: key %q moved from surviving member %s",
						n, n-1, k, base.Owner(k))
				}
			}
		}
		if moved > bound {
			t.Errorf("leave %d->%d: %d keys moved, bound ceil(K/N) = %d", n, n-1, moved, bound)
		}
	}
}

// TestRingDeterministicAcrossViews checks routing is a pure function of
// the member set: rings built from differently-ordered (and duplicated)
// member slices agree on Owner and Order for every key — the property that
// lets any node route for any other without coordination.
func TestRingDeterministicAcrossViews(t *testing.T) {
	members := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	a := NewRing(members, 0)

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		shuffled := append([]string{}, members...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		// A duplicate seed entry must not change the ring.
		shuffled = append(shuffled, shuffled[0])
		b := NewRing(shuffled, 0)

		for _, k := range ringKeys(500) {
			if a.Owner(k) != b.Owner(k) {
				t.Fatalf("trial %d: Owner(%q) differs: %s vs %s", trial, k, a.Owner(k), b.Owner(k))
			}
			ao, bo := a.Order(k), b.Order(k)
			if len(ao) != len(bo) {
				t.Fatalf("trial %d: Order(%q) lengths differ", trial, k)
			}
			for i := range ao {
				if ao[i] != bo[i] {
					t.Fatalf("trial %d: Order(%q)[%d] differs: %s vs %s", trial, k, i, ao[i], bo[i])
				}
			}
		}
	}
}

// TestRingOrder checks Order lists every member exactly once, owner first.
func TestRingOrder(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"}, 0)
	for _, k := range ringKeys(100) {
		order := r.Order(k)
		if len(order) != 3 {
			t.Fatalf("Order(%q) = %v, want 3 distinct members", k, order)
		}
		if order[0] != r.Owner(k) {
			t.Fatalf("Order(%q)[0] = %s, Owner = %s", k, order[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, m := range order {
			if seen[m] {
				t.Fatalf("Order(%q) repeats %s", k, m)
			}
			seen[m] = true
		}
	}
}

// TestRingBalance sanity-checks the vnode count gives a roughly uniform
// split (no member owns more than 2x its fair share at K=4000, N=4).
func TestRingBalance(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3", "n4"}, 0)
	counts := map[string]int{}
	keys := ringKeys(4000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	fair := len(keys) / r.Len()
	for m, c := range counts {
		if c > 2*fair || c < fair/2 {
			t.Errorf("member %s owns %d keys, fair share %d", m, c, fair)
		}
	}
}

// TestRingEmptyAndSingle covers the degenerate shapes.
func TestRingEmptyAndSingle(t *testing.T) {
	empty := NewRing(nil, 0)
	if got := empty.Owner("k"); got != "" {
		t.Fatalf("empty ring Owner = %q", got)
	}
	if got := empty.Order("k"); got != nil {
		t.Fatalf("empty ring Order = %v", got)
	}
	single := NewRing([]string{"only"}, 0)
	if got := single.Owner("k"); got != "only" {
		t.Fatalf("single ring Owner = %q", got)
	}
}
