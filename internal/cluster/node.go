package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"irred/internal/fault"
	"irred/internal/obs"
	"irred/internal/service"
)

const (
	spanForward   = obs.SpanForward
	spanFailover  = obs.SpanFailover
	spanGossip    = obs.SpanGossip
	spanReplicate = obs.SpanReplicate
)

// maxForwardBody mirrors the service's own job-body bound.
const maxForwardBody = 256 << 20

// Config shapes one cluster node.
type Config struct {
	// Self is this node's name; SelfURL its advertised base URL (used in
	// redirect Locations). Peers maps every *other* node's name to its
	// base URL — the static seed set shared by the whole fleet.
	Self    string
	SelfURL string
	Peers   map[string]string

	// VNodes is the consistent-hash virtual-node count (DefaultVNodes
	// when 0).
	VNodes int

	// GossipEvery is the probe period. SuspectAfter / DeadAfter are the
	// hysteresis thresholds in consecutive missed probes.
	GossipEvery  time.Duration
	SuspectAfter int
	DeadAfter    int

	// HopTimeout bounds one non-waiting inter-node exchange;
	// WaitHopTimeout bounds a ?wait=1 forward, which stays open for the
	// whole job. HopRetries is per-target attempts beyond the first.
	HopTimeout     time.Duration
	WaitHopTimeout time.Duration
	HopRetries     int

	// Redirect switches the router from proxying to answering 307 with
	// the owner's URL in Location and X-Irred-Node.
	Redirect bool

	// Chaos, when non-nil, runs every inter-node hop through the fault
	// injector's network model (drops, delays, partitions). Nil means a
	// clean network.
	Chaos *fault.Injector

	// TenantRate/TenantBurst configure per-tenant token-bucket admission
	// (tenant = X-Irred-Tenant header). Rate 0 disables the limiter.
	TenantRate  float64
	TenantBurst int

	// ReplicaJobs/ReplicaBytes bound the checkpoint replica store.
	ReplicaJobs  int
	ReplicaBytes int64

	// Trace, when non-nil, records forward/gossip/replicate spans.
	Trace *obs.Tracer
}

func (c *Config) applyDefaults() {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.GossipEvery <= 0 {
		c.GossipEvery = time.Second
	}
	if c.SuspectAfter < 1 {
		c.SuspectAfter = 2
	}
	if c.DeadAfter <= c.SuspectAfter {
		c.DeadAfter = c.SuspectAfter + 2
	}
	if c.HopTimeout <= 0 {
		c.HopTimeout = 2 * time.Second
	}
	if c.WaitHopTimeout <= 0 {
		c.WaitHopTimeout = 5 * time.Minute
	}
	if c.HopRetries < 0 {
		c.HopRetries = 0
	} else if c.HopRetries == 0 {
		c.HopRetries = 2
	}
}

// Node is one member of a coordinator-light irredd fleet: it wraps a
// service.Service's HTTP handler with sharded routing, health gossip,
// checkpoint replication and tenant admission. Build with New, hand the
// Replicate/FetchReplica methods to service.Options, then Attach the
// service and Start the gossip loop.
type Node struct {
	cfg     Config
	table   *peerTable
	reps    *replicaStore
	tenants *TenantLimiter
	ctrs    counters
	trace   *obs.Tracer
	client  *http.Client

	svc        *service.Service
	svcHandler http.Handler

	ringMu  sync.Mutex
	ringSig string
	curRing *Ring

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds a node from cfg. The service is attached separately because
// the service needs the node's replication hooks at construction time:
//
//	n := cluster.New(cfg)
//	svc, _ := service.New(service.Options{
//	        ...,
//	        Replicate:    n.Replicate,
//	        FetchReplica: n.FetchReplica,
//	})
//	n.Attach(svc)
//	n.Start()
func New(cfg Config) (*Node, error) {
	cfg.applyDefaults()
	if cfg.Self == "" {
		return nil, errors.New("cluster: Config.Self required")
	}
	if _, dup := cfg.Peers[cfg.Self]; dup {
		return nil, errors.New("cluster: Peers must not contain Self")
	}
	return &Node{
		cfg:     cfg,
		table:   newPeerTable(cfg.Peers, cfg.SuspectAfter, cfg.DeadAfter),
		reps:    newReplicaStore(cfg.ReplicaJobs, cfg.ReplicaBytes),
		tenants: NewTenantLimiter(cfg.TenantRate, cfg.TenantBurst),
		trace:   cfg.Trace,
		client:  &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4}},
		stop:    make(chan struct{}),
	}, nil
}

// Peers returns the configured peer names, sorted.
func (n *Node) Peers() []string { return n.table.names() }

// Attach binds the local service. Must run before Start or Handler.
func (n *Node) Attach(svc *service.Service) {
	n.svc = svc
	n.svcHandler = svc.Handler()
}

// Start launches the gossip probe loop.
func (n *Node) Start() {
	n.wg.Add(1)
	go n.gossipLoop()
}

// Close stops the gossip loop. It does not touch the attached service.
func (n *Node) Close() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.wg.Wait()
}

// ring returns the consistent-hash ring over the current live membership,
// rebuilt only when membership changes.
func (n *Node) ring() *Ring {
	members := n.table.liveMembers(n.cfg.Self)
	sig := strings.Join(members, ",")
	n.ringMu.Lock()
	defer n.ringMu.Unlock()
	if n.curRing == nil || n.ringSig != sig {
		n.curRing = NewRing(members, n.cfg.VNodes)
		n.ringSig = sig
	}
	return n.curRing
}

// --- gossip -----------------------------------------------------------

func (n *Node) gossipLoop() {
	defer n.wg.Done()
	// First round immediately: a booting fleet should converge in one
	// period, not two.
	n.GossipRound()
	t := time.NewTicker(n.cfg.GossipEvery)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.GossipRound()
		}
	}
}

// GossipRound probes every configured peer once. Exported so tests can
// drive convergence deterministically instead of sleeping.
func (n *Node) GossipRound() {
	body, _ := json.Marshal(GossipMsg{From: n.cfg.Self, Self: n.selfWire()})
	for _, p := range n.table.names() {
		start := n.trace.Begin()
		hr := n.doHop(context.Background(), p, http.MethodPost,
			n.table.url(p)+"/v1/cluster/gossip", body, 0, n.cfg.HopTimeout)
		if hr.err != nil {
			n.ctrs.gossipFail.Add(1)
			n.table.observeFailure(p)
			continue
		}
		var reply GossipMsg
		err := json.NewDecoder(io.LimitReader(hr.resp.Body, 1<<20)).Decode(&reply)
		hr.resp.Body.Close()
		if err != nil || hr.resp.StatusCode != http.StatusOK {
			n.ctrs.gossipFail.Add(1)
			n.table.observeFailure(p)
			continue
		}
		n.ctrs.gossipOK.Add(1)
		n.table.observeSuccess(p, reply.Self)
		n.trace.End(spanGossip, -1, -1, -1, -1, start)
	}
}

// selfWire snapshots this node's own gossip payload.
func (n *Node) selfWire() PeerWire {
	w := PeerWire{Name: n.cfg.Self}
	if n.svc != nil {
		m := n.svc.Metrics()
		w.Ready = n.svc.Ready()
		w.QueueDepth = m.QueueDepth
		w.WorkersBusy = int(m.WorkersBusy)
		if c := n.svc.Cache(); c != nil {
			w.CacheEntries, w.CacheDigest = c.KeyDigest()
		}
	}
	return w
}

func (n *Node) handleGossip(w http.ResponseWriter, r *http.Request) {
	var msg GossipMsg
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&msg); err != nil {
		http.Error(w, "bad gossip", http.StatusBadRequest)
		return
	}
	// An inbound probe is proof of life for the sender — this heals
	// one-way probe failures (A can't reach B, B can reach A) faster
	// than waiting for A's own probes to succeed.
	n.table.observeSuccess(msg.From, msg.Self)
	writeJSON(w, http.StatusOK, GossipMsg{From: n.cfg.Self, Self: n.selfWire()})
}

// --- replication ------------------------------------------------------

// Replicate is the service.Options.Replicate hook: ship one IRCJ
// checkpoint frame for job uid to the routing key's ring successor — the
// node a failover of this job would land on. Best-effort: replication is
// a resume-latency optimization, never a correctness dependency.
func (n *Node) Replicate(uid, routingKey string, frame []byte) {
	var succ string
	for _, m := range n.ring().Order(routingKey) {
		if m != n.cfg.Self {
			succ = m
			break
		}
	}
	if succ == "" {
		return // single-node ring: local checkpointing already covers it
	}
	start := n.trace.Begin()
	hr := n.doHop(context.Background(), succ, http.MethodPost,
		n.table.url(succ)+"/v1/cluster/replica/"+url.PathEscape(uid), frame, 0, n.cfg.HopTimeout)
	if hr.err != nil {
		return
	}
	io.Copy(io.Discard, hr.resp.Body)
	hr.resp.Body.Close()
	if hr.resp.StatusCode < 300 {
		n.ctrs.replicasSent.Add(1)
		n.trace.End(spanReplicate, -1, -1, -1, -1, start)
	}
}

// FetchReplica is the service.Options.FetchReplica hook: return the
// locally stored replica frame for uid, if any.
func (n *Node) FetchReplica(uid string) []byte {
	frame := n.reps.get(uid)
	if frame != nil {
		n.ctrs.replicaSeeds.Add(1)
	}
	return frame
}

func (n *Node) handleReplicaPut(w http.ResponseWriter, r *http.Request) {
	uid := r.PathValue("uid")
	frame, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxForwardBody))
	if err != nil {
		http.Error(w, "replica body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if !n.reps.put(uid, frame) {
		http.Error(w, "replica too large", http.StatusRequestEntityTooLarge)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (n *Node) handleReplicaGet(w http.ResponseWriter, r *http.Request) {
	frame := n.reps.get(r.PathValue("uid"))
	if frame == nil {
		http.Error(w, "no replica", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(frame)
}

func (n *Node) handleReplicaDelete(w http.ResponseWriter, r *http.Request) {
	n.reps.drop(r.PathValue("uid"))
	w.WriteHeader(http.StatusNoContent)
}

// --- routing ----------------------------------------------------------

// Handler returns the node's HTTP surface: the full service API with
// POST /v1/jobs wrapped by the router, plus the cluster control plane.
//
//	POST /v1/cluster/gossip        health exchange (internal)
//	POST /v1/cluster/replica/{uid} store a checkpoint replica (internal)
//	GET  /v1/cluster/replica/{uid} fetch a replica
//	DELETE /v1/cluster/replica/{uid}
//	POST /v1/cluster/route         debug: spec -> {key, owner, order}
//	GET  /metrics                  service counters + "cluster" section
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cluster/gossip", n.handleGossip)
	mux.HandleFunc("POST /v1/cluster/replica/{uid}", n.handleReplicaPut)
	mux.HandleFunc("GET /v1/cluster/replica/{uid}", n.handleReplicaGet)
	mux.HandleFunc("DELETE /v1/cluster/replica/{uid}", n.handleReplicaDelete)
	mux.HandleFunc("POST /v1/cluster/route", n.handleRoute)
	mux.HandleFunc("GET /metrics", n.handleMetrics)
	mux.HandleFunc("POST /v1/jobs", n.handleSubmit)
	mux.Handle("/", n.svcHandler)
	return mux
}

func (n *Node) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// Forwarded requests are already routed and already admitted by the
	// node the client spoke to: serve locally, never re-route (no loops).
	if r.Header.Get("X-Irred-Forward") == "1" {
		n.ctrs.localServes.Add(1)
		n.svcHandler.ServeHTTP(w, r)
		return
	}
	if ok, retry := n.tenants.Allow(r.Header.Get("X-Irred-Tenant")); !ok {
		n.ctrs.tenantSheds.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		http.Error(w, `{"error":"tenant rate limit"}`, http.StatusTooManyRequests)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxForwardBody))
	if err != nil {
		http.Error(w, `{"error":"reading job spec"}`, http.StatusBadRequest)
		return
	}
	var spec service.JobSpec
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		http.Error(w, `{"error":"decoding job spec: `+err.Error()+`"}`, http.StatusBadRequest)
		return
	}
	key := spec.RoutingKey()
	order := n.ring().Order(key)
	if len(order) == 0 || (len(order) == 1 && order[0] == n.cfg.Self) {
		n.serveLocal(w, r, body)
		return
	}
	if order[0] == n.cfg.Self {
		n.serveLocal(w, r, body)
		return
	}
	if n.cfg.Redirect {
		// Redirect mode: tell the client who owns the key and let it
		// re-POST there (Go's http.Client follows 307 with GetBody).
		n.ctrs.redirects.Add(1)
		w.Header().Set("Location", n.table.url(order[0])+r.URL.RequestURI())
		w.Header().Set("X-Irred-Node", order[0])
		w.WriteHeader(http.StatusTemporaryRedirect)
		return
	}
	// Stamp the idempotency UID before the first hop so every retry and
	// every failover of this submission dedupes on the owner side.
	if spec.ClusterUID == "" {
		spec.ClusterUID = newClusterUID()
		if stamped, err := json.Marshal(spec); err == nil {
			body = stamped
		}
	}
	n.forward(w, r, order, body, key)
}

// serveLocal runs the (possibly restamped) submission on the attached
// service.
func (n *Node) serveLocal(w http.ResponseWriter, r *http.Request, body []byte) {
	n.ctrs.localServes.Add(1)
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(bytes.NewReader(body))
	r2.ContentLength = int64(len(body))
	w.Header().Set("X-Irred-Node", n.cfg.Self)
	n.svcHandler.ServeHTTP(w, r2)
}

// handleRoute is the routing debug endpoint: POST a JobSpec, get back the
// routing key, the owner, and the full failover order under the current
// membership view. CI uses it to find which node to kill.
func (n *Node) handleRoute(w http.ResponseWriter, r *http.Request) {
	var spec service.JobSpec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxForwardBody)).Decode(&spec); err != nil {
		http.Error(w, `{"error":"decoding job spec"}`, http.StatusBadRequest)
		return
	}
	key := spec.RoutingKey()
	ring := n.ring()
	writeJSON(w, http.StatusOK, map[string]any{
		"key":     key,
		"owner":   ring.Owner(key),
		"order":   ring.Order(key),
		"members": ring.Members(),
	})
}

// ClusterSnapshot assembles the cluster section of /metrics.
func (n *Node) ClusterSnapshot() Snapshot {
	jobs, bts, stored, evicted := n.reps.statsSnapshot()
	return Snapshot{
		Node:           n.cfg.Self,
		RingMembers:    n.ring().Members(),
		Peers:          n.table.snapshot(),
		Forwards:       n.ctrs.forwards.Load(),
		ForwardRetries: n.ctrs.forwardRetries.Load(),
		Failovers:      n.ctrs.failovers.Load(),
		Redirects:      n.ctrs.redirects.Load(),
		LocalServes:    n.ctrs.localServes.Load(),
		Replays:        n.ctrs.replays.Load(),
		ReplicasSent:   n.ctrs.replicasSent.Load(),
		ReplicaSeeds:   n.ctrs.replicaSeeds.Load(),
		ReplicaJobs:    jobs,
		ReplicaBytes:   bts,
		ReplicaStored:  stored,
		ReplicaEvicted: evicted,
		GossipOK:       n.ctrs.gossipOK.Load(),
		GossipFail:     n.ctrs.gossipFail.Load(),
		TenantSheds:    n.ctrs.tenantSheds.Load(),
		TenantShedsBy:  n.tenants.Sheds(),
	}
}

// handleMetrics merges the service snapshot (unchanged shape — existing
// dashboards and CI jq paths keep working) with a "cluster" section.
func (n *Node) handleMetrics(w http.ResponseWriter, r *http.Request) {
	merged := map[string]any{}
	if n.svc != nil {
		raw, err := json.Marshal(n.svc.Metrics())
		if err == nil {
			json.Unmarshal(raw, &merged)
		}
	}
	merged["cluster"] = n.ClusterSnapshot()
	writeJSON(w, http.StatusOK, merged)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
