package cluster

import (
	"math"
	"sync"
	"time"
)

// TenantLimiter is per-tenant token-bucket admission, sitting in front of
// the service's queue-full 429 shedding. The service protects the node
// (bounded queue); the limiter protects tenants from each other — one
// chatty tenant drains only its own bucket, and its 429s carry a
// Retry-After computed from its own refill rate.
//
// Buckets are created on first sight of a tenant and refilled lazily on
// each Allow call (no background goroutine). An idle tenant's bucket
// eventually refills to burst and is dropped once full and stale, so the
// map cannot grow without bound under tenant-id churn.
type TenantLimiter struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*tenantBucket
	sheds   map[string]int64 // per-tenant 429 count, for /metrics
}

type tenantBucket struct {
	tokens float64
	last   time.Time
}

// NewTenantLimiter builds a limiter refilling rate tokens/second with the
// given burst capacity per tenant. Nil (unlimited) when rate <= 0.
func NewTenantLimiter(rate float64, burst int) *TenantLimiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &TenantLimiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*tenantBucket),
		sheds:   make(map[string]int64),
	}
}

// Allow takes one token from tenant's bucket. When the bucket is empty it
// reports false and the number of whole seconds until a token is
// available (at least 1) — the Retry-After value. Safe on a nil limiter:
// everything is admitted.
func (l *TenantLimiter) Allow(tenant string) (ok bool, retryAfter int) {
	if l == nil {
		return true, 0
	}
	now := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[tenant]
	if b == nil {
		b = &tenantBucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		l.sweepLocked(now)
		return true, 0
	}
	l.sheds[tenant]++
	need := (1 - b.tokens) / l.rate
	return false, int(math.Ceil(math.Max(need, 1)))
}

// sweepLocked drops buckets that have been idle long enough to be full
// again (they would be recreated identically), keeping the map bounded.
// Runs opportunistically and only when the map has grown.
func (l *TenantLimiter) sweepLocked(now time.Time) {
	if len(l.buckets) < 1024 {
		return
	}
	idle := time.Duration(float64(time.Second) * (l.burst/l.rate + 1))
	for id, b := range l.buckets {
		if now.Sub(b.last) > idle {
			delete(l.buckets, id)
		}
	}
}

// Sheds snapshots the per-tenant shed counts.
func (l *TenantLimiter) Sheds() map[string]int64 {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]int64, len(l.sheds))
	for id, n := range l.sheds {
		out[id] = n
	}
	return out
}
