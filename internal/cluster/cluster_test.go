package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"testing"
	"time"

	"irred/internal/fault"
	"irred/internal/service"
)

// testNode is one in-process fleet member: a real TCP listener (so a
// "SIGKILL" is an abrupt http.Server.Close that snaps live connections,
// exactly what a killed process does to its peers) wrapping a full
// service + cluster node.
type testNode struct {
	name  string
	url   string
	node  *Node
	svc   *service.Service
	srv   *http.Server
	chaos *fault.Injector
}

// startFleet boots a fleet of len(names) nodes on loopback listeners.
// Gossip loops are NOT started: tests drive GossipRound() by hand so
// every state transition is deterministic.
func startFleet(t *testing.T, names []string, mkCfg func(name string, cfg *Config), mkOpt func(name string, opt *service.Options)) map[string]*testNode {
	t.Helper()
	fleet := make(map[string]*testNode, len(names))
	lns := make(map[string]net.Listener, len(names))
	urls := make(map[string]string, len(names))
	for _, name := range names {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[name] = ln
		urls[name] = "http://" + ln.Addr().String()
	}
	for _, name := range names {
		peers := make(map[string]string, len(names)-1)
		for _, p := range names {
			if p != name {
				peers[p] = urls[p]
			}
		}
		// Zero-value injector: inert until a test installs a partition.
		inj := &fault.Injector{}
		cfg := Config{
			Self:    name,
			SelfURL: urls[name],
			Peers:   peers,
			// Fast hysteresis and tight hops: tests must converge in
			// manual rounds, not wall-clock minutes.
			GossipEvery:    time.Hour, // never fires; rounds are manual
			SuspectAfter:   2,
			DeadAfter:      4,
			HopTimeout:     3 * time.Second,
			WaitHopTimeout: 60 * time.Second,
			HopRetries:     1,
			Chaos:          inj,
		}
		if mkCfg != nil {
			mkCfg(name, &cfg)
		}
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		opt := service.Options{
			Workers:      2,
			CacheDir:     t.TempDir(),
			AllowChaos:   true,
			Replicate:    n.Replicate,
			FetchReplica: n.FetchReplica,
		}
		if mkOpt != nil {
			mkOpt(name, &opt)
		}
		svc, err := service.New(opt)
		if err != nil {
			t.Fatal(err)
		}
		n.Attach(svc)
		srv := &http.Server{Handler: n.Handler()}
		go srv.Serve(lns[name])
		tn := &testNode{name: name, url: urls[name], node: n, svc: svc, srv: srv, chaos: inj}
		fleet[name] = tn
		t.Cleanup(func() {
			tn.srv.Close()
			tn.svc.Close()
			tn.node.Close()
		})
	}
	return fleet
}

// clusterRawSpec builds a raw job with integral weights (bit-exact
// against the sequential reference regardless of summation order).
func clusterRawSpec(seed int64, iters, elems, steps int) service.JobSpec {
	rng := rand.New(rand.NewSource(seed))
	ind := make([][]int32, 2)
	for r := range ind {
		ind[r] = make([]int32, iters)
		for i := range ind[r] {
			ind[r][i] = int32(rng.Intn(elems))
		}
	}
	w := make([]float64, iters)
	for i := range w {
		w[i] = float64(1 + rng.Intn(8))
	}
	return service.JobSpec{
		NumIters: iters,
		NumElems: elems,
		Ind:      ind,
		Contrib:  &service.ContribSpec{Kind: "weights", Weights: w},
		P:        4, K: 2, Steps: steps,
	}
}

// routeFor asks node for the routing decision on spec.
func routeFor(t *testing.T, nodeURL string, spec service.JobSpec) (key, owner string, order []string) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(nodeURL+"/v1/cluster/route", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Key   string   `json:"key"`
		Owner string   `json:"owner"`
		Order []string `json:"order"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Key, out.Owner, out.Order
}

// submitWait POSTs spec to nodeURL with ?wait=1 and decodes the terminal
// status. hdr (optional) adds request headers.
func submitWait(t *testing.T, nodeURL string, spec service.JobSpec, hdr map[string]string) (service.JobStatus, *http.Response) {
	t.Helper()
	body, _ := json.Marshal(spec)
	req, err := http.NewRequest(http.MethodPost, nodeURL+"/v1/jobs?wait=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	client := &http.Client{Timeout: 90 * time.Second}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit to %s: HTTP %d: %s", nodeURL, resp.StatusCode, raw)
	}
	var st service.JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("decoding job status: %v (%s)", err, raw)
	}
	return st, resp
}

func checkResult(t *testing.T, spec service.JobSpec, st service.JobStatus) {
	t.Helper()
	if st.State != service.StateDone {
		t.Fatalf("job state %s: %s", st.State, st.Error)
	}
	want, err := spec.SequentialRaw()
	if err != nil {
		t.Fatal(err)
	}
	if service.HashResult(st.Result) != service.HashResult(want) {
		t.Fatal("cluster result differs from sequential reference")
	}
}

// TestClusterRoutesToOwner submits the same job through all three nodes:
// every submission must land on (and only on) the routing key's owner, so
// the owner's schedule cache takes every hit — the natural cache sharding
// the ring exists for.
func TestClusterRoutesToOwner(t *testing.T) {
	fleet := startFleet(t, []string{"n1", "n2", "n3"}, nil, nil)
	spec := clusterRawSpec(7, 1500, 211, 2)
	_, owner, _ := routeFor(t, fleet["n1"].url, spec)
	if owner == "" {
		t.Fatal("no owner")
	}
	for _, name := range []string{"n1", "n2", "n3"} {
		st, resp := submitWait(t, fleet[name].url, spec, nil)
		checkResult(t, spec, st)
		if got := resp.Header.Get("X-Irred-Node"); got != owner {
			t.Fatalf("submission via %s served by %q, owner is %q", name, got, owner)
		}
	}
	// The owner ran all three; everyone else only forwarded.
	for name, tn := range fleet {
		snap := tn.node.ClusterSnapshot()
		if name == owner {
			if snap.LocalServes != 3 {
				t.Fatalf("owner local serves = %d, want 3", snap.LocalServes)
			}
			cs := tn.svc.Cache().Stats()
			if cs.Hits < 2 {
				t.Fatalf("owner cache hits = %d, want >= 2 (sharding broke)", cs.Hits)
			}
		} else {
			if snap.Forwards != 1 {
				t.Fatalf("%s forwards = %d, want 1", name, snap.Forwards)
			}
			if cs := tn.svc.Cache().Stats(); cs.Entries != 0 {
				t.Fatalf("%s cache has %d entries, want 0 (job leaked off-owner)", name, cs.Entries)
			}
		}
	}
}

// TestClusterOwnerKillFailoverReplay is the tentpole scenario: the owner
// dies mid-job (abrupt connection snap, the in-process stand-in for
// SIGKILL) and the routing node replays the job on the ring successor,
// which seeds from the replicated IRCJ checkpoint and resumes mid-sweep.
// The client sees one successful response and the exact sequential
// result; the only traces are the failover/replay counters.
func TestClusterOwnerKillFailoverReplay(t *testing.T) {
	fleet := startFleet(t, []string{"n1", "n2", "n3"}, nil, nil)
	spec := clusterRawSpec(11, 3000, 257, 40)
	spec.Engine = "distributed"
	spec.CheckpointEvery = 1
	// Stall chaos paces the job so the kill reliably lands mid-flight.
	spec.Chaos = &fault.Spec{StallRate: 0.5, StallMS: 5, Seed: 11}

	_, owner, order := routeFor(t, fleet["n1"].url, spec)
	// Route via a non-owner so the kill severs a real inter-node forward.
	router := ""
	for _, name := range []string{"n1", "n2", "n3"} {
		if name != owner {
			router = name
			break
		}
	}
	successor := ""
	for _, m := range order {
		if m != owner {
			successor = m
			break
		}
	}

	type outcome struct {
		st   service.JobStatus
		resp *http.Response
	}
	done := make(chan outcome, 1)
	go func() {
		st, resp := submitWait(t, fleet[router].url, spec, nil)
		done <- outcome{st, resp}
	}()

	// Wait until the owner has streamed at least two checkpoint frames to
	// the successor: the job is provably mid-sweep with a replica in place.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if jobs, _, stored, _ := fleet[successor].node.reps.statsSnapshot(); jobs >= 1 && stored >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint replicas reached the successor")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// SIGKILL the owner: snap the listener and every live connection.
	fleet[owner].srv.Close()

	out := <-done
	checkResult(t, spec, out.st)
	if got := out.resp.Header.Get("X-Irred-Node"); got == owner {
		t.Fatalf("served by the killed owner %q", got)
	}

	snap := fleet[router].node.ClusterSnapshot()
	if snap.Failovers < 1 {
		t.Fatalf("router failovers = %d, want >= 1", snap.Failovers)
	}
	if snap.Replays < 1 {
		t.Fatalf("router replays = %d, want >= 1", snap.Replays)
	}
	// The successor seeded the replayed job from the replica — the resume
	// was mid-sweep, not a from-scratch recompute.
	if s := fleet[successor].node.ClusterSnapshot(); s.ReplicaSeeds < 1 {
		t.Fatalf("successor replica seeds = %d, want >= 1", s.ReplicaSeeds)
	}
}

// TestClusterPartitionFailoverAndGossip drives the deterministic network
// chaos path: a structural partition between the routing node and the
// owner forces a failover (every hop to the owner is swallowed before the
// wire), and manual gossip rounds walk the partitioned peer through
// alive -> suspect -> dead with the documented hysteresis, shrinking the
// ring — then healing the partition resurrects it.
func TestClusterPartitionFailoverAndGossip(t *testing.T) {
	fleet := startFleet(t, []string{"n1", "n2", "n3"}, nil, nil)
	// Find a spec n1 does not own, so n1 must cross the partition.
	var spec service.JobSpec
	var owner string
	for seed := int64(1); ; seed++ {
		spec = clusterRawSpec(seed, 1200, 199, 2)
		_, owner, _ = routeFor(t, fleet["n1"].url, spec)
		if owner != "n1" {
			break
		}
	}
	fleet["n1"].chaos.Partition("n1", owner)

	// Gossip hysteresis first (nothing else has probed yet): 1 miss
	// alive, 2-3 suspect, 4 dead.
	wantStates := []string{"alive", "suspect", "suspect", "dead"}
	for round, want := range wantStates {
		fleet["n1"].node.GossipRound()
		got := peerState(fleet["n1"].node, owner)
		if got != want {
			t.Fatalf("after round %d: %s is %q, want %q", round+1, owner, got, want)
		}
	}
	if members := fleet["n1"].node.ring().Members(); len(members) != 2 {
		t.Fatalf("ring after death = %v, want 2 members", members)
	}
	// Recovery: one healed round resurrects the peer, no hysteresis.
	fleet["n1"].chaos.Heal("n1", owner)
	fleet["n1"].node.GossipRound()
	if got := peerState(fleet["n1"].node, owner); got != "alive" {
		t.Fatalf("after heal: %s is %q, want alive", owner, got)
	}
	if members := fleet["n1"].node.ring().Members(); len(members) != 3 {
		t.Fatalf("ring after heal = %v, want 3 members", members)
	}

	// Re-partition and submit: every hop to the owner is swallowed, the
	// router fails over, the client still gets the exact result.
	fleet["n1"].chaos.Partition("n1", owner)
	st, resp := submitWait(t, fleet["n1"].url, spec, nil)
	checkResult(t, spec, st)
	if got := resp.Header.Get("X-Irred-Node"); got == owner {
		t.Fatalf("partitioned owner %q served the job", owner)
	}
	snap := fleet["n1"].node.ClusterSnapshot()
	if snap.Failovers < 1 {
		t.Fatalf("failovers = %d, want >= 1", snap.Failovers)
	}
	if c := fleet["n1"].chaos.Counters(); c.Partitions < 1 {
		t.Fatalf("partition blocks = %d, want >= 1", c.Partitions)
	}
}

func peerState(n *Node, peer string) string {
	for _, ps := range n.table.snapshot() {
		if ps.Name == peer {
			return ps.State
		}
	}
	return ""
}

// TestClusterDrainRouteAround: a draining owner (readyz false, still
// accepting) is routed around, so rolling restarts stay client-invisible.
func TestClusterDrainRouteAround(t *testing.T) {
	fleet := startFleet(t, []string{"n1", "n2", "n3"}, nil, nil)
	var spec service.JobSpec
	var owner string
	for seed := int64(1); ; seed++ {
		spec = clusterRawSpec(seed, 1200, 199, 2)
		_, owner, _ = routeFor(t, fleet["n1"].url, spec)
		if owner != "n1" {
			break
		}
	}
	fleet[owner].svc.BeginDrain()
	// One gossip round teaches n1 the owner is not ready.
	fleet["n1"].node.GossipRound()

	st, resp := submitWait(t, fleet["n1"].url, spec, nil)
	checkResult(t, spec, st)
	if got := resp.Header.Get("X-Irred-Node"); got == owner {
		t.Fatalf("draining owner %q served the job", owner)
	}
	if serves := fleet[owner].node.ClusterSnapshot().LocalServes; serves != 0 {
		t.Fatalf("draining owner ran %d jobs, want 0", serves)
	}
}

// TestClusterTenantAdmission: the per-tenant token bucket sheds the
// over-budget tenant with 429 + Retry-After, leaves other tenants alone,
// and never applies to forwarded (already-admitted) requests.
func TestClusterTenantAdmission(t *testing.T) {
	fleet := startFleet(t, []string{"solo"}, func(name string, cfg *Config) {
		cfg.TenantRate = 0.5
		cfg.TenantBurst = 2
	}, nil)
	url := fleet["solo"].url
	spec := clusterRawSpec(3, 800, 101, 1)
	body, _ := json.Marshal(spec)

	post := func(hdr map[string]string) *http.Response {
		req, _ := http.NewRequest(http.MethodPost, url+"/v1/jobs", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	for i := 0; i < 2; i++ {
		if resp := post(map[string]string{"X-Irred-Tenant": "acme"}); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("request %d: HTTP %d, want 202", i, resp.StatusCode)
		}
	}
	shed := post(map[string]string{"X-Irred-Tenant": "acme"})
	if shed.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget request: HTTP %d, want 429", shed.StatusCode)
	}
	if shed.Header.Get("Retry-After") == "" {
		t.Fatal("tenant shed missing Retry-After")
	}
	// Another tenant is unaffected.
	if resp := post(map[string]string{"X-Irred-Tenant": "other"}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fresh tenant: HTTP %d, want 202", resp.StatusCode)
	}
	// Forwarded requests bypass admission (the first hop already paid).
	if resp := post(map[string]string{"X-Irred-Tenant": "acme", "X-Irred-Forward": "1"}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("forwarded request: HTTP %d, want 202 (admission must not double-charge)", resp.StatusCode)
	}
	snap := fleet["solo"].node.ClusterSnapshot()
	if snap.TenantSheds != 1 || snap.TenantShedsBy["acme"] != 1 {
		t.Fatalf("tenant sheds = %d (%v), want 1 for acme", snap.TenantSheds, snap.TenantShedsBy)
	}
}

// TestClusterRedirectMode: in redirect mode a non-owner answers 307 with
// the owner's Location and X-Irred-Node; Go's http.Client re-POSTs there
// transparently and the job completes on the owner.
func TestClusterRedirectMode(t *testing.T) {
	fleet := startFleet(t, []string{"n1", "n2"}, func(name string, cfg *Config) {
		cfg.Redirect = true
	}, nil)
	var spec service.JobSpec
	var owner string
	for seed := int64(1); ; seed++ {
		spec = clusterRawSpec(seed, 1200, 199, 2)
		_, owner, _ = routeFor(t, fleet["n1"].url, spec)
		if owner == "n2" {
			break
		}
	}
	// First, observe the bare 307 without following it.
	body, _ := json.Marshal(spec)
	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse }}
	req, _ := http.NewRequest(http.MethodPost, fleet["n1"].url+"/v1/jobs?wait=1", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	resp, err := noFollow.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("redirect mode answered HTTP %d, want 307", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Irred-Node"); got != owner {
		t.Fatalf("redirect X-Irred-Node = %q, want %q", got, owner)
	}
	if loc := resp.Header.Get("Location"); loc == "" {
		t.Fatal("redirect missing Location")
	}
	// Then let the default client follow it end to end.
	st, final := submitWait(t, fleet["n1"].url, spec, nil)
	checkResult(t, spec, st)
	if got := final.Header.Get("X-Irred-Node"); got != owner {
		t.Fatalf("followed redirect served by %q, want %q", got, owner)
	}
	if snap := fleet["n1"].node.ClusterSnapshot(); snap.Redirects < 2 {
		t.Fatalf("redirects = %d, want >= 2", snap.Redirects)
	}
}

// TestClusterMetricsShape: /metrics keeps the flat service fields (jq
// paths in CI and dashboards must not break) and adds the cluster
// section.
func TestClusterMetricsShape(t *testing.T) {
	fleet := startFleet(t, []string{"m1", "m2"}, nil, nil)
	fleet["m1"].node.GossipRound()
	resp, err := http.Get(fleet["m1"].url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"jobs", "cache", "queue_depth"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("service metric %q missing from merged /metrics", key)
		}
	}
	cl, ok := m["cluster"].(map[string]any)
	if !ok {
		t.Fatal("cluster section missing from /metrics")
	}
	if cl["node"] != "m1" {
		t.Fatalf("cluster.node = %v", cl["node"])
	}
	peers, ok := cl["peers"].([]any)
	if !ok || len(peers) != 1 {
		t.Fatalf("cluster.peers = %v, want 1 entry", cl["peers"])
	}
	p := peers[0].(map[string]any)
	if p["name"] != "m2" || p["state"] != "alive" {
		t.Fatalf("peer row = %v", p)
	}
	if fmt.Sprint(p["ready"]) != "true" {
		t.Fatalf("peer m2 not ready in gossip view: %v", p)
	}
}
