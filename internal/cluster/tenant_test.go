package cluster

import "testing"

func TestTenantLimiterBurstAndShed(t *testing.T) {
	// 1 token/s, burst 3: the first three requests pass, the fourth sheds
	// with a positive Retry-After (the refill is far slower than the test).
	l := NewTenantLimiter(1, 3)
	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("acme"); !ok {
			t.Fatalf("request %d shed within burst", i)
		}
	}
	ok, retry := l.Allow("acme")
	if ok {
		t.Fatal("4th request admitted past burst")
	}
	if retry < 1 {
		t.Fatalf("Retry-After = %d, want >= 1", retry)
	}
	// Tenants are isolated: a different tenant still has a full bucket.
	if ok, _ := l.Allow("other"); !ok {
		t.Fatal("fresh tenant shed by a different tenant's exhaustion")
	}
	sheds := l.Sheds()
	if sheds["acme"] != 1 || sheds["other"] != 0 {
		t.Fatalf("sheds = %v, want acme:1", sheds)
	}
}

func TestTenantLimiterNilAndDisabled(t *testing.T) {
	var nilL *TenantLimiter
	if ok, _ := nilL.Allow("x"); !ok {
		t.Fatal("nil limiter must admit everything")
	}
	if nilL.Sheds() != nil {
		t.Fatal("nil limiter Sheds must be nil")
	}
	if NewTenantLimiter(0, 5) != nil {
		t.Fatal("rate <= 0 must build an unlimited (nil) limiter")
	}
}
