package cluster

import (
	"container/list"
	"sync"
)

// replicaStore is the bounded in-memory home for checkpoint frames pushed
// by peers. When a node owns a job it writes IRCJ checkpoint frames
// locally (crash-restart safety, as before) and ships each frame to the
// routing key's ring successor — which is exactly the node the router
// fails over to when the owner dies. The successor seeds the replayed job
// from the replica and resumes mid-sweep instead of recomputing from
// scratch; if the replica is missing (ring moved, store evicted), the
// replay still succeeds from the spec because jobs are deterministic.
// Replication is therefore a latency optimization with a correct fallback,
// never a correctness dependency.
//
// Frames are whole-checkpoint snapshots, so the newest frame per job
// simply replaces the previous one. Eviction is LRU over jobs, bounded by
// both job count and total bytes.
type replicaStore struct {
	maxJobs  int
	maxBytes int64

	mu      sync.Mutex
	ll      *list.List // front = most recently written
	items   map[string]*list.Element
	bytes   int64
	stored  int64 // frames ever accepted
	evicted int64
}

type replicaEntry struct {
	uid   string
	frame []byte
}

func newReplicaStore(maxJobs int, maxBytes int64) *replicaStore {
	if maxJobs < 1 {
		maxJobs = 64
	}
	if maxBytes < 1 {
		maxBytes = 64 << 20
	}
	return &replicaStore{
		maxJobs:  maxJobs,
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// put stores (replacing) the frame for uid. Oversized frames are refused
// rather than evicting the whole store.
func (s *replicaStore) put(uid string, frame []byte) bool {
	if int64(len(frame)) > s.maxBytes {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[uid]; ok {
		e := el.Value.(*replicaEntry)
		s.bytes += int64(len(frame)) - int64(len(e.frame))
		e.frame = frame
		s.ll.MoveToFront(el)
	} else {
		s.items[uid] = s.ll.PushFront(&replicaEntry{uid: uid, frame: frame})
		s.bytes += int64(len(frame))
	}
	s.stored++
	for s.ll.Len() > s.maxJobs || s.bytes > s.maxBytes {
		el := s.ll.Back()
		e := el.Value.(*replicaEntry)
		s.ll.Remove(el)
		delete(s.items, e.uid)
		s.bytes -= int64(len(e.frame))
		s.evicted++
	}
	return true
}

// get returns the stored frame for uid, nil if absent. The returned slice
// is the stored one; callers must not mutate it (the service decodes it
// read-only).
func (s *replicaStore) get(uid string) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[uid]; ok {
		return el.Value.(*replicaEntry).frame
	}
	return nil
}

// drop removes uid (called when a job finishes: the replica is dead
// weight once a result exists).
func (s *replicaStore) drop(uid string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[uid]; ok {
		e := el.Value.(*replicaEntry)
		s.ll.Remove(el)
		delete(s.items, e.uid)
		s.bytes -= int64(len(e.frame))
	}
}

// stats returns (resident jobs, resident bytes, frames ever stored,
// evictions).
func (s *replicaStore) statsSnapshot() (jobs int, bytes, stored, evicted int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len(), s.bytes, s.stored, s.evicted
}
