// Package cluster turns a set of independent irredd nodes into a
// coordinator-light fleet. There is no leader and no external metadata
// store: every node holds the same static seed peer set, learns liveness
// through health gossip, and routes jobs by consistent hashing on the
// job's schedule-cache routing key. Because the hash key *is* the
// inspector.ScheduleKey, the LRU+disk schedule cache shards naturally —
// repeated submissions of the same indirection land on the same node and
// hit its warm cache, no matter which node the client happened to talk to.
//
// The pieces:
//
//	ring.go    consistent-hash ring (vnodes, deterministic ownership)
//	gossip.go  peer health state machine + probe loop + wire format
//	tenant.go  per-tenant token-bucket admission
//	replica.go bounded checkpoint-frame replica store
//	router.go  proxy/redirect routing with retry, backoff and failover
//	node.go    ties the above around a service.Service's HTTP handler
package cluster

import (
	"fmt"
	"sort"
)

// DefaultVNodes is the virtual-node count per member. 160 points per node
// keeps the ownership split within a few percent of uniform for small
// fleets, which is what makes the join/leave movement bound (≤ ceil(K/N))
// hold in practice and the cache sharding even.
const DefaultVNodes = 160

// Ring is an immutable consistent-hash ring over a set of member names.
// Build one with NewRing; derive post-join/post-leave views with With and
// Without. Immutability is what makes routing deterministic across nodes:
// two nodes with the same member set compute byte-identical rings.
type Ring struct {
	vnodes  int
	members []string // sorted, distinct
	points  []ringPoint
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds a ring over members with vnodes virtual points each
// (DefaultVNodes when vnodes <= 0). Duplicate names collapse; order of the
// input slice is irrelevant.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(members))
	var distinct []string
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		distinct = append(distinct, m)
	}
	sort.Strings(distinct)
	r := &Ring{
		vnodes:  vnodes,
		members: distinct,
		points:  make([]ringPoint, 0, len(distinct)*vnodes),
	}
	for _, m := range distinct {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash:   fnv64(fmt.Sprintf("%s#%d", m, i)),
				member: m,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (astronomically rare) break by name so every node
		// still agrees on ownership.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the member names, sorted. The slice is shared; callers
// must not mutate it.
func (r *Ring) Members() []string { return r.members }

// Len reports the member count.
func (r *Ring) Len() int { return len(r.members) }

// Owner returns the member owning key: the first ring point at or after
// the key's hash, wrapping. Empty string on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(fnv64(key))].member
}

// Order returns every member in failover order for key: the owner first,
// then each distinct member by ring-successor position. A job that cannot
// run on Order(key)[0] replays on Order(key)[1], and so on — the same
// deterministic list on every node that shares the member view.
func (r *Ring) Order(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.members))
	seen := make(map[string]bool, len(r.members))
	start := r.search(fnv64(key))
	for i := 0; i < len(r.points) && len(out) < len(r.members); i++ {
		m := r.points[(start+i)%len(r.points)].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// search returns the index of the first point with hash >= h, wrapping to 0.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// With returns a new ring with member added.
func (r *Ring) With(member string) *Ring {
	return NewRing(append(append([]string{}, r.members...), member), r.vnodes)
}

// Without returns a new ring with member removed.
func (r *Ring) Without(member string) *Ring {
	kept := make([]string, 0, len(r.members))
	for _, m := range r.members {
		if m != member {
			kept = append(kept, m)
		}
	}
	return NewRing(kept, r.vnodes)
}

// fnv64 is FNV-1a over s followed by a splitmix64-style finalizer. Plain
// FNV clusters on short structured strings ("node1#0", "node1#1", ...),
// which skews vnode placement badly; the finalizer restores avalanche.
// Both ring points and routing keys hash with it, so ownership is a pure
// function of (member set, vnodes, key) — no per-process seed, no map
// iteration order, nothing node-local.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
