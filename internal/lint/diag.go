// Package lint is the static-analysis subsystem for IRL programs and
// LightInspector schedules: a typed diagnostics engine (stable codes,
// severities, source positions, human and JSON renderers), a registry of
// analyzer passes over the IRL AST and the Section 4 analysis results, and
// a schedule verifier that checks a whole machine's LightInspector output
// against the paper's systolic invariants.
//
// The paper's central claim is that legality is decided *before* the loop
// runs: phase assignment plus the Section 4 restrictions (associative and
// commutative updates only, a single level of indirection) guarantee
// race-free execution without a communicating inspector. This package makes
// those checks first-class and reusable — compiler drivers refuse to emit
// code on Error findings, tooling consumes the JSON form, and the verifier
// proves a generated phase program can never produce a cross-processor
// write conflict.
package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"irred/internal/lang"
)

// Severity classifies a diagnostic. Error findings make a program illegal
// under the paper's restrictions (drivers refuse to generate code); Warn
// findings are legal but almost certainly unintended; Info findings report
// facts about how the compiler will treat the program.
type Severity int

const (
	Info Severity = iota
	Warn
	Error
)

func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warn:
		return "warn"
	default:
		return "info"
	}
}

// MarshalJSON renders the severity as its lower-case name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts the names produced by MarshalJSON.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "error":
		*s = Error
	case "warn":
		*s = Warn
	case "info":
		*s = Info
	default:
		return fmt.Errorf("lint: unknown severity %q", name)
	}
	return nil
}

// Diagnostic is one finding: a stable code (IRLnnn for source analyzers,
// IRVnnn for the schedule verifier), a severity, a source position (zero
// for schedule findings, which have no source location), and a message.
type Diagnostic struct {
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	File     string   `json:"file,omitempty"` // set by drivers linting named files
	Line     int      `json:"line,omitempty"`
	Col      int      `json:"col,omitempty"`
	Message  string   `json:"message"`
}

// Pos reports the source position of the diagnostic.
func (d Diagnostic) Pos() lang.Pos { return lang.Pos{Line: d.Line, Col: d.Col} }

// String renders the diagnostic in the repo's irl:line:col: style (the
// file name replaces "irl" when set); findings without a position (schedule
// verification) drop the prefix.
func (d Diagnostic) String() string {
	name := d.File
	if name == "" {
		name = "irl"
	}
	if d.Line == 0 && d.Col == 0 {
		if d.File != "" {
			return fmt.Sprintf("%s: %s: %s [%s]", d.File, d.Severity, d.Message, d.Code)
		}
		return fmt.Sprintf("%s: %s [%s]", d.Severity, d.Message, d.Code)
	}
	return fmt.Sprintf("%s:%d:%d: %s: %s [%s]", name, d.Line, d.Col, d.Severity, d.Message, d.Code)
}

// Diagnostics is a list of findings.
type Diagnostics []Diagnostic

// Sort orders findings by position, then severity (most severe first for
// ties at one position), then code, then message — a stable presentation
// order independent of analyzer registration order.
func (ds Diagnostics) Sort() {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Message < b.Message
	})
}

// HasErrors reports whether any finding is Error-level.
func (ds Diagnostics) HasErrors() bool {
	for _, d := range ds {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Codes reports the distinct diagnostic codes present, sorted.
func (ds Diagnostics) Codes() []string {
	set := map[string]bool{}
	for _, d := range ds {
		set[d.Code] = true
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Render writes the human-readable form, one finding per line.
func (ds Diagnostics) Render(w io.Writer) error {
	for _, d := range ds {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// RenderString is Render into a string.
func (ds Diagnostics) RenderString() string {
	var b strings.Builder
	ds.Render(&b)
	return b.String()
}

// RenderJSON writes the findings as an indented JSON array (an empty list,
// not null, when there are no findings) so tooling gets a stable shape.
func (ds Diagnostics) RenderJSON(w io.Writer) error {
	out := ds
	if out == nil {
		out = Diagnostics{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
