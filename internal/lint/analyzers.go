package lint

import (
	"math"

	"irred/internal/lang"
)

// The IRL analyzers. Each owns one stable code:
//
//	IRL001  non-reduction irregular update (Error)
//	IRL002  multiple levels of indirection (Error)
//	IRL003  indirection in multiple dimensions (Error)
//	IRL004  reduction array read in its own loop (Error)
//	IRL005  reduction / indirection aliasing (Error)
//	IRL006  literal subscript out of declared extent (Error)
//	IRL007  dead reduction statement (Warn)
//	IRL008  array declared but never referenced (Warn)
//	IRL009  scalar defined but never used (Warn)
//	IRL010  loop requires fission (Info)
//	IRL011  reference to undeclared array (Error)
//	IRL012  indirection through a non-int array (Error)

// eachRef walks e and calls fn for every array reference with its
// indirection depth: 0 for an outermost data reference, 1 for a reference
// appearing inside a subscript (an indirection array), 2 for a reference
// inside an indirection's subscript (illegal nesting), and so on.
func eachRef(e lang.Expr, depth int, fn func(ix *lang.IndexExpr, depth int)) {
	switch x := e.(type) {
	case *lang.IndexExpr:
		fn(x, depth)
		for _, sub := range x.Index {
			eachRef(sub, depth+1, fn)
		}
	case *lang.BinExpr:
		eachRef(x.L, depth, fn)
		eachRef(x.R, depth, fn)
	case *lang.UnExpr:
		eachRef(x.X, depth, fn)
	case *lang.CallExpr:
		for _, a := range x.Args {
			eachRef(a, depth, fn)
		}
	}
}

// eachLoopRef calls fn for every array reference in the loop body, target
// and right-hand sides alike.
func eachLoopRef(l *lang.Loop, fn func(st *lang.Assign, ix *lang.IndexExpr, depth int, inTarget bool)) {
	for _, st := range l.Body {
		if st.Target != nil {
			eachRef(st.Target, 0, func(ix *lang.IndexExpr, d int) { fn(st, ix, d, true) })
		}
		eachRef(st.RHS, 0, func(ix *lang.IndexExpr, d int) { fn(st, ix, d, false) })
	}
}

// irregularTarget reports whether the statement writes through an
// indirection (some subscript of the target contains an array reference).
func irregularTarget(st *lang.Assign) bool {
	if st.Target == nil {
		return false
	}
	for _, sub := range st.Target.Index {
		if containsRef(sub) {
			return true
		}
	}
	return false
}

func containsRef(e lang.Expr) bool {
	found := false
	eachRef(e, 0, func(*lang.IndexExpr, int) { found = true })
	return found
}

// readsOwnTarget reports whether the right-hand side reads the exact
// element the statement writes — the accumulator access of a general
// self-update reduction like x[ia[i]] = x[ia[i]] * w[i] + x[ia[i]].
func readsOwnTarget(st *lang.Assign) bool {
	if st.Target == nil {
		return false
	}
	want := st.Target.String()
	found := false
	eachRef(st.RHS, 0, func(ix *lang.IndexExpr, depth int) {
		if depth == 0 && ix.String() == want {
			found = true
		}
	})
	return found
}

// reducedArrays collects the arrays written irregularly by the loop.
func reducedArrays(l *lang.Loop) map[string]bool {
	out := map[string]bool{}
	for _, st := range l.Body {
		if irregularTarget(st) {
			out[st.Target.Array] = true
		}
	}
	return out
}

func init() {
	register(&Analyzer{
		Name: "reduction-op", Code: "IRL001", Severity: Error,
		Doc: "irregular write must be a reduction (+=, -=, *=, min=, max=) or a self-update",
		Run: func(p *Pass) {
			for _, l := range p.Prog.Loops {
				for _, st := range l.Body {
					if irregularTarget(st) && st.Op == lang.OpSet && !readsOwnTarget(st) {
						p.Reportf(st.Pos, "irregular write to %q uses '=' and never reads the target element; only reductions (+=, -=, *=, min=, max= or a self-update) execute race-free under phase rotation (Section 4)", st.Target.Array)
					}
				}
			}
		},
	})

	register(&Analyzer{
		Name: "multi-level-indirection", Code: "IRL002", Severity: Error,
		Doc: "at most one level of indirection is supported",
		Run: func(p *Pass) {
			for _, l := range p.Prog.Loops {
				eachLoopRef(l, func(st *lang.Assign, ix *lang.IndexExpr, depth int, _ bool) {
					if depth == 2 {
						p.Reportf(ix.Pos, "multiple levels of indirection via %q; apply source-to-source splitting first (Section 4)", ix.Array)
					}
				})
			}
		},
	})

	register(&Analyzer{
		Name: "multi-dim-indirection", Code: "IRL003", Severity: Error,
		Doc: "indirection is allowed in at most one dimension",
		Run: func(p *Pass) {
			for _, l := range p.Prog.Loops {
				eachLoopRef(l, func(st *lang.Assign, ix *lang.IndexExpr, depth int, _ bool) {
					if depth != 0 {
						return
					}
					n := 0
					for _, sub := range ix.Index {
						if containsRef(sub) {
							n++
						}
					}
					if n > 1 {
						p.Reportf(ix.Pos, "array %q accessed through indirection in %d dimensions; a single rotated dimension is required (Section 4)", ix.Array, n)
					}
				})
			}
		},
	})

	register(&Analyzer{
		Name: "reduction-read", Code: "IRL004", Severity: Error,
		Doc: "a reduction array may not be read in the loop that updates it",
		Run: func(p *Pass) {
			for _, l := range p.Prog.Loops {
				reduced := reducedArrays(l)
				eachLoopRef(l, func(st *lang.Assign, ix *lang.IndexExpr, depth int, inTarget bool) {
					if depth != 0 || inTarget || !reduced[ix.Array] {
						return
					}
					// A self-update's read of its own target element is the
					// accumulator of a general reduction, not a dependence.
					if st.Op == lang.OpSet && st.Target != nil && ix.String() == st.Target.String() {
						return
					}
					p.Reportf(ix.Pos, "reduction array %q is read in the loop that updates it; the loop-carried flow dependence breaks fission and phase-rotation legality", ix.Array)
				})
			}
		},
	})

	register(&Analyzer{
		Name: "reduction-indirection-alias", Code: "IRL005", Severity: Error,
		Doc: "an indirection array may not be written in the loop it steers",
		Run: func(p *Pass) {
			for _, l := range p.Prog.Loops {
				// First positions where each array is used as indirection.
				indPos := map[string]lang.Pos{}
				eachLoopRef(l, func(_ *lang.Assign, ix *lang.IndexExpr, depth int, _ bool) {
					if depth == 1 {
						if _, ok := indPos[ix.Array]; !ok {
							indPos[ix.Array] = ix.Pos
						}
					}
				})
				seen := map[string]bool{}
				for _, st := range l.Body {
					if st.Target == nil || seen[st.Target.Array] {
						continue
					}
					if _, ok := indPos[st.Target.Array]; ok {
						seen[st.Target.Array] = true
						p.Reportf(st.Pos, "array %q is written here and used as an indirection array in the same loop; the LightInspector schedule would alias its own input", st.Target.Array)
					}
				}
			}
		},
	})

	register(&Analyzer{
		Name: "subscript-range", Code: "IRL006", Severity: Error,
		Doc: "literal subscript out of the declared extent",
		Run: func(p *Pass) {
			for _, l := range p.Prog.Loops {
				eachLoopRef(l, func(_ *lang.Assign, ix *lang.IndexExpr, _ int, _ bool) {
					decl := p.Prog.Array(ix.Array)
					if decl == nil {
						return // IRL011
					}
					for d, sub := range ix.Index {
						num, ok := sub.(*lang.Num)
						if !ok || d >= len(decl.Dims) {
							continue
						}
						if float64(int(num.Val)) != num.Val {
							p.Reportf(num.Pos, "subscript %s of %q is not an integer", num, ix.Array)
							continue
						}
						v := int(num.Val)
						ext := decl.Dims[d]
						if ext.Param != "" {
							continue // symbolic extent: not statically checkable
						}
						if v < 0 || v >= ext.Lit {
							p.Reportf(num.Pos, "subscript %d out of range for dimension %d of %q (declared extent %d)", v, d+1, ix.Array, ext.Lit)
						}
					}
				})
			}
		},
	})

	register(&Analyzer{
		Name: "dead-reduction", Code: "IRL007", Severity: Warn,
		Doc: "reduction whose contribution is always zero",
		Run: func(p *Pass) {
			for _, l := range p.Prog.Loops {
				consts := map[string]float64{}
				for _, st := range l.Body {
					if st.Scalar != "" {
						if v, ok := constFold(st.RHS, consts); ok {
							consts[st.Scalar] = v
						} else {
							delete(consts, st.Scalar)
						}
						continue
					}
					// Only additive reductions are dead at 0: zero is not the
					// identity of *=, min= or max=.
					if !irregularTarget(st) || (st.Op != lang.OpAdd && st.Op != lang.OpSub) {
						continue
					}
					if v, ok := constFold(st.RHS, consts); ok && v == 0 {
						p.Reportf(st.Pos, "reduction into %q contributes nothing: the right-hand side is always 0", st.Target.Array)
					}
				}
			}
		},
	})

	register(&Analyzer{
		Name: "unused-array", Code: "IRL008", Severity: Warn,
		Doc: "array declared but never referenced",
		Run: func(p *Pass) {
			used := map[string]bool{}
			for _, l := range p.Prog.Loops {
				eachLoopRef(l, func(_ *lang.Assign, ix *lang.IndexExpr, _ int, _ bool) {
					used[ix.Array] = true
				})
			}
			for _, a := range p.Prog.Arrays {
				if !used[a.Name] {
					p.Reportf(a.Pos, "array %q is declared but never referenced", a.Name)
				}
			}
		},
	})

	register(&Analyzer{
		Name: "unused-scalar", Code: "IRL009", Severity: Warn,
		Doc: "loop-local scalar defined but never used",
		Run: func(p *Pass) {
			for _, l := range p.Prog.Loops {
				used := map[string]bool{}
				for _, st := range l.Body {
					lang.Walk(st.RHS, func(e lang.Expr) {
						if id, ok := e.(*lang.Ident); ok {
							used[id.Name] = true
						}
					})
					if st.Target != nil {
						for _, sub := range st.Target.Index {
							lang.Walk(sub, func(e lang.Expr) {
								if id, ok := e.(*lang.Ident); ok {
									used[id.Name] = true
								}
							})
						}
					}
				}
				warned := map[string]bool{}
				for _, st := range l.Body {
					if st.Scalar == "" || used[st.Scalar] || warned[st.Scalar] {
						continue
					}
					warned[st.Scalar] = true
					p.Reportf(st.Pos, "scalar %q is defined but never used", st.Scalar)
				}
			}
		},
	})

	register(&Analyzer{
		Name: "fission-required", Code: "IRL010", Severity: Info,
		Doc: "loop updates several reference groups and will be fissioned",
		Run: func(p *Pass) {
			if p.Analysis == nil {
				return
			}
			for _, li := range p.Analysis.Loops {
				if li.NeedsFission() {
					p.Reportf(li.Loop.Pos, "loop updates %d reference groups (Definition 1) and will be fissioned into %d loops", len(li.Groups), len(li.Groups))
				}
			}
		},
	})

	register(&Analyzer{
		Name: "undeclared-array", Code: "IRL011", Severity: Error,
		Doc: "reference to an undeclared array",
		Run: func(p *Pass) {
			for _, l := range p.Prog.Loops {
				eachLoopRef(l, func(_ *lang.Assign, ix *lang.IndexExpr, _ int, _ bool) {
					if p.Prog.Array(ix.Array) == nil {
						p.Reportf(ix.Pos, "reference to undeclared array %q", ix.Array)
					}
				})
			}
		},
	})

	register(&Analyzer{
		Name: "non-int-indirection", Code: "IRL012", Severity: Error,
		Doc: "indirection arrays must be declared int",
		Run: func(p *Pass) {
			for _, l := range p.Prog.Loops {
				eachLoopRef(l, func(_ *lang.Assign, ix *lang.IndexExpr, depth int, _ bool) {
					if depth != 1 {
						return
					}
					if decl := p.Prog.Array(ix.Array); decl != nil && !decl.Int {
						p.Reportf(ix.Pos, "indirection through %q, which is not declared int", ix.Array)
					}
				})
			}
		},
	})
}

// constFold evaluates e when every leaf is a literal or a scalar with a
// known constant value. A product with a known zero factor folds to zero
// regardless of the other side, which is what catches y[i] * 0 reductions.
func constFold(e lang.Expr, consts map[string]float64) (float64, bool) {
	switch x := e.(type) {
	case *lang.Num:
		return x.Val, true
	case *lang.Ident:
		v, ok := consts[x.Name]
		return v, ok
	case *lang.UnExpr:
		v, ok := constFold(x.X, consts)
		return -v, ok
	case *lang.BinExpr:
		l, lok := constFold(x.L, consts)
		r, rok := constFold(x.R, consts)
		if x.Op == '*' && ((lok && l == 0) || (rok && r == 0)) {
			return 0, true
		}
		if !lok || !rok {
			return 0, false
		}
		switch x.Op {
		case '+':
			return l + r, true
		case '-':
			return l - r, true
		case '*':
			return l * r, true
		case '/':
			if r == 0 {
				return 0, false
			}
			return l / r, true
		}
		return 0, false
	case *lang.CallExpr:
		vals := make([]float64, len(x.Args))
		for i, a := range x.Args {
			v, ok := constFold(a, consts)
			if !ok {
				return 0, false
			}
			vals[i] = v
		}
		switch x.Fn {
		case "sqrt":
			if vals[0] < 0 {
				return 0, false
			}
			return math.Sqrt(vals[0]), true
		case "abs":
			return math.Abs(vals[0]), true
		case "min":
			return math.Min(vals[0], vals[1]), true
		case "max":
			return math.Max(vals[0], vals[1]), true
		}
		return 0, false
	default:
		return 0, false
	}
}
