package lint

import (
	"irred/internal/dataflow"
)

// The schedule-reuse analyzers. Each owns one stable code:
//
//	IRL021  redundant re-inspection: a loop pays a fresh inspection the
//	        reuse license already covers (Warn)
//	IRL022  reuse-after-write: a matching traversal whose indirection
//	        was rewritten between the loops — reusing the schedule
//	        would execute against stale ownership (Error)
//
// Both read the proof-carrying ReuseLicense of internal/dataflow — the
// same artifact codegen's Runner consults to share schedule slots — so
// the diagnostics and the runtime can never disagree about which loops
// amortize one inspection.

// Reuse returns the program's inter-loop reuse license, computed on
// first use. The prover is total, so it is safe on programs the
// Section 4 analysis rejected.
func (p *Pass) Reuse() *dataflow.ReuseLicense {
	if p.reuse == nil {
		p.reuse = dataflow.ProveReuse(p.Prog, dataflow.Options{})
	}
	return p.reuse
}

func init() {
	// Both analyzers report only on loop pairs whose endpoints hold a
	// rotation license: a loop legality already refuses never inspects,
	// so reuse diagnostics on it would be noise on top of IRL017/IRL018.
	rotates := func(p *Pass, loop int) bool {
		lics := p.Legality()
		return loop >= 0 && loop < len(lics) && lics[loop].Rotation
	}

	register(&Analyzer{
		Name: "redundant-re-inspection", Code: "IRL021", Severity: Warn,
		Doc: "loop re-inspects indirection arrays a live reuse license already covers",
		Run: func(p *Pass) {
			for _, g := range p.Reuse().Grants {
				if !rotates(p, g.From) || !rotates(p, g.To) {
					continue
				}
				p.Reportf(g.Pos, "loop %d re-inspects %s although the schedule inspected for loop %d (at %s) is proven identical: same indirection, same extents, no intervening write — one inspection amortizes across both (irredc shares the slot automatically)",
					g.To, joinArrays(g.Arrays), g.From, g.FromPos)
			}
		},
	})

	register(&Analyzer{
		Name: "reuse-after-write", Code: "IRL022", Severity: Error,
		Doc: "schedule reuse across an intervening indirection write (stale schedule)",
		Run: func(p *Pass) {
			for _, r := range p.Reuse().Refusals {
				if !r.Stale || !rotates(p, r.From) || !rotates(p, r.To) {
					continue
				}
				p.Reportf(r.Pos, "this write to indirection array %q invalidates the schedule inspected for loop %d: loop %d repeats the same traversal but must re-inspect — reusing the stale schedule would scatter contributions under dead ownership", r.Array, r.From, r.To)
			}
		},
	})
}

func joinArrays(arrays []string) string {
	s := ""
	for i, a := range arrays {
		if i > 0 {
			s += ", "
		}
		s += "\"" + a + "\""
	}
	return s
}
