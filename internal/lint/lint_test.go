package lint

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

type want struct {
	code      string
	line, col int
	sev       Severity
}

// corpus maps every testdata program to its expected findings, in the
// sorted order Run produces.
var corpus = map[string][]want{
	"set_update.irl":           {{"IRL001", 8, 5, Error}, {"IRL018", 8, 5, Error}},
	"nested_indirection.irl":   {{"IRL002", 9, 10, Error}},
	"multidim_indirection.irl": {{"IRL003", 9, 5, Error}},
	"reduction_read.irl":       {{"IRL004", 8, 24, Error}},
	"alias.irl":                {{"IRL005", 6, 5, Error}},
	"column_range.irl":         {{"IRL006", 9, 13, Error}},
	"dead_reduction.irl":       {{"IRL014", 8, 5, Warn}, {"IRL007", 9, 5, Warn}},
	"unused.irl":               {{"IRL008", 6, 1, Warn}, {"IRL009", 10, 5, Warn}},
	"fission.irl":              {{"IRL010", 9, 1, Info}},
	"undeclared.irl":           {{"IRL011", 7, 17, Error}},
	"float_indirection.irl":    {{"IRL012", 8, 7, Error}},
	"provable_oob.irl":         {{"IRL013", 8, 21, Error}},
	"stale_read.irl":           {{"IRL015", 13, 17, Warn}},
	"invariant.irl":            {{"IRL016", 9, 29, Info}},
	"nonassoc.irl":             {{"IRL017", 10, 5, Error}},
	"reuse_redundant.irl":      {{"IRL021", 9, 1, Warn}},
	"reuse_after_write.irl":    {{"IRL022", 9, 5, Error}},
	"ident_seed.irl":           {{"IRL019", 10, 5, Warn}, {"IRL020", 10, 5, Info}},
	"idempotent.irl":           {{"IRL020", 12, 5, Info}},
	"clean.irl":                nil,
}

func lintFile(t *testing.T, name string) Diagnostics {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunSource(string(src))
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return diags
}

func TestCorpusDiagnostics(t *testing.T) {
	for name, wants := range corpus {
		t.Run(name, func(t *testing.T) {
			diags := lintFile(t, name)
			if len(diags) != len(wants) {
				t.Fatalf("got %d findings, want %d:\n%s", len(diags), len(wants), diags.RenderString())
			}
			for i, w := range wants {
				d := diags[i]
				if d.Code != w.code || d.Line != w.line || d.Col != w.col || d.Severity != w.sev {
					t.Errorf("finding %d: got %s@%d:%d %s, want %s@%d:%d %s\n%s",
						i, d.Code, d.Line, d.Col, d.Severity, w.code, w.line, w.col, w.sev, d)
				}
			}
		})
	}
}

// TestCorpusCoversAllFiles keeps the table and the testdata directory in
// sync: every .irl file must have an expectation entry.
func TestCorpusCoversAllFiles(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.irl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no testdata programs found")
	}
	for _, f := range files {
		if _, ok := corpus[filepath.Base(f)]; !ok {
			t.Errorf("testdata/%s has no expectation entry in the corpus table", filepath.Base(f))
		}
	}
}

// TestCorpusCodeBreadth asserts the corpus exercises a wide slice of the
// code space (the acceptance floor is 6 distinct codes).
func TestCorpusCodeBreadth(t *testing.T) {
	seen := map[string]bool{}
	for name := range corpus {
		for _, d := range lintFile(t, name) {
			seen[d.Code] = true
		}
	}
	if len(seen) < 6 {
		t.Fatalf("corpus triggers only %d distinct codes: %v", len(seen), seen)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	diags := lintFile(t, "unused.irl")
	var buf bytes.Buffer
	if err := diags.RenderJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Diagnostics
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("unmarshal rendered JSON: %v", err)
	}
	if !reflect.DeepEqual(diags, back) {
		t.Fatalf("round trip changed diagnostics:\nbefore %v\nafter  %v", diags, back)
	}
}

// updateGolden rewrites the golden files instead of comparing:
//
//	go test ./internal/lint -run TestJSONGolden -update
var updateGolden = flag.Bool("update", false, "rewrite golden files instead of comparing")

// TestJSONGolden pins the exact bytes of the machine-readable output the
// way `irredlint -format json <files>` produces them: File stamped on
// each finding, files concatenated in argument order, stable field
// layout. Tooling parses this; any drift must be a deliberate edit to
// the golden file.
func TestJSONGolden(t *testing.T) {
	var all Diagnostics
	for _, name := range []string{"nonassoc.irl", "ident_seed.irl"} {
		ds := lintFile(t, name)
		for i := range ds {
			ds[i].File = filepath.Join("testdata", name)
		}
		all = append(all, ds...)
	}
	var buf bytes.Buffer
	if err := all.RenderJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "findings.golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("JSON output drifted from golden file %s:\n--- got ---\n%s\n--- want ---\n%s", golden, buf.Bytes(), want)
	}
}

func TestJSONEmptyIsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := (Diagnostics)(nil).RenderJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Fatalf("empty diagnostics rendered as %q, want []", got)
	}
}

func TestHumanRendering(t *testing.T) {
	diags := lintFile(t, "reduction_read.irl")
	out := diags.RenderString()
	want := `irl:8:24: error: reduction array "x" is read in the loop that updates it`
	if !strings.Contains(out, want) || !strings.Contains(out, "[IRL004]") {
		t.Fatalf("rendering missing position/severity/code:\n%s", out)
	}
}

func TestRegistry(t *testing.T) {
	all := Analyzers()
	if len(all) < 12 {
		t.Fatalf("only %d analyzers registered", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Code >= all[i].Code {
			t.Fatalf("analyzers not in code order: %s before %s", all[i-1].Code, all[i].Code)
		}
	}
	a := Lookup("IRL004")
	if a == nil || a.Name != "reduction-read" {
		t.Fatalf("Lookup(IRL004) = %+v", a)
	}
	if Lookup("reduction-read") != a {
		t.Fatal("Lookup by name and by code disagree")
	}
	if Lookup("IRL999") != nil {
		t.Fatal("Lookup of unknown code should be nil")
	}
}

func TestSeverityJSON(t *testing.T) {
	for _, s := range []Severity{Info, Warn, Error} {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back Severity
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != s {
			t.Fatalf("severity %v round-tripped to %v", s, back)
		}
	}
	var bad Severity
	if err := json.Unmarshal([]byte(`"fatal"`), &bad); err == nil {
		t.Fatal("unknown severity name should not unmarshal")
	}
}
