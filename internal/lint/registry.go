package lint

import (
	"fmt"
	"sort"

	"irred/internal/analysis"
	"irred/internal/dataflow"
	"irred/internal/lang"
)

// Analyzer is one registered pass. Each analyzer owns exactly one stable
// diagnostic code and a default severity; its Run hook inspects the program
// through the Pass and reports findings.
type Analyzer struct {
	Name     string // kebab-case slug, e.g. "reduction-read"
	Code     string // stable code, e.g. "IRL004"
	Severity Severity
	Doc      string // one-line description for -codes listings
	Run      func(*Pass)
}

// Pass carries one program through the analyzers and collects findings.
type Pass struct {
	Prog *lang.Program
	// Analysis is the Section 4 whole-program analysis when it succeeded,
	// nil when the program is too broken to analyze. Analyzers must tolerate
	// nil: most findings are exactly the reasons analysis fails.
	Analysis *analysis.Result

	cur   *Analyzer
	diags Diagnostics
	df    *dataflow.Result       // lazily computed by Dataflow()
	lic   []*dataflow.License    // lazily computed by Legality()
	reuse *dataflow.ReuseLicense // lazily computed by Reuse()
}

// Reportf records a finding for the running analyzer at pos.
func (p *Pass) Reportf(pos lang.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Code:     p.cur.Code,
		Severity: p.cur.Severity,
		Line:     pos.Line,
		Col:      pos.Col,
		Message:  fmt.Sprintf(format, args...),
	})
}

var registry = map[string]*Analyzer{}

// register adds an analyzer at package init; duplicate codes or names are
// programming errors.
func register(a *Analyzer) {
	if a.Name == "" || a.Code == "" || a.Run == nil {
		panic("lint: incomplete analyzer registration")
	}
	for _, prev := range registry {
		if prev.Name == a.Name {
			panic(fmt.Sprintf("lint: analyzer name %q registered twice", a.Name))
		}
	}
	if registry[a.Code] != nil {
		panic(fmt.Sprintf("lint: analyzer code %q registered twice", a.Code))
	}
	registry[a.Code] = a
}

// Analyzers lists every registered analyzer in code order.
func Analyzers() []*Analyzer {
	out := make([]*Analyzer, 0, len(registry))
	for _, a := range registry {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// Lookup finds an analyzer by code or name, or nil.
func Lookup(key string) *Analyzer {
	if a := registry[key]; a != nil {
		return a
	}
	for _, a := range registry {
		if a.Name == key {
			return a
		}
	}
	return nil
}

// Run executes every registered analyzer over the program and returns the
// sorted findings. The Section 4 analysis is attempted once and shared;
// analyzers that need it skip silently when it failed (the AST-level
// analyzers will have reported the reason).
func Run(prog *lang.Program) Diagnostics {
	pass := &Pass{Prog: prog}
	if res, err := analysis.Analyze(prog); err == nil {
		pass.Analysis = res
	}
	for _, a := range Analyzers() {
		pass.cur = a
		a.Run(pass)
	}
	pass.diags.Sort()
	return pass.diags
}

// RunSource parses IRL source and runs every analyzer. A parse error is
// returned as an error (the program has no AST to analyze).
func RunSource(src string) (Diagnostics, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	return Run(prog), nil
}
