package lint

import (
	"irred/internal/algebra"
	"irred/internal/dataflow"
)

// The schedule-legality analyzers. Each owns one stable code:
//
//	IRL017  reduction refused a parallel schedule (Error)
//	IRL018  conflicting non-reduction write in a reduction loop (Error)
//	IRL019  reduction with a known non-zero identity, never seeded (Warn)
//	IRL020  idempotent-operator reduction: duplicates are harmless (Info)
//
// They read the proof-carrying schedule licenses of internal/dataflow —
// the same artifact the compiler consults before building a rotation or
// tree-fold schedule — so a clean lint run means every reduction loop in
// the program holds a machine-checkable license for the schedule it will
// get.

// Legality returns the program's schedule licenses, computed on first
// use. The legality pass is total (it refuses rather than fails), so it
// is safe even when the Section 4 analysis rejected the program.
func (p *Pass) Legality() []*dataflow.License {
	if p.lic == nil {
		p.lic = dataflow.LegalizeProgram(p.Prog, dataflow.Options{})
	}
	return p.lic
}

func init() {
	register(&Analyzer{
		Name: "unlicensed-schedule", Code: "IRL017", Severity: Error,
		Doc: "reduction operator refused a parallel schedule (non-associative or unverifiable)",
		Run: func(p *Pass) {
			for _, lic := range p.Legality() {
				for _, r := range lic.Refusals {
					if r.Cex != "" {
						p.Reportf(r.Pos, "reduction over %q cannot be scheduled: %s (counterexample: %s); rotation would silently reorder a non-associative fold", r.Array, r.Reason, r.Cex)
					} else {
						p.Reportf(r.Pos, "reduction over %q cannot be scheduled: %s", r.Array, r.Reason)
					}
				}
			}
		},
	})

	register(&Analyzer{
		Name: "conflicting-write", Code: "IRL018", Severity: Error,
		Doc: "non-reduction write conflicts with the loop's parallel schedule",
		Run: func(p *Pass) {
			for _, lic := range p.Legality() {
				for _, c := range lic.Conflicts {
					p.Reportf(c.Pos, "conflicting write to %q: %s; no parallel schedule preserves the sequential result", c.Array, c.Reason)
				}
			}
		},
	})

	register(&Analyzer{
		Name: "unseeded-identity", Code: "IRL019", Severity: Warn,
		Doc: "reduction whose operator identity differs from the unwritten (zero) array state",
		Run: func(p *Pass) {
			for _, lic := range p.Legality() {
				for _, ol := range lic.Ops {
					if !ol.IdentSuspect {
						continue
					}
					id, _ := ol.Op.Identity()
					p.Reportf(ol.Pos, "reduction %s over %q folds onto unseeded elements: the operator identity is %g but unwritten elements hold 0; seed %q (e.g. an init loop) or the fold starts from the wrong value", ol.Op, ol.Array, id, ol.Array)
				}
			}
		},
	})

	register(&Analyzer{
		Name: "idempotent-reduction", Code: "IRL020", Severity: Info,
		Doc: "idempotent reduction operator: duplicate contributions are provably harmless",
		Run: func(p *Pass) {
			for _, lic := range p.Legality() {
				for _, ol := range lic.Ops {
					if ol.Props.Idem != algebra.Proven {
						continue
					}
					p.Reportf(ol.Pos, "reduction %s over %q is idempotent (f(a,a) = a proven): duplicated edges or replayed contributions cannot change the result, so at-least-once delivery is safe", ol.Op, ol.Array)
				}
			}
		},
	})
}
