package lint

import (
	"irred/internal/dataflow"
	"irred/internal/lang"
)

// The dataflow-powered analyzers. Each owns one stable code:
//
//	IRL013  subscript provably out of range (Error)
//	IRL014  dataflow-dead statement (Warn)
//	IRL015  read of a never-written element range (Warn)
//	IRL016  loop-invariant right-hand-side subexpression (Info)
//
// They run the interval analysis of internal/dataflow symbolically — no
// parameter values, no array contents — so every finding holds for *all*
// runtime bindings, which is what licenses Error severity for IRL013.

// Dataflow returns the shared symbolic dataflow analysis of the program,
// computed on first use. The analysis tolerates malformed programs (it
// skips what it cannot type), so it is safe even when the Section 4
// analysis failed.
func (p *Pass) Dataflow() *dataflow.Result {
	if p.df == nil {
		p.df = dataflow.AnalyzeProgram(p.Prog, dataflow.Options{})
	}
	return p.df
}

func init() {
	register(&Analyzer{
		Name: "provable-oob", Code: "IRL013", Severity: Error,
		Doc: "subscript interval provably outside the declared extent",
		Run: func(p *Pass) {
			for _, lf := range p.Dataflow().Loops {
				for _, a := range lf.Accesses {
					if a.Status != dataflow.OOB {
						continue
					}
					sub := a.Ref.Index[a.Dim]
					if _, lit := sub.(*lang.Num); lit {
						continue // IRL006's domain
					}
					p.Reportf(sub.Position(),
						"subscript %s of %q is provably out of range: its interval %s never meets [0, %s)",
						sub, a.Ref.Array, a.Index, a.Extent)
				}
			}
		},
	})

	register(&Analyzer{
		Name: "dead-statement", Code: "IRL014", Severity: Warn,
		Doc: "statement whose value can never reach a live computation",
		Run: func(p *Pass) {
			for li, lf := range p.Dataflow().Loops {
				l := p.Prog.Loops[li]
				zero := map[int]bool{}
				for _, idx := range lf.ZeroRed {
					zero[idx] = true // IRL007's domain
				}
				used := dataflow.ScalarReads(l)
				for _, idx := range lf.Dead {
					st := l.Body[idx]
					if zero[idx] {
						continue
					}
					if st.Scalar != "" && !used[st.Scalar] {
						continue // IRL009's domain
					}
					p.Reportf(st.Pos,
						"scalar %q is dataflow-dead: its value only flows into statements that are themselves dead",
						st.Scalar)
				}
			}
		},
	})

	register(&Analyzer{
		Name: "stale-read", Code: "IRL015", Severity: Warn,
		Doc: "read of an element range no earlier loop has written",
		Run: func(p *Pass) {
			for _, s := range p.Dataflow().Stale {
				p.Reportf(s.Ref.Pos,
					"%s reads elements %s of %q, but earlier loops only write %s; the read sees unwritten (zero) data",
					s.Ref, s.Read, s.Array, s.Written)
			}
		},
	})

	register(&Analyzer{
		Name: "loop-invariant", Code: "IRL016", Severity: Info,
		Doc: "right-hand-side subexpression is loop-invariant",
		Run: func(p *Pass) {
			for _, lf := range p.Dataflow().Loops {
				for _, inv := range lf.Invariant {
					p.Reportf(inv.Expr.Position(),
						"expression %s is loop-invariant; it is recomputed every iteration and can be hoisted",
						inv.Expr)
				}
			}
		},
	})
}
