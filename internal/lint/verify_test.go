package lint

import (
	"math/rand"
	"testing"

	"irred/internal/inspector"
	"irred/internal/kernels"
	"irred/internal/mesh"
	"irred/internal/moldyn"
	"irred/internal/rts"
	"irred/internal/sparse"
)

func mustClean(t *testing.T, name string, l *rts.Loop) {
	t.Helper()
	scheds, err := l.Schedules()
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if diags := VerifySchedules(l.Cfg, scheds, l.Ind...); len(diags) != 0 {
		t.Fatalf("%s: verifier rejected a LightInspector schedule:\n%s", name, diags.RenderString())
	}
}

// TestVerifyKernelSchedules is the acceptance sweep: every LightInspector
// schedule produced for the mvm/euler/moldyn kernels across P ∈ {2,4,8},
// k ∈ {1,2,4} and both distributions must verify clean.
func TestVerifyKernelSchedules(t *testing.T) {
	msh := mesh.Generate(400, 2400, 1)
	euler := kernels.NewEuler(msh, 2)
	sys := moldyn.Generate(4, 1, 0.02, 3)
	md := kernels.NewMoldyn(sys)
	mvm := kernels.NewMVM(sparse.Generate(sparse.Class{Name: "t", N: 300, NNZ: 3000}, 0))

	for _, p := range []int{2, 4, 8} {
		for _, k := range []int{1, 2, 4} {
			for _, d := range []inspector.Dist{inspector.Block, inspector.Cyclic} {
				mustClean(t, "euler", euler.Loop(p, k, d))
				mustClean(t, "moldyn", md.Loop(p, k, d))
				mustClean(t, "mvm", mvm.Loop(p, k, d))
			}
		}
	}
}

// corruptCase builds fresh schedules for a small random loop, applies one
// corruption, and asserts the verifier reports the expected code.
type corruptCase struct {
	name    string
	code    string
	corrupt func(t *testing.T, cfg inspector.Config, scheds []*inspector.Schedule) []*inspector.Schedule
}

func smallLoop(t *testing.T) (inspector.Config, [][]int32) {
	t.Helper()
	cfg := inspector.Config{P: 4, K: 2, NumIters: 96, NumElems: 64, Dist: inspector.Cyclic}
	rng := rand.New(rand.NewSource(11))
	ind := make([][]int32, 2)
	for r := range ind {
		ind[r] = make([]int32, cfg.NumIters)
		for i := range ind[r] {
			ind[r][i] = int32(rng.Intn(cfg.NumElems))
		}
	}
	return cfg, ind
}

func buildScheds(t *testing.T, cfg inspector.Config, ind [][]int32) []*inspector.Schedule {
	t.Helper()
	scheds := make([]*inspector.Schedule, cfg.P)
	for p := 0; p < cfg.P; p++ {
		s, err := inspector.Light(cfg, p, ind...)
		if err != nil {
			t.Fatal(err)
		}
		scheds[p] = s
	}
	return scheds
}

// findBufferRef locates a phase entry rewritten to a buffer slot on proc p.
func findBufferRef(cfg inspector.Config, s *inspector.Schedule) (ph, r, j int, ok bool) {
	for ph := range s.Phases {
		prog := &s.Phases[ph]
		for r := range prog.Ind {
			for j, x := range prog.Ind[r] {
				if int(x) >= cfg.NumElems {
					return ph, r, j, true
				}
			}
		}
	}
	return 0, 0, 0, false
}

func TestVerifyRejectsCorruptedSchedules(t *testing.T) {
	cases := []corruptCase{
		{
			// An iteration moved to a phase in which it owns none of its
			// reduction elements.
			name: "iteration in unowned phase", code: "IRV003",
			corrupt: func(t *testing.T, cfg inspector.Config, scheds []*inspector.Schedule) []*inspector.Schedule {
				s := scheds[0]
				from := -1
				for ph := range s.Phases {
					if len(s.Phases[ph].Iters) > 0 {
						from = ph
						break
					}
				}
				if from < 0 {
					t.Fatal("no scheduled iterations")
				}
				to := (from + 1) % len(s.Phases)
				fp, tp := &s.Phases[from], &s.Phases[to]
				tp.Iters = append(tp.Iters, fp.Iters[0])
				fp.Iters = fp.Iters[1:]
				for r := range fp.Ind {
					tp.Ind[r] = append(tp.Ind[r], fp.Ind[r][0])
					fp.Ind[r] = fp.Ind[r][1:]
				}
				return scheds
			},
		},
		{
			// The same iteration executed twice.
			name: "duplicated iteration", code: "IRV002",
			corrupt: func(t *testing.T, cfg inspector.Config, scheds []*inspector.Schedule) []*inspector.Schedule {
				s := scheds[1]
				for ph := range s.Phases {
					p := &s.Phases[ph]
					if len(p.Iters) > 0 {
						p.Iters = append(p.Iters, p.Iters[0])
						for r := range p.Ind {
							p.Ind[r] = append(p.Ind[r], p.Ind[r][0])
						}
						return scheds
					}
				}
				t.Fatal("no scheduled iterations")
				return nil
			},
		},
		{
			// An iteration dropped entirely.
			name: "missing iteration", code: "IRV002",
			corrupt: func(t *testing.T, cfg inspector.Config, scheds []*inspector.Schedule) []*inspector.Schedule {
				s := scheds[2]
				for ph := range s.Phases {
					p := &s.Phases[ph]
					if len(p.Iters) > 0 {
						p.Iters = p.Iters[1:]
						for r := range p.Ind {
							p.Ind[r] = p.Ind[r][1:]
						}
						return scheds
					}
				}
				t.Fatal("no scheduled iterations")
				return nil
			},
		},
		{
			// A direct write redirected to an element owned in another phase.
			name: "write to non-owned element", code: "IRV004",
			corrupt: func(t *testing.T, cfg inspector.Config, scheds []*inspector.Schedule) []*inspector.Schedule {
				s := scheds[0]
				for ph := range s.Phases {
					prog := &s.Phases[ph]
					for r := range prog.Ind {
						for j, x := range prog.Ind[r] {
							if int(x) < cfg.NumElems {
								prog.Ind[r][j] = (x + int32(cfg.PortionSize())) % int32(cfg.NumElems)
								return scheds
							}
						}
					}
				}
				t.Fatal("no owned write found")
				return nil
			},
		},
		{
			// Two different elements funnelled into one buffer slot.
			name: "duplicate buffer slot use", code: "IRV004",
			corrupt: func(t *testing.T, cfg inspector.Config, scheds []*inspector.Schedule) []*inspector.Schedule {
				for _, s := range scheds {
					if s.BufLen < 2 {
						continue
					}
					ph, r, j, ok := findBufferRef(cfg, s)
					if !ok {
						continue
					}
					// Redirect this reference to a different slot, which
					// buffers a different element.
					slot := s.Phases[ph].Ind[r][j]
					other := int32(cfg.NumElems) + (slot-int32(cfg.NumElems)+1)%int32(s.BufLen)
					s.Phases[ph].Ind[r][j] = other
					return scheds
				}
				t.Skip("no processor with two buffer slots")
				return nil
			},
		},
		{
			// A copy-loop entry moved to a phase where the element's portion
			// has not arrived.
			name: "copy entry in unowned phase", code: "IRV005",
			corrupt: func(t *testing.T, cfg inspector.Config, scheds []*inspector.Schedule) []*inspector.Schedule {
				for _, s := range scheds {
					for ph := range s.Phases {
						p := &s.Phases[ph]
						if len(p.Copies) == 0 {
							continue
						}
						to := (ph + 1) % len(s.Phases)
						s.Phases[to].Copies = append(s.Phases[to].Copies, p.Copies[0])
						p.Copies = p.Copies[1:]
						return scheds
					}
				}
				t.Fatal("no copy entries found")
				return nil
			},
		},
		{
			// A referenced buffer slot never drained.
			name: "missing drain", code: "IRV005",
			corrupt: func(t *testing.T, cfg inspector.Config, scheds []*inspector.Schedule) []*inspector.Schedule {
				for _, s := range scheds {
					for ph := range s.Phases {
						p := &s.Phases[ph]
						if len(p.Copies) > 0 {
							p.Copies = p.Copies[1:]
							return scheds
						}
					}
				}
				t.Fatal("no copy entries found")
				return nil
			},
		},
		{
			// A buffer slot drained twice in one sweep.
			name: "duplicate drain", code: "IRV005",
			corrupt: func(t *testing.T, cfg inspector.Config, scheds []*inspector.Schedule) []*inspector.Schedule {
				for _, s := range scheds {
					for ph := range s.Phases {
						p := &s.Phases[ph]
						if len(p.Copies) > 0 {
							p.Copies = append(p.Copies, p.Copies[0])
							return scheds
						}
					}
				}
				t.Fatal("no copy entries found")
				return nil
			},
		},
		{
			// Two processors writing one element in the same phase.
			name: "cross-processor write conflict", code: "IRV006",
			corrupt: func(t *testing.T, cfg inspector.Config, scheds []*inspector.Schedule) []*inspector.Schedule {
				// Find an owned write on proc 0 and redirect a same-phase
				// write on another proc to the same element.
				s0 := scheds[0]
				for ph := range s0.Phases {
					prog := &s0.Phases[ph]
					for r := range prog.Ind {
						for _, x := range prog.Ind[r] {
							if int(x) >= cfg.NumElems {
								continue
							}
							for _, s := range scheds[1:] {
								q := &s.Phases[ph]
								for rr := range q.Ind {
									for jj, y := range q.Ind[rr] {
										if int(y) < cfg.NumElems {
											q.Ind[rr][jj] = x
											return scheds
										}
									}
								}
							}
						}
					}
				}
				t.Fatal("no conflicting pair found")
				return nil
			},
		},
		{
			// Schedule set shorter than the machine.
			name: "missing processor", code: "IRV001",
			corrupt: func(t *testing.T, cfg inspector.Config, scheds []*inspector.Schedule) []*inspector.Schedule {
				return scheds[:len(scheds)-1]
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, ind := smallLoop(t)
			scheds := buildScheds(t, cfg, ind)
			if diags := VerifySchedules(cfg, scheds, ind...); len(diags) != 0 {
				t.Fatalf("pristine schedules rejected:\n%s", diags.RenderString())
			}
			scheds = tc.corrupt(t, cfg, scheds)
			diags := VerifySchedules(cfg, scheds, ind...)
			if len(diags) == 0 {
				t.Fatalf("verifier accepted corrupted schedule (%s)", tc.name)
			}
			found := false
			for _, d := range diags {
				if d.Code == tc.code {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("expected %s in findings:\n%s", tc.code, diags.RenderString())
			}
		})
	}
}

// TestVerifyWithoutOriginals: the verifier still works without the original
// indirection arrays (origin checks are skipped, structure still checked).
func TestVerifyWithoutOriginals(t *testing.T) {
	cfg, ind := smallLoop(t)
	scheds := buildScheds(t, cfg, ind)
	if diags := VerifySchedules(cfg, scheds); len(diags) != 0 {
		t.Fatalf("structural verify failed:\n%s", diags.RenderString())
	}
}

// TestVerifySuppression: a badly corrupted schedule reports at most
// maxPerCode findings per code plus a suppression note.
func TestVerifySuppression(t *testing.T) {
	cfg, ind := smallLoop(t)
	scheds := buildScheds(t, cfg, ind)
	// Drop every iteration from proc 0: dozens of IRV002 findings.
	s := scheds[0]
	for ph := range s.Phases {
		p := &s.Phases[ph]
		p.Iters = nil
		for r := range p.Ind {
			p.Ind[r] = nil
		}
		p.Copies = nil
	}
	s.BufLen = 0
	diags := VerifySchedules(cfg, scheds, ind...)
	n, note := 0, false
	for _, d := range diags {
		if d.Code == "IRV002" {
			if d.Severity == Error {
				n++
			} else {
				note = true
			}
		}
	}
	if n > maxPerCode {
		t.Fatalf("%d IRV002 errors reported, cap is %d", n, maxPerCode)
	}
	if !note {
		t.Fatal("expected a suppression note for IRV002")
	}
}
