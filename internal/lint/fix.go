package lint

import (
	"irred/internal/dataflow"
	"irred/internal/lang"
)

// FixDead removes every dataflow-dead statement — provably-zero reductions
// and the scalar chains that only feed them (IRL007/IRL014), plus scalars
// that are never used at all (IRL009) — and returns the rewritten program
// with the number of statements removed. A loop whose whole body is dead
// is dropped outright (the grammar has no empty loops, and an all-dead
// loop computes nothing). The input program is not modified.
//
// The dead set is already transitively closed, so one pass reaches the
// fixpoint: running FixDead on its own output removes nothing.
func FixDead(prog *lang.Program) (*lang.Program, int) {
	res := dataflow.AnalyzeProgram(prog, dataflow.Options{})
	removed := 0
	out := &lang.Program{Params: prog.Params, Arrays: prog.Arrays}
	for li, l := range prog.Loops {
		lf := res.Loops[li]
		var body []*lang.Assign
		for idx, st := range l.Body {
			if lf.IsDead(idx) {
				removed++
				continue
			}
			body = append(body, st)
		}
		if len(body) == 0 && len(l.Body) > 0 {
			continue // all-dead loop: drop it
		}
		if len(body) == len(l.Body) {
			out.Loops = append(out.Loops, l)
			continue
		}
		nl := *l
		nl.Body = body
		out.Loops = append(out.Loops, &nl)
	}
	return out, removed
}

// FixSource is FixDead over source text: parse, remove dead statements,
// and render the result with the canonical formatter. The returned count
// is the number of statements removed; zero means the formatted input is
// returned unchanged in content.
func FixSource(src string) (string, int, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return "", 0, err
	}
	fixed, removed := FixDead(prog)
	return lang.Format(fixed), removed, nil
}
