package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFixGolden runs FixSource over every testdata/fix/*.in.irl and
// compares against the checked-in *.out.irl, then re-runs the fixer on
// its own output to prove idempotence.
func TestFixGolden(t *testing.T) {
	ins, err := filepath.Glob(filepath.Join("testdata", "fix", "*.in.irl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) == 0 {
		t.Fatal("no fix fixtures found")
	}
	for _, in := range ins {
		name := strings.TrimSuffix(filepath.Base(in), ".in.irl")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(in)
			if err != nil {
				t.Fatal(err)
			}
			golden, err := os.ReadFile(strings.TrimSuffix(in, ".in.irl") + ".out.irl")
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := FixSource(string(src))
			if err != nil {
				t.Fatal(err)
			}
			if got != string(golden) {
				t.Fatalf("fix output differs from golden:\n--- got ---\n%s--- want ---\n%s", got, golden)
			}
			again, removed, err := FixSource(got)
			if err != nil {
				t.Fatal(err)
			}
			if removed != 0 || again != got {
				t.Fatalf("fixer is not idempotent: second pass removed %d statements", removed)
			}
		})
	}
}

func TestFixCounts(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "fix", "dead_chain.in.irl"))
	if err != nil {
		t.Fatal(err)
	}
	_, removed, err := FixSource(string(src))
	if err != nil {
		t.Fatal(err)
	}
	if removed != 3 {
		t.Fatalf("dead_chain removes 3 statements (zero reduction + two-scalar chain), got %d", removed)
	}
	// A fixed program lints clean of dead-code findings.
	out, _, _ := FixSource(string(src))
	diags, err := RunSource(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Code == "IRL007" || d.Code == "IRL009" || d.Code == "IRL014" {
			t.Fatalf("fixed program still has dead-code finding: %s", d)
		}
	}
}
