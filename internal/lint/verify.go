package lint

import (
	"fmt"

	"irred/internal/inspector"
)

// The schedule verifier checks a whole machine's LightInspector output —
// all P schedules at once — against the paper's systolic invariants. A
// clean result is a proof that the phase programs can never produce a
// cross-processor write conflict: every write in every phase lands either
// in a portion owned by the writing processor during that phase, or in a
// processor-private buffer slot with a single element identity that is
// drained exactly once, in the phase where its element's portion arrives.
//
//	IRV001  malformed schedule set (shape/config mismatch)
//	IRV002  iteration coverage broken (missing, duplicated, wrong processor)
//	IRV003  iteration scheduled in a phase owning none of its elements
//	IRV004  illegal write target (non-owned element or buffer identity clash)
//	IRV005  buffer drain broken (wrong phase, wrong count, wrong element)
//	IRV006  one element written by two processors in the same phase

// VerifierCode documents one IRV code for listings.
type VerifierCode struct {
	Code string
	Doc  string
}

// VerifierCodes lists the schedule-verifier codes in order.
var VerifierCodes = []VerifierCode{
	{"IRV001", "schedule set malformed: wrong processor count, config mismatch, or ragged phase data"},
	{"IRV002", "iteration coverage broken: an iteration is missing, duplicated, or on the wrong processor"},
	{"IRV003", "an iteration executes in a phase where none of its reduction elements is locally owned"},
	{"IRV004", "a write targets a non-owned element, an out-of-image index, or a buffer slot with two element identities"},
	{"IRV005", "a buffer slot is not drained exactly once in the phase where its element's portion arrives"},
	{"IRV006", "one reduction element is written by two processors in the same phase"},
}

// maxPerCode bounds the findings reported per IRV code so a thoroughly
// corrupted schedule produces a readable report; a final note records the
// suppressed remainder.
const maxPerCode = 16

type verifier struct {
	diags      Diagnostics
	counts     map[string]int
	suppressed map[string]int
}

func (v *verifier) errf(code, format string, args ...any) {
	if v.counts[code] >= maxPerCode {
		v.suppressed[code]++
		return
	}
	v.counts[code]++
	v.diags = append(v.diags, Diagnostic{
		Code:     code,
		Severity: Error,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (v *verifier) finish() Diagnostics {
	for _, c := range VerifierCodes {
		if n := v.suppressed[c.Code]; n > 0 {
			v.diags = append(v.diags, Diagnostic{
				Code:     c.Code,
				Severity: Info,
				Message:  fmt.Sprintf("%d further %s findings suppressed", n, c.Code),
			})
		}
	}
	v.diags.Sort()
	return v.diags
}

// VerifySchedules exhaustively checks the LightInspector output of all P
// processors against the systolic invariants. ind, when supplied, holds the
// original indirection arrays (one per reduction reference) and enables the
// origin checks: rewritten owned indices must equal the original values,
// and buffer slots must resolve to the element the iteration referenced.
// The empty result means the schedule set is conflict-free by construction.
func VerifySchedules(cfg inspector.Config, scheds []*inspector.Schedule, ind ...[]int32) Diagnostics {
	v := &verifier{counts: map[string]int{}, suppressed: map[string]int{}}

	// IRV001: shape. Anything wrong here makes the deeper checks
	// meaningless, so bail out once shape is known bad.
	if err := cfg.Validate(); err != nil {
		v.errf("IRV001", "config invalid: %v", err)
		return v.finish()
	}
	if len(scheds) != cfg.P {
		v.errf("IRV001", "got %d schedules for %d processors", len(scheds), cfg.P)
		return v.finish()
	}
	for r, a := range ind {
		if len(a) != cfg.NumIters {
			v.errf("IRV001", "indirection %d has %d entries, want %d", r, len(a), cfg.NumIters)
			return v.finish()
		}
	}
	nph := cfg.NumPhases()
	for p, s := range scheds {
		switch {
		case s == nil:
			v.errf("IRV001", "proc %d: schedule missing", p)
		case s.Cfg != cfg:
			v.errf("IRV001", "proc %d: schedule built for %+v, verifying against %+v", p, s.Cfg, cfg)
		case s.Proc != p:
			v.errf("IRV001", "schedule at position %d claims proc %d", p, s.Proc)
		case len(s.Phases) != nph:
			v.errf("IRV001", "proc %d: %d phases, want %d", p, len(s.Phases), nph)
		case len(ind) > 0 && s.NumRef != len(ind):
			v.errf("IRV001", "proc %d: schedule has %d references, %d indirection arrays supplied", p, s.NumRef, len(ind))
		default:
			for ph := range s.Phases {
				pp := &s.Phases[ph]
				for r := range pp.Ind {
					if len(pp.Ind[r]) != len(pp.Iters) {
						v.errf("IRV001", "proc %d phase %d: ref %d has %d entries for %d iterations", p, ph, r, len(pp.Ind[r]), len(pp.Iters))
					}
				}
			}
		}
	}
	if len(v.diags) > 0 {
		return v.finish()
	}

	// procOf[i] records which processor executed iteration i (-1 = not yet).
	procOf := make([]int16, cfg.NumIters)
	for i := range procOf {
		procOf[i] = -1
	}
	// writer maps element -> writing proc within the current phase, rebuilt
	// per phase across all processors (IRV006).
	writer := map[int32]int{}

	type bufState struct {
		elem    int32 // element identity, -1 unknown
		refs    int
		drains  int
		drainPh int
	}
	bufs := make([][]bufState, cfg.P)
	for p, s := range scheds {
		bufs[p] = make([]bufState, s.BufLen)
		for b := range bufs[p] {
			bufs[p][b] = bufState{elem: -1, drainPh: -1}
		}
	}

	for ph := 0; ph < nph; ph++ {
		clear(writer)
		for p, s := range scheds {
			prog := &s.Phases[ph]
			for j, it := range prog.Iters {
				// IRV002: coverage.
				if int(it) < 0 || int(it) >= cfg.NumIters {
					v.errf("IRV002", "proc %d phase %d: iteration %d out of range [0,%d)", p, ph, it, cfg.NumIters)
					continue
				}
				if q := procOf[it]; q >= 0 {
					v.errf("IRV002", "iteration %d scheduled twice (proc %d and proc %d)", it, q, p)
				} else {
					procOf[it] = int16(p)
					if own := cfg.OwnerOfIter(int(it)); own != p {
						v.errf("IRV002", "iteration %d executed by proc %d but the %s distribution assigns it to proc %d", it, p, cfg.Dist, own)
					}
				}

				// IRV003: the phase must own at least one referenced element.
				owned := false
				for r := 0; r < len(prog.Ind) && !owned; r++ {
					if len(ind) > r {
						owned = cfg.PhaseOf(p, int(ind[r][it])) == ph
					} else if x := prog.Ind[r][j]; int(x) < cfg.NumElems {
						owned = cfg.PhaseOf(p, int(x)) == ph
					}
				}
				if !owned && len(prog.Ind) > 0 {
					v.errf("IRV003", "proc %d phase %d: iteration %d references no element owned in this phase", p, ph, it)
				}

				// IRV004: every write target is legal.
				for r := range prog.Ind {
					x := prog.Ind[r][j]
					switch {
					case int(x) < 0 || int(x) >= s.LocalLen():
						v.errf("IRV004", "proc %d phase %d: iteration %d ref %d writes index %d outside the local image [0,%d)", p, ph, it, r, x, s.LocalLen())
					case int(x) < cfg.NumElems:
						if cfg.PhaseOf(p, int(x)) != ph {
							v.errf("IRV004", "proc %d phase %d: iteration %d ref %d writes element %d, owned in phase %d", p, ph, it, r, x, cfg.PhaseOf(p, int(x)))
						}
						if len(ind) > r && ind[r][it] != x {
							v.errf("IRV004", "proc %d phase %d: iteration %d ref %d writes element %d but the indirection array names %d", p, ph, it, r, x, ind[r][it])
						}
						recordWriter(v, writer, ph, x, p)
					default:
						b := &bufs[p][int(x)-cfg.NumElems]
						b.refs++
						if len(ind) > r {
							e := ind[r][it]
							if b.elem >= 0 && b.elem != e {
								v.errf("IRV004", "proc %d: buffer slot %d written for elements %d and %d; slots must have exactly one element identity", p, int(x)-cfg.NumElems, b.elem, e)
							}
							b.elem = e
						}
					}
				}
			}

			// IRV005 (and IRV006 for the drain write): copy loops.
			for _, cp := range prog.Copies {
				bi := int(cp.Buf) - cfg.NumElems
				if bi < 0 || bi >= s.BufLen {
					v.errf("IRV005", "proc %d phase %d: drain reads slot index %d outside the buffer [0,%d)", p, ph, cp.Buf, s.BufLen)
					continue
				}
				b := &bufs[p][bi]
				b.drains++
				b.drainPh = ph
				if arrival := cfg.PhaseOf(p, int(cp.Elem)); arrival != ph {
					v.errf("IRV005", "proc %d: buffer slot %d drains into element %d in phase %d, but that element's portion arrives in phase %d", p, bi, cp.Elem, ph, arrival)
				} else {
					recordWriter(v, writer, ph, cp.Elem, p)
				}
				if b.elem >= 0 && b.elem != cp.Elem {
					v.errf("IRV005", "proc %d: buffer slot %d holds contributions for element %d but drains into element %d", p, bi, b.elem, cp.Elem)
				}
			}
		}
	}

	// IRV002: completeness.
	for i, q := range procOf {
		if q < 0 {
			v.errf("IRV002", "iteration %d is not scheduled on any processor", i)
		}
	}

	// IRV005: every referenced slot drained exactly once per sweep.
	for p := range bufs {
		for bi := range bufs[p] {
			b := &bufs[p][bi]
			switch {
			case b.refs > 0 && b.drains == 0:
				v.errf("IRV005", "proc %d: buffer slot %d is written %d times but never drained", p, bi, b.refs)
			case b.refs > 0 && b.drains > 1:
				v.errf("IRV005", "proc %d: buffer slot %d drained %d times; exactly one drain per sweep is required", p, bi, b.drains)
			case b.refs == 0 && b.drains > 0:
				v.errf("IRV005", "proc %d: buffer slot %d drained but never written", p, bi)
			}
		}
	}

	return v.finish()
}

// recordWriter notes a shared-array write and reports IRV006 when a second
// processor writes the same element in the same phase.
func recordWriter(v *verifier, writer map[int32]int, ph int, elem int32, proc int) {
	if q, ok := writer[elem]; ok {
		if q != proc {
			v.errf("IRV006", "phase %d: element %d written by proc %d and proc %d", ph, elem, q, proc)
		}
		return
	}
	writer[elem] = proc
}
