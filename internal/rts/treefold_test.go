package rts

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"irred/internal/algebra"
	"irred/internal/dataflow"
	"irred/internal/inspector"
	"irred/internal/lang"
)

// licenseFor runs the legality pass over an IRL source and returns the
// first loop's license — the same artifact the compiler would attach.
func licenseFor(t *testing.T, src string) *dataflow.License {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	lics := dataflow.LegalizeProgram(prog, dataflow.Options{})
	if len(lics) == 0 {
		t.Fatalf("no loops in fixture")
	}
	return lics[len(lics)-1]
}

const treefoldAddSrc = `
param n, m
array ia[n] int
array x[m]
array w[n]
loop i = 0, n {
    x[ia[i]] += w[i]
}
`

const treefoldMinSrc = `
param n, m
array ia[n] int
array best[m]
array w[n]
loop i = 0, n {
    best[ia[i]] min= w[i]
}
`

const treefoldRefusedSrc = `
param n, m
array ia[n] int
array x[m]
array w[n]
loop i = 0, n {
    x[ia[i]] = x[ia[i]] * 0.5 + w[i]
}
`

func treefoldLoop(kind algebra.Kind, nIters, nElems int, ind []int32) *Loop {
	return &Loop{
		Cfg:     inspector.Config{P: 4, K: 2, NumIters: nIters, NumElems: nElems},
		Mode:    Reduce,
		Ind:     [][]int32{ind},
		Cost:    KernelCost{Flops: 1},
		Combine: algebra.Op{Kind: kind},
	}
}

func TestTreeFoldMatchesSequentialAdd(t *testing.T) {
	const nIters, nElems = 64, 10
	rng := rand.New(rand.NewSource(7))
	ind := make([]int32, nIters)
	w := make([]float64, nIters)
	for i := range ind {
		ind[i] = int32(rng.Intn(nElems))
		w[i] = float64(rng.Intn(21) - 10) // integral: fold order is exact
	}
	l := treefoldLoop(algebra.Add, nIters, nElems, ind)
	tf, err := NewTreeFold(l, licenseFor(t, treefoldAddSrc))
	if err != nil {
		t.Fatalf("NewTreeFold: %v", err)
	}
	tf.Contribs = func(p, i int, out []float64) { out[0] = w[i] }
	if err := tf.Run(1); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := make([]float64, nElems)
	for i := 0; i < nIters; i++ {
		want[ind[i]] += w[i]
	}
	for e := range want {
		if tf.X[e] != want[e] {
			t.Fatalf("element %d: tree fold %g != sequential %g", e, tf.X[e], want[e])
		}
	}
}

func TestTreeFoldMinCombine(t *testing.T) {
	const nIters, nElems = 48, 7
	rng := rand.New(rand.NewSource(11))
	ind := make([]int32, nIters)
	w := make([]float64, nIters)
	for i := range ind {
		ind[i] = int32(rng.Intn(nElems))
		w[i] = float64(rng.Intn(100))
	}
	l := treefoldLoop(algebra.Min, nIters, nElems, ind)
	tf, err := NewTreeFold(l, licenseFor(t, treefoldMinSrc))
	if err != nil {
		t.Fatalf("NewTreeFold: %v", err)
	}
	// Accumulate on top of pre-seeded values, like the rotation engine.
	want := make([]float64, nElems)
	for e := range want {
		tf.X[e] = 1e6
		want[e] = 1e6
	}
	tf.Contribs = func(p, i int, out []float64) { out[0] = w[i] }
	if err := tf.Run(1); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < nIters; i++ {
		want[ind[i]] = math.Min(want[ind[i]], w[i])
	}
	for e := range want {
		if tf.X[e] != want[e] {
			t.Fatalf("element %d: tree min %g != sequential %g", e, tf.X[e], want[e])
		}
	}
}

func TestTreeFoldRefusesWithoutLicense(t *testing.T) {
	ind := make([]int32, 8)
	l := treefoldLoop(algebra.Add, 8, 4, ind)
	if _, err := NewTreeFold(l, nil); err == nil {
		t.Fatal("nil license must be refused")
	}
	lic := licenseFor(t, treefoldRefusedSrc)
	if lic.TreeFold {
		t.Fatalf("fixture unexpectedly licensed: %s", lic.Report())
	}
	_, err := NewTreeFold(l, lic)
	if err == nil {
		t.Fatal("refused license must block tree-fold construction")
	}
	if !strings.Contains(err.Error(), "TreeFoldLegal") {
		t.Fatalf("error should name the required grant: %v", err)
	}
}

func TestTreeFoldRangeCheck(t *testing.T) {
	ind := []int32{0, 1, 2, 99, 1, 0, 2, 1} // 99 is out of range
	l := treefoldLoop(algebra.Add, len(ind), 4, ind)
	tf, err := NewTreeFold(l, licenseFor(t, treefoldAddSrc))
	if err != nil {
		t.Fatalf("NewTreeFold: %v", err)
	}
	tf.Contribs = func(p, i int, out []float64) { out[0] = 1 }
	if err := tf.Run(1); err == nil {
		t.Fatal("out-of-range target must be reported")
	}
}

// TestNativeNonAddCombine drives the rotation engine itself with a min
// combine: identity-seeded buffers plus op.Fold at every accumulation
// site must reproduce the sequential min exactly.
func TestNativeNonAddCombine(t *testing.T) {
	const nIters, nElems = 60, 9
	rng := rand.New(rand.NewSource(3))
	ind := make([]int32, nIters)
	w := make([]float64, nIters)
	for i := range ind {
		ind[i] = int32(rng.Intn(nElems))
		w[i] = float64(rng.Intn(100) - 50)
	}
	l := treefoldLoop(algebra.Min, nIters, nElems, ind)
	n, err := NewNative(l)
	if err != nil {
		t.Fatalf("NewNative: %v", err)
	}
	want := make([]float64, nElems)
	for e := range want {
		n.X[e] = 1e6
		want[e] = 1e6
	}
	n.Contribs = func(p, i int, out []float64) { out[0] = w[i] }
	if err := n.Run(1); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < nIters; i++ {
		want[ind[i]] = math.Min(want[ind[i]], w[i])
	}
	for e := range want {
		if n.X[e] != want[e] {
			t.Fatalf("element %d: rotation min %g != sequential %g", e, n.X[e], want[e])
		}
	}
}

// TestValidateCombineRules pins the runtime's algebraic preconditions.
func TestValidateCombineRules(t *testing.T) {
	ind := make([]int32, 8)
	l := treefoldLoop(algebra.Add, 8, 4, ind)
	l.Combine = algebra.Op{Kind: algebra.Custom} // no identity
	if err := l.Validate(); err == nil {
		t.Fatal("combine without identity must not validate")
	}
	g := &Loop{
		Cfg:     inspector.Config{P: 2, K: 1, NumIters: 8, NumElems: 4},
		Mode:    Gather,
		Ind:     [][]int32{ind},
		Combine: algebra.Op{Kind: algebra.Min},
	}
	if err := g.Validate(); err == nil {
		t.Fatal("non-add combine on a gather loop must not validate")
	}
}
