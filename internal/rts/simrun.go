package rts

import (
	"fmt"

	"irred/internal/earth"
	"irred/internal/inspector"
	"irred/internal/machine"
	"irred/internal/sim"
)

// SimOptions controls a simulated run.
type SimOptions struct {
	// Steps is the number of timesteps to report (the paper uses 100).
	Steps int
	// WarmSteps timesteps are simulated but excluded from the steady-state
	// rate; MeasureSteps are simulated and measured. Totals for Steps are
	// extrapolated from the steady-state rate, which is exact for static
	// indirection arrays since every steady timestep is identical.
	WarmSteps    int
	MeasureSteps int

	Cost machine.CostModel
	Net  machine.Network

	// Trace, when non-nil, records fiber spans and messages of the
	// simulated run (phase fibers are labelled "t<step>/ph<phase>", update
	// fibers "t<step>/upd") for Gantt rendering.
	Trace *earth.Trace

	// Exec, when non-nil, attaches real computation to the simulated
	// fibers; the run then both times the program and produces data,
	// validating the fiber graph's dataflow. Note that extrapolated steps
	// beyond the simulated window are not computed: use Steps <=
	// WarmSteps+MeasureSteps for exact multi-step results.
	Exec *SimExec
}

func (o *SimOptions) fill() {
	if o.Steps <= 0 {
		o.Steps = 100
	}
	if o.WarmSteps <= 0 {
		o.WarmSteps = 2
	}
	if o.MeasureSteps <= 0 {
		o.MeasureSteps = 3
	}
	if o.Cost.ClockHz == 0 {
		o.Cost = machine.MANNA()
	}
	if o.Net.CyclesPerByte == 0 && o.Net.Latency == 0 {
		o.Net = machine.MANNANet()
	}
}

// SimResult reports a simulated parallel execution.
type SimResult struct {
	P, K  int
	Dist  inspector.Dist
	Steps int

	Cycles          sim.Time // total for Steps timesteps, inspector included once
	Seconds         float64  // Cycles under the machine clock
	PerStep         sim.Time // steady-state cycles per timestep
	InspectorCycles sim.Time // one-time runtime preprocessing (max over procs)

	MsgsPerStep  float64 // network messages per timestep, whole machine
	BytesPerStep float64 // network bytes per timestep, whole machine

	MaxPhaseIters int     // worst per-phase iteration count (load imbalance)
	AvgPhaseIters float64 // mean per-phase iteration count
	EUUtilization float64 // busy fraction of the busiest execution unit
	SUUtilization float64 // busy fraction of the busiest synchronization unit
}

// RunSim executes the loop's phase program on a simulated EARTH machine and
// returns timing and traffic statistics.
func RunSim(l *Loop, opt SimOptions) (*SimResult, error) {
	opt.fill()
	scheds, err := l.Schedules()
	if err != nil {
		return nil, err
	}
	return runSimScheds(l, scheds, opt)
}

func runSimScheds(l *Loop, scheds []*inspector.Schedule, opt SimOptions) (*SimResult, error) {
	cfg := l.Cfg
	P, kp := cfg.P, cfg.NumPhases()
	tsim := opt.WarmSteps + opt.MeasureSteps
	if opt.Steps < tsim {
		tsim = opt.Steps
		if opt.WarmSteps >= tsim {
			opt.WarmSteps = tsim - 1
			if opt.WarmSteps < 0 {
				opt.WarmSteps = 0
			}
		}
		opt.MeasureSteps = tsim - opt.WarmSteps
	}

	// Per-processor phase and update costs, plus inspector cost.
	phaseCost := make([][]sim.Time, P)
	updCost := make([]sim.Time, P)
	var inspCycles sim.Time
	for p := 0; p < P; p++ {
		phaseCost[p], updCost[p] = PhaseCosts(opt.Cost, l, scheds[p])
		if c := InspectorCost(opt.Cost, l, scheds[p]); c > inspCycles {
			inspCycles = c
		}
	}

	m := earth.New(P, opt.Cost, opt.Net)
	if opt.Trace != nil {
		m.SetTrace(opt.Trace)
	}
	if opt.Exec != nil {
		opt.Exec.prepare(l, scheds)
	}
	portionBytes := l.PortionBytes()
	bcast := l.Cost.BcastComp > 0 && P > 1

	homeBytes := make([]int, P)
	for p := 0; p < P; p++ {
		lo, _ := cfg.PortionBounds(cfg.PortionAt(p, 0))
		_, hi := cfg.PortionBounds(cfg.PortionAt(p, cfg.K-1))
		homeBytes[p] = (hi - lo) * l.Cost.BcastComp * 8
	}

	// Build the fiber program: F[t][p][ph] phase fibers, U[t][p] update
	// fibers, with dataflow slots wiring chains, portion arrivals, home
	// returns and broadcasts.
	type cell struct {
		fiber *earth.Fiber
		slot  *earth.Slot
	}
	F := make([][][]cell, tsim)
	U := make([][]cell, tsim)
	stepEnd := make([]sim.Time, tsim)

	for t := 0; t < tsim; t++ {
		F[t] = make([][]cell, P)
		U[t] = make([]cell, P)
		for p := 0; p < P; p++ {
			F[t][p] = make([]cell, kp)
		}
	}

	// Create fibers and slots top-down so bodies can close over them; bodies
	// only dereference cells at run time, when everything exists.
	for t := 0; t < tsim; t++ {
		for p := 0; p < P; p++ {
			node := m.Node(p)
			for ph := 0; ph < kp; ph++ {
				t, p, ph := t, p, ph
				body := func(ctx *earth.Ctx) {
					if opt.Exec != nil {
						opt.Exec.runPhase(l, scheds[p], p, ph)
						if err := opt.Exec.Err(); err != nil {
							// Verify mode: abort the simulation on the
							// first ownership violation.
							m.Eng.Fail(err)
							return
						}
					}
					// Chain to the next fiber on this node.
					if ph+1 < kp {
						ctx.Sync(F[t][p][ph+1].slot)
					} else {
						ctx.Sync(U[t][p].slot)
					}
					// Rotate the just-owned portion to processor p-1. The
					// last k phases carry p-1's home portions, which join
					// p-1's update instead of a phase fiber.
					dst := (p - 1 + P) % P
					if ph+cfg.K < kp {
						ctx.Send(m.Node(dst), portionBytes, F[t][dst][ph+cfg.K].slot, nil)
					} else {
						ctx.Send(m.Node(dst), portionBytes, U[t][dst].slot, nil)
					}
				}
				f := node.NewFiber(phaseCost[p][ph], body)
				f.Label = fmt.Sprintf("t%d/ph%d", t, ph)
				// Slot count: chain (except the very first fiber of t=0)
				// + portion arrival for phases >= k + broadcast arrivals
				// into phase 0 of steps > 0.
				count := 1
				if t == 0 && ph == 0 {
					count = 0
				}
				if ph >= cfg.K {
					count++
				}
				if ph == 0 && t > 0 && bcast {
					count += P - 1
				}
				F[t][p][ph] = cell{fiber: f, slot: node.NewSlot(count, f)}
			}
			// Update fiber.
			t, p := t, p
			ubody := func(ctx *earth.Ctx) {
				if opt.Exec != nil && opt.Exec.Update != nil {
					opt.Exec.Update(p, t)
				}
				if at := ctx.Time(); at > stepEnd[t] {
					stepEnd[t] = at
				}
				if t+1 < tsim {
					ctx.Sync(F[t+1][p][0].slot)
					if bcast {
						for q := 0; q < P; q++ {
							if q != p {
								ctx.Send(m.Node(q), homeBytes[p], F[t+1][q][0].slot, nil)
							}
						}
					}
				}
			}
			uf := m.Node(p).NewFiber(updCost[p], ubody)
			uf.Label = fmt.Sprintf("t%d/upd", t)
			U[t][p] = cell{fiber: uf, slot: m.Node(p).NewSlot(1+cfg.K, uf)}
		}
	}

	m.Run()
	if err := m.Eng.Err(); err != nil {
		return nil, err
	}
	for t := 0; t < tsim; t++ {
		// Every update fiber must have run; a zero here means deadlock.
		if stepEnd[t] == 0 {
			return nil, fmt.Errorf("rts: simulation deadlocked at timestep %d", t)
		}
	}

	res := &SimResult{P: P, K: cfg.K, Dist: cfg.Dist, Steps: opt.Steps, InspectorCycles: inspCycles}
	warmEnd := sim.Time(0)
	if opt.WarmSteps > 0 {
		warmEnd = stepEnd[opt.WarmSteps-1]
	}
	res.PerStep = (stepEnd[tsim-1] - warmEnd) / sim.Time(opt.MeasureSteps)
	res.Cycles = warmEnd + res.PerStep*sim.Time(opt.Steps-opt.WarmSteps) + inspCycles
	res.Seconds = opt.Cost.Seconds(res.Cycles)

	var msgs, bytes uint64
	var euBusy, suBusy sim.Time
	for p := 0; p < P; p++ {
		n := m.Node(p)
		msgs += n.MsgsSent
		bytes += n.BytesSent
		if n.EU.Busy > euBusy {
			euBusy = n.EU.Busy
		}
		if n.SU.Busy > suBusy {
			suBusy = n.SU.Busy
		}
	}
	res.MsgsPerStep = float64(msgs) / float64(tsim)
	res.BytesPerStep = float64(bytes) / float64(tsim)
	if end := stepEnd[tsim-1]; end > 0 {
		res.EUUtilization = float64(euBusy) / float64(end)
		res.SUUtilization = float64(suBusy) / float64(end)
	}

	totIters := 0
	for p := 0; p < P; p++ {
		if n := scheds[p].MaxPhaseIters(); n > res.MaxPhaseIters {
			res.MaxPhaseIters = n
		}
		totIters += scheds[p].NumIters()
	}
	res.AvgPhaseIters = float64(totIters) / float64(P*kp)
	return res, nil
}

// RunSequentialSim reports the simulated sequential execution of the loop
// for opt.Steps timesteps on one processor, the baseline the paper divides
// by for absolute speedups.
func RunSequentialSim(l *Loop, opt SimOptions) (sim.Time, float64) {
	opt.fill()
	per := SequentialCost(opt.Cost, l)
	total := per * sim.Time(opt.Steps)
	return total, opt.Cost.Seconds(total)
}
