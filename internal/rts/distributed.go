package rts

import (
	"fmt"
	"sync"

	"irred/internal/inspector"
)

// Distributed executes a reduce-mode loop with true message-passing
// semantics: every processor owns a private local image of the rotated
// array (full element range + its remote buffer, exactly the paper's
// memory layout), and portion *contents* are copied between images through
// the channels — no element of the reduction array is ever shared. This is
// the paper's distributed-memory model verbatim; the shared-memory Native
// engine is the fast path, and agreement between the two (and the
// sequential kernel) pins down that the algorithm relies only on the
// messages it sends.
type Distributed struct {
	Loop     *Loop
	Scheds   []*inspector.Schedule
	Contribs ContribFunc

	images [][]float64    // per-processor local image, LocalLen*comp
	chans  []chan payload // portion contents in transit
}

type payload struct {
	portion int
	data    []float64 // portion contents, owned by the receiver after recv
}

// NewDistributed prepares a message-passing run.
func NewDistributed(l *Loop) (*Distributed, error) {
	if l.Mode != Reduce {
		return nil, fmt.Errorf("rts: distributed engine supports reduce loops")
	}
	scheds, err := l.Schedules()
	if err != nil {
		return nil, err
	}
	comp := l.Cost.comp()
	d := &Distributed{
		Loop:   l,
		Scheds: scheds,
		images: make([][]float64, l.Cfg.P),
		chans:  make([]chan payload, l.Cfg.P),
	}
	for p := 0; p < l.Cfg.P; p++ {
		d.images[p] = make([]float64, scheds[p].LocalLen()*comp)
		d.chans[p] = make(chan payload, l.Cfg.NumPhases()+1)
	}
	return d, nil
}

// Run executes `steps` sweeps and returns the assembled reduction array
// (gathered from each processor's home portions after the final sweep).
func (d *Distributed) Run(steps int) ([]float64, error) {
	if d.Contribs == nil {
		return nil, fmt.Errorf("rts: distributed run needs Contribs")
	}
	l := d.Loop
	var wg sync.WaitGroup
	wg.Add(l.Cfg.P)
	for p := 0; p < l.Cfg.P; p++ {
		go func(p int) {
			defer wg.Done()
			for s := 0; s < steps; s++ {
				d.sweep(p)
			}
		}(p)
	}
	wg.Wait()

	// Gather: after a full sweep, each processor holds its home portions.
	comp := l.Cost.comp()
	out := make([]float64, l.Cfg.NumElems*comp)
	for p := 0; p < l.Cfg.P; p++ {
		for j := 0; j < l.Cfg.K; j++ {
			lo, hi := l.Cfg.PortionBounds(l.Cfg.PortionAt(p, j))
			copy(out[lo*comp:hi*comp], d.images[p][lo*comp:hi*comp])
		}
	}
	return out, nil
}

// sweep is the distributed counterpart of Native.sweep: identical control
// flow, but arriving portions are *installed* into the local image and
// departing portions are *copied out* of it.
func (d *Distributed) sweep(p int) {
	l := d.Loop
	cfg := l.Cfg
	comp := l.Cost.comp()
	s := d.Scheds[p]
	img := d.images[p]
	kp := cfg.NumPhases()
	prev := (p - 1 + cfg.P) % cfg.P

	scratch := make([]float64, len(l.Ind)*comp)
	for ph := 0; ph < kp; ph++ {
		q := cfg.PortionAt(p, ph)
		lo, hi := cfg.PortionBounds(q)
		if ph >= cfg.K {
			// Install the arriving portion's contents.
			msg := <-d.chans[p]
			if msg.portion != q {
				panic(fmt.Sprintf("rts: processor %d phase %d expected portion %d, got %d", p, ph, q, msg.portion))
			}
			copy(img[lo*comp:hi*comp], msg.data)
		}

		prog := &s.Phases[ph]
		for _, cp := range prog.Copies {
			eb := int(cp.Elem) * comp
			bb := int(cp.Buf) * comp
			for c := 0; c < comp; c++ {
				img[eb+c] += img[bb+c]
				img[bb+c] = 0
			}
		}
		for j, it := range prog.Iters {
			d.Contribs(p, int(it), scratch)
			for r := range prog.Ind {
				tgt := int(prog.Ind[r][j]) * comp
				for c := 0; c < comp; c++ {
					img[tgt+c] += scratch[r*comp+c]
				}
			}
		}

		// Ship the portion's contents to processor p-1 (a real copy: the
		// wire payload the paper's BLKMOV_SYNC carries).
		data := make([]float64, (hi-lo)*comp)
		copy(data, img[lo*comp:hi*comp])
		d.chans[prev] <- payload{portion: q, data: data}
	}

	// Re-install the k home portions returning at sweep end.
	for j := 0; j < cfg.K; j++ {
		msg := <-d.chans[p]
		lo, hi := cfg.PortionBounds(msg.portion)
		copy(img[lo*comp:hi*comp], msg.data)
	}
}
