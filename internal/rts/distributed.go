package rts

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"irred/internal/algebra"
	"irred/internal/fault"
	"irred/internal/inspector"
	"irred/internal/obs"
)

// Distributed executes a reduce-mode loop with true message-passing
// semantics: every processor owns a private local image of the rotated
// array (full element range + its remote buffer, exactly the paper's
// memory layout), and portion *contents* are copied between images through
// the channels — no element of the reduction array is ever shared. This is
// the paper's distributed-memory model verbatim; the shared-memory Native
// engine is the fast path, and agreement between the two (and the
// sequential kernel) pins down that the algorithm relies only on the
// messages it sends.
//
// The rotation protocol is hardened: every payload carries a phase/sweep
// tag and an FNV-1a checksum over its contents, each receive is guarded by
// a watchdog with bounded recovery from the sender's retransmit buffer,
// and sweeps run under a barrier so the engine can checkpoint the
// assembled array at sweep boundaries. That checkpoint is what makes every
// fault class recoverable from purely local information:
//
//   - a dropped, corrupted or delayed payload is re-fetched from the
//     sender's retransmit buffer (the paper's schedule says exactly which
//     portion must arrive, so the receiver knows what to ask for);
//   - a transiently failed sweep (kernel panic, rotation timeout) is
//     replayed from the last checkpoint — contributions are pure functions
//     of the global iteration number, so replay is exact;
//   - a permanently lost processor degrades the machine to P-1: the
//     ownership map (k*p+phase) mod (k*P) is a pure function of the shape,
//     so the survivors recompute their schedules locally and resume from
//     the checkpoint with no data exchange beyond it.
type Distributed struct {
	Loop     *Loop
	Scheds   []*inspector.Schedule
	Contribs ContribFunc

	// Inject, when non-nil, supplies deterministic chaos: payload faults
	// on every rotation send, stalls at phase boundaries, kernel panics,
	// and permanent kills. Nil costs one pointer check per decision.
	Inject *fault.Injector

	// Watchdog bounds how long a receive waits before recovering the
	// expected portion from the sender's retransmit buffer. Zero picks
	// DefaultWatchdog.
	Watchdog time.Duration
	// MaxResend bounds recovery attempts per receive before the receive
	// is declared failed (peer loss or rotation timeout). Zero picks
	// DefaultMaxResend.
	MaxResend int
	// MaxRecoveries bounds whole-sweep replays and shape degradations per
	// Run. Zero picks DefaultMaxRecoveries.
	MaxRecoveries int

	// CheckpointEvery, when > 0 with Checkpoint set, invokes Checkpoint
	// with the assembled array after every CheckpointEvery-th sweep.
	CheckpointEvery int
	// Checkpoint receives (completed sweeps, assembled array). The array
	// is a private copy. An error is non-fatal: the run continues, it just
	// loses that resume point.
	Checkpoint func(sweep int, x []float64) error

	// Trace, when non-nil, records resend and recovery spans plus
	// chaos/* events for every injected fault.
	Trace *obs.Tracer

	images [][]float64 // per-processor local image, LocalLen*comp
	chans  []chan payload
	outbox [][]outSlot   // [proc][portion] retransmit buffer
	dead   []atomic.Bool // permanently lost processors

	seed []float64 // initial array contents (resume support), may be nil
}

// Hardening defaults: generous enough that a healthy but heavily loaded
// host never trips them, tight enough that an injected fault recovers in
// tens of milliseconds.
const (
	DefaultWatchdog      = 250 * time.Millisecond
	DefaultMaxResend     = 4
	DefaultMaxRecoveries = 16
)

// payload is one rotation message: the portion contents plus the tags and
// checksum that make loss, reordering, duplication and corruption
// detectable at the receiver.
type payload struct {
	portion int
	phase   int    // sender's phase, for diagnostics
	sweep   int    // sweep tag: stale/duplicate payloads are discarded by it
	sum     uint64 // FNV-1a over the data bits
	data    []float64
}

// outSlot is the sender-side retransmit buffer for one portion: the last
// payload shipped, so a receiver can recover it after a drop, corruption
// or delay. It models the unacknowledged-send buffer of an acked
// protocol; the acknowledgement is implicit in the next sweep's barrier.
type outSlot struct {
	mu    sync.Mutex
	sweep int
	ok    bool
	data  []float64
}

// RotationError reports a rotation protocol violation: the wrong portion,
// a checksum mismatch that outlived every resend, or a receive that timed
// out past all recovery attempts. It carries enough structure for a
// supervisor to decide between replay and abort.
type RotationError struct {
	Proc     int    // receiving processor
	Phase    int    // receiving phase
	Sweep    int    // sweep tag
	Expected int    // portion the schedule requires
	Got      int    // portion that arrived (-1 for a timeout)
	Reason   string // "timeout" | "checksum" | "portion"
}

func (e *RotationError) Error() string {
	return fmt.Sprintf("rts: rotation %s: processor %d phase %d sweep %d expected portion %d, got %d",
		e.Reason, e.Proc, e.Phase, e.Sweep, e.Expected, e.Got)
}

// PeerLostError reports a permanently dead processor: its payloads stopped
// and its retransmit buffer is unreachable. Run reacts by degrading the
// machine to P-1 survivors.
type PeerLostError struct{ Proc int }

func (e *PeerLostError) Error() string {
	return fmt.Sprintf("rts: processor %d lost permanently", e.Proc)
}

// PanicError reports a recovered kernel panic on one processor's sweep.
type PanicError struct {
	Proc  int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("rts: processor %d panicked: %v", e.Proc, e.Value)
}

// errAborted marks a worker that stopped because another worker failed
// (or the context was cancelled); it is never the root cause.
var errAborted = errors.New("rts: sweep aborted")

// NewDistributed prepares a message-passing run.
func NewDistributed(l *Loop) (*Distributed, error) {
	if l.Mode != Reduce {
		return nil, fmt.Errorf("rts: distributed engine supports reduce loops")
	}
	scheds, err := l.Schedules()
	if err != nil {
		return nil, err
	}
	return NewDistributedFrom(l, scheds)
}

// NewDistributedFrom prepares a message-passing run over previously built
// schedules — e.g. served from a schedule cache — skipping the
// LightInspector pass. scheds must be the loop's full processor set in
// processor order.
func NewDistributedFrom(l *Loop, scheds []*inspector.Schedule) (*Distributed, error) {
	if l.Mode != Reduce {
		return nil, fmt.Errorf("rts: distributed engine supports reduce loops")
	}
	if l.Combine.Kind != algebra.Add {
		// Portion images merge with a flat += during recovery rotation;
		// generalizing that path is future work, so refuse loudly rather
		// than silently mis-folding.
		return nil, fmt.Errorf("rts: distributed engine folds with += only; combine %s is not supported", l.Combine)
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if len(scheds) != l.Cfg.P {
		return nil, fmt.Errorf("rts: %d schedules for P = %d", len(scheds), l.Cfg.P)
	}
	for p, s := range scheds {
		if s == nil {
			return nil, fmt.Errorf("rts: schedule %d is nil", p)
		}
		if s.Proc != p {
			return nil, fmt.Errorf("rts: schedule %d is for processor %d", p, s.Proc)
		}
		if s.Cfg != l.Cfg {
			return nil, fmt.Errorf("rts: schedule %d built for %+v, loop wants %+v", p, s.Cfg, l.Cfg)
		}
		if s.NumRef != len(l.Ind) {
			return nil, fmt.Errorf("rts: schedule %d has %d references, loop has %d", p, s.NumRef, len(l.Ind))
		}
	}
	d := &Distributed{Loop: l, Scheds: scheds, Trace: l.Trace}
	d.rebuild()
	return d, nil
}

// rebuild (re)allocates images, channels, retransmit buffers and liveness
// flags for the current Loop/Scheds — used at construction, after every
// transient recovery (to discard in-flight state), and after a shape
// degradation. Images are seeded from d.seed when present.
func (d *Distributed) rebuild() {
	l := d.Loop
	comp := l.Cost.comp()
	P := l.Cfg.P
	kp := l.Cfg.NumPhases()
	d.images = make([][]float64, P)
	d.chans = make([]chan payload, P)
	d.outbox = make([][]outSlot, P)
	d.dead = make([]atomic.Bool, P)
	for p := 0; p < P; p++ {
		d.images[p] = make([]float64, d.Scheds[p].LocalLen()*comp)
		if d.seed != nil {
			copy(d.images[p], d.seed)
		}
		// Capacity holds a full sweep of primary sends plus injected
		// duplicates and late deliveries without ever blocking a healthy
		// sender behind stale junk.
		d.chans[p] = make(chan payload, 2*kp+4)
		d.outbox[p] = make([]outSlot, kp)
	}
}

// Seed sets the initial contents of the rotated array (length
// NumElems*comp), so a run can resume from a checkpoint instead of zero.
func (d *Distributed) Seed(x []float64) error {
	want := d.Loop.Cfg.NumElems * d.Loop.Cost.comp()
	if len(x) != want {
		return fmt.Errorf("rts: seed length %d, want %d", len(x), want)
	}
	d.seed = append([]float64(nil), x...)
	for p := range d.images {
		copy(d.images[p], d.seed)
	}
	return nil
}

func (d *Distributed) watchdog() time.Duration {
	if d.Watchdog > 0 {
		return d.Watchdog
	}
	return DefaultWatchdog
}

func (d *Distributed) maxResend() int {
	if d.MaxResend > 0 {
		return d.MaxResend
	}
	return DefaultMaxResend
}

func (d *Distributed) maxRecoveries() int {
	if d.MaxRecoveries > 0 {
		return d.MaxRecoveries
	}
	return DefaultMaxRecoveries
}

// Run executes `steps` sweeps and returns the assembled reduction array.
func (d *Distributed) Run(steps int) ([]float64, error) {
	return d.RunContext(context.Background(), steps)
}

// RunContext is Run with cancellation. Sweeps run under a barrier; after
// each one the engine assembles the array into its checkpoint, so any
// fault inside sweep s is recovered by replaying sweep s from the state
// after sweep s-1. Contributions are pure functions of the iteration
// number, so replay is bit-exact.
func (d *Distributed) RunContext(ctx context.Context, steps int) ([]float64, error) {
	if d.Contribs == nil {
		return nil, fmt.Errorf("rts: distributed run needs Contribs")
	}
	// The running checkpoint: state after `sweep` completed sweeps.
	comp := d.Loop.Cost.comp()
	checkpoint := make([]float64, d.Loop.Cfg.NumElems*comp)
	if d.seed != nil {
		copy(checkpoint, d.seed)
	}
	recoveries := 0
	for sweep := 0; sweep < steps; {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		err := d.runSweep(ctx, sweep)
		if err == nil {
			d.assemble(checkpoint)
			sweep++
			if d.CheckpointEvery > 0 && d.Checkpoint != nil && sweep%d.CheckpointEvery == 0 {
				cs := d.Trace.Begin()
				ckErr := d.Checkpoint(sweep, append([]float64(nil), checkpoint...))
				d.Trace.End(obs.SpanCheckpoint, -1, -1, sweep, -1, cs)
				// A failed checkpoint write only loses a resume point.
				_ = ckErr
			}
			continue
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		recoveries++
		if recoveries > d.maxRecoveries() {
			return nil, fmt.Errorf("rts: giving up after %d recoveries: %w", recoveries-1, err)
		}
		rs := d.Trace.Begin()
		var lost *PeerLostError
		if errors.As(err, &lost) {
			// Permanent loss: degrade to P-1 survivors. The ownership map
			// is a pure function of (P, k), so the survivors rebuild their
			// schedules locally and resume from the checkpoint.
			if err := d.degrade(checkpoint); err != nil {
				return nil, err
			}
		} else {
			// Transient (panic, rotation timeout/violation): discard all
			// in-flight state and replay the sweep from the checkpoint.
			d.seed = append(d.seed[:0], checkpoint...)
			d.rebuild()
		}
		d.Inject.Recovered()
		d.Trace.End(obs.SpanRecover, -1, -1, sweep, -1, rs)
	}
	out := make([]float64, len(checkpoint))
	copy(out, checkpoint)
	return out, nil
}

// degrade rebuilds the engine for P-1 processors from the checkpoint.
func (d *Distributed) degrade(checkpoint []float64) error {
	old := d.Loop
	newP := old.Cfg.P - 1
	if newP < 1 {
		return fmt.Errorf("rts: no surviving processors")
	}
	cfg := old.Cfg
	cfg.P = newP
	nl := &Loop{Cfg: cfg, Mode: old.Mode, Ind: old.Ind, Cost: old.Cost, Trace: old.Trace, Proof: old.Proof}
	scheds, err := nl.Schedules()
	if err != nil {
		return fmt.Errorf("rts: degrading to P=%d: %w", newP, err)
	}
	d.Loop = nl
	d.Scheds = scheds
	d.seed = append(d.seed[:0], checkpoint...)
	d.rebuild()
	d.Trace.Event("chaos/degrade", newP, -1, -1, -1)
	return nil
}

// runSweep drives all P workers through one barrier-synchronized sweep
// and returns the most specific worker error (peer loss > panic >
// rotation error), or nil when every worker completed.
func (d *Distributed) runSweep(ctx context.Context, sweep int) error {
	P := d.Loop.Cfg.P
	abort := make(chan struct{})
	var once sync.Once
	cancel := func() { once.Do(func() { close(abort) }) }
	if done := ctx.Done(); done != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-done:
				cancel()
			case <-stop:
			}
		}()
	}

	errs := make([]error, P)
	var wg sync.WaitGroup
	wg.Add(P)
	for p := 0; p < P; p++ {
		go func(p int) {
			defer wg.Done()
			if err := d.sweepOne(p, sweep, abort); err != nil {
				errs[p] = err
				cancel()
			}
		}(p)
	}
	wg.Wait()

	var best error
	rank := func(err error) int {
		var lost *PeerLostError
		var pan *PanicError
		switch {
		case err == nil:
			return -1
		case errors.As(err, &lost):
			return 3
		case errors.As(err, &pan):
			return 2
		case errors.Is(err, errAborted):
			return 0
		default:
			return 1
		}
	}
	for _, err := range errs {
		if err != nil && rank(err) > rank(best) {
			best = err
		}
	}
	if best != nil && errors.Is(best, errAborted) {
		best = nil // all victims, no root cause: only possible via ctx
	}
	return best
}

// sweepOne runs processor p through sweep's k*P phases under the hardened
// protocol. Any error aborts the whole sweep (the caller replays or
// degrades); a recovered payload or kernel panic never corrupts state
// because the sweep either completes exactly or is replayed entirely.
func (d *Distributed) sweepOne(p, sweep int, abort <-chan struct{}) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Proc: p, Value: r, Stack: debug.Stack()}
		}
	}()
	l := d.Loop
	cfg := l.Cfg
	comp := l.Cost.comp()
	s := d.Scheds[p]
	img := d.images[p]
	kp := cfg.NumPhases()
	prev := (p - 1 + cfg.P) % cfg.P

	scratch := make([]float64, len(l.Ind)*comp)
	for ph := 0; ph < kp; ph++ {
		select {
		case <-abort:
			return errAborted
		default:
		}
		if d.Inject.Killed(p, ph, sweep) {
			d.dead[p].Store(true)
			d.Trace.Event("chaos/kill", p, ph, sweep, -1)
			return &PeerLostError{Proc: p}
		}
		if stall := d.Inject.Stall(p, ph, sweep); stall > 0 {
			d.Trace.Event("chaos/stall", p, ph, sweep, -1)
			time.Sleep(stall)
		}

		q := cfg.PortionAt(p, ph)
		lo, hi := cfg.PortionBounds(q)
		if ph >= cfg.K {
			data, err := d.recvPortion(p, ph, sweep, q, abort)
			if err != nil {
				return err
			}
			copy(img[lo*comp:hi*comp], data)
		}

		prog := &s.Phases[ph]
		for _, cp := range prog.Copies {
			eb := int(cp.Elem) * comp
			bb := int(cp.Buf) * comp
			for c := 0; c < comp; c++ {
				img[eb+c] += img[bb+c]
				img[bb+c] = 0
			}
		}
		for j, it := range prog.Iters {
			d.Inject.KernelPanic(p, int(it))
			d.Contribs(p, int(it), scratch)
			for r := range prog.Ind {
				tgt := int(prog.Ind[r][j]) * comp
				for c := 0; c < comp; c++ {
					img[tgt+c] += scratch[r*comp+c]
				}
			}
		}

		// Ship the portion's contents to processor p-1 (a real copy: the
		// wire payload the paper's BLKMOV_SYNC carries).
		data := make([]float64, (hi-lo)*comp)
		copy(data, img[lo*comp:hi*comp])
		if err := d.sendPortion(p, prev, ph, sweep, q, data, abort); err != nil {
			return err
		}
	}

	// Re-install the k home portions returning at sweep end. Arrival
	// order is fixed by the rotation: drain slot j carries PortionAt(p, j).
	for j := 0; j < cfg.K; j++ {
		want := cfg.PortionAt(p, j)
		data, err := d.recvPortion(p, kp+j, sweep, want, abort)
		if err != nil {
			return err
		}
		lo, hi := cfg.PortionBounds(want)
		copy(img[lo*comp:hi*comp], data)
	}
	return nil
}

// sendPortion ships one payload to processor dst, applying any injected
// payload fault. Dropped and corrupted payloads still land intact in the
// retransmit buffer — they model wire faults, not sender-memory faults.
func (d *Distributed) sendPortion(p, dst, ph, sweep, portion int, data []float64, abort <-chan struct{}) error {
	slot := &d.outbox[p][portion]
	slot.mu.Lock()
	slot.sweep = sweep
	slot.ok = true
	slot.data = data
	slot.mu.Unlock()

	msg := payload{portion: portion, phase: ph, sweep: sweep, sum: checksum(data), data: data}
	f := d.Inject.Payload(p, ph, sweep, portion)
	ch := d.chans[dst]
	if f.Drop {
		d.Trace.Event("chaos/drop", p, ph, sweep, portion)
		return nil
	}
	if f.Corrupt {
		d.Trace.Event("chaos/corrupt", p, ph, sweep, portion)
		corrupted := append([]float64(nil), data...)
		if len(corrupted) > 0 {
			corrupted[0] = math.Float64frombits(math.Float64bits(corrupted[0]) ^ 0xdeadbeef)
		} else {
			msg.sum ^= 0xdeadbeef // zero-length portion: corrupt the checksum itself
		}
		msg.data = corrupted
	}
	deliver := func() error {
		select {
		case ch <- msg:
			return nil
		case <-abort:
			return errAborted
		}
	}
	if f.Delay > 0 {
		d.Trace.Event("chaos/delay", p, ph, sweep, portion)
		// Late delivery happens off the worker goroutine (the sender is
		// not stalled — the wire is). The channel value is captured, so a
		// delivery that outlives a recovery lands in the abandoned channel.
		go func(ch chan payload, msg payload, delay time.Duration) {
			time.Sleep(delay)
			select {
			case ch <- msg:
			default:
			}
		}(ch, msg, f.Delay)
	} else if err := deliver(); err != nil {
		return err
	}
	if f.Duplicate {
		d.Trace.Event("chaos/dup", p, ph, sweep, portion)
		select {
		case ch <- msg:
		default: // a dup that finds the channel full is just lost
		}
	}
	return nil
}

// recvPortion receives the payload for (want, sweep) at processor p's
// phase ph, discarding stale or duplicate payloads by their tags,
// verifying the checksum, and recovering from the sender's retransmit
// buffer after a watchdog timeout or checksum mismatch. Recovery is
// bounded; exhausting it yields a PeerLostError when the sender is dead
// and a RotationError otherwise.
func (d *Distributed) recvPortion(p, ph, sweep, want int, abort <-chan struct{}) ([]float64, error) {
	cfg := d.Loop.Cfg
	sender := (p + 1) % cfg.P
	attempts := 0
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		if timer == nil {
			timer = time.NewTimer(d.watchdog())
		} else {
			timer.Reset(d.watchdog())
		}
		select {
		case msg := <-d.chans[p]:
			timer.Stop()
			if msg.sweep != sweep || msg.portion != want {
				// Stale sweep, duplicate, or out-of-order portion: with
				// tags this is detectable locally — discard and keep
				// waiting for the schedule-mandated payload.
				d.Trace.Event("rotation/discard", p, ph, sweep, msg.portion)
				continue
			}
			if checksum(msg.data) != msg.sum {
				rs := d.Trace.Begin()
				if data, ok := d.fetchResend(sender, want, sweep); ok {
					d.Trace.End(obs.SpanResend, p, ph, sweep, want, rs)
					d.Inject.Recovered()
					return data, nil
				}
				attempts++
				if attempts > d.maxResend() {
					return nil, &RotationError{Proc: p, Phase: ph, Sweep: sweep, Expected: want, Got: msg.portion, Reason: "checksum"}
				}
				continue
			}
			return msg.data, nil
		case <-timer.C:
			attempts++
			d.Trace.Event("rotation/timeout", p, ph, sweep, want)
			rs := d.Trace.Begin()
			if data, ok := d.fetchResend(sender, want, sweep); ok {
				d.Trace.End(obs.SpanResend, p, ph, sweep, want, rs)
				d.Inject.Recovered()
				return data, nil
			}
			if attempts > d.maxResend() {
				if d.dead[sender].Load() {
					return nil, &PeerLostError{Proc: sender}
				}
				return nil, &RotationError{Proc: p, Phase: ph, Sweep: sweep, Expected: want, Got: -1, Reason: "timeout"}
			}
		case <-abort:
			return nil, errAborted
		}
	}
}

// fetchResend pulls (portion, sweep) from sender's retransmit buffer —
// the recovery path for dropped, corrupted and badly delayed payloads.
// It returns false when the sender has not shipped that portion for this
// sweep yet (slow peer: keep waiting) or never will (dead peer).
func (d *Distributed) fetchResend(sender, portion, sweep int) ([]float64, bool) {
	slot := &d.outbox[sender][portion]
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if !slot.ok || slot.sweep != sweep {
		return nil, false
	}
	out := append([]float64(nil), slot.data...)
	return out, true
}

// assemble gathers each processor's home portions into out — after a full
// sweep, each processor holds its k home portions.
func (d *Distributed) assemble(out []float64) {
	l := d.Loop
	comp := l.Cost.comp()
	for p := 0; p < l.Cfg.P; p++ {
		for j := 0; j < l.Cfg.K; j++ {
			lo, hi := l.Cfg.PortionBounds(l.Cfg.PortionAt(p, j))
			copy(out[lo*comp:hi*comp], d.images[p][lo*comp:hi*comp])
		}
	}
}

// checksum is FNV-1a over the float bits — cheap, deterministic, and
// sensitive to any single-bit corruption of a payload.
func checksum(data []float64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range data {
		bits := math.Float64bits(v)
		b[0] = byte(bits)
		b[1] = byte(bits >> 8)
		b[2] = byte(bits >> 16)
		b[3] = byte(bits >> 24)
		b[4] = byte(bits >> 32)
		b[5] = byte(bits >> 40)
		b[6] = byte(bits >> 48)
		b[7] = byte(bits >> 56)
		h.Write(b[:])
	}
	return h.Sum64()
}
