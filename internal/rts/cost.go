package rts

import (
	"irred/internal/inspector"
	"irred/internal/machine"
	"irred/internal/sim"
)

// The simulator charges memory costs by replaying each processor's access
// stream through a data-cache model laid out in a per-processor virtual
// address space:
//
//	[X local image][indirection arrays][iteration arrays][node arrays][out][update arrays]
//
// The stream is replayed for two whole timesteps and the second (warm) pass
// is kept, so compulsory misses of the first sweep do not pollute the
// steady-state rate. This replay is where the paper's locality effects come
// from: phase partitioning fragments the iteration-aligned streams, buffer
// traffic adds extra accesses, cyclic distributions stride the iteration
// arrays, and replicated node arrays thrash once the dataset outgrows the
// cache.

type layout struct {
	xBase    uint64
	indBase  []uint64 // per reference, phase-compacted 4-byte entries
	iterBase []uint64 // per iteration-aligned array, 8-byte entries
	nodeBase []uint64 // per node array, 8-byte entries per element
	outBase  uint64   // gather-mode output accumulator array
	updBase  uint64   // element arrays touched by the update loop
}

func newLayout(l *Loop, localLen int) *layout {
	comp := l.Cost.comp()
	la := &layout{}
	addr := uint64(0)
	la.xBase = addr
	addr += uint64(localLen*comp) * 8
	la.indBase = make([]uint64, len(l.Ind))
	for r := range l.Ind {
		la.indBase[r] = addr
		addr += uint64(l.Cfg.NumIters) * 4
	}
	la.iterBase = make([]uint64, l.Cost.IterArrays)
	for a := range la.iterBase {
		la.iterBase[a] = addr
		addr += uint64(l.Cfg.NumIters) * 8
	}
	la.nodeBase = make([]uint64, l.Cost.NodeArrays)
	for a := range la.nodeBase {
		la.nodeBase[a] = addr
		addr += uint64(l.Cfg.NumElems) * 8
	}
	la.outBase = addr
	addr += uint64(l.Cfg.NumElems) * 8
	la.updBase = addr
	return la
}

// walker counts accesses against one cache; misses are read off the cache's
// own counters via snapshots.
type walker struct {
	cache    *machine.Cache
	accesses uint64
}

// touch records a 4- or 8-byte load.
func (w *walker) touch(addr uint64) {
	w.accesses++
	w.cache.Access(addr)
}

// rmw records a read-modify-write (+=): two accesses, one possible miss —
// the store half always hits the just-loaded line.
func (w *walker) rmw(addr uint64) {
	w.accesses += 2
	w.cache.Access(addr)
}

// iterOps is the non-memory cycle cost of one main-loop iteration in the
// sequential baseline.
func iterOps(cm machine.CostModel, k KernelCost) sim.Time {
	return cm.LoopOver + sim.Time(k.IntOps)*cm.IntOp + sim.Time(k.Flops)*cm.Flop
}

// parIterOps is the same for the compiler-generated phase executor:
// reduce-mode loops pay the CodegenFactor (buffer branch, rewritten
// indirection addressing); gather-mode loops do not.
func parIterOps(cm machine.CostModel, l *Loop) sim.Time {
	ops := iterOps(cm, l.Cost)
	if l.Mode == Reduce && cm.CodegenFactor > 1 {
		ops = sim.Time(float64(ops) * cm.CodegenFactor)
	}
	return ops
}

// PhaseCosts computes, for one processor, the warm-cache EU cycle cost of
// each phase of one timestep (copy loop + main loop) and of the
// between-sweep update loop over the processor's home elements.
func PhaseCosts(cm machine.CostModel, l *Loop, s *inspector.Schedule) (phases []sim.Time, update sim.Time) {
	comp := l.Cost.comp()
	la := newLayout(l, s.LocalLen())
	cache := cm.NewCache()
	nph := l.Cfg.NumPhases()
	phases = make([]sim.Time, nph)

	// The home block for the update loop: the k portions this processor
	// holds at sweep start.
	homeLo, _ := l.Cfg.PortionBounds(l.Cfg.PortionAt(s.Proc, 0))
	_, homeHi := l.Cfg.PortionBounds(l.Cfg.PortionAt(s.Proc, l.Cfg.K-1))

	for pass := 0; pass < 2; pass++ {
		indPos := make([]uint64, len(l.Ind))
		for ph := 0; ph < nph; ph++ {
			prog := &s.Phases[ph]
			w := walker{cache: cache}
			missBase := cache.Misses
			var ops sim.Time

			// Second (copy) loop: X[elem] += X[buf]; X[buf] = 0.
			for _, cp := range prog.Copies {
				for c := 0; c < comp; c++ {
					w.touch(la.xBase + uint64(int(cp.Buf)*comp+c)*8)
					w.rmw(la.xBase + uint64(int(cp.Elem)*comp+c)*8)
				}
				ops += cm.LoopOver + sim.Time(comp)*cm.Flop
			}

			// Main loop.
			perIter := parIterOps(cm, l)
			for j, it := range prog.Iters {
				ops += perIter
				for r := range prog.Ind {
					w.touch(la.indBase[r] + indPos[r]*4)
					indPos[r]++
					// Replicated node-array reads use the original element.
					orig := uint64(l.Ind[r][it])
					for a := range la.nodeBase {
						w.touch(la.nodeBase[a] + orig*8)
					}
					tgt := uint64(prog.Ind[r][j])
					for c := 0; c < comp; c++ {
						a := la.xBase + (tgt*uint64(comp)+uint64(c))*8
						if l.Mode == Gather {
							w.touch(a)
						} else {
							w.rmw(a)
						}
					}
				}
				for a := range la.iterBase {
					w.touch(la.iterBase[a] + uint64(it)*8)
				}
				if l.Mode == Gather && l.GatherOut != nil {
					w.rmw(la.outBase + uint64(l.GatherOut[it])*8)
				}
			}
			phases[ph] = ops + cm.Mem(w.accesses, cache.Misses-missBase)
		}

		// Update loop over the home block.
		{
			w := walker{cache: cache}
			missBase := cache.Misses
			var ops sim.Time
			for e := homeLo; e < homeHi; e++ {
				ops += cm.LoopOver + sim.Time(l.Cost.UpdateFlopsPerElem)*cm.Flop
				for a := 0; a < l.Cost.UpdateArraysPerElem; a++ {
					w.rmw(la.updBase + uint64(a*l.Cfg.NumElems+e)*8)
				}
			}
			update = ops + cm.Mem(w.accesses, cache.Misses-missBase)
		}
	}
	return phases, update
}

// SequentialCost computes the warm-cache cycle cost of one timestep of the
// original (unpartitioned) loop plus its update loop on a single processor,
// for speedup denominators.
func SequentialCost(cm machine.CostModel, l *Loop) sim.Time {
	comp := l.Cost.comp()
	la := newLayout(l, l.Cfg.NumElems) // no buffer slots sequentially
	cache := cm.NewCache()
	var total sim.Time
	for pass := 0; pass < 2; pass++ {
		w := walker{cache: cache}
		missBase := cache.Misses
		var ops sim.Time
		for i := 0; i < l.Cfg.NumIters; i++ {
			ops += iterOps(cm, l.Cost)
			for r := range l.Ind {
				w.touch(la.indBase[r] + uint64(i)*4)
				e := uint64(l.Ind[r][i])
				for a := range la.nodeBase {
					w.touch(la.nodeBase[a] + e*8)
				}
				for c := 0; c < comp; c++ {
					a := la.xBase + (e*uint64(comp)+uint64(c))*8
					if l.Mode == Gather {
						w.touch(a)
					} else {
						w.rmw(a)
					}
				}
			}
			for a := range la.iterBase {
				w.touch(la.iterBase[a] + uint64(i)*8)
			}
			if l.Mode == Gather && l.GatherOut != nil {
				w.rmw(la.outBase + uint64(l.GatherOut[i])*8)
			}
		}
		for e := 0; e < l.Cfg.NumElems; e++ {
			ops += cm.LoopOver + sim.Time(l.Cost.UpdateFlopsPerElem)*cm.Flop
			for a := 0; a < l.Cost.UpdateArraysPerElem; a++ {
				w.rmw(la.updBase + uint64(a*l.Cfg.NumElems+e)*8)
			}
		}
		total = ops + cm.Mem(w.accesses, cache.Misses-missBase)
	}
	return total
}

// IncrementalInspectorCost estimates the cycles of an incremental schedule
// update (Schedule.Update) touching `changed` of this processor's
// iterations: each pays a removal and a re-insertion, both constant-time
// per reference with hash-map bookkeeping.
func IncrementalInspectorCost(cm machine.CostModel, l *Loop, changed int) sim.Time {
	refs := sim.Time(len(l.Ind))
	perIter := cm.LoopOver + refs*(12*cm.IntOp+6*cm.LoadHit) // remove + insert
	return sim.Time(changed) * perIter
}

// InspectorCost estimates the cycles the LightInspector itself spends on
// one processor: three linear passes over the processor's iterations (phase
// determination, placement/rewriting, copy-list setup), charged as integer
// work plus streaming memory access.
func InspectorCost(cm machine.CostModel, l *Loop, s *inspector.Schedule) sim.Time {
	n := sim.Time(s.NumIters())
	refs := sim.Time(len(l.Ind))
	perIter := cm.LoopOver + refs*(4*cm.IntOp+2*cm.LoadHit)
	placement := cm.LoopOver + refs*(6*cm.IntOp+3*cm.LoadHit)
	copies := sim.Time(s.NumCopies()) * (cm.LoopOver + 4*cm.IntOp + 2*cm.LoadHit)
	// Streamed data exceeds the cache: charge a miss per line's worth.
	lines := (n * refs * 4) / sim.Time(cm.CacheLine)
	return n*(perIter+placement) + copies + lines*cm.MissExtra
}
