package rts

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"irred/internal/inspector"
)

func randLoop(rng *rand.Rand, p, k, iters, elems, refs int, dist inspector.Dist, comp int) *Loop {
	ind := make([][]int32, refs)
	for r := range ind {
		ind[r] = make([]int32, iters)
		for i := range ind[r] {
			ind[r][i] = int32(rng.Intn(elems))
		}
	}
	return &Loop{
		Cfg:  inspector.Config{P: p, K: k, NumIters: iters, NumElems: elems, Dist: dist},
		Mode: Reduce,
		Ind:  ind,
		Cost: KernelCost{Flops: 4, IntOps: 2, IterArrays: 1, Comp: comp},
	}
}

func seqReduce(l *Loop, contrib func(i, r, c int) float64) []float64 {
	comp := l.Cost.comp()
	x := make([]float64, l.Cfg.NumElems*comp)
	for i := 0; i < l.Cfg.NumIters; i++ {
		for r := range l.Ind {
			e := int(l.Ind[r][i])
			for c := 0; c < comp; c++ {
				x[e*comp+c] += contrib(i, r, c)
			}
		}
	}
	return x
}

func near(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol*(1+math.Abs(b[i])) {
			return false
		}
	}
	return true
}

func TestNativeReduceMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	contrib := func(i, r, c int) float64 { return float64(i+1)*0.5 + float64(r) + float64(c)*0.25 }
	for _, p := range []int{1, 2, 4, 7} {
		for _, k := range []int{1, 2, 4} {
			for _, dist := range []inspector.Dist{inspector.Block, inspector.Cyclic} {
				for _, comp := range []int{1, 3} {
					l := randLoop(rng, p, k, 333, 97, 2, dist, comp)
					n, err := NewNative(l)
					if err != nil {
						t.Fatal(err)
					}
					n.Contribs = func(_, i int, out []float64) {
						for r := 0; r < len(l.Ind); r++ {
							for c := 0; c < comp; c++ {
								out[r*comp+c] = contrib(i, r, c)
							}
						}
					}
					if err := n.Run(1); err != nil {
						t.Fatal(err)
					}
					if !near(n.X, seqReduce(l, contrib), 1e-9) {
						t.Fatalf("P=%d k=%d %v comp=%d: native diverged", p, k, dist, comp)
					}
				}
			}
		}
	}
}

func TestNativeMultiStepAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := randLoop(rng, 4, 2, 200, 64, 2, inspector.Cyclic, 1)
	n, err := NewNative(l)
	if err != nil {
		t.Fatal(err)
	}
	n.Contribs = func(_, i int, out []float64) { out[0], out[1] = 1, 2 }
	const steps = 5
	if err := n.Run(steps); err != nil {
		t.Fatal(err)
	}
	want := seqReduce(l, func(i, r, c int) float64 { return float64(steps) * float64(r+1) })
	if !near(n.X, want, 1e-9) {
		t.Fatal("multi-step accumulation diverged")
	}
}

func TestNativeUpdateHookBarrier(t *testing.T) {
	// The update must observe every contribution of the step: scale X by
	// 0.5 each step; final value is then a fixed point computation we can
	// replay sequentially.
	rng := rand.New(rand.NewSource(10))
	l := randLoop(rng, 3, 2, 150, 48, 2, inspector.Block, 1)
	n, err := NewNative(l)
	if err != nil {
		t.Fatal(err)
	}
	n.Contribs = func(_, i int, out []float64) { out[0], out[1] = 1, 1 }
	n.Update = func(p, step int) {
		lo, _ := l.Cfg.PortionBounds(l.Cfg.PortionAt(p, 0))
		_, hi := l.Cfg.PortionBounds(l.Cfg.PortionAt(p, l.Cfg.K-1))
		for e := lo; e < hi; e++ {
			n.X[e] *= 0.5
		}
	}
	const steps = 4
	if err := n.Run(steps); err != nil {
		t.Fatal(err)
	}
	// Sequential replay.
	want := make([]float64, l.Cfg.NumElems)
	for s := 0; s < steps; s++ {
		for i := 0; i < l.Cfg.NumIters; i++ {
			for r := range l.Ind {
				want[l.Ind[r][i]]++
			}
		}
		for e := range want {
			want[e] *= 0.5
		}
	}
	if !near(n.X, want, 1e-9) {
		t.Fatal("update hook saw incomplete sweeps")
	}
}

func TestNativeGatherMVM(t *testing.T) {
	// y = A*x with A in COO form: gather mode rotates x.
	rng := rand.New(rand.NewSource(3))
	const n, nnz = 60, 500
	row := make([]int32, nnz)
	col := make([]int32, nnz)
	a := make([]float64, nnz)
	for i := range row {
		row[i] = int32(rng.Intn(n))
		col[i] = int32(rng.Intn(n))
		a[i] = rng.Float64()
	}
	for _, p := range []int{1, 2, 4} {
		for _, k := range []int{1, 2} {
			l := &Loop{
				Cfg:       inspector.Config{P: p, K: k, NumIters: nnz, NumElems: n, Dist: inspector.Block},
				Mode:      Gather,
				Ind:       [][]int32{col},
				Cost:      KernelCost{Flops: 2, IterArrays: 2},
				GatherOut: row,
			}
			nat, err := NewNative(l)
			if err != nil {
				t.Fatal(err)
			}
			x := nat.X
			for i := range x {
				x[i] = float64(i%7) + 1
			}
			// Per-processor partial outputs avoid write sharing on rows.
			partial := make([][]float64, p)
			for q := range partial {
				partial[q] = make([]float64, n)
			}
			nat.Consume = func(q, i int, vals []float64) {
				partial[q][row[i]] += a[i] * vals[0]
			}
			if err := nat.Run(1); err != nil {
				t.Fatal(err)
			}
			got := make([]float64, n)
			for q := range partial {
				for r := range got {
					got[r] += partial[q][r]
				}
			}
			want := make([]float64, n)
			for i := 0; i < nnz; i++ {
				want[row[i]] += a[i] * x[col[i]]
			}
			if !near(got, want, 1e-9) {
				t.Fatalf("P=%d k=%d: gather mvm diverged", p, k)
			}
		}
	}
}

func TestNativeGatherRequiresSingleRef(t *testing.T) {
	l := &Loop{
		Cfg:  inspector.Config{P: 2, K: 1, NumIters: 4, NumElems: 4},
		Mode: Gather,
		Ind:  [][]int32{{0, 1, 2, 3}, {3, 2, 1, 0}},
	}
	if err := l.Validate(); err == nil {
		t.Fatal("two-reference gather loop accepted")
	}
}

func TestNativeMissingCallback(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := randLoop(rng, 2, 1, 10, 8, 1, inspector.Block, 1)
	n, err := NewNative(l)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Run(1); err == nil {
		t.Fatal("reduce run without Contribs accepted")
	}
}

// Property: random shapes, native == sequential.
func TestNativeEquivalenceProperty(t *testing.T) {
	prop := func(seed int64, pRaw, kRaw, nRaw uint8, cyclic bool) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + int(pRaw)%6
		k := 1 + int(kRaw)%3
		iters := 1 + int(nRaw)
		dist := inspector.Block
		if cyclic {
			dist = inspector.Cyclic
		}
		l := randLoop(rng, p, k, iters, 41, 2, dist, 1)
		n, err := NewNative(l)
		if err != nil {
			return false
		}
		n.Contribs = func(_, i int, out []float64) { out[0], out[1] = float64(i), float64(2*i) }
		if err := n.Run(1); err != nil {
			return false
		}
		want := seqReduce(l, func(i, r, c int) float64 { return float64((r + 1) * i) })
		return near(n.X, want, 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNativeTinyElementCount(t *testing.T) {
	// Fewer elements than portions (NumElems < k*P): some portions are
	// empty, but rotation and correctness must hold.
	rng := rand.New(rand.NewSource(31))
	l := randLoop(rng, 4, 4, 50, 5, 2, inspector.Cyclic, 1) // 5 elems, 16 portions
	n, err := NewNative(l)
	if err != nil {
		t.Fatal(err)
	}
	n.Contribs = func(_, i int, out []float64) { out[0], out[1] = 1, 2 }
	if err := n.Run(2); err != nil {
		t.Fatal(err)
	}
	want := seqReduce(l, func(i, r, c int) float64 { return 2 * float64(r+1) })
	if !near(n.X, want, 1e-9) {
		t.Fatal("tiny element count diverged")
	}
}

func TestNativeFewerIterationsThanProcs(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	l := randLoop(rng, 8, 2, 3, 16, 2, inspector.Block, 1) // 3 iters on 8 procs
	n, err := NewNative(l)
	if err != nil {
		t.Fatal(err)
	}
	n.Contribs = func(_, i int, out []float64) { out[0], out[1] = float64(i), float64(i) }
	if err := n.Run(1); err != nil {
		t.Fatal(err)
	}
	want := seqReduce(l, func(i, r, c int) float64 { return float64(i) })
	if !near(n.X, want, 1e-9) {
		t.Fatal("sparse iteration distribution diverged")
	}
}

func TestSimTinyShapes(t *testing.T) {
	// The simulated program must not deadlock on degenerate shapes either.
	rng := rand.New(rand.NewSource(33))
	for _, tc := range []struct{ p, k, iters, elems int }{
		{4, 4, 50, 5},
		{8, 2, 3, 16},
		{2, 1, 1, 1},
	} {
		l := randLoop(rng, tc.p, tc.k, tc.iters, tc.elems, 2, inspector.Cyclic, 1)
		if _, err := RunSim(l, SimOptions{Steps: 3}); err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
	}
}
