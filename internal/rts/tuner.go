package rts

import (
	"fmt"
	"runtime"
	"sort"

	"irred/internal/benchfmt"
	"irred/internal/dataflow"
)

// Pick is the tuner's strategy choice for one workload: which engine to
// run, at what machine shape, under which schedule strategy.
type Pick struct {
	Engine  string `json:"engine"`
	P       int    `json:"p"`
	K       int    `json:"k"`
	Dist    string `json:"dist"`
	Checked bool   `json:"checked"`

	// Source is the BENCH cell ID the pick was measured from, or
	// "heuristic" when the trajectory had no usable cell and the paper's
	// defaults were applied instead.
	Source string `json:"source"`
	// ScoreMS is the trimmed-mean wall time of the source cell (zero for
	// heuristic picks).
	ScoreMS float64 `json:"score_ms"`
}

func (p Pick) String() string {
	chk := "unchecked"
	if p.Checked {
		chk = "checked"
	}
	return fmt.Sprintf("%s P=%d k=%d %s %s (%s)", p.Engine, p.P, p.K, p.Dist, chk, p.Source)
}

// TunerOptions narrows which measured cells a consumer may act on.
type TunerOptions struct {
	// MaxP caps the picked processor count (a trajectory measured on a
	// bigger machine must not oversubscribe this one). Zero caps at the
	// host's NumCPU.
	MaxP int
	// Engines, when non-empty, restricts picks to engines the consumer
	// can execute (the irredd serving path runs native and distributed
	// only; irredrun -auto can execute any engine).
	Engines []string
	// AllowUnchecked permits proof-elided cells. Consumers that cannot
	// guarantee the bounds proof at execution time leave it false and
	// only checked cells are picked.
	AllowUnchecked bool
}

// Tuner picks execution strategies from a persisted BENCH trajectory —
// the measured complement to the paper's analytic engine selection. It
// never consults modeled (sim) or fault-injected (chaos) cells: picks
// come from clean wall-clock measurements or from the fallback
// heuristic, nothing in between.
type Tuner struct {
	summary *benchfmt.Summary
	opt     TunerOptions
}

// NewTuner builds a tuner over a loaded trajectory. A nil summary is
// legal: every pick falls back to the heuristic.
func NewTuner(s *benchfmt.Summary, opt TunerOptions) *Tuner {
	if opt.MaxP <= 0 {
		opt.MaxP = runtime.NumCPU()
	}
	return &Tuner{summary: s, opt: opt}
}

// NewTunerFromDir loads every BENCH_*.json in dir and blends them into
// one trajectory, newest-wins per cell: a cell re-measured in a later
// file replaces the older measurement, while cells only an older sweep
// covered survive. The returned path is the newest file — the blend's
// identity stamp — so callers report the freshest provenance.
func NewTunerFromDir(dir string, opt TunerOptions) (*Tuner, string, error) {
	paths, err := benchfmt.All(dir)
	if err != nil {
		return nil, "", err
	}
	var blended *benchfmt.Summary
	index := map[string]int{} // cell ID -> position in blended.Cells
	for _, path := range paths {
		s, err := benchfmt.Read(path)
		if err != nil {
			return nil, "", err
		}
		if blended == nil {
			blended = &benchfmt.Summary{}
		}
		// Later files overwrite the stamp and skips wholesale — the blend
		// is identified by its newest sweep — but cells merge in place:
		// first-seen order is kept, newer data replaces older per ID.
		blended.Stamp = s.Stamp
		blended.Skipped = s.Skipped
		for i := range s.Cells {
			c := s.Cells[i]
			if at, ok := index[c.ID]; ok {
				blended.Cells[at] = c
				continue
			}
			index[c.ID] = len(blended.Cells)
			blended.Cells = append(blended.Cells, c)
		}
	}
	return NewTuner(blended, opt), paths[len(paths)-1], nil
}

// Summary exposes the loaded trajectory (nil for a heuristic-only tuner).
func (t *Tuner) Summary() *benchfmt.Summary { return t.summary }

// usable reports whether a measured cell may back a pick for this
// consumer and license.
func (t *Tuner) usable(c *benchfmt.Cell, lic *dataflow.License) bool {
	if c.Error != "" || c.Chaos != "" {
		return false
	}
	// Sim cells time the simulator, not the workload; their wall stats
	// must never compete with real executions.
	if c.Engine == "sim" {
		return false
	}
	if c.Wall.Score() <= 0 {
		return false
	}
	if c.P > t.opt.MaxP {
		return false
	}
	if !c.Checked && !t.opt.AllowUnchecked {
		return false
	}
	if c.Engine == "treefold" && (lic == nil || !lic.TreeFold) {
		return false
	}
	if len(t.opt.Engines) > 0 {
		ok := false
		for _, e := range t.opt.Engines {
			if e == c.Engine {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Pick returns the measured-fastest usable strategy for (kernel, class)
// under the loop's schedule license, falling back to the paper's
// heuristic defaults when the trajectory holds no usable cell. Ties in
// score break toward the cell ID's lexical order, so picks are
// deterministic across runs.
func (t *Tuner) Pick(kernel, class string, lic *dataflow.License) Pick {
	var best *benchfmt.Cell
	if t.summary != nil {
		for i := range t.summary.Cells {
			c := &t.summary.Cells[i]
			if c.Kernel != kernel || c.Class != class || !t.usable(c, lic) {
				continue
			}
			if best == nil || c.Wall.Score() < best.Wall.Score() ||
				(c.Wall.Score() == best.Wall.Score() && c.ID < best.ID) {
				best = c
			}
		}
	}
	if best == nil {
		return t.heuristic()
	}
	return Pick{
		Engine: best.Engine, P: best.P, K: best.K, Dist: best.Dist,
		Checked: best.Checked, Source: best.ID, ScoreMS: best.Wall.Score(),
	}
}

// heuristic is the untuned default: the native rotation engine at the
// host's parallelism (capped at the paper's 4-processor sweet spot), one
// extra portion of slack (k=2) so rotation overlaps compute when P > 1,
// block distribution, checked execution unless the consumer allows
// proof-elision.
func (t *Tuner) heuristic() Pick {
	p := t.opt.MaxP
	if p > 4 {
		p = 4
	}
	if p < 1 {
		p = 1
	}
	k := 1
	if p > 1 {
		k = 2
	}
	return Pick{
		Engine: "native", P: p, K: k, Dist: "block",
		Checked: !t.opt.AllowUnchecked, Source: "heuristic",
	}
}

// Workloads lists the (kernel, class) pairs the trajectory holds clean
// measured cells for, sorted, so consumers can report what the tuner can
// actually tune.
func (t *Tuner) Workloads() [][2]string {
	if t.summary == nil {
		return nil
	}
	seen := map[[2]string]bool{}
	for i := range t.summary.Cells {
		c := &t.summary.Cells[i]
		if c.Error == "" && c.Chaos == "" && c.Engine != "sim" && c.Wall.Score() > 0 {
			seen[[2]string{c.Kernel, c.Class}] = true
		}
	}
	out := make([][2]string, 0, len(seen))
	for w := range seen {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}
