package rts

import (
	"math/rand"
	"testing"

	"irred/internal/inspector"
	"irred/internal/machine"
)

func TestLayoutRegionsDisjoint(t *testing.T) {
	l := &Loop{
		Cfg:  inspector.Config{P: 2, K: 2, NumIters: 100, NumElems: 40},
		Mode: Reduce,
		Ind:  [][]int32{make([]int32, 100), make([]int32, 100)},
		Cost: KernelCost{IterArrays: 2, NodeArrays: 3, Comp: 3},
	}
	la := newLayout(l, 50)
	type region struct {
		name string
		lo   uint64
		n    uint64
	}
	var regions []region
	regions = append(regions, region{"x", la.xBase, uint64(50*3) * 8})
	for r, b := range la.indBase {
		regions = append(regions, region{"ind", b, uint64(l.Cfg.NumIters) * 4})
		_ = r
	}
	for _, b := range la.iterBase {
		regions = append(regions, region{"iter", b, uint64(l.Cfg.NumIters) * 8})
	}
	for _, b := range la.nodeBase {
		regions = append(regions, region{"node", b, uint64(l.Cfg.NumElems) * 8})
	}
	regions = append(regions, region{"out", la.outBase, uint64(l.Cfg.NumElems) * 8})
	for i := range regions {
		for j := i + 1; j < len(regions); j++ {
			a, b := regions[i], regions[j]
			if a.lo < b.lo+b.n && b.lo < a.lo+a.n {
				t.Fatalf("regions %s and %s overlap", a.name, b.name)
			}
		}
	}
}

func TestPhaseCostsSumComparableToSequential(t *testing.T) {
	// Total parallel work across all processors should be within a small
	// factor of the sequential work (codegen factor + buffer copies).
	rng := rand.New(rand.NewSource(7))
	l := eulerLikeLoop(rng, 4, 2, 4000, 800, inspector.Block)
	cm := machine.MANNA()
	seq := SequentialCost(cm, l)
	scheds, err := l.Schedules()
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, s := range scheds {
		phases, upd := PhaseCosts(cm, l, s)
		for _, c := range phases {
			total += int64(c)
		}
		total += int64(upd)
	}
	ratio := float64(total) / float64(seq)
	if ratio < 1.0 || ratio > 3.5 {
		t.Fatalf("parallel/sequential work ratio = %.2f, outside [1.0, 3.5]", ratio)
	}
}

func TestGatherCostsCheaperThanReduce(t *testing.T) {
	// The codegen factor applies only to reduce-mode loops.
	rng := rand.New(rand.NewSource(8))
	n, iters := 500, 4000
	ind := make([]int32, iters)
	for i := range ind {
		ind[i] = int32(rng.Intn(n))
	}
	mk := func(mode Mode) *Loop {
		return &Loop{
			Cfg:  inspector.Config{P: 2, K: 2, NumIters: iters, NumElems: n},
			Mode: mode,
			Ind:  [][]int32{ind},
			Cost: KernelCost{Flops: 10, IntOps: 4},
		}
	}
	cm := machine.MANNA()
	gScheds, _ := mk(Gather).Schedules()
	rScheds, _ := mk(Reduce).Schedules()
	gPhases, _ := PhaseCosts(cm, mk(Gather), gScheds[0])
	rPhases, _ := PhaseCosts(cm, mk(Reduce), rScheds[0])
	var g, r int64
	for i := range gPhases {
		g += int64(gPhases[i])
		r += int64(rPhases[i])
	}
	if g >= r {
		t.Fatalf("gather cost %d >= reduce cost %d despite codegen factor", g, r)
	}
}

func TestIncrementalInspectorCostLinear(t *testing.T) {
	cm := machine.MANNA()
	l := &Loop{
		Cfg: inspector.Config{P: 2, K: 2, NumIters: 1000, NumElems: 100},
		Ind: [][]int32{make([]int32, 1000), make([]int32, 1000)},
	}
	c10 := IncrementalInspectorCost(cm, l, 10)
	c100 := IncrementalInspectorCost(cm, l, 100)
	if c100 != 10*c10 {
		t.Fatalf("incremental cost not linear: %d vs %d", c10, c100)
	}
	if IncrementalInspectorCost(cm, l, 0) != 0 {
		t.Fatal("zero changes should cost nothing")
	}
}

func TestRunSimUtilizationBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := eulerLikeLoop(rng, 4, 2, 3000, 600, inspector.Cyclic)
	res, err := RunSim(l, SimOptions{Steps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.EUUtilization <= 0 || res.EUUtilization > 1.0 {
		t.Fatalf("EU utilization = %v", res.EUUtilization)
	}
}

func TestRunSimFewerStepsThanWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	l := eulerLikeLoop(rng, 2, 2, 500, 128, inspector.Block)
	for _, steps := range []int{1, 2, 3} {
		res, err := RunSim(l, SimOptions{Steps: steps})
		if err != nil {
			t.Fatalf("steps=%d: %v", steps, err)
		}
		if res.Cycles <= 0 {
			t.Fatalf("steps=%d: cycles %d", steps, res.Cycles)
		}
	}
}

func TestRunSimSingleProcessorNoTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := eulerLikeLoop(rng, 1, 2, 500, 128, inspector.Block)
	res, err := RunSim(l, SimOptions{Steps: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.MsgsPerStep != 0 || res.BytesPerStep != 0 {
		t.Fatalf("single-processor run used the network: %v msgs", res.MsgsPerStep)
	}
}

func TestPortionBytes(t *testing.T) {
	l := &Loop{
		Cfg:  inspector.Config{P: 4, K: 2, NumIters: 10, NumElems: 64},
		Ind:  [][]int32{make([]int32, 10)},
		Cost: KernelCost{Comp: 3},
	}
	// 64 elems / 8 portions = 8 elems * 3 comps * 8 bytes.
	if got := l.PortionBytes(); got != 8*3*8 {
		t.Fatalf("PortionBytes = %d", got)
	}
}

func TestSimOptionsScaleDownForShortRuns(t *testing.T) {
	// Steps=1 must not deadlock on warm/measure defaults.
	rng := rand.New(rand.NewSource(12))
	l := eulerLikeLoop(rng, 3, 1, 300, 90, inspector.Cyclic)
	res, err := RunSim(l, SimOptions{Steps: 1, WarmSteps: 5, MeasureSteps: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerStep <= 0 {
		t.Fatal("per-step time missing")
	}
}
