package rts

import (
	"path/filepath"
	"testing"

	"irred/internal/benchfmt"
	"irred/internal/dataflow"
)

// cell builds a clean measured cell with the given trimmed-mean score.
func tunerCell(kernel, class, engine string, p, k int, dist string, checked bool, ms float64) benchfmt.Cell {
	c := benchfmt.Cell{
		Kernel: kernel, Class: class, Engine: engine,
		P: p, K: k, Dist: dist, Checked: checked,
		Wall: benchfmt.Stats{Count: 5, MeanMS: ms, TrimmedMS: ms},
	}
	chk := "unchecked"
	if checked {
		chk = "checked"
	}
	c.ID = kernel + "/" + class + "/" + engine + "/" + dist + "/" + chk
	return c
}

// tunerTrajectory is a synthetic BENCH summary in which different
// workload classes are measured fastest on different strategies.
func tunerTrajectory() *benchfmt.Summary {
	s := &benchfmt.Summary{Stamp: benchfmt.Stamp{Schema: benchfmt.Schema, Date: "2026-08-08"}}
	s.Cells = []benchfmt.Cell{
		// mvm/S: native P=4 k=2 cyclic wins.
		tunerCell("mvm", "S", "native", 4, 2, "cyclic", false, 2.0),
		tunerCell("mvm", "S", "native", 2, 1, "block", false, 5.0),
		tunerCell("mvm", "S", "treefold", 4, 1, "block", false, 3.0),
		tunerCell("mvm", "S", "interp", 1, 1, "block", true, 40.0),
		// euler/2k: treefold P=2 wins over every rotation cell.
		tunerCell("euler", "2k", "treefold", 2, 1, "block", false, 1.5),
		tunerCell("euler", "2k", "native", 4, 2, "cyclic", false, 4.0),
		tunerCell("euler", "2k", "native", 1, 1, "block", true, 9.0),
		// raw/small: distributed P=2 k=1 wins.
		tunerCell("raw", "small", "distributed", 2, 1, "cyclic", true, 0.8),
		tunerCell("raw", "small", "native", 2, 2, "cyclic", true, 1.1),
	}
	// Decoys that must never win: a modeled sim cell faster than
	// everything, a faster-still errored cell, and a chaos cell.
	sim := tunerCell("mvm", "S", "sim", 4, 2, "cyclic", true, 0.001)
	sim.SimSeconds = 0.5
	s.Cells = append(s.Cells, sim)
	bad := tunerCell("euler", "2k", "native", 4, 1, "block", false, 0.001)
	bad.Error = "boom"
	s.Cells = append(s.Cells, bad)
	chaos := tunerCell("raw", "small", "distributed", 2, 2, "cyclic", true, 0.001)
	chaos.Chaos = "drop=0.1"
	chaos.ID += "/chaos=drop=0.1"
	s.Cells = append(s.Cells, chaos)
	return s
}

var treeFoldLic = &dataflow.License{Rotation: true, Tile: true, TreeFold: true}

// The headline property: the tuner picks demonstrably different
// (engine, P, k) for different workload classes, from measurement.
func TestTunerPicksDifferPerClass(t *testing.T) {
	tn := NewTuner(tunerTrajectory(), TunerOptions{MaxP: 8, AllowUnchecked: true})

	mvm := tn.Pick("mvm", "S", treeFoldLic)
	if mvm.Engine != "native" || mvm.P != 4 || mvm.K != 2 || mvm.Dist != "cyclic" {
		t.Fatalf("mvm/S pick = %+v", mvm)
	}
	euler := tn.Pick("euler", "2k", treeFoldLic)
	if euler.Engine != "treefold" || euler.P != 2 {
		t.Fatalf("euler/2k pick = %+v", euler)
	}
	raw := tn.Pick("raw", "small", nil)
	if raw.Engine != "distributed" || raw.P != 2 || raw.K != 1 {
		t.Fatalf("raw/small pick = %+v", raw)
	}
	if mvm.Engine == euler.Engine && mvm.P == euler.P && mvm.K == euler.K {
		t.Fatal("picks do not differ across classes")
	}
	for _, p := range []Pick{mvm, euler, raw} {
		if p.Source == "heuristic" || p.ScoreMS <= 0 {
			t.Fatalf("pick not backed by a measured cell: %+v", p)
		}
	}
}

// Sim, errored and chaos cells must never back a pick even when fastest.
func TestTunerExcludesDecoys(t *testing.T) {
	tn := NewTuner(tunerTrajectory(), TunerOptions{MaxP: 8, AllowUnchecked: true})
	if p := tn.Pick("mvm", "S", treeFoldLic); p.Engine == "sim" {
		t.Fatalf("sim cell won: %+v", p)
	}
	if p := tn.Pick("euler", "2k", treeFoldLic); p.ScoreMS < 1 {
		t.Fatalf("errored cell won: %+v", p)
	}
	if p := tn.Pick("raw", "small", nil); p.K == 2 {
		t.Fatalf("chaos cell won: %+v", p)
	}
}

// Without a TreeFoldLegal license the treefold winner is ineligible and
// the best rotation cell is picked instead.
func TestTunerRespectsLicense(t *testing.T) {
	tn := NewTuner(tunerTrajectory(), TunerOptions{MaxP: 8, AllowUnchecked: true})
	p := tn.Pick("euler", "2k", &dataflow.License{Rotation: true})
	if p.Engine != "native" || p.P != 4 {
		t.Fatalf("unlicensed pick = %+v", p)
	}
	if p := tn.Pick("euler", "2k", nil); p.Engine == "treefold" {
		t.Fatalf("nil license granted tree-fold: %+v", p)
	}
}

// MaxP excludes cells measured at higher parallelism than the host has.
func TestTunerRespectsMaxP(t *testing.T) {
	tn := NewTuner(tunerTrajectory(), TunerOptions{MaxP: 2, AllowUnchecked: true})
	p := tn.Pick("mvm", "S", treeFoldLic)
	if p.P > 2 {
		t.Fatalf("pick oversubscribes MaxP=2: %+v", p)
	}
	if p.Engine != "native" || p.P != 2 {
		t.Fatalf("expected the P=2 native cell, got %+v", p)
	}
}

// The engine allowlist models consumers that can only execute a subset
// (the irredd serving path: native + distributed).
func TestTunerEngineAllowlist(t *testing.T) {
	tn := NewTuner(tunerTrajectory(), TunerOptions{
		MaxP: 8, AllowUnchecked: true, Engines: []string{"native", "distributed"},
	})
	p := tn.Pick("euler", "2k", treeFoldLic)
	if p.Engine != "native" {
		t.Fatalf("allowlist ignored: %+v", p)
	}
}

// Checked-only consumers never receive proof-elided picks.
func TestTunerCheckedOnly(t *testing.T) {
	tn := NewTuner(tunerTrajectory(), TunerOptions{MaxP: 8})
	p := tn.Pick("euler", "2k", treeFoldLic)
	if !p.Checked {
		t.Fatalf("unchecked cell picked by a checked-only consumer: %+v", p)
	}
	if p.Source == "heuristic" {
		t.Fatalf("a checked cell exists and must back the pick: %+v", p)
	}
}

// Unknown workloads and nil trajectories fall back to the heuristic.
func TestTunerFallbackHeuristic(t *testing.T) {
	tn := NewTuner(tunerTrajectory(), TunerOptions{MaxP: 8})
	p := tn.Pick("moldyn", "10k", nil)
	if p.Source != "heuristic" || p.Engine != "native" || p.P < 1 || p.K < 1 {
		t.Fatalf("fallback pick = %+v", p)
	}
	empty := NewTuner(nil, TunerOptions{MaxP: 2, AllowUnchecked: true})
	p = empty.Pick("mvm", "S", nil)
	if p.Source != "heuristic" || p.P != 2 || p.K != 2 || p.Checked {
		t.Fatalf("nil-trajectory pick = %+v", p)
	}
}

func TestTunerWorkloads(t *testing.T) {
	tn := NewTuner(tunerTrajectory(), TunerOptions{})
	got := tn.Workloads()
	want := [][2]string{{"euler", "2k"}, {"mvm", "S"}, {"raw", "small"}}
	if len(got) != len(want) {
		t.Fatalf("workloads = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("workloads = %v, want %v", got, want)
		}
	}
}

func TestNewTunerFromDir(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := NewTunerFromDir(dir, TunerOptions{}); err == nil {
		t.Fatal("empty dir must error")
	}
	s := tunerTrajectory()
	if err := benchfmt.Write(filepath.Join(dir, "BENCH_2026-08-01.json"), s); err != nil {
		t.Fatal(err)
	}
	if err := benchfmt.Write(filepath.Join(dir, "BENCH_2026-08-08.json"), s); err != nil {
		t.Fatal(err)
	}
	tn, path, err := NewTunerFromDir(dir, TunerOptions{MaxP: 8, AllowUnchecked: true})
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_2026-08-08.json" {
		t.Fatalf("loaded %s, want the newest trajectory", path)
	}
	if p := tn.Pick("mvm", "S", treeFoldLic); p.Source == "heuristic" {
		t.Fatalf("trajectory not loaded: %+v", p)
	}
}

// TestNewTunerFromDirBlendsNewestWins: the tuner sees the union of every
// BENCH file in the directory — a cell only the older sweep measured
// still backs picks, while a cell both sweeps measured uses the newer
// measurement even when the older one scored better.
func TestNewTunerFromDirBlendsNewestWins(t *testing.T) {
	dir := t.TempDir()

	old := &benchfmt.Summary{Stamp: benchfmt.Stamp{Schema: benchfmt.Schema, Date: "2026-08-01"}}
	old.Cells = []benchfmt.Cell{
		// Only the old sweep covered moldyn: the blend must keep it.
		tunerCell("moldyn", "10k", "distributed", 4, 1, "block", true, 3.0),
		// Both sweeps cover this mvm cell; old says 1ms — stale.
		tunerCell("mvm", "S", "native", 4, 2, "cyclic", true, 1.0),
	}
	newer := &benchfmt.Summary{Stamp: benchfmt.Stamp{Schema: benchfmt.Schema, Date: "2026-08-08"}}
	newer.Cells = []benchfmt.Cell{
		// Re-measured: slower now, but newest wins over the stale 1ms.
		tunerCell("mvm", "S", "native", 4, 2, "cyclic", true, 6.0),
		// A competing strategy only the new sweep measured; at 2ms it must
		// beat the re-measured 6ms cell, which it would lose to if the
		// stale 1ms measurement survived the blend.
		tunerCell("mvm", "S", "native", 2, 1, "block", true, 2.0),
	}
	if err := benchfmt.Write(filepath.Join(dir, "BENCH_2026-08-01.json"), old); err != nil {
		t.Fatal(err)
	}
	if err := benchfmt.Write(filepath.Join(dir, "BENCH_2026-08-08.json"), newer); err != nil {
		t.Fatal(err)
	}

	tn, path, err := NewTunerFromDir(dir, TunerOptions{MaxP: 8})
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_2026-08-08.json" {
		t.Fatalf("blend reported %s, want the newest file as provenance", path)
	}
	if p := tn.Pick("moldyn", "10k", nil); p.Engine != "distributed" || p.ScoreMS != 3.0 {
		t.Fatalf("cell unique to the older sweep lost in the blend: %+v", p)
	}
	if p := tn.Pick("mvm", "S", nil); p.P != 2 || p.ScoreMS != 2.0 {
		t.Fatalf("stale measurement survived the blend: %+v", p)
	}
	mvmID := "mvm/S/native/cyclic/checked"
	c, ok := tn.Summary().Cell(mvmID)
	if !ok || c.Wall.TrimmedMS != 6.0 {
		t.Fatalf("blended cell %s = %+v, want the 6ms re-measurement", mvmID, c)
	}
	if tn.Summary().Date != "2026-08-08" {
		t.Fatalf("blend stamped %q, want the newest sweep's date", tn.Summary().Date)
	}
}
