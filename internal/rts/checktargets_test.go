package rts

import (
	"math/rand"
	"strings"
	"testing"

	"irred/internal/dataflow"
	"irred/internal/inspector"
)

// corruptScheduleTarget rewrites the first main-loop target in the schedule
// set to an index outside the local image, simulating a truncated or
// mis-deserialized schedule cache entry. Raw indirection arrays are
// validated by the inspector, so only post-inspection corruption can
// produce such a schedule.
func corruptScheduleTarget(t *testing.T, scheds []*inspector.Schedule, to int32) {
	t.Helper()
	for _, s := range scheds {
		for ph := range s.Phases {
			prog := &s.Phases[ph]
			for r := range prog.Ind {
				if len(prog.Ind[r]) > 0 {
					prog.Ind[r][0] = to
					return
				}
			}
		}
	}
	t.Fatal("no schedule target to corrupt")
}

func TestCheckTargetsCatchesCorruptedSchedule(t *testing.T) {
	for _, to := range []int32{-3, 1 << 20} {
		rng := rand.New(rand.NewSource(11))
		l := randLoop(rng, 4, 2, 200, 64, 2, inspector.Cyclic, 1)
		n, err := NewNative(l)
		if err != nil {
			t.Fatal(err)
		}
		if !n.CheckTargets {
			t.Fatal("target checks must default to on without a proof")
		}
		corruptScheduleTarget(t, n.Scheds, to)
		n.Contribs = func(_, i int, out []float64) {
			for r := range out {
				out[r] = 1
			}
		}
		err = n.Run(1) // must complete, not panic
		if err == nil {
			t.Fatalf("target %d: corrupted schedule ran without a recorded violation", to)
		}
		if !strings.Contains(err.Error(), "target check") {
			t.Fatalf("target %d: unexpected error: %v", to, err)
		}
	}
}

func TestCheckTargetsCatchesCorruptedDrain(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	l := randLoop(rng, 4, 2, 300, 64, 2, inspector.Cyclic, 1)
	n, err := NewNative(l)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := false
	for _, s := range n.Scheds {
		for ph := range s.Phases {
			if len(s.Phases[ph].Copies) > 0 {
				s.Phases[ph].Copies[0].Elem = int32(l.Cfg.NumElems + 7)
				corrupted = true
				break
			}
		}
		if corrupted {
			break
		}
	}
	if !corrupted {
		t.Skip("schedule has no copy pairs to corrupt")
	}
	n.Contribs = func(_, i int, out []float64) {
		for r := range out {
			out[r] = 1
		}
	}
	err = n.Run(1)
	if err == nil {
		t.Fatal("corrupted drain ran without a recorded violation")
	}
	if !strings.Contains(err.Error(), "drain") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestCheckTargetsCatchesCorruptedGather(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	l := randLoop(rng, 4, 2, 200, 64, 1, inspector.Cyclic, 1)
	l.Mode = Gather
	n, err := NewNative(l)
	if err != nil {
		t.Fatal(err)
	}
	corruptScheduleTarget(t, n.Scheds, int32(l.Cfg.NumElems+1))
	n.Consume = func(_, _ int, _ []float64) {}
	err = n.Run(1)
	if err == nil {
		t.Fatal("corrupted gather schedule ran without a recorded violation")
	}
	if !strings.Contains(err.Error(), "gathers") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// A proof covering the indirection contents licenses eliding the per-write
// target checks; a proof for a different extent does not.
func TestProofElidesTargetChecks(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	l := randLoop(rng, 4, 2, 200, 64, 2, inspector.Cyclic, 1)
	l.Proof = dataflow.IndirectionFacts("test loop", l.Cfg.NumElems, l.Ind...)
	if l.Proof == nil {
		t.Fatal("in-range indirection must yield a proof")
	}
	n, err := NewNative(l)
	if err != nil {
		t.Fatal(err)
	}
	if n.CheckTargets {
		t.Fatal("proof-carrying loop must elide target checks")
	}
	n.Contribs = func(_, i int, out []float64) {
		for r := range out {
			out[r] = float64(i + r)
		}
	}
	if err := n.Run(2); err != nil {
		t.Fatalf("proven run failed: %v", err)
	}

	// Same proof object, wrong extent: the claim does not transfer.
	stale := &dataflow.Facts{IndProven: true, NumElems: l.Cfg.NumElems / 2}
	l2 := randLoop(rng, 4, 2, 200, 64, 2, inspector.Cyclic, 1)
	l2.Proof = stale
	n2, err := NewNative(l2)
	if err != nil {
		t.Fatal(err)
	}
	if !n2.CheckTargets {
		t.Fatal("proof for a different extent must not elide target checks")
	}
}

// Checked and proven executions must agree bit-for-bit on valid schedules.
func TestCheckTargetsResultUnchanged(t *testing.T) {
	contrib := func(i, r int) float64 { return float64(i*3 + r + 1) }
	run := func(check bool) []float64 {
		rng := rand.New(rand.NewSource(15))
		l := randLoop(rng, 4, 2, 400, 64, 2, inspector.Cyclic, 1)
		n, err := NewNative(l)
		if err != nil {
			t.Fatal(err)
		}
		n.CheckTargets = check
		n.Contribs = func(_, i int, out []float64) {
			for r := range out {
				out[r] = contrib(i, r)
			}
		}
		if err := n.Run(2); err != nil {
			t.Fatal(err)
		}
		return n.X
	}
	a, b := run(true), run(false)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("x[%d]: checked %v != unchecked %v", i, a[i], b[i])
		}
	}
}
