package rts

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"irred/internal/fault"
	"irred/internal/inspector"
	"irred/internal/obs"
)

// intContrib builds integral contributions: every partial sum is exactly
// representable in float64, so a recovered run must match the sequential
// reference BITWISE — recovery either reproduces the exact computation or
// it is broken, there is no tolerance to hide behind.
func intContrib(refs int) (ContribFunc, func(i, r, c int) float64) {
	f := func(i, r, c int) float64 { return float64((i%7+1)*(r+2) + c) }
	return func(_, i int, out []float64) {
		for r := 0; r < refs; r++ {
			out[r] = f(i, r, 0)
		}
	}, f
}

func exactEq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// hardened builds a Distributed over a random loop with fast-recovery
// tuning so injected faults resolve in milliseconds. The returned
// reference gives the exact sequential result for `steps` sweeps (the
// per-sweep contributions are step-independent, so sweeps scale).
func hardened(t *testing.T, seed int64, p, k int, spec fault.Spec) (*Distributed, func(steps int) []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	l := randLoop(rng, p, k, 240, 60, 2, inspector.Cyclic, 1)
	d, err := NewDistributed(l)
	if err != nil {
		t.Fatal(err)
	}
	contrib, ref := intContrib(len(l.Ind))
	d.Contribs = contrib
	d.Inject = fault.New(spec)
	d.Watchdog = 15 * time.Millisecond
	d.MaxResend = 3
	one := seqReduce(l, ref)
	return d, func(steps int) []float64 {
		out := make([]float64, len(one))
		for i, v := range one {
			out[i] = float64(steps) * v
		}
		return out
	}
}

// TestRotationRecoversDroppedPayload: one payload lost on the wire is
// recovered from the sender's retransmit buffer after the watchdog, and
// the result is bitwise exact.
func TestRotationRecoversDroppedPayload(t *testing.T) {
	d, want := hardened(t, 101, 3, 2, fault.Spec{
		Targets: []fault.Target{{Class: fault.Drop, Proc: 1, Phase: 2, Sweep: 0}},
	})
	got, err := d.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if !exactEq(got, want(2)) {
		t.Fatal("dropped-payload run diverged from sequential")
	}
	c := d.Inject.Counters()
	if c.Drops != 1 || c.Recoveries < 1 {
		t.Fatalf("counters %+v: want 1 drop and >=1 recovery", c)
	}
}

// TestRotationRecoversCorruptedPayload: the checksum catches in-flight
// corruption and the receiver re-fetches the intact payload.
func TestRotationRecoversCorruptedPayload(t *testing.T) {
	d, want := hardened(t, 102, 4, 1, fault.Spec{
		Targets: []fault.Target{{Class: fault.Corrupt, Proc: 2, Phase: 1, Sweep: 1}},
	})
	got, err := d.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if !exactEq(got, want(3)) {
		t.Fatal("corrupted-payload run diverged from sequential")
	}
	c := d.Inject.Counters()
	if c.Corrupts != 1 || c.Recoveries < 1 {
		t.Fatalf("counters %+v: want 1 corrupt and >=1 recovery", c)
	}
}

// TestRotationToleratesDelayAndDuplicate: a late payload is either
// accepted or superseded by a retransmit, and its duplicate is discarded
// by the sweep/portion tags. Either way the result is exact.
func TestRotationToleratesDelayAndDuplicate(t *testing.T) {
	d, want := hardened(t, 103, 3, 2, fault.Spec{
		DelayMS: 40, // > watchdog: forces the resend path
		Targets: []fault.Target{
			{Class: fault.Delay, Proc: 0, Phase: 3, Sweep: 0},
			{Class: fault.Duplicate, Proc: 2, Phase: 2, Sweep: 1},
		},
	})
	got, err := d.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if !exactEq(got, want(2)) {
		t.Fatal("delay/dup run diverged from sequential")
	}
	c := d.Inject.Counters()
	if c.Delays != 1 || c.Dups != 1 {
		t.Fatalf("counters %+v: want 1 delay and 1 dup", c)
	}
}

// TestTransientStallRecovers: a stalled processor slows its phase but the
// protocol waits it out (retransmit fetch fails until the payload exists,
// then succeeds); no data is lost.
func TestTransientStallRecovers(t *testing.T) {
	d, want := hardened(t, 104, 3, 1, fault.Spec{
		StallMS: 35, // a couple of watchdog periods
		Targets: []fault.Target{{Class: fault.Stall, Proc: 1, Phase: 1, Sweep: 0}},
	})
	got, err := d.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if !exactEq(got, want(2)) {
		t.Fatal("stalled run diverged from sequential")
	}
	if c := d.Inject.Counters(); c.Stalls != 1 {
		t.Fatalf("counters %+v: want 1 stall", c)
	}
}

// TestKernelPanicReplaysSweep: a poisoned iteration panics one worker;
// the supervisor catches it, discards the half-done sweep, and replays
// from the checkpoint. Contributions are pure, so replay is bit-exact.
func TestKernelPanicReplaysSweep(t *testing.T) {
	d, want := hardened(t, 105, 3, 2, fault.Spec{
		Targets: []fault.Target{{Class: fault.Panic, Proc: 1, Phase: -1, Sweep: -1, Iter: -1}},
	})
	got, err := d.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if !exactEq(got, want(3)) {
		t.Fatal("panic-recovered run diverged from sequential")
	}
	c := d.Inject.Counters()
	if c.Panics != 1 || c.Recoveries < 1 {
		t.Fatalf("counters %+v: want 1 panic and >=1 recovery", c)
	}
}

// TestPeerLossDegradesToPMinusOne: a permanently killed processor is
// detected by its downstream neighbor's exhausted watchdog; the survivors
// recompute the ownership schedule for P-1 locally and resume from the
// checkpoint. The result is still bitwise exact because the schedule is a
// pure function of the shape and contributions are pure functions of the
// iteration number.
func TestPeerLossDegradesToPMinusOne(t *testing.T) {
	d, want := hardened(t, 106, 4, 2, fault.Spec{
		Targets: []fault.Target{{Class: fault.Kill, Proc: 2, Phase: 3, Sweep: 1}},
	})
	got, err := d.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if !exactEq(got, want(3)) {
		t.Fatal("degraded run diverged from sequential")
	}
	if d.Loop.Cfg.P != 3 {
		t.Fatalf("surviving machine has P = %d, want 3", d.Loop.Cfg.P)
	}
	c := d.Inject.Counters()
	if c.Kills != 1 || c.Recoveries < 1 {
		t.Fatalf("counters %+v: want 1 kill and >=1 recovery", c)
	}
}

// TestLastSurvivorCannotDegrade: killing the only processor is the one
// unrecoverable fault — Run must return an error, not deadlock.
func TestLastSurvivorCannotDegrade(t *testing.T) {
	d, _ := hardened(t, 107, 1, 2, fault.Spec{
		Targets: []fault.Target{{Class: fault.Kill, Proc: 0, Phase: 0, Sweep: 0}},
	})
	done := make(chan error, 1)
	go func() {
		_, err := d.Run(1)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("killing the last processor succeeded")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run deadlocked on an unrecoverable fault")
	}
}

// TestRotationErrorPropagatesStructured: a receive that exhausts every
// recovery attempt while the sender is alive yields a RotationError with
// the processor, phase, and expected portion — and Run surfaces it
// (wrapped) instead of deadlocking, once replays are exhausted too.
func TestRotationErrorPropagatesStructured(t *testing.T) {
	d, _ := hardened(t, 108, 2, 1, fault.Spec{
		StallMS: 150, // far past watchdog * (resend+1): the receive must fail
		Targets: []fault.Target{
			{Class: fault.Stall, Proc: 1, Phase: 0, Sweep: 0},
			{Class: fault.Stall, Proc: 1, Phase: 0, Sweep: -1}, // re-fires on the replay
		},
	})
	d.Watchdog = 10 * time.Millisecond
	d.MaxResend = 2
	d.MaxRecoveries = 1
	_, err := d.Run(1)
	if err == nil {
		t.Fatal("expected a rotation failure")
	}
	var re *RotationError
	if !errors.As(err, &re) {
		t.Fatalf("error %v does not carry a *RotationError", err)
	}
	if re.Proc != 0 || re.Expected != re.Got && re.Got != -1 {
		t.Fatalf("rotation error %+v: want receiver proc 0, timeout", re)
	}
	if re.Reason != "timeout" {
		t.Fatalf("reason %q, want timeout", re.Reason)
	}
}

// TestRunContextCancellation: cancelling mid-run returns ctx.Err() and
// never deadlocks, even with faults in flight.
func TestRunContextCancellation(t *testing.T) {
	d, _ := hardened(t, 109, 3, 2, fault.Spec{Seed: 9, StallRate: 1, StallMS: 30})
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := d.RunContext(ctx, 1000)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want deadline exceeded", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled run did not return")
	}
}

// TestSeedResume: 2 sweeps, checkpoint, then a fresh engine seeded from
// the checkpoint running 1 more sweep equals 3 sweeps in one go — the
// contract the service's checkpoint/resume path is built on.
func TestSeedResume(t *testing.T) {
	rng := rand.New(rand.NewSource(110))
	l := randLoop(rng, 3, 2, 200, 50, 2, inspector.Cyclic, 1)
	contrib, _ := intContrib(len(l.Ind))

	full, err := NewDistributed(l)
	if err != nil {
		t.Fatal(err)
	}
	full.Contribs = contrib
	want, err := full.Run(3)
	if err != nil {
		t.Fatal(err)
	}

	first, err := NewDistributed(l)
	if err != nil {
		t.Fatal(err)
	}
	first.Contribs = contrib
	mid, err := first.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := NewDistributed(l)
	if err != nil {
		t.Fatal(err)
	}
	resumed.Contribs = contrib
	if err := resumed.Seed(mid); err != nil {
		t.Fatal(err)
	}
	got, err := resumed.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if !exactEq(got, want) {
		t.Fatal("seeded resume diverged from the uninterrupted run")
	}
	if err := resumed.Seed([]float64{1}); err == nil {
		t.Fatal("short seed accepted")
	}
}

// TestCheckpointCallback: CheckpointEvery=1 delivers one snapshot per
// sweep, and the last snapshot equals the final result.
func TestCheckpointCallback(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	l := randLoop(rng, 2, 2, 150, 40, 2, inspector.Block, 1)
	d, err := NewDistributed(l)
	if err != nil {
		t.Fatal(err)
	}
	contrib, _ := intContrib(len(l.Ind))
	d.Contribs = contrib
	var sweeps []int
	var last []float64
	d.CheckpointEvery = 1
	d.Checkpoint = func(sweep int, x []float64) error {
		sweeps = append(sweeps, sweep)
		last = x
		return nil
	}
	got, err := d.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweeps) != 4 || sweeps[3] != 4 {
		t.Fatalf("checkpoints at %v, want [1 2 3 4]", sweeps)
	}
	if !exactEq(last, got) {
		t.Fatal("final checkpoint disagrees with the result")
	}
}

// TestChaosSoakBitwise: every recoverable fault class at once, random
// rates, several shapes — the recovered result must still be bitwise
// sequential-exact, and the spans must show the recovery machinery fired.
func TestChaosSoakBitwise(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		spec := fault.Spec{
			Seed:      seed,
			DropRate:  0.03,
			DelayRate: 0.03,
			DupRate:   0.03, CorruptRate: 0.03,
			StallRate: 0.01, StallMS: 5,
			DelayMS: 5,
		}
		d, want := hardened(t, 200+seed, 3, 2, spec)
		tr := obs.New(0)
		d.Trace = tr
		got, err := d.Run(4)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !exactEq(got, want(4)) {
			t.Fatalf("seed %d: chaos run diverged from sequential", seed)
		}
		c := d.Inject.Counters()
		if c.Total() == 0 {
			t.Fatalf("seed %d: chaos injected nothing", seed)
		}
		if (c.Drops > 0 || c.Corrupts > 0) && c.Recoveries == 0 {
			t.Fatalf("seed %d: faults fired (%s) but nothing recovered", seed, c.Summary())
		}
	}
}
