package rts

import (
	"math/rand"
	"testing"

	"irred/internal/inspector"
	"irred/internal/obs"
)

// traceLoop builds a small 2-reference reduce loop with a tracer attached.
func traceLoop(t *testing.T, p, k int) *Loop {
	t.Helper()
	rng := rand.New(rand.NewSource(23))
	const iters, elems = 400, 64
	ind := make([][]int32, 2)
	for r := range ind {
		ind[r] = make([]int32, iters)
		for i := range ind[r] {
			ind[r][i] = int32(rng.Intn(elems))
		}
	}
	return &Loop{
		Cfg:   inspector.Config{P: p, K: k, NumIters: iters, NumElems: elems, Dist: inspector.Cyclic},
		Mode:  Reduce,
		Ind:   ind,
		Trace: obs.New(1 << 16),
	}
}

// countSpans tallies snapshot spans by name, checking tag ranges.
func countSpans(t *testing.T, l *Loop, steps int) map[string]int {
	t.Helper()
	spans, _ := l.Trace.Snapshot()
	counts := map[string]int{}
	kp := l.Cfg.NumPhases()
	for _, s := range spans {
		counts[s.Name]++
		if s.Proc < -1 || int(s.Proc) >= l.Cfg.P {
			t.Fatalf("span %+v: proc out of range", s)
		}
		if s.Phase < -1 || int(s.Phase) >= kp {
			t.Fatalf("span %+v: phase out of range", s)
		}
		if s.Step < -1 || int(s.Step) >= steps {
			t.Fatalf("span %+v: step out of range", s)
		}
		if s.Name == obs.SpanCompute && (s.Portion < 0 || int(s.Portion) >= kp) {
			t.Fatalf("span %+v: portion out of range", s)
		}
		if s.DurNS < 0 {
			t.Fatalf("span %+v: negative duration", s)
		}
	}
	return counts
}

// TestNativeTracePipelined checks the span census on the no-Update
// (pipelined) path: per processor and step, kp compute + kp copy spans,
// and (kp-K) mid-sweep + K drain waits.
func TestNativeTracePipelined(t *testing.T) {
	const P, K, steps = 3, 2, 4
	l := traceLoop(t, P, K)
	n, err := NewNative(l)
	if err != nil {
		t.Fatal(err)
	}
	n.Contribs = func(_, i int, out []float64) { out[0], out[1] = 1, -1 }
	if err := n.Run(steps); err != nil {
		t.Fatal(err)
	}

	counts := countSpans(t, l, steps)
	kp := l.Cfg.NumPhases()
	if want := P * steps * kp; counts[obs.SpanCompute] != want {
		t.Fatalf("compute spans = %d, want %d", counts[obs.SpanCompute], want)
	}
	if want := P * steps * kp; counts[obs.SpanCopy] != want {
		t.Fatalf("copy spans = %d, want %d", counts[obs.SpanCopy], want)
	}
	if want := P * steps * kp; counts[obs.SpanWait] != want {
		// (kp - K) mid-sweep receives + K end-of-sweep drains = kp.
		t.Fatalf("wait spans = %d, want %d", counts[obs.SpanWait], want)
	}
	if counts[obs.SpanInspect] != P {
		t.Fatalf("inspect spans = %d, want %d", counts[obs.SpanInspect], P)
	}
	if counts[obs.SpanUpdate] != 0 {
		t.Fatalf("update spans on pipelined path: %d", counts[obs.SpanUpdate])
	}
}

// TestNativeTraceBarrier checks the barrier path records update spans and
// the same per-phase census.
func TestNativeTraceBarrier(t *testing.T) {
	const P, K, steps = 2, 2, 3
	l := traceLoop(t, P, K)
	n, err := NewNative(l)
	if err != nil {
		t.Fatal(err)
	}
	n.Contribs = func(_, i int, out []float64) { out[0], out[1] = 1, 1 }
	n.Update = func(p, step int) {}
	if err := n.Run(steps); err != nil {
		t.Fatal(err)
	}

	counts := countSpans(t, l, steps)
	kp := l.Cfg.NumPhases()
	if want := P * steps * kp; counts[obs.SpanCompute] != want {
		t.Fatalf("compute spans = %d, want %d", counts[obs.SpanCompute], want)
	}
	if want := P * steps; counts[obs.SpanUpdate] != want {
		t.Fatalf("update spans = %d, want %d", counts[obs.SpanUpdate], want)
	}
}

// TestNativeNoTraceIsDefault confirms an untraced run records nothing and
// does not allocate a tracer.
func TestNativeNoTraceIsDefault(t *testing.T) {
	l := traceLoop(t, 2, 1)
	l.Trace = nil
	n, err := NewNative(l)
	if err != nil {
		t.Fatal(err)
	}
	if n.Trace != nil {
		t.Fatal("tracer appeared from nowhere")
	}
	n.Contribs = func(_, i int, out []float64) { out[0], out[1] = 1, 1 }
	if err := n.Run(2); err != nil {
		t.Fatal(err)
	}
}
