package rts

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"irred/internal/inspector"
)

func ctxTestLoop(seed int64, p, k, iters, elems int) *Loop {
	rng := rand.New(rand.NewSource(seed))
	ind := make([][]int32, 1)
	ind[0] = make([]int32, iters)
	for i := range ind[0] {
		ind[0][i] = int32(rng.Intn(elems))
	}
	return &Loop{
		Cfg:  inspector.Config{P: p, K: k, NumIters: iters, NumElems: elems, Dist: inspector.Cyclic},
		Mode: Reduce,
		Ind:  ind,
	}
}

func onesContrib(out []float64) ContribFunc {
	_ = out
	return func(p, i int, o []float64) { o[0] = 1 }
}

func TestNewNativeFromValidation(t *testing.T) {
	l := ctxTestLoop(1, 4, 2, 200, 32)
	scheds, err := l.Schedules()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := NewNativeFrom(l, scheds[:2]); err == nil {
		t.Fatal("accepted a truncated schedule set")
	}
	swapped := append([]*inspector.Schedule(nil), scheds...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if _, err := NewNativeFrom(l, swapped); err == nil {
		t.Fatal("accepted schedules out of processor order")
	}
	withNil := append([]*inspector.Schedule(nil), scheds...)
	withNil[2] = nil
	if _, err := NewNativeFrom(l, withNil); err == nil {
		t.Fatal("accepted a nil schedule")
	}
	other := ctxTestLoop(2, 4, 1, 200, 32) // same P, different k
	otherScheds, err := other.Schedules()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewNativeFrom(l, otherScheds); err == nil {
		t.Fatal("accepted schedules built for a different configuration")
	}
}

// TestNewNativeFromEquivalence: a run over injected (cached) schedules is
// bitwise identical to a run that built its own.
func TestNewNativeFromEquivalence(t *testing.T) {
	l := ctxTestLoop(3, 4, 2, 1000, 65)
	built, err := NewNative(l)
	if err != nil {
		t.Fatal(err)
	}
	built.Contribs = onesContrib(nil)
	if err := built.Run(3); err != nil {
		t.Fatal(err)
	}

	scheds, err := l.Schedules()
	if err != nil {
		t.Fatal(err)
	}
	injected, err := NewNativeFrom(l, scheds)
	if err != nil {
		t.Fatal(err)
	}
	injected.Contribs = onesContrib(nil)
	if err := injected.Run(3); err != nil {
		t.Fatal(err)
	}
	for i := range built.X {
		if built.X[i] != injected.X[i] {
			t.Fatalf("element %d: built %v, injected %v", i, built.X[i], injected.X[i])
		}
	}
}

// runCancelled starts a long run, cancels it, and asserts prompt return.
func runCancelled(t *testing.T, n *Native, steps int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- n.RunContext(ctx, steps) }()
	time.Sleep(20 * time.Millisecond) // let the sweep get going
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled run did not return; token protocol deadlocked")
	}
}

func TestRunContextCancelPipelined(t *testing.T) {
	// No Update hook → the pipelined (barrier-free) path.
	n, err := NewNative(ctxTestLoop(4, 4, 2, 500, 64))
	if err != nil {
		t.Fatal(err)
	}
	n.Contribs = onesContrib(nil)
	runCancelled(t, n, 1_000_000)
}

func TestRunContextCancelBarrier(t *testing.T) {
	// An Update hook forces the per-step barrier path.
	n, err := NewNative(ctxTestLoop(5, 4, 2, 500, 64))
	if err != nil {
		t.Fatal(err)
	}
	n.Contribs = onesContrib(nil)
	n.Update = func(p, step int) {}
	runCancelled(t, n, 1_000_000)
}

func TestRunContextDeadline(t *testing.T) {
	n, err := NewNative(ctxTestLoop(6, 4, 2, 500, 64))
	if err != nil {
		t.Fatal(err)
	}
	n.Contribs = onesContrib(nil)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = n.RunContext(ctx, 1_000_000)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline honoured only after %v", elapsed)
	}
}

func TestRunContextCompletesUncancelled(t *testing.T) {
	// A background context changes nothing: same totals as Run.
	l := ctxTestLoop(7, 2, 2, 400, 33)
	n, err := NewNative(l)
	if err != nil {
		t.Fatal(err)
	}
	n.Contribs = onesContrib(nil)
	if err := n.RunContext(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range n.X {
		total += v
	}
	if want := float64(2 * l.Cfg.NumIters); total != want {
		t.Fatalf("total = %v, want %v", total, want)
	}
}
