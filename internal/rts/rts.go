// Package rts is the runtime system for the paper's execution strategy.
//
// A reduction loop is executed in k*P phases per processor. The rotated
// array — the reduction array for euler/moldyn-style loops, or the gathered
// vector for mvm-style loops — is divided into k*P portions that migrate
// from processor p to processor p-1 between their ownership phases, giving
// k-1 phases of slack in which the transfer overlaps computation. The
// communication schedule (what moves, when, and how much) depends only on
// P, k and the array extents — never on the contents of the indirection
// arrays, which is the paper's central property.
//
// Two engines execute the same schedules:
//
//   - the sim engine (simrun.go) builds an EARTH fiber program and runs it
//     on the deterministic machine model in package earth, reporting
//     simulated cycles exactly like the authors' MANNA simulator;
//   - the native engine (native.go) runs the schedule on real goroutines
//     with channel-based portion handoff, for wall-clock execution on the
//     host.
package rts

import (
	"fmt"

	"irred/internal/algebra"
	"irred/internal/dataflow"
	"irred/internal/inspector"
	"irred/internal/obs"
)

// Mode distinguishes how the rotated array is used.
type Mode int

const (
	// Reduce rotates the reduction (written) array: iterations add
	// contributions into owned elements or remote-buffer slots, and copy
	// loops fold the buffers in (euler, moldyn).
	Reduce Mode = iota
	// Gather rotates a read array: iterations consume the owned portion's
	// values and accumulate into iteration-aligned outputs (mvm). Gather
	// loops must use a single indirection reference, so no buffering is
	// ever needed — exactly the situation the paper describes for mvm.
	Gather
)

func (m Mode) String() string {
	if m == Gather {
		return "gather"
	}
	return "reduce"
}

// KernelCost describes the per-iteration work of a loop body to the
// simulator's cost model. The counts are per loop iteration (per edge /
// interaction / nonzero).
type KernelCost struct {
	Flops  int // floating-point operations
	IntOps int // integer/address operations beyond loop control

	// IterArrays is the number of 8-byte arrays indexed by the global
	// iteration number (the paper's Y(i): edge data, matrix values, ...).
	IterArrays int
	// NodeArrays is the number of replicated 8-byte arrays read through
	// each indirection reference (node coordinates etc.). Charged once per
	// reference per array.
	NodeArrays int
	// Comp is the number of 8-byte components per rotated-array element
	// (3 for a moldyn force vector). Zero means 1.
	Comp int

	// UpdateFlopsPerElem and UpdateArraysPerElem describe the regular
	// per-element loop between reduction sweeps (position updates, vector
	// ops); they are charged to the home block of each processor.
	UpdateFlopsPerElem  int
	UpdateArraysPerElem int

	// BcastComp is the number of 8-byte per-element components of
	// replicated read data that must be refreshed (all-gathered) after each
	// update. Zero for static read data and for mvm.
	BcastComp int
}

func (k KernelCost) comp() int {
	if k.Comp <= 0 {
		return 1
	}
	return k.Comp
}

// Loop couples a loop configuration with its indirection arrays and cost
// description; it is the unit both engines execute.
type Loop struct {
	Cfg  inspector.Config
	Mode Mode
	Ind  [][]int32
	Cost KernelCost
	// GatherOut, for gather loops, maps each iteration to the element of
	// the output accumulator it adds into (mvm's row index per nonzero).
	// Optional; used for cost modelling and by the native engine.
	GatherOut []int32
	// Trace, when non-nil, receives phase-level spans from the
	// LightInspector (via Schedules) and the native engine built over this
	// loop: per-phase compute, copy-loop and rotation-wait intervals. Nil
	// disables tracing at the cost of a nil check per phase.
	Trace *obs.Tracer
	// Proof, when non-nil, is the bounds proof carried by the compiled
	// loop. When it proves the indirection contents inside [0, NumElems)
	// (IndProven, for this NumElems), the native engine elides its
	// per-write target validation; otherwise every rotated-array write is
	// range-checked and violations are reported after the run instead of
	// panicking. A nil proof always means checked execution.
	Proof *dataflow.Facts
	// Combine is the fold operator applied at every accumulation site:
	// owned-element writes, remote-buffer slots and the copy-loop drain.
	// The zero value is float addition, so existing callers are
	// unchanged. Non-Add combines must carry an identity (buffers and
	// partial accumulators are seeded with it) — Validate enforces that.
	// Whether a non-Add combine may legally replace the sequential fold
	// is the schedule license's decision, made at compile time; the
	// runtime only demands the algebraic ingredients it needs.
	Combine algebra.Op
}

// Validate checks loop well-formedness beyond Config.Validate.
func (l *Loop) Validate() error {
	if err := l.Cfg.Validate(); err != nil {
		return err
	}
	if len(l.Ind) == 0 {
		return fmt.Errorf("rts: loop has no indirection arrays")
	}
	if l.Mode == Gather && len(l.Ind) != 1 {
		return fmt.Errorf("rts: gather loops need exactly one indirection reference, got %d", len(l.Ind))
	}
	for r, a := range l.Ind {
		if len(a) != l.Cfg.NumIters {
			return fmt.Errorf("rts: indirection %d has length %d, want %d", r, len(a), l.Cfg.NumIters)
		}
	}
	if l.Mode == Gather && l.Combine.Kind != algebra.Add {
		return fmt.Errorf("rts: gather loops accumulate iteration-aligned outputs with +=; combine %s is not supported", l.Combine)
	}
	if _, ok := l.Combine.Identity(); !ok {
		return fmt.Errorf("rts: combine %s has no known identity; remote buffers and partial accumulators cannot be seeded", l.Combine)
	}
	return nil
}

// Schedules runs the LightInspector for every processor.
func (l *Loop) Schedules() ([]*inspector.Schedule, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	out := make([]*inspector.Schedule, l.Cfg.P)
	for p := 0; p < l.Cfg.P; p++ {
		s, err := inspector.LightTraced(l.Cfg, p, l.Trace, l.Ind...)
		if err != nil {
			return nil, err
		}
		out[p] = s
	}
	return out, nil
}

// PortionBytes reports the wire size of one rotated portion.
func (l *Loop) PortionBytes() int {
	return l.Cfg.PortionSize() * l.Cost.comp() * 8
}
