package rts

import (
	"fmt"
	"sync"

	"irred/internal/dataflow"
)

// TreeFold executes a reduce-mode loop with privatized accumulators: each
// worker folds a contiguous block of iterations into a private
// identity-seeded image of the reduction array, the images fold pairwise
// in a binary tree, and the root folds into the shared array. No portion
// rotation, no remote buffers, no inspector — the whole schedule is the
// operator's algebra.
//
// That is exactly why construction demands a schedule license: the tree
// regroups and reorders the fold arbitrarily, so it is only equivalent to
// the sequential loop when the combine is proven associative and
// commutative with a proven identity (TreeFoldLegal). NewTreeFold refuses
// any loop whose license does not carry that grant; there is no unchecked
// back door. The W6 model check (dataflow.ProveAllFold) verifies the
// tree order is bitwise-equal to rotation and to the sequential fold for
// every builtin operator on integral data at bounded P and k.
type TreeFold struct {
	Loop    *Loop
	License *dataflow.License

	// X is the reduction array, len NumElems*comp (component-minor). The
	// tree result folds into whatever X already holds, matching the
	// rotation engine's accumulate-on-top semantics.
	X []float64

	Contribs ContribFunc
	Update   UpdateFunc

	// CheckTargets range-checks every private-image write, mirroring the
	// native engine: on by default, elided when the loop carries a bounds
	// proof covering the indirection contents.
	CheckTargets bool

	accs      [][]float64 // per-worker private images, identity-seeded
	checkErrs []error
}

// NewTreeFold prepares a tree-fold run. lic must grant TreeFoldLegal for
// this loop's combine; a nil or weaker license is refused with an error
// naming the license level, so callers surface the analysis verdict
// instead of silently falling back to an unsound schedule.
func NewTreeFold(l *Loop, lic *dataflow.License) (*TreeFold, error) {
	if l.Mode != Reduce {
		return nil, fmt.Errorf("rts: tree-fold executes reduce loops only")
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if lic == nil {
		return nil, fmt.Errorf("rts: tree-fold needs a schedule license granting TreeFoldLegal; none was supplied")
	}
	if err := lic.Verify(); err != nil {
		return nil, fmt.Errorf("rts: tree-fold license failed its ledger self-check: %w", err)
	}
	if !lic.TreeFold {
		return nil, fmt.Errorf("rts: schedule license is %s; tree-fold needs TreeFoldLegal (combine %s)", lic.Level(), l.Combine)
	}
	comp := l.Cost.comp()
	proven := l.Proof != nil && l.Proof.IndProven && l.Proof.NumElems == l.Cfg.NumElems
	t := &TreeFold{
		Loop:         l,
		License:      lic,
		X:            make([]float64, l.Cfg.NumElems*comp),
		CheckTargets: !proven,
		accs:         make([][]float64, l.Cfg.P),
	}
	for p := range t.accs {
		t.accs[p] = make([]float64, l.Cfg.NumElems*comp)
	}
	return t, nil
}

// checkFail records the first range violation seen by worker p. The
// offending write is skipped and Run reports the violation afterwards.
func (t *TreeFold) checkFail(p int, format string, args ...any) {
	if t.checkErrs[p] == nil {
		t.checkErrs[p] = fmt.Errorf("rts: target check: "+format, args...)
	}
}

// Run executes steps timesteps. Each is one parallel sweep (workers fold
// their iteration blocks into private images), a parallel binary tree
// fold of the images, a fold of the root into X, and the Update hook
// under a full barrier.
func (t *TreeFold) Run(steps int) error {
	l := t.Loop
	if t.Contribs == nil {
		return fmt.Errorf("rts: tree-fold run needs Contribs")
	}
	P := l.Cfg.P
	comp := l.Cost.comp()
	op := l.Combine
	ident, _ := op.Identity()
	nelems := l.Cfg.NumElems
	niters := l.Cfg.NumIters
	chunk := (niters + P - 1) / P
	if t.CheckTargets {
		t.checkErrs = make([]error, P)
	}

	var wg sync.WaitGroup
	for step := 0; step < steps; step++ {
		// Sweep: worker p folds iterations [p*chunk, (p+1)*chunk) — in
		// increasing order, so each private image is the block's
		// sequential pre-grouping, the same shape W6 verifies.
		wg.Add(P)
		for p := 0; p < P; p++ {
			go func(p int) {
				defer wg.Done()
				acc := t.accs[p]
				for i := range acc {
					acc[i] = ident
				}
				scratch := make([]float64, len(l.Ind)*comp)
				lo := p * chunk
				hi := min(lo+chunk, niters)
				for i := lo; i < hi; i++ {
					t.Contribs(p, i, scratch)
					for r := range l.Ind {
						tgt := int(l.Ind[r][i])
						if t.CheckTargets && (tgt < 0 || tgt >= nelems) {
							t.checkFail(p, "worker %d: iteration %d writes %d outside the reduction array [0,%d)", p, i, tgt, nelems)
							continue
						}
						for c := 0; c < comp; c++ {
							acc[tgt*comp+c] = op.Fold(acc[tgt*comp+c], scratch[r*comp+c])
						}
					}
				}
			}(p)
		}
		wg.Wait()

		// Binary tree: fold images pairwise. Each level's pairs touch
		// disjoint images, so they run concurrently; levels barrier.
		for stride := 1; stride < P; stride *= 2 {
			for i := 0; i+stride < P; i += 2 * stride {
				wg.Add(1)
				go func(a, b []float64) {
					defer wg.Done()
					for j := range a {
						a[j] = op.Fold(a[j], b[j])
					}
				}(t.accs[i], t.accs[i+stride])
			}
			wg.Wait()
		}

		// Root into the shared array.
		root := t.accs[0]
		for j := range t.X {
			t.X[j] = op.Fold(t.X[j], root[j])
		}

		if t.Update != nil {
			wg.Add(P)
			for p := 0; p < P; p++ {
				go func(p int) {
					defer wg.Done()
					t.Update(p, step)
				}(p)
			}
			wg.Wait()
		}
	}
	for _, err := range t.checkErrs {
		if err != nil {
			return err
		}
	}
	return nil
}
