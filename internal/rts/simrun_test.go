package rts

import (
	"math/rand"
	"testing"

	"irred/internal/earth"
	"irred/internal/inspector"
	"irred/internal/machine"
	"irred/internal/sim"
)

// eulerLikeLoop builds a mesh-flavoured loop: iterations reference pairs of
// nearby elements (spatial locality), the shape the paper's kernels have.
func eulerLikeLoop(rng *rand.Rand, p, k, edges, nodes int, dist inspector.Dist) *Loop {
	i1 := make([]int32, edges)
	i2 := make([]int32, edges)
	for i := range i1 {
		a := rng.Intn(nodes)
		b := a + 1 + rng.Intn(8)
		if b >= nodes {
			b = a - 1 - rng.Intn(8)
			if b < 0 {
				b = 0
			}
		}
		i1[i], i2[i] = int32(a), int32(b)
	}
	return &Loop{
		Cfg:  inspector.Config{P: p, K: k, NumIters: edges, NumElems: nodes, Dist: dist},
		Mode: Reduce,
		Ind:  [][]int32{i1, i2},
		Cost: KernelCost{
			Flops: 30, IntOps: 6, IterArrays: 2, NodeArrays: 2,
			UpdateFlopsPerElem: 4, UpdateArraysPerElem: 2, BcastComp: 2,
		},
	}
}

func TestRunSimCompletes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, p := range []int{1, 2, 4, 8} {
		for _, k := range []int{1, 2, 4} {
			l := eulerLikeLoop(rng, p, k, 2000, 500, inspector.Cyclic)
			res, err := RunSim(l, SimOptions{Steps: 10})
			if err != nil {
				t.Fatalf("P=%d k=%d: %v", p, k, err)
			}
			if res.Cycles <= 0 || res.PerStep <= 0 {
				t.Fatalf("P=%d k=%d: nonpositive cycles %d/%d", p, k, res.Cycles, res.PerStep)
			}
			if res.Seconds <= 0 {
				t.Fatalf("seconds = %v", res.Seconds)
			}
		}
	}
}

func TestRunSimDeterministic(t *testing.T) {
	mk := func() *Loop { return eulerLikeLoop(rand.New(rand.NewSource(6)), 4, 2, 3000, 600, inspector.Block) }
	r1, err := RunSim(mk(), SimOptions{Steps: 20})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunSim(mk(), SimOptions{Steps: 20})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.MsgsPerStep != r2.MsgsPerStep {
		t.Fatalf("nondeterministic simulation: %v vs %v", r1.Cycles, r2.Cycles)
	}
}

func TestRunSimParallelBeatsSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	l1 := eulerLikeLoop(rng, 1, 2, 20000, 4000, inspector.Cyclic)
	seq, _ := RunSequentialSim(l1, SimOptions{Steps: 10})
	l8 := &Loop{Cfg: l1.Cfg, Mode: l1.Mode, Ind: l1.Ind, Cost: l1.Cost}
	l8.Cfg.P = 8
	res, err := RunSim(l8, SimOptions{Steps: 10})
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(seq) / float64(res.Cycles)
	if speedup < 2 {
		t.Fatalf("8-processor speedup = %.2f, expected at least 2", speedup)
	}
	// Mildly superlinear speedups are expected (and reported in the paper):
	// eight 16 KB caches hold what one cannot. Guard only against absurdity.
	if speedup > 16 {
		t.Fatalf("8-processor speedup = %.2f is implausible", speedup)
	}
}

// The paper's central claim: message count and volume depend only on the
// machine shape, never on the indirection contents.
func TestCommunicationContentIndependent(t *testing.T) {
	mk := func(seed int64) *Loop {
		return eulerLikeLoop(rand.New(rand.NewSource(seed)), 4, 2, 2000, 512, inspector.Block)
	}
	a, err := RunSim(mk(1), SimOptions{Steps: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSim(mk(999), SimOptions{Steps: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.MsgsPerStep != b.MsgsPerStep || a.BytesPerStep != b.BytesPerStep {
		t.Fatalf("communication varies with indirection contents: %v/%v vs %v/%v",
			a.MsgsPerStep, a.BytesPerStep, b.MsgsPerStep, b.BytesPerStep)
	}
}

// k=2 must beat k=1 when transfers are substantial: k=1 has no slack to
// overlap the portion rotation with computation.
func TestOverlapK2BeatsK1(t *testing.T) {
	mk := func(k int) *Loop {
		rng := rand.New(rand.NewSource(12))
		// Big portions (many elements) relative to per-phase compute make
		// the rotation expensive enough to need hiding.
		return eulerLikeLoop(rng, 8, k, 6000, 8000, inspector.Cyclic)
	}
	r1, err := RunSim(mk(1), SimOptions{Steps: 10})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunSim(mk(2), SimOptions{Steps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r2.PerStep >= r1.PerStep {
		t.Fatalf("k=2 (%d cycles/step) not faster than k=1 (%d cycles/step)", r2.PerStep, r1.PerStep)
	}
}

func TestSequentialCostScalesWithWork(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	small := eulerLikeLoop(rng, 1, 1, 1000, 300, inspector.Block)
	large := eulerLikeLoop(rng, 1, 1, 4000, 300, inspector.Block)
	cm := machine.MANNA()
	cs, cl := SequentialCost(cm, small), SequentialCost(cm, large)
	if cl < 3*cs || cl > 5*cs {
		t.Fatalf("4x iterations changed cost %d -> %d (want ~4x)", cs, cl)
	}
}

func TestInspectorCostProportional(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cm := machine.MANNA()
	l := eulerLikeLoop(rng, 2, 2, 4000, 500, inspector.Block)
	scheds, err := l.Schedules()
	if err != nil {
		t.Fatal(err)
	}
	c := InspectorCost(cm, l, scheds[0])
	if c <= 0 {
		t.Fatal("inspector cost not positive")
	}
	// The inspector is a few linear passes: it must be far cheaper than
	// even one timestep of the loop body (the paper runs it once per 100
	// timesteps).
	if seq := SequentialCost(cm, l); c > seq {
		t.Fatalf("inspector (%d) costs more than a whole sequential step (%d)", c, seq)
	}
}

func TestPhaseCostsCoverAllPhases(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := eulerLikeLoop(rng, 4, 2, 2000, 400, inspector.Cyclic)
	scheds, err := l.Schedules()
	if err != nil {
		t.Fatal(err)
	}
	cm := machine.MANNA()
	phases, upd := PhaseCosts(cm, l, scheds[0])
	if len(phases) != l.Cfg.NumPhases() {
		t.Fatalf("got %d phase costs", len(phases))
	}
	var nonzero int
	for _, c := range phases {
		if c > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("all phases cost zero")
	}
	if upd <= 0 {
		t.Fatal("update loop cost zero despite update work declared")
	}
}

func TestRunSimSingleStep(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := eulerLikeLoop(rng, 2, 2, 500, 128, inspector.Block)
	res, err := RunSim(l, SimOptions{Steps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Fatal("single-step run produced no time")
	}
}

func TestGatherSimRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	const n, nnz = 1000, 8000
	col := make([]int32, nnz)
	row := make([]int32, nnz)
	for i := range col {
		col[i] = int32(rng.Intn(n))
		row[i] = int32(i * n / nnz)
	}
	l := &Loop{
		Cfg:       inspector.Config{P: 4, K: 2, NumIters: nnz, NumElems: n, Dist: inspector.Block},
		Mode:      Gather,
		Ind:       [][]int32{col},
		Cost:      KernelCost{Flops: 2, IterArrays: 2, UpdateFlopsPerElem: 2, UpdateArraysPerElem: 1},
		GatherOut: row,
	}
	res, err := RunSim(l, SimOptions{Steps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Fatal("gather sim produced no time")
	}
}

func TestRunSimTraceRecordsOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	l := eulerLikeLoop(rng, 4, 2, 2000, 400, inspector.Cyclic)
	tr := &earth.Trace{}
	res, err := RunSim(l, SimOptions{Steps: 4, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	// Every phase and update fiber of the simulated window is recorded:
	// tsim * (kP + 1) * P fibers.
	if len(tr.Fibers) == 0 || len(tr.Msgs) == 0 {
		t.Fatal("trace empty")
	}
	wantFibers := 4 * (l.Cfg.NumPhases() + 1) * l.Cfg.P
	if len(tr.Fibers) != wantFibers {
		t.Fatalf("traced %d fibers, want %d", len(tr.Fibers), wantFibers)
	}
	// Labels follow the documented scheme.
	seenPh, seenUpd := false, false
	for _, f := range tr.Fibers {
		if f.Label == "t0/ph0" {
			seenPh = true
		}
		if f.Label == "t0/upd" {
			seenUpd = true
		}
	}
	if !seenPh || !seenUpd {
		t.Fatal("trace labels missing")
	}
	// The Gantt must render one row per node.
	var end sim.Time
	for _, f := range tr.Fibers {
		if f.End > end {
			end = f.End
		}
	}
	g := tr.Gantt(l.Cfg.P, end, 60)
	if len(g) == 0 || res.Cycles <= 0 {
		t.Fatal("gantt or result empty")
	}
}

// TestSimExecMatchesSequential validates the simulated fiber graph's
// dataflow by computing through it: the DES-ordered phase executions must
// produce exactly the sequential reduction, over multiple timesteps with
// an update hook.
func TestSimExecMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for _, p := range []int{1, 2, 4, 5} {
		for _, k := range []int{1, 2, 3} {
			l := eulerLikeLoop(rng, p, k, 800, 200, inspector.Cyclic)
			contrib := func(i, r int) float64 { return float64(i+1) * float64(r+1) }
			ex := &SimExec{
				Contribs: func(_, i int, out []float64) {
					out[0], out[1] = contrib(i, 0), contrib(i, 1)
				},
			}
			const steps = 3
			ex.Update = func(proc, step int) {
				lo, _ := l.Cfg.PortionBounds(l.Cfg.PortionAt(proc, 0))
				_, hi := l.Cfg.PortionBounds(l.Cfg.PortionAt(proc, l.Cfg.K-1))
				for e := lo; e < hi; e++ {
					ex.X[e] *= 0.5
				}
			}
			if _, err := RunSim(l, SimOptions{Steps: steps, WarmSteps: 1, MeasureSteps: 2, Exec: ex}); err != nil {
				t.Fatal(err)
			}
			// Sequential replay.
			want := make([]float64, l.Cfg.NumElems)
			for s := 0; s < steps; s++ {
				for i := 0; i < l.Cfg.NumIters; i++ {
					want[l.Ind[0][i]] += contrib(i, 0)
					want[l.Ind[1][i]] += contrib(i, 1)
				}
				for e := range want {
					want[e] *= 0.5
				}
			}
			for e := range want {
				d := ex.X[e] - want[e]
				if d < -1e-9 || d > 1e-9 {
					t.Fatalf("P=%d k=%d: sim-exec diverged at element %d: %v vs %v", p, k, e, ex.X[e], want[e])
				}
			}
		}
	}
}

func TestSimExecGather(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const n, nnz = 60, 400
	col := make([]int32, nnz)
	row := make([]int32, nnz)
	vals := make([]float64, nnz)
	for i := range col {
		col[i] = int32(rng.Intn(n))
		row[i] = int32(rng.Intn(n))
		vals[i] = rng.Float64()
	}
	l := &Loop{
		Cfg:       inspector.Config{P: 3, K: 2, NumIters: nnz, NumElems: n, Dist: inspector.Block},
		Mode:      Gather,
		Ind:       [][]int32{col},
		Cost:      KernelCost{Flops: 2, IterArrays: 2},
		GatherOut: row,
	}
	y := make([]float64, n)
	ex := &SimExec{
		X: make([]float64, n),
		Consume: func(_, i int, v []float64) {
			y[row[i]] += vals[i] * v[0]
		},
	}
	for i := range ex.X {
		ex.X[i] = float64(i%5) + 1
	}
	x0 := append([]float64(nil), ex.X...)
	if _, err := RunSim(l, SimOptions{Steps: 1, Exec: ex}); err != nil {
		t.Fatal(err)
	}
	want := make([]float64, n)
	for i := 0; i < nnz; i++ {
		want[row[i]] += vals[i] * x0[col[i]]
	}
	for e := range want {
		d := y[e] - want[e]
		if d < -1e-9 || d > 1e-9 {
			t.Fatalf("gather sim-exec diverged at %d", e)
		}
	}
}

func TestSUUtilizationReported(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	l := eulerLikeLoop(rng, 4, 2, 2000, 400, inspector.Cyclic)
	res, err := RunSim(l, SimOptions{Steps: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.SUUtilization <= 0 || res.SUUtilization > 1 {
		t.Fatalf("SU utilization = %v", res.SUUtilization)
	}
	// In the manna-dual design, the SU handles sync ops and message
	// delivery — on these workloads it must be far less loaded than the EU.
	if res.SUUtilization >= res.EUUtilization {
		t.Fatalf("SU (%v) busier than EU (%v)", res.SUUtilization, res.EUUtilization)
	}
}
