package rts

import (
	"math/rand"
	"testing"
	"testing/quick"

	"irred/internal/inspector"
)

func TestDistributedMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	contrib := func(i, r, c int) float64 { return float64(i+1)*1.5 + float64(r*10+c) }
	for _, p := range []int{1, 2, 4, 5} {
		for _, k := range []int{1, 2, 3} {
			for _, comp := range []int{1, 3} {
				l := randLoop(rng, p, k, 400, 90, 2, inspector.Cyclic, comp)
				d, err := NewDistributed(l)
				if err != nil {
					t.Fatal(err)
				}
				d.Contribs = func(_, i int, out []float64) {
					for r := 0; r < len(l.Ind); r++ {
						for c := 0; c < comp; c++ {
							out[r*comp+c] = contrib(i, r, c)
						}
					}
				}
				got, err := d.Run(1)
				if err != nil {
					t.Fatal(err)
				}
				if !near(got, seqReduce(l, contrib), 1e-9) {
					t.Fatalf("P=%d k=%d comp=%d: distributed diverged", p, k, comp)
				}
			}
		}
	}
}

func TestDistributedAgreesWithShared(t *testing.T) {
	// Shared-memory Native and message-passing Distributed must agree on
	// multi-sweep accumulation (identical schedules, identical order of
	// magnitude of float error).
	rng := rand.New(rand.NewSource(42))
	l := randLoop(rng, 4, 2, 300, 64, 2, inspector.Block, 1)
	mk := func() ContribFunc {
		return func(_, i int, out []float64) { out[0], out[1] = float64(i), 1 }
	}
	nat, err := NewNative(l)
	if err != nil {
		t.Fatal(err)
	}
	nat.Contribs = mk()
	if err := nat.Run(3); err != nil {
		t.Fatal(err)
	}
	d, err := NewDistributed(l)
	if err != nil {
		t.Fatal(err)
	}
	d.Contribs = mk()
	got, err := d.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if !near(got, nat.X, 1e-9) {
		t.Fatal("shared and message-passing engines disagree")
	}
}

func TestDistributedRejectsGather(t *testing.T) {
	l := &Loop{
		Cfg:  inspector.Config{P: 2, K: 1, NumIters: 4, NumElems: 4},
		Mode: Gather,
		Ind:  [][]int32{{0, 1, 2, 3}},
	}
	if _, err := NewDistributed(l); err == nil {
		t.Fatal("gather loop accepted")
	}
}

func TestDistributedNeedsContribs(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	l := randLoop(rng, 2, 1, 10, 8, 1, inspector.Block, 1)
	d, err := NewDistributed(l)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(1); err == nil {
		t.Fatal("run without Contribs accepted")
	}
}

// Property: the message-passing engine matches the sequential reduction
// for random shapes — no hidden reliance on shared memory.
func TestDistributedEquivalenceProperty(t *testing.T) {
	prop := func(seed int64, pRaw, kRaw uint8, cyclic bool) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + int(pRaw)%5
		k := 1 + int(kRaw)%3
		dist := inspector.Block
		if cyclic {
			dist = inspector.Cyclic
		}
		l := randLoop(rng, p, k, 150, 37, 2, dist, 1)
		d, err := NewDistributed(l)
		if err != nil {
			return false
		}
		d.Contribs = func(_, i int, out []float64) { out[0], out[1] = float64(i), float64(3*i) }
		got, err := d.Run(1)
		if err != nil {
			return false
		}
		want := seqReduce(l, func(i, r, c int) float64 { return float64((2*r + 1) * i) })
		return near(got, want, 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
