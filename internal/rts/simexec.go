package rts

import (
	"fmt"

	"irred/internal/algebra"
	"irred/internal/inspector"
)

// SimExec attaches real computation to a simulated run: each phase fiber,
// on completion, executes its phase program (copy loop + main loop) against
// shared data, and each update fiber runs the Update hook. Because the
// event engine is single-threaded and fibers fire in dependence order, a
// correct fiber graph produces exactly the sequential reduction — so
// executing under SimExec validates the *simulated program's* dataflow
// wiring (slots, portion routing, home returns), not just the native
// engine's.
type SimExec struct {
	// Contribs computes reduce-mode contributions (reference-major,
	// comp-minor), as in the native engine.
	Contribs ContribFunc
	// Consume handles gather-mode iterations.
	Consume ConsumeFunc
	// Update runs per processor at each timestep boundary.
	Update UpdateFunc
	// X is the rotated array, len NumElems*comp. Allocated by RunSim when
	// nil and an exec is attached.
	X []float64

	// Verify enables the debug execution mode: every simulated write to the
	// shared array is checked against the ownership invariant (the target
	// element's portion must be owned by the fiber's processor during the
	// fiber's phase). The first violation fails the sim engine, aborting
	// the run, and is reported by RunSim.
	Verify bool

	bufs    [][]float64
	scratch [][]float64
	err     error
}

// Err reports the first ownership violation of a verify run, or nil.
func (ex *SimExec) Err() error { return ex.err }

// fail records the first violation; the sim engine is single-threaded, so
// no locking is needed.
func (ex *SimExec) fail(format string, args ...any) {
	if ex.err == nil {
		ex.err = fmt.Errorf("rts: verify: "+format, args...)
	}
}

// prepare sizes the execution state for the given loop and schedules.
func (ex *SimExec) prepare(l *Loop, scheds []*inspector.Schedule) {
	comp := l.Cost.comp()
	if ex.X == nil {
		ex.X = make([]float64, l.Cfg.NumElems*comp)
	}
	ident, _ := l.Combine.Identity()
	ex.bufs = make([][]float64, l.Cfg.P)
	ex.scratch = make([][]float64, l.Cfg.P)
	for p := range ex.bufs {
		ex.bufs[p] = make([]float64, scheds[p].BufLen*comp)
		fillIdent(ex.bufs[p], ident)
		ex.scratch[p] = make([]float64, len(l.Ind)*comp)
	}
}

// runPhase executes processor p's phase ph against the shared data.
func (ex *SimExec) runPhase(l *Loop, s *inspector.Schedule, p, ph int) {
	comp := l.Cost.comp()
	buf := ex.bufs[p]
	prog := &s.Phases[ph]
	op := l.Combine
	add := op.Kind == algebra.Add
	ident, _ := op.Identity()
	for _, cp := range prog.Copies {
		if ex.Verify {
			if int(cp.Buf) < l.Cfg.NumElems || int(cp.Buf) >= s.LocalLen() {
				ex.fail("proc %d phase %d: drain reads %d outside the buffer [%d,%d)", p, ph, cp.Buf, l.Cfg.NumElems, s.LocalLen())
				continue
			}
			if own := l.Cfg.PhaseOf(p, int(cp.Elem)); own != ph {
				ex.fail("proc %d phase %d: drain writes element %d, whose portion is owned in phase %d", p, ph, cp.Elem, own)
			}
		}
		eb := int(cp.Elem) * comp
		bb := (int(cp.Buf) - l.Cfg.NumElems) * comp
		for c := 0; c < comp; c++ {
			if add {
				ex.X[eb+c] += buf[bb+c]
				buf[bb+c] = 0
			} else {
				ex.X[eb+c] = op.Fold(ex.X[eb+c], buf[bb+c])
				buf[bb+c] = ident
			}
		}
	}
	switch l.Mode {
	case Reduce:
		if ex.Contribs == nil {
			return
		}
		scratch := ex.scratch[p]
		for j, it := range prog.Iters {
			ex.Contribs(p, int(it), scratch)
			for r := range prog.Ind {
				tgt := int(prog.Ind[r][j])
				if tgt < l.Cfg.NumElems {
					if ex.Verify {
						if own := l.Cfg.PhaseOf(p, tgt); own != ph {
							ex.fail("proc %d phase %d: iteration %d writes element %d, whose portion is owned in phase %d", p, ph, it, tgt, own)
						}
					}
					for c := 0; c < comp; c++ {
						if add {
							ex.X[tgt*comp+c] += scratch[r*comp+c]
						} else {
							ex.X[tgt*comp+c] = op.Fold(ex.X[tgt*comp+c], scratch[r*comp+c])
						}
					}
				} else {
					if ex.Verify && tgt >= s.LocalLen() {
						ex.fail("proc %d phase %d: iteration %d writes %d outside the local image [0,%d)", p, ph, it, tgt, s.LocalLen())
						continue
					}
					bb := (tgt - l.Cfg.NumElems) * comp
					for c := 0; c < comp; c++ {
						if add {
							buf[bb+c] += scratch[r*comp+c]
						} else {
							buf[bb+c] = op.Fold(buf[bb+c], scratch[r*comp+c])
						}
					}
				}
			}
		}
	case Gather:
		if ex.Consume == nil {
			return
		}
		for j, it := range prog.Iters {
			tgt := int(prog.Ind[0][j])
			if ex.Verify {
				if tgt >= l.Cfg.NumElems {
					ex.fail("proc %d phase %d: iteration %d gathers %d outside the rotated array [0,%d)", p, ph, it, tgt, l.Cfg.NumElems)
					continue
				}
				if own := l.Cfg.PhaseOf(p, tgt); own != ph {
					ex.fail("proc %d phase %d: iteration %d gathers element %d, whose portion is owned in phase %d", p, ph, it, tgt, own)
				}
			}
			ex.Consume(p, int(it), ex.X[tgt*comp:tgt*comp+comp])
		}
	}
}
