package rts

import (
	"context"
	"fmt"
	"sync"

	"irred/internal/algebra"
	"irred/internal/inspector"
	"irred/internal/obs"
)

// ContribFunc computes the contributions of iteration i for a reduce-mode
// loop: out has NumRef*comp slots, reference-major. p is the executing
// processor (for per-processor scratch state).
type ContribFunc func(p, i int, out []float64)

// ConsumeFunc handles one gather-mode iteration: vals holds the comp
// components of the rotated array at the iteration's reference.
type ConsumeFunc func(p, i int, vals []float64)

// UpdateFunc runs the regular between-sweep loop for processor p (position
// updates, vector ops over the processor's home elements). It runs under a
// full barrier: all sweep work is complete and no sweep work has started.
type UpdateFunc func(p, step int)

// Native executes a loop's phase schedules on real goroutines, one per
// simulated processor. The rotated array is shared; portion ownership
// rotates via channel tokens, so within any phase processors touch disjoint
// portions. The token handoff provides the happens-before edges that make
// this race-free.
type Native struct {
	Loop   *Loop
	Scheds []*inspector.Schedule

	// X is the rotated array, len NumElems*comp (component-minor). For
	// reduce loops it is the reduction array; for gather loops the read
	// vector.
	X []float64

	Contribs ContribFunc
	Consume  ConsumeFunc
	Update   UpdateFunc

	// Verify enables the debug execution mode: every access to the shared
	// rotated array is checked against the ownership invariant — the target
	// element's portion must be owned by the executing processor during the
	// executing phase — and every buffered contribution must stay inside
	// the processor-private buffer. Run reports the first violation per
	// processor after the sweep completes (execution itself is unchanged,
	// so a verify run still finishes and still passes tokens).
	Verify bool

	// Trace, when non-nil, records one span per unit of phase work — the
	// rotation wait (obs.SpanWait), the copy loop (obs.SpanCopy), the main
	// loop (obs.SpanCompute) and the Update hook (obs.SpanUpdate) — tagged
	// with processor, phase, step and portion, on both the pipelined and
	// the barrier paths. NewNativeFrom seeds it from Loop.Trace; callers
	// may override before Run.
	Trace *obs.Tracer

	// CheckTargets guards every rotated-array and remote-buffer write (and
	// every gather read) with a range check against the processor's local
	// image, so corrupted schedules — a truncated cache entry, a bad
	// deserialization, hand-built phase programs — surface as a recorded
	// violation after the run instead of an index panic mid-sweep. It
	// defaults to on; NewNativeFrom turns it off when the loop carries a
	// bounds proof covering the indirection contents (Loop.Proof.IndProven
	// for this extent), which is what makes proof-carrying kernels
	// measurably faster. Callers may override either way before Run.
	CheckTargets bool

	bufs       [][]float64  // per-processor remote buffers, len BufLen*comp
	chans      []chan token // chans[p]: portions arriving at processor p
	verifyErrs []error      // first ownership violation per processor
	checkErrs  []error      // first range violation per processor
}

type token struct{ portion int }

// NewNative prepares a native run, building the LightInspector schedules.
func NewNative(l *Loop) (*Native, error) {
	scheds, err := l.Schedules()
	if err != nil {
		return nil, err
	}
	return NewNativeFrom(l, scheds)
}

// NewNativeFrom prepares a native run over previously built schedules —
// e.g. served from a schedule cache — skipping the LightInspector pass.
// scheds must be the full processor set for the loop: one schedule per
// processor in processor order, each built from the loop's configuration
// and indirection arrays. Schedules are only read during the run, so the
// same set may back any number of concurrent Natives.
func NewNativeFrom(l *Loop, scheds []*inspector.Schedule) (*Native, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if len(scheds) != l.Cfg.P {
		return nil, fmt.Errorf("rts: %d schedules for P = %d", len(scheds), l.Cfg.P)
	}
	for p, s := range scheds {
		if s == nil {
			return nil, fmt.Errorf("rts: schedule %d is nil", p)
		}
		if s.Proc != p {
			return nil, fmt.Errorf("rts: schedule %d is for processor %d", p, s.Proc)
		}
		if s.Cfg != l.Cfg {
			return nil, fmt.Errorf("rts: schedule %d built for %+v, loop wants %+v", p, s.Cfg, l.Cfg)
		}
		if s.NumRef != len(l.Ind) {
			return nil, fmt.Errorf("rts: schedule %d has %d references, loop has %d", p, s.NumRef, len(l.Ind))
		}
	}
	comp := l.Cost.comp()
	proven := l.Proof != nil && l.Proof.IndProven && l.Proof.NumElems == l.Cfg.NumElems
	n := &Native{
		Loop:         l,
		Scheds:       scheds,
		X:            make([]float64, l.Cfg.NumElems*comp),
		Trace:        l.Trace,
		CheckTargets: !proven,
		bufs:         make([][]float64, l.Cfg.P),
		chans:        make([]chan token, l.Cfg.P),
	}
	ident, _ := l.Combine.Identity()
	for p := 0; p < l.Cfg.P; p++ {
		n.bufs[p] = make([]float64, scheds[p].BufLen*comp)
		fillIdent(n.bufs[p], ident)
		n.chans[p] = make(chan token, l.Cfg.NumPhases()+1)
	}
	return n, nil
}

// fillIdent seeds an accumulation buffer with the combine's identity.
// The zero value (float add) needs no work: make() already zeroed it.
func fillIdent(buf []float64, ident float64) {
	if ident == 0 {
		return
	}
	for i := range buf {
		buf[i] = ident
	}
}

// verifyFail records the first ownership violation seen by processor p.
// Each processor writes only its own slot, so no lock is needed.
func (n *Native) verifyFail(p int, format string, args ...any) {
	if n.verifyErrs[p] == nil {
		n.verifyErrs[p] = fmt.Errorf("rts: verify: "+format, args...)
	}
}

// checkFail records the first range violation seen by processor p. The
// offending access is skipped, the sweep completes, and Run reports the
// violation — graceful degradation instead of an index panic.
func (n *Native) checkFail(p int, format string, args ...any) {
	if n.checkErrs[p] == nil {
		n.checkErrs[p] = fmt.Errorf("rts: target check: "+format, args...)
	}
}

// Run executes steps timesteps: each is one full sweep of k*P phases
// followed by the Update hook (if any) under a global barrier. It returns
// an error if the mode's required callback is missing.
func (n *Native) Run(steps int) error {
	return n.RunContext(context.Background(), steps)
}

// RunContext is Run with cancellation: when ctx is cancelled or its
// deadline expires, every worker stops at its next phase boundary or
// blocking portion receive and RunContext returns ctx.Err(). Cancellation
// cannot deadlock the token protocol — portion sends are buffered and
// never block, so a worker that exits early only starves receivers, which
// themselves select on ctx. After a cancelled run the rotated array holds
// partial sums and token positions are unspecified; the Native must not be
// reused.
func (n *Native) RunContext(ctx context.Context, steps int) error {
	l := n.Loop
	switch l.Mode {
	case Reduce:
		if n.Contribs == nil {
			return fmt.Errorf("rts: reduce-mode native run needs Contribs")
		}
	case Gather:
		if n.Consume == nil {
			return fmt.Errorf("rts: gather-mode native run needs Consume")
		}
	}
	P := l.Cfg.P
	done := ctx.Done()
	if n.Verify {
		n.verifyErrs = make([]error, P)
	}
	if n.CheckTargets {
		n.checkErrs = make([]error, P)
	}
	var wg sync.WaitGroup
	if n.Update == nil {
		// Pure accumulation: sweeps need no barrier between timesteps —
		// portion tokens alone order every access, so processors pipeline
		// across sweeps exactly as EARTH fibers would.
		wg.Add(P)
		for p := 0; p < P; p++ {
			go func(p int) {
				defer wg.Done()
				for step := 0; step < steps; step++ {
					if !n.sweep(p, step, done) {
						return
					}
				}
			}(p)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return err
		}
		return n.verifyErr()
	}
	for step := 0; step < steps; step++ {
		wg.Add(P)
		for p := 0; p < P; p++ {
			go func(p int) {
				defer wg.Done()
				n.sweep(p, step, done)
			}(p)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return err
		}
		wg.Add(P)
		for p := 0; p < P; p++ {
			go func(p int) {
				defer wg.Done()
				us := n.Trace.Begin()
				n.Update(p, step)
				n.Trace.End(obs.SpanUpdate, p, -1, step, -1, us)
			}(p)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return n.verifyErr()
}

// verifyErr joins the per-processor violations after a run: ownership
// violations from Verify mode first, then range violations from the
// target checks.
func (n *Native) verifyErr() error {
	for _, err := range n.verifyErrs {
		if err != nil {
			return err
		}
	}
	for _, err := range n.checkErrs {
		if err != nil {
			return err
		}
	}
	return nil
}

// sweep runs processor p through timestep step's k*P phases. done, when
// non-nil, aborts the sweep at the next phase boundary or blocked portion
// receive; sweep reports whether it ran to completion.
func (n *Native) sweep(p, step int, done <-chan struct{}) bool {
	l := n.Loop
	cfg := l.Cfg
	comp := l.Cost.comp()
	s := n.Scheds[p]
	buf := n.bufs[p]
	kp := cfg.NumPhases()
	prev := (p - 1 + cfg.P) % cfg.P
	tr := n.Trace

	chk := n.CheckTargets
	localLen := s.LocalLen()

	// The fold operator. Float addition (the zero value) keeps the tight
	// `+=` path; licensed non-Add combines fold through op.Fold with
	// identity-seeded buffer slots.
	op := l.Combine
	add := op.Kind == algebra.Add
	ident, _ := op.Identity()

	scratch := make([]float64, len(l.Ind)*comp)
	for ph := 0; ph < kp; ph++ {
		if done != nil {
			select {
			case <-done:
				return false
			default:
			}
		}
		// The first k phases use home portions, pre-placed initially and
		// re-consumed by the drain at the end of the previous sweep; later
		// phases receive their portion from processor p+1, in phase order.
		if ph >= cfg.K {
			ws := tr.Begin()
			var tok token
			if done == nil {
				tok = <-n.chans[p]
			} else {
				select {
				case tok = <-n.chans[p]:
				case <-done:
					return false
				}
			}
			tr.End(obs.SpanWait, p, ph, step, tok.portion, ws)
		}

		portion := cfg.PortionAt(p, ph)
		prog := &s.Phases[ph]
		cs := tr.Begin()
		// Second (copy) loop: fold buffered contributions into the
		// just-arrived portion and clear the slots for the next sweep.
		for _, cp := range prog.Copies {
			if n.Verify {
				if int(cp.Buf) < cfg.NumElems || int(cp.Buf) >= localLen {
					n.verifyFail(p, "proc %d phase %d: drain reads %d outside the buffer [%d,%d)", p, ph, cp.Buf, cfg.NumElems, localLen)
					continue
				}
				if own := cfg.PhaseOf(p, int(cp.Elem)); own != ph {
					n.verifyFail(p, "proc %d phase %d: drain writes element %d, whose portion is owned in phase %d", p, ph, cp.Elem, own)
				}
			}
			if chk && (int(cp.Elem) < 0 || int(cp.Elem) >= cfg.NumElems ||
				int(cp.Buf) < cfg.NumElems || int(cp.Buf) >= localLen) {
				n.checkFail(p, "proc %d phase %d: drain %d -> %d outside image (elems %d, local %d)",
					p, ph, cp.Buf, cp.Elem, cfg.NumElems, localLen)
				continue
			}
			eb := int(cp.Elem) * comp
			bb := (int(cp.Buf) - cfg.NumElems) * comp
			for c := 0; c < comp; c++ {
				if add {
					n.X[eb+c] += buf[bb+c]
					buf[bb+c] = 0
				} else {
					n.X[eb+c] = op.Fold(n.X[eb+c], buf[bb+c])
					buf[bb+c] = ident
				}
			}
		}
		tr.End(obs.SpanCopy, p, ph, step, portion, cs)

		// Main loop.
		ms := tr.Begin()
		switch l.Mode {
		case Reduce:
			for j, it := range prog.Iters {
				n.Contribs(p, int(it), scratch)
				for r := range prog.Ind {
					tgt := int(prog.Ind[r][j])
					if chk && (tgt < 0 || tgt >= localLen) {
						n.checkFail(p, "proc %d phase %d: iteration %d writes %d outside the local image [0,%d)", p, ph, it, tgt, localLen)
						continue
					}
					if tgt < cfg.NumElems {
						if n.Verify {
							if own := cfg.PhaseOf(p, tgt); own != ph {
								n.verifyFail(p, "proc %d phase %d: iteration %d writes element %d, whose portion is owned in phase %d", p, ph, it, tgt, own)
							}
						}
						for c := 0; c < comp; c++ {
							if add {
								n.X[tgt*comp+c] += scratch[r*comp+c]
							} else {
								n.X[tgt*comp+c] = op.Fold(n.X[tgt*comp+c], scratch[r*comp+c])
							}
						}
					} else {
						if n.Verify && tgt >= localLen {
							n.verifyFail(p, "proc %d phase %d: iteration %d writes %d outside the local image [0,%d)", p, ph, it, tgt, localLen)
							continue
						}
						bb := (tgt - cfg.NumElems) * comp
						for c := 0; c < comp; c++ {
							if add {
								buf[bb+c] += scratch[r*comp+c]
							} else {
								buf[bb+c] = op.Fold(buf[bb+c], scratch[r*comp+c])
							}
						}
					}
				}
			}
		case Gather:
			for j, it := range prog.Iters {
				tgt := int(prog.Ind[0][j])
				if chk && (tgt < 0 || tgt >= cfg.NumElems) {
					n.checkFail(p, "proc %d phase %d: iteration %d gathers %d outside the rotated array [0,%d)", p, ph, it, tgt, cfg.NumElems)
					continue
				}
				if n.Verify {
					if tgt >= cfg.NumElems {
						n.verifyFail(p, "proc %d phase %d: iteration %d gathers %d outside the rotated array [0,%d)", p, ph, it, tgt, cfg.NumElems)
						continue
					}
					if own := cfg.PhaseOf(p, tgt); own != ph {
						n.verifyFail(p, "proc %d phase %d: iteration %d gathers element %d, whose portion is owned in phase %d", p, ph, it, tgt, own)
					}
				}
				n.Consume(p, int(it), n.X[tgt*comp:tgt*comp+comp])
			}
		}
		tr.End(obs.SpanCompute, p, ph, step, portion, ms)

		// Pass the portion on to processor p-1.
		n.chans[prev] <- token{portion: portion}
	}

	// Consume the k home portions returning at sweep end so the next
	// sweep's first k phases find them "pre-placed" — and so Update runs
	// only after all contributions to the home block have landed.
	for i := 0; i < cfg.K; i++ {
		ws := tr.Begin()
		var tok token
		if done == nil {
			tok = <-n.chans[p]
		} else {
			select {
			case tok = <-n.chans[p]:
			case <-done:
				return false
			}
		}
		tr.End(obs.SpanWait, p, -1, step, tok.portion, ws)
	}
	return true
}
