package rts

import (
	"math/rand"
	"strings"
	"testing"

	"irred/internal/inspector"
)

// corruptOwnedWrite redirects the first owned write in the schedule set to
// an element owned in a different phase, breaking the ownership invariant
// while keeping every index inside the local image.
func corruptOwnedWrite(t *testing.T, cfg inspector.Config, scheds []*inspector.Schedule) {
	t.Helper()
	for _, s := range scheds {
		for ph := range s.Phases {
			prog := &s.Phases[ph]
			for r := range prog.Ind {
				for j, x := range prog.Ind[r] {
					if int(x) < cfg.NumElems {
						prog.Ind[r][j] = (x + int32(cfg.PortionSize())) % int32(cfg.NumElems)
						return
					}
				}
			}
		}
	}
	t.Fatal("no owned write to corrupt")
}

func TestNativeVerifyClean(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := randLoop(rng, 4, 2, 200, 64, 2, inspector.Cyclic, 1)
	n, err := NewNative(l)
	if err != nil {
		t.Fatal(err)
	}
	n.Verify = true
	n.Contribs = func(_, i int, out []float64) {
		for r := range out {
			out[r] = float64(i + r)
		}
	}
	if err := n.Run(2); err != nil {
		t.Fatalf("verify rejected a correct run: %v", err)
	}
}

func TestNativeVerifyCatchesCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l := randLoop(rng, 4, 2, 200, 64, 2, inspector.Cyclic, 1)
	n, err := NewNative(l)
	if err != nil {
		t.Fatal(err)
	}
	corruptOwnedWrite(t, l.Cfg, n.Scheds)
	n.Verify = true
	n.Contribs = func(_, i int, out []float64) {
		for r := range out {
			out[r] = 1
		}
	}
	err = n.Run(1)
	if err == nil {
		t.Fatal("verify mode missed a non-owned write")
	}
	if !strings.Contains(err.Error(), "verify") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestSimVerifyClean(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := randLoop(rng, 4, 2, 200, 64, 2, inspector.Cyclic, 1)
	contrib := func(i, r, c int) float64 { return float64(i+1) + float64(r) }
	ex := &SimExec{
		Verify: true,
		Contribs: func(_, i int, out []float64) {
			for r := range out {
				out[r] = contrib(i, r, 0)
			}
		},
	}
	res, err := RunSim(l, SimOptions{Steps: 2, WarmSteps: 1, MeasureSteps: 1, Exec: ex})
	if err != nil {
		t.Fatalf("verify rejected a correct simulated run: %v", err)
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles simulated")
	}
	if !near(ex.X, scale(seqReduce(l, contrib), 2), 1e-9) {
		t.Fatal("simulated execution diverged from sequential")
	}
}

func scale(x []float64, f float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = f * x[i]
	}
	return out
}

func TestSimVerifyCatchesCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	l := randLoop(rng, 4, 2, 200, 64, 2, inspector.Cyclic, 1)
	scheds, err := l.Schedules()
	if err != nil {
		t.Fatal(err)
	}
	corruptOwnedWrite(t, l.Cfg, scheds)
	ex := &SimExec{
		Verify: true,
		Contribs: func(_, i int, out []float64) {
			for r := range out {
				out[r] = 1
			}
		},
	}
	opt := SimOptions{Steps: 2, WarmSteps: 1, MeasureSteps: 1, Exec: ex}
	opt.fill()
	_, err = runSimScheds(l, scheds, opt)
	if err == nil {
		t.Fatal("verify mode missed a non-owned simulated write")
	}
	if !strings.Contains(err.Error(), "verify") {
		t.Fatalf("unexpected error: %v", err)
	}
}
