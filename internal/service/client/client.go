// Package client is the Go client for the irredd reduction service: job
// submission, polling, cancellation, and metrics over the HTTP/JSON API.
// It is used by the service end-to-end tests, the CI smoke job, and
// irredrun -server.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"irred/internal/service"
)

// Client talks to one irredd instance.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8321".
	Base string
	// HTTP is the underlying client; defaults to http.DefaultClient.
	HTTP *http.Client
}

// New builds a client for the given base URL.
func New(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// StatusError is a non-2xx API response.
type StatusError struct {
	Code    int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.Code, e.Message)
}

// IsShed reports whether the error is the service's 429 load-shed answer.
func IsShed(err error) bool {
	se, ok := err.(*StatusError)
	return ok && se.Code == http.StatusTooManyRequests
}

// do issues a request and decodes the JSON answer into out (when non-nil).
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var ae struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&ae) == nil && ae.Error != "" {
			msg = ae.Error
		}
		return &StatusError{Code: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Submit enqueues a job and returns immediately with its queued status.
func (c *Client) Submit(ctx context.Context, spec service.JobSpec) (*service.JobStatus, error) {
	var st service.JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// SubmitWait enqueues a job and blocks until it completes (server-side
// wait), returning the terminal status including the result.
func (c *Client) SubmitWait(ctx context.Context, spec service.JobSpec) (*service.JobStatus, error) {
	var st service.JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/jobs?wait=1", spec, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Get fetches a job's status including its result when done.
func (c *Client) Get(ctx context.Context, id string) (*service.JobStatus, error) {
	var st service.JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Cancel requests cancellation of a job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodPost, "/v1/jobs/"+id+"/cancel", nil, nil)
}

// Wait polls a job until it reaches a terminal state.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*service.JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Get(ctx, id)
		if err != nil {
			return nil, err
		}
		switch st.State {
		case service.StateDone, service.StateFailed, service.StateCancelled:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
	}
}

// Metrics fetches the server counters.
func (c *Client) Metrics(ctx context.Context) (*service.Snapshot, error) {
	var snap service.Snapshot
	if err := c.do(ctx, http.MethodGet, "/metrics", nil, &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}
