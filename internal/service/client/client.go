// Package client is the Go client for the irredd reduction service: job
// submission, polling, cancellation, and metrics over the HTTP/JSON API.
// It is used by the service end-to-end tests, the CI smoke job, and
// irredrun -server.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"irred/internal/service"
)

// Client talks to one irredd instance.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8321".
	Base string
	// HTTP is the underlying client; defaults to http.DefaultClient.
	HTTP *http.Client
}

// New builds a client for the given base URL.
func New(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// StatusError is a non-2xx API response.
type StatusError struct {
	Code    int
	Message string
	// RetryAfter is the parsed Retry-After header of a load-shed answer
	// (zero when absent or unparseable).
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.Code, e.Message)
}

// IsShed reports whether the error is the service's 429 load-shed answer.
func IsShed(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == http.StatusTooManyRequests
}

// IsDraining reports whether the error is the service's 503
// draining/closed answer. Like a 429 it is transient fleet weather — the
// node is being rolled — so retrying (elsewhere, or here after
// Retry-After) is the right reaction.
func IsDraining(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == http.StatusServiceUnavailable
}

// do issues a request and decodes the JSON answer into out (when non-nil).
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	return decodeResponse(resp, out)
}

// decodeResponse maps a non-2xx answer to a StatusError and decodes a 2xx
// JSON body into out (when non-nil). It closes the body either way.
func decodeResponse(resp *http.Response, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var ae struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&ae) == nil && ae.Error != "" {
			msg = ae.Error
		}
		se := &StatusError{Code: resp.StatusCode, Message: msg}
		if v := resp.Header.Get("Retry-After"); v != "" {
			if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
				se.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return se
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Submit enqueues a job and returns immediately with its queued status.
func (c *Client) Submit(ctx context.Context, spec service.JobSpec) (*service.JobStatus, error) {
	var st service.JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// SubmitWait enqueues a job and blocks until it completes (server-side
// wait), returning the terminal status including the result.
func (c *Client) SubmitWait(ctx context.Context, spec service.JobSpec) (*service.JobStatus, error) {
	var st service.JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/jobs?wait=1", spec, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Backoff parameters for SubmitWaitRetry: the first retry waits around
// retryBase, each further shed doubles the window, capped at retryCap.
const (
	retryBase = 50 * time.Millisecond
	retryCap  = 2 * time.Second
)

// retryDelay computes the wait before retry number attempt (0-based):
// exponential retryBase·2^attempt capped at retryCap, with equal jitter —
// uniform in [d/2, d] — so a fleet of shed clients decorrelates instead of
// hammering the server in lockstep. The server's Retry-After acts as a
// floor: the client never comes back sooner than it was told to.
func retryDelay(attempt int, retryAfter time.Duration, rnd func() float64) time.Duration {
	d := retryCap
	if attempt < 6 { // retryBase<<6 > retryCap already
		d = retryBase << uint(attempt)
		if d > retryCap {
			d = retryCap
		}
	}
	half := d / 2
	d = half + time.Duration(rnd()*float64(half))
	if d < retryAfter {
		d = retryAfter
	}
	return d
}

// SubmitWaitRetry enqueues a job with server-side wait, retrying 429
// load-shed and 503 draining answers with jittered exponential backoff
// (never sooner than the server's Retry-After), until ctx is cancelled —
// including mid-sleep. The answer omits the result vector (its length and
// SHA-256 still come back), making this the load-generator path: cheap on
// the wire while still verifiable. It reports how many times the job was
// shed before admission (drain answers count as sheds).
func (c *Client) SubmitWaitRetry(ctx context.Context, spec service.JobSpec) (st *service.JobStatus, sheds int, err error) {
	for {
		var s service.JobStatus
		err = c.do(ctx, http.MethodPost, "/v1/jobs?wait=1&result=0", spec, &s)
		if err == nil {
			return &s, sheds, nil
		}
		if !IsShed(err) && !IsDraining(err) {
			return nil, sheds, err
		}
		var se *StatusError
		errors.As(err, &se)
		d := retryDelay(sheds, se.RetryAfter, rand.Float64)
		sheds++
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, sheds, ctx.Err()
		case <-t.C:
		}
	}
}

// Get fetches a job's status including its result when done.
func (c *Client) Get(ctx context.Context, id string) (*service.JobStatus, error) {
	var st service.JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Cancel requests cancellation of a job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodPost, "/v1/jobs/"+id+"/cancel", nil, nil)
}

// Wait polls a job until it reaches a terminal state.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*service.JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Get(ctx, id)
		if err != nil {
			return nil, err
		}
		switch st.State {
		case service.StateDone, service.StateFailed, service.StateCancelled:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
	}
}

// Metrics fetches the server counters.
func (c *Client) Metrics(ctx context.Context) (*service.Snapshot, error) {
	var snap service.Snapshot
	if err := c.do(ctx, http.MethodGet, "/metrics", nil, &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// Trace fetches the phase-level span aggregates from /debug/trace (raw
// spans omitted to keep the payload small).
func (c *Client) Trace(ctx context.Context) (*service.TraceDump, error) {
	var dump service.TraceDump
	if err := c.do(ctx, http.MethodGet, "/debug/trace?spans=0", nil, &dump); err != nil {
		return nil, err
	}
	return &dump, nil
}
