package client

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"time"

	"irred/internal/service"
)

// Session verbs. A streaming client opens one session, streams binary IRDB
// deltas at it, and treats the two session-specific refusals distinctly:
// 409 (busy) means retry — another delta holds the session's gate; 410
// (gone) means the session is permanently lost (evicted, closed, or the
// daemon restarted) and must be reopened from the client's current state.

// IsGone reports the service's 410 answer: this session id will never work
// again on this daemon. Reopen, do not retry.
func IsGone(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == http.StatusGone
}

// IsBusy reports the service's 409 answer: another delta for the same
// session is in flight. Retry after a short backoff.
func IsBusy(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == http.StatusConflict
}

// OpenSession submits a base job and returns the resident session's status
// including the base result.
func (c *Client) OpenSession(ctx context.Context, spec service.JobSpec) (*service.SessionStatus, error) {
	var st service.SessionStatus
	if err := c.do(ctx, http.MethodPost, "/v1/session", spec, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// SessionDelta applies one sparse indirection delta, shipped as the
// checksummed binary IRDB frame. includeResult controls whether the updated
// result vector rides back (its length and SHA-256 always do).
func (c *Client) SessionDelta(ctx context.Context, id string, d *service.Delta, includeResult bool) (*service.SessionStatus, error) {
	frame, err := service.EncodeDelta(d)
	if err != nil {
		return nil, err
	}
	path := "/v1/session/" + id + "/delta"
	if !includeResult {
		path += "?result=0"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(frame))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	var st service.SessionStatus
	if err := decodeResponse(resp, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// SessionDeltaRetry applies a delta, retrying 409 busy answers with the
// same jittered backoff schedule the job path uses for load shedding. Any
// other failure — including 410 — returns immediately.
func (c *Client) SessionDeltaRetry(ctx context.Context, id string, d *service.Delta, includeResult bool) (st *service.SessionStatus, busy int, err error) {
	for {
		st, err = c.SessionDelta(ctx, id, d, includeResult)
		if err == nil || !IsBusy(err) {
			return st, busy, err
		}
		var se *StatusError
		errors.As(err, &se)
		delay := retryDelay(busy, se.RetryAfter, func() float64 { return 0.5 })
		busy++
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, busy, ctx.Err()
		case <-t.C:
		}
	}
}

// GetSession fetches a session's status; includeResult attaches the
// current result vector.
func (c *Client) GetSession(ctx context.Context, id string, includeResult bool) (*service.SessionStatus, error) {
	path := "/v1/session/" + id
	if includeResult {
		path += "?result=1"
	}
	var st service.SessionStatus
	if err := c.do(ctx, http.MethodGet, path, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// CloseSession releases a session explicitly.
func (c *Client) CloseSession(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/session/"+id, nil, nil)
}
