package client

import "time"

// RetryDelay exposes the backoff schedule to the external test package so
// its bounds can be pinned deterministically (the rnd source is injected).
func RetryDelay(attempt int, retryAfter time.Duration, rnd func() float64) time.Duration {
	return retryDelay(attempt, retryAfter, rnd)
}

// Backoff constants re-exported for the same tests.
const (
	RetryBase = retryBase
	RetryCap  = retryCap
)
