// Unit tests for the service client against httptest servers: the
// retry-on-429 loop and its Retry-After handling, context cancellation,
// and malformed-response error paths — the wire-level behaviours the
// end-to-end tests (which always talk to a healthy service) never hit.
package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"irred/internal/service"
	"irred/internal/service/client"
)

func doneStatus(id string) service.JobStatus {
	return service.JobStatus{ID: id, State: service.StateDone, ResultSHA256: "abc"}
}

// TestSubmitWaitRetryOn429 verifies the retry loop: two shed answers, then
// success, with the shed count reported.
func TestSubmitWaitRetryOn429(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "queue full"})
			return
		}
		json.NewEncoder(w).Encode(doneStatus("j1"))
	}))
	defer ts.Close()

	st, sheds, err := client.New(ts.URL).SubmitWaitRetry(context.Background(), service.JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if sheds != 2 {
		t.Fatalf("sheds = %d, want 2", sheds)
	}
	if st.State != service.StateDone || st.ID != "j1" {
		t.Fatalf("status = %+v", st)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d calls, want 3", n)
	}
}

// TestRetryAfterParsed verifies the Retry-After header lands on the
// StatusError, so callers (and the retry loop) honor the server's pacing.
func TestRetryAfterParsed(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(map[string]string{"error": "queue full"})
	}))
	defer ts.Close()

	_, err := client.New(ts.URL).Submit(context.Background(), service.JobSpec{})
	var se *client.StatusError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want StatusError", err)
	}
	if se.Code != http.StatusTooManyRequests || se.RetryAfter != 7*time.Second {
		t.Fatalf("StatusError = %+v, want 429 with RetryAfter 7s", se)
	}
	if !client.IsShed(err) {
		t.Fatal("IsShed must recognise the 429")
	}
}

// TestSubmitWaitRetryContextCancel verifies the retry loop gives up with
// ctx.Err() when the server sheds forever.
func TestSubmitWaitRetryContextCancel(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(map[string]string{"error": "queue full"})
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	_, sheds, err := client.New(ts.URL).SubmitWaitRetry(ctx, service.JobSpec{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if sheds < 1 {
		t.Fatalf("sheds = %d, want at least one before the deadline", sheds)
	}
}

// TestRetryDelayJitterBounds pins the backoff schedule: attempt k waits
// uniformly within [base·2^k / 2, base·2^k], capped, and never below the
// server's Retry-After.
func TestRetryDelayJitterBounds(t *testing.T) {
	for attempt := 0; attempt < 12; attempt++ {
		full := client.RetryBase << uint(attempt)
		if full > client.RetryCap || full <= 0 {
			full = client.RetryCap
		}
		for _, u := range []float64{0, 0.25, 0.5, 0.999999} {
			d := client.RetryDelay(attempt, 0, func() float64 { return u })
			if d < full/2 || d > full {
				t.Fatalf("attempt %d u=%v: delay %v outside [%v, %v]", attempt, u, d, full/2, full)
			}
		}
		// The jitter must actually spread: min and max of the window differ.
		lo := client.RetryDelay(attempt, 0, func() float64 { return 0 })
		hi := client.RetryDelay(attempt, 0, func() float64 { return 0.999999 })
		if lo >= hi {
			t.Fatalf("attempt %d: no jitter spread (lo=%v hi=%v)", attempt, lo, hi)
		}
	}
	// Retry-After floors the delay even when the exponential window is small.
	if d := client.RetryDelay(0, 3*time.Second, func() float64 { return 0 }); d != 3*time.Second {
		t.Fatalf("Retry-After floor ignored: %v", d)
	}
	// The cap holds for absurd attempt counts (no overflow).
	if d := client.RetryDelay(200, 0, func() float64 { return 0.999999 }); d > client.RetryCap {
		t.Fatalf("cap exceeded at high attempt: %v", d)
	}
}

// TestSubmitWaitRetryCancelMidBackoff verifies cancellation interrupts the
// backoff sleep itself: the server demands a 5s Retry-After, the context
// dies after 50ms, and the call must return promptly with ctx.Err().
func TestSubmitWaitRetryCancelMidBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "5")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(map[string]string{"error": "queue full"})
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, sheds, err := client.New(ts.URL).SubmitWaitRetry(ctx, service.JobSpec{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if sheds != 1 {
		t.Fatalf("sheds = %d, want exactly 1 (cancelled during the first backoff)", sheds)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation did not interrupt the 5s backoff (took %v)", elapsed)
	}
}

// TestSubmitContextCancelMidRequest verifies cancellation of an in-flight
// request (server hangs) surfaces the context error.
func TestSubmitContextCancelMidRequest(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer ts.Close()
	defer close(release)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := client.New(ts.URL).SubmitWait(ctx, service.JobSpec{})
	if err == nil {
		t.Fatal("expected an error from a cancelled request")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not interrupt the request")
	}
}

// TestMalformedJSON verifies the error paths for responses that are not
// what the client expects.
func TestMalformedJSON(t *testing.T) {
	t.Run("2xx with garbage body", func(t *testing.T) {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte("{not json"))
		}))
		defer ts.Close()
		_, err := client.New(ts.URL).SubmitWait(context.Background(), service.JobSpec{})
		if err == nil {
			t.Fatal("expected a decode error")
		}
		var se *client.StatusError
		if errors.As(err, &se) {
			t.Fatalf("decode failure must not be a StatusError, got %v", err)
		}
	})

	t.Run("non-2xx with garbage body", func(t *testing.T) {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusInternalServerError)
			w.Write([]byte("<html>oops</html>"))
		}))
		defer ts.Close()
		_, err := client.New(ts.URL).Get(context.Background(), "j1")
		var se *client.StatusError
		if !errors.As(err, &se) {
			t.Fatalf("err = %v, want StatusError", err)
		}
		// The message falls back to the HTTP status line.
		if se.Code != http.StatusInternalServerError || se.Message == "" {
			t.Fatalf("StatusError = %+v", se)
		}
	})

	t.Run("non-2xx with JSON error payload", func(t *testing.T) {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(map[string]string{"error": "no such job"})
		}))
		defer ts.Close()
		_, err := client.New(ts.URL).Get(context.Background(), "j1")
		var se *client.StatusError
		if !errors.As(err, &se) || se.Message != "no such job" {
			t.Fatalf("err = %v, want StatusError with the payload message", err)
		}
	})
}

// TestWaitPollsToTerminal verifies Wait keeps polling through non-terminal
// states.
func TestWaitPollsToTerminal(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := service.JobStatus{ID: "j1", State: service.StateRunning}
		if calls.Add(1) >= 3 {
			st.State = service.StateDone
		}
		json.NewEncoder(w).Encode(st)
	}))
	defer ts.Close()

	st, err := client.New(ts.URL).Wait(context.Background(), "j1", time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateDone || calls.Load() != 3 {
		t.Fatalf("state %s after %d polls", st.State, calls.Load())
	}
}

// TestSubmitWaitRetryOn503 verifies a draining node is treated like a
// shed: two 503 + Retry-After answers, then success once the roll is
// done. This is what keeps rolling restarts invisible to single-node
// clients.
func TestSubmitWaitRetryOn503(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]string{"error": "service closed"})
			return
		}
		json.NewEncoder(w).Encode(doneStatus("j503"))
	}))
	defer ts.Close()

	st, sheds, err := client.New(ts.URL).SubmitWaitRetry(context.Background(), service.JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if sheds != 2 {
		t.Fatalf("sheds = %d, want 2", sheds)
	}
	if st.State != service.StateDone || st.ID != "j503" {
		t.Fatalf("status = %+v", st)
	}
}

// TestIsDraining pins the 503 classifier: true only for StatusError 503.
func TestIsDraining(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"error": "draining"})
	}))
	defer ts.Close()

	_, err := client.New(ts.URL).Submit(context.Background(), service.JobSpec{})
	if !client.IsDraining(err) {
		t.Fatalf("IsDraining(%v) = false, want true", err)
	}
	if client.IsShed(err) {
		t.Fatal("a 503 must not classify as a 429 shed")
	}
	var se *client.StatusError
	if !errors.As(err, &se) || se.RetryAfter != time.Second {
		t.Fatalf("Retry-After not parsed on 503: %+v", se)
	}
	if client.IsDraining(errors.New("plain")) {
		t.Fatal("IsDraining(plain error) = true")
	}
}
