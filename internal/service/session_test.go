package service

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"testing"

	"irred/internal/fault"
)

// mkDelta draws n distinct iterations and fresh indirection values: a
// canonical delta against the given spec's shape.
func mkDelta(rng *rand.Rand, spec *JobSpec, n int) *Delta {
	perm := rng.Perm(spec.NumIters)[:n]
	sort.Ints(perm)
	d := &Delta{Changed: make([]int32, n), Values: make([][]int32, len(spec.Ind))}
	for j, it := range perm {
		d.Changed[j] = int32(it)
	}
	for r := range d.Values {
		d.Values[r] = make([]int32, n)
		for j := range d.Values[r] {
			d.Values[r][j] = int32(rng.Intn(spec.NumElems))
		}
	}
	return d
}

// applyLocal commits a delta to the test's own mirror of the indirection
// arrays, the state the sequential oracle recomputes from.
func applyLocal(spec *JobSpec, d *Delta) {
	for r, row := range d.Values {
		for j, it := range d.Changed {
			spec.Ind[r][it] = row[j]
		}
	}
}

// TestSessionOracle drives a session through a stream of sparse deltas and
// checks every response bitwise against the sequential oracle recomputed
// from a local mirror: the resident, incrementally-revised schedule must be
// indistinguishable from re-solving the problem from scratch.
func TestSessionOracle(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	rng := rand.New(rand.NewSource(41))
	spec := rawSpec(41, 3, 2, 900, 128, 2)

	// Mirror with its own deep-copied Ind (OpenSession copies too, but the
	// test must not share state with the session).
	mirror := spec
	mirror.Ind = make([][]int32, len(spec.Ind))
	for r := range spec.Ind {
		mirror.Ind[r] = append([]int32(nil), spec.Ind[r]...)
	}

	st, err := s.OpenSession(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mirror.SequentialRaw()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Result) != len(want) {
		t.Fatalf("base result has %d elements, want %d", len(st.Result), len(want))
	}
	for e := range want {
		if st.Result[e] != want[e] {
			t.Fatalf("base result[%d] = %g, want %g", e, st.Result[e], want[e])
		}
	}
	if !st.CacheHit && st.ScheduleKey == "" {
		t.Fatal("open did not report a schedule key")
	}

	for round := 0; round < 12; round++ {
		n := 1 + rng.Intn(spec.NumIters/5) // up to 20%: incremental territory
		d := mkDelta(rng, &mirror, n)
		applyLocal(&mirror, d)
		st, err = s.ApplyDelta(context.Background(), st.ID, d, true)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !st.LastIncremental {
			t.Fatalf("round %d: %d/%d changed took the full path below the threshold", round, n, spec.NumIters)
		}
		want, err := mirror.SequentialRaw()
		if err != nil {
			t.Fatal(err)
		}
		for e := range want {
			if st.Result[e] != want[e] {
				t.Fatalf("round %d: result[%d] = %g, want %g", round, e, st.Result[e], want[e])
			}
		}
	}
	if st.Deltas != 12 || st.Incremental != 12 || st.Full != 0 {
		t.Fatalf("counters deltas=%d incr=%d full=%d, want 12/12/0", st.Deltas, st.Incremental, st.Full)
	}

	// A delta past the fallback fraction re-inspects — and must still
	// match the oracle exactly.
	big := mkDelta(rng, &mirror, spec.NumIters/2)
	applyLocal(&mirror, big)
	st, err = s.ApplyDelta(context.Background(), st.ID, big, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.LastIncremental || st.Full != 1 {
		t.Fatalf("50%% delta stayed incremental (full=%d)", st.Full)
	}
	want, err = mirror.SequentialRaw()
	if err != nil {
		t.Fatal(err)
	}
	for e := range want {
		if st.Result[e] != want[e] {
			t.Fatalf("post-fallback result[%d] = %g, want %g", e, st.Result[e], want[e])
		}
	}

	m := s.Metrics().Sessions
	if m.Live != 1 || m.DeltasApplied != 13 || m.Incremental != 12 || m.FullReinspects != 1 {
		t.Fatalf("metrics %+v, want live=1 deltas=13 incr=12 full=1", m)
	}

	if err := s.CloseSession(st.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetSession(st.ID, false); !errors.Is(err, ErrSessionGone) {
		t.Fatalf("closed session answered %v, want ErrSessionGone", err)
	}
	if _, err := s.ApplyDelta(context.Background(), st.ID, mkDelta(rng, &mirror, 1), false); !errors.Is(err, ErrSessionGone) {
		t.Fatalf("delta to closed session answered %v, want ErrSessionGone", err)
	}
}

// TestSessionFallbackConfig checks the configured threshold is honoured:
// with SessionFallbackFrac 0.5 a 40% delta stays incremental.
func TestSessionFallbackConfig(t *testing.T) {
	s := newTestService(t, Options{Workers: 1, SessionFallbackFrac: 0.5})
	rng := rand.New(rand.NewSource(5))
	spec := rawSpec(5, 2, 1, 500, 64, 1)
	st, err := s.OpenSession(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	d := mkDelta(rng, &spec, 200) // 40%
	if st, err = s.ApplyDelta(context.Background(), st.ID, d, false); err != nil {
		t.Fatal(err)
	}
	if !st.LastIncremental {
		t.Fatalf("40%% delta with threshold 0.5 took the full path (last_frac %g)", st.LastFrac)
	}
	if st.FallbackFrac != 0.5 {
		t.Fatalf("status reports threshold %g, want 0.5", st.FallbackFrac)
	}
}

// TestSessionEviction opens more sessions than the store holds and checks
// the evicted one is gone for every verb — fail closed, never stale.
func TestSessionEviction(t *testing.T) {
	s := newTestService(t, Options{Workers: 1, MaxSessions: 2})
	rng := rand.New(rand.NewSource(9))
	ids := make([]string, 3)
	specs := make([]JobSpec, 3)
	for i := range ids {
		specs[i] = rawSpec(int64(100+i), 2, 1, 200+10*i, 32, 1)
		st, err := s.OpenSession(context.Background(), specs[i])
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}
	if _, err := s.GetSession(ids[0], false); !errors.Is(err, ErrSessionGone) {
		t.Fatalf("evicted session answered %v, want ErrSessionGone", err)
	}
	if _, err := s.ApplyDelta(context.Background(), ids[0], mkDelta(rng, &specs[0], 1), false); !errors.Is(err, ErrSessionGone) {
		t.Fatalf("delta to evicted session answered %v, want ErrSessionGone", err)
	}
	for _, id := range ids[1:] {
		if _, err := s.GetSession(id, false); err != nil {
			t.Fatalf("resident session %s: %v", id, err)
		}
	}
	m := s.Metrics().Sessions
	if m.Live != 2 || m.Evicted != 1 || m.Opened != 3 {
		t.Fatalf("metrics %+v, want live=2 evicted=1 opened=3", m)
	}
}

// TestSessionBusy holds the delta gate directly and checks a concurrent
// submission is refused with ErrSessionBusy instead of queued or applied.
func TestSessionBusy(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	rng := rand.New(rand.NewSource(3))
	spec := rawSpec(3, 2, 1, 300, 48, 1)
	st, err := s.OpenSession(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	sess, ok := s.sessions.get(st.ID)
	if !ok {
		t.Fatal("session vanished")
	}
	sess.gate <- struct{}{}
	if _, err := s.ApplyDelta(context.Background(), st.ID, mkDelta(rng, &spec, 2), false); !errors.Is(err, ErrSessionBusy) {
		t.Fatalf("delta against held gate answered %v, want ErrSessionBusy", err)
	}
	<-sess.gate
	if _, err := s.ApplyDelta(context.Background(), st.ID, mkDelta(rng, &spec, 2), false); err != nil {
		t.Fatalf("delta after release: %v", err)
	}
}

// TestSessionSpecValidation enumerates the shapes sessions refuse.
func TestSessionSpecValidation(t *testing.T) {
	s := newTestService(t, Options{Workers: 1, AllowChaos: true})
	named := JobSpec{Kernel: "mvm", Dataset: "S", P: 2, K: 1, Steps: 1}
	raw := rawSpec(1, 2, 1, 100, 16, 1)
	chaotic := raw
	chaotic.Chaos = &fault.Spec{Seed: 1, DropRate: 0.1}
	dist := raw
	dist.Engine = "distributed"
	auto := raw
	auto.Auto = true
	for name, spec := range map[string]JobSpec{
		"named kernel": named,
		"chaos":        chaotic,
		"distributed":  dist,
		"auto":         auto,
	} {
		if _, err := s.OpenSession(context.Background(), spec); err == nil {
			t.Fatalf("%s spec accepted as a session", name)
		}
	}
}
