package service

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// poolJob builds a minimal job usable by the bare pool (no service).
func poolJob(id string) *Job {
	ctx, cancel := context.WithCancel(context.Background())
	return &Job{ID: id, ctx: ctx, cancel: cancel, done: make(chan struct{}), state: StateQueued, created: time.Now()}
}

// TestPoolSurvivesPanickingJobs is the capacity-regression test: N
// panicking jobs must leave the pool able to run N more jobs on the same
// workers — a panic costs one job, never a worker goroutine.
func TestPoolSurvivesPanickingJobs(t *testing.T) {
	const workers, n = 2, 16
	var recovered atomic.Int64
	var ran atomic.Int64
	var wg sync.WaitGroup
	p := newPool(workers, n*2, func(j *Job) {
		defer wg.Done()
		if j.Spec.Kernel == "boom" {
			panic("poisoned job " + j.ID)
		}
		ran.Add(1)
	}, func(j *Job, v any, stack []byte) {
		recovered.Add(1)
	})
	defer p.close()

	wg.Add(n)
	for i := 0; i < n; i++ {
		j := poolJob("bad")
		j.Spec.Kernel = "boom"
		if err := p.submit(j); err != nil {
			t.Fatal(err)
		}
	}
	// The deferred wg.Done fires even on the panic path, so this waits for
	// all panicking jobs to have been recovered.
	waitDone(t, &wg)
	if got := recovered.Load(); got != n {
		t.Fatalf("recovered %d panics, want %d", got, n)
	}

	// Full capacity must remain: n fresh jobs all run.
	wg.Add(n)
	for i := 0; i < n; i++ {
		if err := p.submit(poolJob("ok")); err != nil {
			t.Fatal(err)
		}
	}
	waitDone(t, &wg)
	if got := ran.Load(); got != n {
		t.Fatalf("ran %d jobs after the panics, want %d", got, n)
	}
}

// TestPoolPanicInCallbackDoesNotKillWorker: even a nil onPanic (or one
// that observes a panicking job) leaves the worker alive.
func TestPoolPanicWithNilCallback(t *testing.T) {
	var wg sync.WaitGroup
	p := newPool(1, 4, func(j *Job) {
		defer wg.Done()
		panic("boom")
	}, nil)
	defer p.close()
	wg.Add(2)
	if err := p.submit(poolJob("a")); err != nil {
		t.Fatal(err)
	}
	if err := p.submit(poolJob("b")); err != nil {
		t.Fatal(err)
	}
	waitDone(t, &wg)
}

// TestPoolQueueCounters pins the cumulative admission counters: with the
// single worker blocked, every later submission must sit in the queue, so
// the high-water mark is deterministic.
func TestPoolQueueCounters(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 8)
	p := newPool(1, 4, func(*Job) {
		started <- struct{}{}
		<-block
	}, nil)
	defer p.close()
	defer close(block) // runs before p.close: unblocks the worker first

	for i := 0; i < 4; i++ {
		if err := p.submit(poolJob("q")); err != nil {
			t.Fatal(err)
		}
	}
	<-started // the worker holds one job; at most one ever left the queue
	depth, peak, enqueued := p.queueStats()
	if enqueued != 4 {
		t.Fatalf("enqueued = %d, want 4", enqueued)
	}
	if peak < 3 || peak > 4 {
		t.Fatalf("peak = %d, want 3 or 4 with a blocked single worker", peak)
	}
	if depth != 3 {
		t.Fatalf("depth = %d, want 3 (one held by the worker)", depth)
	}
}

func waitDone(t *testing.T, wg *sync.WaitGroup) {
	t.Helper()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("pool lost capacity: jobs never finished")
	}
}
