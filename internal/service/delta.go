package service

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// Delta is a sparse revision of a session's indirection arrays: the
// changed iteration list plus, per indirection reference, the new value at
// each changed iteration. It is the streaming unit of the session API —
// an adaptive client re-sends only what its mesh refinement touched, not
// the whole problem.
//
// Canonical form: Changed is strictly increasing (sorted, no duplicates).
// The binary codec rejects anything else, which both keeps the encoding
// unambiguous (no last-write-wins ordering questions) and turns most bit
// corruption of the iteration stream into a structural error even before
// the checksum is consulted.
type Delta struct {
	Changed []int32 `json:"changed"`
	// Values[r][j] is the new value of ind[r][Changed[j]].
	Values [][]int32 `json:"values"`
}

// deltaMagic identifies the binary delta frame ("IRredd Delta Binary"),
// versioned like the IRSC schedule and IRCJ checkpoint codecs.
const (
	deltaMagic   = "IRDB"
	deltaVersion = 1
	// maxDeltaBody bounds a delta submission; far above any sane sparse
	// update (a full 16-ref rewrite of a million iterations fits).
	maxDeltaBody = 64 << 20
	// deltaPreallocCap caps slice preallocation from wire-supplied counts,
	// so a corrupt or hostile count cannot balloon memory before decoding
	// fails (same defense as the schedule codec).
	deltaPreallocCap = 1 << 16
)

// validate checks internal shape: canonical ordering and matching value
// rows. Range checks against a session's config happen at apply time.
func (d *Delta) validate() error {
	for j := 1; j < len(d.Changed); j++ {
		if d.Changed[j] <= d.Changed[j-1] {
			return fmt.Errorf("service: delta iterations not strictly increasing at %d", j)
		}
	}
	if len(d.Changed) > 0 && d.Changed[0] < 0 {
		return fmt.Errorf("service: delta iteration %d negative", d.Changed[0])
	}
	if len(d.Values) == 0 {
		return fmt.Errorf("service: delta has no value rows")
	}
	for r, row := range d.Values {
		if len(row) != len(d.Changed) {
			return fmt.Errorf("service: delta values[%d] has %d entries, want %d", r, len(row), len(d.Changed))
		}
	}
	return nil
}

// EncodeDelta renders a delta in the versioned binary wire format:
//
//	"IRDB" | u8 version | uvarint numRef | uvarint count |
//	delta-encoded changed iterations | per-ref values | FNV-1a 64 (LE)
//
// The trailer hashes everything before it, so truncation and corruption
// are both detected; the changed list is delta-encoded (gaps, not absolute
// indices), which keeps dense local refinements small on the wire.
func EncodeDelta(d *Delta) ([]byte, error) {
	if err := d.validate(); err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 16+5*len(d.Changed)*(1+len(d.Values)))
	buf = append(buf, deltaMagic...)
	buf = append(buf, deltaVersion)
	buf = binary.AppendUvarint(buf, uint64(len(d.Values)))
	buf = binary.AppendUvarint(buf, uint64(len(d.Changed)))
	prev := int32(-1)
	for _, it := range d.Changed {
		buf = binary.AppendUvarint(buf, uint64(it-prev-1))
		prev = it
	}
	for _, row := range d.Values {
		for _, v := range row {
			if v < 0 {
				return nil, fmt.Errorf("service: delta value %d negative", v)
			}
			buf = binary.AppendUvarint(buf, uint64(v))
		}
	}
	sum := fnv.New64a()
	sum.Write(buf)
	return binary.LittleEndian.AppendUint64(buf, sum.Sum64()), nil
}

// DecodeDelta parses and verifies a binary delta frame. Any framing
// defect — bad magic, unknown version, truncation, trailing bytes, a
// checksum mismatch, counts past the body — is an error; a successful
// decode always yields a canonical Delta that re-encodes byte-identically.
func DecodeDelta(b []byte) (*Delta, error) {
	if len(b) > maxDeltaBody {
		return nil, fmt.Errorf("service: delta frame %d bytes exceeds limit", len(b))
	}
	if len(b) < len(deltaMagic)+1+8 {
		return nil, fmt.Errorf("service: delta frame truncated (%d bytes)", len(b))
	}
	if string(b[:len(deltaMagic)]) != deltaMagic {
		return nil, fmt.Errorf("service: bad delta magic %q", b[:len(deltaMagic)])
	}
	if v := b[len(deltaMagic)]; v != deltaVersion {
		return nil, fmt.Errorf("service: delta version %d unsupported", v)
	}
	body, trailer := b[:len(b)-8], b[len(b)-8:]
	sum := fnv.New64a()
	sum.Write(body)
	if got, want := binary.LittleEndian.Uint64(trailer), sum.Sum64(); got != want {
		return nil, fmt.Errorf("service: delta checksum mismatch (%016x != %016x)", got, want)
	}
	rd := body[len(deltaMagic)+1:]
	next := func() (uint64, error) {
		v, n := binary.Uvarint(rd)
		if n <= 0 {
			return 0, fmt.Errorf("service: delta frame truncated inside varint stream")
		}
		rd = rd[n:]
		return v, nil
	}
	numRef, err := next()
	if err != nil {
		return nil, err
	}
	if numRef < 1 || numRef > 16 {
		return nil, fmt.Errorf("service: delta declares %d indirection references (1..16)", numRef)
	}
	count, err := next()
	if err != nil {
		return nil, err
	}
	if count > uint64(len(rd)) { // each entry needs >= 1 byte still unread
		return nil, fmt.Errorf("service: delta declares %d changed iterations in a %d-byte body", count, len(rd))
	}
	prealloc := count
	if prealloc > deltaPreallocCap {
		prealloc = deltaPreallocCap
	}
	d := &Delta{Changed: make([]int32, 0, prealloc), Values: make([][]int32, numRef)}
	prev := int64(-1)
	for j := uint64(0); j < count; j++ {
		gap, err := next()
		if err != nil {
			return nil, err
		}
		it := prev + 1 + int64(gap)
		if it > 1<<31-1 {
			return nil, fmt.Errorf("service: delta iteration %d overflows int32", it)
		}
		d.Changed = append(d.Changed, int32(it))
		prev = it
	}
	for r := range d.Values {
		d.Values[r] = make([]int32, 0, prealloc)
		for j := uint64(0); j < count; j++ {
			v, err := next()
			if err != nil {
				return nil, err
			}
			if v > 1<<31-1 {
				return nil, fmt.Errorf("service: delta value %d overflows int32", v)
			}
			d.Values[r] = append(d.Values[r], int32(v))
		}
	}
	if len(rd) != 0 {
		return nil, fmt.Errorf("service: %d trailing bytes after delta frame", len(rd))
	}
	if err := d.validate(); err != nil {
		return nil, err
	}
	return d, nil
}
