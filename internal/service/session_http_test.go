// Session end-to-end tests over the real HTTP stack: the binary delta
// frame on the wire, the status-code contract (201/200/409/410), and the
// Go client's session verbs — the same path cmd/irredload -deltas drives.
package service_test

import (
	"bytes"
	"context"
	"math/rand"
	"net/http"
	"sort"
	"testing"

	"irred/internal/service"
	"irred/internal/service/client"
)

func httpDelta(rng *rand.Rand, spec *service.JobSpec, n int) *service.Delta {
	perm := rng.Perm(spec.NumIters)[:n]
	sort.Ints(perm)
	d := &service.Delta{Changed: make([]int32, n), Values: make([][]int32, len(spec.Ind))}
	for j, it := range perm {
		d.Changed[j] = int32(it)
	}
	for r := range d.Values {
		d.Values[r] = make([]int32, n)
		for j := range d.Values[r] {
			d.Values[r][j] = int32(rng.Intn(spec.NumElems))
		}
	}
	return d
}

func TestSessionHTTPEndToEnd(t *testing.T) {
	_, c := startServer(t, service.Options{Workers: 2})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(88))
	spec := httpRawSpec(88, 2, 2, 600, 96, 1)

	mirror := spec
	mirror.Ind = make([][]int32, len(spec.Ind))
	for r := range spec.Ind {
		mirror.Ind[r] = append([]int32(nil), spec.Ind[r]...)
	}

	st, err := c.OpenSession(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mirror.SequentialRaw()
	if err != nil {
		t.Fatal(err)
	}
	if st.ResultSHA256 != service.HashResult(want) {
		t.Fatal("base result hash does not match the oracle")
	}

	for round := 0; round < 5; round++ {
		d := httpDelta(rng, &mirror, 1+rng.Intn(60))
		for r, row := range d.Values {
			for j, it := range d.Changed {
				mirror.Ind[r][it] = row[j]
			}
		}
		st, err = c.SessionDelta(ctx, st.ID, d, round == 4)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !st.LastIncremental {
			t.Fatalf("round %d: sparse delta took the full path", round)
		}
		want, err := mirror.SequentialRaw()
		if err != nil {
			t.Fatal(err)
		}
		if st.ResultSHA256 != service.HashResult(want) {
			t.Fatalf("round %d: result hash does not match the oracle", round)
		}
		if round == 4 {
			for e := range want {
				if st.Result[e] != want[e] {
					t.Fatalf("round %d: result[%d] = %g, want %g", round, e, st.Result[e], want[e])
				}
			}
		}
	}

	got, err := c.GetSession(ctx, st.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if got.Deltas != 5 || got.Incremental != 5 {
		t.Fatalf("status deltas=%d incr=%d, want 5/5", got.Deltas, got.Incremental)
	}

	if err := c.CloseSession(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetSession(ctx, st.ID, false); !client.IsGone(err) {
		t.Fatalf("closed session answered %v, want 410", err)
	}
	if _, err := c.SessionDelta(ctx, st.ID, httpDelta(rng, &mirror, 1), false); !client.IsGone(err) {
		t.Fatalf("delta to closed session answered %v, want 410", err)
	}
	if _, err := c.GetSession(ctx, "s999999", false); !client.IsGone(err) {
		t.Fatalf("unknown session answered %v, want 410", err)
	}
}

// TestSessionHTTPBadFrames posts malformed bodies straight at the delta
// route: a corrupted binary frame and invalid JSON must both bounce with
// 400, and the session must remain usable afterwards.
func TestSessionHTTPBadFrames(t *testing.T) {
	_, c := startServer(t, service.Options{Workers: 1})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(13))
	spec := httpRawSpec(13, 2, 1, 200, 32, 1)
	st, err := c.OpenSession(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	frame, err := service.EncodeDelta(httpDelta(rng, &spec, 3))
	if err != nil {
		t.Fatal(err)
	}
	frame[len(frame)/2] ^= 0xFF
	url := c.Base + "/v1/session/" + st.ID + "/delta"
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupted frame answered %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(url, "application/json", bytes.NewReader([]byte(`{"changed": [3, 1], "values": [[1, 2]]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-canonical JSON delta answered %d, want 400", resp.StatusCode)
	}

	// The refusals must not have consumed the session.
	if _, err := c.SessionDelta(ctx, st.ID, httpDelta(rng, &spec, 2), false); err != nil {
		t.Fatalf("session unusable after refused frames: %v", err)
	}
}
