package service

import (
	"bufio"
	"bytes"
	"container/list"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"irred/internal/inspector"
)

// Cache is the LightInspector schedule cache: the serving-path embodiment
// of the paper's amortization argument. The inspector runs once per
// (indirection contents, strategy) pair — keyed by inspector.ScheduleKey —
// and every later job with the same key reuses the full P-processor
// schedule set. Entries are immutable after insertion (the native engine
// only reads schedules), so one entry may back any number of concurrent
// executions.
//
// The in-memory tier is a strict LRU bounded by entry count. When a
// persistence directory is configured, every inserted entry is also written
// to disk via the inspector/serialize codec; misses fall through to disk,
// and a restarted daemon warms itself from the directory — turning the
// paper's per-run amortization into cross-process amortization. Disk files
// survive in-memory eviction.
type Cache struct {
	mu        sync.Mutex
	capacity  int
	dir       string
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      int64
	misses    int64
	evictions int64
	diskHits  int64
}

type cacheEntry struct {
	key    string
	scheds []*inspector.Schedule
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	DiskHits  int64 `json:"disk_hits"` // subset of Hits served from the persistence dir
}

// HitRatio reports hits/(hits+misses), 0 when idle.
func (s CacheStats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// NewCache builds a cache bounded to capacity in-memory entries. dir, when
// non-empty, enables disk persistence: the directory is created if needed
// and existing entries are loaded (most recent first) up to capacity, so a
// restarted daemon starts warm.
func NewCache(capacity int, dir string) (*Cache, error) {
	if capacity < 1 {
		capacity = 1
	}
	c := &Cache{
		capacity: capacity,
		dir:      dir,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("service: cache dir: %w", err)
		}
		if err := c.warm(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// KeyDigest folds the resident cache keys into (count, order-independent
// FNV digest) — the cheap fingerprint a cluster node gossips so peers can
// tell whether two caches have converged without shipping key lists.
func (c *Cache) KeyDigest() (count int, digest uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key := range c.items {
		h := uint64(14695981039346656037)
		for _, b := range []byte(key) {
			h = (h ^ uint64(b)) * 1099511628211
		}
		digest ^= h // XOR keeps the digest independent of iteration order
	}
	return len(c.items), digest
}

// Get returns the schedule set for key and whether it was present. Memory
// is consulted first, then the persistence directory; a disk hit is
// promoted into memory.
func (c *Cache) Get(key string) ([]*inspector.Schedule, bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		scheds := el.Value.(*cacheEntry).scheds
		c.mu.Unlock()
		return scheds, true
	}
	dir := c.dir
	c.mu.Unlock()

	if dir == "" {
		c.mu.Lock()
		c.misses++
		c.mu.Unlock()
		return nil, false
	}
	scheds, err := readCacheFile(c.path(key))
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		c.misses++
		return nil, false
	}
	// Re-check: a concurrent Get may have promoted the same key already.
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).scheds, true
	}
	c.insertLocked(key, scheds)
	c.hits++
	c.diskHits++
	return scheds, true
}

// Put inserts (or refreshes) the schedule set for key, evicting the least
// recently used entries beyond capacity and persisting to disk when
// configured. The caller must not mutate scheds afterwards.
func (c *Cache) Put(key string, scheds []*inspector.Schedule) error {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).scheds = scheds
		c.ll.MoveToFront(el)
	} else {
		c.insertLocked(key, scheds)
	}
	dir := c.dir
	c.mu.Unlock()
	if dir == "" {
		return nil
	}
	return writeCacheFile(c.path(key), scheds)
}

// insertLocked adds a fresh entry and evicts beyond capacity. Eviction
// drops only the in-memory copy; the disk file, if any, remains and can
// re-warm the entry later.
func (c *Cache) insertLocked(key string, scheds []*inspector.Schedule) {
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, scheds: scheds})
	for c.ll.Len() > c.capacity {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.items, el.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.ll.Len(),
		Capacity:  c.capacity,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		DiskHits:  c.diskHits,
	}
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+cacheFileExt)
}

// warm loads persisted entries newest-first until capacity.
func (c *Cache) warm() error {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("service: cache warm: %w", err)
	}
	type cand struct {
		key string
		mod int64
	}
	var cands []cand
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, cacheFileExt) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		cands = append(cands, cand{key: strings.TrimSuffix(name, cacheFileExt), mod: info.ModTime().UnixNano()})
	}
	// Newest first, so the LRU keeps the most recently written entries
	// when the directory holds more than capacity.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].mod > cands[j-1].mod; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	if len(cands) > c.capacity {
		cands = cands[:c.capacity]
	}
	// Insert oldest-first so the newest ends up at the LRU front.
	for i := len(cands) - 1; i >= 0; i-- {
		scheds, err := readCacheFile(c.path(cands[i].key))
		if err != nil {
			continue // corrupt or partial file: skip, a future Put rewrites it
		}
		c.insertLocked(cands[i].key, scheds)
	}
	return nil
}

// Persistence file format: magic "IRSS" + version byte + varint schedule
// count + per schedule a varint byte length and the inspector/serialize
// encoding. Length prefixes keep decoding independent of the codec's
// internal buffering.
const (
	cacheFileMagic   = "IRSS"
	cacheFileVersion = 1
	cacheFileExt     = ".irs"
)

func writeCacheFile(path string, scheds []*inspector.Schedule) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("service: cache persist: %w", err)
	}
	bw := bufio.NewWriter(f)
	ok := false
	defer func() {
		if !ok {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if _, err := bw.WriteString(cacheFileMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(cacheFileVersion); err != nil {
		return err
	}
	var vbuf [binary.MaxVarintLen64]byte
	putVarint := func(v int64) error {
		n := binary.PutVarint(vbuf[:], v)
		_, err := bw.Write(vbuf[:n])
		return err
	}
	if err := putVarint(int64(len(scheds))); err != nil {
		return err
	}
	var body bytes.Buffer
	for _, s := range scheds {
		body.Reset()
		if _, err := s.WriteTo(&body); err != nil {
			return err
		}
		if err := putVarint(int64(body.Len())); err != nil {
			return err
		}
		if _, err := bw.Write(body.Bytes()); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	ok = true
	return os.Rename(tmp, path)
}

func readCacheFile(path string) ([]*inspector.Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	magic := make([]byte, len(cacheFileMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("service: cache file %s: %w", path, err)
	}
	if string(magic) != cacheFileMagic {
		return nil, fmt.Errorf("service: cache file %s: bad magic %q", path, magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != cacheFileVersion {
		return nil, fmt.Errorf("service: cache file %s: unsupported version %d", path, ver)
	}
	count, err := binary.ReadVarint(br)
	if err != nil {
		return nil, err
	}
	if count < 1 || count > 4096 {
		return nil, fmt.Errorf("service: cache file %s: %d schedules", path, count)
	}
	scheds := make([]*inspector.Schedule, count)
	for i := range scheds {
		ln, err := binary.ReadVarint(br)
		if err != nil {
			return nil, err
		}
		if ln < 0 || ln > 1<<31 {
			return nil, fmt.Errorf("service: cache file %s: schedule %d length %d", path, i, ln)
		}
		raw := make([]byte, ln)
		if _, err := io.ReadFull(br, raw); err != nil {
			return nil, err
		}
		// ReadSchedule runs the full structural Check, so a corrupt or
		// tampered file cannot produce a racy schedule.
		s, err := inspector.ReadSchedule(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("service: cache file %s: schedule %d: %w", path, i, err)
		}
		scheds[i] = s
	}
	// The set must be a coherent P-processor family.
	p0 := scheds[0].Cfg.P
	if int(count) != p0 {
		return nil, fmt.Errorf("service: cache file %s: %d schedules for P = %d", path, count, p0)
	}
	for i, s := range scheds {
		if s.Proc != i || s.Cfg != scheds[0].Cfg {
			return nil, fmt.Errorf("service: cache file %s: schedule %d out of order", path, i)
		}
	}
	return scheds, nil
}
